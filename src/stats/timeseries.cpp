#include "stats/timeseries.hpp"

#include <cstdio>

#include "sim/time.hpp"

namespace clove::stats {

std::string TimeSeriesSet::to_csv() const {
  std::string out = "time_ms";
  for (const auto& s : series_) {
    out += ',';
    out += s->name();
  }
  out += '\n';
  if (series_.empty()) return out;

  const auto& anchor = series_[0]->points();
  // Per anchor timestamp, emit each series' value at the same index when
  // available (series sampled at the same cadence stay aligned).
  for (std::size_t row = 0; row < anchor.size(); ++row) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  sim::to_milliseconds(anchor[row].first));
    out += buf;
    for (const auto& s : series_) {
      const auto& pts = s->points();
      std::snprintf(buf, sizeof(buf), ",%.6g",
                    row < pts.size() ? pts[row].second : 0.0);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace clove::stats
