#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace clove::stats {

/// Streaming mean/min/max/variance (Welford) without storing samples.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::max()};
  double max_{std::numeric_limits<double>::lowest()};
};

/// Sample store with percentiles and CDF export. Keeps every sample (the
/// experiments record at most a few hundred thousand flows).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  /// p in [0, 100]; linearly interpolated between the two nearest order
  /// statistics (NumPy's default "linear" method), so e.g. the median of
  /// {10, 20, 30, 40} is 25, not an observed sample.
  [[nodiscard]] double percentile(double p) {
    if (values_.empty()) return 0.0;
    sort_once();
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  [[nodiscard]] double max() {
    if (values_.empty()) return 0.0;
    sort_once();
    return values_.back();
  }

  /// (value, cumulative fraction) pairs at `points` evenly spaced quantiles.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(int points = 100) {
    std::vector<std::pair<double, double>> out;
    if (values_.empty()) return out;
    sort_once();
    for (int i = 1; i <= points; ++i) {
      const double q = static_cast<double>(i) / points;
      const std::size_t idx = std::min(
          values_.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(values_.size())));
      out.emplace_back(values_[idx], q);
    }
    return out;
  }

  [[nodiscard]] const std::vector<double>& raw() const { return values_; }

 private:
  void sort_once() {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }
  std::vector<double> values_;
  bool sorted_{false};
};

/// Flow-completion-time recorder with the paper's size-class breakdown:
/// mice (< 100 KB, Fig. 5a) and elephants (> 10 MB, Fig. 5b).
class FctRecorder {
 public:
  static constexpr std::uint64_t kMiceMaxBytes = 100 * 1000;
  static constexpr std::uint64_t kElephantMinBytes = 10 * 1000 * 1000;

  void add(std::uint64_t flow_bytes, double fct_seconds) {
    all_.add(fct_seconds);
    if (flow_bytes < kMiceMaxBytes) mice_.add(fct_seconds);
    if (flow_bytes > kElephantMinBytes) elephants_.add(fct_seconds);
  }

  [[nodiscard]] Samples& all() { return all_; }
  [[nodiscard]] Samples& mice() { return mice_; }
  [[nodiscard]] Samples& elephants() { return elephants_; }

 private:
  Samples all_;
  Samples mice_;
  Samples elephants_;
};

/// Minimal fixed-width table printer for the bench harness outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;
  void print() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clove::stats
