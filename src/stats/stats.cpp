#include "stats/stats.hpp"

#include <cstdio>

namespace clove::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out += cell;
      out.append(widths[c] > cell.size() ? widths[c] - cell.size() + 2 : 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c], '-');
    sep.append(2, ' ');
  }
  out += sep + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace clove::stats
