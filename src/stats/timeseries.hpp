#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace clove::stats {

/// A named, periodically-sampled metric: the probe function is called every
/// `interval` of simulated time and the (time, value) points are retained.
/// Used by examples and experiments to watch queue depths, utilizations and
/// Clove path weights evolve — e.g. around a link failure.
class TimeSeries {
 public:
  using Probe = std::function<double()>;

  TimeSeries(sim::Simulator& sim, std::string name, Probe probe,
             sim::Time interval)
      : sim_(sim),
        name_(std::move(name)),
        probe_(std::move(probe)),
        interval_(interval),
        timer_(sim, [this] { sample(); }) {}

  /// Begin sampling (the first sample is taken `interval` from now).
  void start() { timer_.schedule_in(interval_); }
  void stop() { timer_.cancel(); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<sim::Time, double>>& points()
      const {
    return points_;
  }
  [[nodiscard]] double last() const {
    return points_.empty() ? 0.0 : points_.back().second;
  }
  [[nodiscard]] double max() const {
    double m = 0.0;
    for (const auto& [t, v] : points_) m = std::max(m, v);
    return m;
  }
  [[nodiscard]] double mean() const {
    if (points_.empty()) return 0.0;
    double s = 0.0;
    for (const auto& [t, v] : points_) s += v;
    return s / static_cast<double>(points_.size());
  }
  /// Mean over samples taken in [from, to).
  [[nodiscard]] double mean_between(sim::Time from, sim::Time to) const {
    double s = 0.0;
    std::size_t n = 0;
    for (const auto& [t, v] : points_) {
      if (t >= from && t < to) {
        s += v;
        ++n;
      }
    }
    return n ? s / static_cast<double>(n) : 0.0;
  }

 private:
  void sample() {
    points_.emplace_back(sim_.now(), probe_());
    timer_.schedule_in(interval_);
  }

  sim::Simulator& sim_;
  std::string name_;
  Probe probe_;
  sim::Time interval_;
  sim::Timer timer_;
  std::vector<std::pair<sim::Time, double>> points_;
};

/// A group of TimeSeries with shared lifecycle and CSV export.
class TimeSeriesSet {
 public:
  explicit TimeSeriesSet(sim::Simulator& sim) : sim_(sim) {}

  TimeSeries& add(std::string name, TimeSeries::Probe probe,
                  sim::Time interval) {
    series_.push_back(std::make_unique<TimeSeries>(
        sim_, std::move(name), std::move(probe), interval));
    return *series_.back();
  }

  void start_all() {
    for (auto& s : series_) s->start();
  }
  void stop_all() {
    for (auto& s : series_) s->stop();
  }

  [[nodiscard]] std::size_t size() const { return series_.size(); }
  [[nodiscard]] TimeSeries& at(std::size_t i) { return *series_[i]; }
  [[nodiscard]] const TimeSeries* find(const std::string& name) const {
    for (const auto& s : series_) {
      if (s->name() == name) return s.get();
    }
    return nullptr;
  }

  /// CSV with one row per sample time (union of all series' timestamps is
  /// not needed here: series share the interval in practice, so rows are
  /// emitted per first-series timestamp with the latest value of each).
  [[nodiscard]] std::string to_csv() const;

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<TimeSeries>> series_;
};

}  // namespace clove::stats
