#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "transport/tcp.hpp"

namespace clove::transport {

struct MptcpConfig {
  int subflows{4};                 ///< paper §5: best results with 4
  std::uint32_t chunk_bytes{64 * 1024};  ///< scheduler granularity
  bool coupled{true};              ///< LIA coupled increase vs uncoupled Reno
  TcpConfig tcp{};
};

/// A model of MPTCP (paper baseline): one logical connection striped over N
/// TCP subflows whose inner 5-tuples differ in source port, so ECMP may (or
/// may not — hash collisions!) place them on distinct paths. Data is handed
/// to subflows in chunks, lowest-backlog/lowest-RTT first, and the coupled
/// Linked-Increase Algorithm (LIA) throttles aggregate aggressiveness.
///
/// The properties the paper's evaluation leans on all emerge here:
///  * subflow-to-path mapping is static for the connection's lifetime, so a
///    connection whose subflows all collide on congested paths is stuck
///    (bad 99th percentile, Fig. 5c);
///  * N subflows ramp up together, amplifying incast bursts (Fig. 7).
class MptcpSender {
 public:
  using Completion = std::function<void(sim::Time acked_at)>;

  /// Subflow i uses src_port = base_tuple.src_port + i.
  MptcpSender(VmPort& port, net::FiveTuple base_tuple, MptcpConfig cfg = {});

  /// Append a job of `bytes`; `done` fires when every chunk is acked.
  void write(std::uint64_t bytes, Completion done = nullptr);

  [[nodiscard]] int subflow_count() const { return static_cast<int>(subflows_.size()); }
  [[nodiscard]] TcpSender& subflow(int i) { return *subflows_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] std::uint64_t total_cwnd() const;

  /// The host must route inbound ACKs to each subflow; expose endpoints.
  [[nodiscard]] std::vector<TcpSender*> endpoints();

 private:
  struct Job {
    std::uint64_t remaining_chunks{0};
    Completion done;
  };

  void pump();
  std::uint64_t lia_increase(std::size_t flow_idx, std::uint64_t acked) const;

  VmPort& port_;
  MptcpConfig cfg_;
  std::vector<std::unique_ptr<TcpSender>> subflows_;
  std::deque<std::pair<std::uint32_t, std::size_t>> pending_chunks_;  ///< (bytes, job idx)
  std::vector<Job> jobs_;
};

}  // namespace clove::transport
