#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace clove::telemetry {
class Counter;
class Histogram;
}  // namespace clove::telemetry

namespace clove::transport {

/// Guest-VM TCP tuning knobs. Defaults model an untuned Linux stack of the
/// paper's era (the whole point of Clove is that this stack is NOT modified).
struct TcpConfig {
  std::uint32_t mss{1460};
  std::uint32_t initial_cwnd_pkts{10};
  std::uint32_t max_cwnd_bytes{4u << 20};
  int dupack_threshold{3};
  sim::Time min_rto{200 * sim::kMillisecond};  ///< Linux default
  sim::Time initial_rtt{1 * sim::kMillisecond};
  bool ecn{false};      ///< RFC3168 inner ECN (off for a vanilla tenant)
  bool dctcp{false};    ///< DCTCP extension (§7); implies ecn semantics
  double dctcp_g{1.0 / 16.0};
  int ack_every{2};     ///< delayed-ACK ratio
  sim::Time delack_timeout{200 * sim::kMicrosecond};
  bool limited_transmit{true};  ///< RFC 3042: new data on first dupacks
  bool tail_loss_probe{true};   ///< Linux-style TLP: probe before the RTO
  sim::Time min_tlp{1 * sim::kMillisecond};
  /// SACK-based loss recovery (RFC 6675-style scoreboard + pipe). Always on
  /// in the Linux stacks of the paper's testbed; disable to get classic
  /// NewReno hole-per-RTT recovery.
  bool sack{true};
};

struct TcpSenderStats {
  std::uint64_t bytes_sent{0};
  std::uint64_t bytes_acked{0};
  std::uint64_t packets_sent{0};
  std::uint64_t fast_retransmits{0};
  std::uint64_t timeouts{0};
  std::uint64_t ecn_reductions{0};
  /// Head retransmits triggered by a path eviction (on_path_evicted) rather
  /// than by dupacks or the RTO — the edge-recovery fast path.
  std::uint64_t evict_repins{0};
};

/// The hypervisor-facing side of a VM vNIC: VM stacks hand packets to it,
/// and the owning host delivers inbound packets back via TcpEndpoint.
class VmPort {
 public:
  virtual ~VmPort() = default;
  virtual void vm_send(net::PacketPtr pkt) = 0;
  virtual sim::Simulator& simulator() = 0;
};

class TcpSender;

/// Observer installed on a TcpSender by the hybrid flow/packet engine
/// (clove::hybrid). The sender reports ack-clock events the engine's
/// promotion predicate and demotion triggers feed on; null hooks cost one
/// branch on the ack path and nothing else.
class SenderHook {
 public:
  virtual ~SenderHook() = default;
  /// A cumulative ACK advanced snd_una with a clean scoreboard (no SACK
  /// blocks, no dupacks, not in recovery): `acked` new bytes confirmed.
  virtual void on_clean_ack(TcpSender& s, std::uint64_t acked) = 0;
  /// Any loss/congestion signal: dupack-triggered recovery, RTO, ECN
  /// reduction, or an eviction-triggered head retransmit.
  virtual void on_loss_event(TcpSender& s) = 0;
  /// The sender is being destroyed; drop all references.
  virtual void on_sender_gone(TcpSender& s) = 0;
};

/// Anything that consumes inbound inner packets (sender or receiver half).
class TcpEndpoint {
 public:
  virtual ~TcpEndpoint() = default;
  virtual void on_packet(net::PacketPtr pkt) = 0;
  /// Downcast hook for the hybrid engine: non-null iff this endpoint is a
  /// plain TcpSender (MPTCP subflow senders are registered via their own
  /// endpoints and still return themselves; the engine filters those by
  /// their coupled-increase hooks instead).
  virtual TcpSender* as_sender() { return nullptr; }
  /// Hybrid fast-forward: the fluid model delivered the stream up to byte
  /// `pos`. Receivers advance their cumulative state; other endpoints
  /// ignore it.
  virtual void hybrid_sync(std::uint64_t pos) { (void)pos; }
  /// The hypervisor's path-health monitor evicted an uplink port toward
  /// `dst_ip`. The guest stack cannot see overlay paths, so the default is a
  /// no-op; senders that keep data in flight may use it to cut short a stall
  /// on the dead path (the edge re-pins the retransmission elsewhere).
  virtual void on_path_evicted(net::IpAddr dst_ip, std::uint16_t port,
                               sim::Time now) {
    (void)dst_ip;
    (void)port;
    (void)now;
  }
};

/// One-directional TCP byte-stream sender: NewReno congestion control with
/// fast retransmit/recovery, RTO with exponential backoff, optional RFC3168
/// ECN reaction and optional DCTCP fractional reaction. Sequence numbers are
/// 64-bit byte offsets (no wrap handling needed).
///
/// Jobs are framed as byte ranges on the persistent stream: write() appends
/// and registers a completion callback fired when the range is fully acked —
/// matching the paper's workload of many jobs per persistent connection.
class TcpSender : public TcpEndpoint {
 public:
  using Completion = std::function<void(sim::Time acked_at)>;

  TcpSender(VmPort& port, net::FiveTuple tuple, TcpConfig cfg = {});
  ~TcpSender() override;

  /// Append `bytes` to the stream; `done` fires when the last byte is acked.
  void write(std::uint64_t bytes, Completion done = nullptr);

  void on_packet(net::PacketPtr pkt) override;

  /// Path eviction toward our destination: if data is outstanding and the
  /// flow has not made progress for ~1 RTT (it was riding the dead path),
  /// immediately retransmit the head segment instead of waiting out the RTO.
  /// The edge's policy has already dropped the evicted port, so the
  /// retransmission hashes onto a live path.
  void on_path_evicted(net::IpAddr dst_ip, std::uint16_t port,
                       sim::Time now) override;

  [[nodiscard]] const net::FiveTuple& tuple() const { return tuple_; }
  [[nodiscard]] const TcpSenderStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint64_t bytes_outstanding() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint64_t stream_end() const { return stream_end_; }
  [[nodiscard]] std::uint64_t snd_una() const { return snd_una_; }
  [[nodiscard]] sim::Time srtt() const { return srtt_; }
  [[nodiscard]] bool idle() const { return snd_una_ == stream_end_; }

  /// Coupled-increase hook for MPTCP (returns bytes to add to cwnd per
  /// `acked` bytes in congestion avoidance). Default: Reno (mss*acked/cwnd).
  std::function<std::uint64_t(std::uint64_t acked)> ca_increase;

  /// Fires whenever snd_una advances (used by MPTCP's scheduler).
  std::function<void()> on_progress;

  // --- hybrid flow/packet engine (clove::hybrid) ---------------------------

  [[nodiscard]] TcpSender* as_sender() override { return this; }

  /// Install/clear the promotion-engine hook (null detaches).
  void hybrid_set_hook(SenderHook* hook) { hook_ = hook; }

  /// Whether this sender is currently promoted to the fluid model.
  [[nodiscard]] bool hybrid_promoted() const { return hybrid_promoted_; }

  /// Flag the next outgoing data segment to capture its link-level path
  /// (Packet::htrace) so the engine learns which links the current flowlet
  /// rides before promoting.
  void hybrid_request_trace() { trace_next_ = true; }

  /// Promote: freeze the packet-level machinery. Everything at or below
  /// snd_nxt is treated as delivered (the engine syncs the receiver to the
  /// same point); timers stop, the scoreboard clears, and inbound ACKs for
  /// the pre-promotion packets still in flight are discarded.
  void hybrid_suspend();

  /// Fluid delivery advanced the stream to byte `pos` at time `now`: fire
  /// the completions it crossed. Only valid while promoted.
  void hybrid_advance(std::uint64_t pos, sim::Time now);

  /// Demote: resume packet-level sending at the fluid model's final rate
  /// (`rate_bytes_per_sec`), translated into cwnd = rate x srtt. The next
  /// segments re-enter the network as real packets — a fresh flowlet.
  void hybrid_resume(double rate_bytes_per_sec, sim::Time now);

  /// First pending job-completion boundary above snd_una (0 when none) —
  /// the engine schedules exact fluid-advance wakes at these points.
  [[nodiscard]] std::uint64_t next_completion_boundary() const {
    return completions_.empty() ? 0 : completions_.front().first;
  }

 private:
  void try_send();
  void send_segment(std::uint64_t seq, std::uint32_t len, bool retransmit);
  void on_ack(const net::TcpHeader& hdr);
  void handle_dupack();
  // --- SACK scoreboard ---
  void merge_sack_blocks(const net::TcpHeader& hdr);
  [[nodiscard]] std::uint64_t sacked_bytes() const;
  /// First unsacked hole at/above snd_una_ below the highest sacked byte
  /// that has not been retransmitted this recovery; 0-length when none.
  [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> next_hole() const;
  void sack_pump();
  void enter_recovery_sack();
  void on_rto();
  void on_tlp();
  void arm_rto();
  void restart_timers();
  void rtt_sample(sim::Time sample);
  [[nodiscard]] sim::Time rto() const;
  void ecn_reduce();

  VmPort& port_;
  net::FiveTuple tuple_;
  TcpConfig cfg_;
  sim::Timer rto_timer_;
  sim::Timer tlp_timer_;

  // Stream state.
  std::uint64_t stream_end_{0};  ///< bytes written by the application
  std::uint64_t snd_una_{0};
  std::uint64_t snd_nxt_{0};
  std::deque<std::pair<std::uint64_t, Completion>> completions_;

  // Congestion control.
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  int dupacks_{0};
  bool in_recovery_{false};
  std::uint64_t recover_point_{0};
  int rto_backoff_{0};

  // SACK scoreboard: disjoint sacked ranges [start, end) above snd_una_,
  // plus hole starts retransmitted in the current recovery with their send
  // times — a retransmission older than ~1.5 RTT is presumed lost again
  // (RACK-style), so it re-enters the pipe and may be resent.
  std::map<std::uint64_t, std::uint64_t> sacked_;
  std::map<std::uint64_t, sim::Time> hole_retx_;
  [[nodiscard]] sim::Time retx_lost_after() const;

  // ECN / DCTCP.
  bool cwr_pending_{false};       ///< set CWR on next data segment
  std::uint64_t ecn_reduce_until_{0};  ///< one reduction per window
  double dctcp_alpha_{1.0};
  std::uint64_t dctcp_window_start_{0};
  std::uint64_t dctcp_acked_{0};
  std::uint64_t dctcp_marked_{0};

  // RTT estimation (Karn + Jacobson).
  struct SendSample {
    std::uint64_t seq_end;
    sim::Time sent;
    bool retransmitted;
  };
  std::deque<SendSample> samples_;
  sim::Time srtt_{0};
  sim::Time rttvar_{0};
  /// Last time the flow made forward progress (cumulative ACK advanced, or a
  /// send started from idle). Gates the eviction-triggered retransmit so a
  /// healthy flow is not repinned spuriously.
  sim::Time last_progress_{0};

  // Hybrid flow/packet engine state.
  SenderHook* hook_{nullptr};
  bool hybrid_promoted_{false};
  bool trace_next_{false};

  TcpSenderStats stats_;

  // Transport counters, resolved once at construction against the telemetry
  // scope current on the constructing thread. Senders are too numerous for
  // per-sender label sets, so every sender in a scope shares the same cells;
  // per-flow attribution comes from trace events instead. A member (not a
  // function-local static) so each parallel sweep point's senders bind to
  // that point's own scope.
  struct Cells {
    telemetry::Counter* timeouts;
    telemetry::Counter* fast_retransmits;
    telemetry::Counter* ecn_reductions;
    telemetry::Histogram* rtt_us;
  };
  Cells cells_;
};

/// One-directional TCP receiver: cumulative ACKs, out-of-order reassembly,
/// delayed ACKs (immediate on reordering or ECN transitions), RFC3168 or
/// DCTCP-style ECN echo.
class TcpReceiver : public TcpEndpoint {
 public:
  TcpReceiver(VmPort& port, net::FiveTuple reverse_tuple, TcpConfig cfg = {});

  void on_packet(net::PacketPtr pkt) override;

  [[nodiscard]] std::uint64_t bytes_delivered() const { return rcv_nxt_; }
  /// Fires on every in-order delivery with the new cumulative byte count.
  std::function<void(std::uint64_t total_bytes)> on_deliver;

  [[nodiscard]] std::uint64_t reorder_events() const { return reorder_events_; }

  /// Hybrid fast-forward: the fluid model delivered everything up to `pos`.
  /// Jump the cumulative point, prune the reassembly map, and fire
  /// on_deliver — pre-promotion packets still in flight arrive as stale
  /// duplicates afterwards and are acked (harmlessly) below rcv_nxt.
  void hybrid_sync(std::uint64_t pos) override;

 private:
  void send_ack(bool force);
  void do_send_ack();

  VmPort& port_;
  net::FiveTuple reverse_tuple_;  ///< tuple used for outgoing ACKs
  TcpConfig cfg_;
  sim::Timer delack_timer_;

  std::uint64_t rcv_nxt_{0};
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< seq -> end (disjoint)
  net::SackBlock last_block_{};  ///< most recently stored OOO block
  int unacked_segments_{0};
  std::uint64_t reorder_events_{0};

  // ECN state.
  bool ece_latched_{false};   ///< RFC3168: echo until CWR
  bool last_pkt_ce_{false};   ///< DCTCP: echo per-packet CE
};

}  // namespace clove::transport
