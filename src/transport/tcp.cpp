#include "transport/tcp.hpp"

#include <algorithm>

#include "prof/prof.hpp"
#include "sim/logging.hpp"
#include "telemetry/hub.hpp"

namespace clove::transport {

namespace {
constexpr sim::Time kMaxRto = 60 * sim::kSecond;
}

// ---------------------------------------------------------------------------
// TcpSender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(VmPort& port, net::FiveTuple tuple, TcpConfig cfg)
    : port_(port),
      tuple_(tuple),
      cfg_(cfg),
      rto_timer_(port.simulator(), [this] { on_rto(); }),
      tlp_timer_(port.simulator(), [this] { on_tlp(); }),
      cwnd_(static_cast<std::uint64_t>(cfg.initial_cwnd_pkts) * cfg.mss),
      ssthresh_(cfg.max_cwnd_bytes) {
  if (cfg_.dctcp) cfg_.ecn = true;
  auto& m = telemetry::hub().metrics();
  cells_ = Cells{m.counter("tcp.timeouts"), m.counter("tcp.fast_retransmits"),
                 m.counter("tcp.ecn_reductions"), m.histogram("tcp.rtt_us")};
}

TcpSender::~TcpSender() {
  if (hook_ != nullptr) hook_->on_sender_gone(*this);
}

void TcpSender::write(std::uint64_t bytes, Completion done) {
  stream_end_ += bytes;
  if (done) completions_.emplace_back(stream_end_, std::move(done));
  try_send();
}

sim::Time TcpSender::rto() const {
  sim::Time base = (srtt_ == 0) ? 2 * cfg_.initial_rtt
                                : srtt_ + std::max<sim::Time>(4 * rttvar_,
                                                              sim::kMicrosecond);
  base = std::max(base, cfg_.min_rto);
  for (int i = 0; i < rto_backoff_; ++i) {
    base = std::min(base * 2, kMaxRto);
  }
  return base;
}

void TcpSender::arm_rto() {
  // Ensure-semantics: schedule the timers only when they are not already
  // pending, so repeated transmissions cannot push the RTO into the future
  // forever. on_ack() restarts them explicitly on cumulative progress.
  if (snd_una_ < snd_nxt_) {
    if (!rto_timer_.pending()) rto_timer_.schedule_in(rto());
    if (cfg_.tail_loss_probe && !tlp_timer_.pending()) {
      // Probe well before the (potentially huge) RTO would fire; the probe
      // re-arms itself, so a persistent stall keeps probing at PTO spacing
      // instead of waiting the full RTO.
      const sim::Time pto =
          std::max(cfg_.min_tlp, srtt_ > 0 ? 2 * srtt_ : 2 * cfg_.initial_rtt);
      if (pto < rto()) tlp_timer_.schedule_in(pto);
    }
  } else {
    rto_timer_.cancel();
    tlp_timer_.cancel();
  }
}

void TcpSender::restart_timers() {
  rto_timer_.cancel();
  tlp_timer_.cancel();
  arm_rto();
}

void TcpSender::on_tlp() {
  // Tail-loss probe: no ACK progress for ~2 RTTs with data outstanding.
  // Outside recovery, retransmit the LAST outstanding segment: a lost tail
  // is repaired directly, and otherwise the duplicate elicits dupacks that
  // let fast retransmit run instead of a full RTO. Inside recovery, a stall
  // means the retransmission itself was lost; re-send the oldest hole (what
  // SACK-based recovery in a real stack achieves).
  if (snd_una_ >= snd_nxt_) return;
  if (cfg_.sack) {
    // Re-pump first (hole retransmissions older than the probe timeout are
    // presumed lost again), then always probe the TAIL: when a whole burst
    // above the highest SACK was dropped, the pipe model cannot see it, and
    // only the tail probe's SACK can reveal the receiver's true state.
    if (in_recovery_) sack_pump();
    const std::uint64_t len =
        std::min<std::uint64_t>(cfg_.mss, snd_nxt_ - snd_una_);
    send_segment(snd_nxt_ - len, static_cast<std::uint32_t>(len),
                 /*retransmit=*/true);
  } else if (in_recovery_) {
    send_segment(snd_una_,
                 static_cast<std::uint32_t>(std::min<std::uint64_t>(
                     cfg_.mss, snd_nxt_ - snd_una_)),
                 /*retransmit=*/true);
  } else {
    const std::uint64_t len =
        std::min<std::uint64_t>(cfg_.mss, snd_nxt_ - snd_una_);
    send_segment(snd_nxt_ - len, static_cast<std::uint32_t>(len),
                 /*retransmit=*/true);
  }
  arm_rto();  // keep probing at PTO intervals while the stall lasts
}

void TcpSender::rtt_sample(sim::Time m) {
  if (telemetry::enabled()) {
    cells_.rtt_us->observe(static_cast<double>(m) / sim::kMicrosecond);
  }
  if (srtt_ == 0) {
    srtt_ = m;
    rttvar_ = m / 2;
  } else {
    const sim::Time err = srtt_ > m ? srtt_ - m : m - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + m) / 8;
  }
}

void TcpSender::try_send() {
  // Promoted to the fluid model: the engine advances the stream; no packets
  // leave until hybrid_resume().
  if (hybrid_promoted_) return;
  // RFC 3042 limited transmit: the first dupacks each release one new
  // segment so that small windows can still reach the fast-retransmit
  // threshold instead of stalling into an RTO.
  std::uint64_t cwnd = cwnd_;
  if (cfg_.limited_transmit && !in_recovery_ && dupacks_ > 0) {
    cwnd += static_cast<std::uint64_t>(std::min(dupacks_, 2)) * cfg_.mss;
  }
  if (snd_nxt_ == snd_una_ && snd_nxt_ < stream_end_) {
    last_progress_ = port_.simulator().now();  // starting from idle
  }
  while (snd_nxt_ < stream_end_ && snd_nxt_ - snd_una_ < cwnd) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.mss, stream_end_ - snd_nxt_));
    // Avoid a sliver segment when the window has less than one byte... the
    // window check above already guarantees at least one byte of room.
    send_segment(snd_nxt_, len, /*retransmit=*/false);
    snd_nxt_ += len;
  }
  arm_rto();
}

void TcpSender::send_segment(std::uint64_t seq, std::uint32_t len,
                             bool retransmit) {
  auto pkt = net::make_packet(port_.simulator());
  pkt->inner = tuple_;
  pkt->tcp.seq = seq;
  pkt->tcp.ack = 0;
  pkt->tcp.flags.ack = false;
  pkt->payload = len;
  pkt->ttl = 64;
  pkt->sent_at = port_.simulator().now();
  if (trace_next_ && !retransmit && len > 0) {
    pkt->htrace.active = true;
    trace_next_ = false;
  }
  if (cfg_.ecn) {
    pkt->tcp.ect = true;
    if (cwr_pending_) {
      pkt->tcp.flags.cwr = true;
      cwr_pending_ = false;
    }
  }
  samples_.push_back(SendSample{seq + len, port_.simulator().now(), retransmit});
  ++stats_.packets_sent;
  stats_.bytes_sent += len;
  port_.vm_send(std::move(pkt));
}

void TcpSender::on_packet(net::PacketPtr pkt) {
  CLOVE_PROF_SCOPE(prof::kTransport);
  // While promoted, stale ACKs for pre-promotion packets still in flight
  // trickle in below the (already advanced) snd_una; discard them all.
  if (hybrid_promoted_) return;
  if (!pkt->tcp.flags.ack) return;
  on_ack(pkt->tcp);
}

void TcpSender::on_path_evicted(net::IpAddr dst_ip, std::uint16_t port,
                                sim::Time now) {
  (void)port;  // the policy already dropped it; the re-hash picks a live one
  if (dst_ip != tuple_.dst_ip) return;
  if (hybrid_promoted_) {
    // The fluid flow may be riding the evicted path; the engine demotes it
    // so the next (real) packets re-run the path decision.
    if (hook_ != nullptr) hook_->on_loss_event(*this);
    return;
  }
  if (snd_una_ >= snd_nxt_) return;  // nothing in flight to rescue
  // Only act on a flow that is actually stalled: the eviction took ~several
  // probe intervals to fire, so a flow still advancing was not on that path.
  const sim::Time stall = srtt_ > 0 ? srtt_ : cfg_.initial_rtt;
  if (now - last_progress_ < stall) return;
  ++stats_.evict_repins;
  const std::uint64_t len =
      std::min<std::uint64_t>(cfg_.mss, snd_nxt_ - snd_una_);
  send_segment(snd_una_, static_cast<std::uint32_t>(len), /*retransmit=*/true);
  last_progress_ = now;  // one repin per eviction burst, not per dead port
  restart_timers();
}

// ---------------------------------------------------------------------------
// SACK scoreboard (RFC 6675-lite)
// ---------------------------------------------------------------------------

void TcpSender::merge_sack_blocks(const net::TcpHeader& hdr) {
  for (int i = 0; i < hdr.sack_count; ++i) {
    std::uint64_t s = std::max(hdr.sacks[static_cast<std::size_t>(i)].start,
                               snd_una_);
    std::uint64_t e = std::min(hdr.sacks[static_cast<std::size_t>(i)].end,
                               snd_nxt_);
    if (e <= s) continue;
    // Interval-merge [s, e) into the disjoint map.
    auto it = sacked_.lower_bound(s);
    if (it != sacked_.begin() && std::prev(it)->second >= s) --it;
    while (it != sacked_.end() && it->first <= e) {
      s = std::min(s, it->first);
      e = std::max(e, it->second);
      it = sacked_.erase(it);
    }
    sacked_[s] = e;
  }
  // A retransmitted hole that is now sacked is no longer in flight.
  for (auto it = hole_retx_.begin(); it != hole_retx_.end();) {
    auto rit = sacked_.upper_bound(it->first);
    const bool covered =
        rit != sacked_.begin() && std::prev(rit)->second > it->first;
    it = covered ? hole_retx_.erase(it) : ++it;
  }
}

sim::Time TcpSender::retx_lost_after() const {
  const sim::Time rtt = srtt_ > 0 ? srtt_ : cfg_.initial_rtt;
  return rtt + rtt / 2;
}

std::uint64_t TcpSender::sacked_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [s, e] : sacked_) {
    if (e <= snd_una_) continue;
    total += e - std::max(s, snd_una_);
  }
  return total;
}

std::pair<std::uint64_t, std::uint32_t> TcpSender::next_hole() const {
  if (sacked_.empty()) return {0, 0};
  const sim::Time now = port_.simulator().now();
  std::uint64_t pos = snd_una_;
  for (const auto& [s, e] : sacked_) {
    if (e <= pos) continue;
    std::uint64_t h = pos;
    while (h < s) {
      auto rit = hole_retx_.find(h);
      const bool recently_retx =
          rit != hole_retx_.end() && now - rit->second < retx_lost_after();
      if (!recently_retx) {
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>({cfg_.mss, s - h, stream_end_ - h}));
        if (len > 0) return {h, len};
      }
      h += cfg_.mss;
    }
    pos = std::max(pos, e);
  }
  return {0, 0};
}

void TcpSender::enter_recovery_sack() {
  if (hook_ != nullptr) hook_->on_loss_event(*this);
  ++stats_.fast_retransmits;
  if (telemetry::enabled()) cells_.fast_retransmits->add();
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTcp, port_.simulator().now(),
                     tuple_.to_string(), "tcp.fast_retransmit", "sack",
                     static_cast<double>(cwnd_), snd_una_);
  }
  in_recovery_ = true;
  recover_point_ = snd_nxt_;
  const std::uint64_t inflight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<std::uint64_t>(inflight / 2, 2ull * cfg_.mss);
  cwnd_ = ssthresh_;
  hole_retx_.clear();
}

void TcpSender::sack_pump() {
  // RFC 6675-style pipe: bytes believed in flight = outstanding, minus
  // sacked bytes, minus holes below the highest sack (presumed LOST — this
  // is what lets recovery proceed), plus recent hole retransmissions.
  const sim::Time now = port_.simulator().now();
  while (true) {
    const std::uint64_t outstanding = snd_nxt_ - snd_una_;
    const std::uint64_t sb = sacked_bytes();
    std::uint64_t lost = 0;
    std::uint64_t retx_inflight = 0;
    if (!sacked_.empty()) {
      std::uint64_t pos = snd_una_;
      for (const auto& [s, e] : sacked_) {
        if (e <= pos) continue;
        for (std::uint64_t h = pos; h < s; h += cfg_.mss) {
          const std::uint64_t len = std::min<std::uint64_t>(cfg_.mss, s - h);
          auto rit = hole_retx_.find(h);
          if (rit != hole_retx_.end() && now - rit->second < retx_lost_after()) {
            retx_inflight += len;
          } else {
            lost += len;
          }
        }
        pos = std::max(pos, e);
      }
    }
    std::uint64_t pipe = outstanding > sb + lost ? outstanding - sb - lost : 0;
    pipe += retx_inflight;
    if (pipe >= cwnd_) break;
    if (in_recovery_) {
      const auto [hseq, hlen] = next_hole();
      if (hlen > 0) {
        send_segment(hseq, hlen, /*retransmit=*/true);
        hole_retx_[hseq] = now;
        continue;
      }
    }
    if (snd_nxt_ < stream_end_) {
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(cfg_.mss, stream_end_ - snd_nxt_));
      send_segment(snd_nxt_, len, /*retransmit=*/false);
      snd_nxt_ += len;
      continue;
    }
    break;
  }
  arm_rto();
}

void TcpSender::ecn_reduce() {
  // RFC3168 / DCTCP: at most one multiplicative reduction per window.
  if (snd_una_ < ecn_reduce_until_) return;
  if (hook_ != nullptr) hook_->on_loss_event(*this);
  ecn_reduce_until_ = snd_nxt_;
  ++stats_.ecn_reductions;
  if (telemetry::enabled()) cells_.ecn_reductions->add();
  cwr_pending_ = true;
  std::uint64_t new_cwnd;
  if (cfg_.dctcp) {
    new_cwnd = static_cast<std::uint64_t>(
        static_cast<double>(cwnd_) * (1.0 - dctcp_alpha_ / 2.0));
  } else {
    new_cwnd = cwnd_ / 2;
  }
  cwnd_ = std::max<std::uint64_t>(new_cwnd, 2ull * cfg_.mss);
  ssthresh_ = cwnd_;
}

void TcpSender::on_ack(const net::TcpHeader& hdr) {
  std::uint64_t ack = hdr.ack;
  const bool ece = hdr.flags.ece;
  if (ack > snd_nxt_) ack = snd_nxt_;  // corrupted/foreign; clamp

  // DCTCP marked-byte accounting (per-window alpha estimate).
  if (cfg_.dctcp && ack > snd_una_) {
    const std::uint64_t acked = ack - snd_una_;
    dctcp_acked_ += acked;
    if (ece) dctcp_marked_ += acked;
    if (ack >= dctcp_window_start_) {
      const double f = dctcp_acked_ > 0
                           ? static_cast<double>(dctcp_marked_) /
                                 static_cast<double>(dctcp_acked_)
                           : 0.0;
      dctcp_alpha_ = (1.0 - cfg_.dctcp_g) * dctcp_alpha_ + cfg_.dctcp_g * f;
      dctcp_acked_ = dctcp_marked_ = 0;
      dctcp_window_start_ = snd_nxt_;
    }
  }

  if (ece && cfg_.ecn) ecn_reduce();

  if (ack < snd_una_) return;  // stale
  if (cfg_.sack) merge_sack_blocks(hdr);
  if (ack == snd_una_) {
    if (snd_una_ < snd_nxt_) handle_dupack();
    return;
  }

  // New data acked.
  const std::uint64_t acked_bytes = ack - snd_una_;
  stats_.bytes_acked += acked_bytes;
  snd_una_ = ack;
  last_progress_ = port_.simulator().now();
  dupacks_ = 0;
  rto_backoff_ = 0;
  restart_timers();  // cumulative progress restarts the RTO/TLP clocks

  // Prune the scoreboard below the new cumulative ack.
  while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) {
    sacked_.erase(sacked_.begin());
  }
  if (!sacked_.empty() && sacked_.begin()->first < snd_una_) {
    const std::uint64_t e = sacked_.begin()->second;
    sacked_.erase(sacked_.begin());
    sacked_[snd_una_] = e;
  }
  hole_retx_.erase(hole_retx_.begin(), hole_retx_.lower_bound(snd_una_));

  // RTT sample from the most recent fully-acked, never-retransmitted segment.
  sim::Time sample = -1;
  while (!samples_.empty() && samples_.front().seq_end <= ack) {
    if (!samples_.front().retransmitted) {
      sample = port_.simulator().now() - samples_.front().sent;
    }
    samples_.pop_front();
  }
  if (sample >= 0) rtt_sample(sample);

  if (in_recovery_) {
    if (ack >= recover_point_) {
      in_recovery_ = false;
      hole_retx_.clear();
      cwnd_ = std::max<std::uint64_t>(ssthresh_, 2ull * cfg_.mss);
    } else if (!cfg_.sack) {
      // NewReno partial ack: the next hole is lost too; retransmit it and
      // deflate the window by the amount acked. (With SACK the pump below
      // retransmits exactly the known holes instead.)
      send_segment(snd_una_,
                   static_cast<std::uint32_t>(std::min<std::uint64_t>(
                       cfg_.mss, stream_end_ - snd_una_)),
                   /*retransmit=*/true);
      cwnd_ = (cwnd_ > acked_bytes ? cwnd_ - acked_bytes : 0) + cfg_.mss;
    }
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += acked_bytes;  // slow start
  } else {
    cwnd_ += ca_increase ? ca_increase(acked_bytes)
                         : std::max<std::uint64_t>(
                               1, static_cast<std::uint64_t>(cfg_.mss) *
                                      acked_bytes / std::max<std::uint64_t>(
                                                        cwnd_, 1));
  }
  cwnd_ = std::min<std::uint64_t>(cwnd_, cfg_.max_cwnd_bytes);

  // Fire job completions.
  const sim::Time now = port_.simulator().now();
  while (!completions_.empty() && completions_.front().first <= snd_una_) {
    auto done = std::move(completions_.front().second);
    completions_.pop_front();
    done(now);
  }

  if (hook_ != nullptr && !in_recovery_ && dupacks_ == 0 && sacked_.empty()) {
    hook_->on_clean_ack(*this, acked_bytes);
  }

  if (cfg_.sack) {
    sack_pump();
  } else {
    try_send();
  }
  if (on_progress) on_progress();
}

void TcpSender::handle_dupack() {
  ++dupacks_;
  if (cfg_.sack) {
    if (!in_recovery_ &&
        (dupacks_ >= cfg_.dupack_threshold ||
         sacked_bytes() >= 3ull * cfg_.mss)) {
      enter_recovery_sack();
    }
    if (!in_recovery_ && cfg_.limited_transmit) {
      try_send();  // limited transmit before the threshold
    } else {
      sack_pump();
    }
    return;
  }
  if (in_recovery_) {
    // Window inflation: each dupack signals a departed packet.
    cwnd_ += cfg_.mss;
    try_send();
    return;
  }
  if (dupacks_ < cfg_.dupack_threshold) {
    try_send();  // limited transmit may release a segment
    return;
  }
  if (dupacks_ >= cfg_.dupack_threshold) {
    if (hook_ != nullptr) hook_->on_loss_event(*this);
    ++stats_.fast_retransmits;
    if (telemetry::enabled()) cells_.fast_retransmits->add();
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kTcp, port_.simulator().now(),
                       tuple_.to_string(), "tcp.fast_retransmit", "dupack",
                       static_cast<double>(cwnd_), snd_una_);
    }
    in_recovery_ = true;
    recover_point_ = snd_nxt_;
    const std::uint64_t inflight = snd_nxt_ - snd_una_;
    ssthresh_ = std::max<std::uint64_t>(inflight / 2, 2ull * cfg_.mss);
    cwnd_ = ssthresh_ + 3ull * cfg_.mss;
    send_segment(snd_una_,
                 static_cast<std::uint32_t>(std::min<std::uint64_t>(
                     cfg_.mss, stream_end_ - snd_una_)),
                 /*retransmit=*/true);
    arm_rto();
  }
}

void TcpSender::on_rto() {
  if (snd_una_ >= snd_nxt_) return;  // nothing outstanding
  if (hook_ != nullptr) hook_->on_loss_event(*this);
  ++stats_.timeouts;
  if (telemetry::enabled()) cells_.timeouts->add();
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTcp, port_.simulator().now(),
                     tuple_.to_string(), "tcp.timeout",
                     "backoff " + std::to_string(rto_backoff_),
                     static_cast<double>(snd_nxt_ - snd_una_), snd_una_);
  }
  ++rto_backoff_;
  ssthresh_ = std::max<std::uint64_t>((snd_nxt_ - snd_una_) / 2, 2ull * cfg_.mss);
  cwnd_ = cfg_.mss;
  in_recovery_ = false;
  dupacks_ = 0;
  // Go-back-N: rewind and resend from the hole. The scoreboard is dropped
  // (sack reneging is legal), trading some redundant bytes for simplicity.
  sacked_.clear();
  hole_retx_.clear();
  snd_nxt_ = snd_una_;
  samples_.clear();
  try_send();
  arm_rto();
}

// ---------------------------------------------------------------------------
// Hybrid flow/packet engine bridge (clove::hybrid)
// ---------------------------------------------------------------------------

void TcpSender::hybrid_suspend() {
  hybrid_promoted_ = true;
  trace_next_ = false;
  // Treat everything already sent as delivered: the engine syncs the
  // receiver to the same point, so the in-flight packets arrive as stale
  // duplicates there and their ACKs are discarded here (see on_packet).
  if (snd_nxt_ > snd_una_) {
    stats_.bytes_acked += snd_nxt_ - snd_una_;
    snd_una_ = snd_nxt_;
  }
  dupacks_ = 0;
  in_recovery_ = false;
  rto_backoff_ = 0;
  sacked_.clear();
  hole_retx_.clear();
  samples_.clear();
  rto_timer_.cancel();
  tlp_timer_.cancel();
  const sim::Time now = port_.simulator().now();
  last_progress_ = now;
  while (!completions_.empty() && completions_.front().first <= snd_una_) {
    auto done = std::move(completions_.front().second);
    completions_.pop_front();
    done(now);
  }
}

void TcpSender::hybrid_advance(std::uint64_t pos, sim::Time now) {
  if (!hybrid_promoted_ || pos <= snd_una_) return;
  if (pos > stream_end_) pos = stream_end_;
  // Fluid bytes never ride packets, so both send- and ack-side counters
  // advance here to keep transport_totals conservation intact.
  stats_.bytes_sent += pos - snd_una_;
  stats_.bytes_acked += pos - snd_una_;
  snd_una_ = pos;
  if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
  last_progress_ = now;
  while (!completions_.empty() && completions_.front().first <= snd_una_) {
    auto done = std::move(completions_.front().second);
    completions_.pop_front();
    done(now);
  }
}

void TcpSender::hybrid_resume(double rate_bytes_per_sec, sim::Time now) {
  if (!hybrid_promoted_) return;
  hybrid_promoted_ = false;
  // Translate the fluid model's final fair-share rate into a window so the
  // packet-level flow resumes at the bandwidth it was just granted instead
  // of re-running slow start from scratch.
  const sim::Time rtt = srtt_ > 0 ? srtt_ : cfg_.initial_rtt;
  const auto bdp = static_cast<std::uint64_t>(
      rate_bytes_per_sec * static_cast<double>(rtt) /
      static_cast<double>(sim::kSecond));
  cwnd_ = std::clamp<std::uint64_t>(bdp, 2ull * cfg_.mss, cfg_.max_cwnd_bytes);
  ssthresh_ = cwnd_;
  dupacks_ = 0;
  in_recovery_ = false;
  rto_backoff_ = 0;
  ecn_reduce_until_ = snd_nxt_;  // stale pre-promotion ECE must not halve us
  last_progress_ = now;
  try_send();
}

// ---------------------------------------------------------------------------
// TcpReceiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(VmPort& port, net::FiveTuple reverse_tuple,
                         TcpConfig cfg)
    : port_(port),
      reverse_tuple_(reverse_tuple),
      cfg_(cfg),
      delack_timer_(port.simulator(), [this] { do_send_ack(); }) {
  if (cfg_.dctcp) cfg_.ecn = true;
}

void TcpReceiver::on_packet(net::PacketPtr pkt) {
  CLOVE_PROF_SCOPE(prof::kTransport);
  if (pkt->payload == 0) return;  // pure control; nothing to ack

  const bool ce = pkt->tcp.ce;
  bool ecn_transition = false;
  if (cfg_.dctcp) {
    ecn_transition = (ce != last_pkt_ce_);
    last_pkt_ce_ = ce;
  } else if (ce && !ece_latched_) {
    ece_latched_ = true;
    ecn_transition = true;
  }
  if (pkt->tcp.flags.cwr) ece_latched_ = false;

  const std::uint64_t seq = pkt->tcp.seq;
  const std::uint64_t end = seq + pkt->payload;
  bool out_of_order = false;

  if (end <= rcv_nxt_) {
    // Pure duplicate (e.g. spurious retransmit); ack immediately.
    out_of_order = true;
  } else if (seq <= rcv_nxt_) {
    rcv_nxt_ = end;
    // Drain any now-contiguous buffered segments.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      it = ooo_.erase(it);
    }
    if (on_deliver) on_deliver(rcv_nxt_);
  } else {
    out_of_order = true;
    ++reorder_events_;
    // Store [seq, end); keep the map disjoint by merging overlaps.
    auto [it, inserted] = ooo_.try_emplace(seq, end);
    if (!inserted) {
      it->second = std::max(it->second, end);
    }
    last_block_ = net::SackBlock{it->first, it->second};
  }

  ++unacked_segments_;
  send_ack(out_of_order || ecn_transition);
}

void TcpReceiver::hybrid_sync(std::uint64_t pos) {
  if (pos <= rcv_nxt_) return;
  rcv_nxt_ = pos;
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->first <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, it->second);
    it = ooo_.erase(it);
  }
  last_block_ = net::SackBlock{};
  if (on_deliver) on_deliver(rcv_nxt_);
}

void TcpReceiver::send_ack(bool force) {
  if (force || unacked_segments_ >= cfg_.ack_every) {
    do_send_ack();
  } else if (!delack_timer_.pending()) {
    delack_timer_.schedule_in(cfg_.delack_timeout);
  }
}

void TcpReceiver::do_send_ack() {
  delack_timer_.cancel();
  unacked_segments_ = 0;
  auto ack = net::make_packet(port_.simulator());
  ack->inner = reverse_tuple_;
  ack->tcp.flags.ack = true;
  ack->tcp.ack = rcv_nxt_;
  ack->payload = 0;
  ack->ttl = 64;
  ack->sent_at = port_.simulator().now();
  if (cfg_.ecn) {
    const bool echo = cfg_.dctcp ? last_pkt_ce_ : ece_latched_;
    ack->tcp.flags.ece = echo;
  }
  if (cfg_.sack) {
    // Attach up to 3 SACK blocks: the most recently received block first
    // (RFC 2018), then older blocks ascending.
    if (last_block_.end > last_block_.start &&
        last_block_.start >= rcv_nxt_) {
      ack->tcp.sacks[ack->tcp.sack_count++] = last_block_;
    }
    for (const auto& [s, e] : ooo_) {
      if (ack->tcp.sack_count >= 3) break;
      if (s == last_block_.start) continue;
      ack->tcp.sacks[ack->tcp.sack_count++] = net::SackBlock{s, e};
    }
  }
  port_.vm_send(std::move(ack));
}

}  // namespace clove::transport
