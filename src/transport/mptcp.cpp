#include "transport/mptcp.hpp"

#include <algorithm>
#include <limits>

namespace clove::transport {

MptcpSender::MptcpSender(VmPort& port, net::FiveTuple base_tuple,
                         MptcpConfig cfg)
    : port_(port), cfg_(cfg) {
  for (int i = 0; i < cfg_.subflows; ++i) {
    net::FiveTuple t = base_tuple;
    t.src_port = static_cast<std::uint16_t>(base_tuple.src_port + i);
    auto sf = std::make_unique<TcpSender>(port_, t, cfg_.tcp);
    if (cfg_.coupled) {
      const std::size_t idx = static_cast<std::size_t>(i);
      sf->ca_increase = [this, idx](std::uint64_t acked) {
        return lia_increase(idx, acked);
      };
    }
    sf->on_progress = [this] { pump(); };
    subflows_.push_back(std::move(sf));
  }
}

std::vector<TcpSender*> MptcpSender::endpoints() {
  std::vector<TcpSender*> out;
  out.reserve(subflows_.size());
  for (auto& sf : subflows_) out.push_back(sf.get());
  return out;
}

std::uint64_t MptcpSender::total_cwnd() const {
  std::uint64_t total = 0;
  for (const auto& sf : subflows_) total += sf->cwnd();
  return total;
}

std::uint64_t MptcpSender::lia_increase(std::size_t flow_idx,
                                        std::uint64_t acked) const {
  // LIA (RFC 6356): increase = min( alpha * acked * mss / cwnd_total,
  //                                 acked * mss / cwnd_i )
  // with alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i/rtt_i)^2.
  const std::uint64_t mss = cfg_.tcp.mss;
  double max_term = 0.0;
  double sum_term = 0.0;
  for (const auto& sf : subflows_) {
    const double rtt = std::max(1e-6, sim::to_seconds(sf->srtt() > 0
                                                          ? sf->srtt()
                                                          : cfg_.tcp.initial_rtt));
    const double w = static_cast<double>(sf->cwnd());
    max_term = std::max(max_term, w / (rtt * rtt));
    sum_term += w / rtt;
  }
  const double total = static_cast<double>(total_cwnd());
  if (sum_term <= 0.0) return mss * acked / std::max<std::uint64_t>(1, total_cwnd());
  const double alpha = total * max_term / (sum_term * sum_term);
  const double coupled = alpha * static_cast<double>(acked * mss) / total;
  const double uncoupled =
      static_cast<double>(acked * mss) /
      static_cast<double>(std::max<std::uint64_t>(1, subflows_[flow_idx]->cwnd()));
  return static_cast<std::uint64_t>(std::max(0.0, std::min(coupled, uncoupled)));
}

void MptcpSender::write(std::uint64_t bytes, Completion done) {
  jobs_.push_back(Job{});
  Job& job = jobs_.back();
  const std::size_t job_idx = jobs_.size() - 1;
  std::uint64_t left = bytes;
  while (left > 0) {
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, cfg_.chunk_bytes));
    pending_chunks_.emplace_back(chunk, job_idx);
    ++job.remaining_chunks;
    left -= chunk;
  }
  job.done = std::move(done);
  if (job.remaining_chunks == 0) {
    // Zero-byte job: complete immediately.
    if (job.done) job.done(port_.simulator().now());
  }
  pump();
}

void MptcpSender::pump() {
  while (!pending_chunks_.empty()) {
    // Choose the subflow with window room and the smallest backlog-to-cwnd
    // ratio (ties: lowest smoothed RTT) — a practical model of the Linux
    // MPTCP lowest-RTT-first scheduler.
    TcpSender* best = nullptr;
    double best_score = std::numeric_limits<double>::max();
    for (auto& sf : subflows_) {
      const std::uint64_t backlog = sf->stream_end() - sf->snd_una();
      if (backlog >= sf->cwnd() + cfg_.chunk_bytes) continue;  // saturated
      const double score =
          static_cast<double>(backlog) /
              static_cast<double>(std::max<std::uint64_t>(1, sf->cwnd())) +
          1e-9 * static_cast<double>(sf->srtt());
      if (score < best_score) {
        best_score = score;
        best = sf.get();
      }
    }
    if (best == nullptr) return;  // all subflows saturated; wait for ACKs

    auto [chunk, job_idx] = pending_chunks_.front();
    pending_chunks_.pop_front();
    best->write(chunk, [this, job_idx](sim::Time t) {
      Job& job = jobs_[job_idx];
      if (--job.remaining_chunks == 0 && job.done) job.done(t);
    });
  }
}

}  // namespace clove::transport
