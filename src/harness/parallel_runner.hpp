#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/scope.hpp"

namespace clove::harness {

/// Threads to use for parallel sweeps: the CLOVE_THREADS environment knob,
/// else std::thread::hardware_concurrency(). CLOVE_THREADS=1 disables
/// parallelism (tasks run inline on the caller, the pre-runner behavior).
[[nodiscard]] unsigned default_threads();

/// Work-stealing thread pool for embarrassingly parallel sweep points.
///
/// Each sweep point is an independent simulation: its own Simulator, its own
/// packet pool, and — via telemetry::ScopeGuard — its own telemetry scope, so
/// worker threads share no mutable state and results are bit-identical to a
/// serial run at equal seeds (per-point RNG seeding and per-simulation packet
/// uids make thread count invisible to the simulation).
///
/// Scheduling: submitted tasks are dealt round-robin onto per-worker deques;
/// a worker pops its own deque from the front and steals from victims' backs
/// when empty. Tasks are coarse (whole simulations, seconds each), so the
/// single pool mutex is nowhere near contention — stealing exists to absorb
/// the large per-point runtime variance of a load sweep, not to shave
/// nanoseconds.
///
/// map() delivers results in input order regardless of completion order, so
/// artifact files and stdout summaries are deterministic too.
///
/// Lifecycle: construction only records the thread count — workers are
/// spawned per run_all() call and joined before it returns, so a runner is
/// cheap to create, reusable for consecutive batches, and holds no threads
/// while idle. run_all() is not itself thread-safe (one batch at a time)
/// and must not be called from inside one of its own tasks.
class ParallelRunner {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` means default_threads(). With one thread no workers are
  /// spawned and run_all()/map() execute inline on the calling thread.
  explicit ParallelRunner(unsigned threads = 0);
  ~ParallelRunner();
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run every task to completion (in parallel when threads() > 1). Each task
  /// executes under a fresh telemetry Scope inheriting the submitter's
  /// settings — including when inline — so telemetry isolation does not
  /// depend on thread count. The calling thread participates in the work.
  /// The first task exception (by input order) is rethrown after all tasks
  /// finish.
  void run_all(std::vector<Task> tasks);

  /// run_all() for value-returning functions: results come back in input
  /// order, not completion order. R must be default-constructible (results
  /// are pre-sized) and move-assignable. If any task throws, the first
  /// exception by *input order* propagates after all tasks finish — the
  /// slots of throwing tasks are left default-constructed, but the caller
  /// never sees them.
  template <typename R>
  [[nodiscard]] std::vector<R> map(std::vector<std::function<R()>> fns) {
    std::vector<R> results(fns.size());
    std::vector<Task> tasks;
    tasks.reserve(fns.size());
    for (std::size_t i = 0; i < fns.size(); ++i) {
      tasks.push_back(
          [&results, i, fn = std::move(fns[i])] { results[i] = fn(); });
    }
    run_all(std::move(tasks));
    return results;
  }

 private:
  struct Shared;  // the mutex-guarded pool state (defined in the .cpp)

  unsigned threads_;
};

}  // namespace clove::harness
