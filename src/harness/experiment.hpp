#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "hybrid/hybrid.hpp"
#include "net/topology.hpp"
#include "overlay/hypervisor.hpp"
#include "stats/stats.hpp"
#include "stats/timeseries.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "transport/tcp.hpp"
#include "workload/client_server.hpp"

namespace clove::harness {

/// Every load-balancing scheme the paper evaluates, plus the extensions.
enum class Scheme {
  kEcmp,
  kEdgeFlowlet,
  kCloveEcn,
  kCloveInt,
  kCloveLatency,  ///< §7 extension
  kPresto,
  kMptcp,
  kConga,    ///< in-switch comparator (simulation, §6)
  kLetFlow,  ///< in-switch flowlet ablation (§8)
};

[[nodiscard]] std::string scheme_name(Scheme s);
[[nodiscard]] bool scheme_is_edge_based(Scheme s);

/// One experiment = one topology + one scheme + one workload + one seed.
struct ExperimentConfig {
  Scheme scheme{Scheme::kCloveEcn};
  bool asymmetric{false};  ///< fail one S2-L2 link (§5.2/§6.2)
  std::uint64_t seed{1};

  net::LeafSpineConfig topo{};

  // Clove parameters (§3.2/§4; swept by Fig. 6 and the A2 ablation).
  sim::Time flowlet_gap{100 * sim::kMicrosecond};
  std::int64_t ecn_threshold_pkts{20};
  sim::Time feedback_relay_interval{50 * sim::kMicrosecond};
  double clove_reduce_factor{1.0 / 3.0};
  sim::Time clove_congestion_expiry{1500 * sim::kMicrosecond};
  sim::Time clove_recovery_interval{10 * sim::kMillisecond};
  double clove_recovery_rate{0.005};
  /// §7 "Flowlet optimization": adapt Clove-ECN's flowlet gap to the
  /// observed per-path delay spread (enables latency measurement/relay).
  bool adaptive_flowlet_gap{false};
  /// Run Clove in the §7 non-overlay (five-tuple rewriting) mode.
  bool non_overlay{false};
  /// Disable Presto's receiver-side flowcell reassembly buffer. Presto is
  /// broken without it (the VM sees raw flowcell interleaving); the knob
  /// exists so the flight recorder's no-reorder auditor can demonstrate
  /// exactly that (the negative test in test_flight_recorder.cpp).
  bool presto_no_reorder{false};

  // Guest transport. min RTO defaults to the "testbed" profile; the Fig. 8
  // NS2-style benches lower it (see make_ns2_profile()).
  transport::TcpConfig tcp{};
  transport::MptcpConfig mptcp{};

  // Discovery runs before traffic starts.
  overlay::TracerouteConfig discovery{};
  sim::Time traffic_start{30 * sim::kMillisecond};
  sim::Time max_sim_time{600 * sim::kSecond};

  /// Scheduled fault events (DESIGN.md §8). When empty, the Testbed falls
  /// back to CLOVE_FAULT_PLAN from the environment; when that is unset too,
  /// no injector is armed.
  fault::FaultPlan fault_plan{};
  /// Source-side path-health monitoring (keepalives, eviction, re-probe).
  /// Off by default: the symmetric experiments don't need it and it adds
  /// timer events to every run.
  overlay::PathHealthConfig path_health{};

  /// Hybrid flow/packet engine (DESIGN.md §12). Defaults to the CLOVE_HYBRID
  /// environment (off unless CLOVE_HYBRID=on), so existing entry points are
  /// bit-identical to the packet-exact simulator.
  hybrid::HybridConfig hybrid{hybrid::HybridConfig::from_env()};
};

/// Shared result shape for the FCT experiments.
struct ExperimentResult {
  double avg_fct_s{0.0};
  double mice_avg_fct_s{0.0};
  double elephant_avg_fct_s{0.0};
  double p99_fct_s{0.0};
  double mice_p99_fct_s{0.0};
  std::uint64_t jobs{0};
  std::uint64_t timeouts{0};
  std::uint64_t fast_retransmits{0};
  std::uint64_t ecn_marks{0};
  std::uint64_t drops{0};
  std::uint64_t events{0};
  /// Most events simultaneously pending in the simulator's queue — the
  /// engine's memory-pressure gauge, fed to clove::prof and bench artifacts.
  std::uint64_t queue_hwm{0};
  /// Raw recorder for CDFs (Fig. 9) — populated from the last seed run.
  std::shared_ptr<stats::FctRecorder> fct;
  /// Telemetry registry snapshot taken at run end (empty values when the
  /// telemetry hub is disabled; see CLOVE_TELEMETRY).
  telemetry::MetricsSnapshot metrics;
  /// Flight-recorder digest (mode kOff when CLOVE_FLIGHT_RECORDER is unset):
  /// journey/provenance counts, per-path usage, audit verdicts.
  telemetry::FlightSummary flight;
};

/// A fully-built testbed ready to run: topology, hosts, workload hooks.
/// Exposed so examples/tests can compose custom scenarios; the one-call
/// entry points below cover the paper's experiments.
class Testbed {
 public:
  Testbed(const ExperimentConfig& cfg);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Topology& topology() { return *topo_; }
  [[nodiscard]] net::LeafSpine& fabric() { return fabric_; }
  [[nodiscard]] std::vector<overlay::Hypervisor*>& clients() { return clients_; }
  [[nodiscard]] std::vector<overlay::Hypervisor*>& servers() { return servers_; }
  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }

  /// Kick off path discovery between all client/server pairs (no-op for
  /// schemes that do not need it).
  void start_discovery();

  /// Fail the S2-L2 link the paper disables (idempotent).
  void fail_s2_l2_link();
  void restore_s2_l2_link();

  /// Sum of drops / ECN marks over all links.
  [[nodiscard]] std::uint64_t total_drops() const;
  [[nodiscard]] std::uint64_t total_ecn_marks() const;

  /// Per-fabric-link utilization and queue-depth time series, sampled while
  /// the flight recorder is active (null otherwise). Series are named
  /// "util:<link>" and "queue:<link>"; exported as flight_*_timeseries.csv.
  [[nodiscard]] stats::TimeSeriesSet* flight_watch() {
    return flight_watch_.get();
  }

  /// The armed fault injector, or null when the effective plan was empty.
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }

  /// The hybrid flow/packet engine, or null when cfg.hybrid.enabled is off.
  [[nodiscard]] hybrid::Engine* hybrid() { return hybrid_.get(); }

 private:
  std::unique_ptr<lb::Policy> make_policy();
  overlay::HypervisorConfig make_hyp_config();

  ExperimentConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topo_;
  net::LeafSpine fabric_;
  std::vector<overlay::Hypervisor*> clients_;
  std::vector<overlay::Hypervisor*> servers_;
  std::unique_ptr<stats::TimeSeriesSet> flight_watch_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<hybrid::Engine> hybrid_;
};

/// Run the §5/§6 client-server FCT workload for one (scheme, load) point.
ExperimentResult run_fct_experiment(const ExperimentConfig& cfg,
                                    const workload::ClientServerConfig& wl);

/// Run the §5.3 incast workload; returns achieved goodput in Gb/s.
double run_incast_experiment(const ExperimentConfig& cfg,
                             const workload::IncastConfig& wl);

/// Environment-based scale controls for the bench harness:
/// CLOVE_JOBS (jobs per connection), CLOVE_SEEDS (averaging runs),
/// CLOVE_CONNS (connections per client). Defaults keep the full bench suite
/// in the minutes range; paper-scale values reproduce §5 magnitudes.
struct BenchScale {
  int jobs_per_conn;
  int seeds;
  int conns_per_client;
  static BenchScale from_env();
};

/// The paper's two evaluation profiles.
ExperimentConfig make_testbed_profile();  ///< §5: Linux stacks, 200ms min RTO
ExperimentConfig make_ns2_profile();      ///< §6: simulation profile

}  // namespace clove::harness
