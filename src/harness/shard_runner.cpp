#include "harness/shard_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "harness/parallel_runner.hpp"
#include "net/packet_pool.hpp"

namespace clove::harness {

int default_shards() {
  if (const char* env = std::getenv("CLOVE_SHARDS")) {
    const int n = std::atoi(env);
    if (n >= 1) return std::min(n, 256);
  }
  return 1;
}

namespace {

/// Spin briefly, then yield. Windows are short (tens of microseconds of
/// simulated work each), so a parked thread rarely waits long — but on
/// machines with fewer cores than workers a pure spin would burn the very
/// timeslice the running worker needs, so the loop backs off to the
/// scheduler. Returns the wait in wall ns when `timed`.
template <typename Pred>
std::uint64_t wait_until(Pred&& done, bool timed) {
  const std::uint64_t t0 = timed ? prof::detail::now_ns() : 0;
  int spins = 0;
  while (!done()) {
    if (++spins >= 256) {
      std::this_thread::yield();
      spins = 0;
    }
  }
  return timed ? prof::detail::now_ns() - t0 : 0;
}

}  // namespace

ShardRunner::ShardRunner(net::ShardDomain& domain, unsigned threads)
    : domain_(domain), n_(domain.shard_count()) {
  const unsigned want = threads == 0 ? default_threads() : threads;
  p_ = std::clamp(want, 1u, static_cast<unsigned>(n_));

  scope_of_.resize(static_cast<std::size_t>(n_));
  scope_of_[0] = &telemetry::current_scope();
  const telemetry::ScopeSettings settings = scope_of_[0]->settings();
  for (int s = 1; s < n_; ++s) {
    extra_scopes_.push_back(std::make_unique<telemetry::Scope>(settings));
    scope_of_[static_cast<std::size_t>(s)] = extra_scopes_.back().get();
  }
  for (int s = 0; s < n_; ++s) {
    domain_.set_scope(s, scope_of_[static_cast<std::size_t>(s)]);
  }

  if (prof::Profiler* session = prof::active()) {
    shard_profs_.reserve(static_cast<std::size_t>(n_));
    for (int s = 0; s < n_; ++s) {
      shard_profs_.push_back(std::make_unique<prof::Profiler>(session->mode()));
    }
  }

  threads_.reserve(p_ - 1);
  for (unsigned w = 1; w < p_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardRunner::~ShardRunner() {
  if (p_ > 1) {
    quit_.store(true, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
  }
  if (!shard_profs_.empty()) {
    for (int s = 0; s < n_; ++s) {
      prof::Profiler& sp = *shard_profs_[static_cast<std::size_t>(s)];
      sim::Simulator& sm = domain_.sim(s);
      sp.note_simulator(sm.events_processed(), sm.queue_high_water(),
                        sm.queue_slab_capacity());
      net::PacketPool& pool = net::PacketPool::of(sm);
      sp.note_pool(pool.allocated(), pool.reused());
    }
    if (prof::Profiler* session = prof::active()) {
      for (int s = 0; s < n_; ++s) {
        session->note_shard(s, *shard_profs_[static_cast<std::size_t>(s)]);
      }
      for (int s = 0; s < n_; ++s) {
        session->merge_from(*shard_profs_[static_cast<std::size_t>(s)]);
      }
    }
  }
  // The extra scopes die with this runner; leave no dangling registrations.
  for (int s = 0; s < n_; ++s) domain_.set_scope(s, nullptr);
}

void ShardRunner::run(sim::Time until) {
  const sim::Time lookahead = domain_.lookahead();
  for (;;) {
    const sim::Time t_next = domain_.next_event_time();
    const sim::Time t_global = domain_.next_global_time();
    const sim::Time start = std::min(t_next, t_global);
    if (start == sim::kTimeNever || start > until) break;
    if (t_global <= t_next) {
      // Every shard queue is empty below t_global, so the due actions run
      // with all clocks aligned at their timestamp — same relative order a
      // serial run gives events armed ahead of same-time packet work.
      domain_.run_globals_until(t_global);
      continue;
    }
    // Conservative window [start, end] (inclusive): bounded by the caller's
    // horizon, the next global action, and the lookahead — a packet staged
    // at t arrives no earlier than t + lookahead, which lands strictly past
    // the window, so no shard can receive a cross-shard event late.
    sim::Time end = until;
    if (lookahead != sim::kTimeNever && lookahead <= until - start) {
      end = std::min(end, start + lookahead - 1);
    }
    if (t_global != sim::kTimeNever) end = std::min(end, t_global - 1);
    execute_window(end);
    domain_.drain_channels();
  }
}

void ShardRunner::execute_window(sim::Time until_inclusive) {
  ++windows_;
  if (p_ == 1) {
    for (int s = 0; s < n_; ++s) run_shard(s, until_inclusive);
    return;
  }
  publish(until_inclusive);
  for (int s = 0; s < n_; s += static_cast<int>(p_)) {
    run_shard(s, until_inclusive);
  }
  wait_for_workers();
}

void ShardRunner::publish(sim::Time until_inclusive) {
  window_end_ = until_inclusive;
  done_.store(0, std::memory_order_relaxed);
  gen_.fetch_add(1, std::memory_order_release);
}

void ShardRunner::wait_for_workers() {
  const bool timed = !shard_profs_.empty();
  const std::uint64_t ns = wait_until(
      [&] { return done_.load(std::memory_order_acquire) == p_ - 1; }, timed);
  if (timed && ns != 0) shard_profs_[0]->add_span(prof::kShardSync, ns);
}

void ShardRunner::worker_loop(unsigned w) {
  std::uint64_t seen = 0;
  const bool timed = !shard_profs_.empty();
  prof::Profiler* sync_sink = timed ? shard_profs_[w].get() : nullptr;
  for (;;) {
    const std::uint64_t ns = wait_until(
        [&] { return gen_.load(std::memory_order_acquire) != seen; }, timed);
    if (sync_sink != nullptr && ns != 0) {
      sync_sink->add_span(prof::kShardSync, ns);
    }
    if (quit_.load(std::memory_order_relaxed)) return;
    seen = gen_.load(std::memory_order_acquire);
    const sim::Time until = window_end_;
    for (int s = static_cast<int>(w); s < n_; s += static_cast<int>(p_)) {
      run_shard(s, until);
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ShardRunner::run_shard(int s, sim::Time until_inclusive) {
  telemetry::ScopeGuard scope_guard(*scope_of_[static_cast<std::size_t>(s)]);
  if (shard_profs_.empty()) {
    domain_.sim(s).run(until_inclusive);
  } else {
    prof::InstallGuard prof_guard(shard_profs_[static_cast<std::size_t>(s)].get());
    domain_.sim(s).run(until_inclusive);
  }
}

std::string ShardRunner::metrics_digest() {
  struct Fold {
    telemetry::MetricKind kind{telemetry::MetricKind::kCounter};
    double value{0.0};
    std::uint64_t count{0};
    double sum{0.0};
  };
  std::map<std::string, Fold> fold;
  for (int s = 0; s < n_; ++s) {
    const telemetry::MetricsSnapshot snap =
        scope_of_[static_cast<std::size_t>(s)]->metrics().snapshot();
    for (const telemetry::MetricSample& m : snap.samples) {
      std::string key = m.name;
      for (const auto& [k, v] : m.labels) {
        key += '|';
        key += k;
        key += '=';
        key += v;
      }
      // Gauges are instantaneous-occupancy high-watermarks (queue depth at
      // some instant). At an exactly-tied timestamp the interleave of a
      // cross-shard arrival against a local dequeue is resolved by event-
      // queue insertion order, which legitimately differs between the serial
      // engine and any shard decomposition — so a watermark can differ by
      // one transient packet while every packet's FATE (tx, drop, mark,
      // delivery) is identical. The digest therefore folds only the
      // fate-determined kinds; gauges stay inspectable per scope.
      if (m.kind == telemetry::MetricKind::kGauge) continue;
      Fold& f = fold[key];
      f.kind = m.kind;
      switch (m.kind) {
        case telemetry::MetricKind::kCounter:
          f.value += m.value;
          break;
        case telemetry::MetricKind::kGauge:
          break;  // excluded above
        case telemetry::MetricKind::kHistogram:
          f.count += m.count;
          f.sum += m.sum;
          break;
      }
    }
  }
  std::string out;
  char buf[96];
  for (const auto& [key, f] : fold) {
    // Which cells exist differs across shard counts (each shard scope
    // registers its own audit counters, all normally zero); the digest
    // keeps only cells that recorded something so it compares pure signal.
    if (f.kind == telemetry::MetricKind::kHistogram) {
      if (f.count == 0) continue;
      std::snprintf(buf, sizeof buf, " %llu %.17g",
                    static_cast<unsigned long long>(f.count), f.sum);
    } else {
      if (f.value == 0.0) continue;
      std::snprintf(buf, sizeof buf, " %.17g", f.value);
    }
    out += key;
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace clove::harness
