#include "harness/experiment.hpp"

#include <cstdlib>

#include "lb/clove_ecn.hpp"
#include "lb/clove_int.hpp"
#include "lb/clove_latency.hpp"
#include "lb/ecmp.hpp"
#include "lb/edge_flowlet.hpp"
#include "lb/presto.hpp"
#include "net/conga_switch.hpp"
#include "net/letflow_switch.hpp"
#include "net/packet_pool.hpp"
#include "prof/prof.hpp"
#include "sim/logging.hpp"
#include "telemetry/artifact.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"

namespace clove::harness {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kEcmp: return "ECMP";
    case Scheme::kEdgeFlowlet: return "Edge-Flowlet";
    case Scheme::kCloveEcn: return "Clove-ECN";
    case Scheme::kCloveInt: return "Clove-INT";
    case Scheme::kCloveLatency: return "Clove-Latency";
    case Scheme::kPresto: return "Presto";
    case Scheme::kMptcp: return "MPTCP";
    case Scheme::kConga: return "CONGA";
    case Scheme::kLetFlow: return "LetFlow";
  }
  return "?";
}

bool scheme_is_edge_based(Scheme s) {
  return s != Scheme::kConga && s != Scheme::kLetFlow;
}

// ---------------------------------------------------------------------------
// Testbed
// ---------------------------------------------------------------------------

std::unique_ptr<lb::Policy> Testbed::make_policy() {
  switch (cfg_.scheme) {
    case Scheme::kEdgeFlowlet:
      return std::make_unique<lb::EdgeFlowletPolicy>(cfg_.flowlet_gap);
    case Scheme::kCloveEcn: {
      lb::CloveEcnConfig c;
      c.flowlet_gap = cfg_.flowlet_gap;
      c.reduce_factor = cfg_.clove_reduce_factor;
      c.congestion_expiry = cfg_.clove_congestion_expiry;
      c.recovery_interval = cfg_.clove_recovery_interval;
      c.recovery_rate = cfg_.clove_recovery_rate;
      c.adaptive_gap = cfg_.adaptive_flowlet_gap;
      return std::make_unique<lb::CloveEcnPolicy>(c, cfg_.seed * 131 + 7);
    }
    case Scheme::kCloveInt: {
      lb::CloveIntConfig c;
      c.flowlet_gap = cfg_.flowlet_gap;
      return std::make_unique<lb::CloveIntPolicy>(c, cfg_.seed * 131 + 7);
    }
    case Scheme::kCloveLatency: {
      lb::CloveLatencyConfig c;
      c.flowlet_gap = cfg_.flowlet_gap;
      return std::make_unique<lb::CloveLatencyPolicy>(c, cfg_.seed * 131 + 7);
    }
    case Scheme::kPresto:
      // Ideal static weights for asymmetry are installed after the fabric
      // is built (the spine IPs are unknown at host-creation time).
      return std::make_unique<lb::PrestoPolicy>();
    case Scheme::kMptcp:
      // MPTCP diversifies via inner tuples over an ECMP edge, but its
      // subflows pin hard to their hash — so the edge honors path-health
      // evictions (migrate mode) and re-pins subflows off dead paths.
      return std::make_unique<lb::EcmpPolicy>(/*migrate_on_evict=*/true);
    case Scheme::kEcmp:
    case Scheme::kConga:
    case Scheme::kLetFlow:
      // CONGA/LetFlow re-route inside the fabric; plain ECMP is the
      // never-recovering baseline. All pair with a plain ECMP edge.
      return std::make_unique<lb::EcmpPolicy>();
  }
  return std::make_unique<lb::EcmpPolicy>();
}

overlay::HypervisorConfig Testbed::make_hyp_config() {
  overlay::HypervisorConfig h;
  h.overlay = !cfg_.non_overlay;
  h.feedback_relay_interval = cfg_.feedback_relay_interval;
  h.reorder_buffer =
      (cfg_.scheme == Scheme::kPresto) && !cfg_.presto_no_reorder;
  h.discovery = cfg_.discovery;
  h.measure_latency =
      (cfg_.scheme == Scheme::kCloveLatency) || cfg_.adaptive_flowlet_gap;
  h.tcp = cfg_.tcp;
  h.path_health = cfg_.path_health;
  return h;
}

Testbed::Testbed(const ExperimentConfig& cfg) : cfg_(cfg), sim_(cfg.seed) {
  topo_ = std::make_unique<net::Topology>(sim_);

  net::LeafSpineConfig topo_cfg = cfg_.topo;
  topo_cfg.ecn_threshold_pkts = cfg_.ecn_threshold_pkts;
  topo_cfg.int_telemetry = (cfg_.scheme == Scheme::kCloveInt);
  topo_cfg.conga_metric = (cfg_.scheme == Scheme::kConga);

  // Switch factory: CONGA / LetFlow replace the leaves; spines stay ECMP.
  std::function<std::unique_ptr<net::Switch>(net::NodeId, std::string, int)>
      make_switch;
  if (cfg_.scheme == Scheme::kConga) {
    make_switch = [this](net::NodeId id, std::string name, int leaf_idx)
        -> std::unique_ptr<net::Switch> {
      if (leaf_idx >= 0) {
        net::CongaConfig cc;
        cc.flowlet_gap = cfg_.flowlet_gap;
        return std::make_unique<net::CongaLeafSwitch>(sim_, id, std::move(name),
                                                      cc);
      }
      return std::make_unique<net::Switch>(sim_, id, std::move(name));
    };
  } else if (cfg_.scheme == Scheme::kLetFlow) {
    make_switch = [this](net::NodeId id, std::string name, int leaf_idx)
        -> std::unique_ptr<net::Switch> {
      if (leaf_idx >= 0) {
        return std::make_unique<net::LetFlowSwitch>(sim_, id, std::move(name),
                                                    cfg_.flowlet_gap);
      }
      return std::make_unique<net::Switch>(sim_, id, std::move(name));
    };
  }

  auto make_host = [this](net::Topology& topo, const std::string& name,
                          int /*leaf*/) -> net::Node* {
    return topo.add_host<overlay::Hypervisor>(name, sim_, make_hyp_config(),
                                              make_policy());
  };

  fabric_ = net::build_leaf_spine(*topo_, topo_cfg, make_host, make_switch);

  for (net::Node* h : fabric_.hosts_by_leaf[0]) {
    clients_.push_back(static_cast<overlay::Hypervisor*>(h));
  }
  for (net::Node* h : fabric_.hosts_by_leaf[1]) {
    servers_.push_back(static_cast<overlay::Hypervisor*>(h));
  }

  // CONGA leaves need the fabric map: uplink ports and host->leaf index.
  if (cfg_.scheme == Scheme::kConga) {
    std::unordered_map<net::IpAddr, int> host_leaf;
    for (std::size_t l = 0; l < fabric_.hosts_by_leaf.size(); ++l) {
      for (net::Node* h : fabric_.hosts_by_leaf[l]) {
        host_leaf[h->ip()] = static_cast<int>(l);
      }
    }
    for (std::size_t l = 0; l < fabric_.leaves.size(); ++l) {
      auto* leaf = dynamic_cast<net::CongaLeafSwitch*>(fabric_.leaves[l]);
      if (leaf == nullptr) continue;
      std::vector<int> uplinks;
      for (int p = 0; p < leaf->port_count(); ++p) {
        const net::Node* peer = leaf->port(p)->dst();
        for (const net::Switch* spine : fabric_.spines) {
          if (peer == spine) {
            uplinks.push_back(p);
            break;
          }
        }
      }
      leaf->configure_fabric(static_cast<int>(l), std::move(uplinks),
                             host_leaf);
    }
  }

  if (cfg_.scheme == Scheme::kPresto && cfg_.asymmetric) {
    // §5.2: Presto gets "the benefit of doubt" — ideal static weights
    // reflecting the failed S2-L2 link (S2 paths carry half of S1 paths,
    // i.e. 1/3,1/3,1/6,1/6 over the four paths).
    const net::IpAddr s2 =
        fabric_.spines.size() > 1 ? fabric_.spines[1]->ip() : net::kIpNone;
    auto weight_fn = [s2](const overlay::PathInfo& path) {
      for (const overlay::PathHop& hop : path.hops) {
        if (hop.node == s2) return 1.0;
      }
      return 2.0;
    };
    for (net::Node* h : topo_->hosts()) {
      auto* hyp = static_cast<overlay::Hypervisor*>(h);
      if (auto* presto = dynamic_cast<lb::PrestoPolicy*>(&hyp->policy())) {
        presto->set_weight_fn(weight_fn);
      }
    }
  }

  // While the flight recorder is on, watch every fabric link's utilization
  // and queue depth so runs can be explained after the fact (the recorder's
  // journeys say *where* packets went; these series say *why* — which egress
  // queues were hot when the policy moved flowlets).
  if (telemetry::flight_active()) {
    flight_watch_ = std::make_unique<stats::TimeSeriesSet>(sim_);
    const sim::Time interval = 1 * sim::kMillisecond;
    // Parallel links between the same pair share a display name, so suffix
    // the parallel index to keep CSV columns distinct.
    auto watch = [&](net::Link* l, std::size_t k) {
      if (l == nullptr) return;
      std::string tag = l->name();
      if (cfg_.topo.links_per_pair > 1) {
        tag += '#';
        tag += std::to_string(k);
      }
      flight_watch_->add("util:" + tag, [l] { return l->utilization(); },
                         interval);
      flight_watch_->add(
          "queue:" + tag,
          [l] { return static_cast<double>(l->queue_bytes()); }, interval);
    };
    for (auto& leaf_links : fabric_.fabric_links) {
      for (auto& spine_links : leaf_links) {
        for (std::size_t k = 0; k < spine_links.size(); ++k) {
          watch(spine_links[k], k);                    // leaf -> spine
          watch(topo_->reverse_of(spine_links[k]), k); // spine -> leaf
        }
      }
    }
    flight_watch_->start_all();
  }

  if (cfg_.asymmetric) fail_s2_l2_link();

  // Arm the fault plan (config first, CLOVE_FAULT_PLAN as fallback) now
  // that every link and host exists. Events in the past fire immediately.
  fault::FaultPlan plan = cfg_.fault_plan;
  if (plan.empty()) {
    std::string err;
    plan = fault::FaultPlan::from_env(&err);
    if (!err.empty()) {
      CLOVE_WARN(sim_.now(), "harness", "ignoring fault plan: %s",
                 err.c_str());
    }
  }
  if (!plan.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(*topo_, std::move(plan));
    injector_->arm();
  }

  // Hybrid flow/packet engine (DESIGN.md §12): register every link so traced
  // elephant paths resolve, and attach every hypervisor so its senders become
  // promotion candidates and Clove degrade feedback demotes riders. When the
  // knob is off (the default) nothing is constructed and the simulation is
  // bit-identical to the packet-exact datapath.
  if (cfg_.hybrid.enabled) {
    hybrid_ = std::make_unique<hybrid::Engine>(sim_, cfg_.hybrid);
    for (const auto& l : topo_->links()) hybrid_->add_link(l.get());
    for (net::Node* h : topo_->hosts()) {
      static_cast<overlay::Hypervisor*>(h)->set_hybrid(hybrid_.get());
    }
  }
}

void Testbed::start_discovery() {
  std::vector<net::IpAddr> server_ips;
  std::vector<net::IpAddr> client_ips;
  for (auto* s : servers_) server_ips.push_back(s->ip());
  for (auto* c : clients_) client_ips.push_back(c->ip());
  for (auto* c : clients_) {
    if (c->policy().needs_discovery()) c->start_discovery(server_ips);
  }
  for (auto* s : servers_) {
    if (s->policy().needs_discovery()) s->start_discovery(client_ips);
  }
}

void Testbed::fail_s2_l2_link() {
  // Spine S2 (index 1) to leaf L2 (index 1), first parallel link — the
  // failure the paper injects for every asymmetric experiment.
  net::Link* l = fabric_.fabric_links[1][1][0];
  if (!l->is_down()) topo_->fail_connection(l);
}

void Testbed::restore_s2_l2_link() {
  net::Link* l = fabric_.fabric_links[1][1][0];
  if (l->is_down()) topo_->restore_connection(l);
}

std::uint64_t Testbed::total_drops() const {
  std::uint64_t n = 0;
  for (const auto& l : topo_->links()) n += l->stats().drops_overflow;
  return n;
}

std::uint64_t Testbed::total_ecn_marks() const {
  std::uint64_t n = 0;
  for (const auto& l : topo_->links()) n += l->stats().ecn_marks;
  return n;
}

// ---------------------------------------------------------------------------
// One-call experiment runners
// ---------------------------------------------------------------------------

ExperimentResult run_fct_experiment(const ExperimentConfig& cfg,
                                    const workload::ClientServerConfig& wl_in) {
  // Scope the telemetry registry/trace to this run so snapshots are per-run
  // counters, not process-lifetime accumulations.
  telemetry::hub().begin_run();
  Testbed tb(cfg);
  tb.start_discovery();

  workload::ClientServerConfig wl = wl_in;
  wl.tcp = cfg.tcp;
  wl.mptcp = cfg.mptcp;
  wl.use_mptcp = (cfg.scheme == Scheme::kMptcp);
  wl.start_time = cfg.traffic_start;
  wl.seed = wl_in.seed == 42 ? cfg.seed * 977 + 3 : wl_in.seed;
  // Offered load is relative to the deliverable bisection: the fabric cut or
  // the clients' aggregate access bandwidth, whichever is smaller (equal, at
  // 160G, in the paper's topology).
  const double fabric_bisection =
      sim::gbps_to_bytes_per_sec(cfg.topo.fabric_gbps) * cfg.topo.n_spines *
      cfg.topo.links_per_pair;
  const double access_total =
      sim::gbps_to_bytes_per_sec(cfg.topo.host_gbps) * cfg.topo.hosts_per_leaf;
  wl.bisection_bytes_per_sec = std::min(fabric_bisection, access_total);

  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());
  bool done = false;
  ws.start([&] {
    done = true;
    tb.simulator().stop();
  });
  tb.simulator().run(cfg.max_sim_time);
  (void)done;

  ExperimentResult r;
  r.jobs = ws.jobs_done();
  r.avg_fct_s = ws.fct().all().mean();
  r.mice_avg_fct_s = ws.fct().mice().mean();
  r.elephant_avg_fct_s = ws.fct().elephants().mean();
  r.p99_fct_s = ws.fct().all().percentile(99);
  r.mice_p99_fct_s = ws.fct().mice().percentile(99);
  const auto t = ws.transport_totals();
  r.timeouts = t.timeouts;
  r.fast_retransmits = t.fast_retransmits;
  r.ecn_marks = tb.total_ecn_marks();
  r.drops = tb.total_drops();
  r.events = tb.simulator().events_processed();
  r.queue_hwm = tb.simulator().queue_high_water();
  r.fct = std::make_shared<stats::FctRecorder>(std::move(ws.fct()));

  // Fold this run's engine gauges into the installed profiler (one cold pass
  // per experiment; the parallel runner later merges per-task profilers).
  if (auto* p = prof::active()) {
    p->note_simulator(tb.simulator().events_processed(),
                      tb.simulator().queue_high_water(),
                      tb.simulator().queue_slab_capacity());
    auto& pool = net::PacketPool::of(tb.simulator());
    p->note_pool(pool.allocated(), pool.reused());
    for (auto* h : tb.clients()) h->prof_note_tables(*p);
    for (auto* h : tb.servers()) h->prof_note_tables(*p);
  }

  if (telemetry::enabled()) {
    // The snapshot walks every registered metric cell: attribute it to the
    // telemetry scope so observability overhead shows up in the profile.
    CLOVE_PROF_SCOPE(prof::kTelemetry);
    r.metrics = telemetry::hub().metrics().snapshot();
  }
  if (auto* fr = telemetry::flight()) {
    // Summarize (this runs the conservation audit) and, when the artifact
    // sink is on, dump the raw provenance next to the bench JSON so
    // scripts/trace_summarize.py can explain the run.
    CLOVE_PROF_SCOPE(prof::kFlight);
    r.flight = fr->summary(tb.simulator().now());
    const std::string dir = telemetry::json_out_dir();
    if (!dir.empty()) {
      const std::string tag = scheme_name(cfg.scheme);
      telemetry::Json doc = r.flight.to_json();
      doc.set("scheme", telemetry::Json(tag));
      telemetry::Json path_names = telemetry::Json::object();
      for (const telemetry::PathUsage& pu : r.flight.paths) {
        path_names.set(std::to_string(pu.via),
                       telemetry::Json(fr->node_name(pu.via)));
      }
      doc.set("node_names", std::move(path_names));
      telemetry::write_json_artifact(dir, "FLIGHT_" + tag, doc);
      telemetry::write_text_artifact(dir, "flight_" + tag + "_journeys.jsonl",
                                     fr->journeys_jsonl());
      telemetry::write_text_artifact(dir, "flight_" + tag + "_flows.jsonl",
                                     fr->flows_jsonl());
      if (tb.flight_watch() != nullptr) {
        telemetry::write_text_artifact(dir, "flight_" + tag + "_timeseries.csv",
                                       tb.flight_watch()->to_csv());
      }
    }
  }
  return r;
}

double run_incast_experiment(const ExperimentConfig& cfg,
                             const workload::IncastConfig& wl_in) {
  telemetry::hub().begin_run();
  Testbed tb(cfg);
  tb.start_discovery();

  workload::IncastConfig wl = wl_in;
  wl.tcp = cfg.tcp;
  wl.mptcp = cfg.mptcp;
  wl.use_mptcp = (cfg.scheme == Scheme::kMptcp);
  wl.start_time = cfg.traffic_start;

  // One client on leaf 1; responders are the leaf-2 servers.
  workload::IncastWorkload incast(tb.simulator(), wl, tb.clients()[0],
                                  tb.servers());
  incast.start([&] { tb.simulator().stop(); });
  tb.simulator().run(cfg.max_sim_time);
  return incast.goodput_gbps();
}

// ---------------------------------------------------------------------------
// Profiles and bench scale
// ---------------------------------------------------------------------------

ExperimentConfig make_testbed_profile() {
  ExperimentConfig cfg;
  cfg.tcp.min_rto = 200 * sim::kMillisecond;  // stock Linux
  cfg.tcp.ecn = true;  // standard-but-unmodified stack; see DESIGN.md
  return cfg;
}

ExperimentConfig make_ns2_profile() {
  ExperimentConfig cfg;
  cfg.tcp.min_rto = 5 * sim::kMillisecond;  // simulation profile (§6)
  cfg.tcp.ecn = true;
  return cfg;
}

BenchScale BenchScale::from_env() {
  auto env_int = [](const char* name, int def) {
    const char* v = std::getenv(name);
    if (v == nullptr) return def;
    const int n = std::atoi(v);
    return n > 0 ? n : def;
  };
  BenchScale s;
  s.jobs_per_conn = env_int("CLOVE_JOBS", 40);
  s.seeds = env_int("CLOVE_SEEDS", 1);
  s.conns_per_client = env_int("CLOVE_CONNS", 2);
  return s;
}

}  // namespace clove::harness
