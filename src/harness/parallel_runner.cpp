#include "harness/parallel_runner.hpp"

#include <cstdlib>
#include <memory>

#include "prof/prof.hpp"

namespace clove::harness {

unsigned default_threads() {
  if (const char* v = std::getenv("CLOVE_THREADS")) {
    const long n = std::atol(v);
    if (n >= 1) return static_cast<unsigned>(n > 1024 ? 1024 : n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads == 0 ? default_threads() : threads) {}

ParallelRunner::~ParallelRunner() = default;

/// Pool state shared by the workers of one run_all() call. One mutex guards
/// all deques: tasks are whole simulations, so queue operations are a
/// vanishing fraction of runtime and per-deque locks would buy nothing.
struct ParallelRunner::Shared {
  std::mutex mu;
  std::vector<std::deque<std::size_t>> queues;  // task indices, per worker

  /// Own queue front first (LIFO locality is irrelevant at this grain, FIFO
  /// keeps point ordering intuitive), then steal from the back of the
  /// busiest victim. Returns false when every queue is empty.
  bool next(std::size_t self, std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (!queues[self].empty()) {
      out = queues[self].front();
      queues[self].pop_front();
      return true;
    }
    std::size_t victim = queues.size();
    std::size_t best = 0;
    for (std::size_t w = 0; w < queues.size(); ++w) {
      if (queues[w].size() > best) {
        best = queues[w].size();
        victim = w;
      }
    }
    if (victim == queues.size()) return false;
    out = queues[victim].back();
    queues[victim].pop_back();
    return true;
  }
};

void ParallelRunner::run_all(std::vector<Task> tasks) {
  if (tasks.empty()) return;

  // Every task gets a fresh telemetry scope inheriting the submitter's
  // settings — also when running inline, so a CLOVE_THREADS=1 run produces
  // byte-identical telemetry snapshots to a parallel one.
  const telemetry::ScopeSettings settings =
      telemetry::current_scope().settings();
  // When the submitter carries an engine profiler, each task profiles into
  // its own Profiler (worker threads have none installed) and the results
  // are merged below in task-index order — deterministic at any thread
  // count, like the telemetry scopes.
  prof::Profiler* submitter_prof = prof::active();
  std::vector<std::unique_ptr<prof::Profiler>> task_profs;
  if (submitter_prof != nullptr) {
    task_profs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      task_profs.push_back(
          std::make_unique<prof::Profiler>(submitter_prof->mode()));
    }
  }
  std::vector<std::exception_ptr> errors(tasks.size());
  auto run_one = [&](std::size_t i) {
    telemetry::Scope scope(settings);
    telemetry::ScopeGuard guard(scope);
    prof::InstallGuard pguard(submitter_prof != nullptr ? task_profs[i].get()
                                                        : nullptr);
    try {
      tasks[i]();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(threads_, tasks.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_one(i);
  } else {
    Shared shared;
    shared.queues.resize(workers);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      shared.queues[i % workers].push_back(i);  // round-robin deal
    }
    auto worker = [&](std::size_t self) {
      std::size_t i;
      while (shared.next(self, i)) run_one(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(worker, w);
    }
    worker(0);  // the calling thread works too
    for (std::thread& t : pool) t.join();
  }

  if (submitter_prof != nullptr) {
    for (const auto& tp : task_profs) submitter_prof->merge_from(*tp);
  }

  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace clove::harness
