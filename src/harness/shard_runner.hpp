#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/shard.hpp"
#include "prof/prof.hpp"
#include "sim/time.hpp"
#include "telemetry/scope.hpp"

namespace clove::harness {

/// Shards for a sharded single-run simulation: the CLOVE_SHARDS environment
/// knob, else 1 (serial — the sharded machinery is never engaged).
[[nodiscard]] int default_shards();

/// Conservative-time coordinator for one sharded simulation run.
///
/// The fabric is pre-partitioned (Topology::begin_shard + a ShardDomain)
/// into per-pod event shards; this runner advances them in lookahead
/// windows: pick the earliest pending time W across shards, run every shard
/// independently over [W, W + lookahead), barrier, drain the cross-shard
/// staging channels, repeat. The lookahead is the minimum cross-shard link
/// propagation, so nothing staged inside a window can be due before the
/// window ends — shards never see a cross-shard event late, and the result
/// is bit-identical at any shard/thread count (pinned by test_shard.cpp).
///
/// Globally ordered actions (faults, route recomputes) registered via
/// ShardDomain::at_global force a window boundary at their timestamp and
/// run single-threaded with every shard clock aligned.
///
/// Threads: `threads` workers (capped at the shard count) persist across
/// run() calls; shard s is pinned to worker s % threads so profile
/// attribution is stable. The calling thread doubles as worker 0 and the
/// coordinator. With one worker (or one shard) everything runs inline on
/// the caller — no threads are spawned at all.
///
/// Telemetry: shard 0 records into the caller's ambient scope; shards 1+
/// each get a private Scope inheriting the ambient settings. Merge the
/// results with metrics_digest() (order-independent fold) or by snapshotting
/// the scopes directly. When an engine profiler is active at construction,
/// each shard profiles into its own prof::Profiler; the destructor deposits
/// per-shard copies (Profiler::note_shard) and merges the totals into the
/// session profiler, with barrier wait measured under prof::kShardSync.
class ShardRunner {
 public:
  /// `threads` == 0 means harness::default_threads().
  explicit ShardRunner(net::ShardDomain& domain, unsigned threads = 0);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  /// Advance every shard to `until` (inclusive, like Simulator::run) and
  /// execute all global actions due by then. Must be called from the
  /// constructing thread. Between calls the workers are parked, so the
  /// caller may inspect or mutate any shard's state.
  void run(sim::Time until);

  [[nodiscard]] unsigned workers() const { return p_; }
  [[nodiscard]] int shard_count() const { return n_; }
  [[nodiscard]] net::ShardDomain& domain() { return domain_; }
  /// The telemetry scope shard `s` records into (shard 0 = the ambient one).
  [[nodiscard]] telemetry::Scope& scope(int s) { return *scope_of_[s]; }

  /// Deterministic fold of every shard scope's metrics, one line per metric
  /// sorted by (name, labels): counters sum, histograms fold count+sum.
  /// Equal digests <=> every packet met the same fate (tx, drop, mark,
  /// delivery) per entity, so the determinism suite compares this string
  /// across shard/thread counts. Gauges (instantaneous-occupancy
  /// watermarks) are excluded: at an exactly-tied timestamp the arrival/
  /// dequeue interleave is an artifact of event insertion order, not of the
  /// modeled physics — see DESIGN.md §11.
  [[nodiscard]] std::string metrics_digest();

  /// Number of lookahead windows executed so far (coordination granularity;
  /// exported by benches next to the shard_sync profile share).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

 private:
  void worker_loop(unsigned w);
  void run_shard(int s, sim::Time until_inclusive);
  void execute_window(sim::Time until_inclusive);
  void wait_for_workers();
  void publish(sim::Time until_inclusive);

  net::ShardDomain& domain_;
  int n_;        ///< shard count
  unsigned p_;   ///< worker count (<= n_), calling thread included
  std::uint64_t windows_{0};

  std::vector<telemetry::Scope*> scope_of_;  ///< per shard (0 = ambient)
  std::vector<std::unique_ptr<telemetry::Scope>> extra_scopes_;
  /// Per-shard profilers (empty when no engine profiler was active).
  std::vector<std::unique_ptr<prof::Profiler>> shard_profs_;

  // Worker handshake: the coordinator stores the window end, bumps gen_
  // (release); workers acquire gen_, run their shards, bump done_ (release);
  // the coordinator acquires done_ == p_ - 1 before touching shard state.
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> quit_{false};
  sim::Time window_end_{0};  ///< published by gen_
};

}  // namespace clove::harness
