#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace clove::overlay {

/// Hypervisor-side flowlet detection (§3.2): packets of a flow separated by
/// an idle gap larger than `gap` form a new flowlet that may be re-routed.
/// The table also remembers the routing decision (outer source port) of the
/// current flowlet so every packet of a flowlet takes the same path.
class FlowletTracker {
 public:
  explicit FlowletTracker(sim::Time gap = 100 * sim::kMicrosecond) : gap_(gap) {}

  struct Touch {
    bool new_flowlet;
    std::uint32_t flowlet_id;
    std::uint16_t port;  ///< previous decision; valid when !new_flowlet
  };

  /// Record a packet of `flow` at `now`, using the default gap.
  Touch touch(const net::FiveTuple& flow, sim::Time now) {
    return touch(flow, now, gap_);
  }

  /// Record a packet with an explicit gap (§7 "Flowlet optimization": the
  /// gap may adapt to the RTT spread between a destination's paths).
  Touch touch(const net::FiveTuple& flow, sim::Time now, sim::Time gap) {
    auto [it, inserted] = table_.try_emplace(flow, Entry{});
    Entry& e = it->second;
    const bool fresh = !inserted && (now - e.last_seen <= gap);
    e.last_seen = now;
    if (fresh) return {false, e.flowlet_id, e.port};
    ++e.flowlet_id;
    ++flowlets_started_;
    return {true, e.flowlet_id, e.port};
  }

  /// Store the routing decision for the flow's current flowlet.
  void set_port(const net::FiveTuple& flow, std::uint16_t port) {
    table_[flow].port = port;
  }

  void set_gap(sim::Time gap) { gap_ = gap; }
  [[nodiscard]] sim::Time gap() const { return gap_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::uint64_t flowlets_started() const { return flowlets_started_; }

  /// Housekeeping: drop entries idle longer than `idle`.
  void expire(sim::Time now, sim::Time idle) {
    for (auto it = table_.begin(); it != table_.end();) {
      it = (now - it->second.last_seen > idle) ? table_.erase(it) : ++it;
    }
  }

 private:
  struct Entry {
    sim::Time last_seen{-1};
    std::uint16_t port{0};
    std::uint32_t flowlet_id{0};
  };
  std::unordered_map<net::FiveTuple, Entry, net::FiveTupleHash> table_;
  sim::Time gap_;
  std::uint64_t flowlets_started_{0};
};

}  // namespace clove::overlay
