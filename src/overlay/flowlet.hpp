#pragma once

#include <algorithm>
#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/flat_map.hpp"

namespace clove::overlay {

/// Hypervisor-side flowlet detection (§3.2): packets of a flow separated by
/// an idle gap larger than `gap` form a new flowlet that may be re-routed.
/// The table also remembers the routing decision (outer source port) of the
/// current flowlet so every packet of a flowlet takes the same path.
///
/// Backed by util::FlatMap: touch() is one linear probe, returns a direct
/// entry handle so the caller stores its routing decision without a second
/// lookup, and amortizes expiry by sweeping a few slots per touch — entries
/// idle far longer than the gap (they would start a new flowlet anyway) are
/// dropped, so the table stops growing across long runs without O(table)
/// scans on the datapath.
class FlowletTracker {
 public:
  /// Slots examined per touch by the incremental expiry sweep.
  static constexpr std::size_t kSweepSlots = 8;

  explicit FlowletTracker(sim::Time gap = 100 * sim::kMicrosecond) : gap_(gap) {}

  struct Entry {
    sim::Time last_seen{-1};
    std::uint16_t port{0};
    std::uint32_t flowlet_id{0};
  };

  struct Touch {
    bool new_flowlet;
    std::uint32_t flowlet_id;
    std::uint16_t port;  ///< previous decision; valid when !new_flowlet
    Entry* entry;        ///< handle valid until the next touch()
    /// Store the routing decision for this flowlet without a second lookup.
    void set_port(std::uint16_t p) const { entry->port = p; }
  };

  /// Record a packet of `flow` at `now`, using the default gap.
  Touch touch(const net::FiveTuple& flow, sim::Time now) {
    return touch(flow, now, gap_);
  }

  /// Record a packet with an explicit gap (§7 "Flowlet optimization": the
  /// gap may adapt to the RTT spread between a destination's paths).
  Touch touch(const net::FiveTuple& flow, sim::Time now, sim::Time gap) {
    // Sweep before locating the entry so the returned handle is untouched;
    // erase only tombstones slots, never relocates them.
    const sim::Time idle = idle_timeout();
    table_.sweep(kSweepSlots, [&](const net::FiveTuple&, const Entry& e) {
      return now - e.last_seen > idle;
    });
    auto [e, inserted] = table_.try_emplace(flow);
    const bool fresh = !inserted && (now - e->last_seen <= gap);
    e->last_seen = now;
    if (fresh) return {false, e->flowlet_id, e->port, e};
    ++e->flowlet_id;
    ++flowlets_started_;
    return {true, e->flowlet_id, e->port, e};
  }

  /// Store the routing decision for the flow's current flowlet (keyed
  /// lookup; prefer Touch::set_port on the handle).
  void set_port(const net::FiveTuple& flow, std::uint16_t port) {
    table_[flow].port = port;
  }

  /// Occupancy / probe-length digest of the backing FlatMap (engine
  /// profiler's table gauge; see prof::Profiler::note_table).
  [[nodiscard]] auto probe_stats() const { return table_.probe_stats(); }

  void set_gap(sim::Time gap) { gap_ = gap; }
  [[nodiscard]] sim::Time gap() const { return gap_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::uint64_t flowlets_started() const { return flowlets_started_; }

  /// Idle age beyond which the incremental sweep drops an entry. The floor
  /// of one second matters: Clove's adaptive-gap optimization (§7) can
  /// widen the effective flowlet gap by the path-latency spread, and an
  /// eviction below that widened gap would split a live flowlet across
  /// paths (observed as washed-out weight adaptation). One second is far
  /// above any queueing-delay spread yet still bounds the table for
  /// long-running sweeps.
  [[nodiscard]] sim::Time idle_timeout() const {
    return idle_override_ > 0 ? idle_override_
                              : std::max(100 * gap_, sim::kSecond);
  }
  void set_idle_timeout(sim::Time idle) { idle_override_ = idle; }

  /// Housekeeping: drop entries idle longer than `idle` (full scan; kept for
  /// tests and explicit sweeps — the datapath uses the touch-time sweep).
  void expire(sim::Time now, sim::Time idle) {
    for (auto it = table_.begin(); it != table_.end();) {
      it = (now - it.value().last_seen > idle) ? table_.erase(it) : ++it;
    }
  }

 private:
  struct TupleHasher {
    std::uint64_t operator()(const net::FiveTuple& t) const noexcept {
      return net::tuple_prehash(t);
    }
  };
  util::FlatMap<net::FiveTuple, Entry, TupleHasher> table_;
  sim::Time gap_;
  sim::Time idle_override_{0};  ///< 0 = derive from gap
  std::uint64_t flowlets_started_{0};
};

}  // namespace clove::overlay
