#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace clove::overlay {

/// Well-known destination port of the modeled STT-like tunnel protocol.
inline constexpr std::uint16_t kSttPort = 7471;
/// Outer source ports are drawn from the ephemeral range.
inline constexpr std::uint16_t kEphemeralBase = 49152;
inline constexpr std::uint16_t kEphemeralCount = 16384;

/// One traceroute hop: the answering node plus the ingress interface the
/// probe arrived on. The (node, ingress) pair uniquely identifies the
/// directed physical link the probe traversed to reach that node — which is
/// exactly what per-interface IP addresses give real traceroute, and what
/// lets Clove tell parallel leaf-spine links apart.
struct PathHop {
  net::IpAddr node{net::kIpNone};
  std::int32_t ingress{-1};
  bool operator==(const PathHop&) const = default;
};

/// One discovered network path to a destination hypervisor: the overlay
/// source port that ECMP maps onto it, and the interface-level hop list the
/// traceroute saw (ending with the destination hypervisor itself).
struct PathInfo {
  std::uint16_t port{0};
  std::vector<PathHop> hops;

  /// Stable identity of the physical path regardless of which source port
  /// currently maps to it (used to carry congestion state across topology
  /// changes, §3.1's optimization).
  [[nodiscard]] std::string signature() const {
    std::string s;
    for (const PathHop& h : hops) {
      s += std::to_string(h.node);
      s += ':';
      s += std::to_string(h.ingress);
      s += '-';
    }
    return s;
  }

  /// Count of directed links shared with `other`: each hop's (node, ingress)
  /// pair names the link the path entered that node on.
  [[nodiscard]] int shared_links(const PathInfo& other) const {
    int shared = 0;
    for (const PathHop& a : hops) {
      for (const PathHop& b : other.hops) {
        if (a == b) ++shared;
      }
    }
    return shared;
  }
};

/// The set of disjoint-ish paths currently mapped for one destination.
struct PathSet {
  std::vector<PathInfo> paths;
  sim::Time discovered_at{-1};
  [[nodiscard]] bool empty() const { return paths.empty(); }
  [[nodiscard]] std::size_t size() const { return paths.size(); }
};

}  // namespace clove::overlay
