#include "overlay/traceroute.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "prof/prof.hpp"
#include "sim/logging.hpp"

namespace clove::overlay {

TracerouteDaemon::TracerouteDaemon(sim::Simulator& sim, net::IpAddr self,
                                   const TracerouteConfig& cfg, SendFn send,
                                   PathsCallback on_paths, std::uint64_t seed)
    : sim_(sim),
      self_(self),
      cfg_(cfg),
      send_(std::move(send)),
      on_paths_(std::move(on_paths)),
      rng_(seed ^ (static_cast<std::uint64_t>(self) << 20)) {}

void TracerouteDaemon::add_destination(net::IpAddr dst) {
  auto [it, inserted] = dsts_.try_emplace(dst);
  if (!inserted) return;
  probe_now(dst);
}

void TracerouteDaemon::probe_now(net::IpAddr dst) {
  DstState& st = dsts_[dst];
  if (st.round.open) return;  // a round is already collecting

  st.round = Round{};
  st.round.id = next_round_id_++;
  st.round.open = true;
  round_owner_[st.round.id] = dst;

  // Sample distinct random encapsulation source ports.
  std::unordered_set<std::uint16_t> ports;
  while (static_cast<int>(ports.size()) < cfg_.sample_ports) {
    ports.insert(static_cast<std::uint16_t>(
        kEphemeralBase + rng_.uniform_int(kEphemeralCount)));
  }

  for (std::uint16_t port : ports) {
    st.round.traces.try_emplace(port);
    for (int ttl = 1; ttl <= cfg_.max_ttl; ++ttl) {
      auto probe = net::make_packet(sim_);
      probe->encap.present = true;
      probe->encap.tuple = net::FiveTuple{self_, dst, port, kSttPort,
                                          net::Proto::kStt};
      probe->inner = probe->encap.tuple;  // probes carry no tenant payload
      probe->payload = 0;
      probe->ttl = static_cast<std::uint8_t>(ttl);
      probe->probe.probe_id = st.round.id;
      probe->probe.probed_port = port;
      probe->probe.hop_index = static_cast<std::uint8_t>(ttl);
      probe->sent_at = sim_.now();
      ++probes_sent_;
      send_(std::move(probe));
    }
  }

  sim_.schedule_in(cfg_.probe_timeout, [this, dst] { finish_round(dst); });
}

void TracerouteDaemon::keepalive(net::IpAddr dst, std::uint16_t port,
                                 KeepaliveFn done) {
  const std::uint32_t id = next_round_id_++;
  keepalives_.emplace(id, Keepalive{dst, port, std::move(done)});

  auto probe = net::make_packet(sim_);
  probe->encap.present = true;
  probe->encap.tuple =
      net::FiveTuple{self_, dst, port, kSttPort, net::Proto::kStt};
  probe->inner = probe->encap.tuple;
  probe->payload = 0;
  probe->ttl = 64;  // no ladder: only the destination's answer matters
  probe->probe.probe_id = id;
  probe->probe.probed_port = port;
  probe->probe.hop_index = 64;
  probe->sent_at = sim_.now();
  ++probes_sent_;
  ++keepalives_sent_;
  send_(std::move(probe));

  sim_.schedule_in(cfg_.probe_timeout, [this, id] {
    auto it = keepalives_.find(id);
    if (it == keepalives_.end()) return;  // answered in time
    Keepalive ka = std::move(it->second);
    keepalives_.erase(it);
    if (ka.done) ka.done(ka.dst, ka.port, false);
  });
}

bool TracerouteDaemon::evict_port(net::IpAddr dst, std::uint16_t port) {
  auto it = dsts_.find(dst);
  if (it == dsts_.end()) return false;
  auto& paths = it->second.current.paths;
  const auto pit =
      std::find_if(paths.begin(), paths.end(),
                   [port](const PathInfo& p) { return p.port == port; });
  if (pit == paths.end()) return false;
  paths.erase(pit);
  if (on_paths_) on_paths_(dst, it->second.current);
  return true;
}

void TracerouteDaemon::on_reply(const net::Packet& pkt) {
  CLOVE_PROF_SCOPE(prof::kDiscovery);
  if (auto kit = keepalives_.find(pkt.probe.probe_id);
      kit != keepalives_.end()) {
    if (!pkt.probe.from_destination) return;  // mid-path echo: not liveness
    Keepalive ka = std::move(kit->second);
    keepalives_.erase(kit);
    if (ka.done) ka.done(ka.dst, ka.port, true);
    return;
  }
  auto oit = round_owner_.find(pkt.probe.probe_id);
  if (oit == round_owner_.end()) return;  // a stale round's straggler
  DstState& st = dsts_[oit->second];
  if (!st.round.open || st.round.id != pkt.probe.probe_id) return;

  auto tit = st.round.traces.find(pkt.probe.probed_port);
  if (tit == st.round.traces.end()) return;
  PortTrace& trace = tit->second;
  const int hop = pkt.probe.hop_index;
  if (pkt.probe.from_destination) {
    if (trace.dest_reached_at == 0 || hop < trace.dest_reached_at) {
      trace.dest_reached_at = hop;
      trace.dest_ingress = pkt.probe.hop_ingress;
    }
  } else {
    trace.hops[hop] = PathHop{pkt.probe.hop_ip, pkt.probe.hop_ingress};
  }
}

void TracerouteDaemon::finish_round(net::IpAddr dst) {
  DstState& st = dsts_[dst];
  if (!st.round.open) return;
  st.round.open = false;
  round_owner_.erase(st.round.id);

  // Assemble candidate paths: a port's trace is usable when we saw a
  // destination reply at hop D and contiguous switch hops 1..D-1.
  std::vector<PathInfo> candidates;
  for (auto& [port, trace] : st.round.traces) {
    if (trace.dest_reached_at == 0) continue;
    PathInfo info;
    info.port = port;
    bool complete = true;
    for (int h = 1; h < trace.dest_reached_at; ++h) {
      auto hit = trace.hops.find(h);
      if (hit == trace.hops.end()) {
        complete = false;
        break;
      }
      info.hops.push_back(hit->second);
    }
    if (!complete) continue;
    info.hops.push_back(PathHop{dst, trace.dest_ingress});
    candidates.push_back(std::move(info));
  }

  std::vector<PathInfo> chosen = select_disjoint(std::move(candidates),
                                                 cfg_.k_paths);
  if (!chosen.empty()) {
    st.current.paths = std::move(chosen);
    st.current.discovered_at = sim_.now();
    ++rounds_completed_;
    if (on_paths_) on_paths_(dst, st.current);
  }
  schedule_next(dst);
}

std::vector<PathInfo> TracerouteDaemon::select_disjoint(
    std::vector<PathInfo> candidates, int k) {
  // Deduplicate by signature (many ports hash to the same physical path);
  // keep the lowest port per path for determinism.
  std::sort(candidates.begin(), candidates.end(),
            [](const PathInfo& a, const PathInfo& b) { return a.port < b.port; });
  std::vector<PathInfo> unique;
  std::unordered_set<std::string> seen;
  for (auto& c : candidates) {
    if (seen.insert(c.signature()).second) unique.push_back(std::move(c));
  }

  // Greedy: repeatedly add the path sharing the fewest links with the
  // already-chosen set (§3.1's heuristic).
  std::vector<PathInfo> chosen;
  std::vector<bool> used(unique.size(), false);
  while (static_cast<int>(chosen.size()) < k) {
    int best = -1;
    int best_shared = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < unique.size(); ++i) {
      if (used[i]) continue;
      int shared = 0;
      for (const auto& c : chosen) shared += unique[i].shared_links(c);
      if (shared < best_shared) {
        best_shared = shared;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[static_cast<std::size_t>(best)] = true;
    chosen.push_back(unique[static_cast<std::size_t>(best)]);
  }
  std::sort(chosen.begin(), chosen.end(),
            [](const PathInfo& a, const PathInfo& b) { return a.port < b.port; });
  return chosen;
}

void TracerouteDaemon::schedule_next(net::IpAddr dst) {
  DstState& st = dsts_[dst];
  if (st.scheduled) return;
  st.scheduled = true;
  const double jitter =
      1.0 + cfg_.interval_jitter * (2.0 * rng_.uniform() - 1.0);
  const sim::Time delay = static_cast<sim::Time>(
      static_cast<double>(cfg_.probe_interval) * jitter);
  sim_.schedule_in(delay, [this, dst] {
    dsts_[dst].scheduled = false;
    probe_now(dst);
  });
}

const PathSet* TracerouteDaemon::paths(net::IpAddr dst) const {
  auto it = dsts_.find(dst);
  if (it == dsts_.end() || it->second.current.empty()) return nullptr;
  return &it->second.current;
}

}  // namespace clove::overlay
