#include "overlay/hypervisor.hpp"

#include "net/link.hpp"
#include "prof/prof.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"

namespace clove::overlay {

Hypervisor::Hypervisor(net::NodeId id, std::string name, sim::Simulator& sim,
                       HypervisorConfig cfg, std::unique_ptr<lb::Policy> policy)
    : net::Node(id, std::move(name)),
      sim_(sim),
      cfg_(cfg),
      policy_(std::move(policy)) {
  policy_->set_owner(this->name());
  auto& reg = telemetry::hub().metrics();
  const telemetry::Labels labels{{"host", this->name()},
                                 {"scheme", policy_->name()}};
  cells_.encapped = reg.counter("hyp.encapped", labels);
  cells_.decapped = reg.counter("hyp.decapped", labels);
  cells_.ce_intercepted = reg.counter("hyp.ce_intercepted", labels);
  cells_.feedback_attached = reg.counter("hyp.feedback_attached", labels);
  cells_.feedback_received = reg.counter("hyp.feedback_received", labels);
  cells_.forged_ece = reg.counter("hyp.forged_ece", labels);
  traceroute_ = std::make_unique<TracerouteDaemon>(
      sim_, ip(), cfg_.discovery,
      [this](net::PacketPtr p) { nic_send(std::move(p)); },
      [this](net::IpAddr dst, const PathSet& ps) {
        policy_->on_paths_updated(dst, ps);
        if (path_health_) path_health_->on_paths_updated(dst, ps);
      });
  if (cfg_.path_health.enabled) {
    path_health_ = std::make_unique<PathHealthMonitor>(
        sim_, this->name(), cfg_.path_health, traceroute_.get(),
        policy_.get());
    // Fan evictions out to the transport endpoints talking to that peer so
    // a sender stalled on the dead path retransmits now, not at the RTO.
    // (Slot order is deterministic: same registration sequence, same layout.)
    path_health_->on_evict = [this](net::IpAddr dst, std::uint16_t port) {
      for (auto it = endpoints_.begin(); it != endpoints_.end(); ++it) {
        if (it.key().dst_ip == dst && it.value() != nullptr) {
          it.value()->on_path_evicted(dst, port, sim_.now());
        }
      }
    };
  }
  if (cfg_.reorder_buffer) {
    reorder_ = std::make_unique<ReorderBuffer>(
        sim_, cfg_.reorder,
        [this](net::PacketPtr p) { deliver_to_vm(std::move(p)); });
    reorder_->set_flush_hook([](const net::FiveTuple& t) {
      if (auto* fr = telemetry::flight()) {
        fr->on_reassembly_flush({t.src_ip, t.dst_ip, t.src_port, t.dst_port});
      }
    });
  }
}

void Hypervisor::register_endpoint(const net::FiveTuple& tuple,
                                   transport::TcpEndpoint* ep) {
  endpoints_[tuple] = ep;
  if (hybrid_ != nullptr && ep != nullptr && !hybrid_requires_reassembly()) {
    if (auto* s = ep->as_sender()) hybrid_->adopt(s);
  }
}

void Hypervisor::set_hybrid(hybrid::Engine* engine) {
  hybrid_ = engine;
  if (hybrid_ == nullptr || hybrid_requires_reassembly()) return;
  // Clove's weight-degrade feedback becomes a demotion trigger: a promoted
  // elephant riding a path the policy steers away from must come back to
  // packet level so the next flowlet decision is real.
  policy_->on_port_degraded = [this](net::IpAddr dst, std::uint16_t port) {
    hybrid_->on_port_degraded(ip(), dst, port);
  };
  for (auto it = endpoints_.begin(); it != endpoints_.end(); ++it) {
    if (it.value() != nullptr) {
      if (auto* s = it.value()->as_sender()) hybrid_->adopt(s);
    }
  }
}

void Hypervisor::start_discovery(const std::vector<net::IpAddr>& peers) {
  for (net::IpAddr p : peers) {
    if (p != ip()) traceroute_->add_destination(p);
  }
}

void Hypervisor::prof_note_tables(prof::Profiler& p) const {
  const auto digest = [](const auto& st) {
    return prof::TableStats{st.size, st.capacity, st.tombstones, st.probe_sum,
                            st.max_probe};
  };
  p.note_table("hyp.endpoints", digest(endpoints_.probe_stats()));
  p.note_table("hyp.pending_feedback", digest(pending_fb_.probe_stats()));
  if (auto* fl = policy_->flowlet_tracker()) {
    p.note_table("lb.flowlets", digest(fl->probe_stats()));
  }
}

void Hypervisor::nic_send(net::PacketPtr pkt) {
  if (port_count() == 0) return;  // unwired host (unit tests)
  ports_[0]->enqueue(std::move(pkt));
}

// ---------------------------------------------------------------------------
// Egress: VM -> vswitch -> NIC
// ---------------------------------------------------------------------------

void Hypervisor::vm_send(net::PacketPtr pkt) {
  CLOVE_PROF_SCOPE(prof::kHypervisor);
  const net::IpAddr dst = pkt->inner.dst_ip;
  if (dst == ip()) {
    ++stats_.local_deliveries;
    deliver_to_vm(std::move(pkt));
    return;
  }

  lb::PickInfo pick;
  std::uint16_t port;
  {
    // The policy decision is the paper's contribution — attribute it apart
    // from the rest of the vswitch egress work.
    CLOVE_PROF_SCOPE(prof::kPolicy);
    port = policy_->pick_port(*pkt, dst, sim_.now(), &pick);
  }
  if (auto* fr = telemetry::flight()) {
    fr->on_pick(pkt->uid, id(), name(),
                {pkt->inner.src_ip, pkt->inner.dst_ip, pkt->inner.src_port,
                 pkt->inner.dst_port},
                dst, port, pick.flowlet_id, pick.reason, pick.metric,
                pkt->tcp.seq, pkt->payload, sim_.now());
  }

  if (cfg_.overlay) {
    ++stats_.encapped;
    if (telemetry::enabled()) cells_.encapped->add();
    pkt->encap.present = true;
    pkt->encap.tuple =
        net::FiveTuple{ip(), dst, port, kSttPort, net::Proto::kStt};
    pkt->encap.ecn.ect = policy_->wants_ect();
    pkt->encap.ecn.ce = false;
    pkt->int_stack.enabled = policy_->wants_int();
    pkt->int_stack.count = 0;
  } else {
    // §7 non-overlay mode: rewrite the tenant source port in place; the
    // original travels in TCP options and is restored at the destination.
    pkt->rewrite.rewritten = true;
    pkt->rewrite.orig_src_port = pkt->inner.src_port;
    pkt->inner.src_port = port;
    // The fabric marks the inner header directly in this mode.
    pkt->tcp.ect = pkt->tcp.ect || policy_->wants_ect();
    pkt->int_stack.enabled = policy_->wants_int();
    pkt->int_stack.count = 0;
  }
  // The wire tuple is final for this traversal: compute the ECMP prehash
  // once here and let every switch on the path salt-finalize it.
  pkt->invalidate_wire_hash();
  (void)pkt->wire_hash();

  if (path_health_) path_health_->note_sent(dst, port, sim_.now());
  attach_feedback(dst, *pkt);
  pkt->sent_at = sim_.now();  // NIC timestamp for one-way-delay telemetry
  pkt->ttl = 64;
  nic_send(std::move(pkt));
}

void Hypervisor::attach_feedback(net::IpAddr peer, net::Packet& pkt) {
  PeerFeedback* pfp = pending_fb_.find(peer);
  if (pfp == nullptr) return;
  PeerFeedback& pf = *pfp;
  if (pf.rr_order.empty()) return;

  // Round-robin across forward ports, relaying at most one port's state per
  // packet and at most once per relay interval per port (§3.2: calibrated
  // response, amortized per-packet cost).
  for (std::size_t scan = 0; scan < pf.rr_order.size(); ++scan) {
    pf.rr_next = (pf.rr_next + 1) % pf.rr_order.size();
    const std::uint16_t port = pf.rr_order[pf.rr_next];
    PendingFeedback& fb = pf.ports[port];
    const bool has_news = fb.ecn_pending || fb.has_util || fb.has_latency;
    if (!has_news) continue;
    if (fb.last_relayed >= 0 &&
        sim_.now() - fb.last_relayed < cfg_.feedback_relay_interval) {
      continue;
    }
    net::CloveFeedback& out = pkt.encap.feedback;
    out.present = true;
    out.port = port;
    out.ecn_set = fb.ecn_pending;
    out.has_util = fb.has_util;
    out.util = fb.util;
    out.has_latency = fb.has_latency;
    out.latency = fb.latency;
    fb.ecn_pending = false;
    fb.has_util = false;
    fb.has_latency = false;
    fb.last_relayed = sim_.now();
    ++stats_.feedback_attached;
    if (telemetry::enabled()) cells_.feedback_attached->add();
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kFeedback, sim_.now(), name(),
                       "feedback.relay",
                       out.ecn_set ? "ecn" : (out.has_util ? "util" : "latency"),
                       out.has_util ? out.util : 0.0, port);
    }
    return;
  }
}

void Hypervisor::note_feedback(
    net::IpAddr peer, std::uint16_t port,
    const std::function<void(PendingFeedback&)>& update) {
  PeerFeedback& pf = pending_fb_[peer];
  auto [fb, inserted] = pf.ports.try_emplace(port);
  if (inserted) pf.rr_order.push_back(port);
  update(*fb);
}

void Hypervisor::set_feedback_loss(double p, std::uint64_t seed) {
  fb_loss_ = p;
  if (fb_loss_ > 0.0) fb_rng_.reseed(seed);
}

void Hypervisor::deliver_feedback(net::IpAddr peer,
                                  const net::CloveFeedback& fb) {
  if (fb_loss_ > 0.0 && fb_rng_.uniform() < fb_loss_) {
    ++stats_.feedback_lost_fault;
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kFault, sim_.now(), name(),
                       "feedback.fault_lost", "", fb_loss_, fb.port);
    }
    return;
  }
  if (fb_delay_ > 0) {
    ++stats_.feedback_delayed_fault;
    const net::CloveFeedback copy = fb;
    sim_.schedule_in(fb_delay_,
                     [this, peer, copy] { apply_feedback(peer, copy); });
    return;
  }
  apply_feedback(peer, fb);
}

void Hypervisor::apply_feedback(net::IpAddr peer, const net::CloveFeedback& fb) {
  policy_->on_feedback(peer, fb, sim_.now());
  // Any feedback naming one of our forward ports proves that path delivers
  // in both directions — evidence of life for the health monitor.
  if (path_health_) path_health_->note_alive(peer, fb.port, sim_.now());
}

// ---------------------------------------------------------------------------
// Ingress: NIC -> vswitch -> VM
// ---------------------------------------------------------------------------

void Hypervisor::receive(net::PacketPtr pkt, int /*in_port*/) {
  CLOVE_PROF_SCOPE(prof::kHypervisor);
  if (auto* fr = telemetry::flight(); fr != nullptr && fr->wants(pkt->uid)) {
    fr->on_deliver(pkt->uid, id(), name(),
                   pkt->encap.present && pkt->encap.ecn.ce, sim_.now());
  }
  if (pkt->inner.proto == net::Proto::kProbeReply) {
    handle_probe_reply(*pkt);
    return;
  }
  if (pkt->probe.probe_id != 0) {
    handle_probe(std::move(pkt));
    return;
  }
  handle_data(std::move(pkt));
}

void Hypervisor::handle_probe(net::PacketPtr pkt) {
  // A traceroute probe survived to the destination hypervisor: answer it so
  // the prober learns the path is complete (§3.1).
  auto reply = net::make_packet(sim_);
  reply->inner.src_ip = ip();
  reply->inner.dst_ip = pkt->wire_src();
  reply->inner.proto = net::Proto::kProbeReply;
  reply->payload = 64;
  reply->ttl = 64;
  reply->probe = pkt->probe;
  reply->probe.hop_ip = ip();
  reply->probe.hop_ingress = 0;  // the single NIC interface
  reply->probe.from_destination = true;
  ++stats_.dest_probe_replies;
  nic_send(std::move(reply));
}

void Hypervisor::handle_probe_reply(const net::Packet& pkt) {
  traceroute_->on_reply(pkt);
}

void Hypervisor::handle_data(net::PacketPtr pkt) {
  net::IpAddr peer = net::kIpNone;
  // Hybrid path capture: remember the overlay port before decap wipes it;
  // the trace itself is reported after feedback processing, below.
  const bool htrace_active = pkt->htrace.active;
  const std::uint16_t htrace_port =
      pkt->encap.present ? pkt->encap.tuple.src_port : 0;

  if (pkt->encap.present) {
    peer = pkt->encap.tuple.src_ip;
    ++stats_.decapped;
    if (telemetry::enabled()) cells_.decapped->add();

    // (a) Congestion interception (§3.2 "Detecting Congestion"): the outer
    // CE mark is recorded for relay to the sender and masked from the VM.
    if (pkt->encap.ecn.ce) {
      ++stats_.ce_intercepted;
      const std::uint16_t fwd_port = pkt->encap.tuple.src_port;
      if (telemetry::enabled()) cells_.ce_intercepted->add();
      if (telemetry::tracing()) {
        telemetry::trace(telemetry::Category::kFeedback, sim_.now(), name(),
                         "ecn.intercept", "outer CE masked from VM", 0.0,
                         fwd_port);
      }
      note_feedback(peer, fwd_port,
                    [](PendingFeedback& fb) { fb.ecn_pending = true; });
    }
    // (b) INT: relay the max egress-link utilization seen along the path.
    if (pkt->int_stack.enabled && pkt->int_stack.count > 0) {
      const double u = pkt->int_stack.max_util();
      const std::uint16_t fwd_port = pkt->encap.tuple.src_port;
      note_feedback(peer, fwd_port, [u](PendingFeedback& fb) {
        fb.has_util = true;
        fb.util = u;
      });
    }
    // (c) One-way latency (Clove-Latency extension).
    if (cfg_.measure_latency) {
      const sim::Time delay = sim_.now() - pkt->sent_at;
      const std::uint16_t fwd_port = pkt->encap.tuple.src_port;
      note_feedback(peer, fwd_port, [delay](PendingFeedback& fb) {
        fb.has_latency = true;
        fb.latency = delay;
      });
    }
    // (d) Feedback bits about OUR forward paths, relayed by the peer.
    if (pkt->encap.feedback.present) {
      ++stats_.feedback_received;
      if (telemetry::enabled()) cells_.feedback_received->add();
      deliver_feedback(peer, pkt->encap.feedback);
    }
    // Decapsulate. Outer CE is deliberately NOT copied to the inner header.
    pkt->encap = net::EncapHeader{};
    pkt->invalidate_wire_hash();  // wire tuple is now the inner tuple
  } else {
    // Non-overlay mode (§7): restore the rewritten source port and process
    // the feedback that rode in TCP options.
    if (pkt->rewrite.rewritten) {
      pkt->inner.src_port = pkt->rewrite.orig_src_port;
      pkt->rewrite = net::RewriteInfo{};
      pkt->invalidate_wire_hash();
    }
    peer = pkt->inner.src_ip;
    if (pkt->encap.feedback.present) {
      ++stats_.feedback_received;
      if (telemetry::enabled()) cells_.feedback_received->add();
      deliver_feedback(peer, pkt->encap.feedback);
      pkt->encap.feedback = net::CloveFeedback{};
    }
    if (pkt->tcp.ce) {
      // Inner marking reached us directly; treat like outer CE: record for
      // relay and mask from the VM.
      ++stats_.ce_intercepted;
      if (telemetry::enabled()) cells_.ce_intercepted->add();
      const std::uint16_t fwd_port = pkt->inner.dst_port;
      note_feedback(peer, fwd_port,
                    [](PendingFeedback& fb) { fb.ecn_pending = true; });
      pkt->tcp.ce = false;
    }
  }

  // (e) §3.2: only when ALL paths to the peer are congested is ECN relayed
  // into the sending VM — modeled by forging ECE on the inbound ACKs that
  // VM's TCP is clocked by.
  const bool all_congested = peer != net::kIpNone && pkt->tcp.flags.ack &&
                             policy_->all_paths_congested(peer, sim_.now());
  if (telemetry::flight_active() && pkt->tcp.flags.ack &&
      (pkt->tcp.flags.ece || all_congested)) {
    // The auditor sees every ECE that will reach the VM: forged ones (below)
    // and echoed ones arriving on the wire. Either is only legitimate when
    // all paths are congested — receivers never echo a masked CE.
    telemetry::flight()->on_ecn_to_vm(all_congested);
  }
  if (all_congested) {
    if (!pkt->tcp.flags.ece) {
      ++stats_.forged_ece;
      if (telemetry::enabled()) cells_.forged_ece->add();
      if (telemetry::tracing()) {
        telemetry::trace(telemetry::Category::kFeedback, sim_.now(), name(),
                         "ecn.forge_ece", "all paths congested", 0.0, peer);
      }
    }
    pkt->tcp.flags.ece = true;
  }

  if (htrace_active) {
    pkt->htrace.active = false;
    if (hybrid_ != nullptr) {
      // Report the links the flagged segment actually serialized on; the
      // engine promotes its flow here (suspending the sender and syncing
      // the receiver) before this — now stale — segment is delivered.
      hybrid_->on_trace(*this, pkt->inner, pkt->htrace, htrace_port);
    }
  }

  if (reorder_ && pkt->payload > 0) {
    reorder_->offer(std::move(pkt));
  } else {
    deliver_to_vm(std::move(pkt));
  }
}

void Hypervisor::deliver_to_vm(net::PacketPtr pkt) {
  if (auto* fr = telemetry::flight()) {
    fr->on_vm_delivery(pkt->uid,
                       {pkt->inner.src_ip, pkt->inner.dst_ip,
                        pkt->inner.src_port, pkt->inner.dst_port},
                       pkt->tcp.seq, pkt->payload, pkt->tcp.ce,
                       reorder_ != nullptr || policy_->requires_reassembly(),
                       sim_.now());
  }
  const net::FiveTuple key = pkt->inner.reversed();
  transport::TcpEndpoint** ep = endpoints_.find(key);
  if (ep == nullptr) {
    if (pkt->payload == 0) {
      ++stats_.no_endpoint_drops;  // stray ACK for a finished endpoint
      return;
    }
    // First packet of an inbound flow: the "listening" VM stack spins up a
    // receiver (connection setup is not modeled; see DESIGN.md).
    auto rx = std::make_unique<transport::TcpReceiver>(*this, key, cfg_.tcp);
    transport::TcpReceiver* raw = rx.get();
    owned_receivers_.push_back(std::move(rx));
    endpoints_[key] = raw;
    if (on_new_receiver) on_new_receiver(*raw, pkt->inner);
    raw->on_packet(std::move(pkt));
    return;
  }
  (*ep)->on_packet(std::move(pkt));
}

}  // namespace clove::overlay
