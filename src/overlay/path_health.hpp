#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "lb/policy.hpp"
#include "overlay/paths.hpp"
#include "overlay/traceroute.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace clove::overlay {

/// Knobs of the source-side path-health monitor (DESIGN.md §8).
struct PathHealthConfig {
  bool enabled{false};
  /// Staleness-scan cadence.
  sim::Time check_interval{1 * sim::kMillisecond};
  /// A port with traffic offered but no evidence of life (feedback or
  /// keepalive ack) for this long becomes suspect. Pick ~k x RTT: long
  /// enough that an idle-but-healthy reverse path (ECN feedback is quiet
  /// when nothing is congested) rarely trips it, short enough to beat the
  /// guest TCP's RTO.
  sim::Time staleness{4 * sim::kMillisecond};
  /// Consecutive unanswered keepalives before a suspect port is evicted.
  int evict_after_probes{3};
  /// Delay before the first keepalive retry; doubles (backoff_factor) up to
  /// probe_backoff_max. Evicted ports keep re-probing at the capped rate so
  /// a returning link is re-discovered without operator action.
  sim::Time probe_backoff{500 * sim::kMicrosecond};
  double backoff_factor{2.0};
  sim::Time probe_backoff_max{100 * sim::kMillisecond};
  /// Keep sending (slow) keepalives to evicted ports; an answer triggers an
  /// immediate discovery round so the path set heals.
  bool reprobe_evicted{true};
};

/// Monitors the liveness of every (destination, outer port) path a source
/// hypervisor routes over, and drives recovery when one dies.
///
/// State machine per port (DESIGN.md §8):
///
///   live --staleness--> suspect --N misses--> evicted --ack--> re-probed
///    ^                     |  ack                 |  (discovery republish)
///    +---------------------+---------<------------+
///
/// Evidence of life is any Clove feedback naming the port, or a keepalive
/// ack. Staleness only starts while traffic is actually offered (last send
/// newer than last evidence): an idle path is unknown, not dead. Eviction
/// notifies the policy (Policy::on_path_evicted) and the traceroute daemon
/// (TracerouteDaemon::evict_port), which republishes the shrunken set so
/// every consumer renormalizes at once.
class PathHealthMonitor {
 public:
  enum class PortHealth : std::uint8_t { kLive = 0, kSuspect, kEvicted };

  struct Stats {
    std::uint64_t keepalives_sent{0};
    std::uint64_t keepalive_acks{0};
    std::uint64_t suspects{0};
    std::uint64_t evictions{0};
    std::uint64_t readmissions{0};
  };

  PathHealthMonitor(sim::Simulator& sim, std::string owner,
                    const PathHealthConfig& cfg, TracerouteDaemon* daemon,
                    lb::Policy* policy);

  /// Discovery published a (new) path set for dst: sync the monitored port
  /// map. Evicted entries survive the rebuild (they keep re-probing until
  /// readmitted or superseded).
  void on_paths_updated(net::IpAddr dst, const PathSet& paths);

  /// A data packet was routed over (dst, port).
  void note_sent(net::IpAddr dst, std::uint16_t port, sim::Time now);
  /// Evidence the path delivers: feedback naming the port arrived.
  void note_alive(net::IpAddr dst, std::uint16_t port, sim::Time now);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const PathHealthConfig& config() const { return cfg_; }
  /// Health of a monitored port; kLive for unknown ports (tests).
  [[nodiscard]] PortHealth health(net::IpAddr dst, std::uint16_t port) const;

  /// Fires on every eviction, after the policy was notified but before the
  /// daemon republishes the shrunken set. The hypervisor hooks this to fan
  /// the event out to its transport endpoints (TcpEndpoint::on_path_evicted)
  /// so stalled senders retransmit immediately instead of waiting the RTO.
  std::function<void(net::IpAddr dst, std::uint16_t port)> on_evict;

 private:
  struct PortState {
    PortHealth health{PortHealth::kLive};
    sim::Time last_evidence{0};
    sim::Time last_sent{-1};
    int misses{0};
    sim::Time backoff{0};
    bool probe_outstanding{false};
    bool in_set{true};  ///< present in the latest published path set
  };
  // std::map: iteration order (and thus keepalive send order) must be
  // deterministic for bit-identical runs.
  using PortMap = std::map<std::uint16_t, PortState>;

  void tick();
  void send_keepalive(net::IpAddr dst, std::uint16_t port);
  void schedule_retry(net::IpAddr dst, std::uint16_t port, sim::Time delay);
  void on_keepalive_result(net::IpAddr dst, std::uint16_t port, bool alive);
  void evict(net::IpAddr dst, std::uint16_t port);
  PortState* find(net::IpAddr dst, std::uint16_t port);

  sim::Simulator& sim_;
  std::string owner_;
  PathHealthConfig cfg_;
  TracerouteDaemon* daemon_;
  lb::Policy* policy_;
  std::map<net::IpAddr, PortMap> dsts_;
  bool tick_armed_{false};
  Stats stats_;

  struct Cells {
    telemetry::Counter* keepalives;
    telemetry::Counter* keepalive_acks;
    telemetry::Counter* suspects;
    telemetry::Counter* evictions;
    telemetry::Counter* readmissions;
  };
  Cells cells_;
};

}  // namespace clove::overlay
