#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace clove::overlay {

struct ReorderConfig {
  sim::Time flush_timeout{500 * sim::kMicrosecond};  ///< Presto's "empirical
                                                     ///< static timeout"
  std::uint64_t max_flow_bytes{2u << 20};  ///< cap before a forced flush
};

/// Receiver-side flowcell/flowlet reassembly (Presto §5 baseline, also the
/// optional Clove flowlet-reordering extension of §7): inner data packets of
/// a flow are delivered to the VM strictly by sequence; out-of-order arrivals
/// are held until the gap fills, a timeout fires (loss recovery must proceed)
/// or the buffer cap is hit. Pure ACKs bypass the buffer (cumulative ACKs
/// are reorder-tolerant).
class ReorderBuffer {
 public:
  using DeliverFn = std::function<void(net::PacketPtr)>;
  using FlushFn = std::function<void(const net::FiveTuple&)>;

  ReorderBuffer(sim::Simulator& sim, const ReorderConfig& cfg, DeliverFn deliver)
      : sim_(sim), cfg_(cfg), deliver_(std::move(deliver)) {}

  /// Observe forced (timeout / cap) flushes. A forced flush deliberately
  /// releases past a gap, so late stragglers filling that gap will reach the
  /// VM out of send order — the flight recorder's reassembly auditor uses
  /// this to distinguish that designed release from a reassembly bug.
  void set_flush_hook(FlushFn fn) { on_flush_ = std::move(fn); }

  /// Offer an inner data packet (payload > 0).
  void offer(net::PacketPtr pkt) {
    Flow& f = flow_for(pkt->inner);
    const std::uint64_t seq = pkt->tcp.seq;
    const std::uint64_t end = seq + pkt->payload;
    if (seq <= f.next_seq) {
      // In order (or a retransmission of delivered data): pass through.
      f.next_seq = std::max(f.next_seq, end);
      deliver_(std::move(pkt));
      drain(f);
      return;
    }
    ++held_;
    f.buffered_bytes += pkt->payload;
    f.buf.emplace(seq, std::move(pkt));
    if (f.buffered_bytes > cfg_.max_flow_bytes) {
      flush(f);
    } else if (!f.timer->pending()) {
      f.timer->schedule_in(cfg_.flush_timeout);
    }
  }

  [[nodiscard]] std::uint64_t packets_held() const { return held_; }
  [[nodiscard]] std::uint64_t forced_flushes() const { return flushes_; }

 private:
  struct Flow {
    net::FiveTuple tuple{};
    std::uint64_t next_seq{0};
    std::multimap<std::uint64_t, net::PacketPtr> buf;
    std::uint64_t buffered_bytes{0};
    std::unique_ptr<sim::Timer> timer;
  };

  Flow& flow_for(const net::FiveTuple& t) {
    auto [it, inserted] = flows_.try_emplace(t);
    Flow& f = it->second;
    if (inserted) {
      f.tuple = t;
      f.timer = std::make_unique<sim::Timer>(sim_, [this, &f] { flush(f); });
    }
    return f;
  }

  /// Deliver buffered packets that became contiguous.
  void drain(Flow& f) {
    while (!f.buf.empty() && f.buf.begin()->first <= f.next_seq) {
      auto it = f.buf.begin();
      net::PacketPtr pkt = std::move(it->second);
      f.buf.erase(it);
      f.buffered_bytes -= pkt->payload;
      f.next_seq = std::max(f.next_seq, pkt->tcp.seq + pkt->payload);
      deliver_(std::move(pkt));
    }
    if (f.buf.empty()) f.timer->cancel();
  }

  /// Timeout or overflow: give up on the gap and release everything in
  /// sequence order, letting the VM TCP handle the hole.
  void flush(Flow& f) {
    ++flushes_;
    if (on_flush_) on_flush_(f.tuple);
    while (!f.buf.empty()) {
      auto it = f.buf.begin();
      net::PacketPtr pkt = std::move(it->second);
      f.buf.erase(it);
      f.buffered_bytes -= pkt->payload;
      f.next_seq = std::max(f.next_seq, pkt->tcp.seq + pkt->payload);
      deliver_(std::move(pkt));
    }
    f.timer->cancel();
  }

  sim::Simulator& sim_;
  ReorderConfig cfg_;
  DeliverFn deliver_;
  FlushFn on_flush_;
  std::unordered_map<net::FiveTuple, Flow, net::FiveTupleHash> flows_;
  std::uint64_t held_{0};
  std::uint64_t flushes_{0};
};

}  // namespace clove::overlay
