#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hybrid/hybrid.hpp"
#include "lb/policy.hpp"
#include "net/node.hpp"
#include "overlay/path_health.hpp"
#include "overlay/reorder_buffer.hpp"
#include "overlay/traceroute.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "transport/tcp.hpp"
#include "util/flat_map.hpp"

namespace clove::overlay {

/// Knobs of the hypervisor vswitch datapath.
struct HypervisorConfig {
  /// Overlay (STT encapsulation) vs non-overlay (§7 five-tuple rewriting).
  bool overlay{true};
  /// Receiver-side feedback relay cadence per path ("half the RTT" in §3.2).
  sim::Time feedback_relay_interval{50 * sim::kMicrosecond};
  /// Enable receiver-side reassembly (Presto; §7 flowlet optimization).
  bool reorder_buffer{false};
  ReorderConfig reorder{};
  /// Path discovery settings (used when the policy needs_discovery()).
  TracerouteConfig discovery{};
  /// Source-side path-health monitoring (keepalives, staleness eviction).
  PathHealthConfig path_health{};
  /// Measure one-way delay and relay it (Clove-Latency extension, §7).
  bool measure_latency{false};
  /// TCP config used for auto-created receivers.
  transport::TcpConfig tcp{};
};

/// Datapath counters of one hypervisor vswitch.
struct HypervisorStats {
  std::uint64_t encapped{0};
  std::uint64_t decapped{0};
  std::uint64_t feedback_attached{0};
  std::uint64_t feedback_received{0};
  std::uint64_t ce_intercepted{0};   ///< outer CE marks masked from the VM
  std::uint64_t forged_ece{0};       ///< ECN relayed into the VM (§3.2)
  std::uint64_t dest_probe_replies{0};
  std::uint64_t local_deliveries{0};
  std::uint64_t no_endpoint_drops{0};
  std::uint64_t feedback_lost_fault{0};     ///< injected feedback losses
  std::uint64_t feedback_delayed_fault{0};  ///< injected feedback delays
};

/// A hypervisor host: the tenant-VM TCP endpoints above, the physical NIC
/// below, and in between the Clove virtual switch — encapsulation with
/// policy-chosen source ports, flowlet routing (inside the policy), ECN/INT
/// feedback interception and relay via STT-context bits, ECN masking, path
/// discovery probes, and (optionally) Presto flowcell reassembly.
class Hypervisor : public net::Node,
                   public transport::VmPort,
                   public hybrid::HostAdapter {
 public:
  Hypervisor(net::NodeId id, std::string name, sim::Simulator& sim,
             HypervisorConfig cfg, std::unique_ptr<lb::Policy> policy);

  // --- transport::VmPort (VM-facing side) ------------------------------
  void vm_send(net::PacketPtr pkt) override;
  sim::Simulator& simulator() override { return sim_; }

  // --- net::Node (NIC-facing side) --------------------------------------
  void receive(net::PacketPtr pkt, int in_port) override;

  // --- endpoint registry -------------------------------------------------
  /// Register a locally-owned endpoint (a sender created by a workload app).
  /// Keyed by the endpoint's own outbound tuple.
  void register_endpoint(const net::FiveTuple& tuple,
                         transport::TcpEndpoint* ep);
  /// Fired when an inbound flow auto-creates a receiver (so apps can attach
  /// delivery callbacks, e.g. incast servers).
  std::function<void(transport::TcpReceiver&, const net::FiveTuple& from)>
      on_new_receiver;

  // --- path discovery ----------------------------------------------------
  /// Start (periodic) path discovery towards the given peer hypervisors.
  void start_discovery(const std::vector<net::IpAddr>& peers);
  [[nodiscard]] TracerouteDaemon& discovery() { return *traceroute_; }

  [[nodiscard]] lb::Policy& policy() { return *policy_; }
  [[nodiscard]] const HypervisorStats& stats() const { return stats_; }
  [[nodiscard]] const HypervisorConfig& config() const { return cfg_; }
  /// Path-health monitor; null unless config().path_health.enabled.
  [[nodiscard]] PathHealthMonitor* path_health() { return path_health_.get(); }

  // --- engine profiler (clove::prof) -------------------------------------
  /// Fold this vswitch's open-addressing tables — endpoint demux, pending
  /// feedback, and the policy's flowlet table — into `p` (occupancy and
  /// probe-length digests). Cold path: called once at end of run.
  void prof_note_tables(prof::Profiler& p) const;

  // --- hybrid flow/packet engine (clove::hybrid) --------------------------
  /// Attach the hybrid engine: locally-registered plain senders become
  /// promotion candidates (reassembly schemes excluded — the reorder buffer
  /// needs the real segment sequence), and Clove weight-degrade feedback is
  /// relayed into the engine as a demotion trigger.
  void set_hybrid(hybrid::Engine* engine);
  [[nodiscard]] hybrid::Engine* hybrid_engine() const { return hybrid_; }

  // hybrid::HostAdapter (destination-side promotion support)
  [[nodiscard]] transport::TcpEndpoint* hybrid_find_endpoint(
      const net::FiveTuple& key) override {
    auto* ep = endpoints_.find(key);
    return ep != nullptr ? *ep : nullptr;
  }
  [[nodiscard]] bool hybrid_requires_reassembly() const override {
    return reorder_ != nullptr || policy_->requires_reassembly();
  }
  [[nodiscard]] net::IpAddr hybrid_ip() const override { return id(); }

  // --- fault-injection hooks (clove::fault) ------------------------------
  /// Drop each arriving feedback relay with probability `p` before the
  /// policy sees it (models a lossy/filtered reverse channel).
  void set_feedback_loss(double p, std::uint64_t seed);
  /// Defer arriving feedback by `delay` before the policy sees it.
  void set_feedback_delay(sim::Time delay) { fb_delay_ = delay; }

 private:
  /// Pending feedback accumulated for one (peer, forward source port).
  struct PendingFeedback {
    bool ecn_pending{false};
    bool has_util{false};
    double util{0.0};
    bool has_latency{false};
    sim::Time latency{0};
    sim::Time last_relayed{-1};
  };
  struct PeerFeedback {
    util::FlatMap<std::uint16_t, PendingFeedback> ports;
    std::vector<std::uint16_t> rr_order;  ///< round-robin relay order
    std::size_t rr_next{0};
  };

  void nic_send(net::PacketPtr pkt);
  void handle_probe(net::PacketPtr pkt);
  void handle_probe_reply(const net::Packet& pkt);
  void handle_data(net::PacketPtr pkt);
  void deliver_to_vm(net::PacketPtr pkt);
  void attach_feedback(net::IpAddr peer, net::Packet& pkt);
  void note_feedback(net::IpAddr peer, std::uint16_t port,
                     const std::function<void(PendingFeedback&)>& update);
  /// Route an arriving feedback relay through the (possibly faulted)
  /// delivery path to the policy + path-health monitor.
  void deliver_feedback(net::IpAddr peer, const net::CloveFeedback& fb);
  void apply_feedback(net::IpAddr peer, const net::CloveFeedback& fb);

  sim::Simulator& sim_;
  HypervisorConfig cfg_;
  std::unique_ptr<lb::Policy> policy_;
  std::unique_ptr<TracerouteDaemon> traceroute_;
  std::unique_ptr<ReorderBuffer> reorder_;
  std::unique_ptr<PathHealthMonitor> path_health_;
  hybrid::Engine* hybrid_{nullptr};
  double fb_loss_{0.0};       ///< injected feedback-loss probability
  sim::Time fb_delay_{0};     ///< injected feedback delivery delay
  sim::Rng fb_rng_{0};        ///< reseeded by set_feedback_loss

  // Per-delivered-packet endpoint demux and per-ingress-packet feedback
  // state live on open-addressing maps: one probe, no node allocations.
  struct TupleHasher {
    std::uint64_t operator()(const net::FiveTuple& t) const noexcept {
      return net::tuple_prehash(t);
    }
  };
  util::FlatMap<net::FiveTuple, transport::TcpEndpoint*, TupleHasher>
      endpoints_;
  std::vector<std::unique_ptr<transport::TcpReceiver>> owned_receivers_;
  util::FlatMap<net::IpAddr, PeerFeedback> pending_fb_;

  HypervisorStats stats_;

  struct Cells {
    telemetry::Counter* encapped;
    telemetry::Counter* decapped;
    telemetry::Counter* ce_intercepted;
    telemetry::Counter* feedback_attached;
    telemetry::Counter* feedback_received;
    telemetry::Counter* forged_ece;
  };
  Cells cells_;
};

}  // namespace clove::overlay
