#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "overlay/paths.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace clove::overlay {

struct TracerouteConfig {
  int sample_ports{32};   ///< random encap source ports probed per round
  int k_paths{4};         ///< disjoint paths to keep (§3.1: "k source ports")
  int max_ttl{6};         ///< TTL ladder length per probed port
  sim::Time probe_interval{500 * sim::kMillisecond};  ///< re-probe cadence
  sim::Time probe_timeout{20 * sim::kMillisecond};    ///< round collection time
  double interval_jitter{0.1};  ///< de-synchronizes rounds across hypervisors
};

/// The user-space traceroute daemon of §3.1/§4: per destination hypervisor,
/// periodically sends TTL-laddered probes over randomized encapsulation
/// source ports. Switches answer TTL expiry with their identity; the
/// destination hypervisor answers probes that reach it. From the replies the
/// daemon reconstructs the port->path mapping, then greedily keeps k ports
/// whose paths share the fewest links ("add the path that shares the least
/// number of links with paths already picked").
class TracerouteDaemon {
 public:
  /// Transmits an already-encapsulated probe packet out the host NIC.
  using SendFn = std::function<void(net::PacketPtr)>;
  /// Fired when a round completes with a fresh path set for `dst`.
  using PathsCallback = std::function<void(net::IpAddr dst, const PathSet&)>;
  /// Result of a single-port keepalive: alive iff the destination answered
  /// within probe_timeout.
  using KeepaliveFn =
      std::function<void(net::IpAddr dst, std::uint16_t port, bool alive)>;

  TracerouteDaemon(sim::Simulator& sim, net::IpAddr self,
                   const TracerouteConfig& cfg, SendFn send,
                   PathsCallback on_paths, std::uint64_t seed = 0x7ace);

  /// Begin (and keep) probing paths to `dst`. Idempotent.
  void add_destination(net::IpAddr dst);
  /// Launch a probe round immediately (also used after topology events).
  void probe_now(net::IpAddr dst);

  /// Feed a probe reply received by the hypervisor (switch TTL-expiry reply
  /// or destination reply).
  void on_reply(const net::Packet& pkt);

  /// Send one max-TTL probe over `port` (no TTL ladder — a liveness check,
  /// not a trace) and report whether the destination answered within
  /// probe_timeout. Used by path-health monitoring to confirm a suspect
  /// path end-to-end without waiting for the next full round.
  void keepalive(net::IpAddr dst, std::uint16_t port, KeepaliveFn done);

  /// Remove `port` from dst's current path set (path-health eviction) and
  /// fire the paths callback — even when the set becomes empty, so policies
  /// can drain their per-path state. Returns true when the port was present.
  bool evict_port(net::IpAddr dst, std::uint16_t port);

  [[nodiscard]] const PathSet* paths(net::IpAddr dst) const;
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t keepalives_sent() const {
    return keepalives_sent_;
  }
  [[nodiscard]] int rounds_completed() const { return rounds_completed_; }

  /// Exposed for tests: the greedy disjoint-path selection.
  static std::vector<PathInfo> select_disjoint(std::vector<PathInfo> candidates,
                                               int k);

 private:
  struct PortTrace {
    std::map<int, PathHop> hops;  ///< hop_index -> (node, ingress interface)
    int dest_reached_at{0};       ///< min hop_index of a destination reply
    std::int32_t dest_ingress{0}; ///< NIC port the destination saw it on
  };
  struct Round {
    std::uint32_t id{0};
    std::unordered_map<std::uint16_t, PortTrace> traces;
    bool open{false};
  };
  struct DstState {
    PathSet current;
    Round round;
    bool scheduled{false};
  };
  struct Keepalive {
    net::IpAddr dst{0};
    std::uint16_t port{0};
    KeepaliveFn done;
  };

  void finish_round(net::IpAddr dst);
  void schedule_next(net::IpAddr dst);

  sim::Simulator& sim_;
  net::IpAddr self_;
  TracerouteConfig cfg_;
  SendFn send_;
  PathsCallback on_paths_;
  sim::Rng rng_;

  std::unordered_map<net::IpAddr, DstState> dsts_;
  std::unordered_map<std::uint32_t, net::IpAddr> round_owner_;
  /// Outstanding keepalives keyed by probe id (shares the round id space so
  /// replies demultiplex unambiguously).
  std::unordered_map<std::uint32_t, Keepalive> keepalives_;
  std::uint32_t next_round_id_{1};
  std::uint64_t probes_sent_{0};
  std::uint64_t keepalives_sent_{0};
  int rounds_completed_{0};
};

}  // namespace clove::overlay
