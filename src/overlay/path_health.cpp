#include "overlay/path_health.hpp"

#include <algorithm>

#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"
#include "telemetry/trace.hpp"

namespace clove::overlay {

namespace {
std::string port_detail(net::IpAddr dst, std::uint16_t port) {
  std::string s = "dst ";
  s += std::to_string(dst);
  s += " port ";
  s += std::to_string(port);
  return s;
}
}  // namespace

PathHealthMonitor::PathHealthMonitor(sim::Simulator& sim, std::string owner,
                                     const PathHealthConfig& cfg,
                                     TracerouteDaemon* daemon,
                                     lb::Policy* policy)
    : sim_(sim),
      owner_(std::move(owner)),
      cfg_(cfg),
      daemon_(daemon),
      policy_(policy) {
  auto& reg = telemetry::hub().metrics();
  const telemetry::Labels labels{{"host", owner_}};
  cells_.keepalives = reg.counter("clove.pathset.keepalives", labels);
  cells_.keepalive_acks = reg.counter("clove.pathset.keepalive_acks", labels);
  cells_.suspects = reg.counter("clove.pathset.suspects", labels);
  cells_.evictions = reg.counter("clove.pathset.evictions", labels);
  cells_.readmissions = reg.counter("clove.pathset.readmissions", labels);
}

PathHealthMonitor::PortState* PathHealthMonitor::find(net::IpAddr dst,
                                                      std::uint16_t port) {
  auto dit = dsts_.find(dst);
  if (dit == dsts_.end()) return nullptr;
  auto pit = dit->second.find(port);
  return pit == dit->second.end() ? nullptr : &pit->second;
}

PathHealthMonitor::PortHealth PathHealthMonitor::health(
    net::IpAddr dst, std::uint16_t port) const {
  auto dit = dsts_.find(dst);
  if (dit == dsts_.end()) return PortHealth::kLive;
  auto pit = dit->second.find(port);
  return pit == dit->second.end() ? PortHealth::kLive : pit->second.health;
}

void PathHealthMonitor::on_paths_updated(net::IpAddr dst,
                                         const PathSet& paths) {
  if (!cfg_.enabled) return;
  PortMap& ports = dsts_[dst];
  for (auto& [port, st] : ports) st.in_set = false;
  for (const PathInfo& info : paths.paths) {
    auto [it, inserted] = ports.try_emplace(info.port);
    PortState& st = it->second;
    st.in_set = true;
    if (inserted) {
      st.last_evidence = sim_.now();
    } else if (st.health == PortHealth::kEvicted) {
      // Discovery republished a port we had declared dead: the path healed.
      st.health = PortHealth::kLive;
      st.last_evidence = sim_.now();
      st.misses = 0;
      ++stats_.readmissions;
      if (telemetry::enabled()) cells_.readmissions->add();
      if (telemetry::tracing()) {
        telemetry::trace(telemetry::Category::kFault, sim_.now(), owner_,
                         "pathset.readmit", port_detail(dst, info.port), 0.0,
                         info.port);
      }
    }
  }
  // Drop mappings discovery has abandoned — except evicted ones, which keep
  // re-probing until the path heals or this destination forgets them.
  for (auto it = ports.begin(); it != ports.end();) {
    if (!it->second.in_set && it->second.health != PortHealth::kEvicted) {
      it = ports.erase(it);
    } else {
      ++it;
    }
  }
  if (!tick_armed_ && !ports.empty()) {
    tick_armed_ = true;
    sim_.schedule_in(cfg_.check_interval, [this] { tick(); });
  }
}

void PathHealthMonitor::note_sent(net::IpAddr dst, std::uint16_t port,
                                  sim::Time now) {
  if (PortState* st = find(dst, port)) st->last_sent = now;
}

void PathHealthMonitor::note_alive(net::IpAddr dst, std::uint16_t port,
                                   sim::Time now) {
  PortState* st = find(dst, port);
  if (st == nullptr || st->health == PortHealth::kEvicted) return;
  st->last_evidence = now;
  if (st->health == PortHealth::kSuspect) {
    st->health = PortHealth::kLive;
    st->misses = 0;
  }
}

void PathHealthMonitor::tick() {
  const sim::Time now = sim_.now();
  for (auto& [dst, ports] : dsts_) {
    for (auto& [port, st] : ports) {
      if (st.health != PortHealth::kLive || !st.in_set) continue;
      // Staleness needs traffic: only a path we are actively sending on and
      // hearing nothing back from is suspicious. ECN feedback is silent on
      // an uncongested healthy path, which is why suspicion leads to a
      // keepalive rather than straight to eviction.
      if (st.last_sent < 0 || st.last_sent <= st.last_evidence) continue;
      if (now - st.last_evidence <= cfg_.staleness) continue;
      st.health = PortHealth::kSuspect;
      st.misses = 0;
      st.backoff = cfg_.probe_backoff;
      ++stats_.suspects;
      if (telemetry::enabled()) cells_.suspects->add();
      if (telemetry::tracing()) {
        telemetry::trace(telemetry::Category::kFault, now, owner_,
                         "pathset.suspect", port_detail(dst, port),
                         static_cast<double>(now - st.last_evidence), port);
      }
      if (!st.probe_outstanding) send_keepalive(dst, port);
    }
  }
  sim_.schedule_in(cfg_.check_interval, [this] { tick(); });
}

void PathHealthMonitor::send_keepalive(net::IpAddr dst, std::uint16_t port) {
  PortState* st = find(dst, port);
  if (st == nullptr || st->probe_outstanding) return;
  st->probe_outstanding = true;
  ++stats_.keepalives_sent;
  if (telemetry::enabled()) cells_.keepalives->add();
  daemon_->keepalive(dst, port,
                     [this](net::IpAddr d, std::uint16_t p, bool alive) {
                       on_keepalive_result(d, p, alive);
                     });
}

void PathHealthMonitor::schedule_retry(net::IpAddr dst, std::uint16_t port,
                                       sim::Time delay) {
  sim_.schedule_in(delay, [this, dst, port] {
    PortState* st = find(dst, port);
    if (st == nullptr || st->health == PortHealth::kLive) return;
    if (st->health == PortHealth::kEvicted && !cfg_.reprobe_evicted) return;
    send_keepalive(dst, port);
  });
}

void PathHealthMonitor::on_keepalive_result(net::IpAddr dst,
                                            std::uint16_t port, bool alive) {
  PortState* st = find(dst, port);
  if (st == nullptr) return;
  st->probe_outstanding = false;
  if (alive) {
    ++stats_.keepalive_acks;
    if (telemetry::enabled()) cells_.keepalive_acks->add();
    if (st->health == PortHealth::kEvicted) {
      // The dead path answers again. Ask discovery for a fresh round right
      // away; the republished set readmits the port (or maps a new one to
      // the healed path) through on_paths_updated. Erase first: probe_now
      // republishes synchronously-ish and the entry must not linger if the
      // port mapping changed.
      ++stats_.readmissions;
      if (telemetry::enabled()) cells_.readmissions->add();
      if (telemetry::tracing()) {
        telemetry::trace(telemetry::Category::kFault, sim_.now(), owner_,
                         "pathset.reprobe_ok", port_detail(dst, port), 0.0,
                         port);
      }
      dsts_[dst].erase(port);
      daemon_->probe_now(dst);
      return;
    }
    st->health = PortHealth::kLive;
    st->misses = 0;
    st->last_evidence = sim_.now();
    return;
  }
  ++st->misses;
  if (st->health == PortHealth::kSuspect &&
      st->misses >= cfg_.evict_after_probes) {
    evict(dst, port);
    // fall through to keep re-probing the now-evicted port (backoff grows)
  }
  st = find(dst, port);
  if (st == nullptr) return;
  st->backoff = std::min<sim::Time>(
      static_cast<sim::Time>(static_cast<double>(st->backoff) *
                             cfg_.backoff_factor),
      cfg_.probe_backoff_max);
  if (st->backoff <= 0) st->backoff = cfg_.probe_backoff;
  if (st->health == PortHealth::kEvicted && !cfg_.reprobe_evicted) return;
  schedule_retry(dst, port, st->backoff);
}

void PathHealthMonitor::evict(net::IpAddr dst, std::uint16_t port) {
  PortState* st = find(dst, port);
  if (st == nullptr || st->health == PortHealth::kEvicted) return;
  st->health = PortHealth::kEvicted;
  ++stats_.evictions;
  if (telemetry::enabled()) cells_.evictions->add();
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kFault, sim_.now(), owner_,
                     "pathset.evict", port_detail(dst, port),
                     static_cast<double>(st->misses), port);
  }
  // Order matters: the policy drops its per-port state first, then the
  // daemon republishes the shrunken set (on_paths_updated re-enters this
  // monitor, which keeps the evicted entry alive — see on_paths_updated).
  if (policy_ != nullptr) policy_->on_path_evicted(dst, port, sim_.now());
  if (on_evict) on_evict(dst, port);
  if (daemon_ != nullptr) daemon_->evict_port(dst, port);
}

}  // namespace clove::overlay
