#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace clove::util {

/// Growable ring-buffer FIFO, the allocation-free replacement for the
/// std::deque behind every Link egress queue and propagation pipe.
///
/// std::deque allocates and frees fixed-size blocks as elements cycle
/// through it, so a steady packet stream costs a heap round-trip every few
/// dozen packets per queue. RingDeque keeps one power-of-two buffer and
/// moves head/tail indices; it allocates only when occupancy exceeds the
/// current capacity, which stops happening once a simulation reaches its
/// queue-depth high-watermark.
///
/// T must be default-constructible and movable (PacketPtr and
/// pair<Time, PacketPtr> both are). pop_front() move-assigns the slot out,
/// so resources are released as eagerly as std::deque would.
template <typename T>
class RingDeque {
 public:
  static constexpr std::size_t kMinCapacity = 8;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }
  [[nodiscard]] T& back() {
    return buf_[(head_ + size_ - 1) & (buf_.size() - 1)];
  }

  void pop_front() {
    buf_[head_] = T{};  // release held resources now, as deque would
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? kMinCapacity : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace clove::util
