#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace clove::util {

/// SplitMix64 finalizer: turns an integral key (or any pre-mixed 64-bit
/// value) into a well-dispersed hash. FlatMap masks hashes with
/// (capacity - 1), so the hash function must disperse the LOW bits —
/// std::hash's identity on integers would make sequential keys collide in
/// probe clusters.
struct SplitMix64Hash {
  [[nodiscard]] std::uint64_t operator()(std::uint64_t z) const noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Open-addressing hash map with linear probing, tombstone deletion and
/// power-of-two capacity — the flow-state store behind the forwarding fast
/// path (FlowletTracker, SwitchFlowletTable, the hypervisor's endpoint and
/// feedback maps).
///
/// Why not std::unordered_map: the node-based layout costs one heap
/// allocation per insert and a pointer chase per lookup; on the per-packet
/// path both show up directly in packets/s. FlatMap keeps all entries in one
/// contiguous slot array: lookups touch a single cache line run, inserts
/// allocate only when the table grows, and growth stops in steady state.
///
/// Pointer stability: erase() tombstones the slot without relocating
/// anything, so a Value* ("entry handle") stays valid across other inserts'
/// probe sequences and any number of erases — it is invalidated only by a
/// rehash (growth). Callers holding a handle must not insert before using
/// it; the touch()/set-through-handle pattern in the flowlet tables does
/// lookup and store back-to-back.
///
/// Requirements: Key is equality-comparable + copyable, Key and Value are
/// default-constructible. Hash(key) must return uint64_t with dispersed low
/// bits (see SplitMix64Hash).
template <typename Key, typename Value, typename Hash = SplitMix64Hash>
class FlatMap {
  enum class State : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };

  struct Slot {
    Key key{};
    Value value{};
    State state{State::kEmpty};
  };

 public:
  static constexpr std::size_t kMinCapacity = 16;

  FlatMap() = default;
  explicit FlatMap(Hash hash) : hash_(std::move(hash)) {}

  /// Live entries (tombstones excluded).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Slot-array size (power of two, >= kMinCapacity once non-empty). The
  /// table rehashes when live + tombstoned slots exceed 3/4 of this.
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Drop all entries and release the slot array (also resets the sweep
  /// cursor). Invalidates every handle and iterator.
  void clear() {
    slots_.clear();
    size_ = 0;
    tombs_ = 0;
    sweep_cursor_ = 0;
  }

  /// Pre-size so the table can hold `n` entries without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4 + 4) cap <<= 1;  // target load factor <= 0.75
    if (cap > slots_.size()) rehash(cap);
  }

  /// Entry handle for `key`, or nullptr. The handle obeys the pointer
  /// stability contract above: valid across erases, dead after a rehash.
  [[nodiscard]] Value* find(const Key& key) {
    Slot* s = find_slot(key);
    return s != nullptr ? &s->value : nullptr;
  }
  [[nodiscard]] const Value* find(const Key& key) const {
    const Slot* s = const_cast<FlatMap*>(this)->find_slot(key);
    return s != nullptr ? &s->value : nullptr;
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != nullptr;
  }

  /// Locate `key`, default-constructing its value if absent. Returns the
  /// entry handle and whether it was inserted. The handle is valid until the
  /// next rehash (i.e. at least until the next insert).
  std::pair<Value*, bool> try_emplace(const Key& key) {
    if (slots_.empty() || (size_ + tombs_ + 1) * 4 > slots_.size() * 3) {
      grow();
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_(key) & mask;
    Slot* tomb = nullptr;
    for (;;) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) {
        Slot* dst = tomb != nullptr ? tomb : &s;
        if (tomb != nullptr) --tombs_;
        dst->key = key;
        dst->value = Value{};
        dst->state = State::kFull;
        ++size_;
        return {&dst->value, true};
      }
      if (s.state == State::kTomb) {
        if (tomb == nullptr) tomb = &s;  // first tombstone on the probe path
      } else if (s.key == key) {
        return {&s.value, false};
      }
      i = (i + 1) & mask;
    }
  }

  /// try_emplace() sugar: value reference for `key`, default-constructed
  /// when absent (may rehash, like any insert).
  Value& operator[](const Key& key) { return *try_emplace(key).first; }

  /// Erase by key; entry handles to other keys stay valid.
  bool erase(const Key& key) {
    Slot* s = find_slot(key);
    if (s == nullptr) return false;
    erase_slot(*s);
    return true;
  }

  // --- iteration -----------------------------------------------------------
  // Forward iteration over live entries; supports erase-during-iteration via
  // it = map.erase(it). Iterators (like handles) survive erases but not
  // rehashes.

  /// Slot-order iterator (not insertion order). Exposes key()/value()
  /// accessors instead of operator* because a Slot is not a std::pair and
  /// keys must stay immutable in place (moving a key would orphan its probe
  /// sequence).
  template <bool Const>
  class Iter {
    using SlotPtr = std::conditional_t<Const, const Slot*, Slot*>;

   public:
    Iter(SlotPtr slot, SlotPtr end) : slot_(slot), end_(end) { skip(); }

    [[nodiscard]] const Key& key() const { return slot_->key; }
    [[nodiscard]] std::conditional_t<Const, const Value&, Value&> value()
        const {
      return slot_->value;
    }

    Iter& operator++() {
      ++slot_;
      skip();
      return *this;
    }
    bool operator==(const Iter& o) const { return slot_ == o.slot_; }
    bool operator!=(const Iter& o) const { return slot_ != o.slot_; }

   private:
    friend class FlatMap;
    void skip() {
      while (slot_ != end_ && slot_->state != State::kFull) ++slot_;
    }
    SlotPtr slot_;
    SlotPtr end_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  [[nodiscard]] iterator begin() {
    return iterator(slots_.data(), slots_.data() + slots_.size());
  }
  [[nodiscard]] iterator end() {
    return iterator(slots_.data() + slots_.size(),
                    slots_.data() + slots_.size());
  }
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(slots_.data(), slots_.data() + slots_.size());
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(slots_.data() + slots_.size(),
                          slots_.data() + slots_.size());
  }

  /// Occupancy / probe-length digest for the engine profiler (DESIGN.md
  /// §10). `probe_sum` is the summed displacement of live entries from
  /// their home slot, so mean probe length = probe_sum / size; `max_probe`
  /// bounds the worst lookup. O(capacity) full scan — cold path only.
  struct ProbeStats {
    std::size_t size{0};
    std::size_t capacity{0};
    std::size_t tombstones{0};
    std::uint64_t probe_sum{0};
    std::uint64_t max_probe{0};
  };
  [[nodiscard]] ProbeStats probe_stats() const {
    ProbeStats st;
    st.size = size_;
    st.capacity = slots_.size();
    st.tombstones = tombs_;
    if (slots_.empty()) return st;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      if (s.state != State::kFull) continue;
      const std::uint64_t d = (i - (hash_(s.key) & mask)) & mask;
      st.probe_sum += d;
      if (d > st.max_probe) st.max_probe = d;
    }
    return st;
  }

  /// Erase the entry at `it` (tombstone, no relocation); returns the next
  /// live entry.
  iterator erase(iterator it) {
    erase_slot(*it.slot_);
    ++it.slot_;
    it.skip();
    return it;
  }

  /// Amortized housekeeping: visit up to `max_slots` slots from an internal
  /// round-robin cursor and erase live entries for which `pred(key, value)`
  /// is true. O(max_slots) per call regardless of table size — the
  /// incremental replacement for full-table expiry scans. Returns the
  /// number of entries erased.
  ///
  /// Expiry is therefore bounded-stale: an entry the predicate would erase
  /// survives until the cursor next reaches its slot (at most
  /// capacity/max_slots calls later). Callers must tolerate that staleness
  /// — e.g. the FlowletTracker keeps its idle floor well above the flowlet
  /// gap so a late sweep can never change a routing decision. The cursor
  /// resets on rehash (slots renumber), so growth restarts the cycle.
  template <typename Pred>
  std::size_t sweep(std::size_t max_slots, Pred&& pred) {
    if (slots_.empty() || size_ == 0) return 0;
    const std::size_t n = slots_.size();
    if (max_slots > n) max_slots = n;
    std::size_t erased = 0;
    for (std::size_t step = 0; step < max_slots; ++step) {
      Slot& s = slots_[sweep_cursor_];
      sweep_cursor_ = (sweep_cursor_ + 1) % n;
      if (s.state == State::kFull && pred(s.key, s.value)) {
        erase_slot(s);
        ++erased;
      }
    }
    return erased;
  }

 private:
  Slot* find_slot(const Key& key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_(key) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) return nullptr;
      if (s.state == State::kFull && s.key == key) return &s;
      i = (i + 1) & mask;
    }
  }

  void erase_slot(Slot& s) {
    s.state = State::kTomb;
    s.key = Key{};
    s.value = Value{};  // release resources held by the value now
    --size_;
    ++tombs_;
  }

  void grow() {
    // Double when genuinely full; rebuild at the same size when tombstones
    // are what pushed the load factor up (keeps erase-heavy workloads from
    // growing without bound).
    std::size_t cap = slots_.empty() ? kMinCapacity : slots_.size();
    if ((size_ + 1) * 2 > cap) cap <<= 1;
    rehash(cap);
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    size_ = 0;
    tombs_ = 0;
    sweep_cursor_ = 0;
    const std::size_t mask = new_cap - 1;
    for (Slot& s : old) {
      if (s.state != State::kFull) continue;
      std::size_t i = hash_(s.key) & mask;
      while (slots_[i].state == State::kFull) i = (i + 1) & mask;
      slots_[i].key = std::move(s.key);
      slots_[i].value = std::move(s.value);
      slots_[i].state = State::kFull;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_{0};
  std::size_t tombs_{0};
  std::size_t sweep_cursor_{0};
  Hash hash_{};
};

}  // namespace clove::util
