#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace clove::hybrid {

/// Tuning knobs for the hybrid flow/packet engine. Defaults promote flows
/// that have ramped past slow start with a substantial remainder ahead of
/// them, and demote with enough tail left that the final RTTs — where loss
/// recovery and FCT tails live — run packet-exact.
struct HybridConfig {
  bool enabled{false};
  /// Bytes a flow must move under a clean ack clock (no SACK holes, no
  /// dupacks, no recovery) before it is a promotion candidate.
  std::uint64_t ramp_bytes{64 * 1024};
  /// Minimum unsent remainder for promotion to be worth a trace round-trip.
  std::uint64_t min_remaining{128 * 1024};
  /// Demote when this much of the stream is left, so the tail — and the
  /// completion dynamics that depend on it — is packet-exact.
  std::uint64_t tail_bytes{64 * 1024};
  /// Fluid rate re-solve cadence (packet background load drifts between
  /// exact boundary events).
  sim::Time solve_interval{500 * sim::kMicrosecond};
  /// Fraction of a link's effective rate fluid flows may claim; the rest is
  /// headroom for the packet-level traffic sharing the link.
  double max_share{0.95};

  /// CLOVE_HYBRID=on|1|true enables; CLOVE_HYBRID_RAMP / _MIN_REMAINING /
  /// _TAIL (bytes) and CLOVE_HYBRID_SOLVE_US override the knobs.
  [[nodiscard]] static HybridConfig from_env();
};

struct HybridStats {
  std::uint64_t promotions{0};
  std::uint64_t demotions_tail{0};      ///< stream remainder hit tail_bytes
  std::uint64_t demotions_loss{0};      ///< loss/ECN/eviction on the sender
  std::uint64_t demotions_link{0};      ///< link down/up/capacity change
  std::uint64_t demotions_degrade{0};   ///< Clove weight-degrade on the path
  std::uint64_t trace_requests{0};
  std::uint64_t trace_retries{0};       ///< trace packet lost; re-requested
  std::uint64_t trace_rejects{0};       ///< trace arrived but was unusable
  std::uint64_t solves{0};
  std::uint64_t fluid_bytes{0};         ///< bytes advanced fluidly
};

/// What the engine needs from a hypervisor without depending on
/// clove::overlay: endpoint lookup for receiver fast-forwarding, and the
/// reassembly property that disqualifies a host's flows from promotion
/// (Presto's reorder buffer needs the real segment sequence).
class HostAdapter {
 public:
  virtual ~HostAdapter() = default;
  [[nodiscard]] virtual transport::TcpEndpoint* hybrid_find_endpoint(
      const net::FiveTuple& key) = 0;
  [[nodiscard]] virtual bool hybrid_requires_reassembly() const = 0;
  [[nodiscard]] virtual net::IpAddr hybrid_ip() const = 0;
};

/// The hybrid flow/packet engine: promotes elephant middles from the
/// packet-level simulation to a fluid flow-level model and demotes them back
/// at every flowlet-relevant event, so path decisions, ECN marks, and
/// reorder costs stay packet-exact while steady-state elephants advance in
/// O(rate-change events).
///
/// Lifecycle of one elephant:
///  1. adopt() — its sender gets this engine as a SenderHook.
///  2. on_clean_ack ramps a byte counter; when the promotion predicate
///     holds, the sender flags its next data segment to capture the exact
///     links of the current flowlet (Packet::htrace).
///  3. The destination hypervisor reports the trace at delivery
///     (on_trace); the engine suspends the sender, fast-forwards the
///     receiver, and registers a fluid flow on the traced links.
///  4. A max-min waterfill splits each link's residual capacity (line rate
///     minus measured packet load) among the fluid flows crossing it; the
///     totals are pushed back into the links as virtual load so
///     utilization/ECN/INT/CONGA signals — and the mice reacting to them —
///     keep seeing the elephants.
///  5. One timer advances all flows at exact completion-boundary crossings
///     and a periodic re-solve cadence. When a flow's remainder reaches
///     tail_bytes — or any loss, eviction, link, or Clove weight-degrade
///     event touches it — it demotes: the receiver syncs, the sender
///     resumes packet-level sending at cwnd = fluid_rate x srtt, and the
///     next real packets re-run the flowlet path decision.
///
/// Determinism: no RNG, no wall clock; flows advance in promotion order and
/// the solver's fixpoint is iteration-order independent, so runs with the
/// same seed reproduce bit-identically.
class Engine : public net::FluidObserver, public transport::SenderHook {
 public:
  Engine(sim::Simulator& sim, HybridConfig cfg);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a fabric link the fluid model may carry load on. Flows whose
  /// trace crosses an unregistered link are not promoted.
  void add_link(net::Link* link);

  /// Offer a sender for promotion tracking (called by the hypervisor when a
  /// plain TcpSender registers on a non-reassembly host).
  void adopt(transport::TcpSender* sender);

  /// A traced data segment reached `dst_host`: `inner` is its inner tuple,
  /// `trace` the links it serialized on, `encap_src_port` the overlay path
  /// port it rode (0 when not encapsulated).
  void on_trace(HostAdapter& dst_host, const net::FiveTuple& inner,
                const net::Packet::HybridTrace& trace,
                std::uint16_t encap_src_port);

  /// Clove's congestion feedback reduced the weight of `port` toward
  /// `dst_ip` at the hypervisor owning `src_ip`: the path under a promoted
  /// flow degraded, so the flow must come back to packet level and let the
  /// policy re-steer it.
  void on_port_degraded(net::IpAddr src_ip, net::IpAddr dst_ip,
                        std::uint16_t port);

  // net::FluidObserver — link down/up/capacity events demote riders.
  void on_link_changed(net::Link& link) override;

  // transport::SenderHook — the sender-side ack clock.
  void on_clean_ack(transport::TcpSender& s, std::uint64_t acked) override;
  void on_loss_event(transport::TcpSender& s) override;
  void on_sender_gone(transport::TcpSender& s) override;

  [[nodiscard]] const HybridStats& stats() const { return stats_; }
  [[nodiscard]] const HybridConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t promoted_count() const { return flows_.size(); }

  /// Test hooks: force a re-solve now / read a promoted sender's current
  /// fluid rate (0 when not promoted).
  void solve_now();
  [[nodiscard]] double flow_rate(const transport::TcpSender* s) const;

 private:
  struct Adopted {
    std::uint64_t clean_bytes{0};
    bool trace_pending{false};
    sim::Time trace_requested_at{0};
  };

  struct Flow {
    transport::TcpSender* sender;
    transport::TcpEndpoint* receiver;
    net::FiveTuple tuple;
    std::uint16_t encap_port;
    std::vector<net::Link*> links;
    double pos;        ///< fluid stream position (bytes)
    double rate{0.0};  ///< current solved fair-share rate (bytes/sec)
  };

  enum class DemoteReason { kTail, kLoss, kLink, kDegrade };

  void promote(transport::TcpSender& s, HostAdapter& dst_host,
               std::vector<net::Link*> links, std::uint16_t encap_port);
  /// Demote flows_[i]; assumes advance_all() already ran to `now`.
  void demote_at(std::size_t i, DemoteReason reason);
  void advance_all(sim::Time now);
  void solve();
  void reschedule();
  void on_tick();

  sim::Simulator& sim_;
  HybridConfig cfg_;
  sim::Timer timer_;
  std::unordered_map<net::LinkId, net::Link*> links_;
  std::unordered_map<transport::TcpSender*, Adopted> adopted_;
  std::unordered_map<net::FiveTuple, transport::TcpSender*,
                     net::FiveTupleHash>
      pending_trace_;
  std::vector<std::unique_ptr<Flow>> flows_;  ///< promotion order
  std::vector<net::Link*> fluid_links_;  ///< links with nonzero fluid load
  sim::Time last_advance_{0};
  HybridStats stats_;
};

}  // namespace clove::hybrid
