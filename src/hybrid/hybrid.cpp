#include "hybrid/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "prof/prof.hpp"
#include "telemetry/hub.hpp"

namespace clove::hybrid {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

HybridConfig HybridConfig::from_env() {
  HybridConfig cfg;
  if (const char* v = std::getenv("CLOVE_HYBRID")) {
    const std::string s(v);
    cfg.enabled = (s == "on" || s == "1" || s == "true");
  }
  cfg.ramp_bytes = env_u64("CLOVE_HYBRID_RAMP", cfg.ramp_bytes);
  cfg.min_remaining = env_u64("CLOVE_HYBRID_MIN_REMAINING", cfg.min_remaining);
  cfg.tail_bytes = env_u64("CLOVE_HYBRID_TAIL", cfg.tail_bytes);
  if (const char* v = std::getenv("CLOVE_HYBRID_SOLVE_US")) {
    const auto us = std::strtoll(v, nullptr, 10);
    if (us > 0) cfg.solve_interval = us * sim::kMicrosecond;
  }
  return cfg;
}

Engine::Engine(sim::Simulator& sim, HybridConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      timer_(sim, [this] { on_tick(); }),
      last_advance_(sim.now()) {}

Engine::~Engine() {
  // Detach from everything that could call back after we are gone. Promoted
  // senders stay suspended — the engine only dies with its simulation.
  for (auto& [sender, st] : adopted_) sender->hybrid_set_hook(nullptr);
  for (auto& [id, link] : links_) {
    link->set_fluid_observer(nullptr);
    link->set_fluid(0.0, 0);
  }
}

void Engine::add_link(net::Link* link) {
  links_[link->id()] = link;
  link->set_fluid_observer(this);
}

void Engine::adopt(transport::TcpSender* sender) {
  auto [it, inserted] = adopted_.try_emplace(sender);
  if (inserted) sender->hybrid_set_hook(this);
}

void Engine::on_clean_ack(transport::TcpSender& s, std::uint64_t acked) {
  auto it = adopted_.find(&s);
  if (it == adopted_.end()) return;
  Adopted& a = it->second;
  const sim::Time now = sim_.now();
  if (a.trace_pending) {
    // The flagged segment should have reported within ~1 RTT; after 2 the
    // trace was likely dropped on the way. Flag the next segment again.
    const sim::Time rtt = s.srtt() > 0 ? s.srtt() : sim::kMillisecond;
    if (now - a.trace_requested_at > 2 * rtt) {
      s.hybrid_request_trace();
      a.trace_requested_at = now;
      ++stats_.trace_retries;
    }
    return;
  }
  a.clean_bytes += acked;
  if (a.clean_bytes < cfg_.ramp_bytes) return;
  if (s.stream_end() - s.snd_una() < cfg_.min_remaining) return;
  if (s.srtt() == 0) return;
  // Coupled congestion control / scheduler hooks mark MPTCP subflows; their
  // aggregate window dynamics are not representable as one fluid flow.
  if (s.ca_increase || s.on_progress) return;
  s.hybrid_request_trace();
  a.trace_pending = true;
  a.trace_requested_at = now;
  pending_trace_[s.tuple()] = &s;
  ++stats_.trace_requests;
}

void Engine::on_loss_event(transport::TcpSender& s) {
  auto it = adopted_.find(&s);
  if (it != adopted_.end()) {
    it->second.clean_bytes = 0;  // the promotion ramp restarts clean
    if (it->second.trace_pending) {
      it->second.trace_pending = false;
      auto pit = pending_trace_.find(s.tuple());
      if (pit != pending_trace_.end() && pit->second == &s) {
        pending_trace_.erase(pit);
      }
    }
  }
  if (!s.hybrid_promoted()) return;
  advance_all(sim_.now());
  for (std::size_t i = flows_.size(); i-- > 0;) {
    if (flows_[i]->sender == &s) {
      demote_at(i, DemoteReason::kLoss);
      break;
    }
  }
  solve();
  reschedule();
}

void Engine::on_sender_gone(transport::TcpSender& s) {
  auto pit = pending_trace_.find(s.tuple());
  if (pit != pending_trace_.end() && pit->second == &s) {
    pending_trace_.erase(pit);
  }
  adopted_.erase(&s);
  bool removed = false;
  for (std::size_t i = flows_.size(); i-- > 0;) {
    if (flows_[i]->sender == &s) {
      flows_.erase(flows_.begin() + static_cast<std::ptrdiff_t>(i));
      removed = true;
    }
  }
  if (removed) {
    solve();
    reschedule();
  }
}

void Engine::on_trace(HostAdapter& dst_host, const net::FiveTuple& inner,
                      const net::Packet::HybridTrace& trace,
                      std::uint16_t encap_src_port) {
  CLOVE_PROF_SCOPE(prof::kHybrid);
  auto pit = pending_trace_.find(inner);
  if (pit == pending_trace_.end()) {
    ++stats_.trace_rejects;  // loss reset the ramp after the flag was set
    return;
  }
  transport::TcpSender* s = pit->second;
  pending_trace_.erase(pit);
  auto ait = adopted_.find(s);
  if (ait == adopted_.end()) {
    ++stats_.trace_rejects;
    return;
  }
  ait->second.trace_pending = false;
  ait->second.clean_bytes = 0;
  if (s->hybrid_promoted() || trace.overflowed() || trace.count == 0 ||
      dst_host.hybrid_requires_reassembly() ||
      s->stream_end() - s->snd_una() < cfg_.min_remaining) {
    ++stats_.trace_rejects;
    return;
  }
  std::vector<net::Link*> links;
  links.reserve(trace.count);
  for (int i = 0; i < trace.count; ++i) {
    auto lit = links_.find(trace.links[static_cast<std::size_t>(i)]);
    if (lit == links_.end()) {
      ++stats_.trace_rejects;  // crossed an unregistered link
      return;
    }
    links.push_back(lit->second);
  }
  auto* receiver = dst_host.hybrid_find_endpoint(inner.reversed());
  if (receiver == nullptr) {
    ++stats_.trace_rejects;
    return;
  }
  advance_all(sim_.now());
  s->hybrid_suspend();
  receiver->hybrid_sync(s->snd_una());
  auto f = std::make_unique<Flow>();
  f->sender = s;
  f->receiver = receiver;
  f->tuple = inner;
  f->encap_port = encap_src_port;
  f->links = std::move(links);
  f->pos = static_cast<double>(s->snd_una());
  flows_.push_back(std::move(f));
  ++stats_.promotions;
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTcp, sim_.now(), inner.to_string(),
                     "hybrid.promote", "",
                     static_cast<double>(flows_.size()));
  }
  solve();
  reschedule();
}

void Engine::on_port_degraded(net::IpAddr src_ip, net::IpAddr dst_ip,
                              std::uint16_t port) {
  if (flows_.empty()) return;
  advance_all(sim_.now());
  bool changed = false;
  for (std::size_t i = flows_.size(); i-- > 0;) {
    Flow& f = *flows_[i];
    if (f.tuple.src_ip == src_ip && f.tuple.dst_ip == dst_ip &&
        f.encap_port == port) {
      demote_at(i, DemoteReason::kDegrade);
      changed = true;
    }
  }
  if (changed) {
    solve();
    reschedule();
  }
}

void Engine::on_link_changed(net::Link& link) {
  if (flows_.empty()) return;
  advance_all(sim_.now());
  bool changed = false;
  for (std::size_t i = flows_.size(); i-- > 0;) {
    auto& ls = flows_[i]->links;
    if (std::find(ls.begin(), ls.end(), &link) != ls.end()) {
      demote_at(i, DemoteReason::kLink);
      changed = true;
    }
  }
  if (changed) {
    solve();
    reschedule();
  }
}

void Engine::demote_at(std::size_t i, DemoteReason reason) {
  auto f = std::move(flows_[i]);
  flows_.erase(flows_.begin() + static_cast<std::ptrdiff_t>(i));
  switch (reason) {
    case DemoteReason::kTail: ++stats_.demotions_tail; break;
    case DemoteReason::kLoss: ++stats_.demotions_loss; break;
    case DemoteReason::kLink: ++stats_.demotions_link; break;
    case DemoteReason::kDegrade: ++stats_.demotions_degrade; break;
  }
  const sim::Time now = sim_.now();
  f->receiver->hybrid_sync(f->sender->snd_una());
  if (auto ait = adopted_.find(f->sender); ait != adopted_.end()) {
    ait->second.clean_bytes = 0;
  }
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTcp, now, f->tuple.to_string(),
                     "hybrid.demote", "", static_cast<double>(reason));
  }
  // Promotion spans many RTTs — far past the flowlet gap — so the first
  // resumed packet opens a fresh flowlet and re-runs the path decision.
  f->sender->hybrid_resume(std::max(f->rate, 1.0), now);
}

void Engine::advance_all(sim::Time now) {
  const double dt =
      static_cast<double>(now - last_advance_) / static_cast<double>(sim::kSecond);
  last_advance_ = now;
  if (dt <= 0.0 || flows_.empty()) return;
  CLOVE_PROF_SCOPE(prof::kHybrid);
  for (auto& f : flows_) {
    if (f->rate <= 0.0) continue;
    const auto end = static_cast<double>(f->sender->stream_end());
    f->pos = std::min(f->pos + f->rate * dt, end);
    const std::uint64_t old_pos = f->sender->snd_una();
    if (f->pos < static_cast<double>(old_pos)) {
      f->pos = static_cast<double>(old_pos);  // never regress (rounding)
    }
    const auto new_pos = std::min(static_cast<std::uint64_t>(f->pos + 0.5),
                                  f->sender->stream_end());
    if (new_pos > old_pos) {
      stats_.fluid_bytes += new_pos - old_pos;
      f->sender->hybrid_advance(new_pos, now);
    }
  }
}

void Engine::solve() {
  CLOVE_PROF_SCOPE(prof::kHybrid);
  ++stats_.solves;
  struct LState {
    double capacity{0.0};
    double residual{0.0};
    int active{0};
    double alloc{0.0};
  };
  std::unordered_map<net::Link*, LState> ls;
  for (auto& f : flows_) {
    for (auto* l : f->links) ++ls[l].active;
  }
  for (auto& [l, st] : ls) {
    const double nominal =
        l->config().rate_bytes_per_sec * l->capacity_factor();
    // Residual capacity: what the packet-level traffic (measured by the
    // DRE, which excludes our own fluid load) leaves on the table, with a
    // floor so a mice burst cannot starve the fluid model into stalling.
    const double cap =
        nominal * cfg_.max_share - l->packet_utilization() * nominal;
    st.capacity = std::max(cap, nominal * 0.01);
    st.residual = st.capacity;
  }
  // Max-min waterfill: each round fixes every flow whose bottleneck share
  // equals the global minimum, then deducts. Shares are computed from a
  // snapshot per round, so the fixpoint is iteration-order independent.
  std::vector<Flow*> unfixed;
  unfixed.reserve(flows_.size());
  for (auto& f : flows_) {
    f->rate = 0.0;
    unfixed.push_back(f.get());
  }
  std::vector<double> share;
  while (!unfixed.empty()) {
    share.assign(unfixed.size(), std::numeric_limits<double>::infinity());
    double m = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < unfixed.size(); ++i) {
      for (auto* l : unfixed[i]->links) {
        const LState& st = ls[l];
        share[i] = std::min(share[i], st.residual / st.active);
      }
      m = std::min(m, share[i]);
    }
    std::vector<Flow*> next;
    for (std::size_t i = 0; i < unfixed.size(); ++i) {
      if (share[i] <= m * (1.0 + 1e-9)) {
        Flow* f = unfixed[i];
        f->rate = share[i];
        for (auto* l : f->links) {
          LState& st = ls[l];
          st.residual = std::max(st.residual - share[i], 0.0);
          --st.active;
          st.alloc += share[i];
        }
      } else {
        next.push_back(unfixed[i]);
      }
    }
    unfixed.swap(next);
  }
  // Push the totals into the links: fluid load slows packet serialization
  // and shows in utilization/INT/CONGA; a saturated link also carries a
  // virtual standing queue at the marking threshold, so real ECT packets
  // crossing it keep getting CE-marked and Clove's feedback stays live.
  for (auto& [l, st] : ls) {
    const bool saturated = st.alloc >= st.capacity * 0.999;
    l->set_fluid(st.alloc,
                 saturated ? l->config().ecn_threshold_bytes : 0);
  }
  for (auto* l : fluid_links_) {
    if (ls.find(l) == ls.end()) l->set_fluid(0.0, 0);
  }
  fluid_links_.clear();
  fluid_links_.reserve(ls.size());
  for (auto& [l, st] : ls) fluid_links_.push_back(l);
}

void Engine::reschedule() {
  if (flows_.empty()) {
    timer_.cancel();
    return;
  }
  const sim::Time now = sim_.now();
  sim::Time wake = now + cfg_.solve_interval;
  for (auto& f : flows_) {
    if (f->rate <= 0.0) continue;
    // The next exact event on this flow: the first job-completion boundary
    // ahead of the fluid position, or the tail-demotion point.
    double target = static_cast<double>(f->sender->stream_end()) -
                    static_cast<double>(cfg_.tail_bytes);
    const std::uint64_t cb = f->sender->next_completion_boundary();
    if (cb != 0 && static_cast<double>(cb) < target) {
      target = static_cast<double>(cb);
    }
    double delta = target - f->pos;
    if (delta < 0.0) delta = 0.0;
    const auto dt = static_cast<sim::Time>(
        std::ceil(delta / f->rate * static_cast<double>(sim::kSecond)));
    sim::Time t = now + std::max<sim::Time>(dt, 1);
    wake = std::min(wake, t);
  }
  timer_.schedule_at(wake);
}

void Engine::on_tick() {
  CLOVE_PROF_SCOPE(prof::kHybrid);
  const sim::Time now = sim_.now();
  advance_all(now);
  for (std::size_t i = flows_.size(); i-- > 0;) {
    Flow& f = *flows_[i];
    const double remaining =
        static_cast<double>(f.sender->stream_end()) - f.pos;
    if (remaining <= static_cast<double>(cfg_.tail_bytes)) {
      demote_at(i, DemoteReason::kTail);
    }
  }
  solve();
  reschedule();
}

void Engine::solve_now() {
  advance_all(sim_.now());
  solve();
  reschedule();
}

double Engine::flow_rate(const transport::TcpSender* s) const {
  for (const auto& f : flows_) {
    if (f->sender == s) return f->rate;
  }
  return 0.0;
}

}  // namespace clove::hybrid
