#include "prof/prof.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace clove::prof {

namespace detail {
thread_local Profiler* tl_prof = nullptr;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace detail

const char* scope_name(ScopeId id) {
  switch (id) {
    case kDispatch: return "dispatch";
    case kLinkTx: return "link_tx";
    case kLinkDeliver: return "link_deliver";
    case kSwitchForward: return "switch_forward";
    case kHypervisor: return "hypervisor";
    case kPolicy: return "policy";
    case kTransport: return "transport";
    case kWorkload: return "workload";
    case kDiscovery: return "discovery";
    case kTelemetry: return "telemetry";
    case kFlight: return "flight";
    case kOther: return "other";
    case kShardSync: return "shard_sync";
    case kHybrid: return "hybrid";
    default: return "?";
  }
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) p = 0.0;
  if (p >= 100.0) p = 100.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(seen + buckets_[b]) >= target) {
      const double lo = static_cast<double>(bucket_lower(b));
      const double hi = b == 0 ? 0.0 : static_cast<double>(bucket_lower(b + 1));
      const double into =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
    }
    seen += buckets_[b];
  }
  return static_cast<double>(bucket_lower(kBuckets));
}

void Profiler::note_table(const std::string& name, const TableStats& t) {
  TableAgg& a = tables_[name];
  a.sum.size += t.size;
  a.sum.capacity += t.capacity;
  a.sum.tombstones += t.tombstones;
  a.sum.probe_sum += t.probe_sum;
  if (t.max_probe > a.sum.max_probe) a.sum.max_probe = t.max_probe;
  ++a.n;
}

void Profiler::note_shard(int shard, const Profiler& o) {
  ShardStat s;
  s.shard = shard;
  s.events = o.events_;
  for (int i = 0; i < kScopeCount; ++i) s.scopes[i] = o.stats_[i];
  shards_.push_back(s);
}

void Profiler::merge_from(const Profiler& o) {
  for (int i = 0; i < kScopeCount; ++i) {
    stats_[i].count += o.stats_[i].count;
    stats_[i].self_ns += o.stats_[i].self_ns;
    stats_[i].total_ns += o.stats_[i].total_ns;
    hist_[i].merge_from(o.hist_[i]);
  }
  // FlatMap iteration order is hash-dependent, but addition per distinct key
  // makes the merged table independent of visit order.
  for (auto it = o.paths_.begin(); it != o.paths_.end(); ++it) {
    auto [mine, inserted] = paths_.try_emplace(it.key());
    mine->self_ns += it.value().self_ns;
    mine->count += it.value().count;
    (void)inserted;
  }
  for (const auto& [name, agg] : o.tables_) {
    TableAgg& a = tables_[name];
    a.sum.size += agg.sum.size;
    a.sum.capacity += agg.sum.capacity;
    a.sum.tombstones += agg.sum.tombstones;
    a.sum.probe_sum += agg.sum.probe_sum;
    if (agg.sum.max_probe > a.sum.max_probe) a.sum.max_probe = agg.sum.max_probe;
    a.n += agg.n;
  }
  for (const ShardStat& s : o.shards_) shards_.push_back(s);
  overflow_ += o.overflow_;
  events_ += o.events_;
  if (o.queue_hwm_ > queue_hwm_) queue_hwm_ = o.queue_hwm_;
  if (o.slab_capacity_ > slab_capacity_) slab_capacity_ = o.slab_capacity_;
  pool_allocated_ += o.pool_allocated_;
  pool_reused_ += o.pool_reused_;
  sims_ += o.sims_;
}

std::vector<ScopeId> Profiler::top_sinks() const {
  std::vector<ScopeId> ids;
  for (int i = 0; i < kScopeCount; ++i) {
    if (stats_[i].self_ns > 0) ids.push_back(static_cast<ScopeId>(i));
  }
  std::sort(ids.begin(), ids.end(), [this](ScopeId a, ScopeId b) {
    if (stats_[a].self_ns != stats_[b].self_ns) {
      return stats_[a].self_ns > stats_[b].self_ns;
    }
    return a < b;
  });
  return ids;
}

std::vector<std::pair<std::uint64_t, Profiler::PathCell>>
Profiler::sorted_paths() const {
  std::vector<std::pair<std::uint64_t, PathCell>> out;
  out.reserve(paths_.size());
  for (auto it = paths_.begin(); it != paths_.end(); ++it) {
    out.emplace_back(it.key(), it.value());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string Profiler::path_string(std::uint64_t path) {
  std::string s = "clove";
  while (path != 0) {
    const auto nib = static_cast<std::uint8_t>(path & 0xF);
    s += ';';
    s += scope_name(static_cast<ScopeId>(nib - 1));
    path >>= 4;
  }
  return s;
}

namespace {
const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kSummary: return "summary";
    case Mode::kFull: return "full";
  }
  return "off";
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(v), comma ? ", " : "");
  out += buf;
}

void append_kv(std::string& out, const char* key, double v,
               bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g%s", key, v, comma ? ", " : "");
  out += buf;
}
}  // namespace

std::string Profiler::to_json(int indent) const {
  const std::string pad(indent < 0 ? 0 : static_cast<std::size_t>(indent), ' ');
  const std::string nl = indent < 0 ? "" : "\n";
  std::uint64_t self_total = 0;
  for (const ScopeStat& s : stats_) self_total += s.self_ns;

  std::string out = "{" + nl;
  out += pad + "\"mode\": \"" + mode_name(mode_) + "\"," + nl;
  out += pad;
  append_kv(out, "scope_overhead_ns", scope_overhead_ns_estimate(), false);
  out += "," + nl + pad;
  append_kv(out, "stack_overflows", overflow_, false);
  out += "," + nl + pad;
  append_kv(out, "profiled_self_ns", self_total, false);
  out += "," + nl;

  out += pad + "\"engine\": {";
  append_kv(out, "events", events_);
  append_kv(out, "queue_hwm", queue_hwm_);
  append_kv(out, "event_slab_capacity", slab_capacity_);
  append_kv(out, "pool_allocated", pool_allocated_);
  append_kv(out, "pool_reused", pool_reused_);
  append_kv(out, "peak_rss_mb", peak_rss_mb());
  append_kv(out, "sims", sims_, false);
  out += "}," + nl;

  out += pad + "\"scopes\": [";
  bool first = true;
  for (int i = 0; i < kScopeCount; ++i) {
    const ScopeStat& s = stats_[i];
    if (s.count == 0) continue;
    if (!first) out += ",";
    first = false;
    out += nl + pad + pad + "{\"name\": \"";
    out += scope_name(static_cast<ScopeId>(i));
    out += "\", ";
    append_kv(out, "count", s.count);
    append_kv(out, "self_ns", s.self_ns);
    append_kv(out, "total_ns", s.total_ns);
    const double frac =
        self_total > 0
            ? static_cast<double>(s.self_ns) / static_cast<double>(self_total)
            : 0.0;
    if (mode_ == Mode::kFull) {
      append_kv(out, "self_frac", frac);
      append_kv(out, "p50_ns", hist_[i].percentile(50.0));
      append_kv(out, "p99_ns", hist_[i].percentile(99.0), false);
    } else {
      append_kv(out, "self_frac", frac, false);
    }
    out += "}";
  }
  out += nl + pad + "]," + nl;

  out += pad + "\"tables\": [";
  first = true;
  for (const auto& [name, agg] : tables_) {
    if (!first) out += ",";
    first = false;
    out += nl + pad + pad + "{\"name\": \"" + name + "\", ";
    append_kv(out, "tables", agg.n);
    append_kv(out, "size", agg.sum.size);
    append_kv(out, "capacity", agg.sum.capacity);
    append_kv(out, "tombstones", agg.sum.tombstones);
    const double avg_probe =
        agg.sum.size > 0 ? static_cast<double>(agg.sum.probe_sum) /
                               static_cast<double>(agg.sum.size)
                         : 0.0;
    append_kv(out, "avg_probe", avg_probe);
    append_kv(out, "max_probe", agg.sum.max_probe, false);
    out += "}";
  }
  out += nl + pad + "]," + nl;

  if (!shards_.empty()) {
    out += pad + "\"shards\": [";
    first = true;
    for (const ShardStat& sh : shards_) {
      if (!first) out += ",";
      first = false;
      out += nl + pad + pad + "{";
      append_kv(out, "shard", static_cast<std::uint64_t>(sh.shard));
      append_kv(out, "events", sh.events);
      out += "\"scopes\": [";
      bool sfirst = true;
      for (int i = 0; i < kScopeCount; ++i) {
        const ScopeStat& s = sh.scopes[i];
        if (s.count == 0) continue;
        if (!sfirst) out += ", ";
        sfirst = false;
        out += "{\"name\": \"";
        out += scope_name(static_cast<ScopeId>(i));
        out += "\", ";
        append_kv(out, "count", s.count);
        append_kv(out, "self_ns", s.self_ns);
        append_kv(out, "total_ns", s.total_ns, false);
        out += "}";
      }
      out += "]}";
    }
    out += nl + pad + "]," + nl;
  }

  out += pad;
  append_kv(out, "distinct_paths", paths_.size(), false);
  out += nl + "}";
  return out;
}

std::string Profiler::folded() const {
  std::vector<std::string> lines;
  for (const auto& [path, cell] : sorted_paths()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(cell.self_ns));
    lines.push_back(path_string(path) + buf);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) out += l;
  return out;
}

std::string Profiler::chrome_trace() const {
  // Lay the folded tree out as one synthetic timeline: each path becomes a
  // complete ("X") span whose duration is its inclusive time, children
  // nested inside their parent (after the parent's self time) in ascending
  // path order. ts/dur are microseconds per the trace-event spec. The
  // timeline is synthetic — spans are aggregates, not real timestamps —
  // which is exactly the flamegraph view chrome://tracing renders well.
  const auto paths = sorted_paths();
  std::map<std::uint64_t, PathCell> by_key(paths.begin(), paths.end());
  std::map<std::uint64_t, std::vector<std::uint64_t>> children;
  std::vector<std::uint64_t> roots;
  auto parent_of = [](std::uint64_t path) {
    std::uint64_t top = path, shift = 0;
    while (top >> 4 != 0) {
      top >>= 4;
      shift += 4;
    }
    return path & ~(0xFull << shift);  // highest nibble cleared
  };
  for (const auto& [path, cell] : by_key) {
    const std::uint64_t parent = parent_of(path);
    if (parent == 0 || by_key.count(parent) == 0) {
      roots.push_back(path);  // ascending: by_key iterates in key order
    } else {
      children[parent].push_back(path);
    }
  }

  // Inclusive time, deepest paths first (a nibble-longer path is a child).
  std::map<std::uint64_t, std::uint64_t> inclusive;
  auto depth_of = [](std::uint64_t p) {
    int d = 0;
    while (p != 0) {
      p >>= 4;
      ++d;
    }
    return d;
  };
  std::vector<std::uint64_t> order;
  for (const auto& [path, cell] : by_key) order.push_back(path);
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    const int da = depth_of(a), db = depth_of(b);
    if (da != db) return da > db;
    return a < b;
  });
  for (std::uint64_t path : order) {
    std::uint64_t inc = by_key[path].self_ns;
    for (std::uint64_t c : children[path]) inc += inclusive[c];
    inclusive[path] = inc;
  }

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  auto leaf_name = [](std::uint64_t path) {
    std::uint64_t last = 0;
    while (path != 0) {
      last = path & 0xF;
      path >>= 4;
    }
    return scope_name(static_cast<ScopeId>(last - 1));
  };
  // Depth ≤ kMaxPathDepth, so plain recursion is safe.
  auto emit = [&](auto&& self, std::uint64_t path,
                  std::uint64_t start_ns) -> void {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"clove\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": 0}",
                  first ? "" : ",", leaf_name(path),
                  static_cast<double>(start_ns) / 1e3,
                  static_cast<double>(inclusive[path]) / 1e3);
    out += buf;
    first = false;
    std::uint64_t off = start_ns + by_key[path].self_ns;
    for (std::uint64_t c : children[path]) {
      self(self, c, off);
      off += inclusive[c];
    }
  };
  std::uint64_t off = 0;
  for (std::uint64_t r : roots) {
    emit(emit, r, off);
    off += inclusive[r];
  }
  out += "\n]}\n";
  return out;
}

Mode mode_from_env() {
  const char* v = std::getenv("CLOVE_PROF");
  if (v == nullptr) return Mode::kOff;
  if (std::strcmp(v, "summary") == 0) return Mode::kSummary;
  if (std::strcmp(v, "full") == 0) return Mode::kFull;
  return Mode::kOff;
}

std::string out_dir_from_env(const std::string& fallback) {
  if (const char* v = std::getenv("CLOVE_PROF_OUT")) return v;
  return fallback;
}

SessionGuard::SessionGuard(Mode m) : prev_(detail::tl_prof) {
  if (m != Mode::kOff) {
    prof_ = new Profiler(m);
    detail::tl_prof = prof_;
  }
}

SessionGuard::~SessionGuard() {
  detail::tl_prof = prev_;
  delete prof_;
}

double peak_rss_mb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#ifdef __APPLE__
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
}

std::uint64_t scope_overhead_ns_estimate() {
  static const std::uint64_t est = [] {
    constexpr int kReps = 4096;
    const std::uint64_t t0 = detail::now_ns();
    std::uint64_t sink = 0;
    for (int i = 0; i < kReps; ++i) sink ^= detail::now_ns();
    const std::uint64_t t1 = detail::now_ns();
    (void)sink;
    return 2 * (t1 - t0) / kReps;  // a Scope costs two clock reads
  }();
  return est;
}

}  // namespace clove::prof
