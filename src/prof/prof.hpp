#pragma once

// clove::prof — the engine's self-profiler (DESIGN.md §10).
//
// Answers "where does simulator wall-clock go" with a fixed taxonomy of
// scoped regions over the hot loop (event dispatch, link serialization and
// propagation, switch forwarding, hypervisor/policy decisions, transport,
// telemetry/flight-recorder overhead itself), plus the engine's memory
// story: event-queue/slab high-water marks, PacketPool churn, util::FlatMap
// occupancy and probe lengths, and process peak RSS.
//
// Cost model:
//   * CLOVE_PROF=off (default): no Profiler is installed; every
//     CLOVE_PROF_SCOPE reduces to one thread-local pointer load and a
//     predictable branch — the same discipline as the flight recorder, and
//     pinned at zero by the interleaved prof_guard arm of
//     bench_fabric_forwarding.
//   * summary: two monotonic-clock reads per scope plus a handful of plain
//     adds — per-scope self/total ns and counts only.
//   * full: summary plus a log2-bucket latency histogram per scope and a
//     folded-path table (nibble-packed scope stacks -> self ns) for
//     flamegraphs and Chrome traces.
//
// Profiling never touches simulation state: results are bit-identical with
// the profiler on, off, or at any CLOVE_THREADS (pinned by test_prof.cpp).
// Aggregation across ParallelRunner tasks is deterministic: each task
// profiles into its own Profiler and the runner merges them in task-index
// order (merge is commutative per key, so the folded output is stable).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/flat_map.hpp"

namespace clove::prof {

/// CLOVE_PROF values. kOff installs nothing; see the cost model above.
enum class Mode { kOff, kSummary, kFull };

/// The scope taxonomy. Fixed and small on purpose: ids pack into 4-bit path
/// nibbles (kScopeCount must stay < 15) and index plain arrays, so the hot
/// path never hashes a string. Extend by appending — ids are stable in
/// exported artifacts.
enum ScopeId : std::uint8_t {
  kDispatch = 0,    ///< one simulator event: dequeue + callback
  kLinkTx,          ///< link serialization (tx-done processing)
  kLinkDeliver,     ///< propagation drain + hand-off to the receiver
  kSwitchForward,   ///< switch receive: route lookup + egress pick + enqueue
  kHypervisor,      ///< vswitch encap/decap/feedback pipeline
  kPolicy,          ///< load-balancer path decision
  kTransport,       ///< TCP/MPTCP segment processing
  kWorkload,        ///< job generation / completion bookkeeping
  kDiscovery,       ///< traceroute path discovery
  kTelemetry,       ///< metrics snapshot / trace + artifact export
  kFlight,          ///< flight-recorder summary, audits, export
  kOther,           ///< escape hatch (also absorbs stack overflow)
  kShardSync,       ///< sharded runner: barrier wait + coordination
  kHybrid,          ///< hybrid flow/packet engine: rate solver + fluid advance
  kScopeCount
};

static_assert(kScopeCount < 15, "scope ids must fit a 4-bit path nibble");

[[nodiscard]] const char* scope_name(ScopeId id);

/// Occupancy / probe-length digest of one util::FlatMap (see
/// FlatMap::probe_stats()). `probe_sum` is the summed displacement of live
/// entries from their home slot, so mean probe length = probe_sum / size.
struct TableStats {
  std::uint64_t size{0};
  std::uint64_t capacity{0};
  std::uint64_t tombstones{0};
  std::uint64_t probe_sum{0};
  std::uint64_t max_probe{0};
};

/// Fixed 64-bucket log2 latency histogram: bucket b holds durations with
/// bit_width(ns) == b, i.e. [2^(b-1), 2^b). Bucket 0 is ns == 0. Cheap to
/// observe (one bit_width + add), trivially mergeable, deterministic.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t ns) {
    ++buckets_[bucket_index(ns)];
    ++count_;
    sum_ += ns;
  }
  [[nodiscard]] static int bucket_index(std::uint64_t ns) {
    int b = 0;
    while (ns != 0) {
      ns >>= 1;
      ++b;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Lower edge of bucket b (0 for the zero bucket).
  [[nodiscard]] static std::uint64_t bucket_lower(int b) {
    return b <= 0 ? 0 : (1ull << (b - 1));
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t bucket(int b) const { return buckets_[b]; }
  /// p in [0,100]; linear interpolation inside the winning bucket.
  [[nodiscard]] double percentile(double p) const;

  void merge_from(const LatencyHistogram& o) {
    for (int b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
  }

 private:
  std::uint64_t buckets_[kBuckets]{};
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
};

/// Per-scope aggregate. `self_ns` excludes child scopes; `total_ns` is
/// inclusive and counted only at the outermost frame of a recursive chain,
/// so per-scope fractions never exceed the profiled wall clock.
struct ScopeStat {
  std::uint64_t count{0};
  std::uint64_t self_ns{0};
  std::uint64_t total_ns{0};
};

/// One profiling domain: a scope stack plus aggregates. Not thread-safe —
/// exactly one Profiler is installed per thread (InstallGuard), mirroring
/// telemetry::Scope. Merge across tasks/threads happens after the fact via
/// merge_from().
class Profiler {
 public:
  static constexpr int kMaxDepth = 64;
  static constexpr int kMaxPathDepth = 15;  ///< nibbles in a packed path key

  explicit Profiler(Mode mode = Mode::kSummary) : mode_(mode) {}
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] Mode mode() const { return mode_; }

  // --- hot path (called by prof::Scope) ----------------------------------
  /// Returns false when the stack is full; the caller then skips on_exit.
  bool on_enter(ScopeId id) {
    if (depth_ >= kMaxDepth) {
      ++overflow_;
      return false;
    }
    Frame& f = stack_[depth_];
    f.id = id;
    f.child_ns = 0;
    f.path = depth_ < kMaxPathDepth
                 ? (depth_ == 0 ? 0 : stack_[depth_ - 1].path) |
                       (static_cast<std::uint64_t>(id) + 1)
                           << (4 * depth_)
                 : stack_[depth_ - 1].path;
    ++depth_;
    ++recursion_[id];
    return true;
  }

  void on_exit(std::uint64_t elapsed_ns) {
    Frame& f = stack_[--depth_];
    const std::uint64_t self =
        elapsed_ns > f.child_ns ? elapsed_ns - f.child_ns : 0;
    ScopeStat& s = stats_[f.id];
    ++s.count;
    s.self_ns += self;
    if (--recursion_[f.id] == 0) s.total_ns += elapsed_ns;
    if (depth_ > 0) stack_[depth_ - 1].child_ns += elapsed_ns;
    if (mode_ == Mode::kFull) {
      hist_[f.id].observe(elapsed_ns);
      auto [cell, inserted] = paths_.try_emplace(f.path);
      cell->self_ns += self;
      ++cell->count;
      (void)inserted;
    }
  }

  /// Record a pre-measured span outside the RAII scope machinery. The
  /// sharded runner times barrier waits with raw clock reads (a prof::Scope
  /// around a spin loop would distort the folded paths) and deposits them
  /// here under kShardSync.
  void add_span(ScopeId id, std::uint64_t ns) {
    ScopeStat& s = stats_[id];
    ++s.count;
    s.self_ns += ns;
    s.total_ns += ns;
    if (mode_ == Mode::kFull) hist_[id].observe(ns);
  }

  // --- engine gauges (cold path) ------------------------------------------
  /// Fold in one simulation's event-queue story: live-event high-water mark
  /// and slab capacity (max-merged), events dispatched (summed).
  void note_simulator(std::uint64_t events, std::uint64_t queue_hwm,
                      std::uint64_t slab_capacity) {
    events_ += events;
    if (queue_hwm > queue_hwm_) queue_hwm_ = queue_hwm;
    if (slab_capacity > slab_capacity_) slab_capacity_ = slab_capacity;
    ++sims_;
  }
  /// Fold in one PacketPool's churn counters (summed).
  void note_pool(std::uint64_t allocated, std::uint64_t reused) {
    pool_allocated_ += allocated;
    pool_reused_ += reused;
  }
  /// Fold in one named FlatMap digest. Same-named tables aggregate (sizes
  /// and probe sums add, max probe maxes) so a fleet of per-switch flowlet
  /// tables reads as one row.
  void note_table(const std::string& name, const TableStats& t);

  /// Keep a per-shard copy of one shard profiler's scope aggregates before
  /// it is merge_from()'d into the session total. Exported as the "shards"
  /// array of the self-profile so prof_summarize.py can show where each
  /// shard's wall-clock went (and how much of it was shard_sync wait).
  void note_shard(int shard, const Profiler& o);

  // --- aggregation --------------------------------------------------------
  /// Fold another profiler's aggregates into this one. Commutative and
  /// associative per key, so any merge order yields identical exports; the
  /// parallel runner still merges in task-index order for good measure.
  void merge_from(const Profiler& o);

  // --- accessors / export -------------------------------------------------
  [[nodiscard]] const ScopeStat& stat(ScopeId id) const { return stats_[id]; }
  [[nodiscard]] const LatencyHistogram& histogram(ScopeId id) const {
    return hist_[id];
  }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t queue_hwm() const { return queue_hwm_; }
  [[nodiscard]] std::uint64_t slab_capacity() const { return slab_capacity_; }
  [[nodiscard]] int depth() const { return depth_; }

  /// Scope ids ordered by descending self time (ties by id), zero-self
  /// scopes excluded — the "top-N time sinks" view.
  [[nodiscard]] std::vector<ScopeId> top_sinks() const;

  /// The self-profile section embedded in JSON run artifacts. Serialized
  /// here (not via telemetry::Json) so prof stays a leaf library.
  [[nodiscard]] std::string to_json(int indent = 2) const;

  /// Folded flamegraph lines: "clove;dispatch;switch_forward 1234\n",
  /// sorted, value = self ns. Empty unless mode is kFull.
  [[nodiscard]] std::string folded() const;

  /// Chrome trace-event JSON (chrome://tracing / Perfetto): the folded tree
  /// laid out as one synthetic timeline of complete ("X") events, children
  /// nested inside parents, microsecond units. Empty unless mode is kFull.
  [[nodiscard]] std::string chrome_trace() const;

 private:
  struct Frame {
    ScopeId id{kOther};
    std::uint64_t child_ns{0};
    std::uint64_t path{0};
  };
  struct PathCell {
    std::uint64_t self_ns{0};
    std::uint64_t count{0};
  };
  struct TableAgg {
    TableStats sum;       ///< sizes/capacities/tombstones/probe_sum added
    std::uint64_t n{0};   ///< tables folded in
  };
  struct ShardStat {
    int shard{0};
    std::uint64_t events{0};
    ScopeStat scopes[kScopeCount]{};
  };

  /// Sorted (path, cell) pairs — the deterministic view of paths_.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, PathCell>> sorted_paths()
      const;
  static std::string path_string(std::uint64_t path);

  Mode mode_;
  Frame stack_[kMaxDepth];
  int depth_{0};
  std::uint32_t recursion_[kScopeCount]{};
  ScopeStat stats_[kScopeCount]{};
  LatencyHistogram hist_[kScopeCount]{};
  util::FlatMap<std::uint64_t, PathCell> paths_;
  std::map<std::string, TableAgg> tables_;  ///< ordered for stable export
  std::vector<ShardStat> shards_;           ///< per-shard copies (shard order)
  std::uint64_t overflow_{0};
  std::uint64_t events_{0};
  std::uint64_t queue_hwm_{0};
  std::uint64_t slab_capacity_{0};
  std::uint64_t pool_allocated_{0};
  std::uint64_t pool_reused_{0};
  std::uint64_t sims_{0};
};

namespace detail {
/// The profiler scopes record into on this thread; null when CLOVE_PROF=off
/// (the common case) — the entire disabled cost is this one TLS load.
extern thread_local Profiler* tl_prof;
[[nodiscard]] std::uint64_t now_ns();
}  // namespace detail

/// The thread's installed profiler, or null. Hot-path guard.
[[nodiscard]] inline Profiler* active() { return detail::tl_prof; }

/// RAII scope: ~40 ns (two clock reads) when a profiler is installed, one
/// TLS load + branch when not.
class Scope {
 public:
  explicit Scope(ScopeId id) : p_(detail::tl_prof) {
    if (p_ != nullptr) {
      if (!p_->on_enter(id)) {
        p_ = nullptr;  // stack full: make the pair a no-op
        return;
      }
      t0_ = detail::now_ns();
    }
  }
  ~Scope() {
    if (p_ != nullptr) p_->on_exit(detail::now_ns() - t0_);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* p_;
  std::uint64_t t0_{0};
};

#define CLOVE_PROF_CONCAT2(a, b) a##b
#define CLOVE_PROF_CONCAT(a, b) CLOVE_PROF_CONCAT2(a, b)
/// Attribute the rest of the enclosing block to scope `id`.
#define CLOVE_PROF_SCOPE(id) \
  ::clove::prof::Scope CLOVE_PROF_CONCAT(clove_prof_scope_, __LINE__)(id)

/// Swap the installed profiler (or uninstall with null) for a block. Used by
/// the parallel runner to give each task its own Profiler, and by benches to
/// exclude measurement rounds from attribution.
class InstallGuard {
 public:
  explicit InstallGuard(Profiler* p) : prev_(detail::tl_prof) {
    detail::tl_prof = p;
  }
  ~InstallGuard() { detail::tl_prof = prev_; }
  InstallGuard(const InstallGuard&) = delete;
  InstallGuard& operator=(const InstallGuard&) = delete;

 private:
  Profiler* prev_;
};

/// CLOVE_PROF=off|summary|full (default off; unknown values read as off).
[[nodiscard]] Mode mode_from_env();
/// CLOVE_PROF_OUT if set, else `fallback` (normally the CLOVE_JSON_OUT dir).
[[nodiscard]] std::string out_dir_from_env(const std::string& fallback);

/// Owns a Profiler configured from CLOVE_PROF (or an explicit mode) and
/// installs it on the constructing thread for its lifetime. Declaring one
/// near the top of main() is all a binary needs to become profilable.
class SessionGuard {
 public:
  SessionGuard() : SessionGuard(mode_from_env()) {}
  explicit SessionGuard(Mode m);
  ~SessionGuard();
  SessionGuard(const SessionGuard&) = delete;
  SessionGuard& operator=(const SessionGuard&) = delete;

  /// Null when the mode is kOff.
  [[nodiscard]] Profiler* profiler() { return prof_; }

 private:
  Profiler* prof_{nullptr};
  Profiler* prev_{nullptr};
};

/// Process peak resident set size in MB (getrusage; 0.0 if unavailable).
/// Monotonic over the process lifetime — sample after the phase you want to
/// bound.
[[nodiscard]] double peak_rss_mb();

/// Rough cost of one Scope (two now_ns() calls), measured once at first use.
/// Exported in the self-profile so readers can subtract instrumentation skew.
[[nodiscard]] std::uint64_t scope_overhead_ns_estimate();

}  // namespace clove::prof
