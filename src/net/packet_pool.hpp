#pragma once

#include <cstdint>
#include <new>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace clove::net {

/// Per-Simulator packet freelist. The datapath allocates (and frees) one
/// Packet per simulated transmission; at steady state the flight-size worth
/// of packets cycles through this pool with zero heap traffic — acquire()
/// pops the freelist and the PacketPtr deleter pushes it back.
///
/// Packets are individually `new`ed (never subdivided from slabs), so a
/// packet that leaves the pool economy — released raw and rewrapped with a
/// default-constructed deleter, as some tests do — is still safely
/// `delete`able; it simply stops being recycled.
///
/// Like the Simulator that owns it, a pool is single-threaded; parallel
/// sweeps give every Simulator its own pool (see Simulator::extension()).
class PacketPool {
 public:
  PacketPool() = default;
  ~PacketPool() {
    for (Packet* p : free_) delete p;
  }
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// A reset packet with a fresh per-pool uid. Reuses a freed packet when
  /// one is available; allocates otherwise.
  [[nodiscard]] PacketPtr acquire() {
    Packet* p;
    if (free_.empty()) {
      p = new Packet;
      ++allocated_;
    } else {
      p = free_.back();
      free_.pop_back();
      p->~Packet();
      ::new (static_cast<void*>(p)) Packet;  // one in-place write, no temporary
      ++reused_;
    }
    p->uid = ++next_uid_;
    return PacketPtr(p, PacketDeleter{this});
  }

  void release(Packet* p) noexcept {
    try {
      free_.push_back(p);
    } catch (...) {
      delete p;  // freelist growth failed; fall back to the heap path
    }
  }

  /// Packets created with `new` over the pool's lifetime (the concurrency
  /// high-watermark, in steady state).
  [[nodiscard]] std::uint64_t allocated() const { return allocated_; }
  /// Acquisitions served from the freelist instead of the heap.
  [[nodiscard]] std::uint64_t reused() const { return reused_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

  /// Start uid numbering from `base` (next acquire returns base + 1). Sharded
  /// runs give each shard's pool a disjoint uid range so journeys stay unique
  /// when packets cross shard boundaries with their uid preserved.
  void set_uid_base(std::uint64_t base) { next_uid_ = base; }

  /// The pool attached to `sim` (created on first use). Rides the
  /// Simulator's extension slot so the sim layer stays net-agnostic while
  /// pool lifetime still tracks the simulation exactly.
  static PacketPool& of(sim::Simulator& sim) {
    if (sim.extension() == nullptr) {
      sim.set_extension(new PacketPool,
                        [](void* p) { delete static_cast<PacketPool*>(p); });
    }
    return *static_cast<PacketPool*>(sim.extension());
  }

 private:
  std::vector<Packet*> free_;
  std::uint64_t next_uid_{0};
  std::uint64_t allocated_{0};
  std::uint64_t reused_{0};
};

}  // namespace clove::net
