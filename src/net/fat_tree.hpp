#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/topology.hpp"

namespace clove::net {

/// Parameters of a 3-tier k-ary fat-tree (Al-Fares et al.): k pods, each
/// with k/2 edge and k/2 aggregation switches; (k/2)^2 core switches; k/2
/// hosts per edge switch. Full bisection bandwidth at uniform link rate.
///
/// Clove claims to work "on any topology with ECMP-based layer-3 routing"
/// (§3.1); this builder exists to exercise that claim: path discovery must
/// find the (k/2)^2 core paths between pods, and the load-balancing
/// machinery must be topology-agnostic.
struct FatTreeConfig {
  int k{4};  ///< must be even; k=4 -> 16 hosts, k=8 -> 128 hosts
  double host_gbps{10.0};
  double fabric_gbps{10.0};  ///< classic fat-tree: uniform link speed
  sim::Time link_propagation{5 * sim::kMicrosecond};
  std::int64_t queue_pkts{256};
  std::int64_t ecn_threshold_pkts{20};
  std::int64_t mtu_bytes{1578};
  bool int_telemetry{false};
};

struct FatTree {
  FatTreeConfig cfg;
  std::vector<std::vector<Switch*>> edge_by_pod;  ///< [pod][i]
  std::vector<std::vector<Switch*>> agg_by_pod;   ///< [pod][i]
  std::vector<Switch*> core;
  std::vector<std::vector<Node*>> hosts_by_pod;   ///< [pod][i]

  [[nodiscard]] int n_pods() const { return static_cast<int>(edge_by_pod.size()); }
  [[nodiscard]] std::size_t host_count() const {
    std::size_t n = 0;
    for (const auto& p : hosts_by_pod) n += p.size();
    return n;
  }
  /// Number of distinct shortest paths between hosts in different pods.
  [[nodiscard]] int cross_pod_paths() const {
    const int half_k = cfg.k / 2;
    return half_k * half_k;
  }
};

/// Build a k-ary fat-tree into `topo`; `make_host(topo, name, pod)` creates
/// each endpoint. Routes are computed before returning.
FatTree build_fat_tree(
    Topology& topo, const FatTreeConfig& cfg,
    const std::function<Node*(Topology&, const std::string&, int)>& make_host);

}  // namespace clove::net
