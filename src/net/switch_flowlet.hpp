#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/time.hpp"

namespace clove::net {

/// In-switch flowlet table, as used by CONGA and LetFlow: maps a flow key to
/// the path decision of its current flowlet. A packet arriving more than
/// `gap` after the flow's previous packet starts a new flowlet.
class SwitchFlowletTable {
 public:
  explicit SwitchFlowletTable(sim::Time gap = 200 * sim::kMicrosecond)
      : gap_(gap) {}

  struct Decision {
    bool new_flowlet;
    std::uint32_t value;  ///< the stored path choice (tag / port)
  };

  /// Look up the flow; `value` is only meaningful when !new_flowlet.
  [[nodiscard]] Decision touch(std::uint64_t key, sim::Time now) {
    auto [it, inserted] = table_.try_emplace(key, Entry{now, 0});
    if (inserted) return {true, 0};
    const bool fresh = now - it->second.last_seen <= gap_;
    it->second.last_seen = now;
    return {!fresh, it->second.value};
  }

  void set_value(std::uint64_t key, std::uint32_t value) {
    table_[key].value = value;
  }

  void set_gap(sim::Time gap) { gap_ = gap; }
  [[nodiscard]] sim::Time gap() const { return gap_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Drop entries idle for more than `idle` (housekeeping for long runs).
  void expire(sim::Time now, sim::Time idle) {
    for (auto it = table_.begin(); it != table_.end();) {
      it = (now - it->second.last_seen > idle) ? table_.erase(it) : ++it;
    }
  }

 private:
  struct Entry {
    sim::Time last_seen;
    std::uint32_t value;
  };
  std::unordered_map<std::uint64_t, Entry> table_;
  sim::Time gap_;
};

}  // namespace clove::net
