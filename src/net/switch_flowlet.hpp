#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/flat_map.hpp"

namespace clove::net {

/// In-switch flowlet table, as used by CONGA and LetFlow: maps a flow key to
/// the path decision of its current flowlet. A packet arriving more than
/// `gap` after the flow's previous packet starts a new flowlet.
///
/// Backed by util::FlatMap so the per-packet touch is one linear probe with
/// no heap allocation in steady state. Expiry is amortized: every touch also
/// sweeps a few slots of the table and drops entries idle longer than the
/// idle timeout, so the table stops growing without ever paying an O(table)
/// scan on the datapath. The timeout is >= the flowlet gap, which makes
/// expiry decision-neutral — an entry old enough to expire would have
/// started a new flowlet on its next touch anyway.
class SwitchFlowletTable {
 public:
  /// Slots examined per touch by the incremental expiry sweep.
  static constexpr std::size_t kSweepSlots = 8;

  explicit SwitchFlowletTable(sim::Time gap = 200 * sim::kMicrosecond)
      : gap_(gap) {}

  struct Entry {
    sim::Time last_seen{0};
    std::uint32_t value{0};
  };

  struct Decision {
    bool new_flowlet;
    std::uint32_t value;  ///< the stored path choice (tag / port)
    Entry* entry;         ///< handle valid until the next touch()
    /// Store the decision for this flowlet without a second lookup.
    void set_value(std::uint32_t v) const { entry->value = v; }
  };

  /// Look up the flow; `value` is only meaningful when !new_flowlet.
  [[nodiscard]] Decision touch(std::uint64_t key, sim::Time now) {
    // Sweep before locating the entry: erase never relocates slots, so the
    // handle returned below stays valid, but sweeping first keeps even the
    // ordering trivially safe.
    const sim::Time idle = idle_timeout();
    table_.sweep(kSweepSlots, [&](std::uint64_t, const Entry& e) {
      return now - e.last_seen > idle;
    });
    auto [e, inserted] = table_.try_emplace(key);
    if (inserted) {
      e->last_seen = now;
      return {true, 0, e};
    }
    const bool fresh = now - e->last_seen <= gap_;
    e->last_seen = now;
    return {!fresh, e->value, e};
  }

  /// Keyed store (second lookup); prefer Decision::set_value on the handle.
  void set_value(std::uint64_t key, std::uint32_t value) {
    table_[key].value = value;
  }

  void set_gap(sim::Time gap) { gap_ = gap; }
  [[nodiscard]] sim::Time gap() const { return gap_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Idle age beyond which the incremental sweep drops an entry. Always at
  /// least the flowlet gap (see class comment); scaled well above it so
  /// normal inter-flowlet silence does not thrash the table.
  [[nodiscard]] sim::Time idle_timeout() const {
    return idle_override_ > 0 ? idle_override_ : 100 * gap_;
  }
  void set_idle_timeout(sim::Time idle) { idle_override_ = idle; }

  /// Drop entries idle for more than `idle` (full scan; kept for tests and
  /// explicit housekeeping — the datapath relies on the touch-time sweep).
  void expire(sim::Time now, sim::Time idle) {
    for (auto it = table_.begin(); it != table_.end();) {
      it = (now - it.value().last_seen > idle) ? table_.erase(it) : ++it;
    }
  }

 private:
  util::FlatMap<std::uint64_t, Entry> table_;
  sim::Time gap_;
  sim::Time idle_override_{0};  ///< 0 = derive from gap
};

}  // namespace clove::net
