#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/switch.hpp"
#include "net/switch_flowlet.hpp"
#include "sim/random.hpp"
#include "util/flat_map.hpp"

namespace clove::net {

/// Configuration for the CONGA leaf behaviour.
struct CongaConfig {
  sim::Time flowlet_gap{200 * sim::kMicrosecond};
  sim::Time table_aging{10 * sim::kMillisecond};  ///< stale metrics decay to 0
  int quantization_bits{3};
};

/// A CONGA-style leaf switch (Alizadeh et al., SIGCOMM 2014), as simulated
/// by the paper's §6 NS2 comparison. The leaf:
///  * splits cross-leaf traffic into flowlets,
///  * routes each new flowlet on the uplink minimizing
///    max(local uplink DRE, remote congestion-to-leaf metric),
///  * stamps packets with (src_leaf, lb_tag, ce); fabric links max their
///    quantized DRE utilization into `ce` as the packet traverses them,
///  * records arriving `ce` per (src_leaf, lb_tag) and piggybacks it back as
///    (fb_tag, fb_ce) on reverse traffic, populating the sender's
///    congestion-to-leaf table.
///
/// Spine switches need no changes beyond links that update `ce`
/// (LinkConfig::conga_metric), which mirrors CONGA's fabric requirement.
class CongaLeafSwitch : public Switch {
 public:
  CongaLeafSwitch(sim::Simulator& sim, NodeId id, std::string name,
                  const CongaConfig& cfg = {})
      : Switch(sim, id, std::move(name)),
        cfg_(cfg),
        flowlets_(cfg.flowlet_gap),
        rng_(id * 7919u + 17u) {}

  /// Wire up fabric knowledge once the topology exists: this leaf's index,
  /// its uplink port numbers (tag i <-> uplink_ports[i]) and the leaf index
  /// of every host IP (-1 never occurs; local hosts carry this leaf's index).
  void configure_fabric(int leaf_index, std::vector<int> uplink_ports,
                        std::unordered_map<IpAddr, int> host_leaf);

  [[nodiscard]] int leaf_index() const { return leaf_index_; }
  [[nodiscard]] std::uint8_t congestion_to(int dst_leaf, int tag) const;
  [[nodiscard]] std::uint8_t congestion_from(int src_leaf, int tag) const;

 protected:
  int select_port(const Packet& pkt, const PortSet& ports,
                  int in_port) override;
  void on_forward(Packet& pkt, int egress_port, int in_port) override;

 private:
  struct Metric {
    std::uint8_t ce{0};
    sim::Time updated{-1};
  };
  using MetricTable = util::FlatMap<std::uint64_t, Metric>;
  static std::uint64_t table_key(int leaf, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(leaf)) << 8) |
           static_cast<std::uint8_t>(tag);
  }
  [[nodiscard]] std::uint8_t read_metric(const MetricTable& t,
                                         std::uint64_t key) const;

  [[nodiscard]] bool is_uplink(int port) const {
    for (int p : uplink_ports_) {
      if (p == port) return true;
    }
    return false;
  }
  /// Host IPs are dense node ids, so the per-packet leaf lookup is a flat
  /// array index instead of a hash probe.
  [[nodiscard]] int leaf_of(IpAddr ip) const {
    return ip < host_leaf_.size() ? host_leaf_[ip] : -1;
  }

  int pick_uplink_tag(int dst_leaf, const PortSet& live_ports);

  CongaConfig cfg_;
  int leaf_index_{-1};
  std::vector<int> uplink_ports_;
  std::vector<int> host_leaf_;  ///< leaf index by host IP; -1 = not a host

  SwitchFlowletTable flowlets_;
  MetricTable to_leaf_;    ///< congestion-to-leaf (from feedback)
  MetricTable from_leaf_;  ///< congestion-from-leaf (measured on arrivals)
  std::vector<std::uint8_t> fb_rr_;  ///< feedback round-robin, by dst leaf
  sim::Rng rng_;
};

}  // namespace clove::net
