#pragma once

#include "net/switch.hpp"
#include "net/switch_flowlet.hpp"
#include "sim/random.hpp"
#include "telemetry/hub.hpp"

namespace clove::net {

/// A LetFlow-style switch (Vanini et al., NSDI 2017; paper §8): plain
/// flowlet switching in hardware with a uniformly random next-hop per new
/// flowlet. Congestion-unaware, but flowlet sizes adapt implicitly. Used by
/// the A1 ablation to contrast in-switch flowlets with Clove's edge flowlets.
class LetFlowSwitch : public Switch {
 public:
  LetFlowSwitch(sim::Simulator& sim, NodeId id, std::string name,
                sim::Time flowlet_gap = 200 * sim::kMicrosecond)
      : Switch(sim, id, std::move(name)),
        flowlets_(flowlet_gap),
        rng_(id * 6151u + 3u) {}

  void set_flowlet_gap(sim::Time gap) { flowlets_.set_gap(gap); }

 protected:
  int select_port(const Packet& pkt, const PortSet& ports,
                  int in_port) override {
    if (ports.size() == 1) return ports[0];
    (void)in_port;
    const std::uint64_t key = salted_hash(pkt.wire_hash(), 0x1e7f);
    auto dec = flowlets_.touch(key, sim_.now());
    if (!dec.new_flowlet) {
      const int p = static_cast<int>(dec.value);
      for (int q : ports) {
        if (q == p) return p;
      }
    }
    const int chosen = ports[rng_.uniform_int(ports.size())];
    dec.set_value(static_cast<std::uint32_t>(chosen));
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kPath, sim_.now(), name(),
                       "letflow.flowlet_path", {}, static_cast<double>(chosen),
                       key);
    }
    return chosen;
  }

 private:
  SwitchFlowletTable flowlets_;
  sim::Rng rng_;
};

}  // namespace clove::net
