#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/dre.hpp"
#include "telemetry/metrics.hpp"
#include "util/ring_deque.hpp"

namespace clove::net {

class Node;
class ShardChannel;

using LinkId = std::uint32_t;

/// Configuration of one unidirectional link (and its egress queue).
struct LinkConfig {
  double rate_bytes_per_sec{sim::gbps_to_bytes_per_sec(10.0)};
  sim::Time propagation{5 * sim::kMicrosecond};
  std::int64_t queue_capacity_bytes{128 * 1578};  ///< drop-tail limit
  std::int64_t ecn_threshold_bytes{20 * 1578};    ///< mark-on-enqueue (K)
  bool ecn_marking{true};       ///< whether this egress marks ECT packets
  bool int_telemetry{false};    ///< push utilization onto packets' INT stacks
  bool conga_metric{false};     ///< fold utilization into CONGA ce fields
  double dre_alpha{0.1};
  sim::Time dre_interval{50 * sim::kMicrosecond};
};

/// Per-link counters, exposed for tests and experiment reports.
struct LinkStats {
  std::uint64_t tx_packets{0};
  std::uint64_t tx_bytes{0};
  std::uint64_t drops_overflow{0};
  std::uint64_t drops_down{0};
  std::uint64_t drops_fault{0};  ///< injected probabilistic silent drops
  std::uint64_t ecn_marks{0};
  std::int64_t max_queue_bytes{0};
};

/// Observer for link state changes that alter effective capacity (down/up,
/// capacity-factor faults). The hybrid flow/packet engine registers one per
/// link it carries fluid load on, so promoted elephants can be demoted back
/// to packet level the moment a path-health event touches their path.
class FluidObserver {
 public:
  virtual ~FluidObserver() = default;
  virtual void on_link_changed(class Link& link) = 0;
};

/// A unidirectional point-to-point link with a drop-tail, ECN-marking egress
/// queue, a transmitter that serializes one packet at a time, and a fixed
/// propagation pipe. Utilization is tracked with a DRE for INT/CONGA.
class Link {
 public:
  Link(sim::Simulator& sim, LinkId id, std::string name, Node* dst,
       int dst_in_port, const LinkConfig& cfg);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offer a packet to the egress queue; may drop (overflow / link down).
  void enqueue(PacketPtr pkt);

  /// Take the link down: queued and in-flight packets are lost, and no new
  /// traffic is accepted until up() is called.
  void down();
  void up();
  [[nodiscard]] bool is_down() const { return down_; }

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Node* dst() const { return dst_; }
  [[nodiscard]] const LinkConfig& config() const { return cfg_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t queue_bytes() const { return queue_bytes_; }

  /// Utilization as congestion-aware schemes observe it: the DRE's measured
  /// packet utilization plus the analytic share of any fluid (flow-level)
  /// load the hybrid engine has placed on this link. With no fluid load this
  /// is exactly the DRE value — bit-identical to the pre-hybrid behavior.
  [[nodiscard]] double utilization() const {
    double u = dre_.utilization(sim_.now());
    if (fluid_rate_ > 0.0) {
      u += fluid_rate_ / (cfg_.rate_bytes_per_sec * capacity_factor_);
      if (u > 1.0) u = 1.0;
    }
    return u;
  }
  [[nodiscard]] std::uint8_t utilization_quantized(int bits = 3) const {
    if (fluid_rate_ > 0.0) {
      double u = utilization();
      auto max_q = static_cast<std::uint8_t>((1u << bits) - 1u);
      auto q = static_cast<std::uint8_t>(u * max_q + 0.5);
      return q > max_q ? max_q : q;
    }
    return dre_.quantized(sim_.now(), bits);
  }

  /// The DRE's packet-only utilization, excluding fluid load. The hybrid
  /// rate solver uses this to size the residual capacity left for fluid
  /// flows without double-counting its own contribution.
  [[nodiscard]] double packet_utilization() const {
    return dre_.utilization(sim_.now());
  }

  /// Whether enqueueing `p` right now would ECN-mark it (the exact marking
  /// condition enqueue() applies). Used by the flight recorder's hop records
  /// at the switch, where the egress decision is made.
  [[nodiscard]] bool would_mark(const Packet& p) const {
    if (!cfg_.ecn_marking ||
        queue_bytes_ + fluid_queue_bytes_ < cfg_.ecn_threshold_bytes) {
      return false;
    }
    return p.encap.present ? p.encap.ecn.ect : (!p.encap.present && p.tcp.ect);
  }

  /// Enable/disable ECN marking post-construction (the topology builder
  /// turns marking off on host NIC egress queues: those are hypervisor TX
  /// queues, not switch ports, and real deployments do not mark them).
  void set_ecn_marking(bool on) { cfg_.ecn_marking = on; }

  /// Idealized time to serialize `bytes` on this link at its current
  /// (possibly degraded) effective rate (used by tests).
  [[nodiscard]] sim::Time serialization_delay(std::int64_t bytes) const {
    return sim::transmission_delay(bytes,
                                   cfg_.rate_bytes_per_sec * capacity_factor_);
  }

  // --- fault-injection hooks (clove::fault) -------------------------------

  /// Scale the effective transmit rate to `factor` x nominal (partial
  /// capacity degradation — a flapping optic, a mis-negotiated lane). The
  /// DRE is re-based on the degraded rate so utilization-derived signals
  /// (INT, CONGA) see the link as it really is. Restores cleanly at 1.0.
  void set_capacity_factor(double factor);
  [[nodiscard]] double capacity_factor() const { return capacity_factor_; }

  /// Drop each offered packet with probability `p` — silently: no ECN mark,
  /// no down-event, exactly the gray failure routing cannot see. `seed`
  /// makes the drop sequence reproducible per link. p = 0 disables.
  void set_fault_drop(double p, std::uint64_t seed);
  [[nodiscard]] double fault_drop_prob() const { return fault_drop_prob_; }

  // --- hybrid flow/packet engine (clove::hybrid) ---------------------------

  /// Place `rate_bytes_per_sec` of fluid (flow-level) load on this link,
  /// with `vqueue_bytes` of virtual standing queue (nonzero when the fluid
  /// load saturates the link, so real packets sharing it keep seeing ECN
  /// marks). Fluid load slows packet serialization proportionally and is
  /// folded into utilization()/INT/CONGA signals. Zero/zero restores the
  /// exact pre-hybrid datapath.
  void set_fluid(double rate_bytes_per_sec, std::int64_t vqueue_bytes) {
    if (fluid_rate_ == rate_bytes_per_sec &&
        fluid_queue_bytes_ == vqueue_bytes) {
      return;
    }
    fluid_rate_ = rate_bytes_per_sec;
    fluid_queue_bytes_ = vqueue_bytes;
    memo_bytes_ = -1;  // serialization delay depends on the residual rate
  }
  [[nodiscard]] double fluid_rate() const { return fluid_rate_; }
  [[nodiscard]] std::int64_t fluid_queue_bytes() const {
    return fluid_queue_bytes_;
  }

  /// Register an observer notified on capacity-changing events (down, up,
  /// capacity-factor changes). Null clears it.
  void set_fluid_observer(FluidObserver* obs) { fluid_observer_ = obs; }

  // --- sharded simulation (net::ShardDomain) -------------------------------

  /// Mark this link as shard-crossing: finished transmissions are staged
  /// into `ch` instead of the local propagation pipe, and delivered on the
  /// destination shard at the next barrier (see shard.hpp). Null restores
  /// the intra-shard path. Set once at topology build time.
  void set_channel(ShardChannel* ch) { channel_ = ch; }
  [[nodiscard]] ShardChannel* channel() const { return channel_; }

  /// The simulator this link's source-side events run on (the fault layer
  /// uses it to find the owning shard).
  [[nodiscard]] sim::Simulator& simulator() const { return sim_; }

  /// Deliver a packet that crossed the shard boundary. Runs on the
  /// DESTINATION shard's thread at simulated time `now` — this link's own
  /// `sim_` belongs to the source shard and its clock is stale here, so the
  /// arrival time is passed in. Mirrors deliver_front()'s per-packet body:
  /// a link that went down while the packet was in the pipe drops it.
  void remote_deliver(PacketPtr pkt, sim::Time now);

 private:
  void start_tx();
  void on_tx_done();
  void deliver_front();

  sim::Simulator& sim_;
  LinkId id_;
  std::string name_;
  Node* dst_;
  int dst_in_port_;
  LinkConfig cfg_;

  // Ring-buffer FIFOs: a deque here would allocate/free a block every few
  // dozen packets as elements cycle through; the rings go quiet once the
  // queue-depth high-watermark is reached (see util::RingDeque).
  util::RingDeque<PacketPtr> queue_;
  std::int64_t queue_bytes_{0};
  bool busy_{false};
  PacketPtr in_flight_;            ///< packet currently being serialized
  std::int64_t memo_bytes_{-1};    ///< last serialized wire size …
  sim::Time memo_delay_{0};        ///< … and its cached serialization delay
  /// Packets in the propagation pipe, with their delivery deadlines.
  /// Deadlines are monotone (FIFO serialization + fixed propagation), so a
  /// single outstanding wake event per link suffices: deliver_front() drains
  /// every ripe packet and re-arms for the new front. This keeps the event
  /// heap at O(links) entries instead of O(packets in flight), which shrinks
  /// every heap sift in the simulation core.
  util::RingDeque<std::pair<sim::Time, PacketPtr>> propagating_;
  sim::EventId prop_wake_{};       ///< pending deliver_front wake, if any
  ShardChannel* channel_{nullptr};  ///< non-null iff this link crosses shards
  bool down_{false};
  double capacity_factor_{1.0};    ///< effective-rate scale (fault injection)
  double fault_drop_prob_{0.0};    ///< per-packet silent-drop probability
  sim::Rng fault_rng_{0};          ///< reseeded by set_fault_drop
  double fluid_rate_{0.0};         ///< flow-level load (hybrid engine)
  std::int64_t fluid_queue_bytes_{0};  ///< virtual queue from fluid load
  FluidObserver* fluid_observer_{nullptr};

  telemetry::Dre dre_;
  LinkStats stats_;

  /// Registry cells, resolved once at construction; hot-path updates are
  /// guarded by telemetry::enabled().
  struct Cells {
    telemetry::Counter* tx_packets;
    telemetry::Counter* tx_bytes;
    telemetry::Counter* drops_overflow;
    telemetry::Counter* drops_down;
    telemetry::Counter* drops_fault;
    telemetry::Counter* ecn_marks;
    telemetry::Gauge* queue_high_watermark;
  };
  Cells cells_;
};

}  // namespace clove::net
