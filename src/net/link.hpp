#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/dre.hpp"
#include "telemetry/metrics.hpp"

namespace clove::net {

class Node;

using LinkId = std::uint32_t;

/// Configuration of one unidirectional link (and its egress queue).
struct LinkConfig {
  double rate_bytes_per_sec{sim::gbps_to_bytes_per_sec(10.0)};
  sim::Time propagation{5 * sim::kMicrosecond};
  std::int64_t queue_capacity_bytes{128 * 1578};  ///< drop-tail limit
  std::int64_t ecn_threshold_bytes{20 * 1578};    ///< mark-on-enqueue (K)
  bool ecn_marking{true};       ///< whether this egress marks ECT packets
  bool int_telemetry{false};    ///< push utilization onto packets' INT stacks
  bool conga_metric{false};     ///< fold utilization into CONGA ce fields
  double dre_alpha{0.1};
  sim::Time dre_interval{50 * sim::kMicrosecond};
};

/// Per-link counters, exposed for tests and experiment reports.
struct LinkStats {
  std::uint64_t tx_packets{0};
  std::uint64_t tx_bytes{0};
  std::uint64_t drops_overflow{0};
  std::uint64_t drops_down{0};
  std::uint64_t ecn_marks{0};
  std::int64_t max_queue_bytes{0};
};

/// A unidirectional point-to-point link with a drop-tail, ECN-marking egress
/// queue, a transmitter that serializes one packet at a time, and a fixed
/// propagation pipe. Utilization is tracked with a DRE for INT/CONGA.
class Link {
 public:
  Link(sim::Simulator& sim, LinkId id, std::string name, Node* dst,
       int dst_in_port, const LinkConfig& cfg);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offer a packet to the egress queue; may drop (overflow / link down).
  void enqueue(PacketPtr pkt);

  /// Take the link down: queued and in-flight packets are lost, and no new
  /// traffic is accepted until up() is called.
  void down();
  void up();
  [[nodiscard]] bool is_down() const { return down_; }

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Node* dst() const { return dst_; }
  [[nodiscard]] const LinkConfig& config() const { return cfg_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t queue_bytes() const { return queue_bytes_; }
  [[nodiscard]] double utilization() const { return dre_.utilization(sim_.now()); }
  [[nodiscard]] std::uint8_t utilization_quantized(int bits = 3) const {
    return dre_.quantized(sim_.now(), bits);
  }

  /// Enable/disable ECN marking post-construction (the topology builder
  /// turns marking off on host NIC egress queues: those are hypervisor TX
  /// queues, not switch ports, and real deployments do not mark them).
  void set_ecn_marking(bool on) { cfg_.ecn_marking = on; }

  /// Idealized time to serialize `bytes` on this link (used by tests).
  [[nodiscard]] sim::Time serialization_delay(std::int64_t bytes) const {
    return sim::transmission_delay(bytes, cfg_.rate_bytes_per_sec);
  }

 private:
  void start_tx();
  void on_tx_done();
  void deliver_front();

  sim::Simulator& sim_;
  LinkId id_;
  std::string name_;
  Node* dst_;
  int dst_in_port_;
  LinkConfig cfg_;

  std::deque<PacketPtr> queue_;
  std::int64_t queue_bytes_{0};
  bool busy_{false};
  PacketPtr in_flight_;            ///< packet currently being serialized
  /// Packets in the propagation pipe, with their delivery deadlines. The
  /// deadline guards against stale delivery events after a down()/up() flush.
  std::deque<std::pair<sim::Time, PacketPtr>> propagating_;
  bool down_{false};

  telemetry::Dre dre_;
  LinkStats stats_;

  /// Registry cells, resolved once at construction; hot-path updates are
  /// guarded by telemetry::enabled().
  struct Cells {
    telemetry::Counter* tx_packets;
    telemetry::Counter* tx_bytes;
    telemetry::Counter* drops_overflow;
    telemetry::Counter* drops_down;
    telemetry::Counter* ecn_marks;
    telemetry::Gauge* queue_high_watermark;
  };
  Cells cells_;
};

}  // namespace clove::net
