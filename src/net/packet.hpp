#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.hpp"

namespace clove::sim {
class Simulator;
}  // namespace clove::sim

namespace clove::net {

/// Node / endpoint address. In this simulator an IP address is simply the
/// node id of the host or switch interface that owns it.
using IpAddr = std::uint32_t;
inline constexpr IpAddr kIpNone = 0xffffffffu;

/// Transport protocol numbers (only the ones the simulator distinguishes).
enum class Proto : std::uint8_t {
  kTcp = 6,
  kStt = 97,        ///< overlay encapsulation carrier (modeled on STT/TCP)
  kProbe = 253,     ///< traceroute path-discovery probe
  kProbeReply = 254 ///< TTL-expiry or destination reply to a probe
};

/// The classic 5-tuple ECMP hashes on.
struct FiveTuple {
  IpAddr src_ip{kIpNone};
  IpAddr dst_ip{kIpNone};
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  Proto proto{Proto::kTcp};

  bool operator==(const FiveTuple&) const = default;

  [[nodiscard]] FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }
  [[nodiscard]] std::string to_string() const;
};

/// Salt-free mix of the tuple fields (SplitMix64 chain). This is the
/// expensive half of ECMP hashing and depends only on the tuple, so the
/// datapath computes it once per packet (Packet::wire_hash) and every
/// switch on the path derives its decision from it with salted_hash().
[[nodiscard]] inline std::uint64_t tuple_prehash(const FiveTuple& t) {
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h = mix(h ^ (static_cast<std::uint64_t>(t.src_ip) << 32 | t.dst_ip));
  h = mix(h ^ (static_cast<std::uint64_t>(t.src_port) << 16 | t.dst_port));
  h = mix(h ^ static_cast<std::uint64_t>(t.proto));
  return h;
}

/// One SplitMix64 finalizer round over (prehash ^ salt): cheap per-switch
/// salting of a cached prehash. hash_tuple(t, s) == salted_hash(
/// tuple_prehash(t), s) by construction — switches may use either form and
/// reach the same ECMP decision.
[[nodiscard]] inline std::uint64_t salted_hash(std::uint64_t prehash,
                                               std::uint64_t salt) {
  std::uint64_t z = prehash ^ (salt * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit mix used for ECMP hashing (salted per switch) and
/// Presto flow ids. Splittable and platform-stable.
[[nodiscard]] inline std::uint64_t hash_tuple(const FiveTuple& t,
                                              std::uint64_t salt) {
  return salted_hash(tuple_prehash(t), salt);
}

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(tuple_prehash(t));
  }
};

/// TCP flag bits (only the subset the simulator models).
struct TcpFlags {
  bool syn{false};
  bool fin{false};
  bool ack{false};
  bool ece{false};  ///< ECN-Echo (receiver -> sender)
  bool cwr{false};  ///< Congestion Window Reduced (sender -> receiver)
};

/// A SACK block: received bytes in [start, end).
struct SackBlock {
  std::uint64_t start{0};
  std::uint64_t end{0};
};

/// Inner (tenant VM) TCP header. Sequence numbers are 64-bit byte offsets —
/// a simulation convenience that removes wrap-around handling without
/// changing any of the dynamics the paper depends on.
struct TcpHeader {
  // Flag bytes lead so the fields the switch datapath reads (ect/ce, for
  // ECN marking of non-encapsulated packets) sit at the struct's front.
  TcpFlags flags{};
  bool ect{false};            ///< inner ECN-capable transport
  bool ce{false};             ///< inner congestion-experienced
  std::uint8_t sack_count{0};
  std::uint64_t seq{0};       ///< first payload byte carried
  std::uint64_t ack{0};       ///< cumulative ack (next expected byte)
  std::array<SackBlock, 3> sacks{};  ///< up to 3 SACK option blocks
};

/// ECN codepoint state carried in the (outer) IP header.
struct EcnBits {
  bool ect{false};  ///< ECN-capable transport
  bool ce{false};   ///< congestion experienced
};

/// Clove metadata carried in reserved STT-context bits of reverse traffic
/// (paper §3.2/§4): which forward-path source port the feedback refers to,
/// plus either a congestion bit (Clove-ECN) or a utilization value
/// (Clove-INT) or a one-way delay (Clove-Latency extension).
struct CloveFeedback {
  bool present{false};
  std::uint16_t port{0};       ///< encapsulation source port being reported
  bool ecn_set{false};         ///< Clove-ECN: forward path saw CE
  bool has_util{false};
  double util{0.0};            ///< Clove-INT: max link utilization on path
  bool has_latency{false};
  sim::Time latency{0};        ///< Clove-Latency: one-way delay measured
};

/// CONGA VXLAN-style fields (simulation of the custom ASIC header):
/// forward direction carries (src_leaf, lb_tag, ce); feedback direction
/// carries (fb_tag, fb_ce) piggybacked on reverse traffic.
struct CongaFields {
  bool present{false};
  std::uint32_t src_leaf{0};
  std::uint8_t lb_tag{0};   ///< uplink chosen at the source leaf
  std::uint8_t ce{0};       ///< max quantized congestion along path so far
  bool fb_present{false};
  std::uint8_t fb_tag{0};
  std::uint8_t fb_ce{0};
};

/// In-band Network Telemetry stack: per-hop egress utilization samples.
struct IntStack {
  static constexpr int kMaxHops = 8;
  bool enabled{false};
  std::uint8_t count{0};
  std::array<float, kMaxHops> util{};

  void push(float u) {
    if (count < kMaxHops) util[count++] = u;
  }
  [[nodiscard]] float max_util() const {
    float m = 0.f;
    for (int i = 0; i < count; ++i) m = std::max(m, util[i]);
    return m;
  }
};

/// Outer (overlay encapsulation) header: an STT-like tunnel header whose
/// source port is the knob Clove turns, plus context bits for feedback.
struct EncapHeader {
  bool present{false};
  FiveTuple tuple{};           ///< outer 5-tuple (hypervisor to hypervisor)
  EcnBits ecn{};               ///< outer IP ECN bits
  CloveFeedback feedback{};    ///< STT-context feedback bits
  std::uint32_t flowcell_id{0};   ///< Presto: monotonically increasing per flow
  std::uint64_t flow_hash{0};     ///< Presto: id of the inner flow
};

/// Presto / traceroute / host-level auxiliary metadata.
struct ProbeInfo {
  std::uint32_t probe_id{0};   ///< groups the TTL-laddered packets of a probe
  std::uint16_t probed_port{0};///< the encap source port under test
  std::uint8_t hop_index{0};   ///< set by the replying switch
  IpAddr hop_ip{kIpNone};      ///< node that answered (switch node id)
  std::int32_t hop_ingress{-1};///< ingress port the probe arrived on — the
                               ///< per-interface address real traceroute
                               ///< sees, distinguishing parallel links
  bool from_destination{false};///< reply came from the final hypervisor
};

/// Non-overlay deployments (§7): the source vswitch replaces the tenant
/// five-tuple's source port in place and hides the original value in TCP
/// options; the destination vswitch restores it before delivery.
struct RewriteInfo {
  bool rewritten{false};
  std::uint16_t orig_src_port{0};
};

/// A simulated packet. One header-union-of-structs instead of real byte
/// serialization: the simulator dispatches on these fields exactly where a
/// real datapath would parse them.
struct Packet {
  // Field order is a performance contract, not taxonomy: everything a
  // forwarding hop reads — the inner 5-tuple, payload size, TTL, the cached
  // wire hash, and the leading fields of EncapHeader (present / tuple / ecn)
  // — packs into the first cache line. With thousands of packets in flight a
  // fabric hop is memory-bound, and this keeps it to one line miss per
  // packet instead of four (measured on bench_fabric_forwarding).

  // --- forwarding-hot line ----------------------------------------------
  FiveTuple inner{};           ///< VM-to-VM 5-tuple
  std::uint32_t payload{0};    ///< tenant payload bytes
  std::uint8_t ttl{64};

 private:
  // --- forwarding fast-path cache (see wire_hash() below) ----------------
  mutable bool wire_hash_valid_{false};
  mutable std::uint64_t wire_hash_{0};

 public:
  EncapHeader encap{};         ///< outer (physical network) header

  // --- endpoint / scheme-specific headers -------------------------------
  TcpHeader tcp{};
  RewriteInfo rewrite{};
  ProbeInfo probe{};
  CongaFields conga{};
  IntStack int_stack{};

  // --- bookkeeping ------------------------------------------------------
  sim::Time sent_at{0};        ///< timestamp at first NIC transmission
  std::uint64_t uid{0};        ///< unique id for tracing

  /// Path trace for the hybrid flow/packet engine (clove::hybrid): when a
  /// flow is a promotion candidate, its next data segment is flagged and
  /// every Link it serializes on appends its id here. The destination
  /// hypervisor reports the captured path so the fluid model charges the
  /// exact links the flowlet actually traversed. Cold — only candidates
  /// carry it, and it sits past the bookkeeping tail of the struct.
  struct HybridTrace {
    static constexpr int kMaxLinks = 12;
    bool active{false};
    std::uint8_t count{0};
    std::array<std::uint32_t, kMaxLinks> links{};

    void push(std::uint32_t link_id) {
      if (count < kMaxLinks) {
        links[count] = link_id;
      }
      ++count;  // counts past kMaxLinks signal overflow (promotion aborted)
    }
    [[nodiscard]] bool overflowed() const { return count > kMaxLinks; }
  };
  HybridTrace htrace{};

  /// The 5-tuple physical switches hash for ECMP: the outer one when the
  /// packet is encapsulated, else the inner one.
  [[nodiscard]] const FiveTuple& wire_tuple() const {
    return encap.present ? encap.tuple : inner;
  }

  [[nodiscard]] IpAddr wire_src() const { return wire_tuple().src_ip; }
  [[nodiscard]] IpAddr wire_dst() const { return wire_tuple().dst_ip; }

  /// Cached tuple_prehash(wire_tuple()), computed lazily on first use (the
  /// first switch the packet traverses) and reused by every later hop; each
  /// switch finalizes it with its own salt via salted_hash(). Any code that
  /// mutates the wire tuple after the packet entered the datapath (encap,
  /// decap, the non-overlay source-port rewrite) must call
  /// invalidate_wire_hash() or downstream switches would hash a stale tuple.
  [[nodiscard]] std::uint64_t wire_hash() const {
    if (!wire_hash_valid_) {
      wire_hash_ = tuple_prehash(wire_tuple());
      wire_hash_valid_ = true;
    }
    return wire_hash_;
  }
  void invalidate_wire_hash() { wire_hash_valid_ = false; }
  /// Whether the cache currently holds a value (test/diagnostic hook).
  [[nodiscard]] bool wire_hash_cached() const { return wire_hash_valid_; }

  /// Bytes on the wire: payload plus a fixed modeled header overhead.
  static constexpr std::uint32_t kHeaderBytes = 78;  // Eth+IP+TCP+STT approx
  [[nodiscard]] std::uint32_t wire_size() const { return payload + kHeaderBytes; }

  [[nodiscard]] std::string to_string() const;
};

class PacketPool;

/// Deleter behind PacketPtr: returns the packet to its owning pool, or plain
/// `delete`s it when there is none (default-constructed, as for the heap
/// make_packet() below or a PacketPtr rebuilt from a released raw pointer —
/// pool packets are individually `new`ed, so either path is always safe).
struct PacketDeleter {
  PacketPool* pool{nullptr};
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Heap factory stamping process-unique ids; exists so tests can build
/// packets tersely without a Simulator. Datapath code uses the pooled
/// overload below instead.
[[nodiscard]] PacketPtr make_packet();

/// Pooled factory: recycles packets through the per-Simulator PacketPool
/// (zero heap allocations in steady state) and stamps per-simulation uids,
/// which keeps id sequences deterministic under parallel sweeps.
[[nodiscard]] PacketPtr make_packet(sim::Simulator& sim);

}  // namespace clove::net
