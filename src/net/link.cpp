#include "net/link.hpp"

#include <algorithm>

#include "net/node.hpp"
#include "telemetry/hub.hpp"

namespace clove::net {

Link::Link(sim::Simulator& sim, LinkId id, std::string name, Node* dst,
           int dst_in_port, const LinkConfig& cfg)
    : sim_(sim),
      id_(id),
      name_(std::move(name)),
      dst_(dst),
      dst_in_port_(dst_in_port),
      cfg_(cfg) {
  dre_.configure(cfg_.dre_alpha, cfg_.dre_interval, cfg_.rate_bytes_per_sec);
  auto& reg = telemetry::hub().metrics();
  const telemetry::Labels labels{{"link", name_}};
  cells_.tx_packets = reg.counter("link.tx_packets", labels);
  cells_.tx_bytes = reg.counter("link.tx_bytes", labels);
  cells_.drops_overflow = reg.counter("link.drops_overflow", labels);
  cells_.drops_down = reg.counter("link.drops_down", labels);
  cells_.ecn_marks = reg.counter("link.ecn_marks", labels);
  cells_.queue_high_watermark =
      reg.gauge("link.queue_high_watermark_bytes", labels);
}

void Link::enqueue(PacketPtr pkt) {
  if (down_) {
    ++stats_.drops_down;
    if (telemetry::enabled()) cells_.drops_down->add();
    return;
  }
  const std::int64_t wire = pkt->wire_size();
  if (queue_bytes_ + wire > cfg_.queue_capacity_bytes) {
    ++stats_.drops_overflow;
    if (telemetry::enabled()) cells_.drops_overflow->add();
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kQueue, sim_.now(), name_,
                       "link.drop_overflow", pkt->to_string(),
                       static_cast<double>(queue_bytes_));
    }
    return;
  }
  // DCTCP-style marking: mark the arriving packet when the instantaneous
  // queue occupancy is at or above the threshold K (paper §3.2: 20 pkts).
  if (cfg_.ecn_marking && queue_bytes_ >= cfg_.ecn_threshold_bytes) {
    bool fresh_mark = false;
    if (pkt->encap.present && pkt->encap.ecn.ect) {
      fresh_mark = !pkt->encap.ecn.ce;
      pkt->encap.ecn.ce = true;
    } else if (!pkt->encap.present && pkt->tcp.ect) {
      fresh_mark = !pkt->tcp.ce;
      pkt->tcp.ce = true;
    }
    if (fresh_mark) {
      ++stats_.ecn_marks;
      if (telemetry::enabled()) cells_.ecn_marks->add();
    }
  }
  queue_.push_back(std::move(pkt));
  queue_bytes_ += wire;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queue_bytes_);
  if (telemetry::enabled()) {
    cells_.queue_high_watermark->update_max(static_cast<double>(queue_bytes_));
  }
  if (!busy_) start_tx();
}

void Link::start_tx() {
  busy_ = true;
  in_flight_ = std::move(queue_.front());
  queue_.pop_front();
  queue_bytes_ -= in_flight_->wire_size();
  const sim::Time tx = serialization_delay(in_flight_->wire_size());
  sim_.schedule_in(tx, [this] { on_tx_done(); });
}

void Link::on_tx_done() {
  if (down_ || !in_flight_) {
    // The link failed during serialization; the bits are lost.
    in_flight_.reset();
    busy_ = false;
    return;
  }
  PacketPtr pkt = std::move(in_flight_);
  const std::int64_t wire = pkt->wire_size();
  dre_.on_transmit(sim_.now(), wire);
  ++stats_.tx_packets;
  stats_.tx_bytes += static_cast<std::uint64_t>(wire);
  if (telemetry::enabled()) {
    cells_.tx_packets->add();
    cells_.tx_bytes->add(static_cast<std::uint64_t>(wire));
  }

  if (cfg_.int_telemetry && pkt->int_stack.enabled) {
    pkt->int_stack.push(static_cast<float>(dre_.utilization(sim_.now())));
  }
  if (cfg_.conga_metric && pkt->conga.present) {
    pkt->conga.ce = std::max(pkt->conga.ce, dre_.quantized(sim_.now()));
  }

  propagating_.emplace_back(sim_.now() + cfg_.propagation, std::move(pkt));
  sim_.schedule_in(cfg_.propagation, [this] { deliver_front(); });

  if (!queue_.empty()) {
    start_tx();
  } else {
    busy_ = false;
  }
}

void Link::deliver_front() {
  // Stale events (queue flushed by a failure, or a newer packet's event
  // arriving before its deadline) are detected via the stored deadline.
  if (propagating_.empty() || propagating_.front().first > sim_.now()) return;
  PacketPtr pkt = std::move(propagating_.front().second);
  propagating_.pop_front();
  if (down_) {
    ++stats_.drops_down;
    if (telemetry::enabled()) cells_.drops_down->add();
    return;
  }
  dst_->receive(std::move(pkt), dst_in_port_);
}

void Link::down() {
  down_ = true;
  const std::uint64_t flushed =
      queue_.size() + propagating_.size() + (in_flight_ ? 1 : 0);
  stats_.drops_down += flushed;
  if (telemetry::enabled()) cells_.drops_down->add(flushed);
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTopology, sim_.now(), name_,
                     "link.down", "flushed in-flight packets",
                     static_cast<double>(flushed));
  }
  queue_.clear();
  queue_bytes_ = 0;
  propagating_.clear();
  in_flight_.reset();
  busy_ = false;
}

void Link::up() {
  down_ = false;
  dre_.reset();
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTopology, sim_.now(), name_,
                     "link.up");
  }
}

}  // namespace clove::net
