#include "net/link.hpp"

#include <algorithm>

#include "net/node.hpp"
#include "net/shard.hpp"
#include "prof/prof.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"

namespace clove::net {

Link::Link(sim::Simulator& sim, LinkId id, std::string name, Node* dst,
           int dst_in_port, const LinkConfig& cfg)
    : sim_(sim),
      id_(id),
      name_(std::move(name)),
      dst_(dst),
      dst_in_port_(dst_in_port),
      cfg_(cfg) {
  dre_.configure(cfg_.dre_alpha, cfg_.dre_interval, cfg_.rate_bytes_per_sec);
  auto& reg = telemetry::hub().metrics();
  const telemetry::Labels labels{{"link", name_}};
  cells_.tx_packets = reg.counter("link.tx_packets", labels);
  cells_.tx_bytes = reg.counter("link.tx_bytes", labels);
  cells_.drops_overflow = reg.counter("link.drops_overflow", labels);
  cells_.drops_down = reg.counter("link.drops_down", labels);
  cells_.drops_fault = reg.counter("link.drops_fault", labels);
  cells_.ecn_marks = reg.counter("link.ecn_marks", labels);
  cells_.queue_high_watermark =
      reg.gauge("link.queue_high_watermark_bytes", labels);
}

void Link::enqueue(PacketPtr pkt) {
  if (down_) {
    ++stats_.drops_down;
    if (telemetry::enabled()) cells_.drops_down->add();
    if (auto* fr = telemetry::flight()) {
      fr->on_drop(pkt->uid, dst_ != nullptr ? dst_->id() : 0, name_,
                  telemetry::JourneyOutcome::kDropLinkDown, sim_.now());
    }
    return;
  }
  if (fault_drop_prob_ > 0.0 && fault_rng_.uniform() < fault_drop_prob_) {
    // Injected gray failure: the packet vanishes with no observable signal
    // on the link itself — the only evidence is missing deliveries.
    ++stats_.drops_fault;
    if (telemetry::enabled()) cells_.drops_fault->add();
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kFault, sim_.now(), name_,
                       "link.fault_drop", pkt->to_string(), fault_drop_prob_);
    }
    if (auto* fr = telemetry::flight()) {
      fr->on_drop(pkt->uid, dst_ != nullptr ? dst_->id() : 0, name_,
                  telemetry::JourneyOutcome::kDropFault, sim_.now());
    }
    return;
  }
  const std::int64_t wire = pkt->wire_size();
  if (queue_bytes_ + wire > cfg_.queue_capacity_bytes) {
    ++stats_.drops_overflow;
    if (telemetry::enabled()) cells_.drops_overflow->add();
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kQueue, sim_.now(), name_,
                       "link.drop_overflow", pkt->to_string(),
                       static_cast<double>(queue_bytes_));
    }
    if (auto* fr = telemetry::flight()) {
      fr->on_drop(pkt->uid, dst_ != nullptr ? dst_->id() : 0, name_,
                  telemetry::JourneyOutcome::kDropOverflow, sim_.now());
    }
    return;
  }
  // DCTCP-style marking: mark the arriving packet when the instantaneous
  // queue occupancy is at or above the threshold K (paper §3.2: 20 pkts).
  if (cfg_.ecn_marking &&
      queue_bytes_ + fluid_queue_bytes_ >= cfg_.ecn_threshold_bytes) {
    bool fresh_mark = false;
    if (pkt->encap.present && pkt->encap.ecn.ect) {
      fresh_mark = !pkt->encap.ecn.ce;
      pkt->encap.ecn.ce = true;
    } else if (!pkt->encap.present && pkt->tcp.ect) {
      fresh_mark = !pkt->tcp.ce;
      pkt->tcp.ce = true;
    }
    if (fresh_mark) {
      ++stats_.ecn_marks;
      if (telemetry::enabled()) cells_.ecn_marks->add();
    }
  }
  queue_.push_back(std::move(pkt));
  queue_bytes_ += wire;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queue_bytes_);
  if (telemetry::enabled()) {
    cells_.queue_high_watermark->update_max(static_cast<double>(queue_bytes_));
  }
  if (!busy_) start_tx();
}

void Link::start_tx() {
  busy_ = true;
  in_flight_ = std::move(queue_.front());
  queue_.pop_front();
  const std::int64_t wire = in_flight_->wire_size();
  queue_bytes_ -= wire;
  // Memoize the delay: wire sizes repeat (MTU data, bare ACKs), and the
  // floating-point division in transmission_delay is per-packet hot.
  if (wire != memo_bytes_) {
    memo_bytes_ = wire;
    if (fluid_rate_ > 0.0) {
      // Fluid (flow-level) load claims its share of the line rate; real
      // packets serialize on the residual. Floored so a saturating elephant
      // slows mice sharing the link rather than stalling them outright.
      const double nominal = cfg_.rate_bytes_per_sec * capacity_factor_;
      const double residual = std::max(nominal - fluid_rate_, nominal * 0.05);
      memo_delay_ = sim::transmission_delay(wire, residual);
    } else {
      memo_delay_ = serialization_delay(wire);
    }
  }
  sim_.schedule_in(memo_delay_, [this] { on_tx_done(); });
}

void Link::on_tx_done() {
  CLOVE_PROF_SCOPE(prof::kLinkTx);
  if (down_ || !in_flight_) {
    // The link failed during serialization; the bits are lost.
    if (in_flight_) {
      if (auto* fr = telemetry::flight()) {
        fr->on_drop(in_flight_->uid, dst_ != nullptr ? dst_->id() : 0, name_,
                    telemetry::JourneyOutcome::kDropLinkDown, sim_.now());
      }
    }
    in_flight_.reset();
    busy_ = false;
    return;
  }
  PacketPtr pkt = std::move(in_flight_);
  const std::int64_t wire = pkt->wire_size();
  dre_.on_transmit(sim_.now(), wire);
  ++stats_.tx_packets;
  stats_.tx_bytes += static_cast<std::uint64_t>(wire);
  if (telemetry::enabled()) {
    cells_.tx_packets->add();
    cells_.tx_bytes->add(static_cast<std::uint64_t>(wire));
  }

  if (pkt->htrace.active) pkt->htrace.push(id_);

  if (cfg_.int_telemetry && pkt->int_stack.enabled) {
    if (fluid_rate_ > 0.0) {
      pkt->int_stack.push(static_cast<float>(utilization()));
    } else {
      pkt->int_stack.push(static_cast<float>(dre_.utilization(sim_.now())));
    }
  }
  if (cfg_.conga_metric && pkt->conga.present) {
    if (fluid_rate_ > 0.0) {
      pkt->conga.ce = std::max(pkt->conga.ce, utilization_quantized());
    } else {
      pkt->conga.ce = std::max(pkt->conga.ce, dre_.quantized(sim_.now()));
    }
  }

  if (channel_ != nullptr) {
    // Shard-crossing link: park the packet in the staging channel; the
    // coordinator schedules the delivery on the destination shard at the
    // next barrier. Conservative windows are bounded by the minimum
    // cross-shard propagation, so the delivery time is never in a window
    // that has already run.
    channel_->stage(sim_.now() + cfg_.propagation, std::move(pkt));
  } else {
    propagating_.emplace_back(sim_.now() + cfg_.propagation, std::move(pkt));
    if (!prop_wake_.valid()) {
      // A pending wake is always at an earlier-or-equal deadline (per-link
      // deadlines are monotone), so one outstanding wake per link suffices.
      prop_wake_ =
          sim_.schedule_in(cfg_.propagation, [this] { deliver_front(); });
    }
  }

  if (!queue_.empty()) {
    start_tx();
  } else {
    busy_ = false;
  }
}

void Link::deliver_front() {
  CLOVE_PROF_SCOPE(prof::kLinkDeliver);
  prop_wake_ = sim::EventId{};
  // Drain every packet whose deadline has arrived (several packets can share
  // a delivery instant), then re-arm a single wake for the new front.
  while (!propagating_.empty() && propagating_.front().first <= sim_.now()) {
    PacketPtr pkt = std::move(propagating_.front().second);
    propagating_.pop_front();
    if (down_) {
      ++stats_.drops_down;
      if (telemetry::enabled()) cells_.drops_down->add();
      if (auto* fr = telemetry::flight()) {
        fr->on_drop(pkt->uid, dst_ != nullptr ? dst_->id() : 0, name_,
                    telemetry::JourneyOutcome::kDropLinkDown, sim_.now());
      }
      continue;
    }
    dst_->receive(std::move(pkt), dst_in_port_);
  }
  if (!propagating_.empty()) {
    prop_wake_ = sim_.schedule_at(propagating_.front().first,
                                  [this] { deliver_front(); });
  }
}

void Link::remote_deliver(PacketPtr pkt, sim::Time now) {
  CLOVE_PROF_SCOPE(prof::kLinkDeliver);
  if (down_) {
    ++stats_.drops_down;
    if (telemetry::enabled()) cells_.drops_down->add();
    if (auto* fr = telemetry::flight()) {
      fr->on_drop(pkt->uid, dst_ != nullptr ? dst_->id() : 0, name_,
                  telemetry::JourneyOutcome::kDropLinkDown, now);
    }
    return;
  }
  dst_->receive(std::move(pkt), dst_in_port_);
}

void Link::down() {
  down_ = true;
  const std::uint64_t flushed =
      queue_.size() + propagating_.size() + (in_flight_ ? 1 : 0) +
      (channel_ != nullptr ? channel_->staged_count() : 0);
  stats_.drops_down += flushed;
  if (telemetry::enabled()) cells_.drops_down->add(flushed);
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTopology, sim_.now(), name_,
                     "link.down", "flushed in-flight packets",
                     static_cast<double>(flushed));
  }
  if (auto* fr = telemetry::flight()) {
    // Finalize every flushed journey individually so the conservation
    // auditor can account for packets lost to the failure.
    const NodeId at = dst_ != nullptr ? dst_->id() : 0;
    while (!queue_.empty()) {
      fr->on_drop(queue_.front()->uid, at, name_,
                  telemetry::JourneyOutcome::kDropLinkDown, sim_.now());
      queue_.pop_front();
    }
    while (!propagating_.empty()) {
      fr->on_drop(propagating_.front().second->uid, at, name_,
                  telemetry::JourneyOutcome::kDropLinkDown, sim_.now());
      propagating_.pop_front();
    }
    if (in_flight_) {
      fr->on_drop(in_flight_->uid, at, name_,
                  telemetry::JourneyOutcome::kDropLinkDown, sim_.now());
    }
  }
  // Packets staged for a cross-shard delivery are in this link's pipe too
  // (they are counted in `flushed` above; the channel records their drops).
  if (channel_ != nullptr) channel_->flush_down(sim_.now());
  queue_.clear();
  queue_bytes_ = 0;
  propagating_.clear();
  if (prop_wake_.valid()) {
    sim_.cancel(prop_wake_);
    prop_wake_ = sim::EventId{};
  }
  in_flight_.reset();
  busy_ = false;
  if (fluid_observer_ != nullptr) fluid_observer_->on_link_changed(*this);
}

void Link::set_capacity_factor(double factor) {
  capacity_factor_ = std::clamp(factor, 1e-3, 1.0);
  memo_bytes_ = -1;  // cached serialization delay is for the old rate
  // Re-base the DRE on the degraded line rate: a link running at 25% that is
  // 25% full is saturated, and INT/CONGA must see it that way.
  dre_.configure(cfg_.dre_alpha, cfg_.dre_interval,
                 cfg_.rate_bytes_per_sec * capacity_factor_);
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kFault, sim_.now(), name_,
                     "link.capacity_factor", "", capacity_factor_);
  }
  if (fluid_observer_ != nullptr) fluid_observer_->on_link_changed(*this);
}

void Link::set_fault_drop(double p, std::uint64_t seed) {
  fault_drop_prob_ = std::clamp(p, 0.0, 1.0);
  if (fault_drop_prob_ > 0.0) fault_rng_.reseed(seed);
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kFault, sim_.now(), name_,
                     "link.fault_drop_prob", "", fault_drop_prob_);
  }
}

void Link::up() {
  down_ = false;
  dre_.reset();
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTopology, sim_.now(), name_,
                     "link.up");
  }
  if (fluid_observer_ != nullptr) fluid_observer_->on_link_changed(*this);
}

}  // namespace clove::net
