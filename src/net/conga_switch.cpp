#include "net/conga_switch.hpp"

#include <algorithm>

#include "telemetry/hub.hpp"

namespace clove::net {

void CongaLeafSwitch::configure_fabric(int leaf_index,
                                       std::vector<int> uplink_ports,
                                       std::unordered_map<IpAddr, int> host_leaf) {
  leaf_index_ = leaf_index;
  uplink_ports_ = std::move(uplink_ports);
  // Densify the host->leaf mapping and size the feedback round-robin array
  // up front so the per-packet path never allocates.
  int max_leaf = leaf_index;
  host_leaf_.clear();
  for (const auto& [ip, leaf] : host_leaf) {
    if (ip >= host_leaf_.size()) host_leaf_.resize(ip + 1, -1);
    host_leaf_[ip] = leaf;
    max_leaf = std::max(max_leaf, leaf);
  }
  fb_rr_.assign(static_cast<std::size_t>(max_leaf) + 1, 0);
}

std::uint8_t CongaLeafSwitch::read_metric(const MetricTable& t,
                                          std::uint64_t key) const {
  const Metric* m = t.find(key);
  if (m == nullptr) return 0;
  if (sim_.now() - m->updated > cfg_.table_aging) return 0;
  return m->ce;
}

std::uint8_t CongaLeafSwitch::congestion_to(int dst_leaf, int tag) const {
  return read_metric(to_leaf_, table_key(dst_leaf, tag));
}
std::uint8_t CongaLeafSwitch::congestion_from(int src_leaf, int tag) const {
  return read_metric(from_leaf_, table_key(src_leaf, tag));
}

int CongaLeafSwitch::pick_uplink_tag(int dst_leaf,
                                     const PortSet& live_ports) {
  int best_tag = -1;
  int best_metric = 256;
  int n_best = 0;
  for (std::size_t tag = 0; tag < uplink_ports_.size(); ++tag) {
    const int port_idx = uplink_ports_[tag];
    if (std::find(live_ports.begin(), live_ports.end(), port_idx) ==
        live_ports.end()) {
      continue;  // uplink failed or not on a shortest path right now
    }
    const std::uint8_t local =
        port(port_idx)->utilization_quantized(cfg_.quantization_bits);
    const std::uint8_t remote = congestion_to(dst_leaf, static_cast<int>(tag));
    const int metric = std::max<int>(local, remote);
    if (metric < best_metric) {
      best_metric = metric;
      best_tag = static_cast<int>(tag);
      n_best = 1;
    } else if (metric == best_metric) {
      // Reservoir-sample among ties so equal paths share load evenly.
      ++n_best;
      if (rng_.uniform_int(static_cast<std::uint64_t>(n_best)) == 0) {
        best_tag = static_cast<int>(tag);
      }
    }
  }
  return best_tag;
}

int CongaLeafSwitch::select_port(const Packet& pkt, const PortSet& ports,
                                 int in_port) {
  const int dst_leaf = leaf_of(pkt.wire_dst());
  const bool entering_fabric =
      leaf_index_ >= 0 && dst_leaf >= 0 && dst_leaf != leaf_index_ &&
      !is_uplink(in_port);
  if (!entering_fabric) {
    return Switch::select_port(pkt, ports, in_port);
  }
  const std::uint64_t key = salted_hash(pkt.wire_hash(), 0xC09A);
  auto dec = flowlets_.touch(key, sim_.now());
  int tag;
  if (dec.new_flowlet) {
    tag = pick_uplink_tag(dst_leaf, ports);
    if (tag < 0) return Switch::select_port(pkt, ports, in_port);
    dec.set_value(static_cast<std::uint32_t>(tag));
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kPath, sim_.now(), name(),
                       "conga.flowlet_path",
                       "dst_leaf " + std::to_string(dst_leaf),
                       static_cast<double>(tag), key);
    }
  } else {
    tag = static_cast<int>(dec.value);
    const int port_idx = uplink_ports_[static_cast<std::size_t>(tag)];
    if (std::find(ports.begin(), ports.end(), port_idx) == ports.end()) {
      // The flowlet's uplink died; repick.
      tag = pick_uplink_tag(dst_leaf, ports);
      if (tag < 0) return Switch::select_port(pkt, ports, in_port);
      dec.set_value(static_cast<std::uint32_t>(tag));
    }
  }
  return uplink_ports_[static_cast<std::size_t>(tag)];
}

void CongaLeafSwitch::on_forward(Packet& pkt, int egress_port, int in_port) {
  if (leaf_index_ < 0) return;
  const int dst_leaf = leaf_of(pkt.wire_dst());

  if (dst_leaf == leaf_index_ && is_uplink(in_port)) {
    // Arriving from the fabric for a local host: harvest metrics.
    if (pkt.conga.present) {
      from_leaf_[table_key(static_cast<int>(pkt.conga.src_leaf),
                           pkt.conga.lb_tag)] = {pkt.conga.ce, sim_.now()};
      if (pkt.conga.fb_present) {
        to_leaf_[table_key(static_cast<int>(pkt.conga.src_leaf),
                           pkt.conga.fb_tag)] = {pkt.conga.fb_ce, sim_.now()};
      }
    }
    return;
  }

  if (dst_leaf >= 0 && dst_leaf != leaf_index_ && !is_uplink(in_port)) {
    // Entering the fabric: stamp the CONGA header and piggyback feedback
    // about the destination leaf's tags (measured on traffic we received
    // from it), exactly one (tag, ce) pair per packet, round-robin.
    pkt.conga.present = true;
    pkt.conga.src_leaf = static_cast<std::uint32_t>(leaf_index_);
    // lb_tag = index of the chosen uplink.
    for (std::size_t tag = 0; tag < uplink_ports_.size(); ++tag) {
      if (uplink_ports_[tag] == egress_port) {
        pkt.conga.lb_tag = static_cast<std::uint8_t>(tag);
        break;
      }
    }
    pkt.conga.ce = 0;
    if (!uplink_ports_.empty() &&
        static_cast<std::size_t>(dst_leaf) < fb_rr_.size()) {
      std::uint8_t& rr = fb_rr_[static_cast<std::size_t>(dst_leaf)];
      rr = static_cast<std::uint8_t>((rr + 1) % uplink_ports_.size());
      pkt.conga.fb_present = true;
      pkt.conga.fb_tag = rr;
      pkt.conga.fb_ce = congestion_from(dst_leaf, rr);
    }
  }
}

}  // namespace clove::net
