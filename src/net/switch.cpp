#include "net/switch.hpp"

#include "prof/prof.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"

namespace clove::net {

Switch::Switch(sim::Simulator& sim, NodeId id, std::string name)
    : Node(id, std::move(name)), sim_(sim) {
  auto& reg = telemetry::hub().metrics();
  const telemetry::Labels labels{{"switch", this->name()}};
  cells_.forwarded = reg.counter("switch.forwarded", labels);
  cells_.no_route_drops = reg.counter("switch.no_route_drops", labels);
  cells_.ttl_drops = reg.counter("switch.ttl_drops", labels);
}

void Switch::receive(PacketPtr pkt, int in_port) {
  CLOVE_PROF_SCOPE(prof::kSwitchForward);
  // TTL processing, as a router would: decrement, and on expiry either
  // answer a traceroute probe or silently drop.
  if (pkt->ttl == 0) {
    ++stats_.ttl_drops;
    if (telemetry::enabled()) cells_.ttl_drops->add();
    if (auto* fr = telemetry::flight()) {
      fr->on_drop(pkt->uid, id(), name(),
                  telemetry::JourneyOutcome::kDropTtl, sim_.now());
    }
    return;
  }
  pkt->ttl--;
  if (pkt->ttl == 0) {
    if (pkt->probe.probe_id != 0 && pkt->probe.hop_ip == kIpNone) {
      send_probe_reply(*pkt, in_port);
      if (auto* fr = telemetry::flight()) {
        // The probe terminated here by design — a legitimate consumption,
        // not a conservation violation.
        fr->on_drop(pkt->uid, id(), name(),
                    telemetry::JourneyOutcome::kConsumed, sim_.now());
      }
    } else {
      ++stats_.ttl_drops;
      if (telemetry::enabled()) cells_.ttl_drops->add();
      if (auto* fr = telemetry::flight()) {
        fr->on_drop(pkt->uid, id(), name(),
                    telemetry::JourneyOutcome::kDropTtl, sim_.now());
      }
    }
    return;
  }
  forward(std::move(pkt), in_port);
}

void Switch::forward(PacketPtr pkt, int in_port) {
  const IpAddr dst = pkt->wire_dst();
  const PortSet* ports = route(dst);
  if (ports == nullptr) {
    ++stats_.no_route_drops;
    if (telemetry::enabled()) cells_.no_route_drops->add();
    if (telemetry::tracing()) {
      telemetry::trace(telemetry::Category::kQueue, sim_.now(), name(),
                       "switch.no_route", "dst " + std::to_string(dst), 0.0,
                       dst);
    }
    if (auto* fr = telemetry::flight()) {
      fr->on_drop(pkt->uid, id(), name(),
                  telemetry::JourneyOutcome::kDropNoRoute, sim_.now());
    }
    return;
  }
  const int egress = select_port(*pkt, *ports, in_port);
  on_forward(*pkt, egress, in_port);
  ++stats_.forwarded;
  if (telemetry::enabled()) cells_.forwarded->add();
  if (auto* fr = telemetry::flight(); fr != nullptr && fr->wants(pkt->uid)) {
    // Queue depth and ECN decision are recorded as the egress queue will see
    // this packet: the enqueue below applies exactly would_mark()'s condition.
    Link* l = port(egress);
    fr->on_hop(pkt->uid, id(), name(), in_port, egress, l->queue_bytes(),
               l->would_mark(*pkt), sim_.now());
  }
  port(egress)->enqueue(std::move(pkt));
}

int Switch::select_port(const Packet& pkt, const PortSet& ports,
                        int /*in_port*/) {
  if (ports.size() == 1) return ports[0];
  // One finalizer round over the cached prehash — identical decision to
  // hash_tuple(pkt.wire_tuple(), id()) but without re-mixing the tuple.
  return ports[salted_hash(pkt.wire_hash(), id()) % ports.size()];
}

void Switch::on_forward(Packet& /*pkt*/, int /*egress_port*/, int /*in_port*/) {}

void Switch::send_probe_reply(const Packet& probe, int in_port) {
  // Models the ICMP Time-Exceeded message a real switch would emit: a small
  // packet routed back to the prober, identifying the ingress interface it
  // arrived on (which is what lets traceroute tell parallel links apart).
  auto reply = make_packet(sim_);
  reply->inner.src_ip = ip();
  reply->inner.dst_ip = probe.wire_src();
  reply->inner.proto = Proto::kProbeReply;
  reply->payload = 64;
  reply->ttl = 64;
  reply->probe = probe.probe;
  reply->probe.hop_ip = ip();
  reply->probe.hop_ingress = in_port;
  reply->probe.from_destination = false;
  ++stats_.probe_replies;
  forward(std::move(reply), -1);
}

}  // namespace clove::net
