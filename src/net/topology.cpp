#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "net/shard.hpp"
#include "telemetry/hub.hpp"

namespace clove::net {

void Topology::begin_shard(int s) {
  cur_shard_ = domain_ != nullptr ? s % domain_->shard_count() : 0;
}

sim::Simulator& Topology::shard_sim(int s) {
  return domain_ != nullptr ? domain_->sim(s) : sim_;
}

Switch* Topology::add_switch(const std::string& name) {
  auto sw = std::make_unique<Switch>(shard_sim(cur_shard_), next_id(), name);
  Switch* raw = sw.get();
  switches_.push_back(raw);
  nodes_.push_back(std::move(sw));
  shard_of_node_.push_back(cur_shard_);
  return raw;
}

Switch* Topology::add_custom_switch(
    const std::string& name,
    const std::function<std::unique_ptr<Switch>(NodeId, std::string)>& make) {
  auto sw = make(next_id(), name);
  Switch* raw = sw.get();
  switches_.push_back(raw);
  nodes_.push_back(std::move(sw));
  shard_of_node_.push_back(cur_shard_);
  return raw;
}

std::pair<Link*, Link*> Topology::connect(Node* a, Node* b,
                                          const LinkConfig& cfg) {
  const LinkId id_ab = static_cast<LinkId>(links_.size());
  const LinkId id_ba = id_ab + 1;
  // A link's events (tx completion, propagation wake) run on its SOURCE
  // node's shard; a shard-crossing link hands finished transmissions to a
  // staging channel instead of its propagation pipe.
  const int sa = shard_of(a);
  const int sb = shard_of(b);
  // The destination in-port indices must be reserved before constructing the
  // links, since each link needs the peer's ingress port number.
  auto ab = std::make_unique<Link>(shard_sim(sa), id_ab,
                                   a->name() + "->" + b->name(), b,
                                   /*dst_in_port=*/b->port_count(), cfg);
  auto ba = std::make_unique<Link>(shard_sim(sb), id_ba,
                                   b->name() + "->" + a->name(), a,
                                   /*dst_in_port=*/a->port_count(), cfg);
  a->attach_port(ab.get());  // a's egress; also reserves a's ingress index
  b->attach_port(ba.get());
  Link* pab = ab.get();
  Link* pba = ba.get();
  if (domain_ != nullptr && sa != sb) {
    pab->set_channel(domain_->make_channel(pab, sa, sb));
    pba->set_channel(domain_->make_channel(pba, sb, sa));
    // The conservative window bound: nothing crosses a shard boundary in
    // less than the fastest cross-shard propagation delay.
    domain_->note_lookahead(cfg.propagation);
  }
  links_.push_back(std::move(ab));
  links_.push_back(std::move(ba));
  return {pab, pba};
}

Link* Topology::reverse_of(Link* l) const {
  return links_[l->id() ^ 1u].get();
}

void Topology::fail_connection(Link* a_to_b) {
  a_to_b->down();
  reverse_of(a_to_b)->down();
  compute_routes();
}

void Topology::restore_connection(Link* a_to_b) {
  a_to_b->up();
  reverse_of(a_to_b)->up();
  compute_routes();
}

void Topology::compute_routes() {
  ++route_epoch_;
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kTopology, sim_.now(), "topology",
                     "topology.route_recompute", {},
                     static_cast<double>(route_epoch_));
  }
  if (domain_ != nullptr) {
    // Recomputed routes touch switches in every shard; give every shard's
    // flight recorder the ordering amnesty, not just the calling thread's.
    domain_->broadcast_route_change();
  } else if (auto* fr = telemetry::flight()) {
    fr->on_route_change();
  }
  // Adjacency: for each node, its live egress links.
  const std::size_t n = nodes_.size();
  std::vector<std::vector<Link*>> egress(n);
  for (const auto& l : links_) {
    if (l->is_down()) continue;
    // Find the owner: the node that has this link as a port.
    // connect() attaches links_[2i] to `a` and links_[2i+1] to `b`; the
    // owner of link L is dst(reverse_of(L)).
    Node* owner = links_[l->id() ^ 1u]->dst();
    egress[owner->id()].push_back(l.get());
  }

  for (Switch* sw : switches_) sw->clear_routes();

  // One reverse BFS per destination host: dist[v] = hops from v to dst.
  constexpr int kInf = std::numeric_limits<int>::max();
  std::vector<int> dist(n);
  for (Node* dst : hosts_) {
    std::fill(dist.begin(), dist.end(), kInf);
    dist[dst->id()] = 0;
    std::deque<NodeId> q{dst->id()};
    // Reverse adjacency == forward adjacency here because all connections
    // are bidirectional pairs with both directions live or both down.
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop_front();
      for (Link* l : egress[v]) {
        NodeId u = l->dst()->id();
        if (dist[u] == kInf) {
          dist[u] = dist[v] + 1;
          q.push_back(u);
        }
      }
    }
    for (Switch* sw : switches_) {
      if (dist[sw->id()] == kInf || dist[sw->id()] == 0) continue;
      std::vector<int> ports;
      for (int p = 0; p < sw->port_count(); ++p) {
        Link* l = sw->port(p);
        if (l->is_down()) continue;
        if (dist[l->dst()->id()] == dist[sw->id()] - 1) ports.push_back(p);
      }
      if (!ports.empty()) sw->set_route(dst->ip(), std::move(ports));
    }
  }
}

int LeafSpine::leaf_of_host(const Node* h) const {
  for (std::size_t i = 0; i < hosts_by_leaf.size(); ++i) {
    for (const Node* x : hosts_by_leaf[i]) {
      if (x == h) return static_cast<int>(i);
    }
  }
  return -1;
}

LeafSpine build_leaf_spine(
    Topology& topo, const LeafSpineConfig& cfg,
    const std::function<Node*(Topology&, const std::string&, int)>& make_host,
    const std::function<std::unique_ptr<Switch>(NodeId, std::string, int)>&
        make_switch) {
  LeafSpine net;
  net.cfg = cfg;

  auto new_switch = [&](const std::string& name, int leaf_idx) -> Switch* {
    if (make_switch) {
      return topo.add_custom_switch(name, [&](NodeId id, std::string n) {
        return make_switch(id, std::move(n), leaf_idx);
      });
    }
    return topo.add_switch(name);
  };

  // Appending piecewise (instead of operator+ chains) sidesteps a GCC 12
  // -O3 -Wrestrict false positive (GCC PR105651) under -Werror.
  auto label = [](const char* prefix, int a, int b = -1) {
    std::string s(prefix);
    s += std::to_string(a);
    if (b >= 0) {
      s += '-';
      s += std::to_string(b);
    }
    return s;
  };

  for (int i = 0; i < cfg.n_leaves; ++i) {
    net.leaves.push_back(new_switch(label("L", i + 1), i));
  }
  for (int j = 0; j < cfg.n_spines; ++j) {
    net.spines.push_back(new_switch(label("S", j + 1), -1));
  }

  LinkConfig fabric;
  fabric.rate_bytes_per_sec = sim::gbps_to_bytes_per_sec(cfg.fabric_gbps);
  fabric.propagation = cfg.link_propagation;
  fabric.queue_capacity_bytes = cfg.fabric_queue_pkts * cfg.mtu_bytes;
  fabric.ecn_threshold_bytes = cfg.ecn_threshold_pkts * cfg.mtu_bytes;
  fabric.int_telemetry = cfg.int_telemetry;
  fabric.conga_metric = cfg.conga_metric;

  net.fabric_links.assign(
      static_cast<std::size_t>(cfg.n_leaves),
      std::vector<std::vector<Link*>>(static_cast<std::size_t>(cfg.n_spines)));
  for (int i = 0; i < cfg.n_leaves; ++i) {
    for (int j = 0; j < cfg.n_spines; ++j) {
      for (int k = 0; k < cfg.links_per_pair; ++k) {
        auto [up, down] = topo.connect(net.leaves[static_cast<std::size_t>(i)],
                                       net.spines[static_cast<std::size_t>(j)],
                                       fabric);
        (void)down;
        net.fabric_links[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)]
                            .push_back(up);
      }
    }
  }

  LinkConfig access;
  access.rate_bytes_per_sec = sim::gbps_to_bytes_per_sec(cfg.host_gbps);
  access.propagation = cfg.link_propagation;
  access.queue_capacity_bytes = cfg.host_queue_pkts * cfg.mtu_bytes;
  access.ecn_threshold_bytes = cfg.ecn_threshold_pkts * cfg.mtu_bytes;
  access.int_telemetry = cfg.int_telemetry;
  // Host-facing links never contribute to CONGA's fabric metric.
  access.conga_metric = false;

  net.hosts_by_leaf.resize(static_cast<std::size_t>(cfg.n_leaves));
  for (int i = 0; i < cfg.n_leaves; ++i) {
    for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
      Node* host = make_host(topo, label("h", i + 1, h + 1), i);
      auto [host_up, leaf_down] =
          topo.connect(host, net.leaves[static_cast<std::size_t>(i)], access);
      (void)leaf_down;
      // The host->leaf direction is the hypervisor's own TX queue, not a
      // switch egress: it does not ECN-mark (marking there would attribute
      // local NIC queueing to whichever fabric path the packet will take).
      host_up->set_ecn_marking(false);
      net.hosts_by_leaf[static_cast<std::size_t>(i)].push_back(host);
    }
  }

  topo.compute_routes();
  return net;
}

}  // namespace clove::net
