#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace clove::net {

class Link;

using NodeId = std::uint32_t;

/// Anything attached to the network: a physical switch or a hypervisor host.
/// A node owns a set of egress ports, each backed by a unidirectional Link;
/// ingress is the receive() callback invoked by the delivering link.
class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  /// A node's IP address is its node id (one interface address per node).
  [[nodiscard]] IpAddr ip() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Called by Topology when wiring; returns the new port index.
  int attach_port(Link* egress) {
    ports_.push_back(egress);
    return static_cast<int>(ports_.size()) - 1;
  }

  [[nodiscard]] int port_count() const { return static_cast<int>(ports_.size()); }
  [[nodiscard]] Link* port(int i) const { return ports_[static_cast<std::size_t>(i)]; }

  /// Deliver a packet arriving on `in_port` (index on this node).
  virtual void receive(PacketPtr pkt, int in_port) = 0;

 protected:
  std::vector<Link*> ports_;

 private:
  NodeId id_;
  std::string name_;
};

}  // namespace clove::net
