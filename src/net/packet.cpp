#include "net/packet.hpp"

#include <atomic>
#include <cstdio>

#include "net/packet_pool.hpp"

namespace clove::net {

std::string FiveTuple::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%u:%u->%u:%u/%u", src_ip, src_port, dst_ip,
                dst_port, static_cast<unsigned>(proto));
  return buf;
}

std::string Packet::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "pkt#%llu inner=%s seq=%llu ack=%llu len=%u%s%s",
                static_cast<unsigned long long>(uid), inner.to_string().c_str(),
                static_cast<unsigned long long>(tcp.seq),
                static_cast<unsigned long long>(tcp.ack), payload,
                encap.present ? " encap=" : "",
                encap.present ? encap.tuple.to_string().c_str() : "");
  return buf;
}

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (pool != nullptr) {
    pool->release(p);
  } else {
    delete p;
  }
}

PacketPtr make_packet() {
  static std::atomic<std::uint64_t> next_uid{1};
  auto* p = new Packet;
  p->uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  return PacketPtr(p);
}

PacketPtr make_packet(sim::Simulator& sim) {
  return PacketPool::of(sim).acquire();
}

}  // namespace clove::net
