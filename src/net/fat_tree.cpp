#include "net/fat_tree.hpp"

#include <cassert>

namespace clove::net {

FatTree build_fat_tree(
    Topology& topo, const FatTreeConfig& cfg,
    const std::function<Node*(Topology&, const std::string&, int)>& make_host) {
  assert(cfg.k >= 2 && cfg.k % 2 == 0);
  FatTree net;
  net.cfg = cfg;
  const int k = cfg.k;
  const int half = k / 2;

  LinkConfig fabric;
  fabric.rate_bytes_per_sec = sim::gbps_to_bytes_per_sec(cfg.fabric_gbps);
  fabric.propagation = cfg.link_propagation;
  fabric.queue_capacity_bytes = cfg.queue_pkts * cfg.mtu_bytes;
  fabric.ecn_threshold_bytes = cfg.ecn_threshold_pkts * cfg.mtu_bytes;
  fabric.int_telemetry = cfg.int_telemetry;

  LinkConfig access = fabric;
  access.rate_bytes_per_sec = sim::gbps_to_bytes_per_sec(cfg.host_gbps);

  // Builds names like "C0.1" / "h2.0.3". Appending piecewise (instead of an
  // operator+ chain) sidesteps a GCC 12 -O3 -Wrestrict false positive
  // (GCC PR105651) that -Werror builds would otherwise trip over.
  auto label = [](const char* prefix, int a, int b, int c = -1) {
    std::string s(prefix);
    s += std::to_string(a);
    s += '.';
    s += std::to_string(b);
    if (c >= 0) {
      s += '.';
      s += std::to_string(c);
    }
    return s;
  };

  // Shard partitioning (no-op without a ShardDomain): each pod — hosts,
  // edge, and aggregation switches — is one unit placed on shard
  // `pod % shards`, and the (k/2)^2 core switches are dealt round-robin so
  // every shard carries its share of the core-hop work. Every agg<->core
  // link then crosses shards (for shards > 1), which is exactly the
  // boundary the staging channels are built for.

  // Core switches: (k/2)^2 of them, indexed (i, j) with i, j in [0, k/2).
  for (int i = 0; i < half; ++i) {
    for (int j = 0; j < half; ++j) {
      topo.begin_shard(i * half + j);
      net.core.push_back(topo.add_switch(label("C", i, j)));
    }
  }

  net.edge_by_pod.resize(static_cast<std::size_t>(k));
  net.agg_by_pod.resize(static_cast<std::size_t>(k));
  net.hosts_by_pod.resize(static_cast<std::size_t>(k));

  for (int pod = 0; pod < k; ++pod) {
    topo.begin_shard(pod);
    auto& edges = net.edge_by_pod[static_cast<std::size_t>(pod)];
    auto& aggs = net.agg_by_pod[static_cast<std::size_t>(pod)];
    for (int i = 0; i < half; ++i) {
      edges.push_back(topo.add_switch(label("E", pod, i)));
      aggs.push_back(topo.add_switch(label("A", pod, i)));
    }
    // Full bipartite edge <-> agg inside the pod.
    for (Switch* e : edges) {
      for (Switch* a : aggs) topo.connect(e, a, fabric);
    }
    // Aggregation switch i connects to core row i (core (i, j) for all j).
    for (int i = 0; i < half; ++i) {
      for (int j = 0; j < half; ++j) {
        topo.connect(aggs[static_cast<std::size_t>(i)],
                     net.core[static_cast<std::size_t>(i * half + j)], fabric);
      }
    }
    // Hosts under each edge switch.
    for (int i = 0; i < half; ++i) {
      for (int h = 0; h < half; ++h) {
        Node* host = make_host(topo, label("h", pod, i, h), pod);
        auto [host_up, edge_down] =
            topo.connect(host, edges[static_cast<std::size_t>(i)], access);
        (void)edge_down;
        host_up->set_ecn_marking(false);  // hypervisor TX queue, not a switch
        net.hosts_by_pod[static_cast<std::size_t>(pod)].push_back(host);
      }
    }
  }

  topo.begin_shard(0);
  topo.compute_routes();
  return net;
}

}  // namespace clove::net
