#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace clove::net {

class ShardDomain;

/// Owns every node and link of one simulated network, assigns ids/IPs,
/// wires bidirectional connections, computes shortest-path ECMP routes and
/// recomputes them after failures (as the fabric's routing protocol would).
///
/// Sharded builds: attach a ShardDomain (set_shard_domain) before adding
/// nodes, then bracket node creation with begin_shard(s). Nodes land on
/// their shard's simulator; connect() detects shard-crossing connections
/// and routes them through staging channels (see shard.hpp).
class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(sim) {}

  /// Add a standard ECMP switch (or pass a factory for a subclass).
  Switch* add_switch(const std::string& name);
  /// Register a custom switch built by `make(id, name)`.
  Switch* add_custom_switch(
      const std::string& name,
      const std::function<std::unique_ptr<Switch>(NodeId, std::string)>& make);

  /// Register an endpoint node (host/hypervisor) built by `make(id, name)`.
  /// The topology owns it; the typed pointer is returned to the caller.
  template <typename T, typename... Args>
  T* add_host(const std::string& name, Args&&... args) {
    auto node = std::make_unique<T>(next_id(), name, std::forward<Args>(args)...);
    T* raw = node.get();
    hosts_.push_back(raw);
    nodes_.push_back(std::move(node));
    shard_of_node_.push_back(cur_shard_);
    return raw;
  }

  /// Wire a<->b with two unidirectional links; returns {a->b, b->a}.
  std::pair<Link*, Link*> connect(Node* a, Node* b, const LinkConfig& cfg);

  /// Fail / restore both directions of a connection and re-run routing.
  void fail_connection(Link* a_to_b);
  void restore_connection(Link* a_to_b);

  /// Compute shortest-path ECMP routes from every switch to every host and
  /// install them. Called automatically by connect-time helpers? No —
  /// call once after building and after any manual link state change.
  void compute_routes();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const std::vector<Node*>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<Switch*>& switches() const { return switches_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const {
    return links_;
  }
  [[nodiscard]] Node* node_by_ip(IpAddr ip) const {
    return ip < nodes_.size() ? nodes_[ip].get() : nullptr;
  }
  /// The reverse direction of a link created by connect().
  [[nodiscard]] Link* reverse_of(Link* l) const;

  /// Number of route recomputations (visible to tests).
  [[nodiscard]] int route_epoch() const { return route_epoch_; }

  // --- sharding (net::ShardDomain) -----------------------------------------

  /// Attach the shard domain BEFORE adding nodes. Null = serial build (the
  /// default); every node then lives on the constructor's simulator and
  /// connect() never creates channels — the serial path is untouched.
  void set_shard_domain(ShardDomain* d) { domain_ = d; }
  [[nodiscard]] ShardDomain* shard_domain() const { return domain_; }

  /// Subsequent add_switch/add_host calls place nodes on shard `s` (modulo
  /// the domain's shard count; ignored when no domain is attached).
  void begin_shard(int s);
  /// The shard a node was built on (0 in serial builds).
  [[nodiscard]] int shard_of(const Node* n) const {
    return shard_of_node_[n->id()];
  }
  /// The simulator shard `s` runs on (the main simulator when unsharded).
  [[nodiscard]] sim::Simulator& shard_sim(int s);

 private:
  NodeId next_id() { return static_cast<NodeId>(nodes_.size()); }

  sim::Simulator& sim_;
  ShardDomain* domain_{nullptr};
  int cur_shard_{0};
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Switch*> switches_;
  std::vector<Node*> hosts_;
  std::vector<int> shard_of_node_;  ///< indexed by node id (dense)
  // links_[i] and links_[i^1] are the two directions of one connection.
  int route_epoch_{0};
};

/// Parameters of the paper's evaluation fabric (§5 "Topology"): a 2-tier
/// leaf-spine with parallel leaf-spine links and no oversubscription.
struct LeafSpineConfig {
  int n_leaves{2};
  int n_spines{2};
  int links_per_pair{2};    ///< parallel links between each leaf-spine pair
  int hosts_per_leaf{16};
  double host_gbps{10.0};
  double fabric_gbps{40.0};
  sim::Time link_propagation{5 * sim::kMicrosecond};
  std::int64_t host_queue_pkts{256};
  std::int64_t fabric_queue_pkts{256};
  std::int64_t ecn_threshold_pkts{20};   ///< paper: 20 MTU-sized packets
  std::int64_t mtu_bytes{1578};          ///< MTU + modeled header overhead
  bool int_telemetry{false};
  bool conga_metric{false};
};

/// A built leaf-spine fabric with handles to the pieces experiments touch.
struct LeafSpine {
  LeafSpineConfig cfg;
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;
  std::vector<std::vector<Node*>> hosts_by_leaf;
  /// fabric_links[leaf][spine][k] = the leaf->spine direction of parallel
  /// link k (use Topology::reverse_of for the other direction).
  std::vector<std::vector<std::vector<Link*>>> fabric_links;

  [[nodiscard]] int leaf_of_host(const Node* h) const;
};

/// Build the paper's leaf-spine testbed into `topo`. `make_host(id, name,
/// leaf_index)` creates each endpoint; switches are created with
/// `make_switch(id, name, leaf_index_or_minus1_for_spine)` when given,
/// else standard ECMP switches.
LeafSpine build_leaf_spine(
    Topology& topo, const LeafSpineConfig& cfg,
    const std::function<Node*(Topology&, const std::string&, int)>& make_host,
    const std::function<std::unique_ptr<Switch>(NodeId, std::string, int)>&
        make_switch = nullptr);

}  // namespace clove::net
