#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace clove::net {

/// Per-switch forwarding counters.
struct SwitchStats {
  std::uint64_t forwarded{0};
  std::uint64_t no_route_drops{0};
  std::uint64_t ttl_drops{0};
  std::uint64_t probe_replies{0};
};

/// One dense route-table entry: the ECMP next-hop port set for a
/// destination. Ports are stored inline (a switch radix in the simulated
/// fat-trees is small) with a heap spill only for port sets wider than
/// kInline, so the per-packet route lookup touches exactly one cache line
/// of the dense table and no pointer chases.
class PortSet {
 public:
  static constexpr std::size_t kInline = 8;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const int* data() const {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  [[nodiscard]] int operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] const int* begin() const { return data(); }
  [[nodiscard]] const int* end() const { return data() + size_; }

  void assign(const std::vector<int>& ports) {
    clear();
    if (ports.size() > kInline) {
      spill_ = ports;
    } else {
      for (std::size_t i = 0; i < ports.size(); ++i) inline_[i] = ports[i];
    }
    size_ = ports.size();
  }
  void clear() {
    size_ = 0;
    spill_.clear();  // keeps capacity: recomputing routes stays allocation-light
  }

 private:
  std::size_t size_{0};
  std::array<int, kInline> inline_{};
  std::vector<int> spill_;
};

/// A standard off-the-shelf L3 switch: shortest-path routes with ECMP
/// hashing over the wire 5-tuple, TTL handling, and TTL-expiry replies to
/// traceroute probes (the only switch feature Clove's path discovery needs).
///
/// The ECMP hash is salted with the switch id so different switches make
/// independent decisions, exactly like per-device hash seeds in real gear.
/// The next-hop is `hash % n_nexthops` — so any change in the size of the
/// next-hop set (e.g. a link failure) remaps all flows, the property that
/// forces Clove to re-run path discovery after topology changes (§3.1).
class Switch : public Node {
 public:
  Switch(sim::Simulator& sim, NodeId id, std::string name);

  void receive(PacketPtr pkt, int in_port) override;

  /// Replace the ECMP port set for a destination IP. IP addresses are node
  /// ids — small and dense — so routes live in a flat vector indexed by
  /// destination instead of a hash map: the per-packet lookup is a bounds
  /// check plus one array index.
  void set_route(IpAddr dst, std::vector<int> ports) {
    if (dst >= routes_.size()) routes_.resize(dst + 1);
    routes_[dst].assign(ports);
  }
  void clear_routes() {
    for (PortSet& e : routes_) e.clear();
  }

  [[nodiscard]] const PortSet* route(IpAddr dst) const {
    if (dst >= routes_.size() || routes_[dst].empty()) return nullptr;
    return &routes_[dst];
  }

  [[nodiscard]] const SwitchStats& stats() const { return stats_; }

  /// The ECMP port choice this switch would make for a tuple (exposed so
  /// tests can verify discovery finds the true mapping).
  [[nodiscard]] int ecmp_port(const FiveTuple& t, std::size_t n) const {
    return static_cast<int>(hash_tuple(t, id()) % n);
  }

 protected:
  /// Hook for subclasses (CONGA / LetFlow leaves) to override the egress
  /// port choice for routable packets. Default: the packet's cached wire
  /// prehash finalized with the switch-id salt (== hash_tuple(wire_tuple,
  /// id()) without re-mixing the tuple at every hop).
  virtual int select_port(const Packet& pkt, const PortSet& ports,
                          int in_port);

  /// Hook invoked before forwarding, after TTL handling (for feedback
  /// piggybacking etc.). Default: no-op.
  virtual void on_forward(Packet& pkt, int egress_port, int in_port);

  void forward(PacketPtr pkt, int in_port);
  void send_probe_reply(const Packet& probe, int in_port);

  sim::Simulator& sim_;
  SwitchStats stats_;

  struct Cells {
    telemetry::Counter* forwarded;
    telemetry::Counter* no_route_drops;
    telemetry::Counter* ttl_drops;
  };
  Cells cells_;

 private:
  std::vector<PortSet> routes_;  // indexed by destination IpAddr (node id)
};

}  // namespace clove::net
