#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace clove::net {

/// Per-switch forwarding counters.
struct SwitchStats {
  std::uint64_t forwarded{0};
  std::uint64_t no_route_drops{0};
  std::uint64_t ttl_drops{0};
  std::uint64_t probe_replies{0};
};

/// A standard off-the-shelf L3 switch: shortest-path routes with ECMP
/// hashing over the wire 5-tuple, TTL handling, and TTL-expiry replies to
/// traceroute probes (the only switch feature Clove's path discovery needs).
///
/// The ECMP hash is salted with the switch id so different switches make
/// independent decisions, exactly like per-device hash seeds in real gear.
/// The next-hop is `hash % n_nexthops` — so any change in the size of the
/// next-hop set (e.g. a link failure) remaps all flows, the property that
/// forces Clove to re-run path discovery after topology changes (§3.1).
class Switch : public Node {
 public:
  Switch(sim::Simulator& sim, NodeId id, std::string name);

  void receive(PacketPtr pkt, int in_port) override;

  /// Replace the ECMP port set for a destination IP.
  void set_route(IpAddr dst, std::vector<int> ports) {
    routes_[dst] = std::move(ports);
  }
  void clear_routes() { routes_.clear(); }

  [[nodiscard]] const std::vector<int>* route(IpAddr dst) const {
    auto it = routes_.find(dst);
    return it == routes_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const SwitchStats& stats() const { return stats_; }

  /// The ECMP port choice this switch would make for a tuple (exposed so
  /// tests can verify discovery finds the true mapping).
  [[nodiscard]] int ecmp_port(const FiveTuple& t, std::size_t n) const {
    return static_cast<int>(hash_tuple(t, id()) % n);
  }

 protected:
  /// Hook for subclasses (CONGA / LetFlow leaves) to override the egress
  /// port choice for routable packets. Default: ECMP hash over wire tuple.
  virtual int select_port(const Packet& pkt, const std::vector<int>& ports,
                          int in_port);

  /// Hook invoked before forwarding, after TTL handling (for feedback
  /// piggybacking etc.). Default: no-op.
  virtual void on_forward(Packet& pkt, int egress_port, int in_port);

  void forward(PacketPtr pkt, int in_port);
  void send_probe_reply(const Packet& probe, int in_port);

  sim::Simulator& sim_;
  SwitchStats stats_;

  struct Cells {
    telemetry::Counter* forwarded;
    telemetry::Counter* no_route_drops;
    telemetry::Counter* ttl_drops;
  };
  Cells cells_;

 private:
  std::unordered_map<IpAddr, std::vector<int>> routes_;
};

}  // namespace clove::net
