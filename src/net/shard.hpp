#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"

namespace clove::telemetry {
class Scope;
}

namespace clove::net {

class Link;
class ShardDomain;

/// The staging buffer of one cross-shard link direction. While a shard runs
/// a lookahead window, its outbound cross-shard packets are parked here
/// (field copies — the source pool gets its packet back immediately); at the
/// next barrier the coordinator drains every channel single-threaded and
/// schedules the deliveries on the destination shard's simulator.
///
/// Determinism contract: entries are staged in source-event order (per-link
/// tx completions are monotone in time), channels drain in creation order
/// (== link id order, a pure function of topology construction), and the
/// destination EventQueue breaks same-timestamp ties by insertion seq — so
/// cross-shard arrivals order by (timestamp, channel creation order, staging
/// order) no matter how many worker threads ran the window.
class ShardChannel {
 public:
  ShardChannel(Link* link, int src_shard, int dst_shard)
      : link_(link), src_shard_(src_shard), dst_shard_(dst_shard) {}

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  /// Park a packet for delivery at `deliver_at` (source-shard thread only).
  /// Takes the live journey out of the calling thread's flight recorder so
  /// the destination shard's recorder can adopt it at the drain.
  void stage(sim::Time deliver_at, PacketPtr pkt);

  /// The owning link went down: every staged packet is lost. Records the
  /// drops against the calling thread's flight recorder (the fault injector
  /// runs this under the source shard's scope).
  void flush_down(sim::Time now);

  [[nodiscard]] std::size_t staged_count() const { return staged_.size(); }
  [[nodiscard]] int src_shard() const { return src_shard_; }
  [[nodiscard]] int dst_shard() const { return dst_shard_; }
  [[nodiscard]] Link* link() const { return link_; }

 private:
  friend class ShardDomain;

  struct Staged {
    sim::Time at{0};
    bool has_journey{false};
    telemetry::Journey journey{};
    Packet pkt{};  ///< field copy; uid preserved across the re-home
  };

  Link* link_;
  int src_shard_;
  int dst_shard_;
  std::vector<Staged> staged_;
};

/// Everything one sharded run shares across shards: the per-shard
/// simulators (shard 0 is the caller's), the cross-shard channels, the
/// conservative lookahead bound, and the globally ordered action list
/// (faults, route recomputes) that must execute at a quiescent barrier.
///
/// Construction order: create the domain, attach it to a Topology
/// (set_shard_domain) BEFORE building the fabric, then hand both to
/// harness::ShardRunner. Each shard's PacketPool is pre-created here on the
/// construction thread with a disjoint uid range ((shard+1) << 48), so
/// worker threads never race the lazy pool creation and journeys keyed by
/// uid stay unique fabric-wide.
class ShardDomain {
 public:
  static constexpr std::uint64_t kUidStride = 1ull << 48;

  ShardDomain(sim::Simulator& main_sim, int shards, std::uint64_t seed = 1);
  ~ShardDomain();

  ShardDomain(const ShardDomain&) = delete;
  ShardDomain& operator=(const ShardDomain&) = delete;

  [[nodiscard]] int shard_count() const { return n_; }
  [[nodiscard]] sim::Simulator& sim(int shard) {
    return shard == 0 ? main_ : *extra_[static_cast<std::size_t>(shard - 1)];
  }
  /// Which shard owns `s`, or 0 when it is not one of ours.
  [[nodiscard]] int shard_of_sim(const sim::Simulator* s) const;

  // --- wiring (topology build time) ---------------------------------------
  ShardChannel* make_channel(Link* link, int src_shard, int dst_shard);
  /// Fold a cross-shard link's propagation delay into the lookahead bound.
  void note_lookahead(sim::Time propagation) {
    if (propagation < lookahead_) lookahead_ = propagation;
  }
  /// Conservative window width: the minimum latency any event needs to
  /// cross a shard boundary. kTimeNever when no cross-shard link exists.
  [[nodiscard]] sim::Time lookahead() const { return lookahead_; }

  // --- per-shard telemetry (set by harness::ShardRunner) ------------------
  void set_scope(int shard, telemetry::Scope* scope) {
    scopes_[static_cast<std::size_t>(shard)] = scope;
  }
  [[nodiscard]] telemetry::Scope* scope(int shard) const {
    return scopes_[static_cast<std::size_t>(shard)];
  }
  [[nodiscard]] telemetry::FlightRecorder* flight_of(int shard) const;
  /// Route recompute touches switches in every shard, so every shard's
  /// flight recorder gets the ordering-amnesty notification.
  void broadcast_route_change();

  // --- global actions (faults, route recomputes) --------------------------
  /// Register `fn` to run single-threaded at simulated time `at`, with all
  /// shards quiesced and their clocks advanced to `at`. Same-time actions
  /// run in registration order, matching the serial event queue's tiebreak
  /// for actions scheduled at arm time.
  void at_global(sim::Time at, std::function<void()> fn);
  [[nodiscard]] sim::Time next_global_time() const;
  [[nodiscard]] bool has_globals() const { return !globals_.empty(); }
  /// Run every global action with at <= t in (at, seq) order (actions may
  /// register new ones — a fault schedules its convergence recompute).
  void run_globals_until(sim::Time t);

  // --- barrier-time coordination (harness::ShardRunner) -------------------
  /// Drain every channel: re-home staged packets into the destination
  /// shard's pool and schedule their deliveries. Coordinator thread only,
  /// with all shards parked at the barrier.
  void drain_channels();

  /// Earliest pending event across all shards (kTimeNever when all idle).
  [[nodiscard]] sim::Time next_event_time();
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::size_t max_queue_hwm() const;

 private:
  sim::Simulator& main_;
  int n_;
  std::vector<std::unique_ptr<sim::Simulator>> extra_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  std::vector<telemetry::Scope*> scopes_;

  struct GlobalAction {
    sim::Time at{0};
    std::uint64_t seq{0};
    std::function<void()> fn;
  };
  std::vector<GlobalAction> globals_;
  std::uint64_t global_seq_{0};
  sim::Time lookahead_{sim::kTimeNever};
};

}  // namespace clove::net
