#include "net/shard.hpp"

#include <algorithm>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet_pool.hpp"
#include "telemetry/scope.hpp"

namespace clove::net {

void ShardChannel::stage(sim::Time deliver_at, PacketPtr pkt) {
  Staged& s = staged_.emplace_back();
  s.at = deliver_at;
  s.pkt = *pkt;
  if (auto* fr = telemetry::flight()) {
    s.has_journey = fr->take_journey(pkt->uid, &s.journey);
  }
  // `pkt` returns to the source pool here; the destination shard re-homes
  // the copy into its own pool at the barrier drain.
}

void ShardChannel::flush_down(sim::Time now) {
  if (staged_.empty()) {
    return;
  }
  if (auto* fr = telemetry::flight()) {
    const std::uint32_t at_node =
        link_->dst() != nullptr ? link_->dst()->id() : 0;
    for (Staged& s : staged_) {
      // The journey left this recorder at stage(); bring it back so the
      // drop finalizes with its full hop history.
      if (s.has_journey) fr->adopt_journey(s.journey);
      fr->on_drop(s.pkt.uid, at_node, link_->name(),
                  telemetry::JourneyOutcome::kDropLinkDown, now);
    }
  }
  staged_.clear();
}

ShardDomain::ShardDomain(sim::Simulator& main_sim, int shards,
                         std::uint64_t seed)
    : main_(main_sim), n_(shards < 1 ? 1 : shards) {
  scopes_.assign(static_cast<std::size_t>(n_), nullptr);
  extra_.reserve(static_cast<std::size_t>(n_ - 1));
  for (int s = 1; s < n_; ++s) {
    extra_.push_back(std::make_unique<sim::Simulator>(seed + s));
  }
  // Pre-create every pool on this thread (the lazy extension-slot claim must
  // not race worker threads) and give each a disjoint uid range.
  for (int s = 0; s < n_; ++s) {
    PacketPool::of(sim(s)).set_uid_base(kUidStride * (s + 1));
  }
}

ShardDomain::~ShardDomain() = default;

int ShardDomain::shard_of_sim(const sim::Simulator* s) const {
  for (std::size_t i = 0; i < extra_.size(); ++i) {
    if (extra_[i].get() == s) return static_cast<int>(i) + 1;
  }
  return 0;
}

ShardChannel* ShardDomain::make_channel(Link* link, int src_shard,
                                        int dst_shard) {
  channels_.push_back(
      std::make_unique<ShardChannel>(link, src_shard, dst_shard));
  return channels_.back().get();
}

telemetry::FlightRecorder* ShardDomain::flight_of(int shard) const {
  telemetry::Scope* sc = scopes_[static_cast<std::size_t>(shard)];
  return sc != nullptr ? sc->flight_recorder() : nullptr;
}

void ShardDomain::broadcast_route_change() {
  // The ambient recorder (serial runs, or the coordinator between windows)
  // plus every registered shard scope, each notified exactly once.
  std::vector<telemetry::FlightRecorder*> seen;
  if (auto* fr = telemetry::flight()) {
    fr->on_route_change();
    seen.push_back(fr);
  }
  for (telemetry::Scope* sc : scopes_) {
    if (sc == nullptr) continue;
    auto* fr = sc->flight_recorder();
    if (fr == nullptr) continue;
    bool done = false;
    for (auto* f : seen) done = done || f == fr;
    if (done) continue;
    fr->on_route_change();
    seen.push_back(fr);
  }
}

void ShardDomain::at_global(sim::Time at, std::function<void()> fn) {
  globals_.push_back(GlobalAction{at, global_seq_++, std::move(fn)});
}

sim::Time ShardDomain::next_global_time() const {
  sim::Time t = sim::kTimeNever;
  for (const GlobalAction& g : globals_) t = std::min(t, g.at);
  return t;
}

void ShardDomain::run_globals_until(sim::Time t) {
  for (;;) {
    std::size_t best = globals_.size();
    for (std::size_t i = 0; i < globals_.size(); ++i) {
      if (globals_[i].at > t) continue;
      if (best == globals_.size() || globals_[i].at < globals_[best].at ||
          (globals_[i].at == globals_[best].at &&
           globals_[i].seq < globals_[best].seq)) {
        best = i;
      }
    }
    if (best == globals_.size()) return;
    GlobalAction act = std::move(globals_[best]);
    globals_.erase(globals_.begin() + static_cast<std::ptrdiff_t>(best));
    // All shards are quiesced up to `t` >= act.at; align their clocks so the
    // action (and anything it schedules) sees a consistent now().
    for (int s = 0; s < n_; ++s) sim(s).advance_to(act.at);
    act.fn();
  }
}

void ShardDomain::drain_channels() {
  for (auto& chp : channels_) {
    ShardChannel& ch = *chp;
    if (ch.staged_.empty()) continue;
    sim::Simulator& dsim = sim(ch.dst_shard_);
    PacketPool& pool = PacketPool::of(dsim);
    telemetry::FlightRecorder* fr = flight_of(ch.dst_shard_);
    Link* link = ch.link_;
    for (ShardChannel::Staged& s : ch.staged_) {
      if (s.has_journey && fr != nullptr) fr->adopt_journey(s.journey);
      PacketPtr p = pool.acquire();
      *p = s.pkt;  // field copy restores the original uid
      const sim::Time at = s.at;
      dsim.schedule_at(at, [link, at, p = std::move(p)]() mutable {
        link->remote_deliver(std::move(p), at);
      });
    }
    ch.staged_.clear();
  }
}

sim::Time ShardDomain::next_event_time() {
  sim::Time t = sim::kTimeNever;
  for (int s = 0; s < n_; ++s) t = std::min(t, sim(s).next_event_time());
  return t;
}

std::uint64_t ShardDomain::total_events() const {
  std::uint64_t n = main_.events_processed();
  for (const auto& s : extra_) n += s->events_processed();
  return n;
}

std::size_t ShardDomain::max_queue_hwm() const {
  std::size_t m = main_.queue_high_water();
  for (const auto& s : extra_) m = std::max(m, s->queue_high_water());
  return m;
}

}  // namespace clove::net
