#pragma once

/// Umbrella header: the full public API of the Clove reproduction.
///
/// Most users want the harness (build the paper's testbed, pick a scheme,
/// run a workload):
///
///   #include "clove/clove.hpp"
///
///   clove::harness::ExperimentConfig cfg = clove::harness::make_testbed_profile();
///   cfg.scheme = clove::harness::Scheme::kCloveEcn;
///   clove::workload::ClientServerConfig wl;
///   wl.load = 0.7;
///   auto result = clove::harness::run_fct_experiment(cfg, wl);
///
/// Lower layers (simulator, network, transport, overlay, policies) are all
/// reachable from here for custom topologies and scenarios; see README.md
/// for the architecture map.

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "lb/clove_int.hpp"
#include "lb/clove_latency.hpp"
#include "lb/ecmp.hpp"
#include "lb/edge_flowlet.hpp"
#include "lb/policy.hpp"
#include "lb/presto.hpp"
#include "net/conga_switch.hpp"
#include "net/letflow_switch.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "overlay/flowlet.hpp"
#include "overlay/hypervisor.hpp"
#include "overlay/paths.hpp"
#include "overlay/reorder_buffer.hpp"
#include "overlay/traceroute.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "telemetry/dre.hpp"
#include "transport/mptcp.hpp"
#include "transport/tcp.hpp"
#include "workload/client_server.hpp"
#include "workload/flow_size.hpp"
