#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "lb/policy.hpp"

namespace clove::lb {

struct PrestoConfig {
  std::uint32_t flowcell_bytes{64 * 1024};  ///< TSO-segment-sized flowcells
};

/// Presto adapted to L3 ECMP as the paper's §5 reimplementation does: each
/// flow is chopped into fixed-size 64 KB flowcells; flowcells rotate through
/// the discovered encapsulation source ports in a (weighted) round-robin,
/// oblivious to congestion. The receiving vswitch re-assembles out-of-order
/// flowcells before the VM sees them (VSwitchConfig::reorder_buffer).
///
/// For asymmetric topologies the real Presto needs a centralized controller
/// to push path weights; the paper (and we) grant it ideal static weights
/// via set_weight_fn().
class PrestoPolicy : public Policy {
 public:
  /// Given a path, return its static weight (default: uniform).
  using WeightFn = std::function<double(const overlay::PathInfo&)>;

  explicit PrestoPolicy(const PrestoConfig& cfg = {}) : cfg_(cfg) {}

  void set_weight_fn(WeightFn fn) { weight_fn_ = std::move(fn); }

  using Policy::pick_port;

  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now, PickInfo* info) override {
    (void)now;
    auto dit = dsts_.find(dst);
    if (dit == dsts_.end() || dit->second.paths.empty()) {
      if (info != nullptr) *info = PickInfo{};
      return static_cast<std::uint16_t>(
          overlay::kEphemeralBase +
          net::hash_tuple(inner.inner, 0x9137u) % overlay::kEphemeralCount);
    }
    DstState& st = dit->second;
    FlowState& fs = flows_[inner.inner];
    bool new_cell = false;
    if (fs.cell_bytes == 0 || fs.cell_bytes >= cfg_.flowcell_bytes) {
      // New flowcell: advance the per-flow weighted round-robin.
      fs.path_idx = wrr_pick(st, fs);
      fs.cell_bytes = 0;
      ++fs.flowcell_id;
      new_cell = true;
    }
    fs.cell_bytes += inner.payload;
    if (fs.path_idx >= st.paths.size()) fs.path_idx = 0;
    if (info != nullptr) {
      info->new_flowlet = new_cell;
      info->flowlet_id = fs.flowcell_id;
      info->reason = "flowcell";
      info->metric =
          fs.path_idx < st.weights.size() ? st.weights[fs.path_idx] : 0.0;
      info->n_paths = static_cast<std::uint16_t>(st.paths.size());
    }
    return st.paths[fs.path_idx].port;
  }

  void on_paths_updated(net::IpAddr dst, const overlay::PathSet& paths) override {
    DstState& st = dsts_[dst];
    st.paths = paths.paths;
    st.weights.clear();
    double total = 0.0;
    for (const auto& p : st.paths) {
      const double w = weight_fn_ ? weight_fn_(p) : 1.0;
      st.weights.push_back(w);
      total += w;
    }
    if (total > 0) {
      for (double& w : st.weights) w /= total;
    }
  }

  [[nodiscard]] std::string name() const override { return "presto"; }
  [[nodiscard]] bool needs_discovery() const override { return true; }
  /// Presto expects receiver-side flowcell reassembly.
  [[nodiscard]] static bool wants_reorder_buffer() { return true; }
  [[nodiscard]] bool requires_reassembly() const override { return true; }

 private:
  struct DstState {
    std::vector<overlay::PathInfo> paths;
    std::vector<double> weights;
  };
  struct FlowState {
    std::uint64_t cell_bytes{0};
    std::uint32_t flowcell_id{0};
    std::size_t path_idx{0};
    std::vector<double> wrr_credit;
  };

  std::size_t wrr_pick(const DstState& st, FlowState& fs) {
    if (fs.wrr_credit.size() != st.weights.size()) {
      fs.wrr_credit.assign(st.weights.size(), 0.0);
    }
    double total = 0.0;
    std::size_t best = 0;
    double best_credit = -1e300;
    for (std::size_t i = 0; i < st.weights.size(); ++i) {
      fs.wrr_credit[i] += st.weights[i];
      total += st.weights[i];
      if (fs.wrr_credit[i] > best_credit) {
        best_credit = fs.wrr_credit[i];
        best = i;
      }
    }
    fs.wrr_credit[best] -= total;
    return best;
  }

  PrestoConfig cfg_;
  WeightFn weight_fn_;
  std::unordered_map<net::IpAddr, DstState> dsts_;
  std::unordered_map<net::FiveTuple, FlowState, net::FiveTupleHash> flows_;
};

}  // namespace clove::lb
