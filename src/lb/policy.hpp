#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "overlay/flowlet.hpp"
#include "overlay/paths.hpp"
#include "sim/time.hpp"

namespace clove::lb {

/// Why pick_port() returned the port it did — the flight recorder's
/// decision annotation. Policies fill it only when the caller passes a
/// non-null pointer, so the hot path without a recorder is unchanged.
struct PickInfo {
  bool new_flowlet{false};
  std::uint32_t flowlet_id{0};   ///< flowlet / Presto flowcell id (0 = per-flow)
  const char* reason{"flow-hash"};  ///< decision rule that fired
  double metric{0.0};   ///< the rule's operand: WRR weight, path util, delay us
  std::uint16_t n_paths{0};  ///< discovered candidate paths at decision time
};

/// The decision interface of an edge load balancer living inside a source
/// hypervisor's virtual switch. One Policy instance per hypervisor; all
/// per-destination state is keyed internally by destination hypervisor IP.
///
/// The vswitch calls pick_port() for every outgoing tenant data packet;
/// policies implement their own granularity internally (per-flow hash,
/// flowlets, Presto flowcells, ...).
///
/// Contract, in the order the hypervisor drives it:
///  1. set_owner() once at attach (names the emitter in trace events).
///  2. on_paths_updated() whenever discovery completes a round for a dst —
///     including with a SMALLER or EMPTY set after a path-health eviction.
///     Policies must carry what per-path state they can across refreshes
///     (keyed by path signature) and must tolerate an empty set: pick_port()
///     is still called and must return a usable port (flow-hash fallback),
///     never crash or stall.
///  3. pick_port() per data packet; on_feedback() per arriving feedback
///     packet. Both may run millions of times — no allocation on the steady
///     path.
///  4. on_path_evicted() when path-health declares a port dead, immediately
///     before discovery publishes the shrunken set. Policies should drop the
///     port's state and renormalize weights; flowlets pinned to the port
///     will be re-picked on their next packet. The default no-op is correct
///     for policies whose on_paths_updated() rebuilds from scratch.
/// The capability queries (wants_ect / wants_int / needs_discovery /
/// requires_reassembly) are called once at attach time and must be
/// constant for the policy's lifetime.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Choose the overlay encapsulation source port for `inner` headed to the
  /// hypervisor at `dst`. Called per data packet. When `info` is non-null
  /// the policy explains its decision through it (flight recorder).
  virtual std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                                  sim::Time now, PickInfo* info) = 0;

  /// Convenience overload for callers that do not need the annotation.
  /// Derived classes re-expose it with `using Policy::pick_port;`.
  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now) {
    return pick_port(inner, dst, now, nullptr);
  }

  /// Path discovery produced (or refreshed) the port->path mapping for dst.
  virtual void on_paths_updated(net::IpAddr dst, const overlay::PathSet& paths) {
    (void)dst;
    (void)paths;
  }

  /// Path-health monitoring evicted `port` for dst (keepalives unanswered /
  /// no feedback within the staleness window). Called before the shrunken
  /// path set is re-published via on_paths_updated(); policies that keep
  /// per-port state (weights, congestion marks) should drop the entry and
  /// renormalize so traffic re-spreads instantly instead of waiting for the
  /// next discovery round.
  virtual void on_path_evicted(net::IpAddr dst, std::uint16_t port,
                               sim::Time now) {
    (void)dst;
    (void)port;
    (void)now;
  }

  /// Feedback bits arrived from the destination hypervisor (ECN/INT/latency).
  virtual void on_feedback(net::IpAddr dst, const net::CloveFeedback& fb,
                           sim::Time now) {
    (void)dst;
    (void)fb;
    (void)now;
  }

  /// Whether outgoing packets should carry ECT on the outer header.
  [[nodiscard]] virtual bool wants_ect() const { return false; }
  /// Whether outgoing packets should request INT telemetry.
  [[nodiscard]] virtual bool wants_int() const { return false; }
  /// Whether this policy needs traceroute path discovery to function.
  [[nodiscard]] virtual bool needs_discovery() const { return false; }
  /// Whether the scheme's correctness depends on receiver-side reassembly
  /// restoring send order before the VM (Presto's flowcell spraying). The
  /// flight recorder audits VM-boundary ordering only where order is
  /// actually promised: when this is true, or when a reorder buffer is
  /// installed — flowlet schemes merely make reordering unlikely, so an
  /// occasional cross-flowlet overtake is legal there, not a violation.
  [[nodiscard]] virtual bool requires_reassembly() const { return false; }

  /// §3.2 "Reacting to congestion": when every known path to dst is
  /// congested, the vswitch stops masking and relays ECN into the VM.
  [[nodiscard]] virtual bool all_paths_congested(net::IpAddr dst,
                                                 sim::Time now) const {
    (void)dst;
    (void)now;
    return false;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// The policy's flowlet table, or null for policies that keep none
  /// (ECMP, Presto flowcells). The engine profiler folds its occupancy and
  /// probe-length digest into the run's self-profile; never called on the
  /// datapath.
  [[nodiscard]] virtual overlay::FlowletTracker* flowlet_tracker() {
    return nullptr;
  }

  /// The owning hypervisor tags the policy with its host name so policy
  /// trace events (weight updates, flowlet creation) identify their emitter.
  void set_owner(std::string owner) { owner_ = std::move(owner); }
  [[nodiscard]] const std::string& owner() const { return owner_; }

  /// Fires when congestion feedback makes the policy reduce the weight of
  /// `port` toward `dst` — the signal the hybrid flow/packet engine uses to
  /// demote fluid elephants riding a path the policy is steering away from.
  /// Set by the owning hypervisor; policies that re-weight on feedback
  /// (Clove-ECN/INT/latency) invoke it after applying the reduction.
  std::function<void(net::IpAddr dst, std::uint16_t port)> on_port_degraded;

 private:
  std::string owner_;
};

}  // namespace clove::lb
