#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "overlay/paths.hpp"
#include "sim/time.hpp"

namespace clove::lb {

/// Why pick_port() returned the port it did — the flight recorder's
/// decision annotation. Policies fill it only when the caller passes a
/// non-null pointer, so the hot path without a recorder is unchanged.
struct PickInfo {
  bool new_flowlet{false};
  std::uint32_t flowlet_id{0};   ///< flowlet / Presto flowcell id (0 = per-flow)
  const char* reason{"flow-hash"};  ///< decision rule that fired
  double metric{0.0};   ///< the rule's operand: WRR weight, path util, delay us
  std::uint16_t n_paths{0};  ///< discovered candidate paths at decision time
};

/// The decision interface of an edge load balancer living inside a source
/// hypervisor's virtual switch. One Policy instance per hypervisor; all
/// per-destination state is keyed internally by destination hypervisor IP.
///
/// The vswitch calls pick_port() for every outgoing tenant data packet;
/// policies implement their own granularity internally (per-flow hash,
/// flowlets, Presto flowcells, ...).
class Policy {
 public:
  virtual ~Policy() = default;

  /// Choose the overlay encapsulation source port for `inner` headed to the
  /// hypervisor at `dst`. Called per data packet. When `info` is non-null
  /// the policy explains its decision through it (flight recorder).
  virtual std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                                  sim::Time now, PickInfo* info) = 0;

  /// Convenience overload for callers that do not need the annotation.
  /// Derived classes re-expose it with `using Policy::pick_port;`.
  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now) {
    return pick_port(inner, dst, now, nullptr);
  }

  /// Path discovery produced (or refreshed) the port->path mapping for dst.
  virtual void on_paths_updated(net::IpAddr dst, const overlay::PathSet& paths) {
    (void)dst;
    (void)paths;
  }

  /// Feedback bits arrived from the destination hypervisor (ECN/INT/latency).
  virtual void on_feedback(net::IpAddr dst, const net::CloveFeedback& fb,
                           sim::Time now) {
    (void)dst;
    (void)fb;
    (void)now;
  }

  /// Whether outgoing packets should carry ECT on the outer header.
  [[nodiscard]] virtual bool wants_ect() const { return false; }
  /// Whether outgoing packets should request INT telemetry.
  [[nodiscard]] virtual bool wants_int() const { return false; }
  /// Whether this policy needs traceroute path discovery to function.
  [[nodiscard]] virtual bool needs_discovery() const { return false; }
  /// Whether the scheme's correctness depends on receiver-side reassembly
  /// restoring send order before the VM (Presto's flowcell spraying). The
  /// flight recorder audits VM-boundary ordering only where order is
  /// actually promised: when this is true, or when a reorder buffer is
  /// installed — flowlet schemes merely make reordering unlikely, so an
  /// occasional cross-flowlet overtake is legal there, not a violation.
  [[nodiscard]] virtual bool requires_reassembly() const { return false; }

  /// §3.2 "Reacting to congestion": when every known path to dst is
  /// congested, the vswitch stops masking and relays ECN into the VM.
  [[nodiscard]] virtual bool all_paths_congested(net::IpAddr dst,
                                                 sim::Time now) const {
    (void)dst;
    (void)now;
    return false;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// The owning hypervisor tags the policy with its host name so policy
  /// trace events (weight updates, flowlet creation) identify their emitter.
  void set_owner(std::string owner) { owner_ = std::move(owner); }
  [[nodiscard]] const std::string& owner() const { return owner_; }

 private:
  std::string owner_;
};

}  // namespace clove::lb
