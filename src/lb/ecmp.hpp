#pragma once

#include <set>
#include <utility>

#include "lb/policy.hpp"

namespace clove::lb {

/// The status-quo baseline (§5 "ECMP"): the outer source port is a hash of
/// the inner 5-tuple, constant for the flow's lifetime, so the physical
/// fabric's ECMP pins every flow to one path regardless of congestion.
///
/// With `migrate_on_evict` the policy additionally honors path-health
/// evictions (the MPTCP-over-edge configuration of §5): evicted (dst, port)
/// pairs are excluded and the hash is re-salted per attempt until it lands on
/// a live port — still deterministic and congestion-oblivious, but no longer
/// blackhole-pinned. Eviction data requires the traceroute/path-health
/// machinery, so needs_discovery() is true only in this mode; the plain
/// baseline stays discovery-free and never recovers (by design).
class EcmpPolicy : public Policy {
 public:
  using Policy::pick_port;

  explicit EcmpPolicy(bool migrate_on_evict = false)
      : migrate_(migrate_on_evict) {}

  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now, PickInfo* info) override {
    (void)now;
    if (info != nullptr) *info = PickInfo{};  // per-flow hash, no flowlets
    std::uint16_t port = hash_port(inner, /*attempt=*/0);
    if (migrate_ && !evicted_.empty()) {
      // Bounded re-hash: every live port is reachable within kEphemeralCount
      // salts; give up back to the base pick if somehow all are evicted.
      for (std::uint32_t attempt = 1;
           attempt <= overlay::kEphemeralCount &&
           evicted_.count({dst, port}) != 0;
           ++attempt) {
        port = hash_port(inner, attempt);
      }
    }
    return port;
  }

  void on_path_evicted(net::IpAddr dst, std::uint16_t port,
                       sim::Time /*now*/) override {
    if (migrate_) evicted_.insert({dst, port});
  }

  void on_paths_updated(net::IpAddr dst,
                        const overlay::PathSet& paths) override {
    if (!migrate_) return;
    // A republished set readmits its members: drop eviction marks for ports
    // the daemon once again advertises toward this destination.
    for (const overlay::PathInfo& p : paths.paths) evicted_.erase({dst, p.port});
  }

  [[nodiscard]] bool needs_discovery() const override { return migrate_; }

  [[nodiscard]] std::string name() const override {
    return migrate_ ? "ecmp-migrate" : "ecmp";
  }

 private:
  [[nodiscard]] static std::uint16_t hash_port(const net::Packet& inner,
                                               std::uint32_t attempt) {
    return static_cast<std::uint16_t>(
        overlay::kEphemeralBase +
        net::hash_tuple(inner.inner, /*salt=*/0xEC3Bu + attempt) %
            overlay::kEphemeralCount);
  }

  bool migrate_;
  /// Evicted (dst, port) pairs; ordered so behavior is deterministic and
  /// iteration (tests) is stable.
  std::set<std::pair<net::IpAddr, std::uint16_t>> evicted_;
};

}  // namespace clove::lb
