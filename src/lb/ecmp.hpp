#pragma once

#include "lb/policy.hpp"

namespace clove::lb {

/// The status-quo baseline (§5 "ECMP"): the outer source port is a hash of
/// the inner 5-tuple, constant for the flow's lifetime, so the physical
/// fabric's ECMP pins every flow to one path regardless of congestion.
class EcmpPolicy : public Policy {
 public:
  using Policy::pick_port;

  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now, PickInfo* info) override {
    (void)dst;
    (void)now;
    if (info != nullptr) *info = PickInfo{};  // per-flow hash, no flowlets
    return static_cast<std::uint16_t>(
        overlay::kEphemeralBase +
        net::hash_tuple(inner.inner, /*salt=*/0xEC3Bu) % overlay::kEphemeralCount);
  }

  [[nodiscard]] std::string name() const override { return "ecmp"; }
};

}  // namespace clove::lb
