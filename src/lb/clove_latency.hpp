#pragma once

#include <unordered_map>
#include <vector>

#include "lb/policy.hpp"
#include "overlay/flowlet.hpp"
#include "sim/random.hpp"

namespace clove::lb {

struct CloveLatencyConfig {
  sim::Time flowlet_gap{100 * sim::kMicrosecond};
  double latency_ewma{0.5};
  sim::Time latency_expiry{1 * sim::kMillisecond};
};

/// Clove-Latency (§7 "Use of path latency"): an extension the paper sketches
/// for fabrics without INT and with erratic ECN. NIC-level timestamping plus
/// synchronized clocks let the destination hypervisor measure each packet's
/// one-way delay; it relays the per-path latency back and the source routes
/// new flowlets on the lowest-latency path. In this simulator the clocks are
/// perfectly synchronized by construction (sent_at is stamped at encap).
class CloveLatencyPolicy : public Policy {
 public:
  explicit CloveLatencyPolicy(const CloveLatencyConfig& cfg = {},
                              std::uint64_t seed = 0x1a7e)
      : cfg_(cfg), flowlets_(cfg.flowlet_gap), rng_(seed) {}

  using Policy::pick_port;

  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now, PickInfo* info) override {
    auto t = flowlets_.touch(inner.inner, now);
    if (info != nullptr) {
      info->new_flowlet = t.new_flowlet;
      info->flowlet_id = t.flowlet_id;
    }
    auto it = dsts_.find(dst);
    if (it == dsts_.end() || it->second.paths.empty()) {
      if (info != nullptr) info->reason = "flowlet-hash";
      if (!t.new_flowlet) return t.port;
      const std::uint16_t port = static_cast<std::uint16_t>(
          overlay::kEphemeralBase +
          net::hash_tuple(inner.inner, 0x1a7u ^ t.flowlet_id) %
              overlay::kEphemeralCount);
      t.set_port(port);
      return port;
    }
    DstState& st = it->second;
    if (info != nullptr) {
      info->reason = "least-latency";
      info->n_paths = static_cast<std::uint16_t>(st.paths.size());
    }
    if (!t.new_flowlet) {
      for (const auto& p : st.paths) {
        if (p.info.port == t.port) {
          if (info != nullptr) info->metric = effective_latency(p, now);
          return t.port;
        }
      }
    }
    double best = 1e300;
    std::size_t chosen = 0;
    int n_best = 0;
    for (std::size_t i = 0; i < st.paths.size(); ++i) {
      const double l = effective_latency(st.paths[i], now);
      if (l < best - 1e-9) {
        best = l;
        chosen = i;
        n_best = 1;
      } else if (l <= best + 1e-9) {
        ++n_best;
        if (rng_.uniform_int(static_cast<std::uint64_t>(n_best)) == 0) chosen = i;
      }
    }
    const std::uint16_t port = st.paths[chosen].info.port;
    t.set_port(port);
    if (info != nullptr) info->metric = effective_latency(st.paths[chosen], now);
    return port;
  }

  void on_paths_updated(net::IpAddr dst, const overlay::PathSet& paths) override {
    DstState& st = dsts_[dst];
    std::unordered_map<std::string, PathState> old;
    for (auto& p : st.paths) old.emplace(p.info.signature(), p);
    st.paths.clear();
    for (const overlay::PathInfo& info : paths.paths) {
      PathState ps;
      ps.info = info;
      auto it = old.find(info.signature());
      if (it != old.end()) {
        ps.latency_us = it->second.latency_us;
        ps.updated = it->second.updated;
      }
      st.paths.push_back(std::move(ps));
    }
  }

  void on_feedback(net::IpAddr dst, const net::CloveFeedback& fb,
                   sim::Time now) override {
    if (!fb.present || !fb.has_latency) return;
    auto it = dsts_.find(dst);
    if (it == dsts_.end()) return;
    for (auto& p : it->second.paths) {
      if (p.info.port == fb.port) {
        const double sample = sim::to_microseconds(fb.latency);
        p.latency_us = p.updated < 0 ? sample
                                     : cfg_.latency_ewma * sample +
                                           (1.0 - cfg_.latency_ewma) * p.latency_us;
        p.updated = now;
        return;
      }
    }
  }

  [[nodiscard]] bool needs_discovery() const override { return true; }
  [[nodiscard]] std::string name() const override { return "clove-latency"; }
  [[nodiscard]] overlay::FlowletTracker* flowlet_tracker() override {
    return &flowlets_;
  }

 private:
  struct PathState {
    overlay::PathInfo info;
    double latency_us{0.0};
    sim::Time updated{-1};
  };
  struct DstState {
    std::vector<PathState> paths;
  };

  [[nodiscard]] double effective_latency(const PathState& p, sim::Time now) const {
    if (p.updated < 0 || now - p.updated > cfg_.latency_expiry) return 0.0;
    return p.latency_us;
  }

  CloveLatencyConfig cfg_;
  overlay::FlowletTracker flowlets_;
  sim::Rng rng_;
  std::unordered_map<net::IpAddr, DstState> dsts_;
};

}  // namespace clove::lb
