#pragma once

#include "lb/policy.hpp"
#include "overlay/flowlet.hpp"

namespace clove::lb {

/// Edge-Flowlet (§3.2 / §5): congestion-oblivious flowlet switching at the
/// edge. The outer source port is a hash of the inner 5-tuple plus the
/// flowlet id, i.e. a fresh pseudo-random port per flowlet. Despite knowing
/// nothing about path state it inherits indirect congestion awareness:
/// congested paths delay ACK clocking, which opens inter-packet gaps, which
/// spawns new flowlets that hash elsewhere.
class EdgeFlowletPolicy : public Policy {
 public:
  explicit EdgeFlowletPolicy(sim::Time flowlet_gap = 100 * sim::kMicrosecond)
      : flowlets_(flowlet_gap) {}

  using Policy::pick_port;

  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now, PickInfo* info) override {
    (void)dst;
    auto t = flowlets_.touch(inner.inner, now);
    if (info != nullptr) {
      info->new_flowlet = t.new_flowlet;
      info->flowlet_id = t.flowlet_id;
      info->reason = "flowlet-hash";
    }
    if (!t.new_flowlet) return t.port;
    const std::uint16_t port = static_cast<std::uint16_t>(
        overlay::kEphemeralBase +
        net::hash_tuple(inner.inner, 0xF10Du ^ t.flowlet_id) %
            overlay::kEphemeralCount);
    t.set_port(port);
    return port;
  }

  [[nodiscard]] std::string name() const override { return "edge-flowlet"; }
  [[nodiscard]] overlay::FlowletTracker* flowlet_tracker() override {
    return &flowlets_;
  }
  [[nodiscard]] overlay::FlowletTracker& flowlets() { return flowlets_; }

 private:
  overlay::FlowletTracker flowlets_;
};

}  // namespace clove::lb
