#include "lb/clove_ecn.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "telemetry/hub.hpp"

namespace clove::lb {

void CloveEcnPolicy::on_paths_updated(net::IpAddr dst,
                                      const overlay::PathSet& paths) {
  DstState& st = dsts_[dst];

  // Carry state across a remap by path signature (§3.1 optimization): the
  // same physical path keeps its learned weight when only the source port
  // that reaches it changed.
  std::unordered_map<std::string, PathState> old_by_sig;
  for (auto& p : st.paths) old_by_sig.emplace(p.info.signature(), p);

  st.paths.clear();
  for (const overlay::PathInfo& info : paths.paths) {
    PathState ps;
    ps.info = info;
    auto it = old_by_sig.find(info.signature());
    if (it != old_by_sig.end()) {
      ps.weight = it->second.weight;
      ps.congested_at = it->second.congested_at;
      ps.latency = it->second.latency;
    }
    st.paths.push_back(std::move(ps));
  }

  // Normalize; brand-new paths start at the uniform share.
  const double uniform = st.paths.empty() ? 0.0 : 1.0 / st.paths.size();
  double total = 0.0;
  for (auto& p : st.paths) {
    if (p.weight <= 0.0) p.weight = uniform;
    total += p.weight;
  }
  if (total > 0.0) {
    for (auto& p : st.paths) p.weight /= total;
  }

  // Announce the new port->path mapping so trace consumers can retire ports
  // from earlier discovery rounds; `via` is the spine the path crosses.
  // on_paths_updated has no time argument (discovery drives it), so the
  // events carry the last data-path timestamp this policy has seen.
  if (telemetry::tracing()) {
    for (const auto& p : st.paths) {
      char detail[48];
      std::snprintf(detail, sizeof(detail), "dst %u via %u remap", dst,
                    p.info.hops.size() > 1 ? p.info.hops[1].node : 0);
      telemetry::trace(telemetry::Category::kWeight, last_now_, owner(),
                       "clove.weight", detail, p.weight, p.info.port);
    }
  }
}

void CloveEcnPolicy::apply_recovery(DstState& st, sim::Time now) {
  if (st.paths.empty() || cfg_.recovery_interval <= 0) return;
  const std::int64_t steps = (now - st.last_recovery) / cfg_.recovery_interval;
  if (steps <= 0) return;
  st.last_recovery += steps * cfg_.recovery_interval;
  const double uniform = 1.0 / st.paths.size();
  // w <- w*(1-r)^steps + uniform*(1-(1-r)^steps)
  double keep = 1.0;
  const double f = 1.0 - cfg_.recovery_rate;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(steps, 64); ++i) keep *= f;
  for (auto& p : st.paths) {
    p.weight = p.weight * keep + uniform * (1.0 - keep);
  }
}

std::size_t CloveEcnPolicy::wrr_pick(DstState& st) {
  // Smooth weighted round-robin: add each weight to its credit, pick the
  // largest credit, subtract the total. Deterministic and burst-free.
  double total = 0.0;
  std::size_t best = 0;
  double best_credit = -1e300;
  for (std::size_t i = 0; i < st.paths.size(); ++i) {
    st.paths[i].wrr_credit += st.paths[i].weight;
    total += st.paths[i].weight;
    if (st.paths[i].wrr_credit > best_credit) {
      best_credit = st.paths[i].wrr_credit;
      best = i;
    }
  }
  st.paths[best].wrr_credit -= total;
  return best;
}

sim::Time CloveEcnPolicy::gap_for(const DstState* st) const {
  if (!cfg_.adaptive_gap || st == nullptr) return cfg_.flowlet_gap;
  // §7: widen the gap by the observed one-way-delay spread between paths so
  // a flowlet moving from a slow path to a fast one cannot overtake its
  // predecessor's tail.
  sim::Time lo = sim::kTimeNever, hi = 0;
  for (const auto& p : st->paths) {
    if (p.latency < 0) continue;
    lo = std::min(lo, p.latency);
    hi = std::max(hi, p.latency);
  }
  if (lo == sim::kTimeNever || hi <= lo) return cfg_.flowlet_gap;
  return cfg_.flowlet_gap +
         static_cast<sim::Time>(cfg_.adaptive_gap_factor *
                                static_cast<double>(hi - lo));
}

std::uint16_t CloveEcnPolicy::pick_port(const net::Packet& inner,
                                        net::IpAddr dst, sim::Time now,
                                        PickInfo* info) {
  last_now_ = now;
  auto it0 = dsts_.find(dst);
  auto t = flowlets_.touch(inner.inner, now,
                           gap_for(it0 == dsts_.end() ? nullptr : &it0->second));
  if (info != nullptr) {
    info->new_flowlet = t.new_flowlet;
    info->flowlet_id = t.flowlet_id;
  }
  auto it = it0;
  if (it == dsts_.end() || it->second.paths.empty()) {
    // Discovery hasn't produced a mapping yet: fall back to per-flowlet
    // random ports (Edge-Flowlet behaviour).
    if (info != nullptr) info->reason = "flowlet-hash";
    if (!t.new_flowlet) return t.port;
    const std::uint16_t port = hash_port(inner.inner, t.flowlet_id);
    t.set_port(port);
    return port;
  }
  DstState& st = it->second;
  apply_recovery(st, now);
  if (info != nullptr) {
    info->n_paths = static_cast<std::uint16_t>(st.paths.size());
  }

  if (!t.new_flowlet) {
    // Keep the flowlet on its path as long as that port is still mapped.
    for (const auto& p : st.paths) {
      if (p.info.port == t.port) {
        if (info != nullptr) {
          info->reason = "wrr";
          info->metric = p.weight;
        }
        return t.port;
      }
    }
  }
  const std::size_t idx = wrr_pick(st);
  const std::uint16_t port = st.paths[idx].info.port;
  t.set_port(port);
  if (info != nullptr) {
    info->reason = "wrr";
    info->metric = st.paths[idx].weight;
  }
  if (t.new_flowlet && telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kFlowlet, now, owner(),
                     "clove.flowlet_new", "dst " + std::to_string(dst),
                     st.paths[idx].weight, port);
  }
  return port;
}

void CloveEcnPolicy::on_feedback(net::IpAddr dst, const net::CloveFeedback& fb,
                                 sim::Time now) {
  last_now_ = now;
  if (!fb.present) return;
  auto it = dsts_.find(dst);
  if (it == dsts_.end()) return;
  DstState& st = it->second;

  if (cfg_.adaptive_gap && fb.has_latency) {
    for (auto& p : st.paths) {
      if (p.info.port == fb.port) {
        p.latency = p.latency < 0 ? fb.latency : (p.latency + fb.latency) / 2;
        break;
      }
    }
  }
  if (!fb.ecn_set) return;
  apply_recovery(st, now);

  PathState* congested = nullptr;
  for (auto& p : st.paths) {
    if (p.info.port == fb.port) {
      congested = &p;
      break;
    }
  }
  if (congested == nullptr) return;  // feedback for a stale mapping
  congested->congested_at = now;

  // Reduce the congested path's weight and spread the removed mass equally
  // over the uncongested paths (§3.2 "Reacting to Congestion").
  double delta = congested->weight * cfg_.reduce_factor;
  if (congested->weight - delta < cfg_.min_weight) {
    delta = std::max(0.0, congested->weight - cfg_.min_weight);
  }
  std::vector<PathState*> uncongested;
  for (auto& p : st.paths) {
    if (&p != congested && !is_congested(p, now)) uncongested.push_back(&p);
  }
  if (uncongested.empty() || delta <= 0.0) return;
  congested->weight -= delta;
  const double share = delta / static_cast<double>(uncongested.size());
  for (PathState* p : uncongested) p->weight += share;

  if (on_port_degraded) on_port_degraded(dst, fb.port);

  // Emit the full post-update weight vector (one event per path) so a trace
  // capture shows the WRR mass migrating between paths over time.
  if (telemetry::tracing()) {
    for (const auto& p : st.paths) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "dst %u via %u %s", dst,
                    p.info.hops.size() > 1 ? p.info.hops[1].node : 0,
                    &p == congested ? "ecn_reduced" : "spread");
      telemetry::trace(telemetry::Category::kWeight, now, owner(),
                       "clove.weight", detail, p.weight, p.info.port);
    }
  }
}

void CloveEcnPolicy::on_path_evicted(net::IpAddr dst, std::uint16_t port,
                                     sim::Time now) {
  last_now_ = now;
  auto it = dsts_.find(dst);
  if (it == dsts_.end()) return;
  DstState& st = it->second;
  const auto pit =
      std::find_if(st.paths.begin(), st.paths.end(),
                   [port](const PathState& p) { return p.info.port == port; });
  if (pit == st.paths.end()) return;
  st.paths.erase(pit);

  // Renormalize proportionally: the dead path's mass spreads over survivors
  // in the ratio they already held (unlike ECN reduction, nothing here says
  // which survivor deserves it more).
  double total = 0.0;
  for (const auto& p : st.paths) total += p.weight;
  if (total > 0.0) {
    for (auto& p : st.paths) p.weight /= total;
  } else if (!st.paths.empty()) {
    const double uniform = 1.0 / static_cast<double>(st.paths.size());
    for (auto& p : st.paths) p.weight = uniform;
  }

  if (telemetry::tracing()) {
    for (const auto& p : st.paths) {
      char detail[48];
      std::snprintf(detail, sizeof(detail), "dst %u via %u evict_renorm", dst,
                    p.info.hops.size() > 1 ? p.info.hops[1].node : 0);
      telemetry::trace(telemetry::Category::kWeight, now, owner(),
                       "clove.weight", detail, p.weight, p.info.port);
    }
  }
}

bool CloveEcnPolicy::all_paths_congested(net::IpAddr dst, sim::Time now) const {
  auto it = dsts_.find(dst);
  if (it == dsts_.end() || it->second.paths.empty()) return false;
  for (const auto& p : it->second.paths) {
    if (!is_congested(p, now)) return false;
  }
  return true;
}

std::vector<double> CloveEcnPolicy::weights(net::IpAddr dst) const {
  std::vector<double> w;
  auto it = dsts_.find(dst);
  if (it == dsts_.end()) return w;
  for (const auto& p : it->second.paths) w.push_back(p.weight);
  return w;
}

}  // namespace clove::lb
