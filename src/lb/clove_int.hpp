#pragma once

#include <unordered_map>
#include <vector>

#include "lb/policy.hpp"
#include "overlay/flowlet.hpp"
#include "sim/random.hpp"

namespace clove::lb {

struct CloveIntConfig {
  sim::Time flowlet_gap{100 * sim::kMicrosecond};
  /// EWMA factor for smoothing the relayed max-path-utilization samples.
  double util_ewma{0.5};
  /// Samples older than this are treated as "unknown" (utilization 0), so a
  /// path that stopped carrying traffic becomes attractive again.
  sim::Time util_expiry{1 * sim::kMillisecond};
};

/// Clove-INT (§3.2): the fabric inserts per-hop egress utilization via INT;
/// the destination hypervisor relays max-path utilization back, and the
/// source proactively routes each new flowlet on the least-utilized path —
/// utilization-aware rather than merely congestion-aware, closing most of
/// the remaining gap to CONGA (§6.2).
class CloveIntPolicy : public Policy {
 public:
  explicit CloveIntPolicy(const CloveIntConfig& cfg = {},
                          std::uint64_t seed = 0x117e)
      : cfg_(cfg), flowlets_(cfg.flowlet_gap), rng_(seed) {}

  using Policy::pick_port;

  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now, PickInfo* info) override {
    auto t = flowlets_.touch(inner.inner, now);
    if (info != nullptr) {
      info->new_flowlet = t.new_flowlet;
      info->flowlet_id = t.flowlet_id;
    }
    auto it = dsts_.find(dst);
    if (it == dsts_.end() || it->second.paths.empty()) {
      if (info != nullptr) info->reason = "flowlet-hash";
      if (!t.new_flowlet) return t.port;
      const std::uint16_t port = static_cast<std::uint16_t>(
          overlay::kEphemeralBase +
          net::hash_tuple(inner.inner, 0x117u ^ t.flowlet_id) %
              overlay::kEphemeralCount);
      t.set_port(port);
      return port;
    }
    DstState& st = it->second;
    if (info != nullptr) {
      info->reason = "least-util";
      info->n_paths = static_cast<std::uint16_t>(st.paths.size());
    }
    if (!t.new_flowlet) {
      for (const auto& p : st.paths) {
        if (p.info.port == t.port) {
          if (info != nullptr) info->metric = effective_util(p, now);
          return t.port;
        }
      }
    }
    // Least utilized path; ties broken uniformly at random.
    double best = 1e300;
    std::size_t chosen = 0;
    int n_best = 0;
    for (std::size_t i = 0; i < st.paths.size(); ++i) {
      const double u = effective_util(st.paths[i], now);
      if (u < best - 1e-9) {
        best = u;
        chosen = i;
        n_best = 1;
      } else if (u <= best + 1e-9) {
        ++n_best;
        if (rng_.uniform_int(static_cast<std::uint64_t>(n_best)) == 0) chosen = i;
      }
    }
    const std::uint16_t port = st.paths[chosen].info.port;
    t.set_port(port);
    if (info != nullptr) info->metric = effective_util(st.paths[chosen], now);
    return port;
  }

  void on_paths_updated(net::IpAddr dst, const overlay::PathSet& paths) override {
    DstState& st = dsts_[dst];
    std::unordered_map<std::string, PathState> old;
    for (auto& p : st.paths) old.emplace(p.info.signature(), p);
    st.paths.clear();
    for (const overlay::PathInfo& info : paths.paths) {
      PathState ps;
      ps.info = info;
      auto it = old.find(info.signature());
      if (it != old.end()) {
        ps.util = it->second.util;
        ps.util_updated = it->second.util_updated;
      }
      st.paths.push_back(std::move(ps));
    }
  }

  void on_feedback(net::IpAddr dst, const net::CloveFeedback& fb,
                   sim::Time now) override {
    if (!fb.present || !fb.has_util) return;
    auto it = dsts_.find(dst);
    if (it == dsts_.end()) return;
    for (auto& p : it->second.paths) {
      if (p.info.port == fb.port) {
        p.util = p.util_updated < 0
                     ? fb.util
                     : cfg_.util_ewma * fb.util + (1.0 - cfg_.util_ewma) * p.util;
        p.util_updated = now;
        return;
      }
    }
  }

  [[nodiscard]] bool wants_ect() const override { return true; }
  [[nodiscard]] bool wants_int() const override { return true; }
  [[nodiscard]] bool needs_discovery() const override { return true; }
  [[nodiscard]] std::string name() const override { return "clove-int"; }
  [[nodiscard]] overlay::FlowletTracker* flowlet_tracker() override {
    return &flowlets_;
  }

  [[nodiscard]] std::vector<double> utilizations(net::IpAddr dst,
                                                 sim::Time now) const {
    std::vector<double> out;
    auto it = dsts_.find(dst);
    if (it == dsts_.end()) return out;
    for (const auto& p : it->second.paths) out.push_back(effective_util(p, now));
    return out;
  }

 private:
  struct PathState {
    overlay::PathInfo info;
    double util{0.0};
    sim::Time util_updated{-1};
  };
  struct DstState {
    std::vector<PathState> paths;
  };

  [[nodiscard]] double effective_util(const PathState& p, sim::Time now) const {
    if (p.util_updated < 0 || now - p.util_updated > cfg_.util_expiry) return 0.0;
    return p.util;
  }

  CloveIntConfig cfg_;
  overlay::FlowletTracker flowlets_;
  sim::Rng rng_;
  std::unordered_map<net::IpAddr, DstState> dsts_;
};

}  // namespace clove::lb
