#pragma once

#include <unordered_map>
#include <vector>

#include "lb/policy.hpp"
#include "overlay/flowlet.hpp"
#include "sim/random.hpp"

namespace clove::lb {

/// Tuning knobs of the Clove weight-adaptation loop (§3.2, §4, Fig. 6).
struct CloveEcnConfig {
  sim::Time flowlet_gap{100 * sim::kMicrosecond};  ///< ~1-2x RTT recommended
  /// Fraction of a congested path's weight removed per ECN feedback
  /// ("e.g., by a third").
  double reduce_factor{1.0 / 3.0};
  /// Paths never drop below this weight, so they keep being probed lightly.
  double min_weight{0.01};
  /// How long a path is considered "congested" after ECN feedback (used for
  /// spreading weight to *uncongested* paths and for the all-congested test).
  sim::Time congestion_expiry{1500 * sim::kMicrosecond};
  /// Unspecified in the paper: weights drift slowly back toward uniform so a
  /// path that stopped being congested can regain share even without traffic.
  sim::Time recovery_interval{10 * sim::kMillisecond};
  double recovery_rate{0.005};
  /// §7 "Flowlet optimization": adapt the flowlet gap per destination to the
  /// observed one-way-delay spread between its paths, reducing the chance of
  /// out-of-order flowlet arrival. Requires the hypervisor to measure and
  /// relay per-path latency (HypervisorConfig::measure_latency).
  bool adaptive_gap{false};
  double adaptive_gap_factor{2.0};  ///< gap = base + factor * delay spread
};

/// Clove-ECN (§3.2): weighted-round-robin flowlet routing over the
/// discovered path set, with path weights continuously adapted from ECN
/// feedback relayed by the destination hypervisor. On feedback for path p:
/// w_p shrinks by reduce_factor and the removed mass is spread equally over
/// the currently-uncongested paths. While at least one path is uncongested,
/// ECN is masked from the VM (the vswitch consults all_paths_congested()).
class CloveEcnPolicy : public Policy {
 public:
  explicit CloveEcnPolicy(const CloveEcnConfig& cfg = {},
                          std::uint64_t seed = 0xC10Fe)
      : cfg_(cfg), flowlets_(cfg.flowlet_gap), rng_(seed) {}

  using Policy::pick_port;

  std::uint16_t pick_port(const net::Packet& inner, net::IpAddr dst,
                          sim::Time now, PickInfo* info) override;
  void on_paths_updated(net::IpAddr dst, const overlay::PathSet& paths) override;
  void on_feedback(net::IpAddr dst, const net::CloveFeedback& fb,
                   sim::Time now) override;
  void on_path_evicted(net::IpAddr dst, std::uint16_t port,
                       sim::Time now) override;

  [[nodiscard]] bool wants_ect() const override { return true; }
  [[nodiscard]] bool needs_discovery() const override { return true; }
  [[nodiscard]] bool all_paths_congested(net::IpAddr dst,
                                         sim::Time now) const override;
  [[nodiscard]] std::string name() const override { return "clove-ecn"; }
  [[nodiscard]] overlay::FlowletTracker* flowlet_tracker() override {
    return &flowlets_;
  }

  /// Current weight vector for a destination (tests / telemetry).
  [[nodiscard]] std::vector<double> weights(net::IpAddr dst) const;
  [[nodiscard]] const CloveEcnConfig& config() const { return cfg_; }

 private:
  struct PathState {
    overlay::PathInfo info;
    double weight{0.0};
    double wrr_credit{0.0};
    sim::Time congested_at{-1};
    sim::Time latency{-1};  ///< EWMA one-way delay (adaptive gap only)
  };
  struct DstState {
    std::vector<PathState> paths;
    sim::Time last_recovery{0};
  };

  [[nodiscard]] sim::Time gap_for(const DstState* st) const;
  void apply_recovery(DstState& st, sim::Time now);
  std::size_t wrr_pick(DstState& st);
  [[nodiscard]] bool is_congested(const PathState& p, sim::Time now) const {
    return p.congested_at >= 0 && now - p.congested_at <= cfg_.congestion_expiry;
  }
  /// Fallback port when no discovery results exist yet: flow hash.
  static std::uint16_t hash_port(const net::FiveTuple& t, std::uint32_t salt) {
    return static_cast<std::uint16_t>(
        overlay::kEphemeralBase +
        net::hash_tuple(t, 0xC10Eu ^ salt) % overlay::kEphemeralCount);
  }

  CloveEcnConfig cfg_;
  overlay::FlowletTracker flowlets_;
  sim::Rng rng_;
  std::unordered_map<net::IpAddr, DstState> dsts_;
  /// Most recent data-path timestamp; stamps trace events emitted from
  /// on_paths_updated(), which discovery calls without a time argument.
  sim::Time last_now_{0};
};

}  // namespace clove::lb
