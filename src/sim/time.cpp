#include "sim/time.hpp"

#include <cstdio>

namespace clove::sim {

std::string format_time(Time t) {
  char buf[64];
  if (t == kTimeNever) return "never";
  if (t < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_microseconds(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_milliseconds(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(t));
  }
  return buf;
}

}  // namespace clove::sim
