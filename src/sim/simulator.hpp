#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "prof/prof.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace clove::sim {

/// The discrete-event simulation engine: a clock plus an event queue plus the
/// root RNG. Every simulated entity holds a reference to one Simulator; there
/// are no global singletons, so independent experiments can run side by side
/// — including concurrently on different threads (see harness::ParallelRunner).
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule `cb` to run `delay` from now (delay may be zero, never negative).
  EventId schedule_in(Time delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Schedule `cb` at absolute time `at` (clamped to now).
  EventId schedule_at(Time at, EventQueue::Callback cb) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(cb));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` still run). Returns the number of events processed.
  ///
  /// When an engine profiler is installed (CLOVE_PROF, see prof/prof.hpp)
  /// every event dispatch is timed under prof::kDispatch; component hooks
  /// nested in the callbacks attribute the time further. The check is one
  /// thread-local load per run() call — not per event — so the profiled-off
  /// loop is byte-for-byte the old one.
  std::uint64_t run(Time until = kTimeNever) {
    if (prof::active() != nullptr) return run_profiled(until);
    std::uint64_t n = 0;
    while (!stopped_ && queue_.run_next_until(until, &now_)) ++n;
    events_processed_ += n;
    return n;
  }

  /// Request that run() return after the current event finishes.
  void stop() { stopped_ = true; }
  void clear_stop() { stopped_ = false; }

  /// Time of the next pending event, or kTimeNever when the queue is empty.
  /// Used by the sharded runner to size conservative lookahead windows.
  [[nodiscard]] Time next_event_time() { return queue_.next_time(); }

  /// Advance the clock to `t` without running anything (no-op when `t` is in
  /// the past). Only valid when no event earlier than `t` is pending — the
  /// shard coordinator uses it to align all shard clocks at a barrier before
  /// executing a global action (fault, route recompute) at exactly `t`.
  void advance_to(Time t) {
    if (t > now_) now_ = t;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  /// Live (scheduled, not cancelled, not yet fired) events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Most events simultaneously pending over the simulation so far.
  [[nodiscard]] std::size_t queue_high_water() const { return queue_.max_live(); }
  /// Event-slab nodes ever allocated (the queue's memory high-water mark).
  [[nodiscard]] std::size_t queue_slab_capacity() const {
    return queue_.slab_capacity();
  }

  /// Opaque per-simulation extension slot with an owner-supplied deleter.
  /// Higher layers attach per-simulation state the sim layer cannot name —
  /// today the net::PacketPool (see net::PacketPool::of) — keeping each
  /// simulation self-contained so parallel runs share nothing. One slot;
  /// the first claimant wins. Declared before the event queue so pending
  /// callbacks holding pooled resources are destroyed before the pool.
  [[nodiscard]] void* extension() const { return extension_.get(); }
  void set_extension(void* p, void (*deleter)(void*)) {
    extension_ = ExtensionPtr(p, deleter);
  }

 private:
  std::uint64_t run_profiled(Time until) {
    std::uint64_t n = 0;
    for (;;) {
      if (stopped_) break;
      CLOVE_PROF_SCOPE(prof::kDispatch);
      if (!queue_.run_next_until(until, &now_)) break;
      ++n;
    }
    events_processed_ += n;
    return n;
  }

  using ExtensionPtr = std::unique_ptr<void, void (*)(void*)>;
  ExtensionPtr extension_{nullptr, [](void*) {}};
  Time now_{0};
  EventQueue queue_;
  Rng rng_;
  bool stopped_{false};
  std::uint64_t events_processed_{0};
};

/// A restartable one-shot timer bound to a Simulator. Guarantees that a fired
/// or cancelled timer never double-fires, and clears its handle on fire so
/// that rescheduling is always safe.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arm the timer to fire `delay` from now. Cancels any pending firing.
  void schedule_in(Time delay) {
    cancel();
    deadline_ = sim_.now() + delay;
    id_ = sim_.schedule_in(delay, [this] {
      id_ = EventId{};
      on_fire_();
    });
  }

  /// (Re)arm the timer to fire at absolute time `at` (clamped to now).
  /// Cancels any pending firing.
  void schedule_at(Time at) {
    cancel();
    if (at < sim_.now()) at = sim_.now();
    deadline_ = at;
    id_ = sim_.schedule_at(at, [this] {
      id_ = EventId{};
      on_fire_();
    });
  }

  void cancel() {
    if (id_.valid()) {
      sim_.cancel(id_);
      id_ = EventId{};
    }
  }

  [[nodiscard]] bool pending() const { return id_.valid(); }
  /// Absolute time of the pending firing, or 0 when nothing is pending — a
  /// cancelled or fired timer no longer reports its stale deadline.
  [[nodiscard]] Time deadline() const { return pending() ? deadline_ : 0; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId id_{};
  Time deadline_{0};
};

}  // namespace clove::sim
