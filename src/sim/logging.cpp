#include "sim/logging.hpp"

#include <cstdarg>

namespace clove::sim {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace detail {

void vlog(LogLevel lvl, Time now, const char* tag, const char* fmt, ...) {
  const char* name = "?";
  switch (lvl) {
    case LogLevel::kError: name = "E"; break;
    case LogLevel::kWarn: name = "W"; break;
    case LogLevel::kInfo: name = "I"; break;
    case LogLevel::kTrace: name = "T"; break;
    case LogLevel::kNone: return;
  }
  std::fprintf(stderr, "[%s %12s %-12s] ", name, format_time(now).c_str(), tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace clove::sim
