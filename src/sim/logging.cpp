#include "sim/logging.hpp"

#include <cstdarg>
#include <cstdlib>

namespace clove::sim {

LogLevel parse_log_level(const std::string& text, LogLevel fallback) {
  if (text == "none" || text == "0") return LogLevel::kNone;
  if (text == "error" || text == "1") return LogLevel::kError;
  if (text == "warn" || text == "warning" || text == "2") return LogLevel::kWarn;
  if (text == "info" || text == "3") return LogLevel::kInfo;
  if (text == "trace" || text == "debug" || text == "4") return LogLevel::kTrace;
  return fallback;
}

LogLevel& log_level() {
  static LogLevel level = [] {
    const char* v = std::getenv("CLOVE_LOG_LEVEL");
    return v != nullptr ? parse_log_level(v) : LogLevel::kWarn;
  }();
  return level;
}

namespace detail {

void vlog(LogLevel lvl, Time now, const char* tag, const char* fmt, ...) {
  const char* name = "?";
  switch (lvl) {
    case LogLevel::kError: name = "E"; break;
    case LogLevel::kWarn: name = "W"; break;
    case LogLevel::kInfo: name = "I"; break;
    case LogLevel::kTrace: name = "T"; break;
    case LogLevel::kNone: return;
  }
  std::fprintf(stderr, "[%s %12s %-12s] ", name, format_time(now).c_str(), tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace clove::sim
