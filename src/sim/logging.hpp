#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace clove::sim {

enum class LogLevel : int { kNone = 0, kError = 1, kWarn = 2, kInfo = 3, kTrace = 4 };

/// Process-wide log verbosity for diagnostics. Default: warnings and errors,
/// overridable at startup via the CLOVE_LOG_LEVEL environment variable
/// ("none" | "error" | "warn" | "info" | "trace", or the numeric 0-4).
/// This is deliberately a plain knob, not part of Simulator, because logging
/// is a debugging aid rather than simulated state.
LogLevel& log_level();

/// Parse a CLOVE_LOG_LEVEL value; returns `fallback` for unrecognized input.
[[nodiscard]] LogLevel parse_log_level(const std::string& text,
                                       LogLevel fallback = LogLevel::kWarn);

namespace detail {
void vlog(LogLevel lvl, Time now, const char* tag, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;
}  // namespace detail

#define CLOVE_LOG(lvl, now, tag, ...)                                   \
  do {                                                                  \
    if (static_cast<int>(::clove::sim::log_level()) >=                  \
        static_cast<int>(lvl)) {                                        \
      ::clove::sim::detail::vlog(lvl, (now), (tag), __VA_ARGS__);       \
    }                                                                   \
  } while (0)

#define CLOVE_TRACE(now, tag, ...) \
  CLOVE_LOG(::clove::sim::LogLevel::kTrace, now, tag, __VA_ARGS__)
#define CLOVE_INFO(now, tag, ...) \
  CLOVE_LOG(::clove::sim::LogLevel::kInfo, now, tag, __VA_ARGS__)
#define CLOVE_WARN(now, tag, ...) \
  CLOVE_LOG(::clove::sim::LogLevel::kWarn, now, tag, __VA_ARGS__)

}  // namespace clove::sim
