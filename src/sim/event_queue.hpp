#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace clove::sim {

/// Opaque handle to a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t seq{0};
  [[nodiscard]] bool valid() const { return seq != 0; }
  bool operator==(const EventId&) const = default;
};

/// A time-ordered queue of callbacks. Ties are broken by insertion order so
/// that runs are fully deterministic. Cancellation is lazy: cancelled events
/// stay in the heap but are skipped (and reclaimed) when they reach the top.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`. Returns a handle for cancellation.
  EventId schedule(Time at, Callback cb) {
    EventId id{++next_seq_};
    heap_.push(Entry{at, id.seq, std::move(cb)});
    return id;
  }

  /// Cancel a previously scheduled event. Cancelling an already-fired event
  /// is a no-op (callers should clear their handles on fire; see Simulator).
  void cancel(EventId id) {
    if (id.valid() && id.seq <= next_seq_) cancelled_.insert(id.seq);
  }

  [[nodiscard]] bool empty() { skim(); return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the next live event, or kTimeNever if none.
  [[nodiscard]] Time next_time() {
    skim();
    return heap_.empty() ? kTimeNever : heap_.top().at;
  }

  /// Pop and run the next live event; returns its time, or kTimeNever when
  /// the queue is empty.
  Time run_next() {
    skim();
    if (heap_.empty()) return kTimeNever;
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    e.cb();
    return e.at;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// Drop cancelled entries from the top of the heap.
  void skim() {
    while (!heap_.empty() && !cancelled_.empty()) {
      auto it = cancelled_.find(heap_.top().seq);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_{0};
};

}  // namespace clove::sim
