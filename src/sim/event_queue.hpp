#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace clove::sim {

/// Opaque handle to a scheduled event, usable for cancellation. Carries the
/// slab slot plus a generation (seq), so stale handles — fired events, or a
/// slot since reused — cancel as a no-op instead of killing a newer event.
struct EventId {
  std::uint64_t seq{0};
  std::uint32_t slot{0};
  [[nodiscard]] bool valid() const { return seq != 0; }
  bool operator==(const EventId&) const = default;
};

/// A time-ordered queue of callbacks. Ties are broken by insertion order so
/// that runs are fully deterministic.
///
/// Hot-loop layout: a 4-ary heap orders small POD entries {time, seq,
/// slot}; callbacks live in a slab of reusable nodes addressed by slot, so
/// heap sifts move 24-byte PODs and the steady state performs zero heap
/// allocations (SmallFn keeps capture-light callbacks inline, and drained
/// slots are recycled through a freelist). Cancellation is lazy in the heap
/// (the POD entry is skipped when it surfaces) but eager in the slab: the
/// callback is destroyed immediately — releasing captured resources such as
/// packets — and `size()` counts only live events.
class EventQueue {
 public:
  using Callback = SmallFn;

  /// Schedule `cb` at absolute time `at`. Returns a handle for cancellation.
  /// Takes the callback by rvalue reference so it is moved exactly once, into
  /// its slab node.
  EventId schedule(Time at, Callback&& cb) {
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    Node& n = nodes_[slot];
    n.cb = std::move(cb);
    n.seq = ++next_seq_;
    n.cancelled = false;
    heap_push(Entry{at, n.seq, slot});
    ++live_;
    if (live_ > max_live_) max_live_ = live_;
    return EventId{n.seq, slot};
  }

  /// Cancel a previously scheduled event. Cancelling an already-fired event
  /// (or a handle whose slot was since reused) is a no-op. The callback is
  /// destroyed immediately; only the POD heap entry lingers until it
  /// surfaces.
  void cancel(EventId id) {
    if (!id.valid() || id.slot >= nodes_.size()) return;
    Node& n = nodes_[id.slot];
    if (n.seq != id.seq || n.cancelled) return;
    n.cancelled = true;
    n.cb = Callback{};
    --live_;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Number of live (not cancelled, not yet fired) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the next live event, or kTimeNever if none.
  [[nodiscard]] Time next_time() {
    skim();
    return heap_.empty() ? kTimeNever : heap_.front().at;
  }

  /// Pop and run the next live event; returns its time, or kTimeNever when
  /// the queue is empty.
  Time run_next() {
    Time at = kTimeNever;
    run_next_until(kTimeNever, &at);
    return at;
  }

  /// Fused peek-and-run for the simulator's hot loop: one skim and one heap
  /// top read decide both "is there an event" and "is it due". When the next
  /// event's time is <= `until`, stores that time into `*now` (the simulation
  /// clock must already read the event's time when the callback runs) and
  /// runs it. Returns false — without touching `*now` — when the queue is
  /// empty or the next event lies beyond `until`.
  bool run_next_until(Time until, Time* now) {
    skim();
    if (heap_.empty() || heap_.front().at > until) return false;
    const Entry e = heap_.front();
    heap_pop();
    // Move the callback out and recycle the slot BEFORE invoking: the
    // callback may schedule new events (possibly growing the slab), and the
    // freed slot is immediately reusable.
    Callback cb = std::move(nodes_[e.slot].cb);
    release(e.slot);
    --live_;
    *now = e.at;
    cb();
    return true;
  }

  /// Nodes ever allocated in the slab — a high-watermark of concurrently
  /// scheduled events, exposed so tests can pin slot recycling.
  [[nodiscard]] std::size_t slab_capacity() const { return nodes_.size(); }

  /// Most live events ever pending at once (counts cancelled entries out,
  /// like size()). The engine profiler's queue-pressure gauge: slab_capacity
  /// tells how much memory the queue ever claimed, this tells how much of it
  /// was simultaneously meaningful.
  [[nodiscard]] std::size_t max_live() const { return max_live_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Strict ordering: earlier time first, then insertion order. Identical to
  /// the comparator the old std::priority_queue used, so run order — and
  /// every figure produced by the simulator — is unchanged.
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  struct Node {
    Callback cb;
    std::uint64_t seq{0};
    bool cancelled{false};
  };

  void release(std::uint32_t slot) {
    Node& n = nodes_[slot];
    n.cb = Callback{};
    n.seq = 0;
    n.cancelled = false;
    free_slots_.push_back(slot);
  }

  /// Drop cancelled entries from the top of the heap. Invariant: a heap
  /// entry's slot is recycled only here or in run_next(), so entry.seq ==
  /// node.seq until the entry is popped.
  void skim() {
    while (!heap_.empty() && nodes_[heap_.front().slot].cancelled) {
      release(heap_.front().slot);
      heap_pop();
    }
  }

  // The heap is 4-ary rather than binary: half the sift depth per push/pop,
  // and the four children of a node share a cache line (24-byte entries), so
  // the min-of-children scan in heap_pop costs one line fetch per level.
  void heap_push(Entry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_pop() {
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      const std::size_t end = std::min(first_child + 4, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  std::vector<Entry> heap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_{0};
  std::size_t live_{0};
  std::size_t max_live_{0};
};

}  // namespace clove::sim
