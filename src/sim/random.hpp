#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace clove::sim {

/// xoshiro256++ pseudo-random generator: fast, high quality, reproducible
/// across platforms (unlike distribution wrappers in <random>, whose outputs
/// are implementation-defined). All distribution helpers below are hand
/// rolled so experiments are bit-reproducible everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) via Lemire's method (unbiased for our use).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) return 0;
    // Simple rejection-free multiply-shift; bias is < 2^-64 * n, negligible.
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * log_approx(u);
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Returns 0 if all weights are zero or the vector is empty-safe fallback.
  [[nodiscard]] std::size_t weighted_pick(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0 || weights.empty()) {
      return weights.empty() ? 0 : uniform_int(weights.size());
    }
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derive a statistically independent child generator (for per-entity RNGs).
  [[nodiscard]] Rng fork() { return Rng{next() ^ 0xd1342543de82ef95ULL}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // std::log is fine and portable enough for doubles; wrapped for clarity.
  static double log_approx(double x);

  std::uint64_t state_[4]{};
};

}  // namespace clove::sim
