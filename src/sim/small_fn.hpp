#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace clove::sim {

/// Move-only `void()` callable with a small-buffer optimization sized for the
/// datapath's capture-light lambdas. Unlike std::function it
///   * never heap-allocates for captures up to kInlineSize bytes, and
///   * accepts move-only captures (PacketPtr and friends) directly, removing
///     the shared_ptr-holder workaround std::function's copyability rule
///     forces on packet-carrying events.
/// Oversized or throwing-move captures fall back to the heap transparently.
class SmallFn {
 public:
  /// Covers every capture the simulator schedules today (this + a PacketPtr +
  /// a couple of words) with room to spare; measured, not guessed — see
  /// bench_micro_datapath's allocs-per-event counters.
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(target()); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  /// True when the target lives in the inline buffer (no heap allocation).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && heap_ == nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` and destroy `src` (inline targets only;
    /// heap targets relocate by pointer swap). nullptr means the target is
    /// trivially copyable and relocates as a raw buffer copy — the common
    /// case for the datapath's `[this]` lambdas, where it removes an
    /// unpredictable indirect call from every event move.
    void (*relocate)(void* dst, void* src);
    /// nullptr means trivially destructible: destruction is a no-op.
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{
        &invoke, std::is_trivially_copyable_v<Fn> ? nullptr : &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void destroy(void* p) { delete static_cast<Fn*>(p); }
    static constexpr Ops ops{&invoke, nullptr, &destroy};
  };

  void* target() noexcept { return heap_ != nullptr ? heap_ : buf_; }

  void move_from(SmallFn& o) noexcept {
    ops_ = o.ops_;
    heap_ = o.heap_;
    if (ops_ != nullptr && heap_ == nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, o.buf_);
      } else {
        // Trivially copyable target: a fixed-size copy beats an indirect
        // call (copying slack beyond sizeof(Fn) is harmless).
        std::memcpy(buf_, o.buf_, kInlineSize);
      }
    }
    o.ops_ = nullptr;
    o.heap_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(target());
    ops_ = nullptr;
    heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* heap_{nullptr};
  const Ops* ops_{nullptr};
};

}  // namespace clove::sim
