#include "sim/random.hpp"

#include <cmath>

namespace clove::sim {

double Rng::log_approx(double x) { return std::log(x); }

}  // namespace clove::sim
