#pragma once

#include <cstdint>
#include <string>

namespace clove::sim {

/// Simulation time in integer nanoseconds. Signed so that differences and
/// "not yet scheduled" sentinels are representable without surprises.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Sentinel for "no deadline" / "never".
inline constexpr Time kTimeNever = INT64_MAX;

[[nodiscard]] constexpr Time nanoseconds(std::int64_t n) { return n; }
[[nodiscard]] constexpr Time microseconds(std::int64_t n) { return n * kMicrosecond; }
[[nodiscard]] constexpr Time milliseconds(std::int64_t n) { return n * kMillisecond; }
[[nodiscard]] constexpr Time seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

[[nodiscard]] constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
[[nodiscard]] constexpr double to_microseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
[[nodiscard]] constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Human-readable rendering, e.g. "12.345ms".
[[nodiscard]] std::string format_time(Time t);

/// Transmission (serialization) delay of `bytes` at `bytes_per_sec`.
[[nodiscard]] constexpr Time transmission_delay(std::int64_t bytes, double bytes_per_sec) {
  return static_cast<Time>(static_cast<double>(bytes) / bytes_per_sec *
                           static_cast<double>(kSecond));
}

/// Convert a link rate in Gb/s to bytes/second.
[[nodiscard]] constexpr double gbps_to_bytes_per_sec(double gbps) {
  return gbps * 1e9 / 8.0;
}

}  // namespace clove::sim
