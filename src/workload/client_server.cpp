#include "workload/client_server.hpp"

#include <algorithm>

#include "prof/prof.hpp"

namespace clove::workload {

// ---------------------------------------------------------------------------
// ClientServerWorkload
// ---------------------------------------------------------------------------

ClientServerWorkload::ClientServerWorkload(
    sim::Simulator& sim, const ClientServerConfig& cfg,
    std::vector<overlay::Hypervisor*> clients,
    std::vector<overlay::Hypervisor*> servers)
    : sim_(sim),
      cfg_(cfg),
      clients_(std::move(clients)),
      servers_(std::move(servers)),
      rng_(cfg.seed) {}

void ClientServerWorkload::start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);

  // Server assignment: one shuffled permutation of the servers per
  // connection round keeps every access link equally loaded (see
  // ServerAssignment for why this is the paper's operating regime).
  std::vector<std::size_t> perm(servers_.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::size_t perm_pos = perm.size();  // force a shuffle on first use
  auto next_server = [&]() -> overlay::Hypervisor* {
    if (cfg_.assignment == ServerAssignment::kUniformRandom) {
      return servers_[rng_.uniform_int(servers_.size())];
    }
    if (perm_pos >= perm.size()) {
      for (std::size_t i = 0; i < perm.size(); ++i) {
        std::swap(perm[i], perm[i + rng_.uniform_int(perm.size() - i)]);
      }
      perm_pos = 0;
    }
    return servers_[perm[perm_pos++]];
  };

  std::uint16_t next_port = cfg_.base_src_port;
  for (overlay::Hypervisor* client : clients_) {
    for (int c = 0; c < cfg_.conns_per_client; ++c) {
      auto conn = std::make_unique<Connection>();
      conn->client = client;
      conn->server = next_server();
      net::FiveTuple tuple{client->ip(), conn->server->ip(), next_port,
                           cfg_.dst_port, net::Proto::kTcp};
      // Source ports must be unique per client; sharing across clients is
      // fine (the IP differs). MPTCP reserves a port per subflow.
      next_port = static_cast<std::uint16_t>(
          next_port + (cfg_.use_mptcp ? cfg_.mptcp.subflows : 1));
      if (cfg_.use_mptcp) {
        transport::MptcpConfig mcfg = cfg_.mptcp;
        mcfg.tcp = cfg_.tcp;
        conn->mptcp =
            std::make_unique<transport::MptcpSender>(*client, tuple, mcfg);
        for (transport::TcpSender* sf : conn->mptcp->endpoints()) {
          client->register_endpoint(sf->tuple(), sf);
        }
      } else {
        conn->tcp =
            std::make_unique<transport::TcpSender>(*client, tuple, cfg_.tcp);
        client->register_endpoint(tuple, conn->tcp.get());
      }
      conns_.push_back(std::move(conn));
    }
  }

  for (auto& conn : conns_) schedule_jobs(*conn);
}

void ClientServerWorkload::schedule_jobs(Connection& conn) {
  // Offered load calibration: total arrival rate over all connections equals
  // load * bisection / mean_size; each connection carries a 1/n share.
  const double mean_size = cfg_.sizes.mean_bytes();
  const double lambda_total =
      cfg_.load * cfg_.bisection_bytes_per_sec / mean_size;
  const double per_conn_interarrival_s =
      static_cast<double>(conns_.size()) / lambda_total;

  sim::Time t = cfg_.start_time;
  Connection* cp = &conn;
  for (int j = 0; j < cfg_.jobs_per_conn; ++j) {
    t += sim::seconds(rng_.exponential(per_conn_interarrival_s));
    const std::uint64_t size = cfg_.sizes.sample(rng_);
    bytes_offered_ += size;
    ++jobs_total_;
    const sim::Time arrival = t;
    sim_.schedule_at(arrival, [this, cp, size, arrival] {
      CLOVE_PROF_SCOPE(prof::kWorkload);
      auto done = [this, size, arrival](sim::Time finished) {
        job_done(size, arrival, finished);
      };
      if (cp->mptcp) {
        cp->mptcp->write(size, done);
      } else {
        cp->tcp->write(size, done);
      }
    });
  }
}

void ClientServerWorkload::job_done(std::uint64_t size, sim::Time arrival,
                                    sim::Time finished) {
  CLOVE_PROF_SCOPE(prof::kWorkload);
  fct_.add(size, sim::to_seconds(finished - arrival));
  ++jobs_done_;
  if (on_job) on_job(size, arrival, finished);
  if (jobs_done_ == jobs_total_ && on_complete_) on_complete_();
}

transport::TcpSenderStats ClientServerWorkload::transport_totals() const {
  transport::TcpSenderStats total;
  auto fold = [&total](const transport::TcpSenderStats& s) {
    total.bytes_sent += s.bytes_sent;
    total.bytes_acked += s.bytes_acked;
    total.packets_sent += s.packets_sent;
    total.fast_retransmits += s.fast_retransmits;
    total.timeouts += s.timeouts;
    total.ecn_reductions += s.ecn_reductions;
  };
  for (const auto& conn : conns_) {
    if (conn->tcp) fold(conn->tcp->stats());
    if (conn->mptcp) {
      for (int i = 0; i < conn->mptcp->subflow_count(); ++i) {
        fold(conn->mptcp->subflow(i).stats());
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// IncastWorkload
// ---------------------------------------------------------------------------

IncastWorkload::IncastWorkload(sim::Simulator& sim, const IncastConfig& cfg,
                               overlay::Hypervisor* client,
                               std::vector<overlay::Hypervisor*> servers)
    : sim_(sim), cfg_(cfg), client_(client), rng_(cfg.seed) {
  std::uint16_t port = cfg_.base_src_port;
  for (overlay::Hypervisor* server : servers) {
    ServerConn sc;
    sc.server = server;
    // Data flows server -> client on a pre-established persistent connection.
    net::FiveTuple tuple{server->ip(), client_->ip(), port, 9000,
                        net::Proto::kTcp};
    port = static_cast<std::uint16_t>(
        port + (cfg_.use_mptcp ? cfg_.mptcp.subflows : 1));
    if (cfg_.use_mptcp) {
      transport::MptcpConfig mcfg = cfg_.mptcp;
      mcfg.tcp = cfg_.tcp;
      sc.mptcp = std::make_unique<transport::MptcpSender>(*server, tuple, mcfg);
      for (transport::TcpSender* sf : sc.mptcp->endpoints()) {
        server->register_endpoint(sf->tuple(), sf);
      }
    } else {
      sc.tcp = std::make_unique<transport::TcpSender>(*server, tuple, cfg_.tcp);
      server->register_endpoint(tuple, sc.tcp.get());
    }
    servers_.push_back(std::move(sc));
  }
}

void IncastWorkload::start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  sim_.schedule_at(cfg_.start_time, [this] { issue_request(); });
}

void IncastWorkload::write_on(ServerConn& conn, std::uint64_t bytes,
                              transport::TcpSender::Completion done) {
  if (conn.mptcp) {
    conn.mptcp->write(bytes, std::move(done));
  } else {
    conn.tcp->write(bytes, std::move(done));
  }
}

void IncastWorkload::issue_request() {
  if (requests_done_ >= cfg_.requests) {
    if (on_complete_) on_complete_();
    return;
  }
  request_started_ = sim_.now();

  // Choose `fanout` distinct servers uniformly.
  std::vector<std::size_t> idx(servers_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    std::swap(idx[i], idx[i + rng_.uniform_int(idx.size() - i)]);
  }
  const int fanout = std::min<int>(cfg_.fanout, static_cast<int>(idx.size()));
  const std::uint64_t share =
      cfg_.total_bytes / static_cast<std::uint64_t>(fanout);

  responses_pending_ = fanout;
  for (int i = 0; i < fanout; ++i) {
    write_on(servers_[idx[static_cast<std::size_t>(i)]], share,
             [this](sim::Time) {
               if (--responses_pending_ == 0) {
                 durations_.add(sim::to_seconds(sim_.now() - request_started_));
                 ++requests_done_;
                 issue_request();
               }
             });
  }
}

double IncastWorkload::goodput_gbps() const {
  double total_s = 0.0;
  for (double d : const_cast<stats::Samples&>(durations_).raw()) total_s += d;
  if (total_s <= 0.0) return 0.0;
  const double total_bits = static_cast<double>(cfg_.total_bytes) * 8.0 *
                            static_cast<double>(requests_done_);
  return total_bits / total_s / 1e9;
}

}  // namespace clove::workload
