#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "overlay/hypervisor.hpp"
#include "stats/stats.hpp"
#include "transport/mptcp.hpp"
#include "transport/tcp.hpp"
#include "workload/flow_size.hpp"

namespace clove::workload {

/// Configuration of the paper's RPC-style workload (§5 "Empirical
/// workload"): each client opens persistent connections to randomly chosen
/// servers; per connection, jobs arrive as a Poisson process with flow sizes
/// drawn from an empirical CDF; job completion time includes queueing behind
/// earlier jobs on the same connection.
/// How connections pick their servers.
enum class ServerAssignment {
  /// Balanced random pairing: every server receives the same number of
  /// connections (a random permutation per round). This keeps access links
  /// below saturation at any load < 100%, so the *fabric* is the bottleneck
  /// under study — the regime of the paper's Fig. 4/8 experiments. Without
  /// it, a server unlucky enough to attract 3+ connections saturates its
  /// 10G NIC regardless of the load balancer, drowning the fabric signal.
  kPermutation,
  /// Fully random choice per connection (hotspots possible).
  kUniformRandom,
};

struct ClientServerConfig {
  int conns_per_client{3};
  int jobs_per_conn{100};
  ServerAssignment assignment{ServerAssignment::kPermutation};
  double load{0.5};  ///< offered load as a fraction of bisection bandwidth
  double bisection_bytes_per_sec{sim::gbps_to_bytes_per_sec(160.0)};
  FlowSizeDistribution sizes{FlowSizeDistribution::web_search()};
  sim::Time start_time{50 * sim::kMillisecond};
  std::uint64_t seed{42};
  bool use_mptcp{false};
  transport::TcpConfig tcp{};
  transport::MptcpConfig mptcp{};
  std::uint16_t base_src_port{10000};
  std::uint16_t dst_port{80};
};

/// Drives the job workload over a built topology and records per-job FCTs.
class ClientServerWorkload {
 public:
  ClientServerWorkload(sim::Simulator& sim, const ClientServerConfig& cfg,
                       std::vector<overlay::Hypervisor*> clients,
                       std::vector<overlay::Hypervisor*> servers);

  /// Installs connections and schedules every job arrival. Run the simulator
  /// afterwards; `on_complete` fires when the last job finishes.
  void start(std::function<void()> on_complete = nullptr);

  /// Optional per-job completion tap (size, arrival, finish) — lets callers
  /// bucket FCTs by completion time (e.g. recovery benches). Set before
  /// start(); fires in addition to the aggregate FctRecorder.
  std::function<void(std::uint64_t size, sim::Time arrival, sim::Time finished)>
      on_job;

  [[nodiscard]] stats::FctRecorder& fct() { return fct_; }
  [[nodiscard]] std::uint64_t jobs_total() const { return jobs_total_; }
  [[nodiscard]] std::uint64_t jobs_done() const { return jobs_done_; }
  [[nodiscard]] std::uint64_t bytes_offered() const { return bytes_offered_; }

  /// Aggregate sender-side transport counters across all connections.
  [[nodiscard]] transport::TcpSenderStats transport_totals() const;

 private:
  struct Connection {
    overlay::Hypervisor* client;
    overlay::Hypervisor* server;
    std::unique_ptr<transport::TcpSender> tcp;
    std::unique_ptr<transport::MptcpSender> mptcp;
  };

  void schedule_jobs(Connection& conn);
  void job_done(std::uint64_t size, sim::Time arrival, sim::Time finished);

  sim::Simulator& sim_;
  ClientServerConfig cfg_;
  std::vector<overlay::Hypervisor*> clients_;
  std::vector<overlay::Hypervisor*> servers_;
  std::vector<std::unique_ptr<Connection>> conns_;
  sim::Rng rng_;

  stats::FctRecorder fct_;
  std::uint64_t jobs_total_{0};
  std::uint64_t jobs_done_{0};
  std::uint64_t bytes_offered_{0};
  std::function<void()> on_complete_;
};

/// §5.3 incast: one client requests `total_bytes` split over `fanout`
/// servers that all respond at once on persistent connections; requests are
/// issued back to back. The metric is the client's achieved goodput.
struct IncastConfig {
  int fanout{8};
  std::uint64_t total_bytes{10'000'000};
  int requests{100};
  std::uint64_t seed{7};
  bool use_mptcp{false};
  transport::TcpConfig tcp{};
  transport::MptcpConfig mptcp{};
  sim::Time start_time{50 * sim::kMillisecond};
  std::uint16_t base_src_port{20000};
};

class IncastWorkload {
 public:
  IncastWorkload(sim::Simulator& sim, const IncastConfig& cfg,
                 overlay::Hypervisor* client,
                 std::vector<overlay::Hypervisor*> servers);

  void start(std::function<void()> on_complete = nullptr);

  /// Mean goodput across requests, in Gb/s.
  [[nodiscard]] double goodput_gbps() const;
  [[nodiscard]] stats::Samples& request_durations() { return durations_; }
  [[nodiscard]] int requests_done() const { return requests_done_; }

 private:
  struct ServerConn {
    overlay::Hypervisor* server;
    std::unique_ptr<transport::TcpSender> tcp;
    std::unique_ptr<transport::MptcpSender> mptcp;
  };

  void issue_request();
  void write_on(ServerConn& conn, std::uint64_t bytes,
                transport::TcpSender::Completion done);

  sim::Simulator& sim_;
  IncastConfig cfg_;
  overlay::Hypervisor* client_;
  std::vector<ServerConn> servers_;
  sim::Rng rng_;

  stats::Samples durations_;
  int requests_done_{0};
  int responses_pending_{0};
  sim::Time request_started_{0};
  std::function<void()> on_complete_;
};

}  // namespace clove::workload
