#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace clove::workload {

/// Empirical flow-size distribution defined by CDF points, sampled with
/// linear interpolation within segments. The built-in distributions are the
/// two standard datacenter workloads used throughout the load-balancing
/// literature (and by the paper's §5/§6 evaluation for web search).
class FlowSizeDistribution {
 public:
  struct Point {
    std::uint64_t bytes;
    double cdf;  ///< strictly increasing, last == 1.0
  };

  explicit FlowSizeDistribution(std::vector<Point> points);

  /// The long-tailed web-search workload (production CDF popularized by the
  /// DCTCP paper): most flows are mice, but a small fraction of multi-MB
  /// elephants carries most of the bytes.
  static FlowSizeDistribution web_search();

  /// The even heavier-tailed data-mining workload (from VL2/CONGA).
  static FlowSizeDistribution data_mining();

  /// A fixed-size "distribution" (useful for tests and microbenchmarks).
  static FlowSizeDistribution fixed(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;
  [[nodiscard]] double mean_bytes() const { return mean_; }
  /// Fraction of all offered bytes carried by flows of at least `threshold`
  /// bytes — the share a size-gated optimization (e.g. the hybrid engine's
  /// elephant promotion) can touch at best.
  [[nodiscard]] double bytes_fraction_at_least(std::uint64_t threshold) const;
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
  double mean_{0.0};
};

}  // namespace clove::workload
