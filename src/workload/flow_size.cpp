#include "workload/flow_size.hpp"

#include <algorithm>
#include <cassert>

namespace clove::workload {

FlowSizeDistribution::FlowSizeDistribution(std::vector<Point> points)
    : points_(std::move(points)) {
  assert(!points_.empty());
  // Mean via the trapezoid decomposition of the inverse CDF: each segment
  // contributes (cdf_i - cdf_{i-1}) * midpoint(bytes).
  double prev_cdf = 0.0;
  std::uint64_t prev_bytes = 0;
  for (const Point& p : points_) {
    const double mass = p.cdf - prev_cdf;
    mean_ += mass * 0.5 *
             (static_cast<double>(prev_bytes) + static_cast<double>(p.bytes));
    prev_cdf = p.cdf;
    prev_bytes = p.bytes;
  }
}

std::uint64_t FlowSizeDistribution::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  double prev_cdf = 0.0;
  std::uint64_t prev_bytes = 0;
  for (const Point& p : points_) {
    if (u <= p.cdf) {
      const double span = p.cdf - prev_cdf;
      const double frac = span > 0.0 ? (u - prev_cdf) / span : 1.0;
      const double bytes =
          static_cast<double>(prev_bytes) +
          frac * (static_cast<double>(p.bytes) - static_cast<double>(prev_bytes));
      return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(bytes));
    }
    prev_cdf = p.cdf;
    prev_bytes = p.bytes;
  }
  return points_.back().bytes;
}

double FlowSizeDistribution::bytes_fraction_at_least(
    std::uint64_t threshold) const {
  if (mean_ <= 0.0) return 0.0;
  const double t = static_cast<double>(threshold);
  double above = 0.0;
  double prev_cdf = 0.0;
  std::uint64_t prev_bytes = 0;
  for (const Point& p : points_) {
    const double mass = p.cdf - prev_cdf;
    const double b0 = static_cast<double>(prev_bytes);
    const double b1 = static_cast<double>(p.bytes);
    if (t <= b0) {
      above += mass * 0.5 * (b0 + b1);
    } else if (t < b1) {
      // Sizes are uniform within a segment (sample() interpolates linearly),
      // so [t, b1) holds (b1-t)/(b1-b0) of the mass at mean (t+b1)/2.
      above += mass * ((b1 - t) / (b1 - b0)) * 0.5 * (t + b1);
    }
    prev_cdf = p.cdf;
    prev_bytes = p.bytes;
  }
  return above / mean_;
}

FlowSizeDistribution FlowSizeDistribution::web_search() {
  // Long-tailed web-search flow sizes (production measurements published
  // with DCTCP and reused by CONGA/Presto/LetFlow evaluations).
  return FlowSizeDistribution({
      {10'000, 0.15},
      {20'000, 0.20},
      {30'000, 0.30},
      {50'000, 0.40},
      {80'000, 0.53},
      {200'000, 0.60},
      {1'000'000, 0.70},
      {2'000'000, 0.80},
      {5'000'000, 0.90},
      {10'000'000, 0.97},
      {30'000'000, 1.00},
  });
}

FlowSizeDistribution FlowSizeDistribution::data_mining() {
  // Heavier-tailed data-mining style distribution (VL2 measurements).
  return FlowSizeDistribution({
      {100, 0.10},
      {1'000, 0.50},
      {10'000, 0.60},
      {100'000, 0.70},
      {1'000'000, 0.80},
      {10'000'000, 0.90},
      {100'000'000, 0.97},
      {1'000'000'000, 1.00},
  });
}

FlowSizeDistribution FlowSizeDistribution::fixed(std::uint64_t bytes) {
  // A degenerate CDF: negligible mass below `bytes`, everything at `bytes`,
  // so sample() always lands in the flat second segment.
  return FlowSizeDistribution({{bytes, 1e-12}, {bytes, 1.0}});
}

}  // namespace clove::workload
