#pragma once

#include <string>

#include "telemetry/json.hpp"

namespace clove::telemetry {

/// The machine-readable run-artifact sink, controlled by CLOVE_JSON_OUT.
/// Empty when unset (artifacts disabled).
[[nodiscard]] std::string json_out_dir();

/// Write `doc` to `<dir>/<name>.json` (pretty-printed), creating the
/// directory if needed. Returns the written path, or "" on failure / when
/// `dir` is empty.
std::string write_json_artifact(const std::string& dir, const std::string& name,
                                const Json& doc);

/// Write an arbitrary text blob (JSONL traces, chrome traces, CSV) next to
/// the JSON artifacts. Same return convention.
std::string write_text_artifact(const std::string& dir, const std::string& name,
                                const std::string& text);

}  // namespace clove::telemetry
