#include "telemetry/scope.hpp"

#include <cstdlib>

namespace clove::telemetry {

namespace detail {
thread_local Scope* tl_scope = nullptr;
thread_local bool tl_enabled = false;
thread_local FlightRecorder* tl_flight = nullptr;
}  // namespace detail

ScopeSettings ScopeSettings::from_env() {
  ScopeSettings s;
  if (const char* v = std::getenv("CLOVE_TELEMETRY")) {
    s.enabled = v[0] != '\0' && v[0] != '0';
  }
  if (const char* v = std::getenv("CLOVE_TRACE_CAPACITY")) {
    const long n = std::atol(v);
    if (n > 0) s.trace_capacity = static_cast<std::size_t>(n);
  }
  if (const char* v = std::getenv("CLOVE_TRACE_CATEGORIES")) {
    s.trace_filter = parse_category_mask(v);
  }
  s.flight = FlightConfig::from_env();
  return s;
}

void Scope::set_enabled(bool on) {
  enabled_ = on;
  if (detail::tl_scope == this) detail::tl_enabled = on;
}

FlightRecorder* Scope::flight_recorder() {
  if (flight_cfg_.mode == FlightMode::kOff) return nullptr;
  if (!flight_) {
    flight_ = std::make_unique<FlightRecorder>(flight_cfg_, &metrics_);
  }
  return flight_.get();
}

void Scope::set_flight_config(const FlightConfig& cfg) {
  flight_cfg_ = cfg;
  flight_.reset();  // drop stale state recorded under the old config
  if (detail::tl_scope == this) detail::tl_flight = flight_recorder();
}

Scope& current_scope() {
  if (detail::tl_scope == nullptr) {
    // Lazy process-wide fallback, configured from the environment exactly
    // like the historical singleton hub. Threads that never install a scope
    // all resolve here; construction is thread-safe (magic static) and the
    // fallback is only shared by code that was process-global before.
    static Scope process_scope{ScopeSettings::from_env()};
    detail::tl_scope = &process_scope;
    detail::tl_enabled = process_scope.is_enabled();
    detail::tl_flight = process_scope.flight_recorder();
  }
  return *detail::tl_scope;
}

}  // namespace clove::telemetry
