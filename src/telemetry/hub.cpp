#include "telemetry/hub.hpp"

namespace clove::telemetry {

Hub& hub() {
  static Hub instance;  // stateless facade; one is as good as another
  return instance;
}

void trace(Category cat, sim::Time now, std::string node, std::string name,
           std::string detail, double value, std::uint64_t id) {
  if (static_cast<int>(sim::log_level()) >=
      static_cast<int>(sim::LogLevel::kTrace)) {
    CLOVE_LOG(sim::LogLevel::kTrace, now, node.c_str(), "%s %s value=%g id=%llu",
              name.c_str(), detail.c_str(), value,
              static_cast<unsigned long long>(id));
  }
  if (!enabled()) return;
  TraceEvent ev;
  ev.t = now;
  ev.cat = cat;
  ev.node = std::move(node);
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  ev.value = value;
  ev.id = id;
  current_scope().trace().record(std::move(ev));
}

}  // namespace clove::telemetry
