#include "telemetry/hub.hpp"

#include <cstdlib>

namespace clove::telemetry {

namespace detail {
bool g_enabled = false;
}  // namespace detail

Hub::Hub() {
  if (const char* v = std::getenv("CLOVE_TELEMETRY")) {
    detail::g_enabled = v[0] != '\0' && v[0] != '0';
  }
  if (const char* v = std::getenv("CLOVE_TRACE_CAPACITY")) {
    const long n = std::atol(v);
    if (n > 0) trace_.set_capacity(static_cast<std::size_t>(n));
  }
  if (const char* v = std::getenv("CLOVE_TRACE_CATEGORIES")) {
    trace_.set_filter(parse_category_mask(v));
  }
}

void Hub::begin_run() {
  metrics_.reset_values();
  trace_.clear();
}

Hub& hub() {
  static Hub instance;
  return instance;
}

void trace(Category cat, sim::Time now, std::string node, std::string name,
           std::string detail, double value, std::uint64_t id) {
  if (static_cast<int>(sim::log_level()) >=
      static_cast<int>(sim::LogLevel::kTrace)) {
    CLOVE_LOG(sim::LogLevel::kTrace, now, node.c_str(), "%s %s value=%g id=%llu",
              name.c_str(), detail.c_str(), value,
              static_cast<unsigned long long>(id));
  }
  if (!enabled()) return;
  TraceEvent ev;
  ev.t = now;
  ev.cat = cat;
  ev.node = std::move(node);
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  ev.value = value;
  ev.id = id;
  hub().trace().record(std::move(ev));
}

}  // namespace clove::telemetry
