#include "telemetry/trace.hpp"

#include <algorithm>
#include <unordered_map>

namespace clove::telemetry {

const char* category_name(Category c) {
  switch (c) {
    case Category::kQueue: return "queue";
    case Category::kPath: return "path";
    case Category::kFlowlet: return "flowlet";
    case Category::kFeedback: return "feedback";
    case Category::kWeight: return "weight";
    case Category::kTopology: return "topology";
    case Category::kTcp: return "tcp";
    case Category::kFault: return "fault";
  }
  return "?";
}

unsigned parse_category_mask(const std::string& list) {
  if (list.empty()) return kAllCategories;
  static constexpr Category kAll[] = {
      Category::kQueue,    Category::kPath,   Category::kFlowlet,
      Category::kFeedback, Category::kWeight, Category::kTopology,
      Category::kTcp,      Category::kFault,
  };
  unsigned mask = 0;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string::npos) end = list.size();
    const std::string word = list.substr(start, end - start);
    for (Category c : kAll) {
      if (word == category_name(c)) mask |= static_cast<unsigned>(c);
    }
    if (word == "all") mask |= kAllCategories;
    start = end + 1;
  }
  return mask == 0 ? kAllCategories : mask;
}

void TraceLog::set_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);  // grow lazily beyond
  next_ = 0;
  size_ = 0;
}

void TraceLog::record(TraceEvent ev) {
  if (!accepts(ev.cat)) return;
  ev.seq = recorded_;
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    next_ = ring_.size() % capacity_;
    size_ = ring_.size();
    return;
  }
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void TraceLog::clear() {
  ring_.clear();
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::vector<const TraceEvent*> TraceLog::events(unsigned mask) const {
  std::vector<const TraceEvent*> out;
  out.reserve(size_);
  // Oldest-first: when the ring has wrapped, the oldest entry is at next_.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& ev = ring_[(start + i) % ring_.size()];
    if ((mask & static_cast<unsigned>(ev.cat)) != 0) out.push_back(&ev);
  }
  // Canonicalize: by timestamp, recording order breaking ties. Emitters that
  // stamp events with a stale "last seen" time (discovery-driven weight
  // remaps) would otherwise leave exports in an order that depends on when
  // the recording thread interleaved with the simulated clock.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->t != b->t) return a->t < b->t;
                     return a->seq < b->seq;
                   });
  return out;
}

std::string TraceLog::to_jsonl(unsigned mask) const {
  std::string out;
  for (const TraceEvent* ev : events(mask)) {
    Json line = Json::object();
    line.set("t_ns", static_cast<double>(ev->t));
    line.set("seq", static_cast<double>(ev->seq));
    line.set("cat", category_name(ev->cat));
    line.set("node", ev->node);
    line.set("name", ev->name);
    if (!ev->detail.empty()) line.set("detail", ev->detail);
    line.set("value", ev->value);
    line.set("id", static_cast<double>(ev->id));
    out += line.dump();
    out += '\n';
  }
  return out;
}

std::string TraceLog::to_chrome_trace(unsigned mask) const {
  // One "thread" per emitting node so chrome://tracing shows per-entity
  // tracks; timestamps are simulated time in microseconds.
  Json root = Json::object();
  Json events_json = Json::array();
  std::unordered_map<std::string, int> tids;

  for (const TraceEvent* ev : events(mask)) {
    auto [it, inserted] =
        tids.emplace(ev->node, static_cast<int>(tids.size()) + 1);
    if (inserted) {
      Json meta = Json::object();
      meta.set("ph", "M");
      meta.set("name", "thread_name");
      meta.set("pid", 1);
      meta.set("tid", it->second);
      Json args = Json::object();
      args.set("name", ev->node);
      meta.set("args", std::move(args));
      events_json.push_back(std::move(meta));
    }
    Json e = Json::object();
    e.set("ph", "i");
    e.set("s", "t");
    e.set("name", ev->name);
    e.set("cat", category_name(ev->cat));
    e.set("ts", sim::to_microseconds(ev->t));
    e.set("pid", 1);
    e.set("tid", it->second);
    Json args = Json::object();
    if (!ev->detail.empty()) args.set("detail", ev->detail);
    args.set("value", ev->value);
    args.set("id", static_cast<double>(ev->id));
    e.set("args", std::move(args));
    events_json.push_back(std::move(e));
  }
  root.set("displayTimeUnit", "ms");
  root.set("traceEvents", std::move(events_json));
  return root.dump();
}

}  // namespace clove::telemetry
