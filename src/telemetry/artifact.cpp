#include "telemetry/artifact.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace clove::telemetry {

std::string json_out_dir() {
  const char* v = std::getenv("CLOVE_JSON_OUT");
  return v != nullptr ? std::string(v) : std::string();
}

std::string write_text_artifact(const std::string& dir, const std::string& name,
                                const std::string& text) {
  if (dir.empty()) return {};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::filesystem::path path = std::filesystem::path(dir) / name;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << text;
  return out.good() ? path.string() : std::string();
}

std::string write_json_artifact(const std::string& dir, const std::string& name,
                                const Json& doc) {
  return write_text_artifact(dir, name + ".json", doc.dump(2) + "\n");
}

}  // namespace clove::telemetry
