#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "util/flat_map.hpp"

namespace clove::telemetry {

/// How much provenance the flight recorder captures.
///  - kOff:     no recorder installed; the datapath guard is one TLS pointer
///              load that fails (the PR-3 fast path is untouched).
///  - kSampled: flow/flowlet records and auditors run for every packet, but
///              hop-by-hop journeys are kept only for uids where
///              `uid % sample_every == 0`.
///  - kFull:    journeys for every packet (the "reconstruct any packet" mode
///              used by tests and post-mortem debugging).
enum class FlightMode : std::uint8_t { kOff = 0, kSampled = 1, kFull = 2 };

[[nodiscard]] const char* flight_mode_name(FlightMode m);

struct FlightConfig {
  FlightMode mode{FlightMode::kOff};
  /// kSampled: journeys are kept for uids divisible by this.
  std::uint64_t sample_every{64};
  /// Cap on concurrently tracked (in-flight) journeys; new journeys beyond
  /// it are not tracked (counted in FlightSummary::not_tracked).
  std::size_t max_live_journeys{1u << 16};
  /// Completed journeys retained (ring of the most recent).
  std::size_t journey_ring{4096};
  /// Closed flowlet records retained for JSONL export (ring of most recent;
  /// the per-path usage aggregates below are exact regardless).
  std::size_t max_flowlet_records{1u << 15};
  /// Time-bucket width for the per-path usage aggregation.
  sim::Time usage_bucket{100 * sim::kMillisecond};

  /// CLOVE_FLIGHT_RECORDER=off|sampled|full, CLOVE_FLIGHT_SAMPLE=N.
  [[nodiscard]] static FlightConfig from_env();
};

/// One switch traversal: where the packet entered and left, the depth of the
/// egress queue it joined, and whether that enqueue ECN-marked it.
struct HopRecord {
  sim::Time t{0};
  std::uint32_t node{0};
  std::int16_t in_port{-1};
  std::int16_t out_port{-1};
  std::int64_t queue_bytes{0};
  bool ecn_marked{false};
};

enum class JourneyOutcome : std::uint8_t {
  kInFlight = 0,
  kDelivered,      ///< reached the destination hypervisor
  kConsumed,       ///< terminated legitimately in-fabric (probe TTL reply)
  kDropOverflow,   ///< drop-tail queue overflow
  kDropLinkDown,   ///< lost on a failed link
  kDropNoRoute,
  kDropTtl,
  kDropFault,      ///< probabilistic silent drop injected by clove::fault
};

[[nodiscard]] const char* journey_outcome_name(JourneyOutcome o);

/// Flow identity as the flight recorder keys it: the inner (tenant) 4-tuple
/// in sender orientation. Plain integers so net/ code can fill it without a
/// dependency in the other direction.
struct FlightFlowKey {
  std::uint32_t src_ip{0};
  std::uint32_t dst_ip{0};
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};

  bool operator==(const FlightFlowKey&) const = default;
  [[nodiscard]] bool valid() const { return src_ip != 0 || dst_ip != 0; }
  [[nodiscard]] std::string to_string() const;
};

struct FlightFlowKeyHash {
  std::uint64_t operator()(const FlightFlowKey& k) const noexcept {
    std::uint64_t z = (static_cast<std::uint64_t>(k.src_ip) << 32) | k.dst_ip;
    z ^= (static_cast<std::uint64_t>(k.src_port) << 16) | k.dst_port;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// A packet's reconstructed life: origin decision, per-switch hops, and how
/// it ended. ~400 bytes, pooled in a slab and recycled on finalize.
struct Journey {
  static constexpr std::size_t kMaxHops = 12;

  std::uint64_t uid{0};
  FlightFlowKey flow{};
  std::uint32_t origin{0};       ///< source hypervisor node id (0 = unseen)
  std::uint32_t dst_ip{0};       ///< destination hypervisor ip (from pick)
  std::uint16_t outer_port{0};   ///< encap source port the policy chose
  std::uint32_t flowlet_id{0};
  std::uint64_t seq{0};
  /// Per-flow transmission number (1, 2, ...). Retransmitted segments carry
  /// an old seq but a NEW send index, so arrival-order audits compare send
  /// order — the order the fabric was handed the packets in — not seq order.
  std::uint64_t send_idx{0};
  std::uint32_t payload{0};
  sim::Time t_start{0};
  sim::Time t_end{0};
  sim::Time t_last{0};           ///< last hook activity (conservation audit)
  JourneyOutcome outcome{JourneyOutcome::kInFlight};
  std::uint32_t end_node{0};     ///< node that delivered / dropped it
  bool has_origin{false};
  bool is_rtx{false};            ///< carried a retransmitted segment
  bool truncated{false};         ///< more than kMaxHops switch hops
  bool outer_ce{false};          ///< outer CE observed at delivery
  bool audited_stuck{false};     ///< already flagged by the conservation audit
  std::uint8_t n_hops{0};
  std::array<HopRecord, kMaxHops> hops{};

  /// The distinguishing mid-path node (the spine on a 3-hop leaf-spine
  /// journey); 0 when the path never left the source leaf.
  [[nodiscard]] std::uint32_t via() const {
    return n_hops >= 2 ? hops[1].node : 0;
  }
  /// True when every switch hop of a delivered packet is present.
  [[nodiscard]] bool full_path() const {
    return outcome == JourneyOutcome::kDelivered && n_hops > 0 && !truncated;
  }
};

/// IPFIX-style record of one (flow, flowlet): the decision that created it,
/// the physical path it was attributed to, and its delivery pathology.
struct FlowletRecord {
  FlightFlowKey flow{};
  std::uint32_t flowlet_id{0};
  std::uint16_t outer_port{0};
  std::uint32_t via{0};          ///< attributed mid-path node (0 = none yet)
  std::string path;              ///< full hop signature, e.g. "s1>c2>s3"
  const char* reason{""};        ///< policy decision rule ("wrr", ...)
  double metric{0.0};            ///< decision operand (weight / util / us)
  sim::Time t_start{0};
  sim::Time t_last{0};
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  std::uint64_t retransmits{0};  ///< source-side: payload below max seq sent
  std::uint64_t reorders{0};     ///< dest-side: in-flowlet arrival inversions
};

/// Per-(path, time-bucket) traffic aggregation, exact in full mode and a
/// sampled estimate otherwise. `via` 0 groups intra-leaf traffic.
struct PathUsage {
  std::uint32_t via{0};
  sim::Time bucket_start{0};
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  std::uint64_t flowlets{0};
};

struct AuditCounts {
  std::uint64_t conservation{0};     ///< packets that vanished in-fabric
  std::uint64_t flowlet_reorder{0};  ///< arrival inversions within a flowlet
  std::uint64_t vm_reorder{0};       ///< VM saw a sequence gap (payload skip)
  std::uint64_t ecn_mask{0};         ///< CE/ECE reached VM w/o all-congested
  [[nodiscard]] std::uint64_t total() const {
    return conservation + flowlet_reorder + vm_reorder + ecn_mask;
  }
};

struct FlightSummary {
  FlightMode mode{FlightMode::kOff};
  std::uint64_t packets_seen{0};      ///< on_pick calls (all data packets)
  std::uint64_t journeys_started{0};
  std::uint64_t delivered{0};
  std::uint64_t consumed{0};
  std::uint64_t dropped{0};
  std::uint64_t live{0};              ///< journeys still in flight at audit
  std::uint64_t full_paths{0};        ///< delivered with complete hop chain
  std::uint64_t not_tracked{0};       ///< journeys skipped (live cap)
  std::uint64_t flowlets{0};
  std::uint64_t flowlets_attributed{0};
  AuditCounts audit{};
  std::vector<PathUsage> paths;       ///< merged over time (one row per via)

  /// delivered -> full-path reconstruction rate in [0,1]; 1.0 when nothing
  /// was delivered (vacuously complete).
  [[nodiscard]] double reconstruction_rate() const {
    return delivered == 0
               ? 1.0
               : static_cast<double>(full_paths) / static_cast<double>(delivered);
  }
  [[nodiscard]] Json to_json() const;
};

/// The fabric flight recorder: per-packet path provenance, per-(flow,
/// flowlet) records, per-path usage aggregation, and always-on invariant
/// auditors. One instance per telemetry Scope; datapath code reaches the
/// thread's active recorder through telemetry::flight() (scope.hpp), which
/// is null whenever the mode is kOff — the disabled cost is one TLS load.
///
/// All hooks take plain integers/strings so net/ and overlay/ stay free of
/// reverse dependencies; node display names are learned from the hooks.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightConfig& cfg,
                          MetricsRegistry* metrics = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] const FlightConfig& config() const { return cfg_; }

  /// Whether `uid` gets a hop-by-hop journey (callers gate per-hop hooks on
  /// this so unsampled packets cost one modulo in sampled mode).
  [[nodiscard]] bool wants(std::uint64_t uid) const {
    return cfg_.mode == FlightMode::kFull || uid % cfg_.sample_every == 0;
  }

  /// Forget all recorded state (start of a new run); config and resolved
  /// audit counter cells survive.
  void reset();

  // --- datapath hooks -----------------------------------------------------

  /// Source hypervisor made a load-balancing decision for a data packet.
  /// Updates the flow/flowlet records for every packet and opens a journey
  /// when wants(uid).
  void on_pick(std::uint64_t uid, std::uint32_t host,
               const std::string& host_name, const FlightFlowKey& flow,
               std::uint32_t dst_ip, std::uint16_t outer_port,
               std::uint32_t flowlet_id, const char* reason, double metric,
               std::uint64_t seq, std::uint32_t payload, sim::Time now);

  /// A switch forwarded the packet (callers pre-filter with wants(uid)).
  void on_hop(std::uint64_t uid, std::uint32_t node, const std::string& name,
              int in_port, int out_port, std::int64_t queue_bytes,
              bool ecn_marked, sim::Time now);

  /// The packet died in-fabric (drop) or was legitimately consumed there.
  void on_drop(std::uint64_t uid, std::uint32_t node, const std::string& name,
               JourneyOutcome outcome, sim::Time now);

  /// The packet reached a destination hypervisor NIC. Finalizes the journey,
  /// attributes the flowlet's physical path, and runs the within-flowlet
  /// arrival-order audit.
  void on_deliver(std::uint64_t uid, std::uint32_t node,
                  const std::string& name, bool outer_ce, sim::Time now);

  /// A packet crossed the vswitch/VM boundary (post reorder buffer). Always
  /// runs the ECN-masking audit (inner CE must never reach the guest); runs
  /// the VM-visible ordering audit only when `ordering_expected` — a reorder
  /// buffer is installed or the scheme requires one (Presto) — since flowlet
  /// schemes only make reordering unlikely, not illegal. Tracked first
  /// transmissions must then cross in send order; retransmissions are loss
  /// recovery and exempt.
  void on_vm_delivery(std::uint64_t uid, const FlightFlowKey& flow,
                      std::uint64_t seq, std::uint32_t payload, bool inner_ce,
                      bool ordering_expected, sim::Time now);

  /// The receiver-side reassembly buffer force-flushed `flow` (timeout or
  /// cap): it deliberately released past a gap, so every send already issued
  /// is amnestied from the VM ordering audit — only later sends must cross
  /// the boundary in order. Without a reassembly buffer this never fires,
  /// which is exactly why raw flowcell interleaving still gets flagged.
  void on_reassembly_flush(const FlightFlowKey& flow);

  /// The fabric recomputed routes (link failed / restored). A flowlet that
  /// straddles the recompute legally changes physical path mid-life, so
  /// every send already issued is amnestied from both ordering audits; the
  /// invariants re-arm for sends issued under the new routing epoch.
  void on_route_change();

  /// ECN-Echo is being surfaced to a guest TCP (arriving ECE or a forged
  /// one). Legal only while the policy reports every path congested (§3.2).
  void on_ecn_to_vm(bool all_paths_congested);

  // --- cross-shard journey handoff (net::ShardChannel) --------------------

  /// Copy the live journey for `uid` into `*out` and stop tracking it here,
  /// WITHOUT recording an outcome: the packet is leaving this shard, not
  /// ending. Returns false (leaving `*out` untouched) when uid is untracked.
  bool take_journey(std::uint64_t uid, Journey* out);

  /// Resume tracking a journey taken from another shard's recorder. The
  /// journey keeps its uid, hops, and origin decision; per-flow audit state
  /// does NOT transfer (flowlet attribution and ordering audits run where
  /// the flow's on_pick stream lives). Returns false — counting the journey
  /// as not_tracked — when the live cap is hit.
  bool adopt_journey(const Journey& j);

  // --- audits -------------------------------------------------------------

  /// Packet-conservation audit: every journey must end (delivered, consumed,
  /// or dropped with a reason). A journey idle longer than `grace` is a
  /// conservation violation — the packet vanished without passing a drop
  /// hook. Returns newly flagged violations (idempotent per journey).
  std::uint64_t audit_conservation(sim::Time now,
                                   sim::Time grace = 100 * sim::kMillisecond);

  [[nodiscard]] const AuditCounts& audit() const { return audit_; }

  /// Test hook invoked on every audit violation with (auditor, detail).
  void set_fail_handler(
      std::function<void(const char*, const std::string&)> fn) {
    fail_handler_ = std::move(fn);
  }

  // --- introspection / export --------------------------------------------

  [[nodiscard]] std::uint64_t packets_seen() const { return packets_seen_; }
  [[nodiscard]] std::uint64_t journeys_started() const { return started_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t live_journeys() const { return live_.size(); }
  /// Tracked first transmissions delivered to a vswitch but not yet consumed
  /// at the VM boundary (leak check for the VM-order audit staging map).
  [[nodiscard]] std::size_t pending_vm() const { return pending_vm_.size(); }

  /// Completed journeys, oldest retained first (bounded ring).
  [[nodiscard]] std::vector<const Journey*> journeys() const;
  /// Most recent completed journey for `uid`, if still retained.
  [[nodiscard]] const Journey* find_journey(std::uint64_t uid) const;

  /// Closed + still-open flowlet records (open ones last, in table order).
  [[nodiscard]] std::vector<FlowletRecord> flowlet_records() const;

  /// Per-(via, bucket) usage rows sorted by (bucket, via).
  [[nodiscard]] std::vector<PathUsage> path_usage() const;

  /// Display name learned for a node id ("n<id>" when never seen).
  [[nodiscard]] std::string node_name(std::uint32_t node) const;

  /// Runs the conservation audit, then summarizes everything.
  FlightSummary summary(sim::Time now,
                        sim::Time grace = 100 * sim::kMillisecond);

  /// One JSON object per line; schemas documented in DESIGN.md §7.
  [[nodiscard]] std::string journeys_jsonl() const;
  [[nodiscard]] std::string flows_jsonl() const;

 private:
  struct FlowState {
    FlowletRecord cur{};           ///< open flowlet (valid when open)
    bool open{false};
    bool attributed{false};        ///< cur has a via from a journey
    std::uint64_t max_seq_end{0};  ///< retransmit detection (source side)
    std::uint64_t send_counter{0}; ///< transmissions so far (send_idx source)
    // Destination-side audit state.
    std::uint32_t arr_flowlet{0};
    std::uint16_t arr_port{0};  ///< the tracked flowlet's outer port — a
                                ///< policy may legally re-pin a live flowlet
                                ///< to a new port when its path vanishes, so
                                ///< FIFO ordering only holds per (flowlet,
                                ///< port) segment
    std::uint64_t arr_last_send{0};
    bool arr_seen{false};
    /// Sends at/below this index are exempt from the within-flowlet audit:
    /// they were in flight across a route recompute (see on_route_change).
    std::uint64_t arr_amnesty{0};
    /// Highest first-transmission send index the VM has seen (vm audit).
    std::uint64_t vm_last_send{0};
    /// Sends at/below this index may legally reach the VM out of order: a
    /// forced reassembly flush released past a gap they can still fill, or
    /// a route recompute moved the flow mid-flight.
    std::uint64_t vm_amnesty{0};
  };

  Journey* journey_for(std::uint64_t uid);
  Journey* begin_journey(std::uint64_t uid, sim::Time now);
  void finalize(Journey& j, JourneyOutcome outcome, std::uint32_t end_node,
                sim::Time now);
  void close_flowlet(FlowState& fs);
  void bump_usage(std::uint32_t via, sim::Time t, std::uint64_t packets,
                  std::uint64_t bytes, std::uint64_t flowlets);
  void violation(const char* auditor, std::uint64_t AuditCounts::*counter,
                 Counter* cell, const std::string& detail);
  void learn_name(std::uint32_t node, const std::string& name);

  FlightConfig cfg_;

  // Journey side-buffer: uid -> slab slot, plus a freelist so steady-state
  // tracking does not allocate.
  util::FlatMap<std::uint64_t, std::uint32_t> live_;
  std::vector<Journey> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Journey> ring_;    ///< completed journeys (bounded)
  std::size_t ring_next_{0};

  util::FlatMap<FlightFlowKey, FlowState, FlightFlowKeyHash> flows_;
  /// Delivered-but-not-yet-at-the-VM data packets (in a reorder buffer, or
  /// mid call stack): uid -> send_idx, consumed by on_vm_delivery.
  util::FlatMap<std::uint64_t, std::uint64_t> pending_vm_;
  std::vector<FlowletRecord> closed_flowlets_;  ///< bounded ring
  std::size_t closed_next_{0};
  util::FlatMap<std::uint64_t, PathUsage> usage_;  ///< (via, bucket) -> usage
  util::FlatMap<std::uint32_t, std::string> names_;

  std::uint64_t packets_seen_{0};
  std::uint64_t started_{0};
  std::uint64_t delivered_{0};
  std::uint64_t consumed_{0};
  std::uint64_t dropped_{0};
  std::uint64_t full_paths_{0};
  std::uint64_t not_tracked_{0};
  std::uint64_t flowlets_{0};
  std::uint64_t flowlets_attributed_{0};

  AuditCounts audit_{};
  struct AuditCells {
    Counter* conservation{nullptr};
    Counter* flowlet_reorder{nullptr};
    Counter* vm_reorder{nullptr};
    Counter* ecn_mask{nullptr};
  };
  AuditCells cells_{};
  std::function<void(const char*, const std::string&)> fail_handler_;
  int loud_prints_left_{8};
};

}  // namespace clove::telemetry
