#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/json.hpp"

namespace clove::telemetry {

/// Structured-event categories, usable as a bitmask filter.
enum class Category : unsigned {
  kQueue = 1u << 0,     ///< egress-queue events: drops, overflow
  kPath = 1u << 1,      ///< in-fabric path selection (CONGA / LetFlow)
  kFlowlet = 1u << 2,   ///< edge flowlet creation / port assignment
  kFeedback = 1u << 3,  ///< ECN interception and feedback relay
  kWeight = 1u << 4,    ///< Clove WRR weight updates
  kTopology = 1u << 5,  ///< link failed / restored, route recomputes
  kTcp = 1u << 6,       ///< guest TCP timeouts / fast retransmits
  kFault = 1u << 7,     ///< injected faults + path-health transitions
};

inline constexpr unsigned kAllCategories = 0xff;

[[nodiscard]] const char* category_name(Category c);
/// Parse a comma-separated category list ("weight,tcp") into a mask;
/// unknown names are ignored, empty input yields kAllCategories.
[[nodiscard]] unsigned parse_category_mask(const std::string& list);

/// One simulation event. `node` identifies the emitting entity (switch /
/// link / host name, or "dst:<ip>" for per-destination policy state);
/// `value` and `id` carry the event's primary numeric payload (meaning
/// documented per event name in DESIGN.md §Observability), and `detail` is a
/// short human-readable elaboration.
struct TraceEvent {
  sim::Time t{0};
  Category cat{Category::kQueue};
  std::string node;
  std::string name;
  std::string detail;
  double value{0.0};
  std::uint64_t id{0};
  /// Monotonic per-TraceLog recording index, stamped by record(). Exports
  /// sort by (t, seq) so the serialized order is canonical: some emitters
  /// (e.g. clove.weight remaps driven by discovery) record with a stale
  /// timestamp, and insertion order alone would make artifact diffs depend
  /// on scheduling details such as CLOVE_THREADS.
  std::uint64_t seq{0};
};

/// Bounded ring buffer of TraceEvents keyed to simulated time. When full,
/// the oldest events are overwritten (dropped_oldest() counts them), so a
/// capture always holds the most recent window — what you want when a run
/// ends in the interesting state (e.g. after a link failure).
class TraceLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  TraceLog() { set_capacity(kDefaultCapacity); }

  /// Resize the ring; existing events are dropped (capture restarts).
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Record only events whose category is in `mask`.
  void set_filter(unsigned mask) { mask_ = mask; }
  [[nodiscard]] unsigned filter() const { return mask_; }
  [[nodiscard]] bool accepts(Category c) const {
    return (mask_ & static_cast<unsigned>(c)) != 0;
  }

  void record(TraceEvent ev);
  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint64_t recorded_total() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped_oldest() const { return dropped_; }

  /// Events sorted by (t, seq) — deterministic regardless of the order
  /// stale-timestamped events were recorded in — optionally filtered.
  [[nodiscard]] std::vector<const TraceEvent*> events(
      unsigned mask = kAllCategories) const;

  /// One JSON object per line: {"t_ns":..,"seq":..,"cat":..,"node":..,
  /// "name":..,"detail":..,"value":..,"id":..}, in (t, seq) order.
  [[nodiscard]] std::string to_jsonl(unsigned mask = kAllCategories) const;

  /// chrome://tracing / Perfetto "trace event" JSON: instant events on one
  /// track per node, timestamped in simulated microseconds.
  [[nodiscard]] std::string to_chrome_trace(
      unsigned mask = kAllCategories) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_{0};
  std::size_t next_{0};  ///< slot the next event lands in
  std::size_t size_{0};
  unsigned mask_{kAllCategories};
  std::uint64_t recorded_{0};
  std::uint64_t dropped_{0};
};

}  // namespace clove::telemetry
