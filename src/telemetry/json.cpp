#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace clove::telemetry {

namespace {
const Json& null_json() {
  static const Json j;
  return j;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  out += buf;
}

struct Parser {
  const std::string& text;
  std::size_t pos{0};
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return at_end() ? '\0' : text[pos]; }
  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }
  bool expect(char c) {
    if (peek() != c) return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }
  bool literal(const char* word, Json value, Json& out) {
    for (const char* p = word; *p; ++p, ++pos) {
      if (at_end() || text[pos] != *p) return fail("bad literal");
    }
    out = std::move(value);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    while (!at_end() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("dangling escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("short \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::strtoul(text.substr(pos, 4).c_str(),
                                                 nullptr, 16));
          pos += 4;
          // ASCII passes through; anything else degrades to '?' (the
          // emitter never produces non-ASCII escapes).
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return expect('"');
  }

  bool parse_value(Json& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == 'n') return literal("null", Json(), out);
    if (c == 't') return literal("true", Json(true), out);
    if (c == 'f') return literal("false", Json(false), out);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json item;
        if (!parse_value(item, depth + 1)) return false;
        out.push_back(std::move(item));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        return expect(']');
      }
    }
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!expect(':')) return false;
        Json value;
        if (!parse_value(value, depth + 1)) return false;
        out.set(key, std::move(value));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        return expect('}');
      }
    }
    // Number.
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return fail("unexpected character");
    pos += static_cast<std::size_t>(end - start);
    out = Json(v);
    return true;
  }
};

}  // namespace

const Json& Json::operator[](const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  return null_json();
}

const Json& Json::operator[](std::size_t i) const {
  return i < arr_.size() ? arr_[i] : null_json();
}

bool Json::contains(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  arr_.push_back(std::move(value));
  return *this;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    case Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_escaped(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out, 0)) {
    if (error != nullptr) *error = p.error;
    return Json();
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return Json();
  }
  if (error != nullptr) error->clear();
  return out;
}

}  // namespace clove::telemetry
