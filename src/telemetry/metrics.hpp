#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace clove::telemetry {

/// Metric label set, e.g. {{"link", "L1->S2"}, {"scheme", "clove-ecn"}}.
/// Canonicalized (sorted by key) when used to identify a registry cell.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter cell. Cells are owned by the MetricsRegistry and stay
/// valid for the process lifetime, so instrumented components resolve them
/// once (at construction) and do a plain add on the hot path, guarded by the
/// hub's enabled() check.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  [[nodiscard]] std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_{0};
};

/// Last-value / high-watermark gauge cell.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  /// Keep the maximum seen (queue-depth high-watermarks).
  void update_max(double v) {
    if (v > v_) v_ = v;
  }
  [[nodiscard]] double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_{0.0};
};

/// Log-bucketed histogram: exponential buckets with kSubBuckets buckets per
/// octave (~9% relative resolution at 8/octave), a sparse bucket map, and
/// exact count/sum/min/max. percentile() interpolates inside the bucket, so
/// estimates stay within the bucket's relative width of the true value —
/// tested against stats::Samples in test_metrics.cpp.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// p in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  void reset();

 private:
  static int bucket_index(double v);
  static double bucket_lower(int idx);

  std::map<int, std::uint64_t> buckets_;  ///< ordered for percentile walks
  std::uint64_t nonpositive_{0};          ///< v <= 0 observations
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported metric value (see MetricsRegistry::snapshot()).
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind{MetricKind::kCounter};
  double value{0.0};  ///< counter (as double) or gauge value
  // Histogram-only fields.
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};
  double p50{0.0};
  double p99{0.0};
};

/// Point-in-time export of every registered metric, sorted by (name, labels)
/// for deterministic artifacts.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  [[nodiscard]] const MetricSample* find(const std::string& name,
                                         const Labels& labels = {}) const;
  [[nodiscard]] double value_or(const std::string& name, double fallback,
                                const Labels& labels = {}) const;
  /// Sum of `value` across every label set of `name` (fabric-wide totals).
  [[nodiscard]] double sum_over(const std::string& name) const;
  [[nodiscard]] Json to_json() const;
};

/// Named, labeled metric cells with get-or-create registration and a
/// snapshot/export API. Lookups happen at component construction; the hot
/// path touches only the returned cell. Values survive reset_values() as
/// zeroed cells, so resolved pointers never dangle across runs.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  Histogram* histogram(const std::string& name, const Labels& labels = {});

  /// Zero every cell (start of a run). Cells remain registered.
  void reset_values();
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  Entry* get_or_create(MetricKind kind, const std::string& name,
                       const Labels& labels);

  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace clove::telemetry
