#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace clove::telemetry {

const char* flight_mode_name(FlightMode m) {
  switch (m) {
    case FlightMode::kOff: return "off";
    case FlightMode::kSampled: return "sampled";
    case FlightMode::kFull: return "full";
  }
  return "?";
}

const char* journey_outcome_name(JourneyOutcome o) {
  switch (o) {
    case JourneyOutcome::kInFlight: return "in_flight";
    case JourneyOutcome::kDelivered: return "delivered";
    case JourneyOutcome::kConsumed: return "consumed";
    case JourneyOutcome::kDropOverflow: return "drop_overflow";
    case JourneyOutcome::kDropLinkDown: return "drop_link_down";
    case JourneyOutcome::kDropNoRoute: return "drop_no_route";
    case JourneyOutcome::kDropTtl: return "drop_ttl";
    case JourneyOutcome::kDropFault: return "drop_fault";
  }
  return "?";
}

std::string FlightFlowKey::to_string() const {
  std::string s;
  s += std::to_string(src_ip);
  s += ':';
  s += std::to_string(src_port);
  s += '>';
  s += std::to_string(dst_ip);
  s += ':';
  s += std::to_string(dst_port);
  return s;
}

FlightConfig FlightConfig::from_env() {
  FlightConfig c;
  if (const char* v = std::getenv("CLOVE_FLIGHT_RECORDER")) {
    if (std::strcmp(v, "full") == 0) {
      c.mode = FlightMode::kFull;
    } else if (std::strcmp(v, "sampled") == 0) {
      c.mode = FlightMode::kSampled;
    } else {
      c.mode = FlightMode::kOff;
    }
  }
  if (const char* v = std::getenv("CLOVE_FLIGHT_SAMPLE")) {
    const long n = std::atol(v);
    if (n > 0) c.sample_every = static_cast<std::uint64_t>(n);
  }
  return c;
}

FlightRecorder::FlightRecorder(const FlightConfig& cfg, MetricsRegistry* metrics)
    : cfg_(cfg) {
  if (cfg_.sample_every == 0) cfg_.sample_every = 1;
  if (metrics != nullptr) {
    cells_.conservation = metrics->counter("clove.audit.conservation", {});
    cells_.flowlet_reorder = metrics->counter("clove.audit.flowlet_reorder", {});
    cells_.vm_reorder = metrics->counter("clove.audit.vm_reorder", {});
    cells_.ecn_mask = metrics->counter("clove.audit.ecn_mask", {});
  }
}

void FlightRecorder::reset() {
  live_.clear();
  slab_.clear();
  free_slots_.clear();
  ring_.clear();
  ring_next_ = 0;
  flows_.clear();
  pending_vm_.clear();
  closed_flowlets_.clear();
  closed_next_ = 0;
  usage_.clear();
  names_.clear();
  packets_seen_ = started_ = delivered_ = consumed_ = dropped_ = 0;
  full_paths_ = not_tracked_ = flowlets_ = flowlets_attributed_ = 0;
  audit_ = AuditCounts{};
  loud_prints_left_ = 8;
}

void FlightRecorder::learn_name(std::uint32_t node, const std::string& name) {
  auto [slot, inserted] = names_.try_emplace(node);
  if (inserted) *slot = name;
}

std::string FlightRecorder::node_name(std::uint32_t node) const {
  const std::string* n = names_.find(node);
  if (n != nullptr && !n->empty()) return *n;
  std::string s = "n";
  s += std::to_string(node);
  return s;
}

// ---------------------------------------------------------------------------
// Journey side-buffer
// ---------------------------------------------------------------------------

Journey* FlightRecorder::journey_for(std::uint64_t uid) {
  std::uint32_t* slot = live_.find(uid);
  return slot == nullptr ? nullptr : &slab_[*slot];
}

Journey* FlightRecorder::begin_journey(std::uint64_t uid, sim::Time now) {
  if (live_.size() >= cfg_.max_live_journeys) {
    ++not_tracked_;
    return nullptr;
  }
  auto [slot, inserted] = live_.try_emplace(uid);
  if (!inserted) {
    // A recycled uid should be impossible (uids are per-simulation unique);
    // replace the stale journey rather than corrupting it.
    Journey& j = slab_[*slot];
    j = Journey{};
    j.uid = uid;
    j.t_start = j.t_last = now;
    return &j;
  }
  ++started_;
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
    slab_[idx] = Journey{};
  } else {
    idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  *slot = idx;
  Journey& j = slab_[idx];
  j.uid = uid;
  j.t_start = j.t_last = now;
  return &j;
}

bool FlightRecorder::take_journey(std::uint64_t uid, Journey* out) {
  std::uint32_t* slot = live_.find(uid);
  if (slot == nullptr) return false;
  *out = slab_[*slot];
  free_slots_.push_back(*slot);
  live_.erase(uid);
  return true;
}

bool FlightRecorder::adopt_journey(const Journey& j) {
  if (live_.size() >= cfg_.max_live_journeys) {
    ++not_tracked_;
    return false;
  }
  auto [slot, inserted] = live_.try_emplace(j.uid);
  std::uint32_t idx;
  if (!inserted) {
    idx = *slot;  // impossible in practice (uids are globally unique)
  } else if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  *slot = idx;
  slab_[idx] = j;
  return true;
}

void FlightRecorder::finalize(Journey& j, JourneyOutcome outcome,
                              std::uint32_t end_node, sim::Time now) {
  j.outcome = outcome;
  j.end_node = end_node;
  j.t_end = j.t_last = now;
  switch (outcome) {
    case JourneyOutcome::kDelivered:
      ++delivered_;
      if (j.full_path()) ++full_paths_;
      break;
    case JourneyOutcome::kConsumed:
      ++consumed_;
      break;
    default:
      ++dropped_;
      break;
  }

  // Per-path usage: delivered packets are attributed to the mid-path node
  // they actually crossed, bucketed by delivery time. Only journeys that
  // began at a vswitch pick count — probe/reply traffic would otherwise
  // pollute the data-plane share view with bytes the tenant never sent.
  if (outcome == JourneyOutcome::kDelivered && j.n_hops > 0 && j.has_origin) {
    bump_usage(j.via(), now, 1, j.payload, 0);
  }

  // Flowlet attribution + within-flowlet arrival ordering (dest side).
  if (j.flow.valid() && outcome == JourneyOutcome::kDelivered) {
    FlowState* fs = flows_.find(j.flow);
    if (fs != nullptr) {
      if (fs->open && !fs->attributed && fs->cur.flowlet_id == j.flowlet_id &&
          j.n_hops > 0) {
        fs->attributed = true;
        fs->cur.via = j.via();
        std::string sig;
        for (std::uint8_t h = 0; h < j.n_hops; ++h) {
          if (h > 0) sig += '>';
          sig += node_name(j.hops[h].node);
        }
        fs->cur.path = std::move(sig);
        ++flowlets_attributed_;
        bump_usage(fs->cur.via, fs->cur.t_start, 0, 0, 1);
      }
      if (j.payload > 0 && j.has_origin) {
        // Within-flowlet ordering is audited in SEND order: a flowlet rides
        // one path, and one path is FIFO, so tracked packets of the same
        // flowlet must arrive in the order they were handed to the fabric.
        // Seq order would misfire on retransmissions (old seq, new send).
        // The segment is (flowlet, outer port): a policy may legally re-pin
        // a live flowlet to a new port when its old path vanishes from the
        // discovered set, and the FIFO argument only holds per port.
        if (fs->arr_seen && j.flowlet_id == fs->arr_flowlet &&
            j.outer_port == fs->arr_port) {
          if (j.send_idx < fs->arr_last_send &&
              j.send_idx > fs->arr_amnesty) {
            if (fs->open && fs->cur.flowlet_id == j.flowlet_id) {
              ++fs->cur.reorders;
            }
            std::string detail = j.flow.to_string();
            detail += " flowlet ";
            detail += std::to_string(j.flowlet_id);
            detail += " send #";
            detail += std::to_string(j.send_idx);
            detail += " (seq ";
            detail += std::to_string(j.seq);
            detail += ") arrived after send #";
            detail += std::to_string(fs->arr_last_send);
            violation("flowlet_reorder", &AuditCounts::flowlet_reorder,
                      cells_.flowlet_reorder, detail);
          } else if (j.send_idx > fs->arr_last_send) {
            fs->arr_last_send = j.send_idx;
          }
        } else if (!fs->arr_seen || j.flowlet_id > fs->arr_flowlet ||
                   j.flowlet_id == fs->arr_flowlet) {
          // New (or first) flowlet segment observed at the destination;
          // stale packets from superseded flowlets are expected to
          // interleave around a switchover and are not within-flowlet
          // inversions. A same-flowlet port change re-bases tracking on the
          // new segment (interleaved old-port stragglers just re-base again
          // — never a false positive).
          fs->arr_seen = true;
          fs->arr_flowlet = j.flowlet_id;
          fs->arr_port = j.outer_port;
          fs->arr_last_send = j.send_idx;
        }
      }
    }
    // Stage the send index for the VM-boundary ordering audit. Only first
    // transmissions participate: a retransmission legitimately crosses the
    // VM boundary long after newer data (and, through a reassembly buffer,
    // may release buffered older sends behind it).
    if (j.payload > 0 && j.has_origin && !j.is_rtx) {
      pending_vm_[j.uid] = j.send_idx;
    }
  }

  // Retire into the completed ring and recycle the slab slot.
  const std::size_t cap = std::max<std::size_t>(1, cfg_.journey_ring);
  if (ring_.size() < cap) {
    ring_.push_back(j);
    ring_next_ = ring_.size() % cap;
  } else {
    ring_[ring_next_] = j;
    ring_next_ = (ring_next_ + 1) % cap;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(&j - slab_.data());
  live_.erase(j.uid);
  free_slots_.push_back(idx);
}

// ---------------------------------------------------------------------------
// Datapath hooks
// ---------------------------------------------------------------------------

void FlightRecorder::on_pick(std::uint64_t uid, std::uint32_t host,
                             const std::string& host_name,
                             const FlightFlowKey& flow, std::uint32_t dst_ip,
                             std::uint16_t outer_port, std::uint32_t flowlet_id,
                             const char* reason, double metric,
                             std::uint64_t seq, std::uint32_t payload,
                             sim::Time now) {
  ++packets_seen_;
  learn_name(host, host_name);

  FlowState& fs = flows_[flow];
  if (!fs.open || fs.cur.flowlet_id != flowlet_id ||
      fs.cur.outer_port != outer_port) {
    if (fs.open) close_flowlet(fs);
    fs.open = true;
    fs.attributed = false;
    fs.cur = FlowletRecord{};
    fs.cur.flow = flow;
    fs.cur.flowlet_id = flowlet_id;
    fs.cur.outer_port = outer_port;
    fs.cur.reason = reason;
    fs.cur.metric = metric;
    fs.cur.t_start = now;
    ++flowlets_;
  }
  fs.cur.t_last = now;
  ++fs.cur.packets;
  ++fs.send_counter;
  fs.cur.bytes += payload;
  bool is_rtx = false;
  if (payload > 0) {
    const std::uint64_t seq_end = seq + payload;
    if (seq_end <= fs.max_seq_end) {
      is_rtx = true;
      ++fs.cur.retransmits;
    } else {
      fs.max_seq_end = seq_end;
    }
  }
  if (fs.attributed) bump_usage(fs.cur.via, now, 0, payload, 0);

  if (!wants(uid)) return;
  Journey* j = begin_journey(uid, now);
  if (j == nullptr) return;
  j->flow = flow;
  j->origin = host;
  j->has_origin = true;
  j->dst_ip = dst_ip;
  j->outer_port = outer_port;
  j->flowlet_id = flowlet_id;
  j->seq = seq;
  j->send_idx = fs.send_counter;
  j->is_rtx = is_rtx;
  j->payload = payload;
}

void FlightRecorder::on_hop(std::uint64_t uid, std::uint32_t node,
                            const std::string& name, int in_port, int out_port,
                            std::int64_t queue_bytes, bool ecn_marked,
                            sim::Time now) {
  if (!wants(uid)) return;
  learn_name(node, name);
  Journey* j = journey_for(uid);
  if (j == nullptr) {
    // First sight of this packet (probe traffic, or traffic injected below
    // the vswitch): open a journey without flow identity.
    j = begin_journey(uid, now);
    if (j == nullptr) return;
  }
  j->t_last = now;
  if (j->n_hops < Journey::kMaxHops) {
    HopRecord& h = j->hops[j->n_hops++];
    h.t = now;
    h.node = node;
    h.in_port = static_cast<std::int16_t>(in_port);
    h.out_port = static_cast<std::int16_t>(out_port);
    h.queue_bytes = queue_bytes;
    h.ecn_marked = ecn_marked;
  } else {
    j->truncated = true;
  }
}

void FlightRecorder::on_drop(std::uint64_t uid, std::uint32_t node,
                             const std::string& name, JourneyOutcome outcome,
                             sim::Time now) {
  if (!wants(uid)) return;
  learn_name(node, name);
  Journey* j = journey_for(uid);
  if (j == nullptr) return;
  finalize(*j, outcome, node, now);
}

void FlightRecorder::on_deliver(std::uint64_t uid, std::uint32_t node,
                                const std::string& name, bool outer_ce,
                                sim::Time now) {
  if (!wants(uid)) return;
  learn_name(node, name);
  Journey* j = journey_for(uid);
  if (j == nullptr) return;
  j->outer_ce = outer_ce;
  finalize(*j, JourneyOutcome::kDelivered, node, now);
}

void FlightRecorder::on_vm_delivery(std::uint64_t uid,
                                    const FlightFlowKey& flow,
                                    std::uint64_t seq, std::uint32_t payload,
                                    bool inner_ce, bool ordering_expected,
                                    sim::Time /*now*/) {
  if (inner_ce) {
    violation("ecn_mask", &AuditCounts::ecn_mask, cells_.ecn_mask,
              "inner CE reached the VM on " + flow.to_string());
  }
  if (payload == 0) return;
  // VM-visible ordering (the Presto reassembly invariant): tracked first
  // transmissions of a flow must cross the VM boundary in the order they
  // were handed to the fabric. Retransmissions are exempt — loss recovery
  // legitimately delivers old data after newer data on any scheme — and are
  // simply absent from pending_vm_.
  const std::uint64_t* staged = pending_vm_.find(uid);
  if (staged == nullptr) return;
  const std::uint64_t send_idx = *staged;
  pending_vm_.erase(uid);
  // Flowlet schemes deliver straight through with no ordering promise; an
  // occasional cross-flowlet overtake there is legal, so the boundary audit
  // only arms when reassembly is (supposed to be) restoring send order.
  if (!ordering_expected) return;
  FlowState& fs = flows_[flow];
  if (send_idx < fs.vm_last_send) {
    // A forced reassembly flush deliberately released past a gap; stragglers
    // that were already in flight when it fired (send_idx <= the amnesty
    // watermark) are the designed aftermath, not a reassembly bug.
    if (send_idx <= fs.vm_amnesty) return;
    std::string detail = flow.to_string();
    detail += " VM saw send #";
    detail += std::to_string(send_idx);
    detail += " (seq ";
    detail += std::to_string(seq);
    detail += ") after send #";
    detail += std::to_string(fs.vm_last_send);
    violation("vm_reorder", &AuditCounts::vm_reorder, cells_.vm_reorder,
              detail);
  } else {
    fs.vm_last_send = send_idx;
  }
}

void FlightRecorder::on_reassembly_flush(const FlightFlowKey& flow) {
  // Every packet of the flow sent so far could legally reach the VM after
  // the flush's released horizon; only sends issued from now on must cross
  // the boundary in order again.
  FlowState& fs = flows_[flow];
  fs.vm_amnesty = fs.send_counter;
}

void FlightRecorder::on_route_change() {
  // A route recompute (failure, recovery, weight push) legally moves live
  // flowlets onto new paths mid-stream: a flowlet no longer rides a single
  // FIFO queue, and reassembly horizons shift under the flush logic. Every
  // packet already handed to the fabric is therefore exempt from both
  // ordering audits; only post-recompute sends must be ordered again.
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    FlowState& fs = it.value();
    fs.arr_amnesty = fs.send_counter;
    fs.vm_amnesty = fs.send_counter;
  }
}

void FlightRecorder::on_ecn_to_vm(bool all_paths_congested) {
  if (all_paths_congested) return;
  violation("ecn_mask", &AuditCounts::ecn_mask, cells_.ecn_mask,
            "ECE surfaced to a VM while uncongested paths remain");
}

// ---------------------------------------------------------------------------
// Flow/flowlet bookkeeping
// ---------------------------------------------------------------------------

void FlightRecorder::close_flowlet(FlowState& fs) {
  if (!fs.open) return;
  const std::size_t cap = std::max<std::size_t>(1, cfg_.max_flowlet_records);
  if (closed_flowlets_.size() < cap) {
    closed_flowlets_.push_back(std::move(fs.cur));
    closed_next_ = closed_flowlets_.size() % cap;
  } else {
    closed_flowlets_[closed_next_] = std::move(fs.cur);
    closed_next_ = (closed_next_ + 1) % cap;
  }
  fs.open = false;
  fs.attributed = false;
}

void FlightRecorder::bump_usage(std::uint32_t via, sim::Time t,
                                std::uint64_t packets, std::uint64_t bytes,
                                std::uint64_t flowlets) {
  const sim::Time width = cfg_.usage_bucket > 0 ? cfg_.usage_bucket : 1;
  const std::uint64_t bucket =
      t <= 0 ? 0 : static_cast<std::uint64_t>(t / width);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(via) << 24) | (bucket & 0xffffffull);
  PathUsage& u = usage_[key];
  u.via = via;
  u.bucket_start = static_cast<sim::Time>(bucket) * width;
  u.packets += packets;
  u.bytes += bytes;
  u.flowlets += flowlets;
}

// ---------------------------------------------------------------------------
// Audits
// ---------------------------------------------------------------------------

void FlightRecorder::violation(const char* auditor,
                               std::uint64_t AuditCounts::*counter,
                               Counter* cell, const std::string& detail) {
  ++(audit_.*counter);
  if (cell != nullptr) cell->add();
  if (fail_handler_) {
    fail_handler_(auditor, detail);
  } else if (loud_prints_left_ > 0) {
    --loud_prints_left_;
    std::fprintf(stderr, "[clove.audit.%s] %s%s\n", auditor, detail.c_str(),
                 loud_prints_left_ == 0 ? " (further violations muted)" : "");
  }
}

std::uint64_t FlightRecorder::audit_conservation(sim::Time now,
                                                 sim::Time grace) {
  std::uint64_t fresh = 0;
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    Journey& j = slab_[it.value()];
    if (j.audited_stuck || now - j.t_last <= grace) continue;
    j.audited_stuck = true;
    ++fresh;
    std::string detail = "packet uid ";
    detail += std::to_string(j.uid);
    detail += " last seen at ";
    detail += node_name(j.n_hops > 0 ? j.hops[j.n_hops - 1].node : j.origin);
    detail += ", idle ";
    detail += std::to_string(sim::to_microseconds(now - j.t_last));
    detail += "us with no delivery or drop record";
    violation("conservation", &AuditCounts::conservation, cells_.conservation,
              detail);
  }
  return fresh;
}

// ---------------------------------------------------------------------------
// Introspection / export
// ---------------------------------------------------------------------------

std::vector<const Journey*> FlightRecorder::journeys() const {
  std::vector<const Journey*> out;
  out.reserve(ring_.size());
  const std::size_t cap = std::max<std::size_t>(1, cfg_.journey_ring);
  const std::size_t start = ring_.size() < cap ? 0 : ring_next_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(&ring_[(start + i) % ring_.size()]);
  }
  return out;
}

const Journey* FlightRecorder::find_journey(std::uint64_t uid) const {
  const Journey* found = nullptr;
  for (const Journey& j : ring_) {
    if (j.uid == uid) found = &j;
  }
  return found;
}

std::vector<FlowletRecord> FlightRecorder::flowlet_records() const {
  std::vector<FlowletRecord> out;
  out.reserve(closed_flowlets_.size() + flows_.size());
  const std::size_t cap = std::max<std::size_t>(1, cfg_.max_flowlet_records);
  const std::size_t start = closed_flowlets_.size() < cap ? 0 : closed_next_;
  for (std::size_t i = 0; i < closed_flowlets_.size(); ++i) {
    out.push_back(closed_flowlets_[(start + i) % closed_flowlets_.size()]);
  }
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it.value().open) out.push_back(it.value().cur);
  }
  return out;
}

std::vector<PathUsage> FlightRecorder::path_usage() const {
  std::vector<PathUsage> out;
  out.reserve(usage_.size());
  for (auto it = usage_.begin(); it != usage_.end(); ++it) {
    out.push_back(it.value());
  }
  std::sort(out.begin(), out.end(), [](const PathUsage& a, const PathUsage& b) {
    if (a.bucket_start != b.bucket_start) return a.bucket_start < b.bucket_start;
    return a.via < b.via;
  });
  return out;
}

FlightSummary FlightRecorder::summary(sim::Time now, sim::Time grace) {
  audit_conservation(now, grace);
  FlightSummary s;
  s.mode = cfg_.mode;
  s.packets_seen = packets_seen_;
  s.journeys_started = started_;
  s.delivered = delivered_;
  s.consumed = consumed_;
  s.dropped = dropped_;
  s.live = live_.size();
  s.full_paths = full_paths_;
  s.not_tracked = not_tracked_;
  s.flowlets = flowlets_;
  s.flowlets_attributed = flowlets_attributed_;
  s.audit = audit_;
  // Merge usage buckets into one row per via for the at-a-glance share view.
  util::FlatMap<std::uint64_t, PathUsage> merged;
  for (const PathUsage& u : path_usage()) {
    PathUsage& m = merged[u.via];
    m.via = u.via;
    m.packets += u.packets;
    m.bytes += u.bytes;
    m.flowlets += u.flowlets;
  }
  for (auto it = merged.begin(); it != merged.end(); ++it) {
    s.paths.push_back(it.value());
  }
  std::sort(s.paths.begin(), s.paths.end(),
            [](const PathUsage& a, const PathUsage& b) { return a.via < b.via; });
  return s;
}

Json FlightSummary::to_json() const {
  Json j = Json::object();
  j.set("mode", flight_mode_name(mode));
  j.set("packets_seen", packets_seen);
  j.set("journeys_started", journeys_started);
  j.set("delivered", delivered);
  j.set("consumed", consumed);
  j.set("dropped", dropped);
  j.set("live", live);
  j.set("full_paths", full_paths);
  j.set("not_tracked", not_tracked);
  j.set("reconstruction_rate", reconstruction_rate());
  j.set("flowlets", flowlets);
  j.set("flowlets_attributed", flowlets_attributed);
  Json a = Json::object();
  a.set("conservation", audit.conservation);
  a.set("flowlet_reorder", audit.flowlet_reorder);
  a.set("vm_reorder", audit.vm_reorder);
  a.set("ecn_mask", audit.ecn_mask);
  j.set("audit", std::move(a));
  Json ps = Json::array();
  for (const PathUsage& p : paths) {
    Json row = Json::object();
    row.set("via", static_cast<std::uint64_t>(p.via));
    row.set("packets", p.packets);
    row.set("bytes", p.bytes);
    row.set("flowlets", p.flowlets);
    ps.push_back(std::move(row));
  }
  j.set("paths", std::move(ps));
  return j;
}

std::string FlightRecorder::journeys_jsonl() const {
  std::string out;
  for (const Journey* j : journeys()) {
    Json line = Json::object();
    line.set("uid", j->uid);
    if (j->flow.valid()) line.set("flow", j->flow.to_string());
    line.set("flowlet", static_cast<std::uint64_t>(j->flowlet_id));
    line.set("outer_port", static_cast<std::uint64_t>(j->outer_port));
    line.set("seq", j->seq);
    line.set("payload", static_cast<std::uint64_t>(j->payload));
    line.set("t_start_ns", static_cast<double>(j->t_start));
    line.set("t_end_ns", static_cast<double>(j->t_end));
    line.set("outcome", journey_outcome_name(j->outcome));
    if (j->has_origin) line.set("origin", node_name(j->origin));
    line.set("end_node", node_name(j->end_node));
    if (j->outer_ce) line.set("outer_ce", true);
    if (j->truncated) line.set("truncated", true);
    Json hops = Json::array();
    for (std::uint8_t h = 0; h < j->n_hops; ++h) {
      const HopRecord& hr = j->hops[h];
      Json hop = Json::object();
      hop.set("t_ns", static_cast<double>(hr.t));
      hop.set("node", node_name(hr.node));
      hop.set("in", static_cast<int>(hr.in_port));
      hop.set("out", static_cast<int>(hr.out_port));
      hop.set("q_bytes", static_cast<double>(hr.queue_bytes));
      if (hr.ecn_marked) hop.set("ecn", true);
      hops.push_back(std::move(hop));
    }
    line.set("hops", std::move(hops));
    out += line.dump();
    out += '\n';
  }
  return out;
}

std::string FlightRecorder::flows_jsonl() const {
  std::string out;
  for (const FlowletRecord& r : flowlet_records()) {
    Json line = Json::object();
    line.set("flow", r.flow.to_string());
    line.set("flowlet", static_cast<std::uint64_t>(r.flowlet_id));
    line.set("outer_port", static_cast<std::uint64_t>(r.outer_port));
    line.set("via", node_name(r.via));
    if (!r.path.empty()) line.set("path", r.path);
    line.set("reason", r.reason);
    line.set("metric", r.metric);
    line.set("t_start_ns", static_cast<double>(r.t_start));
    line.set("t_last_ns", static_cast<double>(r.t_last));
    line.set("packets", r.packets);
    line.set("bytes", r.bytes);
    line.set("retransmits", r.retransmits);
    line.set("reorders", r.reorders);
    out += line.dump();
    out += '\n';
  }
  return out;
}

}  // namespace clove::telemetry
