#pragma once

#include <cstddef>
#include <memory>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace clove::telemetry {

/// Construction-time knobs for a telemetry Scope. from_env() reads the same
/// environment variables the process-wide hub always honored:
///   CLOVE_TELEMETRY=1           enable collection
///   CLOVE_TRACE_CAPACITY=N      trace ring size (default 65536 events)
///   CLOVE_TRACE_CATEGORIES=a,b  category filter (e.g. "weight,topology")
///   CLOVE_FLIGHT_RECORDER=off|sampled|full   flight recorder mode
///   CLOVE_FLIGHT_SAMPLE=N       sampled mode: journey every Nth packet
struct ScopeSettings {
  bool enabled{false};
  std::size_t trace_capacity{TraceLog::kDefaultCapacity};
  unsigned trace_filter{kAllCategories};
  FlightConfig flight{};

  [[nodiscard]] static ScopeSettings from_env();
};

/// One telemetry collection domain: a metrics registry plus a trace ring plus
/// an on/off flag. Historically these were process-wide singletons; scoping
/// them lets harness::ParallelRunner give every concurrently running sweep
/// point its own isolated registry — no cross-thread sharing, no locks on the
/// recording hot path — while single-threaded code keeps using the implicit
/// process scope through the unchanged telemetry::hub() facade.
///
/// A Scope is not itself thread-safe; it is installed on exactly one thread
/// at a time via ScopeGuard.
class Scope {
 public:
  Scope() = default;
  explicit Scope(const ScopeSettings& s)
      : enabled_(s.enabled), flight_cfg_(s.flight) {
    trace_.set_capacity(s.trace_capacity);
    trace_.set_filter(s.trace_filter);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] TraceLog& trace() { return trace_; }

  /// Flip collection for this scope; when the scope is current on the calling
  /// thread, the hot-path enabled() flag is updated too.
  void set_enabled(bool on);
  [[nodiscard]] bool is_enabled() const { return enabled_; }

  /// The scope's flight recorder, or null while the configured mode is kOff.
  /// Created lazily on first use so disabled runs never pay for the tables.
  [[nodiscard]] FlightRecorder* flight_recorder();
  /// Reconfigure (and when mode != kOff, (re)create) the flight recorder.
  /// When this scope is current on the calling thread, the thread's active
  /// recorder pointer is updated too.
  void set_flight_config(const FlightConfig& cfg);
  [[nodiscard]] const FlightConfig& flight_config() const { return flight_cfg_; }

  /// Start-of-run housekeeping: zero metric values, clear the trace ring and
  /// the flight recorder so each experiment's snapshot reflects that
  /// experiment only. Resolved cell pointers stay valid.
  void begin_run() {
    metrics_.reset_values();
    trace_.clear();
    if (flight_) flight_->reset();
  }

  /// The knobs a child scope should inherit to behave like this one.
  [[nodiscard]] ScopeSettings settings() const {
    return ScopeSettings{enabled_, trace_.capacity(), trace_.filter(),
                         flight_cfg_};
  }

 private:
  MetricsRegistry metrics_;
  TraceLog trace_;
  bool enabled_{false};
  FlightConfig flight_cfg_{};
  std::unique_ptr<FlightRecorder> flight_;
};

namespace detail {
/// The scope telemetry records into on this thread (null until a ScopeGuard
/// installs one or current_scope() falls back to the lazy process scope).
extern thread_local Scope* tl_scope;
/// Mirror of current scope's is_enabled(), kept thread-local so the hot-path
/// guard stays a single TLS bool load.
extern thread_local bool tl_enabled;
/// The current scope's flight recorder when (and only when) its mode is not
/// kOff — the datapath's disabled-cost guard is this one TLS pointer load.
extern thread_local FlightRecorder* tl_flight;
}  // namespace detail

/// The zero-cost-when-disabled guard: one thread-local bool load. Every
/// hot-path recording site checks this before touching a cell or building an
/// event.
[[nodiscard]] inline bool enabled() { return detail::tl_enabled; }

/// The thread's active flight recorder (null unless a scope with mode
/// sampled/full is current). Datapath hooks are written as
///   if (auto* fr = telemetry::flight()) fr->on_...(...);
/// so a disabled recorder costs exactly one TLS pointer load.
[[nodiscard]] inline FlightRecorder* flight() { return detail::tl_flight; }
[[nodiscard]] inline bool flight_active() { return detail::tl_flight != nullptr; }

/// The scope telemetry resolves against on this thread. Threads with no
/// installed scope (the main thread, plain tests) share a lazily created
/// process-wide scope configured from the environment — the pre-scope
/// singleton behavior, unchanged.
[[nodiscard]] Scope& current_scope();

/// RAII installer: makes `s` the calling thread's current scope for the
/// guard's lifetime, restoring the previous scope (and its enabled flag) on
/// destruction. Used by the parallel runner around each sweep point.
class ScopeGuard {
 public:
  explicit ScopeGuard(Scope& s)
      : prev_(detail::tl_scope),
        prev_enabled_(detail::tl_enabled),
        prev_flight_(detail::tl_flight) {
    detail::tl_scope = &s;
    detail::tl_enabled = s.is_enabled();
    detail::tl_flight = s.flight_recorder();
  }
  ~ScopeGuard() {
    detail::tl_scope = prev_;
    detail::tl_enabled = prev_enabled_;
    detail::tl_flight = prev_flight_;
  }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  Scope* prev_;
  bool prev_enabled_;
  FlightRecorder* prev_flight_;
};

}  // namespace clove::telemetry
