#pragma once

#include <cstddef>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace clove::telemetry {

/// Construction-time knobs for a telemetry Scope. from_env() reads the same
/// environment variables the process-wide hub always honored:
///   CLOVE_TELEMETRY=1           enable collection
///   CLOVE_TRACE_CAPACITY=N      trace ring size (default 65536 events)
///   CLOVE_TRACE_CATEGORIES=a,b  category filter (e.g. "weight,topology")
struct ScopeSettings {
  bool enabled{false};
  std::size_t trace_capacity{TraceLog::kDefaultCapacity};
  unsigned trace_filter{kAllCategories};

  [[nodiscard]] static ScopeSettings from_env();
};

/// One telemetry collection domain: a metrics registry plus a trace ring plus
/// an on/off flag. Historically these were process-wide singletons; scoping
/// them lets harness::ParallelRunner give every concurrently running sweep
/// point its own isolated registry — no cross-thread sharing, no locks on the
/// recording hot path — while single-threaded code keeps using the implicit
/// process scope through the unchanged telemetry::hub() facade.
///
/// A Scope is not itself thread-safe; it is installed on exactly one thread
/// at a time via ScopeGuard.
class Scope {
 public:
  Scope() = default;
  explicit Scope(const ScopeSettings& s) : enabled_(s.enabled) {
    trace_.set_capacity(s.trace_capacity);
    trace_.set_filter(s.trace_filter);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] TraceLog& trace() { return trace_; }

  /// Flip collection for this scope; when the scope is current on the calling
  /// thread, the hot-path enabled() flag is updated too.
  void set_enabled(bool on);
  [[nodiscard]] bool is_enabled() const { return enabled_; }

  /// Start-of-run housekeeping: zero metric values and clear the trace ring
  /// so each experiment's snapshot reflects that experiment only. Resolved
  /// cell pointers stay valid.
  void begin_run() {
    metrics_.reset_values();
    trace_.clear();
  }

  /// The knobs a child scope should inherit to behave like this one.
  [[nodiscard]] ScopeSettings settings() const {
    return ScopeSettings{enabled_, trace_.capacity(), trace_.filter()};
  }

 private:
  MetricsRegistry metrics_;
  TraceLog trace_;
  bool enabled_{false};
};

namespace detail {
/// The scope telemetry records into on this thread (null until a ScopeGuard
/// installs one or current_scope() falls back to the lazy process scope).
extern thread_local Scope* tl_scope;
/// Mirror of current scope's is_enabled(), kept thread-local so the hot-path
/// guard stays a single TLS bool load.
extern thread_local bool tl_enabled;
}  // namespace detail

/// The zero-cost-when-disabled guard: one thread-local bool load. Every
/// hot-path recording site checks this before touching a cell or building an
/// event.
[[nodiscard]] inline bool enabled() { return detail::tl_enabled; }

/// The scope telemetry resolves against on this thread. Threads with no
/// installed scope (the main thread, plain tests) share a lazily created
/// process-wide scope configured from the environment — the pre-scope
/// singleton behavior, unchanged.
[[nodiscard]] Scope& current_scope();

/// RAII installer: makes `s` the calling thread's current scope for the
/// guard's lifetime, restoring the previous scope (and its enabled flag) on
/// destruction. Used by the parallel runner around each sweep point.
class ScopeGuard {
 public:
  explicit ScopeGuard(Scope& s)
      : prev_(detail::tl_scope), prev_enabled_(detail::tl_enabled) {
    detail::tl_scope = &s;
    detail::tl_enabled = s.is_enabled();
  }
  ~ScopeGuard() {
    detail::tl_scope = prev_;
    detail::tl_enabled = prev_enabled_;
  }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  Scope* prev_;
  bool prev_enabled_;
};

}  // namespace clove::telemetry
