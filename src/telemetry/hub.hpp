#pragma once

#include <string>

#include "sim/logging.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace clove::telemetry {

namespace detail {
/// Single process-wide on/off flag, read inline on every hot-path guard.
/// Like sim::log_level(), telemetry is a debugging/observability aid rather
/// than simulated state, so a plain process knob (not Simulator state) keeps
/// the instrumentation plumbing-free; the simulation is single-threaded.
extern bool g_enabled;
}  // namespace detail

/// The zero-cost-when-disabled guard: one global bool load. Every hot-path
/// recording site checks this before touching a cell or building an event.
[[nodiscard]] inline bool enabled() { return detail::g_enabled; }

/// Process-wide observability hub: the metrics registry plus the trace ring.
/// Construction honors environment knobs:
///   CLOVE_TELEMETRY=1         enable collection from process start
///   CLOVE_TRACE_CAPACITY=N    trace ring size (default 65536 events)
///   CLOVE_TRACE_CATEGORIES=a,b  category filter (e.g. "weight,topology")
class Hub {
 public:
  Hub();

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] TraceLog& trace() { return trace_; }

  void set_enabled(bool on) { detail::g_enabled = on; }
  [[nodiscard]] bool is_enabled() const { return detail::g_enabled; }

  /// Start-of-run housekeeping: zero metric values and clear the trace ring
  /// so each experiment's snapshot reflects that experiment only. Resolved
  /// cell pointers stay valid.
  void begin_run();

 private:
  MetricsRegistry metrics_;
  TraceLog trace_;
};

[[nodiscard]] Hub& hub();

/// Record a structured trace event (and mirror it to stderr when the log
/// level is at kTrace, so CLOVE_LOG_LEVEL=trace shows the same stream the
/// ring captures). Call sites guard with `if (telemetry::tracing())` so the
/// disabled path costs two global loads and no argument evaluation.
void trace(Category cat, sim::Time now, std::string node, std::string name,
           std::string detail = {}, double value = 0.0, std::uint64_t id = 0);

/// True when trace events should be built at all: either the ring is
/// collecting or the stderr log level wants them.
[[nodiscard]] inline bool tracing() {
  return enabled() ||
         static_cast<int>(sim::log_level()) >=
             static_cast<int>(sim::LogLevel::kTrace);
}

}  // namespace clove::telemetry
