#pragma once

#include <string>

#include "sim/logging.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/scope.hpp"
#include "telemetry/trace.hpp"

namespace clove::telemetry {

/// Compatibility facade over the thread's current telemetry Scope (see
/// scope.hpp). Historically the Hub owned a process-wide registry and trace
/// ring; those now live in Scopes so parallel sweep points can each collect
/// in isolation. Existing call sites — `telemetry::hub().metrics()` at
/// component construction, `hub().trace()` in tools — keep working unchanged:
/// they simply resolve against whatever scope is current on the calling
/// thread (the environment-configured process scope unless a ScopeGuard
/// installed another).
class Hub {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return current_scope().metrics(); }
  [[nodiscard]] TraceLog& trace() { return current_scope().trace(); }

  void set_enabled(bool on) { current_scope().set_enabled(on); }
  [[nodiscard]] bool is_enabled() const { return current_scope().is_enabled(); }

  /// Start-of-run housekeeping for the current scope: zero metric values and
  /// clear the trace ring. Resolved cell pointers stay valid.
  void begin_run() { current_scope().begin_run(); }
};

[[nodiscard]] Hub& hub();

/// Record a structured trace event (and mirror it to stderr when the log
/// level is at kTrace, so CLOVE_LOG_LEVEL=trace shows the same stream the
/// ring captures). Call sites guard with `if (telemetry::tracing())` so the
/// disabled path costs a TLS load, a global load, and no argument evaluation.
void trace(Category cat, sim::Time now, std::string node, std::string name,
           std::string detail = {}, double value = 0.0, std::uint64_t id = 0);

/// True when trace events should be built at all: either the current scope is
/// collecting or the stderr log level wants them.
[[nodiscard]] inline bool tracing() {
  return enabled() ||
         static_cast<int>(sim::log_level()) >=
             static_cast<int>(sim::LogLevel::kTrace);
}

}  // namespace clove::telemetry
