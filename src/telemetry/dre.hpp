#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace clove::telemetry {

/// Discounted Rate Estimator (DRE), as used by CONGA-style fabrics to track
/// egress-link utilization cheaply: a register X accumulates transmitted
/// bytes and is multiplicatively decayed by (1 - alpha) every Tdre. The
/// long-run expectation of X for a link carrying rate R is R * Tdre / alpha,
/// so utilization = X * alpha / (Tdre * capacity).
///
/// The decay is applied lazily (no timer): on each touch we apply however
/// many whole decay intervals have elapsed. This keeps the estimator free of
/// simulator events, which matters when there are hundreds of links.
class Dre {
 public:
  Dre() = default;
  Dre(double alpha, sim::Time tdre, double capacity_bytes_per_sec)
      : alpha_(alpha), tdre_(tdre), capacity_(capacity_bytes_per_sec) {}

  void configure(double alpha, sim::Time tdre, double capacity_bytes_per_sec) {
    alpha_ = alpha;
    tdre_ = tdre;
    capacity_ = capacity_bytes_per_sec;
  }

  /// Record `bytes` transmitted at time `now`.
  void on_transmit(sim::Time now, std::int64_t bytes) {
    decay_to(now);
    x_ += static_cast<double>(bytes);
  }

  /// Estimated link utilization in [0, ~1+] at time `now`.
  [[nodiscard]] double utilization(sim::Time now) const {
    decay_to(now);
    const double denom = sim::to_seconds(tdre_) / alpha_ * capacity_;
    return denom > 0.0 ? x_ / denom : 0.0;
  }

  /// CONGA quantizes utilization to a few bits; 3 bits (0..7) in the paper.
  [[nodiscard]] std::uint8_t quantized(sim::Time now, int bits = 3) const {
    const double u = std::clamp(utilization(now), 0.0, 1.0);
    const int levels = (1 << bits) - 1;
    return static_cast<std::uint8_t>(u * levels + 0.5);
  }

  void reset() {
    x_ = 0.0;
    last_decay_ = 0;
  }

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] sim::Time tdre() const { return tdre_; }

 private:
  void decay_to(sim::Time now) const {
    // Early-out before the division: most touches land within the current
    // decay interval (tens of MTU packets fit in one Tdre at line rate).
    if (tdre_ <= 0 || now - last_decay_ < tdre_) return;
    const std::int64_t steps = (now - last_decay_) / tdre_;
    if (steps > 0) {
      // (1-alpha)^steps, computed iteratively for small step counts and via
      // a cutoff for large idle gaps (value underflows to zero anyway).
      if (steps > 200) {
        x_ = 0.0;
      } else {
        double f = 1.0;
        const double keep = 1.0 - alpha_;
        for (std::int64_t i = 0; i < steps; ++i) f *= keep;
        x_ *= f;
      }
      last_decay_ += steps * tdre_;
    }
  }

  double alpha_{0.1};
  sim::Time tdre_{50 * sim::kMicrosecond};
  double capacity_{sim::gbps_to_bytes_per_sec(10.0)};
  mutable double x_{0.0};
  mutable sim::Time last_decay_{0};
};

}  // namespace clove::telemetry
