#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace clove::telemetry {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_index(double v) {
  // floor(log2(v) * kSubBuckets): each bucket spans a 2^(1/kSubBuckets)
  // ratio. Clamped to a generous range (2^-64 .. 2^64 covers ns..years and
  // bytes..exabytes for every metric we record).
  const double l = std::log2(v) * kSubBuckets;
  const double clamped = std::clamp(l, -64.0 * kSubBuckets, 64.0 * kSubBuckets);
  return static_cast<int>(std::floor(clamped));
}

double Histogram::bucket_lower(int idx) {
  return std::exp2(static_cast<double>(idx) / kSubBuckets);
}

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (v > 0.0) {
    ++buckets_[bucket_index(v)];
  } else {
    ++nonpositive_;
  }
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count_ - 1);
  // The first `nonpositive_` ranks are <= 0; report min() for those.
  if (target < static_cast<double>(nonpositive_)) return std::min(min_, 0.0);
  double cum = static_cast<double>(nonpositive_);
  for (const auto& [idx, n] : buckets_) {
    const double next = cum + static_cast<double>(n);
    if (target < next) {
      // Interpolate linearly across the bucket span by rank position.
      const double lo = std::max(bucket_lower(idx), min_);
      const double hi = std::min(bucket_lower(idx + 1), max_);
      const double frac =
          n > 1 ? (target - cum) / static_cast<double>(n - 1) : 0.5;
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return max_;
}

void Histogram::reset() {
  buckets_.clear();
  nonpositive_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {
std::string cell_key(MetricKind kind, const std::string& name,
                     const Labels& labels) {
  std::string key;
  switch (kind) {
    case MetricKind::kCounter: key = "c:"; break;
    case MetricKind::kGauge: key = "g:"; break;
    case MetricKind::kHistogram: key = "h:"; break;
  }
  key += name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (const auto& [k, v] : sorted) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}
}  // namespace

MetricsRegistry::Entry* MetricsRegistry::get_or_create(MetricKind kind,
                                                       const std::string& name,
                                                       const Labels& labels) {
  const std::string key = cell_key(kind, name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->labels = labels;
    std::sort(entry->labels.begin(), entry->labels.end());
    entry->kind = kind;
    it = entries_.emplace(key, std::move(entry)).first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return &get_or_create(MetricKind::kCounter, name, labels)->counter;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return &get_or_create(MetricKind::kGauge, name, labels)->gauge;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  return &get_or_create(MetricKind::kHistogram, name, labels)->histogram;
}

void MetricsRegistry::reset_values() {
  for (auto& [key, e] : entries_) {
    e->counter.reset();
    e->gauge.reset();
    e->histogram.reset();
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.name = e->name;
    s.labels = e->labels;
    s.kind = e->kind;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e->counter.value());
        break;
      case MetricKind::kGauge:
        s.value = e->gauge.value();
        break;
      case MetricKind::kHistogram:
        s.count = e->histogram.count();
        s.sum = e->histogram.sum();
        s.min = e->histogram.min();
        s.max = e->histogram.max();
        s.p50 = e->histogram.percentile(50);
        s.p99 = e->histogram.percentile(99);
        s.value = e->histogram.mean();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& s : samples) {
    if (s.name == name && s.labels == sorted) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value_or(const std::string& name, double fallback,
                                 const Labels& labels) const {
  const MetricSample* s = find(name, labels);
  return s != nullptr ? s->value : fallback;
}

double MetricsSnapshot::sum_over(const std::string& name) const {
  double total = 0.0;
  for (const auto& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

Json MetricsSnapshot::to_json() const {
  Json arr = Json::array();
  for (const auto& s : samples) {
    Json m = Json::object();
    m.set("name", s.name);
    if (!s.labels.empty()) {
      Json l = Json::object();
      for (const auto& [k, v] : s.labels) l.set(k, v);
      m.set("labels", std::move(l));
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        m.set("type", "counter");
        m.set("value", s.value);
        break;
      case MetricKind::kGauge:
        m.set("type", "gauge");
        m.set("value", s.value);
        break;
      case MetricKind::kHistogram:
        m.set("type", "histogram");
        m.set("count", static_cast<double>(s.count));
        m.set("sum", s.sum);
        m.set("min", s.min);
        m.set("max", s.max);
        m.set("p50", s.p50);
        m.set("p99", s.p99);
        break;
    }
    arr.push_back(std::move(m));
  }
  return arr;
}

}  // namespace clove::telemetry
