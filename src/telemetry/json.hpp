#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace clove::telemetry {

/// A minimal JSON document value: enough to emit the machine-readable run
/// artifacts (bench results, metric snapshots, trace exports) and to parse
/// them back for round-trip tests and tooling. Objects preserve insertion
/// order so emitted artifacts are deterministic and diff-friendly.
///
/// Deliberately small: no exceptions (parse reports failure via an error
/// string), no unicode escapes beyond pass-through, no external deps.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double n) : kind_(Kind::kNumber), num_(n) {}
  Json(int n) : Json(static_cast<double>(n)) {}
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return is_bool() && bool_; }
  [[nodiscard]] double as_number() const { return is_number() ? num_ : 0.0; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& items() const { return arr_; }
  [[nodiscard]] const Object& members() const { return obj_; }
  [[nodiscard]] std::size_t size() const {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }

  /// Object lookup; returns a shared null value when absent (chainable).
  [[nodiscard]] const Json& operator[](const std::string& key) const;
  /// Array index; returns a shared null value when out of range.
  [[nodiscard]] const Json& operator[](std::size_t i) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Insert-or-replace an object member (converts a null value to an object).
  Json& set(const std::string& key, Json value);
  /// Append to an array (converts a null value to an array).
  Json& push_back(Json value);

  /// Serialize. indent < 0: compact one-line; otherwise pretty-print with
  /// `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a document. On failure returns a null Json and, when `error` is
  /// non-null, a human-readable description with the byte offset.
  static Json parse(const std::string& text, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_{Kind::kNull};
  bool bool_{false};
  double num_{0.0};
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace clove::telemetry
