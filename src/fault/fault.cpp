#include "fault/fault.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "net/shard.hpp"
#include "overlay/hypervisor.hpp"
#include "sim/logging.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"
#include "telemetry/trace.hpp"

namespace clove::fault {

namespace {
/// Fractional-millisecond JSON fields -> simulated time.
clove::sim::Time ms_to_time(double ms) {
  return static_cast<clove::sim::Time>(
      ms * static_cast<double>(clove::sim::kMillisecond));
}
}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkDegrade: return "degrade";
    case FaultKind::kLinkDrop: return "drop";
    case FaultKind::kSwitchDown: return "switch_down";
    case FaultKind::kSwitchUp: return "switch_up";
    case FaultKind::kFeedbackLoss: return "feedback_loss";
    case FaultKind::kFeedbackDelay: return "feedback_delay";
  }
  return "?";
}

bool parse_fault_kind(const std::string& name, FaultKind* out) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kLinkDown,   FaultKind::kLinkUp,
      FaultKind::kLinkDegrade, FaultKind::kLinkDrop,
      FaultKind::kSwitchDown, FaultKind::kSwitchUp,
      FaultKind::kFeedbackLoss, FaultKind::kFeedbackDelay,
  };
  for (FaultKind k : kAll) {
    if (name == fault_kind_name(k)) {
      if (out != nullptr) *out = k;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

FaultPlan& FaultPlan::add(sim::Time at, FaultKind kind, std::string target,
                          double value) {
  events.push_back(FaultEvent{at, kind, std::move(target), value});
  return *this;
}

telemetry::Json FaultPlan::to_json() const {
  telemetry::Json doc = telemetry::Json::object();
  doc.set("seed", static_cast<std::uint64_t>(seed));
  doc.set("route_convergence_ms", sim::to_milliseconds(route_convergence));
  telemetry::Json evs = telemetry::Json::array();
  for (const FaultEvent& ev : events) {
    telemetry::Json e = telemetry::Json::object();
    e.set("at_ms", sim::to_milliseconds(ev.at));
    e.set("kind", fault_kind_name(ev.kind));
    e.set("target", ev.target);
    if (ev.value != 0.0) e.set("value", ev.value);
    evs.push_back(std::move(e));
  }
  doc.set("events", std::move(evs));
  return doc;
}

namespace {
bool parse_event(const telemetry::Json& e, FaultEvent* out,
                 std::string* error) {
  if (!e.is_object()) {
    if (error != nullptr) *error = "fault event is not an object";
    return false;
  }
  if (!e.contains("at_ms") || !e["at_ms"].is_number()) {
    if (error != nullptr) *error = "fault event missing numeric 'at_ms'";
    return false;
  }
  out->at = ms_to_time(e["at_ms"].as_number());
  if (!parse_fault_kind(e["kind"].as_string(), &out->kind)) {
    if (error != nullptr) {
      *error = "unknown fault kind '" + e["kind"].as_string() + "'";
    }
    return false;
  }
  if (!e.contains("target") || !e["target"].is_string() ||
      e["target"].as_string().empty()) {
    if (error != nullptr) *error = "fault event missing 'target'";
    return false;
  }
  out->target = e["target"].as_string();
  out->value = e["value"].as_number();
  return true;
}
}  // namespace

FaultPlan FaultPlan::parse(const telemetry::Json& doc, std::string* error) {
  FaultPlan plan;
  const telemetry::Json* events_json = nullptr;
  if (doc.is_array()) {
    events_json = &doc;
  } else if (doc.is_object()) {
    if (doc.contains("seed")) {
      plan.seed = static_cast<std::uint64_t>(doc["seed"].as_number());
    }
    if (doc.contains("route_convergence_ms")) {
      plan.route_convergence =
          ms_to_time(doc["route_convergence_ms"].as_number());
    }
    if (doc.contains("events")) events_json = &doc["events"];
  } else {
    if (error != nullptr) *error = "fault plan must be an object or array";
    return FaultPlan{};
  }
  if (events_json != nullptr) {
    if (!events_json->is_array()) {
      if (error != nullptr) *error = "'events' must be an array";
      return FaultPlan{};
    }
    for (const telemetry::Json& e : events_json->items()) {
      FaultEvent ev;
      if (!parse_event(e, &ev, error)) return FaultPlan{};
      plan.events.push_back(std::move(ev));
    }
  }
  return plan;
}

FaultPlan FaultPlan::parse_text(const std::string& text, std::string* error) {
  std::string parse_error;
  const telemetry::Json doc = telemetry::Json::parse(text, &parse_error);
  if (doc.is_null()) {
    if (error != nullptr) *error = "fault plan JSON: " + parse_error;
    return FaultPlan{};
  }
  return parse(doc, error);
}

FaultPlan FaultPlan::from_env(std::string* error) {
  const char* spec = std::getenv("CLOVE_FAULT_PLAN");
  if (spec == nullptr || *spec == '\0') return FaultPlan{};
  std::string text(spec);
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return FaultPlan{};
  if (text[first] != '[' && text[first] != '{') {
    // Treat as a file path; an optional leading '@' (the conventional
    // "here's a file" marker) is stripped.
    std::string path = text.substr(text[first] == '@' ? first + 1 : first);
    std::ifstream in(path);
    if (!in) {
      if (error != nullptr) {
        *error = "CLOVE_FAULT_PLAN: cannot open file '" + path + "'";
      }
      return FaultPlan{};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  return parse_text(text, error);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(net::Topology& topo, FaultPlan plan)
    : topo_(topo), plan_(std::move(plan)) {
  auto& reg = telemetry::hub().metrics();
  applied_cell_ = reg.counter("clove.fault.events_applied");
  recompute_cell_ = reg.counter("clove.fault.route_recomputes");
}

void FaultInjector::arm() {
  sim::Simulator& sim = topo_.simulator();
  net::ShardDomain* dom = topo_.shard_domain();
  for (const FaultEvent& ev : plan_.events) {
    const sim::Time at = ev.at > sim.now() ? ev.at : sim.now();
    if (dom != nullptr) {
      // A fault touches links/switches across shards, so it must run at a
      // window boundary with every shard quiesced. Registration order
      // preserves the serial same-timestamp tiebreak.
      dom->at_global(at, [this, &ev] { apply(ev); });
    } else {
      sim.schedule_at(at, [this, &ev] { apply(ev); });
    }
  }
}

net::Link* FaultInjector::resolve_link(const std::string& target) {
  // "NAME#k" selects the k-th creation-order link named NAME (parallel
  // leaf-spine links share a name).
  std::string name = target;
  int index = 0;
  if (const std::size_t hash = target.rfind('#');
      hash != std::string::npos) {
    name = target.substr(0, hash);
    index = std::atoi(target.c_str() + hash + 1);
  }
  int seen = 0;
  for (const auto& link : topo_.links()) {
    if (link->name() != name) continue;
    if (seen++ == index) return link.get();
  }
  return nullptr;
}

void FaultInjector::apply(const FaultEvent& ev) {
  const sim::Time now = topo_.simulator().now();
  bool ok = true;
  switch (ev.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp: {
      net::Link* l = resolve_link(ev.target);
      if (l == nullptr) {
        ok = false;
        break;
      }
      apply_connection(l, ev.kind == FaultKind::kLinkDown);
      break;
    }
    case FaultKind::kLinkDegrade:
    case FaultKind::kLinkDrop: {
      net::Link* l = resolve_link(ev.target);
      if (l == nullptr) {
        ok = false;
        break;
      }
      if (ev.kind == FaultKind::kLinkDegrade) {
        l->set_capacity_factor(ev.value <= 0.0 ? 1.0 : ev.value);
      } else {
        l->set_fault_drop(ev.value, drop_seed(l->id()));
      }
      break;
    }
    case FaultKind::kSwitchDown:
    case FaultKind::kSwitchUp:
      ok = apply_switch(ev, ev.kind == FaultKind::kSwitchDown);
      break;
    case FaultKind::kFeedbackLoss:
    case FaultKind::kFeedbackDelay:
      ok = apply_feedback(ev);
      break;
  }
  if (!ok) {
    ++stats_.events_failed;
    CLOVE_WARN(now, "fault", "unresolved fault target \'%s\' (%s)",
               ev.target.c_str(), fault_kind_name(ev.kind));
    return;
  }
  ++stats_.events_applied;
  if (telemetry::enabled()) applied_cell_->add();
  if (telemetry::tracing()) {
    telemetry::trace(telemetry::Category::kFault, now, ev.target,
                     std::string("fault.") + fault_kind_name(ev.kind), "",
                     ev.value);
  }
}

void FaultInjector::toggle_link(net::Link* l, bool down) {
  if (l == nullptr) return;
  if (net::ShardDomain* dom = topo_.shard_domain()) {
    const int shard = dom->shard_of_sim(&l->simulator());
    if (telemetry::Scope* sc = dom->scope(shard)) {
      telemetry::ScopeGuard guard(*sc);
      down ? l->down() : l->up();
      return;
    }
  }
  if (down) {
    l->down();
  } else {
    l->up();
  }
}

void FaultInjector::apply_connection(net::Link* fwd, bool down) {
  toggle_link(fwd, down);
  toggle_link(topo_.reverse_of(fwd), down);
  schedule_convergence();
}

bool FaultInjector::apply_switch(const FaultEvent& ev, bool down) {
  // Blackout every connection adjacent to the named switch: links() holds
  // the incoming direction of each connection once, so toggling each
  // incoming link plus its reverse covers the full adjacency exactly once.
  net::Switch* sw = nullptr;
  for (net::Switch* s : topo_.switches()) {
    if (s->name() == ev.target) {
      sw = s;
      break;
    }
  }
  if (sw == nullptr) return false;
  bool touched = false;
  for (const auto& link : topo_.links()) {
    if (link->dst() != sw) continue;
    touched = true;
    toggle_link(link.get(), down);
    toggle_link(topo_.reverse_of(link.get()), down);
  }
  if (touched) schedule_convergence();
  return true;
}

bool FaultInjector::apply_feedback(const FaultEvent& ev) {
  int matched = 0;
  for (net::Node* host : topo_.hosts()) {
    auto* hyp = dynamic_cast<overlay::Hypervisor*>(host);
    if (hyp == nullptr) continue;
    if (ev.target != "*" && hyp->name() != ev.target) continue;
    ++matched;
    if (ev.kind == FaultKind::kFeedbackLoss) {
      hyp->set_feedback_loss(ev.value, plan_.seed ^ (hyp->id() * 0x9e37ULL));
    } else {
      hyp->set_feedback_delay(ms_to_time(ev.value));
    }
  }
  return matched > 0;
}

void FaultInjector::schedule_convergence() {
  if (plan_.route_convergence <= 0) {
    topo_.compute_routes();
    ++stats_.route_recomputes;
    if (telemetry::enabled()) recompute_cell_->add();
    return;
  }
  auto recompute = [this] {
    topo_.compute_routes();
    ++stats_.route_recomputes;
    if (telemetry::enabled()) recompute_cell_->add();
  };
  if (net::ShardDomain* dom = topo_.shard_domain()) {
    // Route recomputes read and write switch tables in every shard, so they
    // are global actions too. We run at a barrier here with clocks aligned,
    // so now() + convergence is the same deadline the serial path computes.
    dom->at_global(topo_.simulator().now() + plan_.route_convergence,
                   std::move(recompute));
  } else {
    topo_.simulator().schedule_in(plan_.route_convergence, std::move(recompute));
  }
}

}  // namespace clove::fault
