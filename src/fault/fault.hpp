#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace clove::fault {

/// The fault classes the injector can schedule (DESIGN.md §8).
enum class FaultKind : std::uint8_t {
  kLinkDown = 0,    ///< hard-fail both directions of a connection
  kLinkUp,          ///< restore both directions
  kLinkDegrade,     ///< scale one direction's rate (value = capacity factor)
  kLinkDrop,        ///< silent per-packet loss (value = drop probability)
  kSwitchDown,      ///< blackout: every connection adjacent to the switch
  kSwitchUp,        ///< reboot complete: restore the adjacent connections
  kFeedbackLoss,    ///< drop arriving Clove feedback (value = probability)
  kFeedbackDelay,   ///< defer arriving Clove feedback (value = milliseconds)
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);
[[nodiscard]] bool parse_fault_kind(const std::string& name, FaultKind* out);

/// One scheduled fault. Target syntax by kind:
///  - link events:     a connection name as Topology::connect() assigns them
///    ("L0->S1"), optionally "#k" to pick the k-th parallel link of the
///    pair (creation order, default 0). Down/up act on both directions;
///    degrade/drop act on the named direction only.
///  - switch events:   the switch name ("S1").
///  - feedback events: a hypervisor host name, or "*" for every hypervisor.
struct FaultEvent {
  sim::Time at{0};
  FaultKind kind{FaultKind::kLinkDown};
  std::string target;
  double value{0.0};
};

/// A deterministic, seed-reproducible schedule of fault events. Build in
/// code with add(), or parse from the small JSON spec (CLOVE_FAULT_PLAN):
///
///   {"seed": 7, "route_convergence_ms": 30,
///    "events": [{"at_ms": 400, "kind": "link_down", "target": "L1->S1#0"},
///               {"at_ms": 1200, "kind": "link_up", "target": "L1->S1#0"}]}
///
/// A bare JSON array is accepted as the events list with defaults for the
/// rest. `value` carries the kind-specific operand (capacity factor, drop /
/// loss probability, delay in milliseconds).
struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Delay between a topology fault and the fabric's route recompute — the
  /// blackhole window during which routing still points at the failure.
  /// (Topology::fail_connection reroutes instantly; real convergence does
  /// not, and that window is where edge-based recovery earns its keep.)
  sim::Time route_convergence{30 * sim::kMillisecond};
  /// Seeds the per-link drop RNGs (derived per link, so the drop sequence
  /// is independent of event order and of other links).
  std::uint64_t seed{0xFA17};

  FaultPlan& add(sim::Time at, FaultKind kind, std::string target,
                 double value = 0.0);
  [[nodiscard]] bool empty() const { return events.empty(); }

  [[nodiscard]] telemetry::Json to_json() const;
  /// Parse the JSON spec; returns an empty plan and sets *error on failure.
  static FaultPlan parse(const telemetry::Json& doc, std::string* error);
  static FaultPlan parse_text(const std::string& text, std::string* error);
  /// CLOVE_FAULT_PLAN: inline JSON (first non-space char '[' or '{') or a
  /// path to a JSON file (optionally '@'-prefixed). Unset/empty -> empty
  /// plan.
  static FaultPlan from_env(std::string* error = nullptr);
};

/// Statistics of one armed injector (tests / reports).
struct FaultInjectorStats {
  int events_applied{0};
  int events_failed{0};     ///< target did not resolve
  int route_recomputes{0};  ///< deferred convergence recomputes run
};

/// Applies a FaultPlan against a built topology. arm() schedules every
/// event on the topology's simulator; faults act directly on links/nodes
/// (Link::down/up, set_capacity_factor, set_fault_drop, Hypervisor feedback
/// hooks) and topology faults defer Topology::compute_routes() by
/// plan.route_convergence to model the blackhole window.
class FaultInjector {
 public:
  FaultInjector(net::Topology& topo, FaultPlan plan);

  /// Schedule the whole plan. Call once, after the topology is built and
  /// before (or during) the run; events in the past fire immediately.
  void arm();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultInjectorStats& stats() const { return stats_; }

 private:
  void apply(const FaultEvent& ev);
  [[nodiscard]] net::Link* resolve_link(const std::string& target);
  void apply_connection(net::Link* fwd, bool down);
  /// down()/up() under the owning shard's telemetry scope (sharded runs):
  /// the flush drops must finalize in the flight recorder that actually
  /// holds the link's journeys. Serial runs toggle directly.
  void toggle_link(net::Link* l, bool down);
  [[nodiscard]] bool apply_switch(const FaultEvent& ev, bool down);
  [[nodiscard]] bool apply_feedback(const FaultEvent& ev);
  void schedule_convergence();
  /// Per-link drop-RNG seed, independent of event order.
  [[nodiscard]] std::uint64_t drop_seed(net::LinkId id) const {
    return plan_.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1));
  }

  net::Topology& topo_;
  FaultPlan plan_;
  FaultInjectorStats stats_;
  telemetry::Counter* applied_cell_{nullptr};
  telemetry::Counter* recompute_cell_{nullptr};
};

}  // namespace clove::fault
