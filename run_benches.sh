#!/bin/sh
# Regenerates every paper figure/table; see README.md for scale knobs.
: "${CLOVE_JOBS:=30}"
: "${CLOVE_CONNS:=2}"
: "${CLOVE_SEEDS:=1}"
export CLOVE_JOBS CLOVE_CONNS CLOVE_SEEDS
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $b"
  "$b"
  echo
done
