#!/bin/sh
# Regenerates every paper figure/table; see README.md for scale knobs.
#
# Usage: ./run_benches.sh [filter]
# With an argument, only benches whose name contains it run — e.g.
# `./run_benches.sh scale` runs bench_scale alone, `./run_benches.sh fig`
# every figure bench — and only their artifacts are refreshed in place.
#
# Each bench also emits one machine-readable JSON artifact (swept points,
# fabric counters, telemetry digest). Artifacts land in CLOVE_JSON_OUT,
# which defaults to the repo root (this script's directory) so the committed
# BENCH_*.json perf baselines are refreshed in place by a plain
# ./run_benches.sh; bench_micro_datapath contributes BENCH_micro.json and
# bench_fabric_forwarding BENCH_fabric.json (ns/op, events/sec and
# allocs/event for the datapath hot loops — the perf baselines
# scripts/bench_check.py compares CI runs against). Set CLOVE_JSON_OUT=<dir>
# to redirect them elsewhere, or CLOVE_JSON_OUT="" to skip JSON output.
#
# Sweep points run in parallel across CLOVE_THREADS worker threads (default:
# all hardware threads). Results are bit-identical for any thread count;
# set CLOVE_THREADS=1 to force serial execution.
: "${CLOVE_JOBS:=30}"
: "${CLOVE_CONNS:=2}"
: "${CLOVE_SEEDS:=1}"
export CLOVE_JOBS CLOVE_CONNS CLOVE_SEEDS
[ -n "${CLOVE_THREADS:-}" ] && export CLOVE_THREADS
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
if [ -z "${CLOVE_JSON_OUT+set}" ]; then
  CLOVE_JSON_OUT=$repo_root
fi
if [ -n "$CLOVE_JSON_OUT" ]; then
  mkdir -p "$CLOVE_JSON_OUT"
  export CLOVE_JSON_OUT
  echo "### JSON artifacts -> $CLOVE_JSON_OUT"
fi
filter=${1:-}
ran=0
for b in "$repo_root"/build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$(basename "$b")" in
    *"$filter"*) ;;
    *) continue ;;
  esac
  echo "### $b"
  "$b"
  echo
  ran=$((ran + 1))
done
if [ "$ran" -eq 0 ]; then
  echo "no bench matches '$filter' (build/bench/bench_*)" >&2
  exit 1
fi

# One engine line per bench artifact (DESIGN.md §10): event throughput,
# queue pressure, and peak RSS — the gauges the scale guard enforces. Add
# CLOVE_PROF=summary|full for full time attribution (then see
# scripts/prof_summarize.py).
if [ -n "$CLOVE_JSON_OUT" ]; then
  echo "### engine summary (events/sec, queue hwm, peak RSS per artifact)"
  python3 - "$CLOVE_JSON_OUT" <<'EOF'
import json, os, sys
root = sys.argv[1]
for name in sorted(os.listdir(root)):
    if not name.endswith(".json") or name.endswith("_trace.json"):
        continue
    try:
        with open(os.path.join(root, name)) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        continue
    eng = doc.get("engine") if isinstance(doc, dict) else None
    if not isinstance(eng, dict):
        continue
    line = (f"  {doc.get('bench', name):<22} "
            f"{eng.get('events', 0):>14,.0f} events"
            f"  {eng.get('events_per_sec', 0) / 1e6:6.2f} Mev/s"
            f"  hwm {eng.get('queue_hwm', 0):>6,.0f}"
            f"  rss {eng.get('peak_rss_mb', 0):6.1f} MB")
    sp = eng.get("self_profile")
    if isinstance(sp, dict) and sp.get("scopes"):
        top = max(sp["scopes"], key=lambda s: s.get("self_ns", 0))
        line += (f"  top {top.get('name', '?')}"
                 f" {100.0 * top.get('self_frac', 0.0):.0f}%")
    print(line)
EOF
  echo
fi

# One-line recovery verdict per scheme from the fault bench's artifact
# (bench_fault_recovery; see DESIGN.md §8 and scripts/bench_check.py).
if [ -n "$CLOVE_JSON_OUT" ] && [ -f "$CLOVE_JSON_OUT/BENCH_fault.json" ]; then
  echo "### fault recovery summary (BENCH_fault.json)"
  python3 - "$CLOVE_JSON_OUT/BENCH_fault.json" <<'EOF'
import json, sys
vals = {v["name"]: v["value"] for v in json.load(open(sys.argv[1]))["values"]}
for scheme in sorted({n.split(".")[0] for n in vals}):
    rec = vals.get(f"{scheme}.recovery_ms", -1.0)
    infl = vals.get(f"{scheme}.fct_inflation_x", 0.0)
    verdict = "never recovered" if rec < 0 else f"recovered in {rec:.0f} ms"
    print(f"  {scheme:<14} {verdict:<22} (blackhole mice-FCT inflation {infl:.2f}x)")
EOF
fi
