#!/bin/sh
# Regenerates every paper figure/table; see README.md for scale knobs.
#
# Set CLOVE_JSON_OUT=<dir> to also emit one machine-readable JSON artifact
# per bench (swept points, fabric counters, telemetry digest) into <dir>;
# bench_micro_datapath contributes BENCH_micro.json (ns/op, events/sec and
# allocs/event for the datapath hot loops — the perf baseline).
#
# Sweep points run in parallel across CLOVE_THREADS worker threads (default:
# all hardware threads). Results are bit-identical for any thread count;
# set CLOVE_THREADS=1 to force serial execution.
: "${CLOVE_JOBS:=30}"
: "${CLOVE_CONNS:=2}"
: "${CLOVE_SEEDS:=1}"
export CLOVE_JOBS CLOVE_CONNS CLOVE_SEEDS
[ -n "${CLOVE_THREADS:-}" ] && export CLOVE_THREADS
if [ -n "${CLOVE_JSON_OUT:-}" ]; then
  mkdir -p "$CLOVE_JSON_OUT"
  export CLOVE_JSON_OUT
  echo "### JSON artifacts -> $CLOVE_JSON_OUT"
fi
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $b"
  "$b"
  echo
done
