#!/bin/sh
# Regenerates every paper figure/table; see README.md for scale knobs.
#
# Set CLOVE_JSON_OUT=<dir> to also emit one machine-readable JSON artifact
# per bench (swept points, fabric counters, telemetry digest) into <dir>.
: "${CLOVE_JOBS:=30}"
: "${CLOVE_CONNS:=2}"
: "${CLOVE_SEEDS:=1}"
export CLOVE_JOBS CLOVE_CONNS CLOVE_SEEDS
if [ -n "${CLOVE_JSON_OUT:-}" ]; then
  mkdir -p "$CLOVE_JSON_OUT"
  export CLOVE_JSON_OUT
  echo "### JSON artifacts -> $CLOVE_JSON_OUT"
fi
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $b"
  "$b"
  echo
done
