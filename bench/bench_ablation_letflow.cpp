// Ablation A1 (paper §8 discussion): where should flowlets live?
// Edge-Flowlet (hypervisor, random port per flowlet) vs LetFlow-style
// in-switch flowlets vs Clove-ECN (hypervisor + congestion feedback), on the
// asymmetric fabric. LetFlow and Edge-Flowlet both adapt implicitly via
// flowlet-size elasticity; Clove's explicit feedback should still lead.

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header(
      "Ablation A1 - edge flowlets vs in-switch flowlets (asymmetric)",
      "CoNEXT'17 Clove §8 (LetFlow discussion)", scale);
  bench::Artifact artifact("ablation_letflow", "CoNEXT'17 Clove §8 (LetFlow discussion)", scale);

  const std::vector<harness::Scheme> schemes = {harness::Scheme::kEcmp,
                                                harness::Scheme::kEdgeFlowlet,
                                                harness::Scheme::kLetFlow,
                                                harness::Scheme::kCloveEcn};
  const auto loads = bench::default_loads({0.3, 0.5, 0.7});

  stats::Table table([&] {
    std::vector<std::string> h{"load%"};
    for (auto s : schemes) h.push_back(harness::scheme_name(s));
    return h;
  }());

  for (double load : loads) {
    std::vector<std::string> row{stats::Table::fmt(load * 100, 0)};
    for (auto s : schemes) {
      harness::ExperimentConfig cfg = harness::make_ns2_profile();
      cfg.scheme = s;
      cfg.asymmetric = true;
      auto r = bench::run_point(cfg, load, scale);
      row.push_back(stats::Table::fmt(r.avg_fct_s));
    }
    table.add_row(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\navg FCT (seconds):\n");
  table.print();
  return 0;
}
