// Ablation A4: workload sensitivity. The paper evaluates on the web-search
// distribution only; CONGA/Presto also report the heavier-tailed
// data-mining distribution, where flowlet switching has fewer opportunities
// (most bytes sit in a handful of giant flows). This ablation compares
// ECMP / Edge-Flowlet / Clove-ECN across both distributions on the
// asymmetric fabric.

#include "bench_common.hpp"
#include "workload/flow_size.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Ablation A4 - workload distribution sensitivity",
                      "CoNEXT'17 Clove §5 workload choice", scale);
  bench::Artifact artifact("ablation_workloads", "CoNEXT'17 Clove §5 workload choice", scale);

  const std::vector<harness::Scheme> schemes = {harness::Scheme::kEcmp,
                                                harness::Scheme::kEdgeFlowlet,
                                                harness::Scheme::kCloveEcn};
  struct Dist {
    const char* label;
    workload::FlowSizeDistribution dist;
  };
  const std::vector<Dist> dists = {
      {"web-search", workload::FlowSizeDistribution::web_search()},
      {"data-mining", workload::FlowSizeDistribution::data_mining()},
  };
  const double load = 0.6;

  stats::Table table({"workload", "scheme", "avg FCT (s)", "p99 FCT (s)"});
  for (const auto& d : dists) {
    for (auto s : schemes) {
      harness::ExperimentConfig cfg = harness::make_testbed_profile();
      cfg.scheme = s;
      cfg.asymmetric = true;

      workload::ClientServerConfig wl;
      wl.load = load;
      wl.jobs_per_conn = scale.jobs_per_conn;
      wl.conns_per_client = scale.conns_per_client;
      wl.sizes = d.dist;

      double avg = 0, p99 = 0;
      for (int seed = 0; seed < scale.seeds; ++seed) {
        cfg.seed = static_cast<std::uint64_t>(seed) * 7919 + 1;
        auto r = harness::run_fct_experiment(cfg, wl);
        avg += r.avg_fct_s / scale.seeds;
        p99 += r.p99_fct_s / scale.seeds;
      }
      table.add_row({d.label, harness::scheme_name(s), stats::Table::fmt(avg),
                     stats::Table::fmt(p99)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%.0f%% load, asymmetric fabric:\n", load * 100);
  table.print();
  return 0;
}
