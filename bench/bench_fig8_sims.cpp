// Figure 8a/8b: the paper's NS2-style simulation comparison, adding the
// in-switch CONGA comparator and Clove-INT: average FCT vs load on the
// symmetric (8a) and asymmetric (8b) fabric.
//
// Paper's headline (§6): Edge-Flowlet captures ~40% of the ECMP->CONGA
// gain, Clove-ECN ~80%, Clove-INT ~95%; CONGA and Clove-INT are
// utilization-aware and lead everywhere.

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Fig. 8 - simulation comparison incl. CONGA / Clove-INT",
                      "CoNEXT'17 Clove, Figures 8a (symmetric), 8b (asymmetric)",
                      scale);
  bench::Artifact artifact("fig8_sims", "CoNEXT'17 Clove, Figures 8a (symmetric), 8b (asymmetric)", scale);

  const std::vector<harness::Scheme> schemes = {
      harness::Scheme::kEcmp, harness::Scheme::kEdgeFlowlet,
      harness::Scheme::kCloveEcn, harness::Scheme::kCloveInt,
      harness::Scheme::kConga};

  for (bool asym : {false, true}) {
    const auto loads =
        asym ? bench::default_loads({0.3, 0.5, 0.6, 0.7})
             : bench::default_loads({0.3, 0.5, 0.7, 0.9});
    stats::Table table([&] {
      std::vector<std::string> h{"load%"};
      for (auto s : schemes) h.push_back(harness::scheme_name(s));
      return h;
    }());

    std::vector<std::vector<double>> fct(schemes.size());
    for (double load : loads) {
      std::vector<std::string> row{stats::Table::fmt(load * 100, 0)};
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        harness::ExperimentConfig cfg = harness::make_ns2_profile();
        cfg.scheme = schemes[i];
        cfg.asymmetric = asym;
        auto r = bench::run_point(cfg, load, scale);
        fct[i].push_back(r.avg_fct_s);
        row.push_back(stats::Table::fmt(r.avg_fct_s * 1000, 1));
      }
      table.add_row(row);
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n\nFig. 8%c - %s topology, avg FCT (milliseconds):\n",
                asym ? 'b' : 'a', asym ? "asymmetric" : "symmetric");
    table.print();

    const std::size_t last = loads.size() - 1;
    const double ecmp = fct[0][last];
    const double conga = fct[4][last];
    std::printf("\ncapture of the ECMP->CONGA gain @%.0f%% load "
                "(paper: EF ~40%%, Clove-ECN ~80%%, Clove-INT ~95%%):\n",
                loads[last] * 100);
    std::printf("  Edge-Flowlet: %5.1f%%\n",
                100 * bench::capture_fraction(ecmp, fct[1][last], conga));
    std::printf("  Clove-ECN:    %5.1f%%\n",
                100 * bench::capture_fraction(ecmp, fct[2][last], conga));
    std::printf("  Clove-INT:    %5.1f%%\n\n",
                100 * bench::capture_fraction(ecmp, fct[3][last], conga));
  }
  return 0;
}
