// Micro-benchmarks (google-benchmark) for the per-packet datapath
// operations Clove adds to the hypervisor vswitch (§4 "Minimal packet
// processing overhead"): ECMP hashing, flowlet-table touches, WRR picks,
// DRE updates, full policy pick_port() calls, and the simulator event/packet
// hot loop (events/sec and heap allocations per event — the perf baseline
// EXPERIMENTS.md tracks).
//
// With CLOVE_JSON_OUT=<dir> set, the custom main() below writes every
// benchmark's ns/op and user counters to <dir>/BENCH_micro.json so runs can
// be diffed across commits.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>

#include "bench_common.hpp"
#include "lb/clove_ecn.hpp"
#include "lb/clove_int.hpp"
#include "lb/ecmp.hpp"
#include "lb/edge_flowlet.hpp"
#include "lb/presto.hpp"
#include "net/packet_pool.hpp"
#include "overlay/flowlet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/dre.hpp"
#include "telemetry/hub.hpp"

// --- allocation counting ---------------------------------------------------
// Program-wide operator new/delete override counting every heap allocation,
// so the event-loop benchmarks can report an exact allocs-per-event figure
// (the "zero heap allocations per steady-state packet event" claim).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace clove;

net::FiveTuple tuple_for(int i) {
  return net::FiveTuple{1, 2, static_cast<std::uint16_t>(1000 + (i & 1023)),
                        80, net::Proto::kTcp};
}

overlay::PathSet four_paths() {
  overlay::PathSet ps;
  for (std::uint16_t i = 0; i < 4; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(50000 + i);
    p.hops = {{10, 0},
              {static_cast<net::IpAddr>(20 + i / 2), static_cast<int>(i % 2)},
              {11, static_cast<int>(i % 2)},
              {2, 0}};
    ps.paths.push_back(p);
  }
  return ps;
}

void BM_EcmpHash(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::hash_tuple(tuple_for(i++), 42));
  }
}
BENCHMARK(BM_EcmpHash);

void BM_FlowletTouch(benchmark::State& state) {
  overlay::FlowletTracker tracker(100 * sim::kMicrosecond);
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 1000;
    benchmark::DoNotOptimize(tracker.touch(tuple_for(i++), now));
  }
}
BENCHMARK(BM_FlowletTouch);

void BM_DreUpdate(benchmark::State& state) {
  telemetry::Dre dre(0.1, 50 * sim::kMicrosecond, 1.25e9);
  sim::Time now = 0;
  for (auto _ : state) {
    now += 1200;
    dre.on_transmit(now, 1500);
    benchmark::DoNotOptimize(dre.utilization(now));
  }
}
BENCHMARK(BM_DreUpdate);

template <typename Policy>
void run_policy_bench(benchmark::State& state, Policy& policy,
                      bool with_paths) {
  if (with_paths) policy.on_paths_updated(2, four_paths());
  auto pkt = net::make_packet();
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 1000;
    pkt->inner = tuple_for(i++);
    pkt->payload = 1460;
    benchmark::DoNotOptimize(policy.pick_port(*pkt, 2, now));
  }
}

void BM_PickPort_Ecmp(benchmark::State& state) {
  lb::EcmpPolicy p;
  run_policy_bench(state, p, false);
}
BENCHMARK(BM_PickPort_Ecmp);

void BM_PickPort_EdgeFlowlet(benchmark::State& state) {
  lb::EdgeFlowletPolicy p;
  run_policy_bench(state, p, false);
}
BENCHMARK(BM_PickPort_EdgeFlowlet);

void BM_PickPort_CloveEcn(benchmark::State& state) {
  lb::CloveEcnPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveEcn);

void BM_PickPort_CloveInt(benchmark::State& state) {
  lb::CloveIntPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveInt);

void BM_PickPort_Presto(benchmark::State& state) {
  lb::PrestoPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_Presto);

// --- telemetry overhead ----------------------------------------------------
// The hub must be free when disabled (one predictable branch on the hot
// path) and cheap when enabled. Compare the *_Telemetry variants against
// their plain counterparts above: the disabled delta is the §4 "minimal
// overhead" claim for the instrumentation itself.

/// RAII: run one benchmark with the hub enabled, restore the default after.
struct ScopedTelemetry {
  explicit ScopedTelemetry(bool on) : was_(telemetry::hub().is_enabled()) {
    telemetry::hub().set_enabled(on);
  }
  ~ScopedTelemetry() {
    telemetry::hub().set_enabled(was_);
    telemetry::hub().begin_run();
  }
  bool was_;
};

void BM_PickPort_CloveEcn_Telemetry(benchmark::State& state) {
  ScopedTelemetry t(true);
  lb::CloveEcnPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveEcn_Telemetry);

void BM_TelemetryGuard_Disabled(benchmark::State& state) {
  // The cost instrumented components pay when telemetry is off: one load +
  // branch around the (skipped) counter add.
  ScopedTelemetry t(false);
  telemetry::Counter* c = telemetry::hub().metrics().counter("bench.guard");
  for (auto _ : state) {
    if (telemetry::enabled()) c->add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TelemetryGuard_Disabled);

void BM_TelemetryCounterAdd_Enabled(benchmark::State& state) {
  ScopedTelemetry t(true);
  telemetry::Counter* c = telemetry::hub().metrics().counter("bench.guard");
  for (auto _ : state) {
    if (telemetry::enabled()) c->add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TelemetryCounterAdd_Enabled);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  ScopedTelemetry t(true);
  telemetry::Histogram* h =
      telemetry::hub().metrics().histogram("bench.histogram");
  double v = 1.0;
  for (auto _ : state) {
    v = v < 1e6 ? v * 1.37 : 1.0;
    h->observe(v);
  }
  benchmark::DoNotOptimize(h);
}
BENCHMARK(BM_TelemetryHistogramObserve);

void BM_TraceRecord(benchmark::State& state) {
  ScopedTelemetry t(true);
  sim::Time now = 0;
  std::uint64_t id = 0;
  for (auto _ : state) {
    now += 1000;
    telemetry::trace(telemetry::Category::kFlowlet, now, "bench",
                     "bench.event", {}, 1.0, id++);
  }
  state.counters["dropped_oldest"] = static_cast<double>(
      telemetry::hub().trace().dropped_oldest());
}
BENCHMARK(BM_TraceRecord);

void BM_CloveEcnFeedback(benchmark::State& state) {
  lb::CloveEcnPolicy p;
  p.on_paths_updated(2, four_paths());
  net::CloveFeedback fb;
  fb.present = true;
  fb.ecn_set = true;
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 10'000;
    fb.port = static_cast<std::uint16_t>(50000 + (i++ & 3));
    p.on_feedback(2, fb, now);
  }
}
BENCHMARK(BM_CloveEcnFeedback);

// --- simulator event loop --------------------------------------------------
// The perf baseline behind the pooled-packet + slab-EventQueue + SmallFn
// datapath: events/sec through schedule->run and exact heap allocations per
// event. The first iterations warm the slab/pool (a handful of allocations);
// amortized over the run, steady state must read 0.00 allocs/event.

void report_events(benchmark::State& state, std::uint64_t allocs) {
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["allocs_per_event"] =
      benchmark::Counter(static_cast<double>(allocs),
                         benchmark::Counter::kAvgIterations);
}

void BM_EventChain(benchmark::State& state) {
  sim::Simulator sim;
  sim::Time t = 0;
  std::uint64_t fired = 0;
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    t += 1000;
    sim.schedule_at(t, [&fired] { ++fired; });
    sim.run(t);
  }
  report_events(state, alloc_count() - a0);
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventChain);

void BM_PacketEvent_Pooled(benchmark::State& state) {
  // The steady-state datapath op: acquire a pooled packet, schedule an event
  // owning it (inline in the SmallFn buffer), fire it, packet returns to the
  // pool. Zero heap traffic once the pool and slab are warm.
  sim::Simulator sim;
  sim::Time t = 0;
  std::uint64_t bytes = 0;
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    t += 1000;
    auto pkt = net::make_packet(sim);
    pkt->payload = 1460;
    sim.schedule_at(t, [&bytes, pkt = std::move(pkt)]() mutable {
      bytes += pkt->wire_size();
      pkt.reset();
    });
    sim.run(t);
  }
  report_events(state, alloc_count() - a0);
  state.counters["pool_allocated"] = static_cast<double>(
      net::PacketPool::of(sim).allocated());
  benchmark::DoNotOptimize(bytes);
}
BENCHMARK(BM_PacketEvent_Pooled);

void BM_PacketEvent_Heap(benchmark::State& state) {
  // Same op with the heap factory: one packet allocation per event (what
  // every packet cost before the pool; the std::function-era datapath added
  // two more for the callable and its shared_ptr holder).
  sim::Simulator sim;
  sim::Time t = 0;
  std::uint64_t bytes = 0;
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    t += 1000;
    auto pkt = net::make_packet();
    pkt->payload = 1460;
    sim.schedule_at(t, [&bytes, pkt = std::move(pkt)]() mutable {
      bytes += pkt->wire_size();
      pkt.reset();
    });
    sim.run(t);
  }
  report_events(state, alloc_count() - a0);
  benchmark::DoNotOptimize(bytes);
}
BENCHMARK(BM_PacketEvent_Heap);

void BM_PacketPool_RoundTrip(benchmark::State& state) {
  sim::Simulator sim;
  auto& pool = net::PacketPool::of(sim);
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    auto pkt = pool.acquire();
    benchmark::DoNotOptimize(pkt);
  }
  report_events(state, alloc_count() - a0);
}
BENCHMARK(BM_PacketPool_RoundTrip);

void BM_PacketHeap_RoundTrip(benchmark::State& state) {
  const std::uint64_t a0 = alloc_count();
  for (auto _ : state) {
    auto pkt = net::make_packet();
    benchmark::DoNotOptimize(pkt);
  }
  report_events(state, alloc_count() - a0);
}
BENCHMARK(BM_PacketHeap_RoundTrip);

// --- artifact emission -----------------------------------------------------

/// ConsoleReporter that additionally records every run's ns/op and user
/// counters into the bench Artifact, producing BENCH_micro.json when
/// CLOVE_JSON_OUT is set (see run_benches.sh).
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    if (bench::Artifact* a = bench::Artifact::current()) {
      for (const Run& run : runs) {
        if (run.iterations == 0) continue;
        const double ns_per_op = run.real_accumulated_time /
                                 static_cast<double>(run.iterations) * 1e9;
        a->add_value(run.benchmark_name() + ".ns_per_op", ns_per_op);
        for (const auto& [cname, counter] : run.counters) {
          a->add_value(run.benchmark_name() + "." + cname, counter.value);
        }
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const auto scale = clove::harness::BenchScale::from_env();
  clove::bench::Artifact artifact("BENCH_micro",
                                  "micro datapath perf baseline", scale);
  // The Artifact enables telemetry for figure benches; here it would skew the
  // plain (telemetry-off) datapath numbers, and the *_Telemetry benchmarks
  // scope their own enablement anyway.
  clove::telemetry::hub().set_enabled(false);
  ArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
