// Micro-benchmarks (google-benchmark) for the per-packet datapath
// operations Clove adds to the hypervisor vswitch (§4 "Minimal packet
// processing overhead"): ECMP hashing, flowlet-table touches, WRR picks,
// DRE updates and full policy pick_port() calls.

#include <benchmark/benchmark.h>

#include "lb/clove_ecn.hpp"
#include "lb/clove_int.hpp"
#include "lb/ecmp.hpp"
#include "lb/edge_flowlet.hpp"
#include "lb/presto.hpp"
#include "overlay/flowlet.hpp"
#include "telemetry/dre.hpp"
#include "telemetry/hub.hpp"

namespace {

using namespace clove;

net::FiveTuple tuple_for(int i) {
  return net::FiveTuple{1, 2, static_cast<std::uint16_t>(1000 + (i & 1023)),
                        80, net::Proto::kTcp};
}

overlay::PathSet four_paths() {
  overlay::PathSet ps;
  for (std::uint16_t i = 0; i < 4; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(50000 + i);
    p.hops = {{10, 0},
              {static_cast<net::IpAddr>(20 + i / 2), static_cast<int>(i % 2)},
              {11, static_cast<int>(i % 2)},
              {2, 0}};
    ps.paths.push_back(p);
  }
  return ps;
}

void BM_EcmpHash(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::hash_tuple(tuple_for(i++), 42));
  }
}
BENCHMARK(BM_EcmpHash);

void BM_FlowletTouch(benchmark::State& state) {
  overlay::FlowletTracker tracker(100 * sim::kMicrosecond);
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 1000;
    benchmark::DoNotOptimize(tracker.touch(tuple_for(i++), now));
  }
}
BENCHMARK(BM_FlowletTouch);

void BM_DreUpdate(benchmark::State& state) {
  telemetry::Dre dre(0.1, 50 * sim::kMicrosecond, 1.25e9);
  sim::Time now = 0;
  for (auto _ : state) {
    now += 1200;
    dre.on_transmit(now, 1500);
    benchmark::DoNotOptimize(dre.utilization(now));
  }
}
BENCHMARK(BM_DreUpdate);

template <typename Policy>
void run_policy_bench(benchmark::State& state, Policy& policy,
                      bool with_paths) {
  if (with_paths) policy.on_paths_updated(2, four_paths());
  auto pkt = net::make_packet();
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 1000;
    pkt->inner = tuple_for(i++);
    pkt->payload = 1460;
    benchmark::DoNotOptimize(policy.pick_port(*pkt, 2, now));
  }
}

void BM_PickPort_Ecmp(benchmark::State& state) {
  lb::EcmpPolicy p;
  run_policy_bench(state, p, false);
}
BENCHMARK(BM_PickPort_Ecmp);

void BM_PickPort_EdgeFlowlet(benchmark::State& state) {
  lb::EdgeFlowletPolicy p;
  run_policy_bench(state, p, false);
}
BENCHMARK(BM_PickPort_EdgeFlowlet);

void BM_PickPort_CloveEcn(benchmark::State& state) {
  lb::CloveEcnPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveEcn);

void BM_PickPort_CloveInt(benchmark::State& state) {
  lb::CloveIntPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveInt);

void BM_PickPort_Presto(benchmark::State& state) {
  lb::PrestoPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_Presto);

// --- telemetry overhead ----------------------------------------------------
// The hub must be free when disabled (one predictable branch on the hot
// path) and cheap when enabled. Compare the *_Telemetry variants against
// their plain counterparts above: the disabled delta is the §4 "minimal
// overhead" claim for the instrumentation itself.

/// RAII: run one benchmark with the hub enabled, restore the default after.
struct ScopedTelemetry {
  explicit ScopedTelemetry(bool on) : was_(telemetry::hub().is_enabled()) {
    telemetry::hub().set_enabled(on);
  }
  ~ScopedTelemetry() {
    telemetry::hub().set_enabled(was_);
    telemetry::hub().begin_run();
  }
  bool was_;
};

void BM_PickPort_CloveEcn_Telemetry(benchmark::State& state) {
  ScopedTelemetry t(true);
  lb::CloveEcnPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveEcn_Telemetry);

void BM_TelemetryGuard_Disabled(benchmark::State& state) {
  // The cost instrumented components pay when telemetry is off: one load +
  // branch around the (skipped) counter add.
  ScopedTelemetry t(false);
  telemetry::Counter* c = telemetry::hub().metrics().counter("bench.guard");
  for (auto _ : state) {
    if (telemetry::enabled()) c->add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TelemetryGuard_Disabled);

void BM_TelemetryCounterAdd_Enabled(benchmark::State& state) {
  ScopedTelemetry t(true);
  telemetry::Counter* c = telemetry::hub().metrics().counter("bench.guard");
  for (auto _ : state) {
    if (telemetry::enabled()) c->add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TelemetryCounterAdd_Enabled);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  ScopedTelemetry t(true);
  telemetry::Histogram* h =
      telemetry::hub().metrics().histogram("bench.histogram");
  double v = 1.0;
  for (auto _ : state) {
    v = v < 1e6 ? v * 1.37 : 1.0;
    h->observe(v);
  }
  benchmark::DoNotOptimize(h);
}
BENCHMARK(BM_TelemetryHistogramObserve);

void BM_TraceRecord(benchmark::State& state) {
  ScopedTelemetry t(true);
  sim::Time now = 0;
  std::uint64_t id = 0;
  for (auto _ : state) {
    now += 1000;
    telemetry::trace(telemetry::Category::kFlowlet, now, "bench",
                     "bench.event", {}, 1.0, id++);
  }
  state.counters["dropped_oldest"] = static_cast<double>(
      telemetry::hub().trace().dropped_oldest());
}
BENCHMARK(BM_TraceRecord);

void BM_CloveEcnFeedback(benchmark::State& state) {
  lb::CloveEcnPolicy p;
  p.on_paths_updated(2, four_paths());
  net::CloveFeedback fb;
  fb.present = true;
  fb.ecn_set = true;
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 10'000;
    fb.port = static_cast<std::uint16_t>(50000 + (i++ & 3));
    p.on_feedback(2, fb, now);
  }
}
BENCHMARK(BM_CloveEcnFeedback);

}  // namespace

BENCHMARK_MAIN();
