// Micro-benchmarks (google-benchmark) for the per-packet datapath
// operations Clove adds to the hypervisor vswitch (§4 "Minimal packet
// processing overhead"): ECMP hashing, flowlet-table touches, WRR picks,
// DRE updates and full policy pick_port() calls.

#include <benchmark/benchmark.h>

#include "lb/clove_ecn.hpp"
#include "lb/clove_int.hpp"
#include "lb/ecmp.hpp"
#include "lb/edge_flowlet.hpp"
#include "lb/presto.hpp"
#include "overlay/flowlet.hpp"
#include "telemetry/dre.hpp"

namespace {

using namespace clove;

net::FiveTuple tuple_for(int i) {
  return net::FiveTuple{1, 2, static_cast<std::uint16_t>(1000 + (i & 1023)),
                        80, net::Proto::kTcp};
}

overlay::PathSet four_paths() {
  overlay::PathSet ps;
  for (std::uint16_t i = 0; i < 4; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(50000 + i);
    p.hops = {{10, 0},
              {static_cast<net::IpAddr>(20 + i / 2), static_cast<int>(i % 2)},
              {11, static_cast<int>(i % 2)},
              {2, 0}};
    ps.paths.push_back(p);
  }
  return ps;
}

void BM_EcmpHash(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::hash_tuple(tuple_for(i++), 42));
  }
}
BENCHMARK(BM_EcmpHash);

void BM_FlowletTouch(benchmark::State& state) {
  overlay::FlowletTracker tracker(100 * sim::kMicrosecond);
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 1000;
    benchmark::DoNotOptimize(tracker.touch(tuple_for(i++), now));
  }
}
BENCHMARK(BM_FlowletTouch);

void BM_DreUpdate(benchmark::State& state) {
  telemetry::Dre dre(0.1, 50 * sim::kMicrosecond, 1.25e9);
  sim::Time now = 0;
  for (auto _ : state) {
    now += 1200;
    dre.on_transmit(now, 1500);
    benchmark::DoNotOptimize(dre.utilization(now));
  }
}
BENCHMARK(BM_DreUpdate);

template <typename Policy>
void run_policy_bench(benchmark::State& state, Policy& policy,
                      bool with_paths) {
  if (with_paths) policy.on_paths_updated(2, four_paths());
  auto pkt = net::make_packet();
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 1000;
    pkt->inner = tuple_for(i++);
    pkt->payload = 1460;
    benchmark::DoNotOptimize(policy.pick_port(*pkt, 2, now));
  }
}

void BM_PickPort_Ecmp(benchmark::State& state) {
  lb::EcmpPolicy p;
  run_policy_bench(state, p, false);
}
BENCHMARK(BM_PickPort_Ecmp);

void BM_PickPort_EdgeFlowlet(benchmark::State& state) {
  lb::EdgeFlowletPolicy p;
  run_policy_bench(state, p, false);
}
BENCHMARK(BM_PickPort_EdgeFlowlet);

void BM_PickPort_CloveEcn(benchmark::State& state) {
  lb::CloveEcnPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveEcn);

void BM_PickPort_CloveInt(benchmark::State& state) {
  lb::CloveIntPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_CloveInt);

void BM_PickPort_Presto(benchmark::State& state) {
  lb::PrestoPolicy p;
  run_policy_bench(state, p, true);
}
BENCHMARK(BM_PickPort_Presto);

void BM_CloveEcnFeedback(benchmark::State& state) {
  lb::CloveEcnPolicy p;
  p.on_paths_updated(2, four_paths());
  net::CloveFeedback fb;
  fb.present = true;
  fb.ecn_set = true;
  sim::Time now = 0;
  int i = 0;
  for (auto _ : state) {
    now += 10'000;
    fb.port = static_cast<std::uint16_t>(50000 + (i++ & 3));
    p.on_feedback(2, fb, now);
  }
}
BENCHMARK(BM_CloveEcnFeedback);

}  // namespace

BENCHMARK_MAIN();
