// Ablation A3: the paper's §7 extensions —
//  (i) Clove-Latency: one-way path delay instead of ECN as the signal,
//  (ii) non-overlay mode: five-tuple rewriting instead of STT encapsulation.
// Both compared against stock Clove-ECN on the asymmetric fabric.

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Ablation A3 - §7 extensions (latency signal, non-overlay)",
                      "CoNEXT'17 Clove §7", scale);
  bench::Artifact artifact("ablation_extensions", "CoNEXT'17 Clove §7", scale);

  struct Variant {
    const char* label;
    harness::Scheme scheme;
    bool non_overlay;
  };
  const std::vector<Variant> variants = {
      {"Clove-ECN (overlay)", harness::Scheme::kCloveEcn, false},
      {"Clove-ECN (non-overlay)", harness::Scheme::kCloveEcn, true},
      {"Clove-Latency", harness::Scheme::kCloveLatency, false},
      {"Edge-Flowlet", harness::Scheme::kEdgeFlowlet, false},
  };
  const auto loads = bench::default_loads({0.3, 0.5, 0.7});

  stats::Table table([&] {
    std::vector<std::string> h{"load%"};
    for (const auto& v : variants) h.push_back(v.label);
    return h;
  }());

  for (double load : loads) {
    std::vector<std::string> row{stats::Table::fmt(load * 100, 0)};
    for (const auto& v : variants) {
      harness::ExperimentConfig cfg = harness::make_testbed_profile();
      cfg.scheme = v.scheme;
      cfg.non_overlay = v.non_overlay;
      cfg.asymmetric = true;
      auto r = bench::run_point(cfg, load, scale);
      row.push_back(stats::Table::fmt(r.avg_fct_s));
    }
    table.add_row(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\navg FCT (seconds):\n");
  table.print();
  return 0;
}
