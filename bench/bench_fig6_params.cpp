// Figure 6: Clove-ECN parameter sensitivity on the asymmetric testbed.
// Settings (flowlet gap, ECN threshold): the paper's best (1xRTT, 20 pkts)
// vs too-small gap (0.2xRTT -> per-packet-like spraying, reordering), too
// large gap (5xRTT -> elephant flowlet collisions) and too-high ECN
// threshold (40 pkts -> slow congestion detection).
//
// The fabric's base RTT in this simulator is ~50us (see DESIGN.md).

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Fig. 6 - Clove-ECN parameter sensitivity, asymmetric",
                      "CoNEXT'17 Clove, Figure 6", scale);
  bench::Artifact artifact("fig6_params", "CoNEXT'17 Clove, Figure 6", scale);

  constexpr sim::Time kRtt = 50 * sim::kMicrosecond;
  struct Setting {
    const char* label;
    sim::Time gap;
    std::int64_t ecn_pkts;
  };
  const std::vector<Setting> settings = {
      {"Clove-best (1*RTT, 20pkts)", kRtt, 20},
      {"Clove (0.2*RTT, 20pkts)", kRtt / 5, 20},
      {"Clove (5*RTT, 20pkts)", 5 * kRtt, 20},
      {"Clove (1*RTT, 40pkts)", kRtt, 40},
  };
  const auto loads = bench::default_loads({0.4, 0.6, 0.8});

  stats::Table table([&] {
    std::vector<std::string> h{"load%"};
    for (const auto& s : settings) h.push_back(s.label);
    return h;
  }());

  std::vector<std::vector<double>> fct(settings.size());
  for (double load : loads) {
    std::vector<std::string> row{stats::Table::fmt(load * 100, 0)};
    for (std::size_t i = 0; i < settings.size(); ++i) {
      harness::ExperimentConfig cfg = harness::make_testbed_profile();
      cfg.scheme = harness::Scheme::kCloveEcn;
      cfg.asymmetric = true;
      cfg.flowlet_gap = settings[i].gap;
      cfg.ecn_threshold_pkts = settings[i].ecn_pkts;
      auto r = bench::run_point(cfg, load, scale);
      fct[i].push_back(r.avg_fct_s);
      row.push_back(stats::Table::fmt(r.avg_fct_s));
    }
    table.add_row(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\navg FCT (seconds):\n");
  table.print();

  const std::size_t last = loads.size() - 1;
  std::printf("\nheadlines @%.0f%% (paper: ~5x degradation at 0.2*RTT, ~4x at "
              "40-pkt threshold):\n",
              loads[last] * 100);
  std::printf("  (0.2*RTT) / best = %.2fx\n", fct[1][last] / fct[0][last]);
  std::printf("  (5*RTT)   / best = %.2fx\n", fct[2][last] / fct[0][last]);
  std::printf("  (40pkts)  / best = %.2fx\n", fct[3][last] / fct[0][last]);
  return 0;
}
