#pragma once

// Shared plumbing for the figure-reproduction bench binaries.
//
// Scale knobs (environment):
//   CLOVE_JOBS     jobs per connection   (default 40; paper §5 used 50000)
//   CLOVE_SEEDS    seeds averaged        (default 1;  paper used 3)
//   CLOVE_CONNS    connections/client    (default 2;  §6 used 3)
//   CLOVE_THREADS  sweep-point parallelism (default: hardware threads; 1 =
//                  serial). Sweep points are independent simulations, so
//                  run_sweep() fans them out across a harness::ParallelRunner;
//                  results and artifacts keep sweep order and are
//                  bit-identical for any thread count at equal seeds.
//
// Each binary prints the same rows/series as the corresponding figure in the
// paper; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Machine-readable artifacts: set CLOVE_JSON_OUT=<dir> and each bench writes
// <dir>/<bench>.json with every swept point (FCT stats + fabric counters +
// a telemetry metrics digest). Declaring a bench::Artifact near the top of
// main() is all a bench needs; run_point() / run_sweep() record into it
// automatically.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel_runner.hpp"
#include "prof/prof.hpp"
#include "stats/stats.hpp"
#include "telemetry/artifact.hpp"
#include "telemetry/hub.hpp"
#include "workload/client_server.hpp"

namespace clove::bench {

struct SweepResult {
  double avg_fct_s{0.0};
  double mice_avg_fct_s{0.0};
  double elephant_avg_fct_s{0.0};
  double p99_fct_s{0.0};
  std::uint64_t jobs{0};              ///< summed over seeds
  std::uint64_t timeouts{0};          ///< summed over seeds
  std::uint64_t fast_retransmits{0};  ///< summed over seeds
  std::uint64_t ecn_marks{0};         ///< summed over seeds
  std::uint64_t drops{0};             ///< summed over seeds
  std::uint64_t events{0};            ///< simulator events, summed over seeds
  std::uint64_t queue_hwm{0};         ///< event-queue high water, max over seeds
  std::shared_ptr<stats::FctRecorder> fct;  ///< from the last seed
  /// Registry snapshot from the last seed (only when the hub is enabled).
  telemetry::MetricsSnapshot metrics;
};

/// Collects every point a bench sweeps and, when CLOVE_JSON_OUT is set,
/// writes `<dir>/<bench>.json` on destruction. Constructing one enables the
/// telemetry hub when artifacts are requested, so snapshots carry data.
/// run_point() records into the current (most recent) instance.
class Artifact {
 public:
  Artifact(std::string name, std::string paper_ref,
           const harness::BenchScale& scale)
      : name_(std::move(name)),
        doc_(telemetry::Json::object()),
        points_(telemetry::Json::array()),
        values_(telemetry::Json::array()),
        start_(std::chrono::steady_clock::now()) {
    doc_.set("bench", telemetry::Json(name_));
    doc_.set("reproduces", telemetry::Json(paper_ref));
    telemetry::Json sc = telemetry::Json::object();
    sc.set("jobs_per_conn", telemetry::Json(scale.jobs_per_conn));
    sc.set("seeds", telemetry::Json(scale.seeds));
    sc.set("conns_per_client", telemetry::Json(scale.conns_per_client));
    doc_.set("scale", sc);
    // Artifacts without telemetry would carry all-zero counters; requesting
    // JSON output implies wanting the instrumented values.
    if (!telemetry::json_out_dir().empty()) {
      telemetry::hub().set_enabled(true);
    }
    current_ = this;
  }

  Artifact(const Artifact&) = delete;
  Artifact& operator=(const Artifact&) = delete;

  ~Artifact() {
    if (current_ == this) current_ = nullptr;
    const std::string dir = telemetry::json_out_dir();
    if (dir.empty()) return;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    doc_.set("wall_time_s", telemetry::Json(wall_s));

    // Engine observability (DESIGN.md §10): every bench artifact carries the
    // run's event throughput, queue pressure, and process peak RSS — and,
    // when a profiler is installed (CLOVE_PROF), its self-profile section
    // plus flamegraph/Chrome-trace side files.
    const double rss_mb = prof::peak_rss_mb();
    telemetry::Json eng = telemetry::Json::object();
    eng.set("events", telemetry::Json(static_cast<double>(total_events_)));
    const double eps = wall_s > 0.0 && total_events_ > 0
                           ? static_cast<double>(total_events_) / wall_s
                           : 0.0;
    eng.set("events_per_sec", telemetry::Json(eps));
    eng.set("queue_hwm",
            telemetry::Json(static_cast<double>(queue_hwm_)));
    eng.set("peak_rss_mb", telemetry::Json(rss_mb));
    if (prof::Profiler* p = prof_session_.profiler()) {
      std::string err;
      telemetry::Json sp = telemetry::Json::parse(p->to_json(), &err);
      if (err.empty()) eng.set("self_profile", std::move(sp));
      const std::string prof_dir = prof::out_dir_from_env(dir);
      if (p->mode() == prof::Mode::kFull) {
        telemetry::write_text_artifact(prof_dir, "PROF_" + name_ + ".folded",
                                       p->folded());
        telemetry::write_text_artifact(prof_dir,
                                       "PROF_" + name_ + "_trace.json",
                                       p->chrome_trace());
      }
    }
    doc_.set("engine", eng);
    // Mirror the guard-relevant gauges into `values` so bench_check.py can
    // hold them to its floor (_per_sec) and ceiling (.rss_mb) rules.
    if (total_events_ > 0 && mirror_engine_rate_) {
      add_value("engine.events_per_sec", eps);
    }
    add_value("engine.rss_mb", rss_mb);

    doc_.set("points", points_);
    if (values_.size() > 0) doc_.set("values", values_);
    const std::string path = telemetry::write_json_artifact(dir, name_, doc_);
    if (!path.empty()) {
      std::printf("\nartifact: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "\nwarning: CLOVE_JSON_OUT=%s is not writable, %s.json not saved\n",
                   dir.c_str(), name_.c_str());
    }
  }

  [[nodiscard]] static Artifact* current() { return current_; }

  /// One swept (scheme, load) point. Called from run_point().
  void record_point(const harness::ExperimentConfig& cfg, double load,
                    const SweepResult& r) {
    telemetry::Json p = telemetry::Json::object();
    p.set("scheme", telemetry::Json(harness::scheme_name(cfg.scheme)));
    p.set("load", telemetry::Json(load));
    p.set("asymmetric", telemetry::Json(cfg.asymmetric));
    p.set("avg_fct_s", telemetry::Json(r.avg_fct_s));
    p.set("mice_avg_fct_s", telemetry::Json(r.mice_avg_fct_s));
    p.set("elephant_avg_fct_s", telemetry::Json(r.elephant_avg_fct_s));
    p.set("p99_fct_s", telemetry::Json(r.p99_fct_s));
    p.set("jobs", telemetry::Json(static_cast<double>(r.jobs)));
    p.set("timeouts", telemetry::Json(static_cast<double>(r.timeouts)));
    p.set("fast_retransmits",
          telemetry::Json(static_cast<double>(r.fast_retransmits)));
    p.set("ecn_marks", telemetry::Json(static_cast<double>(r.ecn_marks)));
    p.set("drops", telemetry::Json(static_cast<double>(r.drops)));
    p.set("events", telemetry::Json(static_cast<double>(r.events)));
    p.set("queue_hwm", telemetry::Json(static_cast<double>(r.queue_hwm)));
    note_engine(r.events, r.queue_hwm);
    if (!r.metrics.samples.empty()) {
      p.set("metrics", metrics_digest(r.metrics));
    }
    points_.push_back(p);
  }

  /// Free-form named value for benches whose output is not a load sweep
  /// (incast goodput, micro-bench ratios, parameter ablations).
  void add_value(const std::string& name, double value,
                 const telemetry::Labels& labels = {}) {
    telemetry::Json v = telemetry::Json::object();
    v.set("name", telemetry::Json(name));
    for (const auto& [k, val] : labels) v.set(k, telemetry::Json(val));
    v.set("value", telemetry::Json(value));
    values_.push_back(v);
  }

 private:
  /// Fabric-wide aggregates of the registry snapshot: compact enough to
  /// embed per point, detailed enough to cross-check the legacy counters.
  static telemetry::Json metrics_digest(const telemetry::MetricsSnapshot& m) {
    telemetry::Json d = telemetry::Json::object();
    auto put_sum = [&](const char* key, const char* metric) {
      d.set(key, telemetry::Json(m.sum_over(metric)));
    };
    put_sum("link.tx_packets", "link.tx_packets");
    put_sum("link.tx_bytes", "link.tx_bytes");
    put_sum("link.drops_overflow", "link.drops_overflow");
    put_sum("link.ecn_marks", "link.ecn_marks");
    put_sum("hyp.encapped", "hyp.encapped");
    put_sum("hyp.feedback_received", "hyp.feedback_received");
    put_sum("hyp.ce_intercepted", "hyp.ce_intercepted");
    put_sum("hyp.forged_ece", "hyp.forged_ece");
    put_sum("tcp.timeouts", "tcp.timeouts");
    put_sum("tcp.fast_retransmits", "tcp.fast_retransmits");
    put_sum("tcp.ecn_reductions", "tcp.ecn_reductions");
    if (const auto* rtt = m.find("tcp.rtt_us")) {
      telemetry::Json h = telemetry::Json::object();
      h.set("count", telemetry::Json(static_cast<double>(rtt->count)));
      h.set("p50", telemetry::Json(rtt->p50));
      h.set("p99", telemetry::Json(rtt->p99));
      d.set("tcp.rtt_us", h);
    }
    return d;
  }

  inline static Artifact* current_ = nullptr;

  std::string name_;
  telemetry::Json doc_;
  telemetry::Json points_;
  telemetry::Json values_;
  std::chrono::steady_clock::time_point start_;
  /// Installs a Profiler for the bench's lifetime when CLOVE_PROF is set —
  /// declaring the Artifact makes the binary profilable, nothing else to do.
  prof::SessionGuard prof_session_;
  std::uint64_t total_events_{0};
  std::uint64_t queue_hwm_{0};
  bool mirror_engine_rate_{true};

 public:
  /// Fold one run's engine gauges into the artifact totals. record_point()
  /// calls this automatically; benches that bypass it (micro-benches with
  /// hand-rolled loops) call it directly.
  void note_engine(std::uint64_t events, std::uint64_t queue_hwm) {
    total_events_ += events;
    if (queue_hwm > queue_hwm_) queue_hwm_ = queue_hwm;
  }
  /// Opt out of the blended `engine.events_per_sec` values row (the JSON
  /// `engine` section keeps it either way). For benches whose phases are
  /// gated on env knobs (bench_scale's CLOVE_SHARDS k=16 arm, CLOVE_HYBRID
  /// A/B arm) the blend mixes different work per CI matrix leg, so no one
  /// committed floor fits every leg — their per-phase *_per_sec rows carry
  /// the throughput guard instead.
  void set_mirror_engine_rate(bool on) { mirror_engine_rate_ = on; }
  /// The bench's session profiler, or null when CLOVE_PROF=off.
  [[nodiscard]] prof::Profiler* profiler() { return prof_session_.profiler(); }
};

/// Run one (scheme, load) point averaged over `seeds` seeds, without
/// recording it anywhere. Pure with respect to process state (each seed is a
/// self-contained simulation), so points may run concurrently.
inline SweepResult compute_point(harness::ExperimentConfig cfg, double load,
                                 const harness::BenchScale& scale) {
  workload::ClientServerConfig wl;
  wl.load = load;
  wl.jobs_per_conn = scale.jobs_per_conn;
  wl.conns_per_client = scale.conns_per_client;

  SweepResult out;
  for (int s = 0; s < scale.seeds; ++s) {
    cfg.seed = static_cast<std::uint64_t>(s) * 7919 + 1;
    auto r = harness::run_fct_experiment(cfg, wl);
    out.avg_fct_s += r.avg_fct_s / scale.seeds;
    out.mice_avg_fct_s += r.mice_avg_fct_s / scale.seeds;
    out.elephant_avg_fct_s += r.elephant_avg_fct_s / scale.seeds;
    out.p99_fct_s += r.p99_fct_s / scale.seeds;
    out.jobs += r.jobs;
    out.timeouts += r.timeouts;
    out.fast_retransmits += r.fast_retransmits;
    out.ecn_marks += r.ecn_marks;
    out.drops += r.drops;
    out.events += r.events;
    if (r.queue_hwm > out.queue_hwm) out.queue_hwm = r.queue_hwm;
    out.fct = r.fct;
    out.metrics = std::move(r.metrics);
  }
  return out;
}

/// Run one (scheme, load) point averaged over `seeds` seeds. Records the
/// point into the current bench Artifact (if one is declared).
inline SweepResult run_point(harness::ExperimentConfig cfg, double load,
                             const harness::BenchScale& scale) {
  SweepResult out = compute_point(cfg, load, scale);
  if (Artifact* a = Artifact::current()) a->record_point(cfg, load, out);
  return out;
}

/// One entry of a sweep handed to run_sweep().
struct SweepPoint {
  harness::ExperimentConfig cfg;
  double load{0.0};
};

/// Run every sweep point, in parallel across CLOVE_THREADS workers (sweep
/// points are independent simulations — own Simulator, packet pool, and
/// telemetry scope each). Results come back in `points` order, and Artifact
/// recording happens afterwards on the calling thread in that same order, so
/// output is deterministic and bit-identical to a serial run.
inline std::vector<SweepResult> run_sweep(const std::vector<SweepPoint>& points,
                                          const harness::BenchScale& scale) {
  harness::ParallelRunner runner;
  std::vector<std::function<SweepResult()>> fns;
  fns.reserve(points.size());
  for (const SweepPoint& p : points) {
    fns.push_back([p, &scale] { return compute_point(p.cfg, p.load, scale); });
  }
  std::vector<SweepResult> results = runner.map<SweepResult>(std::move(fns));
  if (Artifact* a = Artifact::current()) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      a->record_point(points[i].cfg, points[i].load, results[i]);
    }
  }
  return results;
}

inline void print_header(const std::string& title, const std::string& paper_ref,
                         const harness::BenchScale& scale) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "scale: %d jobs/conn x %d conns/client x %d seed(s)   "
      "(CLOVE_JOBS / CLOVE_CONNS / CLOVE_SEEDS to change)\n\n",
      scale.jobs_per_conn, scale.conns_per_client, scale.seeds);
}

/// The ratio "X captures this fraction of the ECMP->CONGA gain" used by the
/// paper's §6 headline claims (80% for Clove-ECN, 95% for Clove-INT).
inline double capture_fraction(double ecmp, double x, double conga) {
  const double gain = ecmp - conga;
  if (gain <= 0.0) return 1.0;
  return (ecmp - x) / gain;
}

inline std::vector<double> default_loads(std::initializer_list<double> loads) {
  return std::vector<double>(loads);
}

}  // namespace clove::bench
