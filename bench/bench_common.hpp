#pragma once

// Shared plumbing for the figure-reproduction bench binaries.
//
// Scale knobs (environment):
//   CLOVE_JOBS   jobs per connection   (default 40; paper §5 used 50000)
//   CLOVE_SEEDS  seeds averaged        (default 1;  paper used 3)
//   CLOVE_CONNS  connections/client    (default 2;  §6 used 3)
//
// Each binary prints the same rows/series as the corresponding figure in the
// paper; EXPERIMENTS.md records the paper-vs-measured comparison.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "stats/stats.hpp"
#include "workload/client_server.hpp"

namespace clove::bench {

struct SweepResult {
  double avg_fct_s{0.0};
  double mice_avg_fct_s{0.0};
  double elephant_avg_fct_s{0.0};
  double p99_fct_s{0.0};
  std::shared_ptr<stats::FctRecorder> fct;  ///< from the last seed
};

/// Run one (scheme, load) point averaged over `seeds` seeds.
inline SweepResult run_point(harness::ExperimentConfig cfg, double load,
                             const harness::BenchScale& scale) {
  workload::ClientServerConfig wl;
  wl.load = load;
  wl.jobs_per_conn = scale.jobs_per_conn;
  wl.conns_per_client = scale.conns_per_client;

  SweepResult out;
  for (int s = 0; s < scale.seeds; ++s) {
    cfg.seed = static_cast<std::uint64_t>(s) * 7919 + 1;
    auto r = harness::run_fct_experiment(cfg, wl);
    out.avg_fct_s += r.avg_fct_s / scale.seeds;
    out.mice_avg_fct_s += r.mice_avg_fct_s / scale.seeds;
    out.elephant_avg_fct_s += r.elephant_avg_fct_s / scale.seeds;
    out.p99_fct_s += r.p99_fct_s / scale.seeds;
    out.fct = r.fct;
  }
  return out;
}

inline void print_header(const std::string& title, const std::string& paper_ref,
                         const harness::BenchScale& scale) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "scale: %d jobs/conn x %d conns/client x %d seed(s)   "
      "(CLOVE_JOBS / CLOVE_CONNS / CLOVE_SEEDS to change)\n\n",
      scale.jobs_per_conn, scale.conns_per_client, scale.seeds);
}

/// The ratio "X captures this fraction of the ECMP->CONGA gain" used by the
/// paper's §6 headline claims (80% for Clove-ECN, 95% for Clove-INT).
inline double capture_fraction(double ecmp, double x, double conga) {
  const double gain = ecmp - conga;
  if (gain <= 0.0) return 1.0;
  return (ecmp - x) / gain;
}

inline std::vector<double> default_loads(std::initializer_list<double> loads) {
  return std::vector<double>(loads);
}

}  // namespace clove::bench
