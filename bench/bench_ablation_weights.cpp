// Ablation A2: sensitivity of Clove-ECN's control loop beyond Fig. 6 —
// (i) the weight reduction factor ("e.g., by a third", §3.2) and
// (ii) the receiver-side ECN relay interval ("half the RTT", §3.2/§4).
// Run on the asymmetric fabric at a fixed high load.

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header(
      "Ablation A2 - Clove-ECN reduce factor & ECN relay interval",
      "CoNEXT'17 Clove §3.2/§4 design choices", scale);
  bench::Artifact artifact("ablation_weights", "CoNEXT'17 Clove §3.2/§4 design choices", scale);

  const double load = 0.7;

  std::printf("weight reduction factor sweep (asymmetric, %.0f%% load):\n",
              load * 100);
  stats::Table t1({"reduce factor", "avg FCT (s)", "p99 FCT (s)"});
  for (double rf : {1.0 / 6.0, 1.0 / 3.0, 1.0 / 2.0, 0.9}) {
    harness::ExperimentConfig cfg = harness::make_testbed_profile();
    cfg.scheme = harness::Scheme::kCloveEcn;
    cfg.asymmetric = true;
    cfg.clove_reduce_factor = rf;
    auto r = bench::run_point(cfg, load, scale);
    t1.add_row({stats::Table::fmt(rf, 3), stats::Table::fmt(r.avg_fct_s),
                stats::Table::fmt(r.p99_fct_s)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  t1.print();

  std::printf("\nECN relay interval sweep (paper recommends ~RTT/2 = 25us):\n");
  stats::Table t2({"relay interval", "avg FCT (s)", "p99 FCT (s)"});
  for (sim::Time relay : {10 * sim::kMicrosecond, 25 * sim::kMicrosecond,
                          50 * sim::kMicrosecond, 200 * sim::kMicrosecond,
                          1000 * sim::kMicrosecond}) {
    harness::ExperimentConfig cfg = harness::make_testbed_profile();
    cfg.scheme = harness::Scheme::kCloveEcn;
    cfg.asymmetric = true;
    cfg.feedback_relay_interval = relay;
    auto r = bench::run_point(cfg, load, scale);
    t2.add_row({sim::format_time(relay), stats::Table::fmt(r.avg_fct_s),
                stats::Table::fmt(r.p99_fct_s)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  t2.print();
  return 0;
}
