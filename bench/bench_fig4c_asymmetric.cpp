// Figure 4c: average FCT vs load on the ASYMMETRIC testbed (one 40G S2-L2
// link failed => 25% bisection loss), web-search workload. Paper's shape:
// ECMP collapses past ~50% load; Presto (even with ideal static weights)
// lags Clove-ECN by ~3.8x at 70%; Edge-Flowlet surprisingly strong (4.2x
// better than ECMP at 80%); Clove-ECN best (7.5x over ECMP at 80%), with
// MPTCP close behind.

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Fig. 4c - asymmetric testbed, avg FCT vs load",
                      "CoNEXT'17 Clove, Figure 4c", scale);
  bench::Artifact artifact("fig4c_asymmetric", "CoNEXT'17 Clove, Figure 4c", scale);

  const std::vector<harness::Scheme> schemes = {
      harness::Scheme::kEcmp, harness::Scheme::kEdgeFlowlet,
      harness::Scheme::kCloveEcn, harness::Scheme::kMptcp,
      harness::Scheme::kPresto};
  const auto loads = bench::default_loads({0.2, 0.4, 0.5, 0.6, 0.7, 0.8});

  stats::Table table([&] {
    std::vector<std::string> h{"load%"};
    for (auto s : schemes) h.push_back(harness::scheme_name(s));
    return h;
  }());

  // All (load, scheme) points are independent: build the whole sweep and let
  // run_sweep() fan it out across CLOVE_THREADS workers.
  std::vector<bench::SweepPoint> points;
  for (double load : loads) {
    for (harness::Scheme s : schemes) {
      harness::ExperimentConfig cfg = harness::make_testbed_profile();
      cfg.scheme = s;
      cfg.asymmetric = true;
      points.push_back(bench::SweepPoint{cfg, load});
    }
  }
  const auto results = bench::run_sweep(points, scale);

  std::vector<std::vector<double>> fct(schemes.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::vector<std::string> row{stats::Table::fmt(loads[li] * 100, 0)};
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& r = results[li * schemes.size() + i];
      fct[i].push_back(r.avg_fct_s);
      row.push_back(stats::Table::fmt(r.avg_fct_s));
    }
    table.add_row(row);
  }
  std::printf("\navg FCT (seconds):\n");
  table.print();

  const std::size_t last = loads.size() - 1;
  const std::size_t at70 = loads.size() - 2;
  std::printf("\nheadlines:\n");
  std::printf("  @%.0f%%: ECMP / Clove-ECN         = %.2fx (paper: ~7.5x @80%%)\n",
              loads[last] * 100, fct[0][last] / fct[2][last]);
  std::printf("  @%.0f%%: ECMP / Edge-Flowlet      = %.2fx (paper: ~4.2x @80%%)\n",
              loads[last] * 100, fct[0][last] / fct[1][last]);
  std::printf("  @%.0f%%: Edge-Flowlet / Clove-ECN = %.2fx (paper: ~2x @80%%)\n",
              loads[last] * 100, fct[1][last] / fct[2][last]);
  std::printf("  @%.0f%%: Presto / Clove-ECN       = %.2fx (paper: ~3.8x @70%%)\n",
              loads[at70] * 100, fct[4][at70] / fct[2][at70]);
  std::printf("  @%.0f%%: ECMP / Presto            = %.2fx (paper: ~1.8x @70%%)\n",
              loads[at70] * 100, fct[0][at70] / fct[4][at70]);
  return 0;
}
