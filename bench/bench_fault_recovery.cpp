// Fault-recovery macro-bench (DESIGN.md §8, paper §5.2 dynamics): per
// scheme, run the web-search workload, hard-fail one S2-L2 fabric link
// mid-run through a fault::FaultPlan (30ms route-convergence blackhole),
// restore it later, and measure from per-job completion times:
//
//   * pre_fail_mice_fct_ms  mean mice FCT before the failure
//   * fct_inflation_x       mean FCT of mice ARRIVING inside the blackhole
//                           window [fail, fail+convergence) vs pre
//   * recovery_ms           when the mean FCT of mice arriving in a bucket
//                           is back within 20% of the pre-fault mean *and
//                           stays there* until the link returns (-1 = never)
//
// Jobs are bucketed by ARRIVAL time, not completion time: a mouse that
// stalls into a 200ms RTO must count against the moment it was issued.
// Completion-time bucketing has survivorship bias — during the outage only
// the lucky flows finish, so the outage looks *fast* while the stalled
// traffic silently piles into later buckets.
//
// The edge-recovery story: during the blackhole window every scheme loses
// packets into the dead link, but Clove's path-health monitor evicts the
// dead outer port within a few keepalive timeouts and the WRR weights
// renormalize onto the survivors — new flowlets stop dying long before the
// guest TCP's 200ms min-RTO fires. ECMP has no edge state to repair, so
// its stalled flows serve the full RTO penalty.
//
// Scale is pinned by CLOVE_FAULT_JOBS (default 300 jobs/conn), *not* by
// CLOVE_JOBS: the committed BENCH_fault.json baseline and the CI re-run
// must measure the same schedule for the recovery-time ceiling check
// (scripts/bench_check.py) to be meaningful.
//
// With CLOVE_FLIGHT_RECORDER on and CLOVE_JSON_OUT set, each scheme also
// exports FLIGHT_fault_<scheme>.json (+ journey/flow JSONL) so
// scripts/trace_summarize.py can audit the run: drops on the failed link
// must be accounted, and no packet may vanish or reorder while the path
// set churns.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "telemetry/scope.hpp"

namespace {

using namespace clove;

const sim::Time kBucket = 50 * sim::kMillisecond;
const sim::Time kFailAt = 400 * sim::kMillisecond;
const sim::Time kRestoreAt = 1200 * sim::kMillisecond;
const sim::Time kConvergence = 250 * sim::kMillisecond;
/// Pre-fault measurement starts after slow-start / discovery warm-up.
const sim::Time kPreStart = 150 * sim::kMillisecond;
/// A bucket needs this many mice completions to count as evidence of a
/// healthy fabric; thinner buckets during the outage mean flows are
/// stalled, which is itself a failure to recover.
constexpr int kMinSamples = 5;

struct FctBucket {
  double sum_ms{0.0};
  int n{0};
};

struct SchemeOutcome {
  double pre_fct_ms{0.0};
  double inflation_x{0.0};
  double recovery_ms{-1.0};
  std::uint64_t jobs{0};
  std::uint64_t evictions{0};
  std::uint64_t readmissions{0};
  std::uint64_t audit_violations{0};
};

std::string scheme_key(harness::Scheme s) {
  std::string key = harness::scheme_name(s);
  for (char& c : key) {
    c = c == '-' ? '_' : static_cast<char>(std::tolower(c));
  }
  return key;
}

SchemeOutcome run_scheme(harness::Scheme scheme, int jobs_per_conn) {
  telemetry::hub().begin_run();

  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = scheme;
  cfg.seed = 1;
  cfg.discovery.probe_interval = 250 * sim::kMillisecond;
  cfg.clove_congestion_expiry = 20 * sim::kMillisecond;
  cfg.path_health.enabled = true;
  // Slow fabric convergence (vs the example's 30ms): the regime where
  // edge-based recovery earns its keep. Until the fabric reroutes, half of
  // S2's downlink hashes keep pointing into the dead link; the path-health
  // monitor evicts those outer ports within a few keepalive timeouts while
  // ECMP keeps feeding them for the full window.
  cfg.fault_plan.route_convergence = 250 * sim::kMillisecond;
  cfg.fault_plan.add(kFailAt, fault::FaultKind::kLinkDown, "L2->S2#0");
  cfg.fault_plan.add(kRestoreAt, fault::FaultKind::kLinkUp, "L2->S2#0");
  cfg.max_sim_time = 2 * sim::kSecond;

  harness::Testbed tb(cfg);
  tb.start_discovery();

  workload::ClientServerConfig wl;
  wl.load = 0.45;
  wl.jobs_per_conn = jobs_per_conn;
  wl.conns_per_client = 2;
  wl.tcp = cfg.tcp;
  wl.use_mptcp = false;
  wl.start_time = cfg.traffic_start;
  wl.seed = cfg.seed * 977 + 3;

  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());

  std::vector<FctBucket> buckets;
  double pre_sum = 0.0, post_sum = 0.0;
  int pre_n = 0, post_n = 0;
  ws.on_job = [&](std::uint64_t size, sim::Time arrival, sim::Time finished) {
    if (size >= stats::FctRecorder::kMiceMaxBytes) return;
    const double fct_ms = sim::to_milliseconds(finished - arrival);
    if (arrival >= kPreStart && arrival < kFailAt) {
      pre_sum += fct_ms;
      ++pre_n;
    }
    if (arrival >= kFailAt && arrival < kFailAt + kConvergence) {
      post_sum += fct_ms;
      ++post_n;
    }
    const auto idx = static_cast<std::size_t>(arrival / kBucket);
    if (idx >= buckets.size()) buckets.resize(idx + 1);
    buckets[idx].sum_ms += fct_ms;
    ++buckets[idx].n;
  };
  ws.start([&] { tb.simulator().stop(); });
  tb.simulator().run(cfg.max_sim_time);

  SchemeOutcome out;
  out.jobs = ws.jobs_done();
  out.pre_fct_ms = pre_n > 0 ? pre_sum / pre_n : 0.0;
  out.inflation_x = (post_n > 0 && out.pre_fct_ms > 0.0)
                        ? (post_sum / post_n) / out.pre_fct_ms
                        : 0.0;

  // Recovery: walk the arrival-time buckets from the failure to the link's
  // return; a bucket is "bad" when the mean FCT of the mice issued in it
  // exceeds 1.2x the pre-fault mean (or too few mice arrived at all —
  // traffic dried up). Recovery time is the end of the last bad bucket; a
  // bad final bucket means the scheme never recovered while the link was
  // down.
  const auto first = static_cast<std::size_t>(kFailAt / kBucket);
  const auto last = static_cast<std::size_t>(kRestoreAt / kBucket);
  double recovered_at = 0.0;
  bool never = false;
  for (std::size_t i = first; i < last; ++i) {
    const FctBucket b = i < buckets.size() ? buckets[i] : FctBucket{};
    const double mean = b.n > 0 ? b.sum_ms / b.n : 0.0;
    const bool bad = b.n < kMinSamples || mean > 1.2 * out.pre_fct_ms;
    if (bad) {
      recovered_at =
          sim::to_milliseconds(static_cast<sim::Time>(i + 1) * kBucket) -
          sim::to_milliseconds(kFailAt);
      never = (i + 1 == last);
    }
  }
  out.recovery_ms = never ? -1.0 : recovered_at;

  for (auto* c : tb.clients()) {
    if (const auto* ph = c->path_health()) {
      out.evictions += ph->stats().evictions;
      out.readmissions += ph->stats().readmissions;
    }
  }

  if (auto* fr = telemetry::flight()) {
    const telemetry::FlightSummary fs = fr->summary(tb.simulator().now());
    out.audit_violations = fs.audit.total();
    const std::string dir = telemetry::json_out_dir();
    if (!dir.empty()) {
      const std::string stem = "fault_" + scheme_key(scheme);
      telemetry::Json doc = fs.to_json();
      doc.set("scheme", telemetry::Json(stem));
      telemetry::Json names = telemetry::Json::object();
      for (const telemetry::PathUsage& pu : fs.paths) {
        names.set(std::to_string(pu.via), telemetry::Json(fr->node_name(pu.via)));
      }
      doc.set("node_names", std::move(names));
      telemetry::write_json_artifact(dir, "FLIGHT_" + stem, doc);
      telemetry::write_text_artifact(dir, "flight_" + stem + "_journeys.jsonl",
                                     fr->journeys_jsonl());
      telemetry::write_text_artifact(dir, "flight_" + stem + "_flows.jsonl",
                                     fr->flows_jsonl());
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace clove;

  const char* env = std::getenv("CLOVE_FAULT_JOBS");
  const int fault_jobs =
      (env != nullptr && std::atoi(env) > 0) ? std::atoi(env) : 300;
  harness::BenchScale scale;
  scale.jobs_per_conn = fault_jobs;
  scale.seeds = 1;
  scale.conns_per_client = 2;

  bench::Artifact artifact("BENCH_fault", "link-failure recovery dynamics "
                           "(paper §5.2 / Fig. 4c, DESIGN.md §8)", scale);
  bench::print_header("Fault recovery: time-to-recover after a mid-run "
                      "S2-L2 link failure",
                      "paper §5.2 failure dynamics (scale: CLOVE_FAULT_JOBS)",
                      scale);
  std::printf("fault plan: link_down L2->S2#0 @ %.0fms (250ms route "
              "convergence), link_up @ %.0fms\n\n",
              sim::to_milliseconds(kFailAt), sim::to_milliseconds(kRestoreAt));

  const std::vector<harness::Scheme> schemes = {
      harness::Scheme::kEcmp,
      harness::Scheme::kEdgeFlowlet,
      harness::Scheme::kCloveEcn,
      harness::Scheme::kCloveInt,
  };

  harness::ParallelRunner runner;
  std::vector<std::function<SchemeOutcome()>> fns;
  fns.reserve(schemes.size());
  for (harness::Scheme s : schemes) {
    fns.push_back([s, fault_jobs] { return run_scheme(s, fault_jobs); });
  }
  const std::vector<SchemeOutcome> results =
      runner.map<SchemeOutcome>(std::move(fns));

  std::printf("%-14s %16s %14s %14s %10s %8s\n", "scheme", "pre-fault FCT",
              "inflation", "recovery", "evictions", "readmits");
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const SchemeOutcome& r = results[i];
    const std::string key = scheme_key(schemes[i]);
    char recov[32];
    if (r.recovery_ms < 0.0) {
      std::snprintf(recov, sizeof recov, "%s", "never");
    } else {
      std::snprintf(recov, sizeof recov, "%.0f ms", r.recovery_ms);
    }
    std::printf("%-14s %13.2f ms %13.2fx %14s %10llu %8llu%s\n",
                harness::scheme_name(schemes[i]).c_str(), r.pre_fct_ms,
                r.inflation_x, recov,
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.readmissions),
                r.audit_violations == 0 ? "" : "  [AUDIT VIOLATIONS]");
    artifact.add_value(key + ".pre_fail_mice_fct_ms", r.pre_fct_ms);
    artifact.add_value(key + ".fct_inflation_x", r.inflation_x);
    artifact.add_value(key + ".recovery_ms", r.recovery_ms);
  }
  std::printf("\nrecovery = mean FCT of mice issued in a 50ms bucket back "
              "within 20%% of the pre-fault mean (and staying there)\n"
              "while the link is down; 'never' = still inflated when the "
              "link returns at %.0fms. inflation = blackhole-window\n"
              "arrivals [fail, fail+250ms) vs pre-fault.\n",
              sim::to_milliseconds(kRestoreAt));
  return 0;
}
