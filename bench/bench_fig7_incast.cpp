// Figure 7: incast (partition-aggregate) workload — client goodput vs
// request fan-in for {Clove-ECN, Edge-Flowlet, MPTCP}. A client requests a
// 10 MB object split over n servers that respond simultaneously.
//
// Paper's shape: Clove-ECN and Edge-Flowlet sustain high goodput across
// fan-ins (relying on the unmodified single-stream TCP), while MPTCP
// degrades steeply with fan-in because its N subflows ramp up together and
// multiply the burst pressure on the client access link (~1.9x worse at
// fanout 10, ~3.4x at 16).

#include <cstdlib>

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Fig. 7 - incast goodput vs request fan-in",
                      "CoNEXT'17 Clove, Figure 7", scale);
  bench::Artifact artifact("fig7_incast", "CoNEXT'17 Clove, Figure 7", scale);

  const char* env_req = std::getenv("CLOVE_INCAST_REQUESTS");
  const int requests = env_req ? std::atoi(env_req) : 60;

  const std::vector<harness::Scheme> schemes = {harness::Scheme::kCloveEcn,
                                                harness::Scheme::kEdgeFlowlet,
                                                harness::Scheme::kMptcp};
  const std::vector<int> fanouts = {1, 3, 5, 7, 9, 11, 13, 15};

  stats::Table table([&] {
    std::vector<std::string> h{"fan-in"};
    for (auto s : schemes) h.push_back(harness::scheme_name(s));
    return h;
  }());

  std::vector<std::vector<double>> tput(schemes.size());
  for (int fanout : fanouts) {
    std::vector<std::string> row{std::to_string(fanout)};
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      harness::ExperimentConfig cfg = harness::make_testbed_profile();
      cfg.scheme = schemes[i];
      workload::IncastConfig ic;
      ic.fanout = fanout;
      ic.total_bytes = 10'000'000;
      ic.requests = requests;
      double gbps = 0.0;
      for (int s = 0; s < scale.seeds; ++s) {
        cfg.seed = static_cast<std::uint64_t>(s) * 101 + 1;
        ic.seed = cfg.seed * 13 + 5;
        gbps += harness::run_incast_experiment(cfg, ic) / scale.seeds;
      }
      tput[i].push_back(gbps);
      artifact.add_value("goodput_gbps", gbps,
                         {{"scheme", harness::scheme_name(schemes[i])},
                          {"fanout", std::to_string(fanout)}});
      row.push_back(stats::Table::fmt(gbps, 2));
    }
    table.add_row(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\nclient goodput (Gb/s):\n");
  table.print();

  auto at = [&](int fanout) -> std::size_t {
    for (std::size_t i = 0; i < fanouts.size(); ++i) {
      if (fanouts[i] == fanout) return i;
    }
    return fanouts.size() - 1;
  };
  std::printf("\nheadlines:\n");
  std::printf("  fanout 9:  Clove-ECN / MPTCP = %.2fx (paper: ~1.9x @10)\n",
              tput[0][at(9)] / tput[2][at(9)]);
  std::printf("  fanout 15: Clove-ECN / MPTCP = %.2fx (paper: ~3.4x @16)\n",
              tput[0][at(15)] / tput[2][at(15)]);
  return 0;
}
