// Figure 5a/5b/5c: FCT breakdown on the ASYMMETRIC testbed — (a) average
// FCT of mice flows (<100 KB), (b) average FCT of elephants (>10 MB),
// (c) 99th-percentile FCT. One sweep produces all three tables.
//
// Paper's shape: size-class averages mirror the overall ordering (elephants
// benefit slightly more than mice from congestion awareness); at the 99th
// percentile MPTCP degrades badly (static subflow-to-path mapping) while
// Clove-ECN and Edge-Flowlet stay ahead (Clove ~2.7x better than MPTCP at
// 60% load).

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header(
      "Fig. 5 - FCT breakdown (mice avg / elephant avg / p99), asymmetric",
      "CoNEXT'17 Clove, Figures 5a, 5b, 5c", scale);
  bench::Artifact artifact("fig5_breakdown", "CoNEXT'17 Clove, Figures 5a, 5b, 5c", scale);

  const std::vector<harness::Scheme> schemes = {
      harness::Scheme::kEcmp, harness::Scheme::kPresto,
      harness::Scheme::kEdgeFlowlet, harness::Scheme::kMptcp,
      harness::Scheme::kCloveEcn};
  const auto loads = bench::default_loads({0.3, 0.5, 0.6, 0.7, 0.8});

  auto headers = [&] {
    std::vector<std::string> h{"load%"};
    for (auto s : schemes) h.push_back(harness::scheme_name(s));
    return h;
  };
  stats::Table mice(headers());
  stats::Table elephants(headers());
  stats::Table p99(headers());

  std::vector<bench::SweepPoint> points;
  for (double load : loads) {
    for (harness::Scheme s : schemes) {
      harness::ExperimentConfig cfg = harness::make_testbed_profile();
      cfg.scheme = s;
      cfg.asymmetric = true;
      points.push_back(bench::SweepPoint{cfg, load});
    }
  }
  const auto results = bench::run_sweep(points, scale);

  std::vector<std::vector<double>> p99_series(schemes.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::vector<std::string> mrow{stats::Table::fmt(loads[li] * 100, 0)};
    std::vector<std::string> erow = mrow;
    std::vector<std::string> prow = mrow;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& r = results[li * schemes.size() + i];
      mrow.push_back(stats::Table::fmt(r.mice_avg_fct_s));
      erow.push_back(stats::Table::fmt(r.elephant_avg_fct_s));
      prow.push_back(stats::Table::fmt(r.p99_fct_s));
      p99_series[i].push_back(r.p99_fct_s);
    }
    mice.add_row(mrow);
    elephants.add_row(erow);
    p99.add_row(prow);
  }

  std::printf("\nFig. 5a - avg FCT, flows < 100 KB (seconds):\n");
  mice.print();
  std::printf("\nFig. 5b - avg FCT, flows > 10 MB (seconds):\n");
  elephants.print();
  std::printf("\nFig. 5c - 99th percentile FCT (seconds):\n");
  p99.print();

  // Headline (§5.2): Clove-ECN vs MPTCP at the tail, 60% load.
  const std::size_t at60 = 2;  // loads[2] == 0.6
  std::printf("\nheadline @60%%: MPTCP p99 / Clove-ECN p99 = %.2fx (paper: ~2.7x)\n",
              p99_series[3][at60] / p99_series[4][at60]);
  return 0;
}
