// Figure 4b: average FCT vs network load on the SYMMETRIC testbed topology,
// web-search workload, schemes {ECMP, Edge-Flowlet, Clove-ECN, MPTCP,
// Presto}. Paper's shape: all schemes comparable at low load; at high load
// ECMP worst, Edge-Flowlet better, Clove-ECN / MPTCP / Presto neck-to-neck
// (Clove-ECN ~2.5x below ECMP at 80%).

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Fig. 4b - symmetric testbed, avg FCT vs load",
                      "CoNEXT'17 Clove, Figure 4b", scale);
  bench::Artifact artifact("fig4b_symmetric", "CoNEXT'17 Clove, Figure 4b", scale);

  const std::vector<harness::Scheme> schemes = {
      harness::Scheme::kEcmp, harness::Scheme::kEdgeFlowlet,
      harness::Scheme::kCloveEcn, harness::Scheme::kMptcp,
      harness::Scheme::kPresto};
  const auto loads =
      bench::default_loads({0.2, 0.4, 0.6, 0.8, 0.9});

  stats::Table table([&] {
    std::vector<std::string> h{"load%"};
    for (auto s : schemes) h.push_back(harness::scheme_name(s));
    return h;
  }());

  // All (load, scheme) points are independent: build the whole sweep and let
  // run_sweep() fan it out across CLOVE_THREADS workers.
  std::vector<bench::SweepPoint> points;
  for (double load : loads) {
    for (harness::Scheme s : schemes) {
      harness::ExperimentConfig cfg = harness::make_testbed_profile();
      cfg.scheme = s;
      points.push_back(bench::SweepPoint{cfg, load});
    }
  }
  const auto results = bench::run_sweep(points, scale);

  std::vector<std::vector<double>> fct(schemes.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::vector<std::string> row{stats::Table::fmt(loads[li] * 100, 0)};
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& r = results[li * schemes.size() + i];
      fct[i].push_back(r.avg_fct_s);
      row.push_back(stats::Table::fmt(r.avg_fct_s));
    }
    table.add_row(row);
  }
  std::printf("\navg FCT (seconds):\n");
  table.print();

  // Headline check (§5.1): at the highest load Clove-ECN vs ECMP and
  // vs Edge-Flowlet (paper: 2.5x and 1.8x at 80%).
  const std::size_t last = loads.size() - 1;
  std::printf("\nheadlines @%.0f%% load:\n", loads[last] * 100);
  std::printf("  ECMP / Clove-ECN         = %.2fx (paper: ~2.5x @80%%)\n",
              fct[0][last] / fct[2][last]);
  std::printf("  Edge-Flowlet / Clove-ECN = %.2fx (paper: ~1.8x @80%%)\n",
              fct[1][last] / fct[2][last]);
  return 0;
}
