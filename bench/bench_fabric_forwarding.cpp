// Macro-benchmark for the per-hop forwarding datapath: drives packets
// end-to-end across multi-switch fabrics (3-tier fat-tree under ECMP,
// leaf-spine under LetFlow and CONGA) and reports packets/s, ns per switch
// hop, simulator events/s and exact heap allocations per packet in steady
// state. This is the fabric-scale counterpart of bench_micro_datapath: the
// micro bench isolates single operations, this one prices a full forwarded
// packet (route lookup + ECMP/flowlet decision + queueing at every hop).
//
// With CLOVE_JSON_OUT=<dir> set, results land in <dir>/BENCH_fabric.json —
// the perf baseline the bench-smoke CI job diffs against.
//
// Scale knob: CLOVE_FABRIC_ROUNDS (default 256) injection rounds per
// scenario; each round sends one batch from every host.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/conga_switch.hpp"
#include "prof/prof.hpp"
#include "net/fat_tree.hpp"
#include "net/letflow_switch.hpp"
#include "net/packet_pool.hpp"
#include "net/topology.hpp"
#include "overlay/paths.hpp"
#include "sim/simulator.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"

// --- allocation counting ---------------------------------------------------
// Program-wide operator new/delete override (same scheme as
// bench_micro_datapath) so steady-state allocs/packet is exact, not sampled.

namespace {
std::uint64_t g_alloc_count{0};

std::uint64_t alloc_count() { return g_alloc_count; }

void* counted_alloc(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace clove;

/// A host that terminates packets (returning them to the simulator's pool).
class SinkHost : public net::Node {
 public:
  SinkHost(net::NodeId id, std::string name) : Node(id, std::move(name)) {}
  void receive(net::PacketPtr pkt, int /*in_port*/) override {
    ++received;
    pkt.reset();
  }
  std::uint64_t received{0};
};

int rounds_from_env() {
  if (const char* s = std::getenv("CLOVE_FABRIC_ROUNDS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 256;
}

/// Packets injected per source host per round. The default keeps the
/// in-flight population (batch x hosts x Packet size) inside the L2 working
/// set, so the bench prices the forwarding datapath rather than DRAM: at
/// large batches every hop misses on its packet line and all datapaths
/// converge to memory latency. Raise it (CLOVE_FABRIC_BATCH) to measure the
/// DRAM-bound incast regime instead.
int batch_from_env() {
  if (const char* s = std::getenv("CLOVE_FABRIC_BATCH")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 8;
}

struct ScenarioResult {
  double pkts_per_sec{0.0};
  double ns_per_hop{0.0};
  double events_per_sec{0.0};
  double allocs_per_pkt{0.0};
  std::uint64_t packets{0};
  std::uint64_t hops{0};
};

/// Inject `batch` packets from every source host towards a fixed remote
/// destination per source, cycling source ports so ECMP and flowlet tables
/// see a realistic mix of repeated and fresh tuples, then drain the sim.
struct TrafficDriver {
  std::vector<net::Node*> sources;
  std::vector<net::Node*> dests;  ///< dests[i] is the peer of sources[i]
  int batch{64};
  std::uint32_t port_cycle{0};

  std::uint64_t run_round(sim::Simulator& sim) {
    std::uint64_t injected = 0;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      net::Node* src = sources[i];
      net::Node* dst = dests[i];
      for (int b = 0; b < batch; ++b) {
        auto pkt = net::make_packet(sim);
        pkt->inner =
            net::FiveTuple{src->ip(), dst->ip(),
                           static_cast<std::uint16_t>(
                               overlay::kEphemeralBase +
                               ((port_cycle + static_cast<std::uint32_t>(b)) &
                                1023u)),
                           7471, net::Proto::kStt};
        pkt->payload = 1460;
        pkt->ttl = 64;
        src->port(0)->enqueue(std::move(pkt));
        ++injected;
      }
    }
    port_cycle += 7;  // shift the tuple window between rounds
    sim.run();
    return injected;
  }
};

ScenarioResult measure(sim::Simulator& sim, net::Topology& topo,
                       TrafficDriver& driver, int rounds) {
  driver.batch = batch_from_env();
  // Warm the packet pool, event slab, routes and flow tables.
  for (int r = 0; r < 8; ++r) driver.run_round(sim);

  auto hops_now = [&topo] {
    std::uint64_t h = 0;
    for (const net::Switch* sw : topo.switches()) h += sw->stats().forwarded;
    return h;
  };

  const std::uint64_t hops0 = hops_now();
  const std::uint64_t events0 = sim.events_processed();
  const std::uint64_t allocs0 = alloc_count();
  const auto t0 = std::chrono::steady_clock::now();

  std::uint64_t packets = 0;
  for (int r = 0; r < rounds; ++r) packets += driver.run_round(sim);

  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();

  ScenarioResult out;
  out.packets = packets;
  out.hops = hops_now() - hops0;
  out.pkts_per_sec = static_cast<double>(packets) / wall_s;
  out.ns_per_hop = wall_s * 1e9 / static_cast<double>(out.hops);
  out.events_per_sec =
      static_cast<double>(sim.events_processed() - events0) / wall_s;
  out.allocs_per_pkt = static_cast<double>(alloc_count() - allocs0) /
                       static_cast<double>(packets);
  return out;
}

void report(const std::string& name, const ScenarioResult& r) {
  std::printf(
      "%-22s %10.3f Mpkts/s   %7.1f ns/hop   %8.2f Mevents/s   "
      "%.4f allocs/pkt   (%llu pkts, %llu hops)\n",
      name.c_str(), r.pkts_per_sec / 1e6, r.ns_per_hop, r.events_per_sec / 1e6,
      r.allocs_per_pkt, static_cast<unsigned long long>(r.packets),
      static_cast<unsigned long long>(r.hops));
  if (bench::Artifact* a = bench::Artifact::current()) {
    a->add_value(name + ".pkts_per_sec", r.pkts_per_sec);
    a->add_value(name + ".ns_per_hop", r.ns_per_hop);
    a->add_value(name + ".events_per_sec", r.events_per_sec);
    a->add_value(name + ".allocs_per_pkt", r.allocs_per_pkt);
  }
}

/// 3-tier fat-tree (k=4), plain ECMP switches, all-pairs cross-pod traffic:
/// 5 switch hops per packet (edge, agg, core, agg, edge).
void scenario_fat_tree(int rounds) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::FatTreeConfig cfg;
  cfg.k = 4;
  net::FatTree ft = net::build_fat_tree(
      topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
        return t.add_host<SinkHost>(name);
      });

  TrafficDriver driver;
  const int pods = ft.n_pods();
  for (int pod = 0; pod < pods; ++pod) {
    const auto& hosts = ft.hosts_by_pod[static_cast<std::size_t>(pod)];
    const auto& peers =
        ft.hosts_by_pod[static_cast<std::size_t>((pod + pods / 2) % pods)];
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      driver.sources.push_back(hosts[i]);
      driver.dests.push_back(peers[i % peers.size()]);
    }
  }
  report("fat_tree_ecmp", measure(sim, topo, driver, rounds));
}

/// Leaf-spine with LetFlow (flowlet-table) leaves: 3 switch hops per packet.
void scenario_letflow(int rounds) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::LeafSpineConfig cfg;
  cfg.hosts_per_leaf = 8;
  net::LeafSpine net = net::build_leaf_spine(
      topo, cfg,
      [](net::Topology& t, const std::string& name, int /*leaf*/) {
        return t.add_host<SinkHost>(name);
      },
      [&sim](net::NodeId id, std::string name,
             int leaf_idx) -> std::unique_ptr<net::Switch> {
        if (leaf_idx >= 0) {
          return std::make_unique<net::LetFlowSwitch>(sim, id, std::move(name));
        }
        return std::make_unique<net::Switch>(sim, id, std::move(name));
      });

  TrafficDriver driver;
  for (std::size_t i = 0; i < net.hosts_by_leaf[0].size(); ++i) {
    driver.sources.push_back(net.hosts_by_leaf[0][i]);
    driver.dests.push_back(net.hosts_by_leaf[1][i]);
    driver.sources.push_back(net.hosts_by_leaf[1][i]);
    driver.dests.push_back(net.hosts_by_leaf[0][i]);
  }
  report("leaf_spine_letflow", measure(sim, topo, driver, rounds));
}

/// Leaf-spine with CONGA leaves (flowlet table + congestion metric tables
/// + per-packet header stamping): 3 switch hops per packet.
void scenario_conga(int rounds) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::LeafSpineConfig cfg;
  cfg.hosts_per_leaf = 8;
  cfg.conga_metric = true;
  net::LeafSpine net = net::build_leaf_spine(
      topo, cfg,
      [](net::Topology& t, const std::string& name, int /*leaf*/) {
        return t.add_host<SinkHost>(name);
      },
      [&sim](net::NodeId id, std::string name,
             int leaf_idx) -> std::unique_ptr<net::Switch> {
        if (leaf_idx >= 0) {
          return std::make_unique<net::CongaLeafSwitch>(sim, id,
                                                        std::move(name));
        }
        return std::make_unique<net::Switch>(sim, id, std::move(name));
      });

  std::unordered_map<net::IpAddr, int> host_leaf;
  for (std::size_t l = 0; l < net.hosts_by_leaf.size(); ++l) {
    for (net::Node* h : net.hosts_by_leaf[l]) {
      host_leaf[h->ip()] = static_cast<int>(l);
    }
  }
  for (std::size_t l = 0; l < net.leaves.size(); ++l) {
    auto* leaf = dynamic_cast<net::CongaLeafSwitch*>(net.leaves[l]);
    if (leaf == nullptr) continue;
    std::vector<int> uplinks;
    for (int p = 0; p < leaf->port_count(); ++p) {
      const net::Node* peer = leaf->port(p)->dst();
      for (const net::Switch* spine : net.spines) {
        if (peer == spine) {
          uplinks.push_back(p);
          break;
        }
      }
    }
    leaf->configure_fabric(static_cast<int>(l), std::move(uplinks), host_leaf);
  }

  TrafficDriver driver;
  for (std::size_t i = 0; i < net.hosts_by_leaf[0].size(); ++i) {
    driver.sources.push_back(net.hosts_by_leaf[0][i]);
    driver.dests.push_back(net.hosts_by_leaf[1][i]);
    driver.sources.push_back(net.hosts_by_leaf[1][i]);
    driver.dests.push_back(net.hosts_by_leaf[0][i]);
  }
  report("leaf_spine_conga", measure(sim, topo, driver, rounds));
}

/// Price the flight recorder against the forwarding datapath: the same
/// fat-tree traffic is driven round-by-round under three interleaved arms —
/// no telemetry scope at all (the baseline every other scenario measures),
/// a scope whose recorder mode is kOff (the disabled recorder: hooks reduce
/// to one thread-local load), and a recorder attached in sampled mode with
/// a sample period far beyond the run (the attached-but-idle cost: TLS load
/// plus a uid modulo per hop). Interleaving pairs the arms against the same
/// machine state, so the exported ratios isolate the recorder's cost from
/// run-to-run drift; bench_check.py fails the build if a ratio drops more
/// than 2 points below its committed baseline, or if either instrumented
/// arm starts allocating per packet.
void scenario_flight_guard(int rounds) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::FatTreeConfig cfg;
  cfg.k = 4;
  net::FatTree ft = net::build_fat_tree(
      topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
        return t.add_host<SinkHost>(name);
      });

  TrafficDriver driver;
  const int pods = ft.n_pods();
  for (int pod = 0; pod < pods; ++pod) {
    const auto& hosts = ft.hosts_by_pod[static_cast<std::size_t>(pod)];
    const auto& peers =
        ft.hosts_by_pod[static_cast<std::size_t>((pod + pods / 2) % pods)];
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      driver.sources.push_back(hosts[i]);
      driver.dests.push_back(peers[i % peers.size()]);
    }
  }
  driver.batch = batch_from_env();
  for (int r = 0; r < 8; ++r) driver.run_round(sim);  // warm pools/tables

  telemetry::ScopeSettings off_st;
  off_st.enabled = false;
  off_st.flight.mode = telemetry::FlightMode::kOff;
  telemetry::Scope off_scope(off_st);

  telemetry::ScopeSettings idle_st;
  idle_st.enabled = false;
  idle_st.flight.mode = telemetry::FlightMode::kSampled;
  idle_st.flight.sample_every = 1ull << 40;  // never samples within the run
  telemetry::Scope idle_scope(idle_st);

  constexpr int kArms = 3;
  const char* arm_name[kArms] = {"baseline", "recorder_off", "recorder_idle"};
  double wall[kArms] = {};
  std::uint64_t pkts[kArms] = {};
  std::uint64_t allocs[kArms] = {};
  for (int r = 0; r < rounds; ++r) {
    for (int arm = 0; arm < kArms; ++arm) {
      std::optional<telemetry::ScopeGuard> guard;
      if (arm == 1) guard.emplace(off_scope);
      if (arm == 2) guard.emplace(idle_scope);
      const std::uint64_t a0 = alloc_count();
      const auto t0 = std::chrono::steady_clock::now();
      pkts[arm] += driver.run_round(sim);
      const auto t1 = std::chrono::steady_clock::now();
      wall[arm] += std::chrono::duration<double>(t1 - t0).count();
      allocs[arm] += alloc_count() - a0;
    }
  }

  const double base_rate = static_cast<double>(pkts[0]) / wall[0];
  bench::Artifact* a = bench::Artifact::current();
  for (int arm = 0; arm < kArms; ++arm) {
    const double rate = static_cast<double>(pkts[arm]) / wall[arm];
    const double ratio = rate / base_rate;
    const double apk = static_cast<double>(allocs[arm]) /
                       static_cast<double>(pkts[arm]);
    std::printf("flight_guard.%-14s %10.3f Mpkts/s   ratio %.4f   "
                "%.4f allocs/pkt\n",
                arm_name[arm], rate / 1e6, ratio, apk);
    if (a != nullptr && arm > 0) {
      const std::string prefix = std::string("flight_guard.") + arm_name[arm];
      a->add_value(prefix + "_ratio", ratio);
      a->add_value(prefix + ".allocs_per_pkt", apk);
    }
  }
}

/// Price the engine profiler the same way scenario_flight_guard prices the
/// flight recorder: identical fat-tree traffic under three interleaved arms —
/// no profiler installed (baseline), CLOVE_PROF=off (also no profiler: the
/// hooks compile to one thread-local load + branch, so this arm pins "off
/// costs zero" and doubles as the noise floor), and a kSummary profiler
/// installed (two clock reads per scope). Interleaving cancels machine drift,
/// so bench_check.py can hold the off ratio to an absolute 2-point band and
/// both instrumented arms to zero allocations per packet.
void scenario_prof_guard(int rounds) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::FatTreeConfig cfg;
  cfg.k = 4;
  net::FatTree ft = net::build_fat_tree(
      topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
        return t.add_host<SinkHost>(name);
      });

  TrafficDriver driver;
  const int pods = ft.n_pods();
  for (int pod = 0; pod < pods; ++pod) {
    const auto& hosts = ft.hosts_by_pod[static_cast<std::size_t>(pod)];
    const auto& peers =
        ft.hosts_by_pod[static_cast<std::size_t>((pod + pods / 2) % pods)];
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      driver.sources.push_back(hosts[i]);
      driver.dests.push_back(peers[i % peers.size()]);
    }
  }
  driver.batch = batch_from_env();
  for (int r = 0; r < 8; ++r) driver.run_round(sim);  // warm pools/tables

  // Arm 2's profiler, warmed once so first-use effects (clock calibration,
  // branch history) don't land inside the measured rounds.
  prof::Profiler summary_prof(prof::Mode::kSummary);
  {
    prof::InstallGuard warm(&summary_prof);
    driver.run_round(sim);
  }

  constexpr int kArms = 3;
  const char* arm_name[kArms] = {"baseline", "prof_off", "prof_summary"};
  double wall[kArms] = {};
  std::uint64_t pkts[kArms] = {};
  std::uint64_t allocs[kArms] = {};
  for (int r = 0; r < rounds; ++r) {
    for (int arm = 0; arm < kArms; ++arm) {
      // Arms 0/1 uninstall whatever the Artifact's session guard installed;
      // "off" IS the uninstalled state, which is exactly the claim under test.
      prof::InstallGuard guard(arm == 2 ? &summary_prof : nullptr);
      const std::uint64_t a0 = alloc_count();
      const auto t0 = std::chrono::steady_clock::now();
      pkts[arm] += driver.run_round(sim);
      const auto t1 = std::chrono::steady_clock::now();
      wall[arm] += std::chrono::duration<double>(t1 - t0).count();
      allocs[arm] += alloc_count() - a0;
    }
  }

  const double base_rate = static_cast<double>(pkts[0]) / wall[0];
  bench::Artifact* a = bench::Artifact::current();
  for (int arm = 0; arm < kArms; ++arm) {
    const double rate = static_cast<double>(pkts[arm]) / wall[arm];
    const double ratio = rate / base_rate;
    const double apk = static_cast<double>(allocs[arm]) /
                       static_cast<double>(pkts[arm]);
    std::printf("prof_guard.%-16s %10.3f Mpkts/s   ratio %.4f   "
                "%.4f allocs/pkt\n",
                arm_name[arm], rate / 1e6, ratio, apk);
    if (a != nullptr && arm > 0) {
      const std::string prefix = std::string("prof_guard.") + arm_name[arm];
      a->add_value(prefix + "_ratio", ratio);
      a->add_value(prefix + ".allocs_per_pkt", apk);
    }
  }
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env();
  bench::Artifact artifact("BENCH_fabric",
                           "fabric forwarding perf baseline (macro)", scale);
  // Telemetry counters would price the instrumentation, not the datapath;
  // the figure benches measure that separately.
  telemetry::hub().set_enabled(false);

  const int rounds = rounds_from_env();
  std::printf("== fabric forwarding macro-bench ==\n");
  std::printf("rounds: %d per scenario (CLOVE_FABRIC_ROUNDS to change)\n\n",
              rounds);
  scenario_fat_tree(rounds);
  scenario_letflow(rounds);
  scenario_conga(rounds);
  scenario_flight_guard(rounds);
  scenario_prof_guard(rounds);
  return 0;
}
