// Figure 9: CDF of mice-flow (<100 KB) completion times at 70% load on the
// asymmetric fabric, for {ECMP, Clove-ECN, CONGA} (NS2-style profile).
//
// Paper's shape: Clove-ECN's CDF sits between ECMP's and CONGA's, capturing
// ~80% of the gap at the 99th percentile.

#include "bench_common.hpp"

int main() {
  using namespace clove;
  const auto scale = harness::BenchScale::from_env();
  bench::print_header("Fig. 9 - CDF of mice FCTs @70% load, asymmetric",
                      "CoNEXT'17 Clove, Figure 9", scale);
  bench::Artifact artifact("fig9_cdf", "CoNEXT'17 Clove, Figure 9", scale);

  const std::vector<harness::Scheme> schemes = {harness::Scheme::kEcmp,
                                                harness::Scheme::kCloveEcn,
                                                harness::Scheme::kConga};
  std::vector<bench::SweepPoint> points;
  for (auto s : schemes) {
    harness::ExperimentConfig cfg = harness::make_ns2_profile();
    cfg.scheme = s;
    cfg.asymmetric = true;
    points.push_back(bench::SweepPoint{cfg, 0.7});
  }
  const auto results = bench::run_sweep(points, scale);
  std::printf("\nmice FCT CDF (seconds at each percentile):\n");

  stats::Table table({"pct", "ECMP", "Clove-ECN", "CONGA"});
  for (int pct : {10, 25, 50, 75, 90, 95, 99}) {
    std::vector<std::string> row{std::to_string(pct)};
    for (auto& r : results) {
      row.push_back(stats::Table::fmt(r.fct->mice().percentile(pct), 4));
    }
    table.add_row(row);
  }
  table.print();

  const double ecmp99 = results[0].fct->mice().percentile(99);
  const double clove99 = results[1].fct->mice().percentile(99);
  const double conga99 = results[2].fct->mice().percentile(99);
  std::printf(
      "\nheadline: Clove-ECN captures %.0f%% of the ECMP->CONGA p99 gap "
      "(paper: ~80%%)\n",
      100 * bench::capture_fraction(ecmp99, clove99, conga99));
  return 0;
}
