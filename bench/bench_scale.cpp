// Scale observatory: how does the engine hold up as the fabric grows?
//
// Runs the same cross-pod ECMP traffic over a k=4 fat-tree (16 hosts, 20
// switches) and a k=8 fat-tree (128 hosts, 80 switches) and reports, per
// topology: hosts, wall-clock, simulator events/s, event-queue high-water
// mark, and process peak RSS. A final interleaved phase alternates k=4 and
// k=8 rounds so the exported per-event slowdown ratio
// (scale.k8_vs_k4_events_ratio) is a same-run A/B comparison that cancels
// machine drift. Attribution rounds then run under the engine profiler
// (clove::prof) and print the top-5 time sinks; the full self-profile lands
// in the BENCH_scale.json artifact.
//
// CI (the scale-smoke job) diffs the artifact against the committed
// BENCH_scale.json with scripts/bench_check.py: events/s floors, RSS
// ceilings, and the interleaved ratio band guard the engine's scaling
// ceiling.
//
// Scale knobs: CLOVE_SCALE_ROUNDS (default 64) measurement rounds per
// topology; CLOVE_SCALE_BATCH (default 4) packets per host per round.
// Profiling defaults to CLOVE_PROF=summary here (set CLOVE_PROF=off/full to
// override) so the artifact always carries a self-profile section.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/shard_runner.hpp"
#include "hybrid/hybrid.hpp"
#include "lb/ecmp.hpp"
#include "net/fat_tree.hpp"
#include "net/packet_pool.hpp"
#include "net/shard.hpp"
#include "net/topology.hpp"
#include "overlay/hypervisor.hpp"
#include "overlay/paths.hpp"
#include "prof/prof.hpp"
#include "sim/simulator.hpp"
#include "telemetry/hub.hpp"
#include "workload/client_server.hpp"
#include "workload/flow_size.hpp"

namespace {

using namespace clove;

/// A host that terminates packets (returning them to the simulator's pool).
class SinkHost : public net::Node {
 public:
  SinkHost(net::NodeId id, std::string name) : Node(id, std::move(name)) {}
  void receive(net::PacketPtr pkt, int /*in_port*/) override {
    ++received;
    pkt.reset();
  }
  std::uint64_t received{0};
};

int rounds_from_env() {
  if (const char* s = std::getenv("CLOVE_SCALE_ROUNDS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 64;
}

int batch_from_env() {
  if (const char* s = std::getenv("CLOVE_SCALE_BATCH")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 4;
}

/// Inject `batch` packets from every host towards its cross-pod peer, then
/// drain the simulator (same driver as bench_fabric_forwarding).
struct TrafficDriver {
  std::vector<net::Node*> sources;
  std::vector<net::Node*> dests;
  int batch{4};
  std::uint32_t port_cycle{0};

  std::uint64_t run_round(sim::Simulator& sim) {
    std::uint64_t injected = 0;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      net::Node* src = sources[i];
      net::Node* dst = dests[i];
      for (int b = 0; b < batch; ++b) {
        auto pkt = net::make_packet(sim);
        pkt->inner =
            net::FiveTuple{src->ip(), dst->ip(),
                           static_cast<std::uint16_t>(
                               overlay::kEphemeralBase +
                               ((port_cycle + static_cast<std::uint32_t>(b)) &
                                1023u)),
                           7471, net::Proto::kStt};
        pkt->payload = 1460;
        pkt->ttl = 64;
        src->port(0)->enqueue(std::move(pkt));
        ++injected;
      }
    }
    port_cycle += 7;
    sim.run();
    return injected;
  }
};

/// One k-ary fat-tree with cross-pod all-hosts traffic, self-contained so
/// two scales can coexist for the interleaved ratio phase.
struct Fabric {
  sim::Simulator sim;
  net::Topology topo{sim};
  TrafficDriver driver;
  int hosts{0};

  explicit Fabric(int k) {
    net::FatTreeConfig cfg;
    cfg.k = k;
    net::FatTree ft = net::build_fat_tree(
        topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
          return t.add_host<SinkHost>(name);
        });
    const int pods = ft.n_pods();
    for (int pod = 0; pod < pods; ++pod) {
      const auto& hs = ft.hosts_by_pod[static_cast<std::size_t>(pod)];
      const auto& peers =
          ft.hosts_by_pod[static_cast<std::size_t>((pod + pods / 2) % pods)];
      for (std::size_t i = 0; i < hs.size(); ++i) {
        driver.sources.push_back(hs[i]);
        driver.dests.push_back(peers[i % peers.size()]);
      }
    }
    hosts = static_cast<int>(driver.sources.size());
    driver.batch = batch_from_env();
    for (int r = 0; r < 8; ++r) driver.run_round(sim);  // warm pools/tables
  }
};

/// The same fabric and traffic over the sharded engine (DESIGN.md §11):
/// per-pod event shards advanced in conservative lookahead windows by a
/// harness::ShardRunner. Construction decides attribution — a runner built
/// while the session profiler is installed profiles each shard separately
/// and deposits the per-shard copies (plus the kShardSync barrier-wait
/// share) into the session profile when destroyed.
struct ShardedFabric {
  sim::Simulator sim;
  net::ShardDomain dom;
  net::Topology topo{sim};
  TrafficDriver driver;
  std::vector<std::vector<std::pair<net::Node*, net::Node*>>> pairs_by_shard_;
  std::unique_ptr<harness::ShardRunner> runner;
  int hosts{0};

  ShardedFabric(int k, int shards, unsigned threads = 0)
      : dom(sim, shards, /*seed=*/1) {
    topo.set_shard_domain(&dom);
    net::FatTreeConfig cfg;
    cfg.k = k;
    net::FatTree ft = net::build_fat_tree(
        topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
          return t.add_host<SinkHost>(name);
        });
    const int pods = ft.n_pods();
    for (int pod = 0; pod < pods; ++pod) {
      const auto& hs = ft.hosts_by_pod[static_cast<std::size_t>(pod)];
      const auto& peers =
          ft.hosts_by_pod[static_cast<std::size_t>((pod + pods / 2) % pods)];
      for (std::size_t i = 0; i < hs.size(); ++i) {
        driver.sources.push_back(hs[i]);
        driver.dests.push_back(peers[i % peers.size()]);
      }
    }
    hosts = static_cast<int>(driver.sources.size());
    driver.batch = batch_from_env();
    pairs_by_shard_.resize(static_cast<std::size_t>(dom.shard_count()));
    for (std::size_t i = 0; i < driver.sources.size(); ++i) {
      const int s = topo.shard_of(driver.sources[i]);
      pairs_by_shard_[static_cast<std::size_t>(s)].push_back(
          {driver.sources[i], driver.dests[i]});
    }
    runner = std::make_unique<harness::ShardRunner>(dom, threads);
    for (int r = 0; r < 8; ++r) run_round();  // warm pools/tables
  }

  /// Same injection pattern as TrafficDriver::run_round, pre-scheduled as
  /// one event per shard (one tick past every shard clock so no shard sees
  /// an event in its past — injecting inline like the serial driver would
  /// enqueue at divergent shard-local clocks), then drained through the
  /// window loop.
  std::uint64_t run_round() {
    sim::Time t = 0;
    for (int s = 0; s < dom.shard_count(); ++s) {
      t = std::max(t, dom.sim(s).now());
    }
    t += 1;
    std::uint64_t injected = 0;
    const std::uint32_t pc = driver.port_cycle;
    const int batch = driver.batch;
    for (int s = 0; s < dom.shard_count(); ++s) {
      const auto& pairs = pairs_by_shard_[static_cast<std::size_t>(s)];
      if (pairs.empty()) continue;
      sim::Simulator& ssim = dom.sim(s);
      injected += pairs.size() * static_cast<std::uint64_t>(batch);
      ssim.schedule_at(t, [&pairs, pc, batch, &ssim] {
        for (const auto& [src, dst] : pairs) {
          for (int b = 0; b < batch; ++b) {
            auto pkt = net::make_packet(ssim);
            pkt->inner = net::FiveTuple{
                src->ip(), dst->ip(),
                static_cast<std::uint16_t>(
                    overlay::kEphemeralBase +
                    ((pc + static_cast<std::uint32_t>(b)) & 1023u)),
                7471, net::Proto::kStt};
            pkt->payload = 1460;
            pkt->ttl = 64;
            src->port(0)->enqueue(std::move(pkt));
          }
        }
      });
    }
    driver.port_cycle += 7;
    runner->run(sim::kTimeNever);  // drain every shard, like sim.run()
    return injected;
  }

  [[nodiscard]] std::uint64_t events_processed() {
    std::uint64_t e = 0;
    for (int s = 0; s < dom.shard_count(); ++s) {
      e += dom.sim(s).events_processed();
    }
    return e;
  }
  [[nodiscard]] std::size_t queue_high_water() {
    std::size_t q = 0;
    for (int s = 0; s < dom.shard_count(); ++s) {
      q = std::max(q, dom.sim(s).queue_high_water());
    }
    return q;
  }
};

/// A k-ary fat-tree of Clove hypervisors running the §5 web-search RPC
/// workload over TCP/ECMP — the elephant-heavy TCP arm the hybrid
/// flow/packet engine (DESIGN.md §12) exists for. Self-contained so the
/// off/on runs are a same-process A/B with identical seeds and workloads.
struct HybridArm {
  sim::Simulator sim;
  net::Topology topo{sim};
  std::vector<overlay::Hypervisor*> clients, servers;
  std::unique_ptr<hybrid::Engine> engine;
  std::unique_ptr<workload::ClientServerWorkload> wl;
  double access_bytes_per_sec{0.0};

  HybridArm(int k, bool hybrid_on) {
    net::FatTreeConfig cfg;
    cfg.k = k;
    net::FatTree ft = net::build_fat_tree(
        topo, cfg, [this](net::Topology& t, const std::string& name, int) {
          overlay::HypervisorConfig h;
          h.tcp.ecn = true;
          return static_cast<net::Node*>(t.add_host<overlay::Hypervisor>(
              name, sim, h, std::make_unique<lb::EcmpPolicy>()));
        });
    const int pods = ft.n_pods();
    for (int pod = 0; pod < pods; ++pod) {
      auto& side = pod < pods / 2 ? clients : servers;
      for (net::Node* h : ft.hosts_by_pod[static_cast<std::size_t>(pod)]) {
        side.push_back(static_cast<overlay::Hypervisor*>(h));
      }
    }
    // The fat tree is full-bisection, so the clients' access links are the
    // deliverable cut the workload's offered load is priced against.
    access_bytes_per_sec = sim::gbps_to_bytes_per_sec(cfg.host_gbps) *
                           static_cast<double>(clients.size());
    if (hybrid_on) {
      hybrid::HybridConfig hc = hybrid::HybridConfig::from_env();
      hc.enabled = true;
      engine = std::make_unique<hybrid::Engine>(sim, hc);
      for (const auto& l : topo.links()) engine->add_link(l.get());
      for (net::Node* h : topo.hosts()) {
        static_cast<overlay::Hypervisor*>(h)->set_hybrid(engine.get());
      }
    }
  }

  struct RunResult {
    double wall_s{0.0};
    std::uint64_t events{0};
    std::uint64_t jobs{0};
    double mice_avg_s{0.0};
    double mice_p99_s{0.0};
  };

  RunResult run(const harness::BenchScale& scale) {
    workload::ClientServerConfig w;
    w.conns_per_client = scale.conns_per_client;
    w.jobs_per_conn = scale.jobs_per_conn;
    w.load = 0.6;
    w.bisection_bytes_per_sec = access_bytes_per_sec;
    w.tcp.ecn = true;
    wl = std::make_unique<workload::ClientServerWorkload>(sim, w, clients,
                                                          servers);
    const auto t0 = std::chrono::steady_clock::now();
    wl->start([this] { sim.stop(); });
    sim.run(sim::seconds(600.0));
    const auto t1 = std::chrono::steady_clock::now();
    RunResult r;
    r.wall_s = std::chrono::duration<double>(t1 - t0).count();
    r.events = sim.events_processed();
    r.jobs = wl->jobs_done();
    r.mice_avg_s = wl->fct().mice().mean();
    r.mice_p99_s = wl->fct().mice().percentile(99);
    return r;
  }
};

/// min(a/b, b/a): 1.0 = identical, smaller = farther apart. The committed
/// floor pins how closely the hybrid run must track the packet-exact one.
double match_ratio(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return a == b ? 1.0 : 0.0;
  return std::min(a / b, b / a);
}

struct PhaseResult {
  double wall_s{0.0};
  double events_per_sec{0.0};
  std::uint64_t events{0};
  std::uint64_t packets{0};
};

/// Measured rounds run UNPROFILED (InstallGuard below) so the committed
/// events/s floors price the engine, not the instrumentation.
PhaseResult measure(Fabric& f, int rounds) {
  prof::InstallGuard unprofiled(nullptr);
  const std::uint64_t events0 = f.sim.events_processed();
  const auto t0 = std::chrono::steady_clock::now();
  PhaseResult out;
  for (int r = 0; r < rounds; ++r) out.packets += f.driver.run_round(f.sim);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.events = f.sim.events_processed() - events0;
  out.events_per_sec = static_cast<double>(out.events) / out.wall_s;
  return out;
}

void report_topo(const std::string& tag, const Fabric& f, const PhaseResult& r,
                 double rss_mb) {
  std::printf(
      "%-9s %4d hosts   %7.3f s wall   %8.2f Mevents/s   "
      "queue hwm %6zu   peak rss %7.1f MB\n",
      tag.c_str(), f.hosts, r.wall_s, r.events_per_sec / 1e6,
      f.sim.queue_high_water(), rss_mb);
  if (bench::Artifact* a = bench::Artifact::current()) {
    a->add_value(tag + ".hosts", static_cast<double>(f.hosts));
    a->add_value(tag + ".events_per_sec", r.events_per_sec);
    a->add_value(tag + ".rss_mb", rss_mb);
    a->add_value(tag + ".queue_hwm",
                 static_cast<double>(f.sim.queue_high_water()));
    a->note_engine(r.events, f.sim.queue_high_water());
  }
}

}  // namespace

int main() {
  // Profilable by default: the artifact's self-profile section and the
  // top-sink table are this bench's point. An explicit CLOVE_PROF (even
  // "off") still wins.
  setenv("CLOVE_PROF", "summary", /*overwrite=*/0);

  const auto scale = harness::BenchScale::from_env();
  bench::Artifact artifact("BENCH_scale",
                           "engine scaling ceiling (k=4 vs k=8 fat-tree)",
                           scale);
  // The CLOVE_SHARDS / CLOVE_HYBRID gated phases make the blended process
  // rate leg-dependent in CI's matrix; the per-topology scale_k*.events_per_sec
  // rows are the throughput guard for this bench.
  artifact.set_mirror_engine_rate(false);
  telemetry::hub().set_enabled(false);

  const int rounds = rounds_from_env();
  std::printf("== engine scale observatory ==\n");
  std::printf(
      "rounds: %d per topology, batch %d pkts/host "
      "(CLOVE_SCALE_ROUNDS / CLOVE_SCALE_BATCH to change)\n\n",
      rounds, batch_from_env());

  // Peak RSS is monotonic over the process, so each scale is built and
  // measured before the next is constructed: scale_k4.rss_mb bounds the
  // 16-host engine alone, scale_k8.rss_mb the whole process at 128 hosts.
  auto k4 = std::make_unique<Fabric>(4);
  const PhaseResult r4 = measure(*k4, rounds);
  const double rss4 = prof::peak_rss_mb();
  report_topo("scale_k4", *k4, r4, rss4);

  auto k8 = std::make_unique<Fabric>(8);
  const PhaseResult r8 = measure(*k8, rounds);
  const double rss8 = prof::peak_rss_mb();
  report_topo("scale_k8", *k8, r8, rss8);

  // Interleaved per-event slowdown: alternate k4/k8 rounds against the same
  // machine state so the ratio isolates the topology-scaling cost.
  {
    prof::InstallGuard unprofiled(nullptr);
    double wall[2] = {};
    std::uint64_t events[2] = {};
    const int ratio_rounds = rounds / 2 > 0 ? rounds / 2 : 1;
    Fabric* fabs[2] = {k4.get(), k8.get()};
    for (int r = 0; r < ratio_rounds; ++r) {
      for (int arm = 0; arm < 2; ++arm) {
        Fabric& f = *fabs[arm];
        const std::uint64_t e0 = f.sim.events_processed();
        const auto t0 = std::chrono::steady_clock::now();
        f.driver.run_round(f.sim);
        const auto t1 = std::chrono::steady_clock::now();
        wall[arm] += std::chrono::duration<double>(t1 - t0).count();
        events[arm] += f.sim.events_processed() - e0;
      }
    }
    const double eps4 = static_cast<double>(events[0]) / wall[0];
    const double eps8 = static_cast<double>(events[1]) / wall[1];
    const double ratio = eps8 / eps4;
    std::printf("\nscale.k8_vs_k4_events_ratio %.4f  "
                "(interleaved; 1.0 = no per-event slowdown at 8x hosts)\n",
                ratio);
    if (bench::Artifact* a = bench::Artifact::current()) {
      a->add_value("scale.k8_vs_k4_events_ratio", ratio);
    }
  }

  // Sharded engine arms (DESIGN.md §11): two same-run A/B comparisons
  // against the serial k=8 fabric. CLOVE_SHARDS=1 must price at parity —
  // below two shards the fabric is built without channels and the runner
  // degenerates to one inline Simulator::run, so the overhead ratio sits
  // at ~1.0. The CLOVE_SHARDS=4 arm records the honest wall-clock speedup
  // for identical round counts: on a single-core host the windowing
  // overhead puts it below 1.0 and the committed floor tracks that
  // machine; multi-core runners clear it with headroom (EXPERIMENTS.md
  // E-shard records the core-count dependence).
  {
    prof::InstallGuard unprofiled(nullptr);
    const int ratio_rounds = rounds / 2 > 0 ? rounds / 2 : 1;
    struct ArmTimes {
      double wall_serial{0.0};
      double wall_shard{0.0};
      std::uint64_t ev_serial{0};
      std::uint64_t ev_shard{0};
    };
    auto interleave = [&](ShardedFabric& sf) {
      ArmTimes at;
      for (int r = 0; r < ratio_rounds; ++r) {
        {
          const std::uint64_t e0 = k8->sim.events_processed();
          const auto t0 = std::chrono::steady_clock::now();
          k8->driver.run_round(k8->sim);
          const auto t1 = std::chrono::steady_clock::now();
          at.wall_serial += std::chrono::duration<double>(t1 - t0).count();
          at.ev_serial += k8->sim.events_processed() - e0;
        }
        {
          const std::uint64_t e0 = sf.events_processed();
          const auto t0 = std::chrono::steady_clock::now();
          sf.run_round();
          const auto t1 = std::chrono::steady_clock::now();
          at.wall_shard += std::chrono::duration<double>(t1 - t0).count();
          at.ev_shard += sf.events_processed() - e0;
        }
      }
      return at;
    };

    {
      ShardedFabric s1(8, /*shards=*/1);
      const ArmTimes a = interleave(s1);
      const double ratio = (static_cast<double>(a.ev_shard) / a.wall_shard) /
                           (static_cast<double>(a.ev_serial) / a.wall_serial);
      std::printf("\nscale.shard1_overhead_ratio %.4f  "
                  "(interleaved; 1.0 = CLOVE_SHARDS=1 is free)\n",
                  ratio);
      if (bench::Artifact* a2 = bench::Artifact::current()) {
        a2->add_value("scale.shard1_overhead_ratio", ratio);
      }
    }
    {
      ShardedFabric s4(8, /*shards=*/4);
      const ArmTimes a = interleave(s4);
      const double speedup = a.wall_serial / a.wall_shard;
      std::printf("scale.k8_shard4_speedup_ratio %.4f  "
                  "(interleaved wall-clock, %d shards x %u workers, "
                  "%llu windows; >1 = sharding wins on this machine)\n",
                  speedup, s4.runner->shard_count(), s4.runner->workers(),
                  static_cast<unsigned long long>(s4.runner->windows()));
      if (bench::Artifact* a2 = bench::Artifact::current()) {
        a2->add_value("scale.k8_shard4_speedup_ratio", speedup);
      }

      // Per-shard event counts and load balance. The pod partition should
      // keep every shard near the mean; the committed balance floor
      // (mean/max, 1.0 = perfectly even) catches a partition regression
      // that would serialize the conservative windows behind one hot shard.
      std::uint64_t sum = 0, max_e = 0;
      for (int s = 0; s < s4.dom.shard_count(); ++s) {
        const std::uint64_t e = s4.dom.sim(s).events_processed();
        sum += e;
        max_e = std::max(max_e, e);
      }
      const double mean_e = static_cast<double>(sum) /
                            static_cast<double>(s4.dom.shard_count());
      for (int s = 0; s < s4.dom.shard_count(); ++s) {
        const std::uint64_t e = s4.dom.sim(s).events_processed();
        std::printf("  shard %d: %10llu events  (%.3f of mean)\n", s,
                    static_cast<unsigned long long>(e),
                    static_cast<double>(e) / mean_e);
      }
      const double balance =
          max_e > 0 ? mean_e / static_cast<double>(max_e) : 1.0;
      std::printf("scale.shard4_balance_ratio %.4f  "
                  "(mean/max per-shard events; imbalance %.3fx)\n",
                  balance, max_e > 0
                               ? static_cast<double>(max_e) / mean_e
                               : 1.0);
      if (bench::Artifact* a2 = bench::Artifact::current()) {
        a2->add_value("scale.shard4_balance_ratio", balance);
      }
    }
  }

  // k=16 (1024 hosts, 320 switches) rides only the sharded engine — the
  // single-run scale the sharding tentpole exists for. Rows appear only
  // when CLOVE_SHARDS > 1, so the serial CI leg reports them as [skip]
  // rather than pricing a serial k=16 run it never needed.
  if (harness::default_shards() > 1) {
    prof::InstallGuard unprofiled(nullptr);
    ShardedFabric s16(16, harness::default_shards());
    const int k16_rounds = rounds / 4 > 0 ? rounds / 4 : 1;
    const std::uint64_t e0 = s16.events_processed();
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < k16_rounds; ++r) s16.run_round();
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    const std::uint64_t ev = s16.events_processed() - e0;
    const double eps = static_cast<double>(ev) / wall;
    const double rss16 = prof::peak_rss_mb();
    std::printf(
        "%-9s %4d hosts   %7.3f s wall   %8.2f Mevents/s   "
        "queue hwm %6zu   peak rss %7.1f MB   (%d shards, %u workers)\n",
        "scale_k16", s16.hosts, wall, eps / 1e6, s16.queue_high_water(),
        rss16, s16.runner->shard_count(), s16.runner->workers());
    if (bench::Artifact* a = bench::Artifact::current()) {
      a->add_value("scale_k16.hosts", static_cast<double>(s16.hosts));
      a->add_value("scale_k16.events_per_sec", eps);
      a->add_value("scale_k16.rss_mb", rss16);
      a->add_value("scale_k16.queue_hwm",
                   static_cast<double>(s16.queue_high_water()));
      a->note_engine(ev, s16.queue_high_water());
    }
  }

  // Hybrid flow/packet A/B (DESIGN.md §12), gated on CLOVE_HYBRID=on like
  // the k=16 rows are on CLOVE_SHARDS: the same k=8 web-search/ECMP TCP
  // workload runs packet-exact and then with elephant middles promoted to
  // the fluid engine. Same process, same seed, jobs must match exactly;
  // the speedup and mice-FCT-fidelity rows are the tentpole's contract.
  if (hybrid::HybridConfig::from_env().enabled) {
    prof::InstallGuard unprofiled(nullptr);
    const hybrid::HybridConfig hc = hybrid::HybridConfig::from_env();
    const auto ws = workload::FlowSizeDistribution::web_search();
    const double promotable =
        ws.bytes_fraction_at_least(hc.ramp_bytes + hc.min_remaining);
    std::printf(
        "\n== hybrid flow/packet A/B (k=8 fat-tree, web-search, ECMP) ==\n"
        "promotable byte share (flows >= %llu B): %.1f%%\n",
        static_cast<unsigned long long>(hc.ramp_bytes + hc.min_remaining),
        100.0 * promotable);

    HybridArm::RunResult off, on;
    std::uint64_t promotions = 0, fluid_bytes = 0;
    // Fold both arms into the artifact's engine gauges: the packet-exact
    // arm dominates process wall-clock by design, so leaving its events out
    // would crater the whole-artifact engine.events_per_sec composite that
    // bench_check floors.
    {
      HybridArm arm(8, /*hybrid_on=*/false);
      off = arm.run(scale);
      artifact.note_engine(off.events, arm.sim.queue_high_water());
    }
    {
      HybridArm arm(8, /*hybrid_on=*/true);
      on = arm.run(scale);
      artifact.note_engine(on.events, arm.sim.queue_high_water());
      promotions = arm.engine->stats().promotions;
      fluid_bytes = arm.engine->stats().fluid_bytes;
    }

    const double speedup = off.wall_s / on.wall_s;
    const double ev_reduction = static_cast<double>(off.events) /
                                static_cast<double>(std::max<std::uint64_t>(
                                    1, on.events));
    const double mice_match = match_ratio(off.mice_avg_s, on.mice_avg_s);
    const double jobs_match =
        match_ratio(static_cast<double>(off.jobs), static_cast<double>(on.jobs));
    std::printf(
        "  off: %7.3f s wall  %10llu events  %llu jobs  mice avg %.4fs p99 "
        "%.4fs\n"
        "  on:  %7.3f s wall  %10llu events  %llu jobs  mice avg %.4fs p99 "
        "%.4fs\n"
        "  %llu promotions, %.1f MB advanced fluidly\n"
        "hybrid.k8_speedup_ratio         %.3f  (wall-clock, same workload)\n"
        "hybrid.k8_event_reduction_ratio %.3f  (events skipped by the fluid "
        "model)\n"
        "hybrid.mice_fct_match_ratio     %.4f  (1.0 = identical mice avg "
        "FCT)\n"
        "hybrid.jobs_match_ratio         %.4f  (must be 1.0)\n",
        off.wall_s, static_cast<unsigned long long>(off.events),
        static_cast<unsigned long long>(off.jobs), off.mice_avg_s,
        off.mice_p99_s, on.wall_s, static_cast<unsigned long long>(on.events),
        static_cast<unsigned long long>(on.jobs), on.mice_avg_s, on.mice_p99_s,
        static_cast<unsigned long long>(promotions),
        static_cast<double>(fluid_bytes) / 1e6, speedup, ev_reduction,
        mice_match, jobs_match);
    if (bench::Artifact* a = bench::Artifact::current()) {
      a->add_value("hybrid.k8_speedup_ratio", speedup);
      a->add_value("hybrid.k8_event_reduction_ratio", ev_reduction);
      a->add_value("hybrid.mice_fct_match_ratio", mice_match);
      a->add_value("hybrid.jobs_match_ratio", jobs_match);
      a->add_value("hybrid.promotions", static_cast<double>(promotions));
    }
  }

  // Attribution rounds: profiled (the Artifact's session profiler is
  // installed on this thread), then the top time sinks — excluded from the
  // measured floors above by construction.
  if (prof::Profiler* p = artifact.profiler()) {
    const int attrib_rounds = rounds / 4 > 0 ? rounds / 4 : 1;
    for (int r = 0; r < attrib_rounds; ++r) {
      k4->driver.run_round(k4->sim);
      k8->driver.run_round(k8->sim);
    }
    p->note_simulator(k4->sim.events_processed(), k4->sim.queue_high_water(),
                      k4->sim.queue_slab_capacity());
    p->note_simulator(k8->sim.events_processed(), k8->sim.queue_high_water(),
                      k8->sim.queue_slab_capacity());
    auto& pool4 = net::PacketPool::of(k4->sim);
    auto& pool8 = net::PacketPool::of(k8->sim);
    p->note_pool(pool4.allocated(), pool4.reused());
    p->note_pool(pool8.allocated(), pool8.reused());

    // Sharded attribution: this runner is constructed while the session
    // profiler is installed, so each shard profiles into its own Profiler
    // and the destructor deposits the per-shard copies — including the
    // shard_sync barrier-wait share prof_summarize.py reports — into the
    // artifact's self-profile.
    {
      ShardedFabric sf(8, /*shards=*/4);
      for (int r = 0; r < attrib_rounds; ++r) sf.run_round();
      std::printf(
          "\nsharded attribution: %d shards, %u workers, %llu windows\n",
          sf.runner->shard_count(), sf.runner->workers(),
          static_cast<unsigned long long>(sf.runner->windows()));
    }

    std::printf("\ntop time sinks (profiled attribution rounds):\n");
    const auto sinks = p->top_sinks();
    std::uint64_t total_self = 0;
    for (prof::ScopeId id : sinks) total_self += p->stat(id).self_ns;
    int shown = 0;
    for (prof::ScopeId id : sinks) {
      if (shown++ == 5) break;
      const prof::ScopeStat& s = p->stat(id);
      std::printf("  %-16s %10.3f ms self   %8llu calls   %5.1f%%\n",
                  prof::scope_name(id), static_cast<double>(s.self_ns) / 1e6,
                  static_cast<unsigned long long>(s.count),
                  total_self > 0
                      ? 100.0 * static_cast<double>(s.self_ns) /
                            static_cast<double>(total_self)
                      : 0.0);
    }
  }
  return 0;
}
