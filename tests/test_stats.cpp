// Tests for the statistics helpers.

#include <gtest/gtest.h>

#include "stats/stats.hpp"

namespace clove::stats {
namespace {

TEST(OnlineStats, MeanMinMax) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, Variance) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Samples, MeanAndCount) {
  Samples s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1.0);
  EXPECT_NEAR(s.percentile(99), 99.01, 1.0);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
}

TEST(Samples, PercentileInterpolatesBetweenOrderStatistics) {
  // Pins the documented method: linear interpolation between the two
  // nearest order statistics, not nearest-rank (which would only ever
  // return observed samples).
  Samples s;
  for (int v : {10, 20, 30, 40}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
  EXPECT_DOUBLE_EQ(s.percentile(75), 32.5);
}

TEST(Samples, PercentileUnsortedInput) {
  Samples s;
  for (int v : {5, 1, 9, 3, 7}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
}

TEST(Samples, AddAfterPercentileResorts) {
  Samples s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
}

TEST(Samples, CdfMonotonic) {
  Samples s;
  for (int i = 0; i < 1000; ++i) s.add(i % 37);
  auto cdf = s.cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Samples, EmptySafe) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
  EXPECT_TRUE(s.cdf().empty());
}

TEST(FctRecorder, SizeClassBuckets) {
  FctRecorder r;
  r.add(50'000, 0.1);        // mouse
  r.add(500'000, 0.2);       // neither
  r.add(20'000'000, 0.3);    // elephant
  EXPECT_EQ(r.all().count(), 3u);
  EXPECT_EQ(r.mice().count(), 1u);
  EXPECT_EQ(r.elephants().count(), 1u);
  EXPECT_DOUBLE_EQ(r.mice().mean(), 0.1);
  EXPECT_DOUBLE_EQ(r.elephants().mean(), 0.3);
}

TEST(FctRecorder, BoundaryValues) {
  FctRecorder r;
  r.add(FctRecorder::kMiceMaxBytes, 1.0);      // exactly 100 KB: not a mouse
  r.add(FctRecorder::kElephantMinBytes, 1.0);  // exactly 10 MB: not an elephant
  EXPECT_EQ(r.mice().count(), 0u);
  EXPECT_EQ(r.elephants().count(), 0u);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Samples, SingleSampleCdfAndPercentiles) {
  Samples s;
  s.add(42.0);
  // Every percentile of one sample is that sample (rank interpolation over
  // values_.size()-1 == 0 must not divide or index out of range).
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  auto cdf = s.cdf(10);
  ASSERT_EQ(cdf.size(), 10u);
  for (const auto& [v, q] : cdf) EXPECT_DOUBLE_EQ(v, 42.0);
  EXPECT_DOUBLE_EQ(cdf.front().second, 0.1);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Samples, DuplicateValuesCdfStaysMonotone) {
  // A heavily tied distribution (e.g. all mice flows finishing in the same
  // FCT bucket) must still yield a monotone CDF that steps through the tie.
  Samples s;
  for (int i = 0; i < 6; ++i) s.add(5.0);
  s.add(1.0);
  s.add(9.0);
  auto cdf = s.cdf(8);
  ASSERT_EQ(cdf.size(), 8u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.front().first, 5.0);  // the tie dominates early mass
  EXPECT_DOUBLE_EQ(cdf.back().first, 9.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  // Percentiles inside the tie are exact, not interpolated across it.
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
}

TEST(Samples, CdfMorePointsThanSamplesClampsToMax) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  auto cdf = s.cdf(100);
  ASSERT_EQ(cdf.size(), 100u);
  EXPECT_DOUBLE_EQ(cdf.back().first, 2.0);
  // The index clamp keeps every quantile inside the sample range.
  for (const auto& [v, q] : cdf) {
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace clove::stats
