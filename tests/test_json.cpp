// Tests for the minimal JSON document type used by run artifacts.

#include <gtest/gtest.h>

#include <string>

#include "telemetry/json.hpp"

namespace clove::telemetry {
namespace {

TEST(Json, ScalarKinds) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_TRUE(Json(7).is_number());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_DOUBLE_EQ(Json(1.5).as_number(), 1.5);
  EXPECT_EQ(Json("hello").as_string(), "hello");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json o = Json::object();
  o.set("zebra", Json(1));
  o.set("apple", Json(2));
  o.set("mango", Json(3));
  EXPECT_EQ(o.dump(), R"({"zebra":1,"apple":2,"mango":3})");
  // set() on an existing key replaces in place.
  o.set("apple", Json(9));
  EXPECT_EQ(o.dump(), R"({"zebra":1,"apple":9,"mango":3})");
}

TEST(Json, LookupMissingReturnsNull) {
  Json o = Json::object();
  o.set("a", Json(1));
  EXPECT_TRUE(o["missing"].is_null());
  EXPECT_TRUE(o["missing"]["deeper"].is_null());  // chainable
  EXPECT_FALSE(o.contains("missing"));
  EXPECT_TRUE(o.contains("a"));
  Json a = Json::array();
  a.push_back(Json(1));
  EXPECT_TRUE(a[5].is_null());
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
}

TEST(Json, IntegralNumbersEmitWithoutDecimal) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json(0).dump(), "0");
}

TEST(Json, StringEscapes) {
  const std::string s = "a\"b\\c\nd\te";
  const std::string dumped = Json(s).dump();
  EXPECT_EQ(dumped, R"("a\"b\\c\nd\te")");
  std::string err;
  Json back = Json::parse(dumped, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.as_string(), s);
}

TEST(Json, RoundTripDocument) {
  Json doc = Json::object();
  doc.set("name", Json("bench"));
  doc.set("enabled", Json(true));
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json(2.25));
  arr.push_back(Json("three"));
  doc.set("items", arr);
  Json nested = Json::object();
  nested.set("p99", Json(0.00125));
  doc.set("stats", nested);

  for (int indent : {-1, 2}) {
    std::string err;
    Json back = Json::parse(doc.dump(indent), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back["name"].as_string(), "bench");
    EXPECT_TRUE(back["enabled"].as_bool());
    EXPECT_TRUE(back["nothing"].is_null());
    ASSERT_EQ(back["items"].size(), 3u);
    EXPECT_DOUBLE_EQ(back["items"][1].as_number(), 2.25);
    EXPECT_EQ(back["items"][2].as_string(), "three");
    EXPECT_DOUBLE_EQ(back["stats"]["p99"].as_number(), 0.00125);
    // Emit-parse-emit is a fixed point (order preserved).
    EXPECT_EQ(back.dump(), doc.dump());
  }
}

TEST(Json, ParseWhitespaceAndNesting) {
  std::string err;
  Json v = Json::parse("  [ 1 , { \"a\" : [ true , null ] } ]  ", &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(v.size(), 2u);
  EXPECT_TRUE(v[1]["a"][0].as_bool());
  EXPECT_TRUE(v[1]["a"][1].is_null());
}

TEST(Json, ParseErrorsReported) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated",
                          "{\"a\" 1}", "[1 2]"}) {
    std::string err;
    Json v = Json::parse(bad, &err);
    EXPECT_TRUE(v.is_null()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(Json, ParseNumbers) {
  std::string err;
  Json v = Json::parse("[0, -1, 3.5, 1e3, 2.5e-3]", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_DOUBLE_EQ(v[0].as_number(), 0.0);
  EXPECT_DOUBLE_EQ(v[1].as_number(), -1.0);
  EXPECT_DOUBLE_EQ(v[2].as_number(), 3.5);
  EXPECT_DOUBLE_EQ(v[3].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(v[4].as_number(), 0.0025);
}

TEST(Json, PrettyPrintIndents) {
  Json o = Json::object();
  o.set("a", Json(1));
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos) << pretty;
}

TEST(Json, DepthLimitRejectsPathological) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  std::string err;
  Json v = Json::parse(deep, &err);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace clove::telemetry
