// Tests for the congestion-aware Clove policies: Clove-ECN's weight
// adaptation loop, Clove-INT's least-utilized routing, Clove-Latency.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "lb/clove_ecn.hpp"
#include "lb/clove_int.hpp"
#include "lb/clove_latency.hpp"
#include "test_util.hpp"

namespace clove::lb {
namespace {

using clove::testutil::make_data;
using clove::testutil::tuple;
using sim::kMicrosecond;

overlay::PathSet four_paths(std::uint16_t base_port = 50000) {
  overlay::PathSet ps;
  for (std::uint16_t i = 0; i < 4; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(base_port + i);
    p.hops = {{10, 0},
              {static_cast<net::IpAddr>(20 + i / 2), static_cast<int>(i % 2)},
              {11, static_cast<int>(i % 2)},
              {2, 0}};
    ps.paths.push_back(p);
  }
  ps.discovered_at = 0;
  return ps;
}

net::CloveFeedback ecn_fb(std::uint16_t port) {
  net::CloveFeedback fb;
  fb.present = true;
  fb.port = port;
  fb.ecn_set = true;
  return fb;
}

net::CloveFeedback util_fb(std::uint16_t port, double util) {
  net::CloveFeedback fb;
  fb.present = true;
  fb.port = port;
  fb.has_util = true;
  fb.util = util;
  return fb;
}

CloveEcnConfig slow_recovery() {
  CloveEcnConfig c;
  c.recovery_interval = sim::seconds(100.0);  // effectively off for the test
  return c;
}

// ---------------------------------------------------------------------------
// Clove-ECN
// ---------------------------------------------------------------------------

TEST(CloveEcn, StartsUniform) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  auto w = p.weights(2);
  ASSERT_EQ(w.size(), 4u);
  for (double x : w) EXPECT_NEAR(x, 0.25, 1e-9);
}

TEST(CloveEcn, WantsSignals) {
  CloveEcnPolicy p;
  EXPECT_TRUE(p.wants_ect());
  EXPECT_FALSE(p.wants_int());
  EXPECT_TRUE(p.needs_discovery());
  EXPECT_EQ(p.name(), "clove-ecn");
}

TEST(CloveEcn, FeedbackReducesWeightByThird) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  p.on_feedback(2, ecn_fb(50000), 0);
  auto w = p.weights(2);
  // 0.25 - 0.25/3 on the congested path; the removed mass spread over the
  // other three uncongested paths.
  EXPECT_NEAR(w[0], 0.25 * 2 / 3, 1e-9);
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(w[i], 0.25 + 0.25 / 9, 1e-9);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-9);
}

TEST(CloveEcn, RepeatedFeedbackKeepsWeightAboveFloor) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  for (int i = 0; i < 100; ++i) {
    p.on_feedback(2, ecn_fb(50000), i * 300 * kMicrosecond);
  }
  auto w = p.weights(2);
  EXPECT_GE(w[0], p.config().min_weight - 1e-12);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-9);
}

TEST(CloveEcn, WeightMassGoesOnlyToUncongestedPaths) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  // Paths 0 and 1 congested back to back (within the expiry window).
  p.on_feedback(2, ecn_fb(50000), 0);
  p.on_feedback(2, ecn_fb(50001), 10 * kMicrosecond);
  auto w = p.weights(2);
  // Path 0's reduction spread over {1,2,3}; path 1's over {2,3} only.
  EXPECT_LT(w[0], 0.25);
  EXPECT_LT(w[1], 0.25 + 0.25 / 9);
  EXPECT_GT(w[2], 0.25 + 0.25 / 9);
  EXPECT_NEAR(w[2], w[3], 1e-9);
}

TEST(CloveEcn, AllPathsCongestedDetection) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  EXPECT_FALSE(p.all_paths_congested(2, 0));
  sim::Time t = 0;
  for (std::uint16_t i = 0; i < 4; ++i) {
    p.on_feedback(2, ecn_fb(static_cast<std::uint16_t>(50000 + i)), t);
  }
  EXPECT_TRUE(p.all_paths_congested(2, t));
  // Congestion state expires.
  EXPECT_FALSE(p.all_paths_congested(2, t + p.config().congestion_expiry +
                                            kMicrosecond));
}

TEST(CloveEcn, WrrFollowsWeights) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  // Congest path 0 heavily.
  for (int i = 0; i < 10; ++i) {
    p.on_feedback(2, ecn_fb(50000), i * 300 * kMicrosecond);
  }
  auto w = p.weights(2);
  // Route many flowlets (distinct flows => each pick is a new flowlet).
  std::map<std::uint16_t, int> counts;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto pkt =
        make_data(tuple(1, 2, static_cast<std::uint16_t>(1000 + i)), 0, 100);
    ++counts[p.pick_port(*pkt, 2, sim::seconds(0.01))];
  }
  // Note: picking happens after recovery-less weights settle; the share of
  // path 0 must be close to its (tiny) weight.
  const double share0 = static_cast<double>(counts[50000]) / n;
  EXPECT_LT(share0, w[0] + 0.05);
  EXPECT_GT(counts[50001], n / 5);
}

TEST(CloveEcn, FlowletStickiness) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto port = p.pick_port(*pkt, 2, 0);
  // Packets within the gap stay put even as weights change.
  p.on_feedback(2, ecn_fb(port), 10 * kMicrosecond);
  EXPECT_EQ(p.pick_port(*pkt, 2, 50 * kMicrosecond), port);
  // After a gap the flowlet may move (WRR decides; just must be valid).
  const auto port2 = p.pick_port(*pkt, 2, sim::seconds(1.0));
  EXPECT_GE(port2, 50000);
  EXPECT_LE(port2, 50003);
}

TEST(CloveEcn, FallbackBeforeDiscovery) {
  CloveEcnPolicy p;
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto port = p.pick_port(*pkt, 2, 0);
  EXPECT_EQ(p.pick_port(*pkt, 2, 1), port);  // stable within flowlet
}

TEST(CloveEcn, RecoveryDriftsTowardUniform) {
  CloveEcnConfig cfg;
  cfg.recovery_interval = 1 * sim::kMillisecond;
  cfg.recovery_rate = 0.2;
  CloveEcnPolicy p(cfg);
  p.on_paths_updated(2, four_paths());
  for (int i = 0; i < 6; ++i) {
    p.on_feedback(2, ecn_fb(50000), i * 300 * kMicrosecond);
  }
  const double w_before = p.weights(2)[0];
  ASSERT_LT(w_before, 0.1);
  // Long quiet period, then touch the policy so lazy recovery applies.
  auto pkt = make_data(tuple(9, 2), 0, 100);
  p.pick_port(*pkt, 2, sim::seconds(0.5));
  const double w_after = p.weights(2)[0];
  EXPECT_GT(w_after, 0.2);  // drifted most of the way back to 0.25
}

TEST(CloveEcn, StateCarriesAcrossRemapBySignature) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths(50000));
  for (int i = 0; i < 6; ++i) {
    p.on_feedback(2, ecn_fb(50000), i * 300 * kMicrosecond);
  }
  const double depressed = p.weights(2)[0];
  ASSERT_LT(depressed, 0.1);
  // Rediscovery maps the same physical paths to brand-new ports.
  p.on_paths_updated(2, four_paths(60000));
  auto w = p.weights(2);
  EXPECT_NEAR(w[0], depressed, 0.02);  // learned weight survived the remap
}

TEST(CloveEcn, FeedbackForUnknownPortIgnored) {
  CloveEcnPolicy p(slow_recovery());
  p.on_paths_updated(2, four_paths());
  p.on_feedback(2, ecn_fb(12345), 0);
  auto w = p.weights(2);
  for (double x : w) EXPECT_NEAR(x, 0.25, 1e-9);
}

// ---------------------------------------------------------------------------
// Clove-INT
// ---------------------------------------------------------------------------

TEST(CloveInt, WantsIntTelemetry) {
  CloveIntPolicy p;
  EXPECT_TRUE(p.wants_int());
  EXPECT_TRUE(p.wants_ect());
  EXPECT_TRUE(p.needs_discovery());
}

TEST(CloveInt, RoutesToLeastUtilizedPath) {
  CloveIntPolicy p;
  p.on_paths_updated(2, four_paths());
  const sim::Time t = 100 * kMicrosecond;
  p.on_feedback(2, util_fb(50000, 0.9), t);
  p.on_feedback(2, util_fb(50001, 0.7), t);
  p.on_feedback(2, util_fb(50002, 0.1), t);
  p.on_feedback(2, util_fb(50003, 0.5), t);
  // Every new flowlet goes to the 0.1-utilization path.
  for (int i = 0; i < 10; ++i) {
    auto pkt =
        make_data(tuple(1, 2, static_cast<std::uint16_t>(3000 + i)), 0, 100);
    EXPECT_EQ(p.pick_port(*pkt, 2, t + 1), 50002);
  }
}

TEST(CloveInt, StaleUtilizationExpires) {
  CloveIntConfig cfg;
  cfg.util_expiry = 1 * sim::kMillisecond;
  CloveIntPolicy p(cfg);
  p.on_paths_updated(2, four_paths());
  p.on_feedback(2, util_fb(50000, 0.9), 0);
  auto utils = p.utilizations(2, 2 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(utils[0], 0.0);  // expired, treated as unknown/idle
}

TEST(CloveInt, EwmaSmoothsSamples) {
  CloveIntConfig cfg;
  cfg.util_ewma = 0.5;
  CloveIntPolicy p(cfg);
  p.on_paths_updated(2, four_paths());
  p.on_feedback(2, util_fb(50000, 1.0), 0);
  p.on_feedback(2, util_fb(50000, 0.0), 1);
  auto utils = p.utilizations(2, 2);
  EXPECT_NEAR(utils[0], 0.5, 1e-9);
}

TEST(CloveInt, TieBreaksSpreadAcrossIdlePaths) {
  CloveIntPolicy p;
  p.on_paths_updated(2, four_paths());
  std::set<std::uint16_t> picked;
  for (int i = 0; i < 64; ++i) {
    auto pkt =
        make_data(tuple(1, 2, static_cast<std::uint16_t>(4000 + i)), 0, 100);
    picked.insert(p.pick_port(*pkt, 2, 0));
  }
  EXPECT_EQ(picked.size(), 4u);  // all-idle => random ties cover all paths
}

TEST(CloveInt, FlowletStickiness) {
  CloveIntPolicy p;
  p.on_paths_updated(2, four_paths());
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto port = p.pick_port(*pkt, 2, 0);
  p.on_feedback(2, util_fb(port, 1.0), 1);
  EXPECT_EQ(p.pick_port(*pkt, 2, 10 * kMicrosecond), port);
}

// ---------------------------------------------------------------------------
// Clove-Latency (§7 extension)
// ---------------------------------------------------------------------------

TEST(CloveLatency, RoutesToLowestLatencyPath) {
  CloveLatencyPolicy p;
  p.on_paths_updated(2, four_paths());
  net::CloveFeedback fb;
  fb.present = true;
  fb.has_latency = true;
  const sim::Time t = 10 * kMicrosecond;
  fb.port = 50000;
  fb.latency = 900 * kMicrosecond;
  p.on_feedback(2, fb, t);
  fb.port = 50001;
  fb.latency = 50 * kMicrosecond;
  p.on_feedback(2, fb, t);
  fb.port = 50002;
  fb.latency = 500 * kMicrosecond;
  p.on_feedback(2, fb, t);
  fb.port = 50003;
  fb.latency = 700 * kMicrosecond;
  p.on_feedback(2, fb, t);
  for (int i = 0; i < 5; ++i) {
    auto pkt =
        make_data(tuple(1, 2, static_cast<std::uint16_t>(5000 + i)), 0, 100);
    EXPECT_EQ(p.pick_port(*pkt, 2, t + 1), 50001);
  }
}

TEST(CloveLatency, NeedsDiscoveryOnly) {
  CloveLatencyPolicy p;
  EXPECT_TRUE(p.needs_discovery());
  EXPECT_FALSE(p.wants_int());
  EXPECT_EQ(p.name(), "clove-latency");
}

}  // namespace
}  // namespace clove::lb
