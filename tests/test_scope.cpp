// Tests for telemetry scoping: the thread-local current scope, ScopeGuard
// nesting, the enabled() hot-path flag, and the hub facade's delegation.

#include <gtest/gtest.h>

#include <thread>

#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"

namespace clove::telemetry {
namespace {

TEST(Scope, GuardInstallsAndRestores) {
  Scope& before = current_scope();
  Scope inner;
  {
    ScopeGuard guard(inner);
    EXPECT_EQ(&current_scope(), &inner);
  }
  EXPECT_EQ(&current_scope(), &before);
}

TEST(Scope, GuardsNest) {
  Scope a;
  Scope b;
  ScopeGuard ga(a);
  {
    ScopeGuard gb(b);
    EXPECT_EQ(&current_scope(), &b);
  }
  EXPECT_EQ(&current_scope(), &a);
}

TEST(Scope, EnabledFlagTracksCurrentScope) {
  Scope on{ScopeSettings{true, TraceLog::kDefaultCapacity, kAllCategories}};
  Scope off;
  {
    ScopeGuard g(on);
    EXPECT_TRUE(enabled());
    {
      ScopeGuard g2(off);
      EXPECT_FALSE(enabled());
    }
    EXPECT_TRUE(enabled());
  }
}

TEST(Scope, SetEnabledUpdatesHotPathFlagWhenCurrent) {
  Scope s;
  ScopeGuard g(s);
  EXPECT_FALSE(enabled());
  s.set_enabled(true);
  EXPECT_TRUE(enabled());
  s.set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST(Scope, MetricsAreIsolatedPerScope) {
  Scope a;
  Scope b;
  {
    ScopeGuard g(a);
    hub().metrics().counter("scope.test")->add(3);
  }
  {
    ScopeGuard g(b);
    auto* c = hub().metrics().counter("scope.test");
    EXPECT_EQ(c->value(), 0u) << "scopes must not share registries";
  }
  {
    ScopeGuard g(a);
    EXPECT_EQ(hub().metrics().counter("scope.test")->value(), 3u);
  }
}

TEST(Scope, SettingsRoundTripToChildScopes) {
  ScopeSettings s;
  s.enabled = true;
  s.trace_capacity = 128;
  s.trace_filter = static_cast<unsigned>(Category::kWeight);
  Scope parent{s};
  const ScopeSettings inherited = parent.settings();
  EXPECT_TRUE(inherited.enabled);
  EXPECT_EQ(inherited.trace_capacity, 128u);
  EXPECT_EQ(inherited.trace_filter, static_cast<unsigned>(Category::kWeight));
  Scope child{inherited};
  EXPECT_TRUE(child.is_enabled());
  EXPECT_EQ(child.trace().capacity(), 128u);
  EXPECT_EQ(child.trace().filter(), static_cast<unsigned>(Category::kWeight));
}

TEST(Scope, TraceRecordsIntoCurrentScopeOnly) {
  Scope a{ScopeSettings{true, 64, kAllCategories}};
  Scope b{ScopeSettings{true, 64, kAllCategories}};
  {
    ScopeGuard g(a);
    trace(Category::kWeight, 1, "node", "event.a");
  }
  {
    ScopeGuard g(b);
    trace(Category::kWeight, 2, "node", "event.b");
    EXPECT_EQ(hub().trace().size(), 1u);
    EXPECT_EQ(hub().trace().events()[0]->name, "event.b");
  }
  {
    ScopeGuard g(a);
    EXPECT_EQ(hub().trace().size(), 1u);
    EXPECT_EQ(hub().trace().events()[0]->name, "event.a");
  }
}

TEST(Scope, BeginRunClearsValuesButKeepsCells) {
  Scope s;
  ScopeGuard g(s);
  auto* c = hub().metrics().counter("scope.begin_run");
  c->add(5);
  hub().begin_run();
  EXPECT_EQ(c->value(), 0u);  // same cell, zeroed
  EXPECT_EQ(hub().metrics().counter("scope.begin_run"), c);
}

TEST(Scope, EachThreadFallsBackToTheProcessScope) {
  // Threads with no installed scope share the lazily created process scope.
  Scope* main_scope = &current_scope();
  Scope* seen = nullptr;
  std::thread t([&seen] { seen = &current_scope(); });
  t.join();
  EXPECT_EQ(seen, main_scope);
}

TEST(Scope, InstalledScopeIsThreadLocal) {
  // A scope installed on one thread must not leak to another.
  Scope inner;
  ScopeGuard g(inner);
  Scope* other_thread_scope = nullptr;
  std::thread t([&other_thread_scope] {
    other_thread_scope = &current_scope();
  });
  t.join();
  EXPECT_NE(other_thread_scope, &inner);
}

}  // namespace
}  // namespace clove::telemetry
