// Tests for the SACK machinery: receiver block generation, sender
// scoreboard recovery, tail-loss probes and the pipe model.

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "transport/tcp.hpp"

namespace clove::transport {
namespace {

using clove::testutil::tuple;

/// Direct-injection harness for receiver-side SACK generation.
class SackReceiver : public ::testing::Test {
 protected:
  class Capture : public VmPort {
   public:
    explicit Capture(sim::Simulator& s) : sim_(s) {}
    void vm_send(net::PacketPtr pkt) override { out.push_back(std::move(pkt)); }
    sim::Simulator& simulator() override { return sim_; }
    std::vector<net::PacketPtr> out;

   private:
    sim::Simulator& sim_;
  };

  SackReceiver() : port(sim) {
    TcpConfig cfg;
    cfg.ack_every = 1;  // ack every segment so every ACK is observable
    rx = std::make_unique<TcpReceiver>(port, tuple(1, 2).reversed(), cfg);
  }

  void deliver(std::uint64_t seq, std::uint32_t len = 1000) {
    rx->on_packet(clove::testutil::make_data(tuple(1, 2), seq, len));
  }

  const net::TcpHeader& last_ack() const { return port.out.back()->tcp; }

  sim::Simulator sim;
  Capture port;
  std::unique_ptr<TcpReceiver> rx;
};

TEST_F(SackReceiver, NoBlocksWhenInOrder) {
  deliver(0);
  ASSERT_FALSE(port.out.empty());
  EXPECT_EQ(last_ack().sack_count, 0);
  EXPECT_EQ(last_ack().ack, 1000u);
}

TEST_F(SackReceiver, ReportsOutOfOrderBlock) {
  deliver(2000);
  ASSERT_FALSE(port.out.empty());
  ASSERT_EQ(last_ack().sack_count, 1);
  EXPECT_EQ(last_ack().sacks[0].start, 2000u);
  EXPECT_EQ(last_ack().sacks[0].end, 3000u);
  EXPECT_EQ(last_ack().ack, 0u);
}

TEST_F(SackReceiver, MostRecentBlockFirst) {
  deliver(2000);
  deliver(6000);
  deliver(4000);
  ASSERT_GE(last_ack().sack_count, 2);
  // The 4000 block arrived last, so it is reported first (RFC 2018).
  EXPECT_EQ(last_ack().sacks[0].start, 4000u);
}

TEST_F(SackReceiver, AtMostThreeBlocks) {
  deliver(2000);
  deliver(4000);
  deliver(6000);
  deliver(8000);
  deliver(10000);
  EXPECT_LE(last_ack().sack_count, 3);
}

TEST_F(SackReceiver, BlocksClearWhenGapFills) {
  deliver(2000);
  deliver(1000);
  deliver(0);
  EXPECT_EQ(last_ack().ack, 3000u);
  EXPECT_EQ(last_ack().sack_count, 0);
}

TEST_F(SackReceiver, DisabledSackSendsNoBlocks) {
  TcpConfig cfg;
  cfg.sack = false;
  cfg.ack_every = 1;
  rx = std::make_unique<TcpReceiver>(port, tuple(1, 2).reversed(), cfg);
  deliver(2000);
  EXPECT_EQ(last_ack().sack_count, 0);
}

// ---------------------------------------------------------------------------
// End-to-end recovery comparisons over a lossy pipe
// ---------------------------------------------------------------------------

class SackPipe : public ::testing::Test {
 protected:
  class Port : public VmPort {
   public:
    Port(SackPipe& owner, int side) : owner_(owner), side_(side) {}
    void vm_send(net::PacketPtr pkt) override {
      owner_.transmit(side_, std::move(pkt));
    }
    sim::Simulator& simulator() override { return owner_.sim; }

   private:
    SackPipe& owner_;
    int side_;
  };

  void SetUp() override {
    a = std::make_unique<Port>(*this, 0);
    b = std::make_unique<Port>(*this, 1);
  }

  void transmit(int side, net::PacketPtr pkt) {
    if (side == 0 && pkt->payload > 0) {
      ++data_seen;
      if (burst_start > 0 && data_seen >= burst_start &&
          data_seen < burst_start + burst_len) {
        return;  // contiguous burst loss
      }
      if (drop_every > 0 && data_seen % drop_every == 0) return;
    }
    TcpEndpoint* dst = (side == 0) ? rx_ep : tx_ep;
    net::Packet* raw = pkt.release();
    sim.schedule_in(delay, [dst, raw] { dst->on_packet(net::PacketPtr(raw)); });
  }

  /// Returns completion time of a 3MB transfer under the configured losses.
  sim::Time run_transfer(bool sack) {
    TcpConfig cfg;
    cfg.min_rto = 50 * sim::kMillisecond;
    cfg.sack = sack;
    TcpSender tx(*a, tuple(1, 2), cfg);
    TcpReceiver rx(*b, tuple(1, 2).reversed(), cfg);
    tx_ep = &tx;
    rx_ep = &rx;
    sim::Time done_at = -1;
    tx.write(3'000'000, [&](sim::Time t) { done_at = t; });
    sim.run();
    timeouts = tx.stats().timeouts;
    return done_at;
  }

  sim::Simulator sim;
  std::unique_ptr<Port> a, b;
  TcpEndpoint* tx_ep{nullptr};
  TcpEndpoint* rx_ep{nullptr};
  sim::Time delay{50 * sim::kMicrosecond};
  int data_seen{0};
  int burst_start{0};
  int burst_len{0};
  int drop_every{0};
  std::uint64_t timeouts{0};
};

TEST_F(SackPipe, RecoversBurstLossWithoutRto) {
  burst_start = 100;
  burst_len = 40;  // a 40-packet contiguous hole
  const sim::Time t = run_transfer(true);
  ASSERT_GT(t, 0);
  EXPECT_EQ(timeouts, 0u);
}

TEST_F(SackPipe, SackBeatsNewRenoOnBurstLoss) {
  burst_start = 100;
  burst_len = 40;
  const sim::Time with_sack = run_transfer(true);
  data_seen = 0;
  SetUp();
  burst_start = 100;
  burst_len = 40;
  const sim::Time without = run_transfer(false);
  ASSERT_GT(with_sack, 0);
  ASSERT_GT(without, 0);
  // NewReno repairs ~one hole per RTT; SACK retransmits them in parallel.
  EXPECT_LT(with_sack, without);
}

TEST_F(SackPipe, PeriodicLossStillCompletes) {
  drop_every = 13;
  const sim::Time t = run_transfer(true);
  EXPECT_GT(t, 0);
}

TEST_F(SackPipe, TailBurstRepairedByProbe) {
  // Drop a burst that includes the very end of the transfer (packets
  // 2000-2055 of ~2055): recovery must come from tail probes, not RTO.
  burst_start = 2000;
  burst_len = 100;
  const sim::Time t = run_transfer(true);
  ASSERT_GT(t, 0);
  EXPECT_EQ(timeouts, 0u);
  EXPECT_LT(t, 50 * sim::kMillisecond);
}

}  // namespace
}  // namespace clove::transport
