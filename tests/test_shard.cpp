// Sharded single-run determinism (DESIGN.md §11): one fixed-seed k=8
// fat-tree run — staggered cross-pod traffic, an armed fault plan (link
// flap + silent drop + deferred route convergence), full flight recorder —
// must produce digest-identical telemetry and identical per-host delivery
// counts at every CLOVE_SHARDS x CLOVE_THREADS combination. The digest folds
// every shard scope's metrics plus per-host received counts plus the audit
// totals, so any divergence in packet fates, drop accounting, or journey
// bookkeeping breaks the comparison.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "harness/shard_runner.hpp"
#include "net/fat_tree.hpp"
#include "net/shard.hpp"
#include "net/topology.hpp"
#include "overlay/paths.hpp"
#include "sim/simulator.hpp"
#include "telemetry/scope.hpp"

namespace clove {
namespace {

class SinkHost : public net::Node {
 public:
  SinkHost(net::NodeId id, std::string name) : Node(id, std::move(name)) {}
  void receive(net::PacketPtr pkt, int /*in_port*/) override {
    ++received;
    pkt.reset();
  }
  std::uint64_t received{0};
};

struct RunResult {
  std::string digest;
  std::uint64_t received{0};
  std::uint64_t windows{0};
  int faults_applied{0};
};

/// One complete sharded run; everything about it is fixed except the
/// shard/thread decomposition under test.
RunResult run_once(int shards, unsigned threads) {
  telemetry::ScopeSettings settings;
  settings.enabled = true;
  settings.flight.mode = telemetry::FlightMode::kFull;
  telemetry::Scope scope(settings);
  telemetry::ScopeGuard guard(scope);

  sim::Simulator sim(/*seed=*/7);
  net::ShardDomain dom(sim, shards, /*seed=*/7);
  net::Topology topo(sim);
  topo.set_shard_domain(&dom);

  net::FatTreeConfig cfg;
  cfg.k = 8;
  net::FatTree ft = net::build_fat_tree(
      topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
        return t.add_host<SinkHost>(name);
      });

  // The fault plan exercises every global-action path: a cross-shard core
  // uplink flaps (down + deferred route recompute, later up + recompute)
  // and another silently eats half its packets. The down->up gap is far
  // larger than the link propagation, so drop accounting is shard-exact.
  fault::FaultPlan plan;
  plan.route_convergence = 2 * sim::kMillisecond;
  plan.add(3 * sim::kMillisecond, fault::FaultKind::kLinkDown, "A0.0->C0.0#0");
  plan.add(4 * sim::kMillisecond, fault::FaultKind::kLinkDrop, "A1.1->C1.1#0",
           0.5);
  plan.add(9 * sim::kMillisecond, fault::FaultKind::kLinkUp, "A0.0->C0.0#0");
  fault::FaultInjector inj(topo, plan);
  inj.arm();

  harness::ShardRunner runner(dom, threads);

  // Staggered cross-pod injections, pre-scheduled on each source's own shard
  // simulator so they flow through the fault window (3..11 ms).
  const int pods = ft.n_pods();
  for (int pod = 0; pod < pods; ++pod) {
    const auto& hs = ft.hosts_by_pod[static_cast<std::size_t>(pod)];
    const auto& peers =
        ft.hosts_by_pod[static_cast<std::size_t>((pod + pods / 2) % pods)];
    for (std::size_t i = 0; i < hs.size(); ++i) {
      net::Node* src = hs[i];
      net::Node* dst = peers[i % peers.size()];
      sim::Simulator& ssim = dom.sim(topo.shard_of(src));
      for (int b = 0; b < 48; ++b) {
        const sim::Time at = static_cast<sim::Time>(b) * 250 * sim::kMicrosecond +
                             static_cast<sim::Time>(pod + 1) * sim::kMicrosecond;
        ssim.schedule_at(at, [src, dst, b, &ssim] {
          auto pkt = net::make_packet(ssim);
          pkt->inner = net::FiveTuple{
              src->ip(), dst->ip(),
              static_cast<std::uint16_t>(overlay::kEphemeralBase +
                                         ((static_cast<unsigned>(b) * 37u) &
                                          1023u)),
              7471, net::Proto::kStt};
          pkt->payload = 1460;
          pkt->ttl = 64;
          src->port(0)->enqueue(std::move(pkt));
        });
      }
    }
  }

  runner.run(20 * sim::kMillisecond);

  RunResult out;
  out.digest = runner.metrics_digest();
  out.windows = runner.windows();
  out.faults_applied = inj.stats().events_applied;

  for (int pod = 0; pod < pods; ++pod) {
    for (net::Node* h : ft.hosts_by_pod[static_cast<std::size_t>(pod)]) {
      auto* sink = static_cast<SinkHost*>(h);
      out.received += sink->received;
      out.digest += h->name();
      out.digest += ' ';
      out.digest += std::to_string(sink->received);
      out.digest += '\n';
    }
  }

  std::uint64_t audit_total = 0;
  for (int s = 0; s < shards; ++s) {
    if (auto* fr = runner.scope(s).flight_recorder()) {
      fr->audit_conservation(dom.sim(s).now());
      audit_total += fr->audit().total();
    }
  }
  out.digest += "audit ";
  out.digest += std::to_string(audit_total);
  out.digest += '\n';
  return out;
}

TEST(ShardDeterminism, DigestIdenticalAcrossShardAndThreadCounts) {
  const RunResult serial = run_once(/*shards=*/1, /*threads=*/1);
  ASSERT_GT(serial.received, 0u);
  ASSERT_EQ(serial.faults_applied, 3);
  // The digest must carry real signal, not vacuously match as empty.
  EXPECT_NE(serial.digest.find("link.tx_packets"), std::string::npos);
  EXPECT_NE(serial.digest.find("link.drops_down"), std::string::npos);
  EXPECT_NE(serial.digest.find("audit 0\n"), std::string::npos)
      << "every packet must be accounted for:\n"
      << serial.digest;

  const int shard_counts[] = {2, 4};
  const unsigned thread_counts[] = {1, 4};
  for (int s : shard_counts) {
    for (unsigned t : thread_counts) {
      const RunResult r = run_once(s, t);
      EXPECT_EQ(r.received, serial.received) << "shards=" << s << " threads=" << t;
      EXPECT_EQ(r.digest, serial.digest)
          << "sharded run diverged at shards=" << s << " threads=" << t;
      EXPECT_GT(r.windows, 1u)
          << "a sharded fat-tree run must take multiple lookahead windows";
    }
  }
}

TEST(ShardDeterminism, SingleShardMatchesUnshardedEngine) {
  // CLOVE_SHARDS=1 must be the plain serial engine: same digest whether the
  // run goes through ShardRunner's window loop or Simulator::run directly.
  const RunResult via_runner = run_once(1, 1);

  telemetry::ScopeSettings settings;
  settings.enabled = true;
  settings.flight.mode = telemetry::FlightMode::kFull;
  telemetry::Scope scope(settings);
  telemetry::ScopeGuard guard(scope);

  sim::Simulator sim(/*seed=*/7);
  net::Topology topo(sim);  // no domain at all: the pre-shard code path
  net::FatTreeConfig cfg;
  cfg.k = 8;
  net::FatTree ft = net::build_fat_tree(
      topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
        return t.add_host<SinkHost>(name);
      });
  fault::FaultPlan plan;
  plan.route_convergence = 2 * sim::kMillisecond;
  plan.add(3 * sim::kMillisecond, fault::FaultKind::kLinkDown, "A0.0->C0.0#0");
  plan.add(4 * sim::kMillisecond, fault::FaultKind::kLinkDrop, "A1.1->C1.1#0",
           0.5);
  plan.add(9 * sim::kMillisecond, fault::FaultKind::kLinkUp, "A0.0->C0.0#0");
  fault::FaultInjector inj(topo, plan);
  inj.arm();

  const int pods = ft.n_pods();
  std::uint64_t received = 0;
  for (int pod = 0; pod < pods; ++pod) {
    const auto& hs = ft.hosts_by_pod[static_cast<std::size_t>(pod)];
    const auto& peers =
        ft.hosts_by_pod[static_cast<std::size_t>((pod + pods / 2) % pods)];
    for (std::size_t i = 0; i < hs.size(); ++i) {
      net::Node* src = hs[i];
      net::Node* dst = peers[i % peers.size()];
      for (int b = 0; b < 48; ++b) {
        const sim::Time at = static_cast<sim::Time>(b) * 250 * sim::kMicrosecond +
                             static_cast<sim::Time>(pod + 1) * sim::kMicrosecond;
        sim.schedule_at(at, [src, dst, b, &sim] {
          auto pkt = net::make_packet(sim);
          pkt->inner = net::FiveTuple{
              src->ip(), dst->ip(),
              static_cast<std::uint16_t>(overlay::kEphemeralBase +
                                         ((static_cast<unsigned>(b) * 37u) &
                                          1023u)),
              7471, net::Proto::kStt};
          pkt->payload = 1460;
          pkt->ttl = 64;
          src->port(0)->enqueue(std::move(pkt));
        });
      }
    }
  }
  sim.run(20 * sim::kMillisecond);
  for (int pod = 0; pod < pods; ++pod) {
    for (net::Node* h : ft.hosts_by_pod[static_cast<std::size_t>(pod)]) {
      received += static_cast<SinkHost*>(h)->received;
    }
  }
  EXPECT_EQ(received, via_runner.received);
  EXPECT_EQ(inj.stats().events_applied, 3);
}

TEST(ShardDomain, LookaheadIsMinCrossShardPropagation) {
  sim::Simulator sim(1);
  net::ShardDomain dom(sim, 4, 1);
  net::Topology topo(sim);
  topo.set_shard_domain(&dom);
  net::FatTreeConfig cfg;
  cfg.k = 4;
  (void)net::build_fat_tree(
      topo, cfg, [](net::Topology& t, const std::string& name, int /*pod*/) {
        return t.add_host<SinkHost>(name);
      });
  EXPECT_EQ(dom.lookahead(), cfg.link_propagation);
  EXPECT_EQ(dom.shard_count(), 4);
  // Pods land on their own shards (pod 1 -> shard 1, not the main shard).
  for (net::Switch* sw : topo.switches()) {
    if (sw->name() == "E1.0") {
      EXPECT_EQ(topo.shard_of(sw), 1);
    }
    if (sw->name() == "E3.1") {
      EXPECT_EQ(topo.shard_of(sw), 3);
    }
  }
}

TEST(ShardRunner, DefaultShardsReadsEnv) {
  EXPECT_GE(harness::default_shards(), 1);
}

}  // namespace
}  // namespace clove
