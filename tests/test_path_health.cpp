// Path-health monitoring (DESIGN.md §8): keepalives over the real fabric,
// the live -> suspect -> evicted -> re-probed state machine, policy weight
// renormalization on eviction, and the two feedback/discovery degradation
// cases the fault model calls out — total feedback loss must not starve a
// path forever, and a discovery round losing probes mid-flight must still
// yield a usable (partial) path set.

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "lb/clove_ecn.hpp"
#include "lb/ecmp.hpp"
#include "net/topology.hpp"
#include "overlay/hypervisor.hpp"
#include "overlay/path_health.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "transport/tcp.hpp"

namespace clove::overlay {
namespace {

class PathHealthFixture : public ::testing::Test {
 protected:
  void build(std::function<std::unique_ptr<lb::Policy>()> make_policy =
                 [] { return std::make_unique<lb::CloveEcnPolicy>(); }) {
    topo = std::make_unique<net::Topology>(sim);
    net::LeafSpineConfig cfg;
    cfg.hosts_per_leaf = 2;
    fabric = net::build_leaf_spine(
        *topo, cfg,
        [this, &make_policy](net::Topology& t, const std::string& name,
                             int) -> net::Node* {
          HypervisorConfig h;
          h.discovery.probe_interval = 100 * sim::kMillisecond;
          h.discovery.probe_timeout = 5 * sim::kMillisecond;
          h.path_health.enabled = true;
          return t.add_host<Hypervisor>(name, sim, h, make_policy());
        });
    src = static_cast<Hypervisor*>(fabric.hosts_by_leaf[0][0]);
    dst = static_cast<Hypervisor*>(fabric.hosts_by_leaf[1][0]);
  }

  void discover() {
    src->start_discovery({dst->ip()});
    sim.run(sim.now() + sim::milliseconds(10));
    ASSERT_NE(src->discovery().paths(dst->ip()), nullptr);
  }

  /// Cut every spine->L2 connection: all paths from L1 to L2 go dark while
  /// routing (fail_connection recomputes immediately) drops the prefix, so
  /// in-flight probes and keepalives die in the fabric.
  void cut_leaf2() {
    for (std::size_t s = 0; s < fabric.fabric_links[1].size(); ++s) {
      for (net::Link* l : fabric.fabric_links[1][s]) {
        if (!l->is_down()) topo->fail_connection(l);
      }
    }
  }

  void heal_leaf2() {
    for (std::size_t s = 0; s < fabric.fabric_links[1].size(); ++s) {
      for (net::Link* l : fabric.fabric_links[1][s]) {
        if (l->is_down()) topo->restore_connection(l);
      }
    }
  }

  sim::Simulator sim;
  std::unique_ptr<net::Topology> topo;
  net::LeafSpine fabric;
  Hypervisor* src{nullptr};
  Hypervisor* dst{nullptr};
};

TEST_F(PathHealthFixture, KeepaliveAckOnHealthyFabric) {
  build();
  discover();
  const PathSet* ps = src->discovery().paths(dst->ip());
  bool called = false, alive = false;
  src->discovery().keepalive(dst->ip(), ps->paths[0].port,
                             [&](net::IpAddr, std::uint16_t, bool ok) {
                               called = true;
                               alive = ok;
                             });
  sim.run(sim.now() + sim::milliseconds(10));
  EXPECT_TRUE(called);
  EXPECT_TRUE(alive);
  EXPECT_EQ(src->discovery().keepalives_sent(), 1u);
}

TEST_F(PathHealthFixture, KeepaliveTimesOutWhenUnreachable) {
  build();
  discover();
  const std::uint16_t port = src->discovery().paths(dst->ip())->paths[0].port;
  cut_leaf2();
  bool called = false, alive = true;
  src->discovery().keepalive(dst->ip(), port,
                             [&](net::IpAddr, std::uint16_t, bool ok) {
                               called = true;
                               alive = ok;
                             });
  sim.run(sim.now() + sim::milliseconds(10));
  EXPECT_TRUE(called);
  EXPECT_FALSE(alive);
}

TEST_F(PathHealthFixture, SuspectPortRecoversViaKeepalive) {
  build();
  discover();
  auto* ph = src->path_health();
  ASSERT_NE(ph, nullptr);
  const std::uint16_t port = src->discovery().paths(dst->ip())->paths[0].port;

  // Offered traffic with no feedback on a healthy-but-quiet path: the
  // monitor must suspect it (staleness), confirm liveness end to end, and
  // leave it alone.
  ph->note_sent(dst->ip(), port, sim.now());
  sim.run(sim.now() + sim::milliseconds(30));
  EXPECT_EQ(ph->health(dst->ip(), port),
            PathHealthMonitor::PortHealth::kLive);
  EXPECT_GE(ph->stats().suspects, 1u);
  EXPECT_GE(ph->stats().keepalive_acks, 1u);
  EXPECT_EQ(ph->stats().evictions, 0u);
}

TEST_F(PathHealthFixture, DeadPathsEvictedAndPolicyRenormalized) {
  build();
  discover();
  auto* ph = src->path_health();
  ASSERT_NE(ph, nullptr);
  const PathSet before = *src->discovery().paths(dst->ip());
  ASSERT_GE(before.size(), 2u);

  cut_leaf2();
  for (const PathInfo& p : before.paths) {
    ph->note_sent(dst->ip(), p.port, sim.now());
  }
  // staleness (4ms) + 3 keepalive timeouts (5ms each) + backoff: well under
  // 60ms for every port.
  sim.run(sim.now() + sim::milliseconds(60));

  EXPECT_EQ(ph->stats().evictions, before.size());
  for (const PathInfo& p : before.paths) {
    EXPECT_EQ(ph->health(dst->ip(), p.port),
              PathHealthMonitor::PortHealth::kEvicted);
  }
  // The daemon republished the shrunken set down to nothing (paths() reports
  // an empty set as "no paths known") and the policy dropped its per-path
  // state with it.
  EXPECT_EQ(src->discovery().paths(dst->ip()), nullptr);
  auto* pol = static_cast<lb::CloveEcnPolicy*>(&src->policy());
  EXPECT_TRUE(pol->weights(dst->ip()).empty());

  // pick_port must still answer (flow-hash fallback), never crash or stall.
  auto pkt = testutil::make_data(testutil::tuple(src->ip(), dst->ip()), 1, 1000);
  (void)src->policy().pick_port(*pkt, dst->ip(), sim.now());
}

TEST_F(PathHealthFixture, PartialEvictionRenormalizesSurvivors) {
  build();
  discover();
  auto* ph = src->path_health();
  const PathSet before = *src->discovery().paths(dst->ip());
  ASSERT_GE(before.size(), 3u);
  auto* pol = static_cast<lb::CloveEcnPolicy*>(&src->policy());

  // Evict exactly one port by hand (the monitor's own trigger is exercised
  // above); the surviving weights must renormalize to ~1 instantly.
  const std::uint16_t victim = before.paths[0].port;
  pol->on_path_evicted(dst->ip(), victim, sim.now());
  src->discovery().evict_port(dst->ip(), victim);

  const PathSet* after = src->discovery().paths(dst->ip());
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->size(), before.size() - 1);
  const auto w = pol->weights(dst->ip());
  ASSERT_EQ(w.size(), after->size());
  double total = 0.0;
  for (double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
  (void)ph;
}

TEST_F(PathHealthFixture, EvictedPortReadmittedAfterHeal) {
  build();
  discover();
  auto* ph = src->path_health();
  const PathSet before = *src->discovery().paths(dst->ip());

  cut_leaf2();
  for (const PathInfo& p : before.paths) {
    ph->note_sent(dst->ip(), p.port, sim.now());
  }
  sim.run(sim.now() + sim::milliseconds(60));
  ASSERT_EQ(ph->stats().evictions, before.size());

  // The link returns. Evicted ports keep re-probing at the capped backoff;
  // the first ack triggers an immediate discovery round and the republished
  // set readmits the healed paths.
  heal_leaf2();
  sim.run(sim.now() + sim::milliseconds(400));
  EXPECT_GE(ph->stats().readmissions, 1u);
  const PathSet* after = src->discovery().paths(dst->ip());
  ASSERT_NE(after, nullptr);
  EXPECT_GE(after->size(), 1u);
  for (const PathInfo& p : after->paths) {
    EXPECT_EQ(ph->health(dst->ip(), p.port),
              PathHealthMonitor::PortHealth::kLive);
  }
}

// ---------------------------------------------------------------------------
// Eviction -> subflow re-pinning (ECMP migrate mode + TcpSender hook)
// ---------------------------------------------------------------------------

TEST(EcmpMigrate, EvictedPortAvoidedUntilReadmitted) {
  lb::EcmpPolicy pol(/*migrate_on_evict=*/true);
  EXPECT_TRUE(pol.needs_discovery());
  EXPECT_EQ(pol.name(), "ecmp-migrate");

  const net::IpAddr dst = 42;
  auto pkt = testutil::make_data(testutil::tuple(1, dst), 1, 1000);
  const std::uint16_t pinned = pol.pick_port(*pkt, dst, 0);
  // Per-flow hash: stable until its port dies.
  EXPECT_EQ(pol.pick_port(*pkt, dst, sim::milliseconds(5)), pinned);

  pol.on_path_evicted(dst, pinned, sim::milliseconds(6));
  const std::uint16_t moved = pol.pick_port(*pkt, dst, sim::milliseconds(7));
  EXPECT_NE(moved, pinned) << "flow must re-hash off the evicted port";
  // Deterministic: the same re-hash every time, and evictions toward a
  // different destination do not perturb this flow.
  EXPECT_EQ(pol.pick_port(*pkt, dst, sim::milliseconds(8)), moved);
  pol.on_path_evicted(dst + 1, moved, sim::milliseconds(9));
  EXPECT_EQ(pol.pick_port(*pkt, dst, sim::milliseconds(10)), moved);

  // Discovery republishing the port readmits it: back to the base hash.
  PathSet ps;
  PathInfo pi;
  pi.port = pinned;
  pi.hops.push_back(PathHop{dst, 0});
  ps.paths.push_back(pi);
  pol.on_paths_updated(dst, ps);
  EXPECT_EQ(pol.pick_port(*pkt, dst, sim::milliseconds(11)), pinned);
}

TEST(EcmpMigrate, PlainBaselineIgnoresEvictions) {
  lb::EcmpPolicy pol;  // the never-recovering §5 baseline
  EXPECT_FALSE(pol.needs_discovery());
  const net::IpAddr dst = 42;
  auto pkt = testutil::make_data(testutil::tuple(1, dst), 1, 1000);
  const std::uint16_t pinned = pol.pick_port(*pkt, dst, 0);
  pol.on_path_evicted(dst, pinned, sim::milliseconds(1));
  EXPECT_EQ(pol.pick_port(*pkt, dst, sim::milliseconds(2)), pinned);
}

TEST_F(PathHealthFixture, EvictionRepinsStalledSender) {
  // Full chain through the path-health state machine: the fabric toward dst
  // goes dark mid-transfer, the monitor walks live -> suspect -> evicted,
  // the eviction fans out to the registered sender (via Hypervisor::on_evict)
  // and the stalled sender retransmits immediately instead of sitting out
  // its (long) RTO.
  build([] { return std::make_unique<lb::EcmpPolicy>(true); });
  discover();
  auto* ph = src->path_health();
  ASSERT_NE(ph, nullptr);
  const PathSet before = *src->discovery().paths(dst->ip());
  ASSERT_GE(before.size(), 2u);

  transport::TcpConfig tcfg;
  tcfg.min_rto = 500 * sim::kMillisecond;  // park the RTO out of the way
  transport::TcpSender tx(
      *src, net::FiveTuple{src->ip(), dst->ip(), 9000, 80, net::Proto::kTcp},
      tcfg);
  src->register_endpoint(tx.tuple(), &tx);
  tx.write(100'000'000);  // far more than 5 ms of line rate: stays in flight
  sim.run(sim.now() + sim::milliseconds(5));
  ASSERT_GT(tx.stats().bytes_acked, 0u) << "transfer must be in flight";
  ASSERT_GT(tx.bytes_outstanding(), 0u);

  cut_leaf2();
  for (const PathInfo& p : before.paths) {
    ph->note_sent(dst->ip(), p.port, sim.now());
  }
  sim.run(sim.now() + sim::milliseconds(60));

  ASSERT_EQ(ph->stats().evictions, before.size());
  EXPECT_GT(tx.bytes_outstanding(), 0u) << "flow should be stalled";
  EXPECT_GE(tx.stats().evict_repins, 1u)
      << "eviction must reach the sender and trigger a head retransmit";
  EXPECT_EQ(tx.stats().timeouts, 0u) << "repin must beat the RTO";
}

TEST_F(PathHealthFixture, EvictionLeavesHealthySenderAlone) {
  // Same wiring, but the flow keeps progressing (the fabric stays up): a
  // hand-driven eviction toward dst must NOT provoke a spurious retransmit.
  build([] { return std::make_unique<lb::EcmpPolicy>(true); });
  discover();
  const PathSet before = *src->discovery().paths(dst->ip());

  transport::TcpSender tx(
      *src, net::FiveTuple{src->ip(), dst->ip(), 9001, 80, net::Proto::kTcp});
  src->register_endpoint(tx.tuple(), &tx);
  bool done = false;
  tx.write(200'000, [&](sim::Time) { done = true; });
  sim.run(sim.now() + sim::milliseconds(2));
  ASSERT_GT(tx.stats().bytes_acked, 0u);

  const std::uint64_t sent_before = tx.stats().packets_sent;
  tx.on_path_evicted(dst->ip(), before.paths[0].port, sim.now());
  EXPECT_EQ(tx.stats().evict_repins, 0u)
      << "a progressing flow was not on the dead path; leave it alone";
  EXPECT_EQ(tx.stats().packets_sent, sent_before);

  sim.run(sim.now() + sim::seconds(2));
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// Degraded-signal cases from the fault model
// ---------------------------------------------------------------------------

TEST(CloveEcnStarvation, TotalFeedbackLossDoesNotStarveAPath) {
  // A path was marked congested, then the reverse feedback channel died
  // entirely (fault kFeedbackLoss p=1). The §3.2 recovery drift must bring
  // the path's weight back toward uniform from pick_port() time alone —
  // with no feedback at all, a once-congested path must not stay starved
  // forever.
  lb::CloveEcnConfig cfg;
  cfg.recovery_interval = 1 * sim::kMillisecond;
  cfg.recovery_rate = 0.05;
  lb::CloveEcnPolicy pol(cfg, /*seed=*/1);

  const net::IpAddr dst = 99;
  PathSet ps;
  for (std::uint16_t i = 0; i < 2; ++i) {
    PathInfo p;
    p.port = static_cast<std::uint16_t>(100 + i);
    p.hops.push_back(PathHop{static_cast<net::IpAddr>(10 + i), 0});
    p.hops.push_back(PathHop{dst, 0});
    ps.paths.push_back(p);
  }
  pol.on_paths_updated(dst, ps);

  net::CloveFeedback fb;
  fb.present = true;
  fb.port = 100;
  fb.ecn_set = true;
  sim::Time now = sim::milliseconds(1);
  for (int i = 0; i < 6; ++i) {
    pol.on_feedback(dst, fb, now);
    now += 100 * sim::kMicrosecond;
  }
  const auto w_marked = pol.weights(dst);
  ASSERT_EQ(w_marked.size(), 2u);
  EXPECT_LT(w_marked[0], 0.3) << "feedback should have cut path 0's weight";

  // Feedback goes completely silent; only data keeps flowing.
  auto pkt = testutil::make_data(testutil::tuple(1, dst), 1, 1000);
  for (int i = 0; i < 400; ++i) {
    now += 1 * sim::kMillisecond;
    pkt->tcp.seq += 1000;
    (void)pol.pick_port(*pkt, dst, now);
  }
  const auto w_recovered = pol.weights(dst);
  EXPECT_GT(w_recovered[0], 0.4)
      << "recovery drift must restore a starved path without feedback";
}

TEST(PartialDiscovery, ProbeLossMidRoundStillYieldsUsablePaths) {
  // A fabric link silently eats every packet (fault kLinkDrop p=1) while a
  // discovery round is in flight: the traces over that link never complete,
  // but the round must still publish the paths it did reconstruct.
  sim::Simulator sim;
  net::Topology topo(sim);
  net::LeafSpineConfig cfg;
  cfg.hosts_per_leaf = 2;
  net::LeafSpine fabric = net::build_leaf_spine(
      topo, cfg,
      [&sim](net::Topology& t, const std::string& name, int) -> net::Node* {
        HypervisorConfig h;
        h.discovery.probe_timeout = 5 * sim::kMillisecond;
        return t.add_host<Hypervisor>(name, sim, h,
                                      std::make_unique<lb::CloveEcnPolicy>());
      });
  auto* src = static_cast<Hypervisor*>(fabric.hosts_by_leaf[0][0]);
  auto* dst = static_cast<Hypervisor*>(fabric.hosts_by_leaf[1][0]);

  // One of L1's four uplinks swallows everything — probes over it are lost
  // mid-trace (no route change, no error, just silence).
  fabric.fabric_links[0][0][0]->set_fault_drop(1.0, /*seed=*/42);

  src->start_discovery({dst->ip()});
  sim.run(sim::milliseconds(20));

  const PathSet* ps = src->discovery().paths(dst->ip());
  ASSERT_NE(ps, nullptr);
  EXPECT_GE(src->discovery().rounds_completed(), 1);
  ASSERT_GE(ps->size(), 1u) << "partial path set must still be usable";
  // Every published path is fully reconstructed down to the destination —
  // the half-traced ports over the blackholed link were discarded, not
  // published as truncated garbage.
  for (const PathInfo& p : ps->paths) {
    ASSERT_GE(p.hops.size(), 2u);
    EXPECT_EQ(p.hops.back().node, dst->ip());
  }
}

}  // namespace
}  // namespace clove::overlay
