// Tests for the workload generators: flow-size distributions, the
// client-server job workload and the incast generator.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "sim/random.hpp"
#include "workload/client_server.hpp"
#include "workload/flow_size.hpp"

namespace clove::workload {
namespace {

TEST(FlowSizeDistribution, SamplesWithinSupport) {
  auto d = FlowSizeDistribution::web_search();
  sim::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 30'000'000u);
  }
}

TEST(FlowSizeDistribution, EmpiricalMeanMatchesAnalytic) {
  auto d = FlowSizeDistribution::web_search();
  sim::Rng rng(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / n / d.mean_bytes(), 1.0, 0.05);
}

TEST(FlowSizeDistribution, WebSearchIsLongTailed) {
  auto d = FlowSizeDistribution::web_search();
  sim::Rng rng(11);
  int mice = 0, elephants = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto s = d.sample(rng);
    if (s < 100'000) ++mice;
    if (s > 10'000'000) ++elephants;
  }
  // ~55% of flows under 100KB; a few percent above 10MB.
  EXPECT_GT(mice, n / 2);
  EXPECT_GT(elephants, n / 100);
  EXPECT_LT(elephants, n / 10);
}

TEST(FlowSizeDistribution, QuantilesMatchCdfPoints) {
  auto d = FlowSizeDistribution::web_search();
  sim::Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) {
    samples.push_back(static_cast<double>(d.sample(rng)));
  }
  std::sort(samples.begin(), samples.end());
  // CDF point: P(size <= 80KB) = 0.53.
  const auto it = std::lower_bound(samples.begin(), samples.end(), 80'000.0);
  const double frac =
      static_cast<double>(it - samples.begin()) / samples.size();
  EXPECT_NEAR(frac, 0.53, 0.02);
}

TEST(FlowSizeDistribution, FixedAlwaysSame) {
  auto d = FlowSizeDistribution::fixed(5000);
  sim::Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 5000u);
  EXPECT_NEAR(d.mean_bytes(), 5000.0, 1.0);
}

TEST(FlowSizeDistribution, DataMiningHeavierTail) {
  const auto ws = FlowSizeDistribution::web_search();
  const auto dm = FlowSizeDistribution::data_mining();
  EXPECT_GT(dm.mean_bytes(), ws.mean_bytes());
}

// ---------------------------------------------------------------------------
// Client-server workload (driven through the full harness testbed)
// ---------------------------------------------------------------------------

harness::ExperimentConfig small_cfg(harness::Scheme s) {
  harness::ExperimentConfig cfg = harness::make_ns2_profile();
  cfg.scheme = s;
  cfg.topo.hosts_per_leaf = 4;
  cfg.discovery.probe_timeout = 5 * sim::kMillisecond;
  cfg.traffic_start = 15 * sim::kMillisecond;
  return cfg;
}

workload::ClientServerConfig small_wl() {
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 5;
  wl.conns_per_client = 1;
  wl.load = 0.4;
  wl.sizes = FlowSizeDistribution::fixed(200'000);
  return wl;
}

TEST(ClientServerWorkload, AllJobsComplete) {
  auto r = harness::run_fct_experiment(small_cfg(harness::Scheme::kEcmp),
                                       small_wl());
  EXPECT_EQ(r.jobs, 4u * 5u);
  EXPECT_GT(r.avg_fct_s, 0.0);
}

TEST(ClientServerWorkload, FctIncludesQueueingDelay) {
  // At very high offered load on a fixed-size workload, average job
  // completion must exceed the no-queueing transfer time substantially.
  auto wl = small_wl();
  wl.load = 0.3;
  auto r_low = harness::run_fct_experiment(small_cfg(harness::Scheme::kEcmp), wl);
  wl.load = 1.2;  // overdriven
  auto r_high =
      harness::run_fct_experiment(small_cfg(harness::Scheme::kEcmp), wl);
  EXPECT_GT(r_high.avg_fct_s, r_low.avg_fct_s);
}

TEST(ClientServerWorkload, OfferedBytesTrackLoad) {
  harness::Testbed tb(small_cfg(harness::Scheme::kEcmp));
  auto wl = small_wl();
  wl.jobs_per_conn = 50;
  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());
  ws.start();
  EXPECT_EQ(ws.jobs_total(), 4u * 50u);
  EXPECT_GT(ws.bytes_offered(), 0u);
}

TEST(ClientServerWorkload, DeterministicForSeed) {
  auto cfg = small_cfg(harness::Scheme::kCloveEcn);
  auto r1 = harness::run_fct_experiment(cfg, small_wl());
  auto r2 = harness::run_fct_experiment(cfg, small_wl());
  EXPECT_DOUBLE_EQ(r1.avg_fct_s, r2.avg_fct_s);
  EXPECT_EQ(r1.events, r2.events);
}

TEST(ClientServerWorkload, SeedChangesOutcome) {
  auto cfg = small_cfg(harness::Scheme::kCloveEcn);
  auto r1 = harness::run_fct_experiment(cfg, small_wl());
  cfg.seed = 99;
  auto r2 = harness::run_fct_experiment(cfg, small_wl());
  EXPECT_NE(r1.events, r2.events);
}

// ---------------------------------------------------------------------------
// Incast workload
// ---------------------------------------------------------------------------

TEST(IncastWorkload, CompletesAndMeasuresGoodput) {
  auto cfg = small_cfg(harness::Scheme::kCloveEcn);
  workload::IncastConfig ic;
  ic.fanout = 4;
  ic.total_bytes = 1'000'000;
  ic.requests = 3;
  const double gbps = harness::run_incast_experiment(cfg, ic);
  // Bounded by the 10G access link, above zero if it ran at all.
  EXPECT_GT(gbps, 0.5);
  EXPECT_LT(gbps, 10.1);
}

TEST(IncastWorkload, FanoutOneIsNearLineRate) {
  auto cfg = small_cfg(harness::Scheme::kEcmp);
  workload::IncastConfig ic;
  ic.fanout = 1;
  ic.total_bytes = 4'000'000;
  ic.requests = 3;
  const double gbps = harness::run_incast_experiment(cfg, ic);
  EXPECT_GT(gbps, 3.0);  // a single NewReno stream with shallow buffers
}

TEST(IncastWorkload, RequestsAreSequential) {
  harness::Testbed tb(small_cfg(harness::Scheme::kEcmp));
  tb.start_discovery();
  workload::IncastConfig ic;
  ic.fanout = 2;
  ic.total_bytes = 100'000;
  ic.requests = 5;
  workload::IncastWorkload incast(tb.simulator(), ic, tb.clients()[0],
                                  tb.servers());
  incast.start([&] { tb.simulator().stop(); });
  tb.simulator().run(sim::seconds(60.0));
  EXPECT_EQ(incast.requests_done(), 5);
  EXPECT_EQ(incast.request_durations().count(), 5u);
}

}  // namespace
}  // namespace clove::workload
