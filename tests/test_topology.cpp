// Tests for topology construction, shortest-path ECMP routing and failure
// handling on the paper's leaf-spine fabric.

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::net {
namespace {

using clove::testutil::SinkNode;
using clove::testutil::make_data;
using clove::testutil::tuple;

LeafSpine build_test_fabric(Topology& topo, int hosts_per_leaf = 2) {
  LeafSpineConfig cfg;
  cfg.hosts_per_leaf = hosts_per_leaf;
  return build_leaf_spine(
      topo, cfg,
      [](Topology& t, const std::string& name, int) -> Node* {
        return t.add_host<SinkNode>(name);
      });
}

TEST(Topology, ConnectCreatesBothDirections) {
  sim::Simulator sim;
  Topology topo(sim);
  auto* a = topo.add_host<SinkNode>("a");
  auto* b = topo.add_host<SinkNode>("b");
  auto [ab, ba] = topo.connect(a, b, LinkConfig{});
  EXPECT_EQ(ab->dst(), b);
  EXPECT_EQ(ba->dst(), a);
  EXPECT_EQ(topo.reverse_of(ab), ba);
  EXPECT_EQ(topo.reverse_of(ba), ab);
  EXPECT_EQ(a->port_count(), 1);
  EXPECT_EQ(b->port_count(), 1);
}

TEST(Topology, NodeByIpResolves) {
  sim::Simulator sim;
  Topology topo(sim);
  auto* a = topo.add_host<SinkNode>("a");
  EXPECT_EQ(topo.node_by_ip(a->ip()), a);
  EXPECT_EQ(topo.node_by_ip(9999), nullptr);
}

TEST(LeafSpineBuild, PaperShape) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo, 16);
  EXPECT_EQ(net.leaves.size(), 2u);
  EXPECT_EQ(net.spines.size(), 2u);
  EXPECT_EQ(net.hosts_by_leaf[0].size(), 16u);
  EXPECT_EQ(net.hosts_by_leaf[1].size(), 16u);
  // Each leaf: 4 fabric ports + 16 host ports.
  EXPECT_EQ(net.leaves[0]->port_count(), 20);
  // Each spine: 2 leaves x 2 parallel links.
  EXPECT_EQ(net.spines[0]->port_count(), 4);
  // 2 links/pair in each direction + host links: (2*2*2 + 32) * 2 dirs.
  EXPECT_EQ(topo.links().size(), (8u + 32u) * 2u);
}

TEST(LeafSpineBuild, LeafOfHost) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  EXPECT_EQ(net.leaf_of_host(net.hosts_by_leaf[0][0]), 0);
  EXPECT_EQ(net.leaf_of_host(net.hosts_by_leaf[1][1]), 1);
}

TEST(LeafSpineRouting, LeafHasFourUplinksForRemoteHost) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  const auto* route =
      net.leaves[0]->route(net.hosts_by_leaf[1][0]->ip());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->size(), 4u);  // 2 spines x 2 parallel links
}

TEST(LeafSpineRouting, LocalHostSinglePort) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  const auto* route =
      net.leaves[0]->route(net.hosts_by_leaf[0][1]->ip());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->size(), 1u);
}

TEST(LeafSpineRouting, SpineHasTwoDownlinksPerLeaf) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  const auto* route =
      net.spines[0]->route(net.hosts_by_leaf[1][0]->ip());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->size(), 2u);
}

TEST(LeafSpineRouting, EndToEndDelivery) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  auto* src = static_cast<SinkNode*>(net.hosts_by_leaf[0][0]);
  auto* dst = static_cast<SinkNode*>(net.hosts_by_leaf[1][1]);
  // Inject at the source's NIC link (as the host would).
  src->port(0)->enqueue(make_data(tuple(src->ip(), dst->ip()), 0, 100));
  sim.run();
  EXPECT_EQ(dst->received.size(), 1u);
}

TEST(LeafSpineRouting, ManyPortsUseAllFourPaths) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  auto* src = net.hosts_by_leaf[0][0];
  auto* dst = net.hosts_by_leaf[1][0];
  // Count distinct (leaf uplink, spine downlink) decisions over many ports.
  std::set<std::pair<int, int>> paths;
  const auto* leaf_route = net.leaves[0]->route(dst->ip());
  ASSERT_NE(leaf_route, nullptr);
  for (int sp = 0; sp < 200; ++sp) {
    FiveTuple t{src->ip(), dst->ip(), static_cast<std::uint16_t>(40000 + sp),
                7471, Proto::kStt};
    const int up = net.leaves[0]->ecmp_port(t, leaf_route->size());
    // Which spine this uplink reaches, and that spine's downlink choice:
    Link* l = net.leaves[0]->port((*leaf_route)[static_cast<std::size_t>(up)]);
    auto* spine = static_cast<Switch*>(l->dst());
    const auto* spine_route = spine->route(dst->ip());
    const int down = spine->ecmp_port(t, spine_route->size());
    paths.emplace(up, down);
  }
  EXPECT_GE(paths.size(), 7u);  // nearly all 4x2 combinations appear
}

TEST(Failure, FailConnectionRemovesFromRoutes) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  const int epoch_before = topo.route_epoch();
  topo.fail_connection(net.fabric_links[1][1][0]);
  EXPECT_EQ(topo.route_epoch(), epoch_before + 1);
  // Spine 1 now has one downlink to leaf 1.
  const auto* route = net.spines[1]->route(net.hosts_by_leaf[1][0]->ip());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->size(), 1u);
  // Leaf 1's uplink set toward leaf-0 hosts shrinks to 3.
  const auto* up = net.leaves[1]->route(net.hosts_by_leaf[0][0]->ip());
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->size(), 3u);
}

TEST(Failure, TrafficStillDeliveredAfterFailure) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  topo.fail_connection(net.fabric_links[1][1][0]);
  auto* src = static_cast<SinkNode*>(net.hosts_by_leaf[0][0]);
  auto* dst = static_cast<SinkNode*>(net.hosts_by_leaf[1][0]);
  for (int sp = 0; sp < 32; ++sp) {
    auto p = make_data(tuple(src->ip(), dst->ip(),
                             static_cast<std::uint16_t>(1000 + sp)),
                       0, 100);
    src->port(0)->enqueue(std::move(p));
  }
  sim.run();
  EXPECT_EQ(dst->received.size(), 32u);
}

TEST(Failure, RestoreBringsPathsBack) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  topo.fail_connection(net.fabric_links[1][1][0]);
  topo.restore_connection(net.fabric_links[1][1][0]);
  const auto* route = net.leaves[0]->route(net.hosts_by_leaf[1][0]->ip());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->size(), 4u);
}

TEST(Failure, WholeSpineDisconnection) {
  // Fail both S2 links to L2: S2 must drop out of L1's route to leaf-1
  // hosts entirely (no path through it), leaving the 2 S1 links.
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpine net = build_test_fabric(topo);
  topo.fail_connection(net.fabric_links[1][1][0]);
  topo.fail_connection(net.fabric_links[1][1][1]);
  const auto* route = net.leaves[0]->route(net.hosts_by_leaf[1][0]->ip());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->size(), 2u);
  for (int p : *route) {
    EXPECT_EQ(net.leaves[0]->port(p)->dst(), net.spines[0]);
  }
}

}  // namespace
}  // namespace clove::net
