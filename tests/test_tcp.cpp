// Tests for the TCP model: reliable delivery, congestion control dynamics,
// loss recovery, ECN and DCTCP reactions, and job framing.

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "transport/tcp.hpp"

namespace clove::transport {
namespace {

using clove::testutil::tuple;

/// A loopback harness: two VmPorts joined by a configurable pipe with fixed
/// delay, optional deterministic drop pattern and optional CE marking.
class TcpPipe : public ::testing::Test {
 protected:
  class Port : public VmPort {
   public:
    Port(TcpPipe& owner, int side) : owner_(owner), side_(side) {}
    void vm_send(net::PacketPtr pkt) override { owner_.transmit(side_, std::move(pkt)); }
    sim::Simulator& simulator() override { return owner_.sim; }

   private:
    TcpPipe& owner_;
    int side_;
  };

  void SetUp() override {
    a = std::make_unique<Port>(*this, 0);
    b = std::make_unique<Port>(*this, 1);
  }

  void transmit(int from_side, net::PacketPtr pkt) {
    ++packets_seen;
    if (from_side == 0 && pkt->payload > 0) {
      ++data_seen;
      if (drop_next > 0 && data_seen == drop_next) {
        drop_next = 0;
        return;  // lost
      }
      if (drop_every > 0 && data_seen % drop_every == 0) return;
      if (mark_all_data && pkt->tcp.ect) pkt->tcp.ce = true;
    }
    // Deliver to the opposite endpoint after the one-way delay. The shared_ptr
    // holder keeps the callable copyable for std::function while still freeing
    // the packet if a test stops the simulator before the event fires.
    TcpEndpoint* target = (from_side == 0) ? b_endpoint : a_endpoint;
    auto holder = std::make_shared<net::PacketPtr>(std::move(pkt));
    sim.schedule_in(delay, [target, holder] {
      target->on_packet(std::move(*holder));
    });
  }

  TcpConfig fast_cfg() {
    TcpConfig cfg;
    cfg.min_rto = 10 * sim::kMillisecond;
    return cfg;
  }

  sim::Simulator sim;
  std::unique_ptr<Port> a, b;
  TcpEndpoint* a_endpoint{nullptr};  ///< receives packets sent by side B
  TcpEndpoint* b_endpoint{nullptr};  ///< receives packets sent by side A
  sim::Time delay{50 * sim::kMicrosecond};
  int drop_next{0};   ///< drop the Nth data packet (one-shot)
  int drop_every{0};  ///< drop every Nth data packet
  bool mark_all_data{false};
  int packets_seen{0};
  int data_seen{0};
};

TEST_F(TcpPipe, DeliversAllBytesInOrder) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  std::uint64_t delivered = 0;
  rx.on_deliver = [&](std::uint64_t total) { delivered = total; };
  bool done = false;
  tx.write(1'000'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 1'000'000u);
  EXPECT_EQ(rx.bytes_delivered(), 1'000'000u);
}

TEST_F(TcpPipe, CompletionTimeReflectsBandwidthDelay) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  sim::Time done_at = 0;
  tx.write(14'600, [&](sim::Time t) { done_at = t; });  // 10 MSS = IW
  sim.run();
  // One RTT (100us) for the initial window to be acked, modulo delack.
  EXPECT_GE(done_at, 2 * delay);
  EXPECT_LE(done_at, 2 * delay + 300 * sim::kMicrosecond);
}

TEST_F(TcpPipe, SlowStartDoublesWindow) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  const std::uint64_t w0 = tx.cwnd();
  tx.write(10'000'000, nullptr);
  sim.run(2 * delay + sim::kMicrosecond);  // one full RTT of acks
  EXPECT_GE(tx.cwnd(), w0 + w0 / 2);       // grew substantially (delack halves)
}

TEST_F(TcpPipe, FastRetransmitRecoversSingleLoss) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  drop_next = 5;
  bool done = false;
  tx.write(300'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rx.bytes_delivered(), 300'000u);
  EXPECT_GE(tx.stats().fast_retransmits, 1u);
  EXPECT_EQ(tx.stats().timeouts, 0u);  // recovered without RTO
}

TEST_F(TcpPipe, TailLossProbeAvoidsRto) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  // Lose the very last data packet: no dupacks possible. The tail-loss
  // probe repairs it long before the RTO would fire.
  drop_next = 2;
  bool done = false;
  sim::Time done_at = 0;
  tx.write(2 * 1460, [&](sim::Time t) {
    done = true;
    done_at = t;
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(tx.stats().timeouts, 0u);
  EXPECT_LT(done_at, fast_cfg().min_rto);  // recovered pre-RTO
}

TEST_F(TcpPipe, RtoRecoversTailLossWithoutTlp) {
  TcpConfig cfg = fast_cfg();
  cfg.tail_loss_probe = false;
  TcpSender tx(*a, tuple(1, 2), cfg);
  TcpReceiver rx(*b, tuple(1, 2).reversed(), cfg);
  a_endpoint = &tx;
  b_endpoint = &rx;
  drop_next = 2;
  bool done = false;
  tx.write(2 * 1460, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(tx.stats().timeouts, 1u);  // classic behaviour: full RTO
}

TEST_F(TcpPipe, SurvivesHeavyPeriodicLoss) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  drop_every = 17;
  bool done = false;
  tx.write(500'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rx.bytes_delivered(), 500'000u);
}

TEST_F(TcpPipe, LossReducesWindow) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  drop_next = 40;  // mid-transfer, with plenty of traffic behind it
  bool done = false;
  tx.write(2'000'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(tx.stats().fast_retransmits, 1u);
  // ssthresh was halved at the loss, so the final window is far below the
  // configured maximum it would have reached loss-free.
  EXPECT_LT(tx.cwnd(), TcpConfig{}.max_cwnd_bytes);
}

TEST_F(TcpPipe, EcnHalvesOncePerWindow) {
  TcpConfig cfg = fast_cfg();
  cfg.ecn = true;
  TcpSender tx(*a, tuple(1, 2), cfg);
  TcpReceiver rx(*b, tuple(1, 2).reversed(), cfg);
  a_endpoint = &tx;
  b_endpoint = &rx;
  mark_all_data = true;  // every data packet is CE-marked
  bool done = false;
  tx.write(2'000'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(tx.stats().ecn_reductions, 1u);
  // Sustained marking pins cwnd at its 2-MSS floor, so "once per window"
  // means at most one reduction per ~2 data packets — but never one per ACK.
  EXPECT_LT(tx.stats().ecn_reductions,
            static_cast<std::uint64_t>(data_seen) / 2 + 2);
  EXPECT_LE(tx.cwnd(), 4u * TcpConfig{}.mss);  // pinned near the floor
}

TEST_F(TcpPipe, NoEcnReactionWhenDisabled) {
  TcpConfig cfg = fast_cfg();
  cfg.ecn = false;
  TcpSender tx(*a, tuple(1, 2), cfg);
  TcpReceiver rx(*b, tuple(1, 2).reversed(), cfg);
  a_endpoint = &tx;
  b_endpoint = &rx;
  mark_all_data = true;
  tx.write(500'000, nullptr);
  sim.run(sim::milliseconds(5));
  EXPECT_EQ(tx.stats().ecn_reductions, 0u);
}

TEST_F(TcpPipe, DctcpScalesWithMarkingFraction) {
  TcpConfig cfg = fast_cfg();
  cfg.dctcp = true;
  TcpSender tx(*a, tuple(1, 2), cfg);
  TcpReceiver rx(*b, tuple(1, 2).reversed(), cfg);
  a_endpoint = &tx;
  b_endpoint = &rx;
  bool done = false;
  tx.write(2'000'000, [&](sim::Time) { done = true; });
  mark_all_data = true;
  sim.run();
  EXPECT_TRUE(done);
  // With every packet marked, DCTCP's alpha goes to ~1, so reductions are
  // steady but the transfer still completes.
  EXPECT_GE(tx.stats().ecn_reductions, 2u);
}

TEST_F(TcpPipe, MultipleJobsCompleteInOrder) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  std::vector<int> completed;
  tx.write(10'000, [&](sim::Time) { completed.push_back(1); });
  tx.write(20'000, [&](sim::Time) { completed.push_back(2); });
  tx.write(5'000, [&](sim::Time) { completed.push_back(3); });
  sim.run();
  EXPECT_EQ(completed, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(tx.idle());
}

TEST_F(TcpPipe, JobsQueueBehindEarlierJobs) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  sim::Time t1 = 0, t2 = 0;
  std::vector<int> order;
  tx.write(5'000'000, [&](sim::Time t) {
    t1 = t;
    order.push_back(1);
  });
  tx.write(1'000, [&](sim::Time t) {
    t2 = t;
    order.push_back(2);
  });
  sim.run();
  // The tiny job cannot finish before the elephant in front of it (the same
  // cumulative ACK may cover both, so equality is allowed).
  EXPECT_GE(t2, t1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GT(t1, 0);
}

TEST_F(TcpPipe, RttEstimateConverges) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  a_endpoint = &tx;
  b_endpoint = &rx;
  tx.write(500'000, nullptr);
  sim.run();
  // True RTT = 100us (+ delack worst case). srtt should land nearby.
  EXPECT_GT(tx.srtt(), 80 * sim::kMicrosecond);
  EXPECT_LT(tx.srtt(), 500 * sim::kMicrosecond);
}

TEST_F(TcpPipe, ReceiverCountsReorderEvents) {
  TcpConfig cfg = fast_cfg();
  TcpReceiver rx(*b, tuple(1, 2).reversed(), cfg);
  // Deliver two segments out of order directly.
  auto p2 = clove::testutil::make_data(tuple(1, 2), 1460, 1460);
  auto p1 = clove::testutil::make_data(tuple(1, 2), 0, 1460);
  b_endpoint = &rx;
  rx.on_packet(std::move(p2));
  EXPECT_EQ(rx.reorder_events(), 1u);
  EXPECT_EQ(rx.bytes_delivered(), 0u);
  rx.on_packet(std::move(p1));
  EXPECT_EQ(rx.bytes_delivered(), 2920u);
}

TEST_F(TcpPipe, ReceiverHandlesDuplicates) {
  TcpReceiver rx(*b, tuple(1, 2).reversed(), fast_cfg());
  b_endpoint = &rx;
  rx.on_packet(clove::testutil::make_data(tuple(1, 2), 0, 1460));
  rx.on_packet(clove::testutil::make_data(tuple(1, 2), 0, 1460));  // dup
  EXPECT_EQ(rx.bytes_delivered(), 1460u);
}

TEST_F(TcpPipe, SenderIgnoresStrayNonAck) {
  TcpSender tx(*a, tuple(1, 2), fast_cfg());
  a_endpoint = &tx;
  auto p = clove::testutil::make_data(tuple(1, 2).reversed(), 0, 100);
  p->tcp.flags.ack = false;
  tx.on_packet(std::move(p));  // must not crash or advance state
  EXPECT_EQ(tx.snd_una(), 0u);
}

}  // namespace
}  // namespace clove::transport
