// Tests for path discovery: greedy disjoint selection (unit) and the full
// traceroute exchange over a real leaf-spine fabric (integration).

#include <gtest/gtest.h>

#include <set>

#include "lb/clove_ecn.hpp"
#include "net/topology.hpp"
#include "overlay/hypervisor.hpp"
#include "overlay/traceroute.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::overlay {
namespace {

PathInfo make_path(std::uint16_t port,
                   std::vector<std::pair<net::IpAddr, int>> hops) {
  PathInfo p;
  p.port = port;
  for (auto [node, ingress] : hops) p.hops.push_back(PathHop{node, ingress});
  return p;
}

TEST(PathInfo, SignatureStable) {
  auto a = make_path(1, {{10, 0}, {20, 1}, {30, 0}});
  auto b = make_path(2, {{10, 0}, {20, 1}, {30, 0}});
  auto c = make_path(3, {{10, 0}, {21, 1}, {30, 0}});
  EXPECT_EQ(a.signature(), b.signature());  // port-independent
  EXPECT_NE(a.signature(), c.signature());
}

TEST(PathInfo, SignatureDistinguishesParallelLinks) {
  // Same node sequence, different ingress interfaces => different links.
  auto a = make_path(1, {{10, 0}, {20, 0}, {30, 0}});
  auto b = make_path(2, {{10, 0}, {20, 1}, {30, 0}});
  EXPECT_NE(a.signature(), b.signature());
}

TEST(PathInfo, SharedLinksCountsInterfaceHops) {
  auto a = make_path(1, {{10, 0}, {20, 1}, {30, 0}});
  auto b = make_path(2, {{10, 0}, {20, 1}, {31, 0}});  // shares 2 links
  auto c = make_path(3, {{11, 0}, {21, 1}, {30, 1}});  // disjoint
  EXPECT_EQ(a.shared_links(b), 2);
  EXPECT_EQ(a.shared_links(c), 0);
  EXPECT_EQ(a.shared_links(a), 3);
}

TEST(SelectDisjoint, DeduplicatesSamePath) {
  std::vector<PathInfo> cands;
  for (std::uint16_t p = 0; p < 8; ++p) {
    cands.push_back(make_path(p, {{1, 0}, {2, 0}, {9, 0}}));
  }
  auto sel = TracerouteDaemon::select_disjoint(cands, 4);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].port, 0);  // lowest port kept
}

TEST(SelectDisjoint, PrefersDisjointPaths) {
  // 2 spines x 2 spine-ingresses (parallel uplinks): 4 link-distinct paths
  // plus duplicates; greedy should end up with 4 distinct signatures.
  std::vector<PathInfo> cands;
  std::uint16_t port = 100;
  for (int spine : {20, 21}) {
    for (int ingress : {0, 1}) {
      for (int dup = 0; dup < 2; ++dup) {
        cands.push_back(make_path(
            port++, {{10, 0},
                     {static_cast<net::IpAddr>(spine), ingress},
                     {200, ingress},
                     {9, 0}}));
      }
    }
  }
  auto sel = TracerouteDaemon::select_disjoint(cands, 4);
  ASSERT_EQ(sel.size(), 4u);
  std::set<std::string> sigs;
  for (const auto& p : sel) sigs.insert(p.signature());
  EXPECT_EQ(sigs.size(), 4u);
}

TEST(SelectDisjoint, RespectsK) {
  std::vector<PathInfo> cands;
  for (std::uint16_t p = 0; p < 10; ++p) {
    cands.push_back(
        make_path(p, {{static_cast<net::IpAddr>(100 + p), 0}, {9, 0}}));
  }
  EXPECT_EQ(TracerouteDaemon::select_disjoint(cands, 3).size(), 3u);
  EXPECT_EQ(TracerouteDaemon::select_disjoint(cands, 100).size(), 10u);
}

TEST(SelectDisjoint, EmptyInput) {
  EXPECT_TRUE(TracerouteDaemon::select_disjoint({}, 4).empty());
}

// ---------------------------------------------------------------------------
// End-to-end discovery on the fabric
// ---------------------------------------------------------------------------

class DiscoveryFixture : public ::testing::Test {
 protected:
  void build(bool fail_link = false) {
    topo = std::make_unique<net::Topology>(sim);
    net::LeafSpineConfig cfg;
    cfg.hosts_per_leaf = 2;
    fabric = net::build_leaf_spine(
        *topo, cfg,
        [this](net::Topology& t, const std::string& name, int) -> net::Node* {
          HypervisorConfig h;
          h.discovery.probe_interval = 100 * sim::kMillisecond;
          h.discovery.probe_timeout = 5 * sim::kMillisecond;
          return t.add_host<Hypervisor>(name, sim, h,
                                        std::make_unique<lb::CloveEcnPolicy>());
        });
    if (fail_link) topo->fail_connection(fabric.fabric_links[1][1][0]);
    src = static_cast<Hypervisor*>(fabric.hosts_by_leaf[0][0]);
    dst = static_cast<Hypervisor*>(fabric.hosts_by_leaf[1][0]);
  }

  sim::Simulator sim;
  std::unique_ptr<net::Topology> topo;
  net::LeafSpine fabric;
  Hypervisor* src{nullptr};
  Hypervisor* dst{nullptr};
};

TEST_F(DiscoveryFixture, FindsFourDisjointPaths) {
  build();
  src->start_discovery({dst->ip()});
  sim.run(sim::milliseconds(10));
  const PathSet* ps = src->discovery().paths(dst->ip());
  ASSERT_NE(ps, nullptr);
  EXPECT_EQ(ps->size(), 4u);
  // All four paths: leaf -> spine -> leaf -> dst (3 switch hops + dst).
  std::set<std::string> sigs;
  for (const auto& p : ps->paths) {
    EXPECT_EQ(p.hops.size(), 4u);
    EXPECT_EQ(p.hops.back().node, dst->ip());
    sigs.insert(p.signature());
  }
  EXPECT_EQ(sigs.size(), 4u);
}

TEST_F(DiscoveryFixture, DiscoveredPortsMatchActualEcmpPaths) {
  build();
  src->start_discovery({dst->ip()});
  sim.run(sim::milliseconds(10));
  const PathSet* ps = src->discovery().paths(dst->ip());
  ASSERT_NE(ps, nullptr);
  // Verify against ground truth: replay each discovered port through the
  // switches' actual hash functions.
  for (const auto& path : ps->paths) {
    net::FiveTuple t{src->ip(), dst->ip(), path.port, kSttPort,
                     net::Proto::kStt};
    net::Switch* leaf = fabric.leaves[0];
    const auto* r1 = leaf->route(dst->ip());
    ASSERT_NE(r1, nullptr);
    net::Link* up = leaf->port(
        (*r1)[static_cast<std::size_t>(leaf->ecmp_port(t, r1->size()))]);
    EXPECT_EQ(up->dst()->ip(), path.hops[1].node) << "spine hop mismatch";
  }
}

TEST_F(DiscoveryFixture, AsymmetricTopologyStillFindsFourPortsThreeDisjoint) {
  build(/*fail_link=*/true);
  src->start_discovery({dst->ip()});
  sim.run(sim::milliseconds(10));
  const PathSet* ps = src->discovery().paths(dst->ip());
  ASSERT_NE(ps, nullptr);
  // The fabric still has distinct paths; S2's surviving downlink is shared
  // by its two uplinks from L1. Expect at least 3 distinct signatures.
  std::set<std::string> sigs;
  for (const auto& p : ps->paths) sigs.insert(p.signature());
  EXPECT_GE(sigs.size(), 3u);
}

TEST_F(DiscoveryFixture, PeriodicReprobeAdaptsToFailure) {
  build();
  src->start_discovery({dst->ip()});
  sim.run(sim::milliseconds(10));
  ASSERT_NE(src->discovery().paths(dst->ip()), nullptr);
  const int rounds_before = src->discovery().rounds_completed();

  // Fail a link mid-run; the next periodic round must produce paths that
  // avoid the dead link.
  topo->fail_connection(fabric.fabric_links[1][1][0]);
  sim.run(sim::milliseconds(400));
  EXPECT_GT(src->discovery().rounds_completed(), rounds_before);
  const PathSet* ps = src->discovery().paths(dst->ip());
  ASSERT_NE(ps, nullptr);
  // No discovered path may claim a hop sequence using the failed link
  // (S2 -> L2 dead direction would strand the probe, so such ports cannot
  // complete a trace).
  for (const auto& p : ps->paths) {
    EXPECT_EQ(p.hops.back().node, dst->ip());
  }
}

TEST_F(DiscoveryFixture, ProbeOverheadIsBounded) {
  build();
  src->start_discovery({dst->ip()});
  sim.run(sim::milliseconds(10));
  // One round: sample_ports * max_ttl probes.
  const auto& cfg = src->config().discovery;
  EXPECT_LE(src->discovery().probes_sent(),
            static_cast<std::uint64_t>(cfg.sample_ports) *
                static_cast<std::uint64_t>(cfg.max_ttl));
}

TEST_F(DiscoveryFixture, NoDiscoveryWithoutStart) {
  build();
  sim.run(sim::milliseconds(10));
  EXPECT_EQ(src->discovery().paths(dst->ip()), nullptr);
  EXPECT_EQ(src->discovery().probes_sent(), 0u);
}

}  // namespace
}  // namespace clove::overlay
