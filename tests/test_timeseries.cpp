// Tests for the TimeSeries telemetry collector.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"

namespace clove::stats {
namespace {

TEST(TimeSeries, SamplesAtInterval) {
  sim::Simulator sim;
  double value = 0.0;
  TimeSeries ts(sim, "v", [&] { return value; }, sim::milliseconds(10));
  ts.start();
  sim.schedule_at(sim::milliseconds(25), [&] { value = 5.0; });
  sim.run(sim::milliseconds(55));
  // Samples at 10, 20, 30, 40, 50 ms.
  ASSERT_EQ(ts.points().size(), 5u);
  EXPECT_DOUBLE_EQ(ts.points()[0].second, 0.0);
  EXPECT_DOUBLE_EQ(ts.points()[2].second, 5.0);
  EXPECT_DOUBLE_EQ(ts.last(), 5.0);
  EXPECT_DOUBLE_EQ(ts.max(), 5.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
}

TEST(TimeSeries, StopEndsSampling) {
  sim::Simulator sim;
  TimeSeries ts(sim, "v", [] { return 1.0; }, sim::milliseconds(10));
  ts.start();
  sim.schedule_at(sim::milliseconds(35), [&] { ts.stop(); });
  sim.run(sim::milliseconds(100));
  EXPECT_EQ(ts.points().size(), 3u);
}

TEST(TimeSeries, MeanBetweenWindows) {
  sim::Simulator sim;
  double v = 1.0;
  TimeSeries ts(sim, "v", [&] { return v; }, sim::milliseconds(10));
  ts.start();
  sim.schedule_at(sim::milliseconds(45), [&] { v = 3.0; });
  sim.run(sim::milliseconds(95));
  EXPECT_DOUBLE_EQ(ts.mean_between(0, sim::milliseconds(45)), 1.0);
  EXPECT_DOUBLE_EQ(
      ts.mean_between(sim::milliseconds(45), sim::milliseconds(100)), 3.0);
}

TEST(TimeSeriesSet, CsvExport) {
  sim::Simulator sim;
  TimeSeriesSet set(sim);
  set.add("a", [] { return 1.0; }, sim::milliseconds(10));
  set.add("b", [] { return 2.0; }, sim::milliseconds(10));
  set.start_all();
  sim.run(sim::milliseconds(30));
  const std::string csv = set.to_csv();
  EXPECT_NE(csv.find("time_ms,a,b"), std::string::npos);
  EXPECT_NE(csv.find("10.000,1,2"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3 rows
}

TEST(TimeSeriesSet, FindByName) {
  sim::Simulator sim;
  TimeSeriesSet set(sim);
  set.add("x", [] { return 0.0; }, sim::milliseconds(1));
  EXPECT_NE(set.find("x"), nullptr);
  EXPECT_EQ(set.find("y"), nullptr);
  EXPECT_EQ(set.size(), 1u);
}

TEST(TimeSeriesSet, EmptyCsvHasHeaderOnly) {
  sim::Simulator sim;
  TimeSeriesSet set(sim);
  EXPECT_EQ(set.to_csv(), "time_ms\n");
}

TEST(TimeSeriesSet, CsvPadsShorterSeriesWithZero) {
  // Series started late have fewer points than the anchor (first) series;
  // rows beyond their length emit 0 rather than misaligning columns.
  sim::Simulator sim;
  TimeSeriesSet set(sim);
  TimeSeries& a = set.add("a", [] { return 1.0; }, sim::milliseconds(10));
  TimeSeries& late = set.add("late", [] { return 2.0; }, sim::milliseconds(10));
  a.start();
  sim.schedule_at(sim::milliseconds(15), [&] { late.start(); });
  sim.run(sim::milliseconds(35));
  // a samples at 10, 20, 30; late samples at 25 and 35.
  ASSERT_EQ(a.points().size(), 3u);
  ASSERT_EQ(late.points().size(), 2u);
  const std::string csv = set.to_csv();
  EXPECT_NE(csv.find("10.000,1,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("20.000,1,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("30.000,1,0"), std::string::npos) << csv;
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3 rows
}

TEST(TimeSeriesSet, CsvRowCountFollowsAnchorSeries) {
  // The anchor (first-added) series defines the row set: a longer second
  // series is truncated to the anchor's timestamps.
  sim::Simulator sim;
  TimeSeriesSet set(sim);
  TimeSeries& a = set.add("a", [] { return 1.0; }, sim::milliseconds(20));
  TimeSeries& b = set.add("b", [] { return 2.0; }, sim::milliseconds(10));
  a.start();
  b.start();
  sim.run(sim::milliseconds(45));
  ASSERT_EQ(a.points().size(), 2u);
  ASSERT_EQ(b.points().size(), 4u);
  const std::string csv = set.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(TimeSeries, EmptySeriesIsSafe) {
  // Never started (or stopped before the first tick): every aggregate must
  // degrade to zero instead of reading past an empty vector.
  sim::Simulator sim;
  TimeSeries ts(sim, "v", [] { return 7.0; }, sim::milliseconds(10));
  sim.run(sim::milliseconds(50));
  EXPECT_TRUE(ts.points().empty());
  EXPECT_DOUBLE_EQ(ts.last(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(0, sim::kSecond), 0.0);
}

TEST(TimeSeries, SingleSampleAggregates) {
  sim::Simulator sim;
  TimeSeries ts(sim, "v", [] { return 3.5; }, sim::milliseconds(10));
  ts.start();
  sim.schedule_at(sim::milliseconds(15), [&] { ts.stop(); });
  sim.run(sim::milliseconds(50));
  ASSERT_EQ(ts.points().size(), 1u);
  EXPECT_DOUBLE_EQ(ts.last(), 3.5);
  EXPECT_DOUBLE_EQ(ts.max(), 3.5);
  EXPECT_DOUBLE_EQ(ts.mean(), 3.5);
  // Half-open window semantics around the lone sample at t=10ms.
  EXPECT_DOUBLE_EQ(ts.mean_between(0, sim::milliseconds(11)), 3.5);
  EXPECT_DOUBLE_EQ(ts.mean_between(sim::milliseconds(10), sim::kSecond), 3.5);
  EXPECT_DOUBLE_EQ(ts.mean_between(0, sim::milliseconds(10)), 0.0);
}

TEST(TimeSeries, RestartRearmsInsteadOfDuplicating) {
  // start() on an already-running series re-arms the timer; a restart at
  // the sampling instant itself must not double-record that timestamp.
  sim::Simulator sim;
  TimeSeries ts(sim, "v", [] { return 1.0; }, sim::milliseconds(10));
  ts.start();
  sim.schedule_at(sim::milliseconds(15), [&] { ts.start(); });
  sim.run(sim::milliseconds(30));
  // The restart cancels the pending t=20ms firing: samples land at 10 and
  // 25 ms — never two at one timestamp from a single series.
  ASSERT_EQ(ts.points().size(), 2u);
  EXPECT_EQ(ts.points()[0].first, sim::milliseconds(10));
  EXPECT_EQ(ts.points()[1].first, sim::milliseconds(25));
}

TEST(TimeSeriesSet, DuplicateNamesAndTimestampsKeepBothColumns) {
  // Two series can legitimately collide on both name and timestamps — e.g.
  // parallel fabric links share a display name and all flight-watch series
  // share one sampling interval. The CSV must keep both columns (in add
  // order) and pair duplicate timestamps row-for-row; find() resolves the
  // name to the first-added series.
  sim::Simulator sim;
  TimeSeriesSet set(sim);
  TimeSeries& first = set.add("q", [] { return 1.0; }, sim::milliseconds(10));
  set.add("q", [] { return 2.0; }, sim::milliseconds(10));
  set.start_all();
  sim.run(sim::milliseconds(25));
  ASSERT_EQ(first.points().size(), 2u);
  ASSERT_EQ(set.at(1).points().size(), 2u);
  EXPECT_EQ(first.points()[0].first, set.at(1).points()[0].first);
  EXPECT_EQ(set.find("q"), &first);
  const std::string csv = set.to_csv();
  EXPECT_NE(csv.find("time_ms,q,q"), std::string::npos) << csv;
  EXPECT_NE(csv.find("10.000,1,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("20.000,1,2"), std::string::npos) << csv;
}

}  // namespace
}  // namespace clove::stats
