// Tests for the k-ary fat-tree builder and Clove's topology-agnosticism
// claim (§3.1: "works with any topologies with ECMP-based layer-3 routing").

#include <gtest/gtest.h>

#include <set>

#include "lb/clove_ecn.hpp"
#include "net/fat_tree.hpp"
#include "overlay/hypervisor.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::net {
namespace {

using clove::testutil::SinkNode;
using clove::testutil::make_data;
using clove::testutil::tuple;

FatTree build_sinks(Topology& topo, int k = 4) {
  FatTreeConfig cfg;
  cfg.k = k;
  return build_fat_tree(topo, cfg,
                        [](Topology& t, const std::string& name, int) -> Node* {
                          return t.add_host<SinkNode>(name);
                        });
}

TEST(FatTree, K4Shape) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTree ft = build_sinks(topo);
  EXPECT_EQ(ft.n_pods(), 4);
  EXPECT_EQ(ft.core.size(), 4u);
  EXPECT_EQ(ft.edge_by_pod[0].size(), 2u);
  EXPECT_EQ(ft.agg_by_pod[0].size(), 2u);
  EXPECT_EQ(ft.host_count(), 16u);
  EXPECT_EQ(ft.cross_pod_paths(), 4);
  // Each edge switch: 2 agg uplinks + 2 host ports.
  EXPECT_EQ(ft.edge_by_pod[0][0]->port_count(), 4);
  // Each agg: 2 edge downlinks + 2 core uplinks.
  EXPECT_EQ(ft.agg_by_pod[0][0]->port_count(), 4);
  // Each core: one link per pod.
  EXPECT_EQ(ft.core[0]->port_count(), 4);
}

TEST(FatTree, K6Shape) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTree ft = build_sinks(topo, 6);
  EXPECT_EQ(ft.core.size(), 9u);
  EXPECT_EQ(ft.host_count(), 54u);
  EXPECT_EQ(ft.cross_pod_paths(), 9);
}

TEST(FatTree, CrossPodDelivery) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTree ft = build_sinks(topo);
  auto* src = static_cast<SinkNode*>(ft.hosts_by_pod[0][0]);
  auto* dst = static_cast<SinkNode*>(ft.hosts_by_pod[3][3]);
  src->port(0)->enqueue(make_data(tuple(src->ip(), dst->ip()), 0, 100));
  sim.run();
  EXPECT_EQ(dst->received.size(), 1u);
}

TEST(FatTree, IntraPodStaysLocal) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTree ft = build_sinks(topo);
  // Hosts under the same edge switch: route must be 2 hops (host-edge-host);
  // core switches must forward nothing.
  auto* src = static_cast<SinkNode*>(ft.hosts_by_pod[1][0]);
  auto* dst = static_cast<SinkNode*>(ft.hosts_by_pod[1][1]);  // same edge
  src->port(0)->enqueue(make_data(tuple(src->ip(), dst->ip()), 0, 100));
  sim.run();
  ASSERT_EQ(dst->received.size(), 1u);
  EXPECT_EQ(dst->received[0]->ttl, 63);  // decremented exactly once
  for (Switch* c : ft.core) EXPECT_EQ(c->stats().forwarded, 0u);
}

TEST(FatTree, EcmpRouteWidths) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTree ft = build_sinks(topo);
  const IpAddr remote = ft.hosts_by_pod[2][0]->ip();
  // Edge switch in another pod: k/2 agg uplinks toward a remote pod.
  const auto* edge_route = ft.edge_by_pod[0][0]->route(remote);
  ASSERT_NE(edge_route, nullptr);
  EXPECT_EQ(edge_route->size(), 2u);
  // Agg switch: k/2 core uplinks.
  const auto* agg_route = ft.agg_by_pod[0][0]->route(remote);
  ASSERT_NE(agg_route, nullptr);
  EXPECT_EQ(agg_route->size(), 2u);
  // Core switch: exactly one downlink (the destination pod's agg).
  const auto* core_route = ft.core[0]->route(remote);
  ASSERT_NE(core_route, nullptr);
  EXPECT_EQ(core_route->size(), 1u);
}

TEST(FatTree, ManyFlowsUseAllCorePaths) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTree ft = build_sinks(topo);
  auto* src = static_cast<SinkNode*>(ft.hosts_by_pod[0][0]);
  auto* dst = static_cast<SinkNode*>(ft.hosts_by_pod[2][0]);
  for (int sp = 0; sp < 128; ++sp) {
    src->port(0)->enqueue(make_data(
        tuple(src->ip(), dst->ip(), static_cast<std::uint16_t>(1000 + sp)), 0,
        100));
  }
  sim.run();
  EXPECT_EQ(dst->received.size(), 128u);
  int cores_used = 0;
  for (Switch* c : ft.core) {
    if (c->stats().forwarded > 0) ++cores_used;
  }
  EXPECT_EQ(cores_used, 4);  // ECMP hashing spreads over all core switches
}

TEST(FatTree, LinkFailureReroutes) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTree ft = build_sinks(topo);
  // Fail agg A0.0's first core uplink; cross-pod traffic still delivers and
  // the agg's ECMP set toward remote pods shrinks.
  const IpAddr remote = ft.hosts_by_pod[1][0]->ip();
  const auto* before = ft.agg_by_pod[0][0]->route(remote);
  ASSERT_EQ(before->size(), 2u);
  // Find the agg->core link.
  Link* agg_core = nullptr;
  for (int p = 0; p < ft.agg_by_pod[0][0]->port_count(); ++p) {
    Link* l = ft.agg_by_pod[0][0]->port(p);
    for (Switch* c : ft.core) {
      if (l->dst() == c) {
        agg_core = l;
        break;
      }
    }
    if (agg_core) break;
  }
  ASSERT_NE(agg_core, nullptr);
  topo.fail_connection(agg_core);
  const auto* after = ft.agg_by_pod[0][0]->route(remote);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->size(), 1u);

  auto* src = static_cast<SinkNode*>(ft.hosts_by_pod[0][0]);
  auto* dst = static_cast<SinkNode*>(ft.hosts_by_pod[1][0]);
  for (int sp = 0; sp < 16; ++sp) {
    src->port(0)->enqueue(make_data(
        tuple(src->ip(), dst->ip(), static_cast<std::uint16_t>(2000 + sp)), 0,
        100));
  }
  sim.run();
  EXPECT_EQ(dst->received.size(), 16u);
}

// ---------------------------------------------------------------------------
// Clove on the fat-tree: the topology-agnosticism claim
// ---------------------------------------------------------------------------

TEST(FatTreeClove, DiscoveryFindsAllCrossPodPaths) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTreeConfig cfg;
  cfg.k = 4;
  FatTree ft = build_fat_tree(
      topo, cfg, [&sim](Topology& t, const std::string& name, int) -> Node* {
        overlay::HypervisorConfig h;
        h.discovery.probe_timeout = 5 * sim::kMillisecond;
        h.discovery.k_paths = 8;       // ask for more than exist
        h.discovery.sample_ports = 64; // cover all 4 paths w.h.p.
        h.discovery.max_ttl = 8;
        return t.add_host<overlay::Hypervisor>(
            name, sim, h, std::make_unique<lb::CloveEcnPolicy>());
      });
  auto* src = static_cast<overlay::Hypervisor*>(ft.hosts_by_pod[0][0]);
  auto* dst = static_cast<overlay::Hypervisor*>(ft.hosts_by_pod[2][1]);
  src->start_discovery({dst->ip()});
  sim.run(sim::milliseconds(10));
  const overlay::PathSet* ps = src->discovery().paths(dst->ip());
  ASSERT_NE(ps, nullptr);
  // 4 distinct cross-pod paths (one per core switch), each 6 hops:
  // edge-agg-core-agg-edge + destination.
  EXPECT_EQ(ps->size(), 4u);
  std::set<std::string> sigs;
  std::set<net::IpAddr> cores_seen;
  for (const auto& p : ps->paths) {
    EXPECT_EQ(p.hops.size(), 6u);
    sigs.insert(p.signature());
    cores_seen.insert(p.hops[2].node);  // the core hop
  }
  EXPECT_EQ(sigs.size(), 4u);
  EXPECT_EQ(cores_seen.size(), 4u);
}

TEST(FatTreeClove, TcpTransferAcrossPods) {
  sim::Simulator sim;
  Topology topo(sim);
  FatTreeConfig cfg;
  cfg.k = 4;
  FatTree ft = build_fat_tree(
      topo, cfg, [&sim](Topology& t, const std::string& name, int) -> Node* {
        overlay::HypervisorConfig h;
        h.discovery.probe_timeout = 5 * sim::kMillisecond;
        h.discovery.max_ttl = 8;
        return t.add_host<overlay::Hypervisor>(
            name, sim, h, std::make_unique<lb::CloveEcnPolicy>());
      });
  auto* src = static_cast<overlay::Hypervisor*>(ft.hosts_by_pod[0][0]);
  auto* dst = static_cast<overlay::Hypervisor*>(ft.hosts_by_pod[3][0]);
  src->start_discovery({dst->ip()});
  dst->start_discovery({src->ip()});

  transport::TcpConfig tcfg;
  tcfg.min_rto = 10 * sim::kMillisecond;
  tcfg.ecn = true;
  transport::TcpSender tx(
      *src, net::FiveTuple{src->ip(), dst->ip(), 9000, 80, net::Proto::kTcp},
      tcfg);
  src->register_endpoint(tx.tuple(), &tx);
  bool done = false;
  sim.schedule_at(sim::milliseconds(8),
                  [&] { tx.write(5'000'000, [&](sim::Time) { done = true; }); });
  sim.run(sim::seconds(30));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace clove::net
