// Tests for the receiver-side reorder (flowcell reassembly) buffer.

#include <gtest/gtest.h>

#include <vector>

#include "overlay/reorder_buffer.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::overlay {
namespace {

using clove::testutil::make_data;
using clove::testutil::tuple;

class ReorderTest : public ::testing::Test {
 protected:
  ReorderTest() {
    cfg.flush_timeout = 500 * sim::kMicrosecond;
    cfg.max_flow_bytes = 1 << 20;
    buf = std::make_unique<ReorderBuffer>(
        sim, cfg, [this](net::PacketPtr p) { delivered.push_back(p->tcp.seq); });
  }

  void offer(std::uint64_t seq, std::uint32_t len = 1000) {
    buf->offer(make_data(tuple(1, 2), seq, len));
  }

  sim::Simulator sim;
  ReorderConfig cfg;
  std::unique_ptr<ReorderBuffer> buf;
  std::vector<std::uint64_t> delivered;
};

TEST_F(ReorderTest, InOrderPassesThrough) {
  offer(0);
  offer(1000);
  offer(2000);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1000, 2000}));
  EXPECT_EQ(buf->packets_held(), 0u);
}

TEST_F(ReorderTest, HoldsOutOfOrderUntilGapFills) {
  offer(1000);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(buf->packets_held(), 1u);
  offer(0);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1000}));
}

TEST_F(ReorderTest, ReordersMultipleSegments) {
  offer(2000);
  offer(1000);
  offer(3000);
  EXPECT_TRUE(delivered.empty());
  offer(0);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1000, 2000, 3000}));
}

TEST_F(ReorderTest, TimeoutFlushesHeldPackets) {
  offer(1000);
  offer(2000);
  sim.run();  // the flush timer fires
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1000, 2000}));
}

TEST_F(ReorderTest, RetransmissionAfterFlushPassesThrough) {
  offer(1000);
  sim.run();  // flush advances next_seq past the gap
  ASSERT_EQ(delivered.size(), 1u);
  offer(0);  // the late retransmission of the gap
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1000, 0}));
}

TEST_F(ReorderTest, OverflowForcesFlush) {
  cfg.max_flow_bytes = 2500;
  buf = std::make_unique<ReorderBuffer>(
      sim, cfg, [this](net::PacketPtr p) { delivered.push_back(p->tcp.seq); });
  offer(1000);
  offer(2000);
  EXPECT_TRUE(delivered.empty());
  offer(3000);  // exceeds the cap -> forced flush
  EXPECT_EQ(delivered.size(), 3u);
  EXPECT_GE(buf->forced_flushes(), 1u);
}

TEST_F(ReorderTest, FlowsAreIndependent) {
  buf->offer(make_data(tuple(1, 2), 1000, 1000));  // held
  buf->offer(make_data(tuple(1, 3), 0, 1000));     // different flow, in order
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0}));
}

TEST_F(ReorderTest, DeliveryOrderIsBySequence) {
  offer(3000);
  offer(1000);
  offer(2000);
  sim.run();
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1000, 2000, 3000}));
}

TEST_F(ReorderTest, DuplicateOfDeliveredDataPassesThrough) {
  offer(0);
  offer(0);  // duplicate: seq <= next_seq, forwarded for the VM to judge
  EXPECT_EQ(delivered.size(), 2u);
}

}  // namespace
}  // namespace clove::overlay
