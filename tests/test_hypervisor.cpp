// Tests for the hypervisor vswitch datapath: encapsulation, feedback
// interception and relay, ECN masking, forged-ECE relay, non-overlay mode.

#include <gtest/gtest.h>

#include "lb/clove_ecn.hpp"
#include "lb/ecmp.hpp"
#include "net/topology.hpp"
#include "overlay/hypervisor.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::overlay {
namespace {

using clove::testutil::SinkNode;
using clove::testutil::make_data;
using clove::testutil::tuple;

/// Two hypervisors joined by one switch, so we can observe wire packets.
class HypPair : public ::testing::Test {
 protected:
  void build(HypervisorConfig acfg, std::unique_ptr<lb::Policy> apol,
             HypervisorConfig bcfg, std::unique_ptr<lb::Policy> bpol) {
    topo = std::make_unique<net::Topology>(sim);
    sw = topo->add_switch("sw");
    a = topo->add_host<Hypervisor>("a", sim, acfg, std::move(apol));
    b = topo->add_host<Hypervisor>("b", sim, bcfg, std::move(bpol));
    net::LinkConfig lc;
    lc.rate_bytes_per_sec = sim::gbps_to_bytes_per_sec(10);
    lc.propagation = 1 * sim::kMicrosecond;
    topo->connect(a, sw, lc);
    topo->connect(b, sw, lc);
    topo->compute_routes();
  }

  void build_default() {
    build(HypervisorConfig{}, std::make_unique<lb::EcmpPolicy>(),
          HypervisorConfig{}, std::make_unique<lb::EcmpPolicy>());
  }

  sim::Simulator sim;
  std::unique_ptr<net::Topology> topo;
  net::Switch* sw{nullptr};
  Hypervisor* a{nullptr};
  Hypervisor* b{nullptr};
};

TEST_F(HypPair, EncapsulatesOutgoingTenantTraffic) {
  build_default();
  auto pkt = make_data(tuple(a->ip(), b->ip()), 0, 1000);
  a->vm_send(std::move(pkt));
  sim.run();
  EXPECT_EQ(a->stats().encapped, 1u);
  EXPECT_EQ(b->stats().decapped, 1u);
}

TEST_F(HypPair, DeliveryAutoCreatesReceiverAndAcksFlowBack) {
  build_default();
  bool created = false;
  b->on_new_receiver = [&](transport::TcpReceiver&, const net::FiveTuple&) {
    created = true;
  };
  // A real sender endpoint on a:
  transport::TcpConfig tcfg;
  tcfg.min_rto = 10 * sim::kMillisecond;
  transport::TcpSender tx(*a, tuple(a->ip(), b->ip()), tcfg);
  a->register_endpoint(tx.tuple(), &tx);
  bool done = false;
  tx.write(100'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(created);
  EXPECT_TRUE(done);
}

TEST_F(HypPair, LocalDeliveryBypassesNetwork) {
  build_default();
  auto pkt = make_data(tuple(a->ip(), a->ip()), 0, 100);
  a->vm_send(std::move(pkt));
  EXPECT_EQ(a->stats().local_deliveries, 1u);
  EXPECT_EQ(a->stats().encapped, 0u);
}

TEST_F(HypPair, CloveSetsOuterEct) {
  build(HypervisorConfig{}, std::make_unique<lb::CloveEcnPolicy>(),
        HypervisorConfig{}, std::make_unique<lb::CloveEcnPolicy>());
  // Sniff at b: the packet must arrive with outer ECT (CE not set).
  auto pkt = make_data(tuple(a->ip(), b->ip()), 0, 1000);
  a->vm_send(std::move(pkt));
  sim.run();
  EXPECT_EQ(b->stats().decapped, 1u);
  EXPECT_EQ(b->stats().ce_intercepted, 0u);
}

TEST_F(HypPair, CeInterceptedMaskedAndRelayed) {
  build(HypervisorConfig{}, std::make_unique<lb::CloveEcnPolicy>(),
        HypervisorConfig{}, std::make_unique<lb::CloveEcnPolicy>());
  // Craft an encapsulated packet with CE set, as if marked by the fabric.
  auto pkt = make_data(tuple(a->ip(), b->ip()), 0, 1000);
  pkt->encap.present = true;
  pkt->encap.tuple = net::FiveTuple{a->ip(), b->ip(), 51000, kSttPort,
                                    net::Proto::kStt};
  pkt->encap.ecn.ect = true;
  pkt->encap.ecn.ce = true;
  b->receive(std::move(pkt), 0);
  EXPECT_EQ(b->stats().ce_intercepted, 1u);

  // The inner packet delivered to the VM must NOT carry CE (masking): the
  // auto-created receiver observed a clean packet — verify via the ACK it
  // sent back: no ECE echo.
  sim.run();
  // Feedback rides b's next packet toward a: send one.
  auto rev = make_data(tuple(b->ip(), a->ip()), 0, 100);
  b->vm_send(std::move(rev));
  sim.run();
  EXPECT_GE(b->stats().feedback_attached, 1u);
  EXPECT_GE(a->stats().feedback_received, 1u);
}

TEST_F(HypPair, FeedbackRelayIsRateLimited) {
  HypervisorConfig hc;
  hc.feedback_relay_interval = sim::seconds(1.0);  // very slow relay
  build(HypervisorConfig{}, std::make_unique<lb::CloveEcnPolicy>(), hc,
        std::make_unique<lb::CloveEcnPolicy>());
  // Many CE-marked arrivals on the same forward port...
  for (int i = 0; i < 10; ++i) {
    auto pkt = make_data(tuple(a->ip(), b->ip()), i * 1000, 1000);
    pkt->encap.present = true;
    pkt->encap.tuple = net::FiveTuple{a->ip(), b->ip(), 51000, kSttPort,
                                      net::Proto::kStt};
    pkt->encap.ecn.ect = true;
    pkt->encap.ecn.ce = true;
    b->receive(std::move(pkt), 0);
  }
  // ...and many reverse packets: only ONE should carry feedback within the
  // relay interval.
  for (int i = 0; i < 10; ++i) {
    b->vm_send(make_data(tuple(b->ip(), a->ip()), i * 100, 100));
  }
  sim.run();
  EXPECT_EQ(b->stats().feedback_attached, 1u);
}

TEST_F(HypPair, ForgedEceWhenAllPathsCongested) {
  // Give a's policy a path set and congest every path, then deliver an ACK
  // from b: it must arrive at the VM with ECE set.
  auto pol = std::make_unique<lb::CloveEcnPolicy>();
  lb::CloveEcnPolicy* clove = pol.get();
  build(HypervisorConfig{}, std::move(pol), HypervisorConfig{},
        std::make_unique<lb::CloveEcnPolicy>());

  PathSet ps;
  for (std::uint16_t i = 0; i < 2; ++i) {
    PathInfo info;
    info.port = static_cast<std::uint16_t>(50000 + i);
    info.hops = {{sw->ip(), static_cast<int>(i)}, {b->ip(), 0}};
    ps.paths.push_back(info);
  }
  clove->on_paths_updated(b->ip(), ps);
  net::CloveFeedback fb;
  fb.present = true;
  fb.ecn_set = true;
  fb.port = 50000;
  clove->on_feedback(b->ip(), fb, sim.now());
  fb.port = 50001;
  clove->on_feedback(b->ip(), fb, sim.now());
  ASSERT_TRUE(clove->all_paths_congested(b->ip(), sim.now()));

  // Register a sender on a and deliver an encapped ACK from b.
  transport::TcpConfig tcfg;
  tcfg.ecn = true;
  transport::TcpSender tx(*a, tuple(a->ip(), b->ip()), tcfg);
  a->register_endpoint(tx.tuple(), &tx);
  tx.write(200'000, nullptr);

  auto ack = net::make_packet();
  ack->inner = tuple(a->ip(), b->ip()).reversed();
  ack->tcp.flags.ack = true;
  ack->tcp.ack = 1460;
  ack->encap.present = true;
  ack->encap.tuple = net::FiveTuple{b->ip(), a->ip(), 50500, kSttPort,
                                    net::Proto::kStt};
  a->receive(std::move(ack), 0);
  EXPECT_EQ(a->stats().forged_ece, 1u);
  EXPECT_EQ(tx.stats().ecn_reductions, 1u);  // the VM throttled
}

TEST_F(HypPair, NoForgedEceWhenSomePathClear) {
  auto pol = std::make_unique<lb::CloveEcnPolicy>();
  lb::CloveEcnPolicy* clove = pol.get();
  build(HypervisorConfig{}, std::move(pol), HypervisorConfig{},
        std::make_unique<lb::CloveEcnPolicy>());
  PathSet ps;
  for (std::uint16_t i = 0; i < 2; ++i) {
    PathInfo info;
    info.port = static_cast<std::uint16_t>(50000 + i);
    info.hops = {{sw->ip(), static_cast<int>(i)}, {b->ip(), 0}};
    ps.paths.push_back(info);
  }
  clove->on_paths_updated(b->ip(), ps);
  net::CloveFeedback fb;
  fb.present = true;
  fb.ecn_set = true;
  fb.port = 50000;
  clove->on_feedback(b->ip(), fb, sim.now());

  auto ack = net::make_packet();
  ack->inner = tuple(a->ip(), b->ip()).reversed();
  ack->tcp.flags.ack = true;
  ack->encap.present = true;
  ack->encap.tuple = net::FiveTuple{b->ip(), a->ip(), 50500, kSttPort,
                                    net::Proto::kStt};
  a->receive(std::move(ack), 0);
  EXPECT_EQ(a->stats().forged_ece, 0u);
}

TEST_F(HypPair, IntUtilizationRelayed) {
  build(HypervisorConfig{}, std::make_unique<lb::CloveEcnPolicy>(),
        HypervisorConfig{}, std::make_unique<lb::CloveEcnPolicy>());
  auto pkt = make_data(tuple(a->ip(), b->ip()), 0, 1000);
  pkt->encap.present = true;
  pkt->encap.tuple = net::FiveTuple{a->ip(), b->ip(), 51000, kSttPort,
                                    net::Proto::kStt};
  pkt->int_stack.enabled = true;
  pkt->int_stack.push(0.3f);
  pkt->int_stack.push(0.8f);
  b->receive(std::move(pkt), 0);
  b->vm_send(make_data(tuple(b->ip(), a->ip()), 0, 100));
  sim.run();
  EXPECT_GE(b->stats().feedback_attached, 1u);
}

TEST_F(HypPair, StrayAckWithoutEndpointDropped) {
  build_default();
  auto ack = net::make_packet();
  ack->inner = tuple(b->ip(), a->ip());
  ack->tcp.flags.ack = true;
  ack->payload = 0;
  a->receive(std::move(ack), 0);
  EXPECT_EQ(a->stats().no_endpoint_drops, 1u);
}

// ---------------------------------------------------------------------------
// Non-overlay mode (§7)
// ---------------------------------------------------------------------------

TEST_F(HypPair, NonOverlayRewritesAndRestoresPort) {
  HypervisorConfig no;
  no.overlay = false;
  build(no, std::make_unique<lb::EcmpPolicy>(), no,
        std::make_unique<lb::EcmpPolicy>());

  transport::TcpConfig tcfg;
  tcfg.min_rto = 10 * sim::kMillisecond;
  transport::TcpSender tx(*a, tuple(a->ip(), b->ip(), 1234), tcfg);
  a->register_endpoint(tx.tuple(), &tx);
  bool done = false;
  tx.write(50'000, [&](sim::Time) { done = true; });
  sim.run();
  // The transfer completes end to end: the destination restored the source
  // port before endpoint lookup, and ACKs found their way back the same way.
  EXPECT_TRUE(done);
  EXPECT_EQ(a->stats().encapped, 0u);
}

TEST_F(HypPair, NonOverlayDataPathDoesNotEncapsulate) {
  HypervisorConfig no;
  no.overlay = false;
  build(no, std::make_unique<lb::EcmpPolicy>(), no,
        std::make_unique<lb::EcmpPolicy>());
  a->vm_send(make_data(tuple(a->ip(), b->ip(), 1234), 0, 1000));
  sim.run();
  EXPECT_EQ(b->stats().decapped, 0u);
}

}  // namespace
}  // namespace clove::overlay
