// Tests for clove::prof, the engine self-profiler (DESIGN.md §10).
//
// The hot-path accounting (on_enter/on_exit) is tested with injected elapsed
// times — on_exit takes the duration as a parameter, so nesting, recursion,
// and merge arithmetic are exact, not timing-dependent. The determinism
// claims (profiling never perturbs simulation results; parallel merge is
// order-independent) are pinned against real experiments via the same
// hex-float digest idiom as test_parallel_runner.cpp.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel_runner.hpp"
#include "prof/prof.hpp"
#include "workload/client_server.hpp"

namespace clove::prof {
namespace {

// --- scope accounting ------------------------------------------------------

TEST(ProfProfiler, SelfTimeExcludesChildren) {
  Profiler p(Mode::kSummary);
  ASSERT_TRUE(p.on_enter(kDispatch));
  ASSERT_TRUE(p.on_enter(kSwitchForward));
  p.on_exit(300);                       // child: 300 ns
  p.on_exit(1000);                      // parent: 1000 ns inclusive

  EXPECT_EQ(p.stat(kSwitchForward).count, 1u);
  EXPECT_EQ(p.stat(kSwitchForward).self_ns, 300u);
  EXPECT_EQ(p.stat(kSwitchForward).total_ns, 300u);
  EXPECT_EQ(p.stat(kDispatch).count, 1u);
  EXPECT_EQ(p.stat(kDispatch).self_ns, 700u);   // 1000 - 300
  EXPECT_EQ(p.stat(kDispatch).total_ns, 1000u);
  EXPECT_EQ(p.depth(), 0);
}

TEST(ProfProfiler, RecursionCountsTotalOnlyAtOutermostFrame) {
  // Switch::send_probe_reply re-enters forward(): kSwitchForward nests in
  // itself. Inclusive time must count the outer frame only, or fractions
  // would exceed the wall clock.
  Profiler p(Mode::kSummary);
  ASSERT_TRUE(p.on_enter(kSwitchForward));
  ASSERT_TRUE(p.on_enter(kSwitchForward));
  p.on_exit(400);
  p.on_exit(1000);

  EXPECT_EQ(p.stat(kSwitchForward).count, 2u);
  EXPECT_EQ(p.stat(kSwitchForward).self_ns, 400u + 600u);
  EXPECT_EQ(p.stat(kSwitchForward).total_ns, 1000u);  // outer frame only
}

TEST(ProfProfiler, ClockSkewNeverUnderflowsSelfTime) {
  // A parent whose measured elapsed is smaller than the children's sum
  // (coarse clock) must clamp self to zero, not wrap.
  Profiler p(Mode::kSummary);
  ASSERT_TRUE(p.on_enter(kDispatch));
  ASSERT_TRUE(p.on_enter(kLinkTx));
  p.on_exit(500);
  p.on_exit(400);  // less than the child's 500
  EXPECT_EQ(p.stat(kDispatch).self_ns, 0u);
}

TEST(ProfProfiler, StackOverflowIsCountedAndScopeBecomesNoop) {
  Profiler p(Mode::kSummary);
  for (int i = 0; i < Profiler::kMaxDepth; ++i) {
    ASSERT_TRUE(p.on_enter(kOther));
  }
  EXPECT_FALSE(p.on_enter(kOther));  // 65th frame rejected
  EXPECT_EQ(p.overflow(), 1u);
  for (int i = 0; i < Profiler::kMaxDepth; ++i) p.on_exit(1);
  EXPECT_EQ(p.depth(), 0);
  EXPECT_EQ(p.stat(kOther).count, static_cast<std::uint64_t>(Profiler::kMaxDepth));
}

TEST(ProfProfiler, MergeIsCommutativeAndExact) {
  auto fill_a = [](Profiler& p) {
    p.on_enter(kDispatch);
    p.on_enter(kTransport);
    p.on_exit(100);
    p.on_exit(250);
    p.note_simulator(1000, 32, 48);
    p.note_pool(5, 95);
    p.note_table("t", TableStats{10, 64, 1, 7, 3});
  };
  auto fill_b = [](Profiler& p) {
    p.on_enter(kDispatch);
    p.on_exit(50);
    p.note_simulator(2000, 64, 40);
    p.note_pool(1, 9);
    p.note_table("t", TableStats{6, 64, 0, 2, 5});
  };

  Profiler ab(Mode::kFull), ba(Mode::kFull), a(Mode::kFull), b(Mode::kFull);
  fill_a(a);
  fill_b(b);
  fill_a(ab);
  ab.merge_from(b);
  fill_b(ba);
  ba.merge_from(a);

  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.folded(), ba.folded());
  EXPECT_EQ(ab.stat(kDispatch).count, 2u);
  EXPECT_EQ(ab.stat(kDispatch).self_ns, (250u - 100u) + 50u);
  EXPECT_EQ(ab.events(), 3000u);
  EXPECT_EQ(ab.queue_hwm(), 64u);        // max-merged
  EXPECT_EQ(ab.slab_capacity(), 48u);    // max-merged
}

TEST(ProfProfiler, TopSinksOrderedByDescendingSelfTime) {
  Profiler p(Mode::kSummary);
  auto one = [&p](ScopeId id, std::uint64_t ns) {
    p.on_enter(id);
    p.on_exit(ns);
  };
  one(kLinkTx, 50);
  one(kTransport, 500);
  one(kPolicy, 200);
  const auto sinks = p.top_sinks();
  ASSERT_EQ(sinks.size(), 3u);
  EXPECT_EQ(sinks[0], kTransport);
  EXPECT_EQ(sinks[1], kPolicy);
  EXPECT_EQ(sinks[2], kLinkTx);
}

TEST(ProfProfiler, FoldedPathsNestAndSort) {
  Profiler p(Mode::kFull);
  p.on_enter(kDispatch);
  p.on_enter(kLinkDeliver);
  p.on_enter(kSwitchForward);
  p.on_exit(10);
  p.on_exit(30);
  p.on_exit(100);
  const std::string f = p.folded();
  EXPECT_NE(f.find("clove;dispatch 70\n"), std::string::npos);
  EXPECT_NE(f.find("clove;dispatch;link_deliver 20\n"), std::string::npos);
  EXPECT_NE(f.find("clove;dispatch;link_deliver;switch_forward 10\n"),
            std::string::npos);
  // Summary mode records no paths.
  Profiler s(Mode::kSummary);
  s.on_enter(kDispatch);
  s.on_exit(5);
  EXPECT_TRUE(s.folded().empty());
}

// --- histogram -------------------------------------------------------------

TEST(ProfHistogram, BucketEdges) {
  // bucket 0: ns == 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index((1ull << 20)), 21);
  EXPECT_EQ(LatencyHistogram::bucket_index((1ull << 20) - 1), 20);
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ull),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_lower(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_lower(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_lower(10), 512u);
}

TEST(ProfHistogram, PercentilesAndMerge) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(50.0), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.observe(100);  // all in bucket [64,128)
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 10000u);

  LatencyHistogram g;
  for (int i = 0; i < 100; ++i) g.observe(100000);
  g.merge_from(h);
  EXPECT_EQ(g.count(), 200u);
  // With half the mass at ~100 and half at ~100k, p25 lands in the low
  // bucket and p75 in the high one.
  EXPECT_LE(g.percentile(25.0), 128.0);
  EXPECT_GE(g.percentile(75.0), 65536.0);
}

// --- installation / env ----------------------------------------------------

TEST(ProfScope, NoProfilerMeansNoop) {
  ASSERT_EQ(active(), nullptr);
  {
    CLOVE_PROF_SCOPE(kDispatch);  // must not crash or record anywhere
  }
  Profiler p(Mode::kSummary);
  {
    InstallGuard g(&p);
    CLOVE_PROF_SCOPE(kDispatch);
  }
  EXPECT_EQ(active(), nullptr);  // uninstalled on guard exit
  EXPECT_EQ(p.stat(kDispatch).count, 1u);
}

TEST(ProfEnv, ModeParsing) {
  ASSERT_EQ(setenv("CLOVE_PROF", "summary", 1), 0);
  EXPECT_EQ(mode_from_env(), Mode::kSummary);
  ASSERT_EQ(setenv("CLOVE_PROF", "full", 1), 0);
  EXPECT_EQ(mode_from_env(), Mode::kFull);
  ASSERT_EQ(setenv("CLOVE_PROF", "off", 1), 0);
  EXPECT_EQ(mode_from_env(), Mode::kOff);
  ASSERT_EQ(setenv("CLOVE_PROF", "bogus", 1), 0);
  EXPECT_EQ(mode_from_env(), Mode::kOff);  // unknown reads as off
  unsetenv("CLOVE_PROF");
  EXPECT_EQ(mode_from_env(), Mode::kOff);

  ASSERT_EQ(setenv("CLOVE_PROF_OUT", "/tmp/pp", 1), 0);
  EXPECT_EQ(out_dir_from_env("fb"), "/tmp/pp");
  unsetenv("CLOVE_PROF_OUT");
  EXPECT_EQ(out_dir_from_env("fb"), "fb");
}

TEST(ProfSession, GuardInstallsAndExportsRss) {
  {
    SessionGuard s(Mode::kSummary);
    ASSERT_NE(s.profiler(), nullptr);
    EXPECT_EQ(active(), s.profiler());
  }
  EXPECT_EQ(active(), nullptr);
  {
    SessionGuard off(Mode::kOff);
    EXPECT_EQ(off.profiler(), nullptr);
    EXPECT_EQ(active(), nullptr);
  }
  EXPECT_GT(peak_rss_mb(), 0.0);
}

// --- determinism against real experiments ----------------------------------

std::string result_digest(const harness::ExperimentResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%a|%a|%a|%a|%llu|%llu|%llu|%llu|%llu|%llu|",
                r.avg_fct_s, r.mice_avg_fct_s, r.elephant_avg_fct_s,
                r.p99_fct_s, static_cast<unsigned long long>(r.jobs),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.fast_retransmits),
                static_cast<unsigned long long>(r.drops),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.queue_hwm));
  return buf;
}

harness::ExperimentConfig tiny_config() {
  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = harness::Scheme::kCloveEcn;
  cfg.seed = 7;
  return cfg;
}

workload::ClientServerConfig tiny_workload() {
  workload::ClientServerConfig wl;
  wl.load = 0.4;
  wl.jobs_per_conn = 3;
  wl.conns_per_client = 1;
  return wl;
}

TEST(ProfDeterminism, ResultsBitIdenticalWithProfilerOnOffAndFull) {
  const auto cfg = tiny_config();
  const auto wl = tiny_workload();

  const std::string off = result_digest(harness::run_fct_experiment(cfg, wl));
  std::string summary, full;
  {
    SessionGuard s(Mode::kSummary);
    summary = result_digest(harness::run_fct_experiment(cfg, wl));
    EXPECT_GT(s.profiler()->stat(kDispatch).count, 0u);
    EXPECT_GT(s.profiler()->events(), 0u);  // experiment fed the gauges
  }
  {
    SessionGuard f(Mode::kFull);
    full = result_digest(harness::run_fct_experiment(cfg, wl));
    EXPECT_FALSE(f.profiler()->folded().empty());
  }
  EXPECT_EQ(off, summary);
  EXPECT_EQ(off, full);
  EXPECT_FALSE(off.empty());
}

TEST(ProfDeterminism, ParallelMergeIsThreadCountInvariant) {
  // Four profiled experiments fanned out over 1 vs 4 workers: simulation
  // digests stay bit-identical AND the merged profiler aggregates (counts,
  // gauges — everything except wall-clock ns) match exactly, because each
  // task profiles into its own Profiler merged in task-index order.
  const auto cfg = tiny_config();
  const auto wl = tiny_workload();

  auto sweep = [&](unsigned threads, std::string* digests,
                   std::uint64_t* dispatch_count, std::uint64_t* events) {
    SessionGuard session(Mode::kSummary);
    harness::ParallelRunner runner(threads);
    std::vector<std::function<std::string()>> fns;
    for (int i = 0; i < 4; ++i) {
      fns.push_back([&cfg, &wl] {
        return result_digest(harness::run_fct_experiment(cfg, wl));
      });
    }
    auto out = runner.map<std::string>(std::move(fns));
    std::string joined;
    for (const auto& d : out) joined += d + "\n";
    *digests = joined;
    *dispatch_count = session.profiler()->stat(kDispatch).count;
    *events = session.profiler()->events();
  };

  std::string d1, d4;
  std::uint64_t c1 = 0, c4 = 0, e1 = 0, e4 = 0;
  sweep(1, &d1, &c1, &e1);
  sweep(4, &d4, &c4, &e4);
  EXPECT_EQ(d1, d4);
  EXPECT_EQ(c1, c4);
  EXPECT_EQ(e1, e4);
  EXPECT_GT(c1, 0u);
  EXPECT_GT(e1, 0u);
}

}  // namespace
}  // namespace clove::prof
