// Tests for packet structures and hashing.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "net/packet.hpp"
#include "test_util.hpp"

namespace clove::net {
namespace {

TEST(FiveTuple, Equality) {
  FiveTuple a{1, 2, 10, 20, Proto::kTcp};
  FiveTuple b{1, 2, 10, 20, Proto::kTcp};
  EXPECT_EQ(a, b);
  b.src_port = 11;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, Reversed) {
  FiveTuple a{1, 2, 10, 20, Proto::kTcp};
  FiveTuple r = a.reversed();
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_ip, 1u);
  EXPECT_EQ(r.src_port, 20);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_EQ(r.reversed(), a);
}

TEST(FiveTuple, HashDistinguishesFields) {
  FiveTupleHash h;
  FiveTuple base{1, 2, 10, 20, Proto::kTcp};
  FiveTuple by_src = base;
  by_src.src_ip = 9;
  FiveTuple by_port = base;
  by_port.src_port = 9;
  FiveTuple by_proto = base;
  by_proto.proto = Proto::kStt;
  EXPECT_NE(h(base), h(by_src));
  EXPECT_NE(h(base), h(by_port));
  EXPECT_NE(h(base), h(by_proto));
}

TEST(Packet, WireTupleUsesOuterWhenEncapped) {
  auto p = make_packet();
  p->inner = FiveTuple{1, 2, 10, 20, Proto::kTcp};
  EXPECT_EQ(p->wire_tuple(), p->inner);
  p->encap.present = true;
  p->encap.tuple = FiveTuple{100, 200, 3000, 7471, Proto::kStt};
  EXPECT_EQ(p->wire_tuple(), p->encap.tuple);
  EXPECT_EQ(p->wire_src(), 100u);
  EXPECT_EQ(p->wire_dst(), 200u);
}

TEST(Packet, WireSizeIncludesHeaders) {
  auto p = make_packet();
  p->payload = 1460;
  EXPECT_EQ(p->wire_size(), 1460 + Packet::kHeaderBytes);
}

TEST(Packet, UniqueIds) {
  std::unordered_set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(make_packet()->uid);
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(HashTuple, DeterministicAndSaltSensitive) {
  FiveTuple t{1, 2, 10, 20, Proto::kTcp};
  EXPECT_EQ(hash_tuple(t, 7), hash_tuple(t, 7));
  EXPECT_NE(hash_tuple(t, 7), hash_tuple(t, 8));
}

TEST(HashTuple, UniformAcrossPorts) {
  // ECMP quality check: hashing many source ports into 4 buckets should
  // spread roughly evenly — this is what path discovery relies on.
  int buckets[4] = {0, 0, 0, 0};
  for (int sp = 0; sp < 16384; ++sp) {
    FiveTuple t{1, 2, static_cast<std::uint16_t>(sp), 7471, Proto::kStt};
    ++buckets[hash_tuple(t, 42) % 4];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 3600);
    EXPECT_LT(b, 4600);
  }
}

TEST(HashTuple, IndependentAcrossSalts) {
  // Two switches (salts) should make nearly independent decisions: the joint
  // distribution over (choice1, choice2) covers all combinations.
  std::set<std::pair<int, int>> combos;
  for (int sp = 0; sp < 1000; ++sp) {
    FiveTuple t{1, 2, static_cast<std::uint16_t>(sp), 7471, Proto::kStt};
    combos.emplace(hash_tuple(t, 1) % 4, hash_tuple(t, 2) % 2);
  }
  EXPECT_EQ(combos.size(), 8u);
}

TEST(IntStack, PushAndMax) {
  IntStack s;
  s.enabled = true;
  s.push(0.3f);
  s.push(0.7f);
  s.push(0.5f);
  EXPECT_EQ(s.count, 3);
  EXPECT_FLOAT_EQ(s.max_util(), 0.7f);
}

TEST(IntStack, CapsAtMaxHops) {
  IntStack s;
  for (int i = 0; i < 20; ++i) s.push(0.1f);
  EXPECT_EQ(s.count, IntStack::kMaxHops);
}

TEST(IntStack, EmptyMaxIsZero) {
  IntStack s;
  EXPECT_FLOAT_EQ(s.max_util(), 0.0f);
}

}  // namespace
}  // namespace clove::net
