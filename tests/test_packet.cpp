// Tests for packet structures and hashing.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::net {
namespace {

TEST(FiveTuple, Equality) {
  FiveTuple a{1, 2, 10, 20, Proto::kTcp};
  FiveTuple b{1, 2, 10, 20, Proto::kTcp};
  EXPECT_EQ(a, b);
  b.src_port = 11;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, Reversed) {
  FiveTuple a{1, 2, 10, 20, Proto::kTcp};
  FiveTuple r = a.reversed();
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_ip, 1u);
  EXPECT_EQ(r.src_port, 20);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_EQ(r.reversed(), a);
}

TEST(FiveTuple, HashDistinguishesFields) {
  FiveTupleHash h;
  FiveTuple base{1, 2, 10, 20, Proto::kTcp};
  FiveTuple by_src = base;
  by_src.src_ip = 9;
  FiveTuple by_port = base;
  by_port.src_port = 9;
  FiveTuple by_proto = base;
  by_proto.proto = Proto::kStt;
  EXPECT_NE(h(base), h(by_src));
  EXPECT_NE(h(base), h(by_port));
  EXPECT_NE(h(base), h(by_proto));
}

TEST(Packet, WireTupleUsesOuterWhenEncapped) {
  auto p = make_packet();
  p->inner = FiveTuple{1, 2, 10, 20, Proto::kTcp};
  EXPECT_EQ(p->wire_tuple(), p->inner);
  p->encap.present = true;
  p->encap.tuple = FiveTuple{100, 200, 3000, 7471, Proto::kStt};
  EXPECT_EQ(p->wire_tuple(), p->encap.tuple);
  EXPECT_EQ(p->wire_src(), 100u);
  EXPECT_EQ(p->wire_dst(), 200u);
}

TEST(Packet, WireSizeIncludesHeaders) {
  auto p = make_packet();
  p->payload = 1460;
  EXPECT_EQ(p->wire_size(), 1460 + Packet::kHeaderBytes);
}

TEST(Packet, UniqueIds) {
  std::unordered_set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(make_packet()->uid);
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(HashTuple, DeterministicAndSaltSensitive) {
  FiveTuple t{1, 2, 10, 20, Proto::kTcp};
  EXPECT_EQ(hash_tuple(t, 7), hash_tuple(t, 7));
  EXPECT_NE(hash_tuple(t, 7), hash_tuple(t, 8));
}

TEST(HashTuple, UniformAcrossPorts) {
  // ECMP quality check: hashing many source ports into 4 buckets should
  // spread roughly evenly — this is what path discovery relies on.
  int buckets[4] = {0, 0, 0, 0};
  for (int sp = 0; sp < 16384; ++sp) {
    FiveTuple t{1, 2, static_cast<std::uint16_t>(sp), 7471, Proto::kStt};
    ++buckets[hash_tuple(t, 42) % 4];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 3600);
    EXPECT_LT(b, 4600);
  }
}

TEST(HashTuple, IndependentAcrossSalts) {
  // Two switches (salts) should make nearly independent decisions: the joint
  // distribution over (choice1, choice2) covers all combinations.
  std::set<std::pair<int, int>> combos;
  for (int sp = 0; sp < 1000; ++sp) {
    FiveTuple t{1, 2, static_cast<std::uint16_t>(sp), 7471, Proto::kStt};
    combos.emplace(hash_tuple(t, 1) % 4, hash_tuple(t, 2) % 2);
  }
  EXPECT_EQ(combos.size(), 8u);
}

TEST(IntStack, PushAndMax) {
  IntStack s;
  s.enabled = true;
  s.push(0.3f);
  s.push(0.7f);
  s.push(0.5f);
  EXPECT_EQ(s.count, 3);
  EXPECT_FLOAT_EQ(s.max_util(), 0.7f);
}

TEST(IntStack, CapsAtMaxHops) {
  IntStack s;
  for (int i = 0; i < 20; ++i) s.push(0.1f);
  EXPECT_EQ(s.count, IntStack::kMaxHops);
}

TEST(IntStack, EmptyMaxIsZero) {
  IntStack s;
  EXPECT_FLOAT_EQ(s.max_util(), 0.0f);
}

// ---------------------------------------------------------------------------
// PacketPool
// ---------------------------------------------------------------------------

TEST(PacketPool, ReusesReleasedPackets) {
  sim::Simulator sim;
  auto& pool = PacketPool::of(sim);
  Packet* first;
  {
    auto p = make_packet(sim);
    first = p.get();
  }  // released to the pool
  EXPECT_EQ(pool.free_count(), 1u);
  auto q = make_packet(sim);
  EXPECT_EQ(q.get(), first);  // same storage, recycled
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(PacketPool, RecycledPacketsAreFullyReset) {
  sim::Simulator sim;
  {
    auto p = make_packet(sim);
    p->payload = 1460;
    p->ttl = 3;
    p->encap.present = true;
    p->tcp.seq = 999;
    p->int_stack.push(0.7f);
    p->sent_at = 42;
  }
  auto q = make_packet(sim);
  EXPECT_EQ(q->payload, 0u);
  EXPECT_EQ(q->ttl, 64);
  EXPECT_FALSE(q->encap.present);
  EXPECT_EQ(q->tcp.seq, 0u);
  EXPECT_EQ(q->int_stack.count, 0);
  EXPECT_EQ(q->sent_at, 0);
}

TEST(PacketPool, UidsAreFreshAcrossReuse) {
  sim::Simulator sim;
  std::unordered_set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) ids.insert(make_packet(sim)->uid);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(PacketPool, UidSequenceIsPerSimulator) {
  // Per-pool counters make uid sequences independent of what other
  // simulations ran before or concurrently — the property that keeps results
  // bit-identical between serial and parallel sweeps.
  sim::Simulator a;
  sim::Simulator b;
  std::vector<std::uint64_t> ua;
  std::vector<std::uint64_t> ub;
  for (int i = 0; i < 5; ++i) {
    ua.push_back(make_packet(a)->uid);
    (void)make_packet(b);  // interleave extra traffic on b
    ub.push_back(make_packet(b)->uid);
  }
  EXPECT_EQ(ua, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ub, (std::vector<std::uint64_t>{2, 4, 6, 8, 10}));
}

TEST(PacketPool, ReleasedRawPointerIsPlainDeletable) {
  // Tests and tools sometimes release() a PacketPtr and rewrap it with a
  // default-constructed deleter; pool packets are individually new'ed, so
  // that plain delete must stay valid (the packet just leaves the pool).
  sim::Simulator sim;
  auto p = make_packet(sim);
  PacketPtr rewrapped(p.release());  // default deleter: no pool
  rewrapped.reset();                 // plain delete — must not touch the pool
  EXPECT_EQ(PacketPool::of(sim).free_count(), 0u);
}

TEST(PacketPool, AttachesToSimulatorExtensionSlot) {
  sim::Simulator sim;
  EXPECT_EQ(sim.extension(), nullptr);
  auto& pool = PacketPool::of(sim);
  EXPECT_EQ(sim.extension(), &pool);
  EXPECT_EQ(&PacketPool::of(sim), &pool);  // idempotent
}

TEST(WireHash, SaltedHashComposesToHashTuple) {
  // The fast path splits ECMP hashing into a per-packet prehash plus a
  // per-switch salted finalize; the split must agree with the one-shot form
  // for every salt or switches would disagree about path choices.
  const FiveTuple t{3, 9, 4242, 80, Proto::kStt};
  for (std::uint64_t salt : {0ull, 1ull, 7ull, 0xC09Aull, ~0ull}) {
    EXPECT_EQ(hash_tuple(t, salt), salted_hash(tuple_prehash(t), salt));
  }
}

TEST(WireHash, LazilyCachedAndInvalidated) {
  Packet p;
  p.inner = FiveTuple{1, 2, 1000, 80, Proto::kTcp};
  EXPECT_FALSE(p.wire_hash_cached());
  const std::uint64_t h = p.wire_hash();
  EXPECT_TRUE(p.wire_hash_cached());
  EXPECT_EQ(h, tuple_prehash(p.inner));
  EXPECT_EQ(p.wire_hash(), h);  // stable while cached

  // A wire-tuple mutation without invalidation would serve the stale value —
  // this is exactly the bug invalidate_wire_hash() exists to prevent.
  p.inner.src_port = 1001;
  EXPECT_EQ(p.wire_hash(), h);  // stale: cache not yet invalidated
  p.invalidate_wire_hash();
  EXPECT_FALSE(p.wire_hash_cached());
  EXPECT_EQ(p.wire_hash(), tuple_prehash(p.inner));
  EXPECT_NE(p.wire_hash(), h);
}

TEST(WireHash, FollowsWireTupleAcrossEncapAndDecap) {
  Packet p;
  p.inner = FiveTuple{1, 2, 1000, 80, Proto::kTcp};
  const std::uint64_t inner_hash = p.wire_hash();

  // Encapsulation changes the wire tuple to the outer header (the
  // hypervisor's vm_send invalidates right after building it).
  p.encap.present = true;
  p.encap.tuple = FiveTuple{100, 200, 55555, 7471, Proto::kStt};
  p.invalidate_wire_hash();
  EXPECT_EQ(p.wire_hash(), tuple_prehash(p.encap.tuple));
  EXPECT_NE(p.wire_hash(), inner_hash);

  // Decap restores the inner tuple as the wire tuple (handle_data's site).
  p.encap = EncapHeader{};
  p.invalidate_wire_hash();
  EXPECT_EQ(p.wire_hash(), inner_hash);
}

TEST(WireHash, PoolRecycleClearsCache) {
  // A recycled packet is reconstructed in place; a surviving stale cache
  // would hash the previous flow's tuple for the new packet.
  sim::Simulator sim;
  auto p = make_packet(sim);
  p->inner = FiveTuple{1, 2, 3, 4, Proto::kTcp};
  (void)p->wire_hash();
  EXPECT_TRUE(p->wire_hash_cached());
  Packet* raw = p.get();
  p.reset();  // back to the pool
  auto q = make_packet(sim);
  ASSERT_EQ(q.get(), raw);  // LIFO reuse of the same storage
  EXPECT_FALSE(q->wire_hash_cached());
}

}  // namespace
}  // namespace clove::net
