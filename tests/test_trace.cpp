// Tests for the bounded trace ring: wraparound, category filters, and the
// JSONL / chrome-trace exports.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

namespace clove::telemetry {
namespace {

TraceEvent ev(sim::Time t, Category cat, std::uint64_t id = 0) {
  TraceEvent e;
  e.t = t;
  e.cat = cat;
  // Piecewise append avoids a GCC 12 -O3 -Wrestrict false positive
  // (PR105651) in -Werror builds.
  e.node = "n";
  e.node += std::to_string(id % 3);
  e.name = "event";
  e.value = static_cast<double>(t);
  e.id = id;
  return e;
}

TEST(TraceLog, RecordsInOrder) {
  TraceLog log;
  for (int i = 0; i < 5; ++i) {
    log.record(ev(i * 100, Category::kQueue, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.recorded_total(), 5u);
  EXPECT_EQ(log.dropped_oldest(), 0u);
  auto events = log.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front()->t, 0);
  EXPECT_EQ(events.back()->t, 400);
}

TEST(TraceLog, WraparoundKeepsNewestWindow) {
  TraceLog log;
  log.set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    log.record(ev(i, Category::kQueue, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.recorded_total(), 20u);
  EXPECT_EQ(log.dropped_oldest(), 12u);
  auto events = log.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first iteration across the wrap point: 12, 13, ..., 19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i]->t, static_cast<sim::Time>(12 + i));
  }
}

TEST(TraceLog, WraparoundExactlyAtCapacity) {
  TraceLog log;
  log.set_capacity(4);
  for (int i = 0; i < 4; ++i) log.record(ev(i, Category::kPath));
  EXPECT_EQ(log.dropped_oldest(), 0u);
  EXPECT_EQ(log.events().front()->t, 0);
  log.record(ev(4, Category::kPath));
  EXPECT_EQ(log.dropped_oldest(), 1u);
  EXPECT_EQ(log.events().front()->t, 1);
  EXPECT_EQ(log.events().back()->t, 4);
}

TEST(TraceLog, RecordFilterDropsCategories) {
  TraceLog log;
  log.set_filter(static_cast<unsigned>(Category::kWeight));
  EXPECT_TRUE(log.accepts(Category::kWeight));
  EXPECT_FALSE(log.accepts(Category::kQueue));
  log.record(ev(1, Category::kQueue));
  log.record(ev(2, Category::kWeight));
  log.record(ev(3, Category::kTcp));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.recorded_total(), 1u);  // filtered events are not "recorded"
  EXPECT_EQ(log.events().front()->t, 2);
}

TEST(TraceLog, EventsViewFilterIsIndependent) {
  TraceLog log;
  log.record(ev(1, Category::kQueue));
  log.record(ev(2, Category::kWeight));
  log.record(ev(3, Category::kWeight));
  EXPECT_EQ(log.events(static_cast<unsigned>(Category::kWeight)).size(), 2u);
  EXPECT_EQ(log.events(static_cast<unsigned>(Category::kQueue)).size(), 1u);
  EXPECT_EQ(log.events().size(), 3u);
}

TEST(TraceLog, ClearResetsButKeepsCapacityAndFilter) {
  TraceLog log;
  log.set_capacity(16);
  log.set_filter(static_cast<unsigned>(Category::kTcp));
  log.record(ev(1, Category::kTcp));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.capacity(), 16u);
  EXPECT_EQ(log.filter(), static_cast<unsigned>(Category::kTcp));
  log.record(ev(2, Category::kTcp));
  EXPECT_EQ(log.size(), 1u);
}

TEST(TraceLog, JsonlLinesParse) {
  TraceLog log;
  TraceEvent e;
  e.t = 1500;
  e.cat = Category::kWeight;
  e.node = "hyp\"1";  // exercises escaping
  e.name = "clove.weight";
  e.detail = "dst 7 spread";
  e.value = 0.25;
  e.id = 50001;
  log.record(e);
  log.record(ev(2000, Category::kQueue, 9));

  const std::string jsonl = log.to_jsonl();
  std::istringstream in(jsonl);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    std::string err;
    Json v = Json::parse(line, &err);
    ASSERT_TRUE(err.empty()) << err << " in: " << line;
    EXPECT_TRUE(v.is_object());
    ++lines;
  }
  EXPECT_EQ(lines, 2);

  std::string err;
  Json first = Json::parse(jsonl.substr(0, jsonl.find('\n')), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_DOUBLE_EQ(first["t_ns"].as_number(), 1500.0);
  EXPECT_EQ(first["cat"].as_string(), "weight");
  EXPECT_EQ(first["node"].as_string(), "hyp\"1");
  EXPECT_EQ(first["detail"].as_string(), "dst 7 spread");
  EXPECT_DOUBLE_EQ(first["value"].as_number(), 0.25);
  EXPECT_DOUBLE_EQ(first["id"].as_number(), 50001.0);
}

TEST(TraceLog, ChromeTraceShape) {
  TraceLog log;
  log.record(ev(1'000'000, Category::kFlowlet, 1));  // node n1
  log.record(ev(2'000'000, Category::kWeight, 2));   // node n2
  std::string err;
  Json doc = Json::parse(log.to_chrome_trace(), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(doc["traceEvents"].is_array());
  // 2 instant events + 2 thread_name metadata events.
  ASSERT_EQ(doc["traceEvents"].size(), 4u);
  int instants = 0, metadata = 0;
  for (std::size_t i = 0; i < doc["traceEvents"].size(); ++i) {
    const Json& t = doc["traceEvents"][i];
    if (t["ph"].as_string() == "i") {
      ++instants;
      EXPECT_GT(t["ts"].as_number(), 0.0);  // simulated microseconds
    } else if (t["ph"].as_string() == "M") {
      ++metadata;
      EXPECT_EQ(t["name"].as_string(), "thread_name");
    }
  }
  EXPECT_EQ(instants, 2);
  EXPECT_EQ(metadata, 2);
}

TEST(TraceCategories, NamesAndMaskParsing) {
  EXPECT_STREQ(category_name(Category::kWeight), "weight");
  EXPECT_STREQ(category_name(Category::kTcp), "tcp");
  EXPECT_EQ(parse_category_mask(""), kAllCategories);
  EXPECT_EQ(parse_category_mask("weight"),
            static_cast<unsigned>(Category::kWeight));
  EXPECT_EQ(parse_category_mask("weight,tcp"),
            static_cast<unsigned>(Category::kWeight) |
                static_cast<unsigned>(Category::kTcp));
  // Unknown names are ignored rather than fatal.
  EXPECT_EQ(parse_category_mask("weight,bogus"),
            static_cast<unsigned>(Category::kWeight));
}

TEST(TraceLog, ExportOrderIsCanonicalForStaleTimestamps) {
  // Emitters like discovery-driven weight remaps record with a timestamp
  // older than events already in the ring. The export must still be
  // deterministic: sorted by timestamp, insertion sequence as tie-break —
  // never raw insertion order, which varies with CLOVE_THREADS scheduling.
  TraceLog log;
  log.record(ev(500, Category::kQueue, 1));
  log.record(ev(100, Category::kWeight, 2));  // stale timestamp
  log.record(ev(500, Category::kQueue, 3));   // same t as the first event
  log.record(ev(300, Category::kWeight, 4));

  auto events = log.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0]->id, 2u);
  EXPECT_EQ(events[1]->id, 4u);
  EXPECT_EQ(events[2]->id, 1u);  // t ties broken by recording sequence
  EXPECT_EQ(events[3]->id, 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1]->t, events[i]->t);
  }

  // The JSONL serialization follows the same canonical order.
  std::istringstream lines(log.to_jsonl());
  std::string line;
  std::vector<std::uint64_t> ids;
  while (std::getline(lines, line)) {
    std::string err;
    Json doc = Json::parse(line, &err);
    ASSERT_TRUE(err.empty()) << err;
    ids.push_back(static_cast<std::uint64_t>(doc["id"].as_number()));
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 4, 1, 3}));
}

TEST(TraceLog, SetCapacityRestartsCapture) {
  TraceLog log;
  log.record(ev(1, Category::kQueue));
  log.set_capacity(2);
  EXPECT_EQ(log.size(), 0u);
  for (int i = 0; i < 3; ++i) log.record(ev(10 + i, Category::kQueue));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events().front()->t, 11);
}

}  // namespace
}  // namespace clove::telemetry
