// Tests for the edge load-balancing policies: ECMP, Edge-Flowlet, Presto.

#include <gtest/gtest.h>

#include <set>

#include "lb/ecmp.hpp"
#include "lb/edge_flowlet.hpp"
#include "lb/presto.hpp"
#include "test_util.hpp"

namespace clove::lb {
namespace {

using clove::testutil::make_data;
using clove::testutil::tuple;
using sim::kMicrosecond;

overlay::PathSet four_paths() {
  overlay::PathSet ps;
  for (std::uint16_t i = 0; i < 4; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(50000 + i);
    p.hops = {{10, 0},
              {static_cast<net::IpAddr>(20 + i / 2), static_cast<int>(i % 2)},
              {11, static_cast<int>(i % 2)},
              {2, 0}};
    ps.paths.push_back(p);
  }
  ps.discovered_at = 0;
  return ps;
}

// ---------------------------------------------------------------------------
// ECMP
// ---------------------------------------------------------------------------

TEST(EcmpPolicy, StablePerFlow) {
  EcmpPolicy p;
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto port = p.pick_port(*pkt, 2, 0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.pick_port(*pkt, 2, i * kMicrosecond * 1000), port);
  }
}

TEST(EcmpPolicy, DifferentFlowsSpread) {
  EcmpPolicy p;
  std::set<std::uint16_t> ports;
  for (std::uint16_t sp = 0; sp < 64; ++sp) {
    auto pkt = make_data(tuple(1, 2, static_cast<std::uint16_t>(1000 + sp)), 0, 100);
    ports.insert(p.pick_port(*pkt, 2, 0));
  }
  EXPECT_GT(ports.size(), 32u);
}

TEST(EcmpPolicy, NoSignalsNeeded) {
  EcmpPolicy p;
  EXPECT_FALSE(p.wants_ect());
  EXPECT_FALSE(p.wants_int());
  EXPECT_FALSE(p.needs_discovery());
  EXPECT_FALSE(p.all_paths_congested(2, 0));
  EXPECT_EQ(p.name(), "ecmp");
}

// ---------------------------------------------------------------------------
// Edge-Flowlet
// ---------------------------------------------------------------------------

TEST(EdgeFlowletPolicy, SamePortWithinFlowlet) {
  EdgeFlowletPolicy p(100 * kMicrosecond);
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto port = p.pick_port(*pkt, 2, 0);
  EXPECT_EQ(p.pick_port(*pkt, 2, 50 * kMicrosecond), port);
  EXPECT_EQ(p.pick_port(*pkt, 2, 120 * kMicrosecond), port);  // gap from prev
}

TEST(EdgeFlowletPolicy, NewPortAfterGap) {
  EdgeFlowletPolicy p(100 * kMicrosecond);
  auto pkt = make_data(tuple(1, 2), 0, 100);
  std::set<std::uint16_t> ports;
  sim::Time t = 0;
  for (int i = 0; i < 16; ++i) {
    ports.insert(p.pick_port(*pkt, 2, t));
    t += 200 * kMicrosecond;  // always a new flowlet
  }
  EXPECT_GT(ports.size(), 8u);  // fresh pseudo-random port per flowlet
}

TEST(EdgeFlowletPolicy, FlowsIndependent) {
  EdgeFlowletPolicy p(100 * kMicrosecond);
  auto p1 = make_data(tuple(1, 2, 1000), 0, 100);
  auto p2 = make_data(tuple(1, 2, 1001), 0, 100);
  // Very likely different ports (different hash inputs).
  int differ = 0;
  for (int i = 0; i < 8; ++i) {
    auto a = make_data(tuple(1, 2, static_cast<std::uint16_t>(2000 + i)), 0, 100);
    auto b = make_data(tuple(1, 2, static_cast<std::uint16_t>(3000 + i)), 0, 100);
    if (p.pick_port(*a, 2, 0) != p.pick_port(*b, 2, 0)) ++differ;
  }
  EXPECT_GT(differ, 4);
}

TEST(EdgeFlowletPolicy, CongestionOblivious) {
  EdgeFlowletPolicy p;
  EXPECT_FALSE(p.wants_ect());
  EXPECT_FALSE(p.needs_discovery());
}

// ---------------------------------------------------------------------------
// Presto
// ---------------------------------------------------------------------------

TEST(PrestoPolicy, RotatesEveryFlowcell) {
  PrestoConfig cfg;
  cfg.flowcell_bytes = 3000;  // ~2 packets per cell
  PrestoPolicy p(cfg);
  p.on_paths_updated(2, four_paths());

  std::vector<std::uint16_t> sequence;
  for (int i = 0; i < 16; ++i) {
    auto pkt = make_data(tuple(1, 2), i * 1500, 1500);
    sequence.push_back(p.pick_port(*pkt, 2, 0));
  }
  // Within a cell the port is constant; across cells it rotates through all.
  std::set<std::uint16_t> distinct(sequence.begin(), sequence.end());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_EQ(sequence[0], sequence[1]);  // same 3000-byte cell
  EXPECT_NE(sequence[1], sequence[2]);  // next cell rotated
}

TEST(PrestoPolicy, UniformWeightsSpreadEvenly) {
  PrestoConfig cfg;
  cfg.flowcell_bytes = 1500;
  PrestoPolicy p(cfg);
  p.on_paths_updated(2, four_paths());
  std::map<std::uint16_t, int> counts;
  for (int i = 0; i < 400; ++i) {
    auto pkt = make_data(tuple(1, 2), i * 1500, 1500);
    ++counts[p.pick_port(*pkt, 2, 0)];
  }
  for (const auto& [port, n] : counts) EXPECT_EQ(n, 100);
}

TEST(PrestoPolicy, StaticWeightsRespected) {
  PrestoConfig cfg;
  cfg.flowcell_bytes = 1500;
  PrestoPolicy p(cfg);
  // Paths through "spine 21" (the failed side) get half weight.
  p.set_weight_fn([](const overlay::PathInfo& path) {
    for (const auto& h : path.hops) {
      if (h.node == 21) return 1.0;
    }
    return 2.0;
  });
  p.on_paths_updated(2, four_paths());
  std::map<std::uint16_t, int> counts;
  for (int i = 0; i < 600; ++i) {
    auto pkt = make_data(tuple(1, 2), i * 1500, 1500);
    ++counts[p.pick_port(*pkt, 2, 0)];
  }
  // Ports 50000/50001 (spine 20): weight 2/6 each = 200; 50002/50003: 100.
  EXPECT_EQ(counts[50000], 200);
  EXPECT_EQ(counts[50001], 200);
  EXPECT_EQ(counts[50002], 100);
  EXPECT_EQ(counts[50003], 100);
}

TEST(PrestoPolicy, FallsBackToHashWithoutPaths) {
  PrestoPolicy p;
  auto pkt = make_data(tuple(1, 2), 0, 1500);
  const auto port = p.pick_port(*pkt, 2, 0);
  EXPECT_EQ(p.pick_port(*pkt, 2, 0), port);  // stable hash fallback
  EXPECT_TRUE(p.needs_discovery());
}

TEST(PrestoPolicy, PerFlowRotationIndependent) {
  PrestoConfig cfg;
  cfg.flowcell_bytes = 1500;
  PrestoPolicy p(cfg);
  p.on_paths_updated(2, four_paths());
  // Interleave two flows; each must still see all 4 ports over 4 cells.
  std::set<std::uint16_t> f1_ports, f2_ports;
  for (int i = 0; i < 4; ++i) {
    auto a = make_data(tuple(1, 2, 1000), i * 1500, 1500);
    auto b = make_data(tuple(1, 2, 2000), i * 1500, 1500);
    f1_ports.insert(p.pick_port(*a, 2, 0));
    f2_ports.insert(p.pick_port(*b, 2, 0));
  }
  EXPECT_EQ(f1_ports.size(), 4u);
  EXPECT_EQ(f2_ports.size(), 4u);
}

}  // namespace
}  // namespace clove::lb
