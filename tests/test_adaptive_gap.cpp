// Tests for the §7 "Flowlet optimization" extension: the flowlet gap adapts
// to the observed one-way-delay spread between a destination's paths.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "test_util.hpp"

namespace clove::lb {
namespace {

using clove::testutil::make_data;
using clove::testutil::tuple;
using sim::kMicrosecond;

overlay::PathSet four_paths() {
  overlay::PathSet ps;
  for (std::uint16_t i = 0; i < 4; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(50000 + i);
    p.hops = {{10, 0},
              {static_cast<net::IpAddr>(20 + i / 2), static_cast<int>(i % 2)},
              {11, static_cast<int>(i % 2)},
              {2, 0}};
    ps.paths.push_back(p);
  }
  return ps;
}

net::CloveFeedback latency_fb(std::uint16_t port, sim::Time latency) {
  net::CloveFeedback fb;
  fb.present = true;
  fb.port = port;
  fb.has_latency = true;
  fb.latency = latency;
  return fb;
}

CloveEcnConfig adaptive_cfg() {
  CloveEcnConfig c;
  c.flowlet_gap = 100 * kMicrosecond;
  c.adaptive_gap = true;
  c.adaptive_gap_factor = 2.0;
  c.recovery_interval = sim::seconds(100.0);
  return c;
}

TEST(AdaptiveGap, BaseGapWithoutLatencyData) {
  // Until latency samples arrive the base gap applies: packets separated by
  // more than the base gap form new flowlets (the WRR then rotates ports).
  CloveEcnPolicy p(adaptive_cfg());
  p.on_paths_updated(2, four_paths());
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto p0 = p.pick_port(*pkt, 2, 0);
  const auto p1 = p.pick_port(*pkt, 2, 150 * kMicrosecond);  // > base gap
  EXPECT_NE(p0, p1);  // smooth WRR with equal weights rotates
}

TEST(AdaptiveGap, DelaySpreadWidensGap) {
  CloveEcnPolicy p(adaptive_cfg());
  p.on_paths_updated(2, four_paths());
  // Paths differ by 900us of one-way delay -> gap = 100 + 2*900 = 1900us.
  p.on_feedback(2, latency_fb(50000, 1000 * kMicrosecond), 0);
  p.on_feedback(2, latency_fb(50001, 100 * kMicrosecond), 0);

  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto p0 = p.pick_port(*pkt, 2, kMicrosecond);
  // 150us after: would be a NEW flowlet at the base gap, but the widened
  // gap keeps the flowlet (and therefore the port) intact.
  EXPECT_EQ(p.pick_port(*pkt, 2, 151 * kMicrosecond), p0);
  EXPECT_EQ(p.pick_port(*pkt, 2, 1800 * kMicrosecond), p0);
  // Beyond the widened gap a new flowlet forms.
  const auto p1 = p.pick_port(*pkt, 2, 4000 * kMicrosecond);
  EXPECT_NE(p1, p0);
}

TEST(AdaptiveGap, UniformDelaysKeepBaseGap) {
  CloveEcnPolicy p(adaptive_cfg());
  p.on_paths_updated(2, four_paths());
  for (std::uint16_t port = 50000; port <= 50003; ++port) {
    p.on_feedback(2, latency_fb(port, 200 * kMicrosecond), 0);
  }
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto p0 = p.pick_port(*pkt, 2, kMicrosecond);
  // Zero spread -> base gap -> 150us is a new flowlet again.
  EXPECT_NE(p.pick_port(*pkt, 2, 151 * kMicrosecond), p0);
}

TEST(AdaptiveGap, DisabledIgnoresLatency) {
  CloveEcnConfig c = adaptive_cfg();
  c.adaptive_gap = false;
  CloveEcnPolicy p(c);
  p.on_paths_updated(2, four_paths());
  p.on_feedback(2, latency_fb(50000, 1000 * kMicrosecond), 0);
  p.on_feedback(2, latency_fb(50001, 100 * kMicrosecond), 0);
  auto pkt = make_data(tuple(1, 2), 0, 100);
  const auto p0 = p.pick_port(*pkt, 2, kMicrosecond);
  EXPECT_NE(p.pick_port(*pkt, 2, 151 * kMicrosecond), p0);
}

TEST(AdaptiveGap, EndToEndThroughHarness) {
  // The harness flag turns on latency measurement in the hypervisors and
  // the policy option together; the workload must still complete.
  harness::ExperimentConfig cfg = harness::make_ns2_profile();
  cfg.scheme = harness::Scheme::kCloveEcn;
  cfg.adaptive_flowlet_gap = true;
  cfg.asymmetric = true;
  cfg.topo.hosts_per_leaf = 4;
  cfg.discovery.probe_timeout = 5 * sim::kMillisecond;
  cfg.traffic_start = 15 * sim::kMillisecond;
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 5;
  wl.conns_per_client = 1;
  wl.load = 0.6;
  wl.sizes = workload::FlowSizeDistribution::fixed(400'000);
  auto r = harness::run_fct_experiment(cfg, wl);
  EXPECT_EQ(r.jobs, 4u * 5u);
}

}  // namespace
}  // namespace clove::lb
