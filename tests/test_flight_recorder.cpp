// Tests for the fabric flight recorder: hook-level unit tests of journey
// tracking and the four invariant auditors, plus end-to-end runs through the
// experiment harness that reconstruct per-packet paths and prove the audits
// hold (or, for Presto without reassembly, correctly fail) on real schemes.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "sim/time.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/scope.hpp"
#include "workload/client_server.hpp"

namespace clove::telemetry {
namespace {

FlightConfig full_cfg() {
  FlightConfig cfg;
  cfg.mode = FlightMode::kFull;
  return cfg;
}

FlightFlowKey flow_a() { return {0x0a000001, 0x0a000002, 5000, 80}; }

/// Drive one data packet through pick -> leaf -> spine -> leaf -> delivery.
void run_journey(FlightRecorder& fr, std::uint64_t uid, std::uint64_t seq,
                 std::uint32_t flowlet, sim::Time t0,
                 const FlightFlowKey& flow = flow_a()) {
  fr.on_pick(uid, 100, "h1", flow, 0x0a000002, 40000 + flowlet, flowlet, "wrr",
             0.5, seq, 1000, t0);
  fr.on_hop(uid, 0, "L1", 0, 4, 30000, false, t0 + 1000);
  fr.on_hop(uid, 2, "S1", 0, 1, 0, false, t0 + 2000);
  fr.on_hop(uid, 1, "L2", 4, 1, 12000, true, t0 + 3000);
  fr.on_deliver(uid, 101, "h5", false, t0 + 4000);
}

TEST(FlightRecorder, JourneyReconstructsFullPath) {
  FlightRecorder fr(full_cfg());
  run_journey(fr, 7, 0, 1, 1000);

  const Journey* j = fr.find_journey(7);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->outcome, JourneyOutcome::kDelivered);
  EXPECT_TRUE(j->full_path());
  ASSERT_EQ(j->n_hops, 3);
  EXPECT_EQ(j->via(), 2u);  // the spine hop distinguishes the path
  EXPECT_EQ(j->hops[0].node, 0u);
  EXPECT_EQ(j->hops[1].queue_bytes, 0);
  EXPECT_TRUE(j->hops[2].ecn_marked);
  EXPECT_EQ(j->end_node, 101u);
  EXPECT_EQ(fr.delivered(), 1u);
  EXPECT_EQ(fr.live_journeys(), 0u);

  EXPECT_EQ(fr.node_name(2), "S1");
  EXPECT_EQ(fr.node_name(99), "n99");  // never seen -> synthesized

  FlightSummary s = fr.summary(10'000);
  EXPECT_EQ(s.full_paths, 1u);
  EXPECT_DOUBLE_EQ(s.reconstruction_rate(), 1.0);
  EXPECT_EQ(s.audit.total(), 0u);
}

TEST(FlightRecorder, DropRecordsOutcomeAndSatisfiesConservation) {
  FlightRecorder fr(full_cfg());
  fr.on_pick(1, 100, "h1", flow_a(), 0x0a000002, 40000, 1, "wrr", 0.5, 0, 1000,
             0);
  fr.on_hop(1, 0, "L1", 0, 4, 90000, false, 1000);
  fr.on_drop(1, 0, "L1", JourneyOutcome::kDropOverflow, 2000);

  const Journey* j = fr.find_journey(1);
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->outcome, JourneyOutcome::kDropOverflow);
  EXPECT_EQ(j->end_node, 0u);
  // A properly accounted drop is not a conservation violation.
  EXPECT_EQ(fr.audit_conservation(1 * sim::kSecond), 0u);
}

TEST(FlightRecorder, ConservationAuditFlagsVanishedPacket) {
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  fr.on_pick(5, 100, "h1", flow_a(), 0x0a000002, 40000, 1, "wrr", 0.5, 0, 1000,
             0);
  fr.on_hop(5, 0, "L1", 0, 4, 0, false, 1000);
  // Still within the grace window: not a violation yet.
  EXPECT_EQ(fr.audit_conservation(50 * sim::kMillisecond), 0u);
  // Idle past the grace window: flagged exactly once (idempotent).
  EXPECT_EQ(fr.audit_conservation(200 * sim::kMillisecond), 1u);
  EXPECT_EQ(fr.audit_conservation(300 * sim::kMillisecond), 0u);
  EXPECT_EQ(fr.audit().conservation, 1u);
}

TEST(FlightRecorder, FlowletReorderAuditFlagsArrivalInversion) {
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  const FlightFlowKey f = flow_a();
  // Two sends of the same flowlet...
  fr.on_pick(1, 100, "h1", f, 0x0a000002, 40000, 3, "wrr", 0.5, 0, 1000, 0);
  fr.on_pick(2, 100, "h1", f, 0x0a000002, 40000, 3, "wrr", 0.5, 1000, 1000,
             100);
  // ...arriving in the opposite order. One FIFO path per flowlet makes that
  // impossible in a correct fabric, so the auditor must fire.
  fr.on_deliver(2, 101, "h5", false, 5000);
  fr.on_deliver(1, 101, "h5", false, 6000);
  EXPECT_EQ(fr.audit().flowlet_reorder, 1u);
  EXPECT_EQ(fr.audit().vm_reorder, 0u);  // never reached the VM boundary
}

TEST(FlightRecorder, VmReorderAuditFlagsSendOrderInversion) {
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  const FlightFlowKey f = flow_a();
  // Distinct flowlets (a path switch), so fabric arrival order is free to
  // invert — only the VM boundary must still see send order.
  fr.on_pick(1, 100, "h1", f, 0x0a000002, 40000, 2, "wrr", 0.5, 0, 1000, 0);
  fr.on_pick(2, 100, "h1", f, 0x0a000002, 40001, 3, "wrr", 0.5, 1000, 1000,
             100);
  fr.on_deliver(2, 101, "h5", false, 5000);
  fr.on_deliver(1, 101, "h5", false, 6000);
  EXPECT_EQ(fr.audit().flowlet_reorder, 0u);

  // VM sees send #2 then send #1: a reassembly failure.
  fr.on_vm_delivery(2, f, 1000, 1000, false, /*ordering_expected=*/true,
                    7000);
  fr.on_vm_delivery(1, f, 0, 1000, false, /*ordering_expected=*/true, 8000);
  EXPECT_EQ(fr.audit().vm_reorder, 1u);
}

TEST(FlightRecorder, RetransmissionsExemptFromOrderingAudits) {
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  const FlightFlowKey f = flow_a();
  fr.on_pick(1, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 0, 1000, 0);
  fr.on_pick(2, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 1000, 1000,
             100);
  // Same seq 0 again: an RTO retransmission — old seq, new send index.
  fr.on_pick(3, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 0, 1000, 200);
  fr.on_deliver(1, 101, "h5", false, 5000);
  fr.on_deliver(2, 101, "h5", false, 6000);
  fr.on_deliver(3, 101, "h5", false, 7000);

  const Journey* rtx = fr.find_journey(3);
  ASSERT_NE(rtx, nullptr);
  EXPECT_TRUE(rtx->is_rtx);
  EXPECT_FALSE(fr.find_journey(2)->is_rtx);

  // The retransmit crosses the VM boundary first (a reassembly buffer may
  // release it ahead of data buffered behind the gap it filled). Loss
  // recovery legitimately looks like this, so no violation.
  fr.on_vm_delivery(3, f, 0, 1000, false, /*ordering_expected=*/true, 8000);
  fr.on_vm_delivery(1, f, 0, 1000, false, /*ordering_expected=*/true, 8100);
  fr.on_vm_delivery(2, f, 1000, 1000, false, /*ordering_expected=*/true,
                    8200);
  EXPECT_EQ(fr.audit().total(), 0u);
}

TEST(FlightRecorder, ReassemblyFlushAmnestiesInFlightStragglers) {
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  const FlightFlowKey f = flow_a();
  // Send #1 takes a slow path; #2 and #3 overtake it and the reassembly
  // buffer gives up on the gap (forced flush) and releases them.
  fr.on_pick(1, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 0, 1000, 0);
  fr.on_pick(2, 100, "h1", f, 0x0a000002, 40001, 2, "wrr", 0.5, 1000, 1000,
             100);
  fr.on_pick(3, 100, "h1", f, 0x0a000002, 40001, 2, "wrr", 0.5, 2000, 1000,
             200);
  fr.on_deliver(2, 101, "h5", false, 5000);
  fr.on_deliver(3, 101, "h5", false, 5100);
  fr.on_reassembly_flush(f);
  fr.on_vm_delivery(2, f, 1000, 1000, false, /*ordering_expected=*/true,
                    6000);
  fr.on_vm_delivery(3, f, 2000, 1000, false, /*ordering_expected=*/true,
                    6100);
  // The straggler crosses the VM boundary late: designed aftermath of the
  // flush, not a reassembly bug.
  fr.on_deliver(1, 101, "h5", false, 7000);
  fr.on_vm_delivery(1, f, 0, 1000, false, /*ordering_expected=*/true, 7100);
  EXPECT_EQ(fr.audit().vm_reorder, 0u);

  // A NEW send issued after the flush gets no amnesty: an inversion among
  // post-flush sends is a real reassembly failure.
  fr.on_pick(4, 100, "h1", f, 0x0a000002, 40002, 3, "wrr", 0.5, 3000, 1000,
             8000);
  fr.on_pick(5, 100, "h1", f, 0x0a000002, 40003, 4, "wrr", 0.5, 4000, 1000,
             8100);
  fr.on_deliver(4, 101, "h5", false, 9000);
  fr.on_deliver(5, 101, "h5", false, 9100);
  fr.on_vm_delivery(5, f, 4000, 1000, false, /*ordering_expected=*/true,
                    9200);
  fr.on_vm_delivery(4, f, 3000, 1000, false, /*ordering_expected=*/true,
                    9300);
  EXPECT_EQ(fr.audit().vm_reorder, 1u);
}

TEST(FlightRecorder, VmAuditOnlyArmsWhereOrderingIsPromised) {
  // Flowlet schemes deliver straight to the VM with no reassembly; a
  // cross-flowlet overtake at the boundary is legal there, so the same
  // inversion that fires under ordering_expected=true must stay silent.
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  const FlightFlowKey f = flow_a();
  fr.on_pick(1, 100, "h1", f, 0x0a000002, 40000, 2, "wrr", 0.5, 0, 1000, 0);
  fr.on_pick(2, 100, "h1", f, 0x0a000002, 40001, 3, "wrr", 0.5, 1000, 1000,
             100);
  fr.on_deliver(2, 101, "h5", false, 5000);
  fr.on_deliver(1, 101, "h5", false, 6000);
  fr.on_vm_delivery(2, f, 1000, 1000, false, /*ordering_expected=*/false,
                    7000);
  fr.on_vm_delivery(1, f, 0, 1000, false, /*ordering_expected=*/false, 8000);
  EXPECT_EQ(fr.audit().vm_reorder, 0u);
  // The staged send indices were consumed, not left to leak.
  EXPECT_EQ(fr.pending_vm(), 0u);
}

TEST(FlightRecorder, RouteChangeAmnestiesBothOrderingAudits) {
  // Sends #1 and #2 ride flowlet 1's path; a route recompute then moves the
  // flowlet, so their late/inverted arrivals are legal aftermath for both
  // the within-flowlet and the VM-boundary audit.
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  const FlightFlowKey f = flow_a();
  fr.on_pick(1, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 0, 1000, 0);
  fr.on_pick(2, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 1000, 1000,
             100);
  fr.on_route_change();
  fr.on_deliver(2, 101, "h5", false, 5000);
  fr.on_deliver(1, 101, "h5", false, 6000);
  EXPECT_EQ(fr.audit().flowlet_reorder, 0u);
  fr.on_vm_delivery(2, f, 1000, 1000, false, /*ordering_expected=*/true,
                    7000);
  fr.on_vm_delivery(1, f, 0, 1000, false, /*ordering_expected=*/true, 8000);
  EXPECT_EQ(fr.audit().vm_reorder, 0u);

  // Post-recompute sends regain full protection on both audits.
  fr.on_pick(3, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 2000, 1000,
             9000);
  fr.on_pick(4, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 3000, 1000,
             9100);
  fr.on_deliver(4, 101, "h5", false, 9500);
  fr.on_deliver(3, 101, "h5", false, 9600);
  EXPECT_EQ(fr.audit().flowlet_reorder, 1u);
}

TEST(FlightRecorder, MidFlowletPortRepinStartsNewOrderingSegment) {
  // When a flowlet's path vanishes from the discovered set the policy
  // legally re-pins the live flowlet to a new port; old-port and new-port
  // packets then ride different FIFO queues, so their interleaved arrivals
  // are not inversions — ordering is only promised per (flowlet, port).
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  const FlightFlowKey f = flow_a();
  fr.on_pick(1, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 0, 1000, 0);
  fr.on_pick(2, 100, "h1", f, 0x0a000002, 40000, 1, "wrr", 0.5, 1000, 1000,
             100);
  // Same flowlet id, new port: the re-pin.
  fr.on_pick(3, 100, "h1", f, 0x0a000002, 40007, 1, "wrr", 0.5, 2000, 1000,
             200);
  // New-port packet races ahead of the old-port pair.
  fr.on_deliver(3, 101, "h5", false, 4000);
  fr.on_deliver(1, 101, "h5", false, 5000);
  fr.on_deliver(2, 101, "h5", false, 6000);
  EXPECT_EQ(fr.audit().flowlet_reorder, 0u);

  // An inversion WITHIN one port segment still fires.
  fr.on_pick(4, 100, "h1", f, 0x0a000002, 40007, 1, "wrr", 0.5, 3000, 1000,
             7000);
  fr.on_pick(5, 100, "h1", f, 0x0a000002, 40007, 1, "wrr", 0.5, 4000, 1000,
             7100);
  fr.on_deliver(5, 101, "h5", false, 8000);
  fr.on_deliver(4, 101, "h5", false, 9000);
  EXPECT_EQ(fr.audit().flowlet_reorder, 1u);
}

TEST(FlightRecorder, EcnMaskAudit) {
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  // ECE surfaced while some path is still clean: the §3.2 invariant broke.
  fr.on_ecn_to_vm(false);
  EXPECT_EQ(fr.audit().ecn_mask, 1u);
  // All paths congested: forging ECE to the guest is the designed behavior.
  fr.on_ecn_to_vm(true);
  EXPECT_EQ(fr.audit().ecn_mask, 1u);
  // Inner CE leaking through the hypervisor to the VM is always a violation.
  fr.on_vm_delivery(9, flow_a(), 0, 1000, /*inner_ce=*/true,
                    /*ordering_expected=*/false, 0);
  EXPECT_EQ(fr.audit().ecn_mask, 2u);
}

TEST(FlightRecorder, FailHandlerReceivesViolations) {
  FlightRecorder fr(full_cfg());
  std::vector<std::pair<std::string, std::string>> seen;
  fr.set_fail_handler([&](const char* auditor, const std::string& detail) {
    seen.emplace_back(auditor, detail);
  });
  fr.on_ecn_to_vm(false);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, "ecn_mask");
  EXPECT_FALSE(seen[0].second.empty());
}

TEST(FlightRecorder, SampledModeKeepsEveryNthJourney) {
  FlightConfig cfg;
  cfg.mode = FlightMode::kSampled;
  cfg.sample_every = 8;
  FlightRecorder fr(cfg);
  EXPECT_TRUE(fr.wants(0));
  EXPECT_FALSE(fr.wants(3));
  EXPECT_TRUE(fr.wants(8));

  for (std::uint64_t uid = 1; uid <= 16; ++uid) {
    fr.on_pick(uid, 100, "h1", flow_a(), 0x0a000002, 40000, 1, "wrr", 0.5,
               (uid - 1) * 1000, 1000, uid * 100);
  }
  // Flow accounting covers every packet; journeys only the sampled ones.
  EXPECT_EQ(fr.packets_seen(), 16u);
  EXPECT_EQ(fr.journeys_started(), 2u);  // uids 8 and 16
}

TEST(FlightRecorder, JourneyRingIsBounded) {
  FlightConfig cfg = full_cfg();
  cfg.journey_ring = 4;
  FlightRecorder fr(cfg);
  for (std::uint64_t uid = 1; uid <= 6; ++uid) {
    run_journey(fr, uid, (uid - 1) * 1000, 1, uid * 10'000);
  }
  EXPECT_EQ(fr.journeys().size(), 4u);
  EXPECT_EQ(fr.find_journey(1), nullptr);  // evicted
  ASSERT_NE(fr.find_journey(6), nullptr);
  EXPECT_EQ(fr.find_journey(6)->seq, 5000u);
}

TEST(FlightRecorder, ResetForgetsEverything) {
  FlightRecorder fr(full_cfg());
  fr.set_fail_handler([](const char*, const std::string&) {});
  run_journey(fr, 1, 0, 1, 0);
  fr.on_ecn_to_vm(false);
  fr.reset();
  EXPECT_EQ(fr.packets_seen(), 0u);
  EXPECT_EQ(fr.delivered(), 0u);
  EXPECT_EQ(fr.audit().total(), 0u);
  EXPECT_TRUE(fr.journeys().empty());
  EXPECT_EQ(fr.find_journey(1), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end: the recorder riding along real experiment-harness runs.
// ---------------------------------------------------------------------------

harness::ExperimentConfig small(harness::Scheme s) {
  harness::ExperimentConfig cfg = harness::make_ns2_profile();
  cfg.scheme = s;
  cfg.topo.hosts_per_leaf = 4;
  cfg.discovery.probe_timeout = 5 * sim::kMillisecond;
  cfg.traffic_start = 15 * sim::kMillisecond;
  return cfg;
}

workload::ClientServerConfig small_wl() {
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 4;
  wl.conns_per_client = 1;
  wl.load = 0.5;
  wl.sizes = workload::FlowSizeDistribution::fixed(400'000);
  return wl;
}

/// Install a flight-enabled scope for one harness run and collect violations.
struct FlightFixture {
  explicit FlightFixture(FlightMode mode) {
    ScopeSettings st;
    st.enabled = true;
    st.flight.mode = mode;
    scope = std::make_unique<Scope>(st);
    scope->flight_recorder()->set_fail_handler(
        [this](const char* auditor, const std::string& detail) {
          violations.emplace_back(std::string(auditor) + ": " + detail);
        });
    guard = std::make_unique<ScopeGuard>(*scope);
  }

  std::unique_ptr<Scope> scope;
  std::unique_ptr<ScopeGuard> guard;
  std::vector<std::string> violations;
};

TEST(FlightRecorderE2E, FullModeReconstructsDeliveredPaths) {
  FlightFixture fx(FlightMode::kFull);
  auto r = run_fct_experiment(small(harness::Scheme::kCloveEcn), small_wl());

  EXPECT_GT(r.flight.delivered, 1000u);
  // Acceptance bar: >=99% of delivered packets have a complete hop chain.
  EXPECT_GE(r.flight.reconstruction_rate(), 0.99);
  EXPECT_GT(r.flight.flowlets, 0u);
  EXPECT_FALSE(r.flight.paths.empty());
  EXPECT_EQ(r.flight.audit.total(), 0u)
      << (fx.violations.empty() ? "" : fx.violations.front());

  // The raw provenance survives the run for post-mortem export.
  FlightRecorder* fr = fx.scope->flight_recorder();
  ASSERT_NE(fr, nullptr);
  EXPECT_NE(fr->journeys_jsonl().find("\"hops\""), std::string::npos);
  EXPECT_NE(fr->flows_jsonl().find("\"flowlet\""), std::string::npos);
}

TEST(FlightRecorderE2E, AuditorsCleanAcrossSchemes) {
  using harness::Scheme;
  for (Scheme s : {Scheme::kEcmp, Scheme::kEdgeFlowlet, Scheme::kCloveEcn,
                   Scheme::kCloveInt}) {
    FlightFixture fx(FlightMode::kFull);
    auto r = run_fct_experiment(small(s), small_wl());
    EXPECT_GT(r.flight.delivered, 0u) << harness::scheme_name(s);
    EXPECT_EQ(r.flight.audit.total(), 0u)
        << harness::scheme_name(s) << ": "
        << (fx.violations.empty() ? "" : fx.violations.front());
  }
}

TEST(FlightRecorderE2E, PrestoReassemblyShieldsVmFromSprayReorder) {
  // Presto sprays 64KB flowcells round-robin, reordering heavily in-fabric;
  // the destination vswitch's reassembly must hide that from the VM.
  // Flowcells only cross in flight when paths queue unequally, so make the
  // fabric the bottleneck (scaled to the 4-host mini-testbed) and fail one
  // S2-L2 parallel link — the paper's asymmetry scenario.
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 3;
  wl.conns_per_client = 1;
  wl.load = 0.8;
  wl.sizes = workload::FlowSizeDistribution::fixed(2'000'000);
  auto presto_cfg = small(harness::Scheme::kPresto);
  presto_cfg.topo.fabric_gbps = 10.0;
  presto_cfg.asymmetric = true;

  {
    FlightFixture fx(FlightMode::kFull);
    auto r = run_fct_experiment(presto_cfg, wl);
    EXPECT_EQ(r.flight.audit.vm_reorder, 0u)
        << (fx.violations.empty() ? "" : fx.violations.front());
  }
  {
    // Negative control: the same spray with reassembly disabled must trip
    // the VM-boundary auditor — proof the audit detects what it claims to.
    FlightFixture fx(FlightMode::kFull);
    auto cfg = presto_cfg;
    cfg.presto_no_reorder = true;
    auto r = run_fct_experiment(cfg, wl);
    EXPECT_GT(r.flight.audit.vm_reorder, 0u);
  }
}

TEST(FlightRecorderE2E, SampledModeStillAuditsEveryFlow) {
  FlightFixture fx(FlightMode::kSampled);
  auto r = run_fct_experiment(small(harness::Scheme::kEcmp), small_wl());
  EXPECT_GT(r.flight.packets_seen, r.flight.journeys_started);
  EXPECT_GT(r.flight.journeys_started, 0u);
  EXPECT_GT(r.flight.flowlets, 0u);
  EXPECT_EQ(r.flight.audit.total(), 0u)
      << (fx.violations.empty() ? "" : fx.violations.front());
}

}  // namespace
}  // namespace clove::telemetry
