// Cross-cutting invariants of the simulator substrate, checked over
// randomized scenarios: packet conservation at links, TTL monotonicity,
// WRR fairness, and byte-exact TCP delivery under every composed scheme.

#include <gtest/gtest.h>

#include <numeric>

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "transport/tcp.hpp"

namespace clove {
namespace {

using clove::testutil::SinkNode;
using clove::testutil::make_data;
using clove::testutil::tuple;

// ---------------------------------------------------------------------------
// Link-level packet conservation: everything offered is either transmitted
// or counted as a drop, never silently lost.
// ---------------------------------------------------------------------------

class LinkConservation : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LinkConservation, ::testing::Values(1, 2, 3, 4));

TEST_P(LinkConservation, OfferedEqualsTxPlusDrops) {
  sim::Simulator sim(static_cast<std::uint64_t>(GetParam()));
  SinkNode sink(1, "sink");
  net::LinkConfig cfg;
  cfg.rate_bytes_per_sec = 1e9;
  cfg.queue_capacity_bytes = 8'000;
  net::Link link(sim, 0, "l", &sink, 0, cfg);

  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17);
  const int offered = 500;
  // Offer packets in bursts at random times; many will overflow.
  for (int i = 0; i < offered; ++i) {
    const sim::Time at =
        static_cast<sim::Time>(rng.uniform_int(std::uint64_t{200'000}));
    sim.schedule_at(at, [&link, &rng] {
      link.enqueue(make_data(tuple(10, 1), 0,
                             static_cast<std::uint32_t>(
                                 100 + rng.uniform_int(std::uint64_t{1400}))));
    });
  }
  sim.run();
  EXPECT_EQ(link.stats().tx_packets + link.stats().drops_overflow +
                link.stats().drops_down,
            static_cast<std::uint64_t>(offered));
  EXPECT_EQ(sink.received.size(), link.stats().tx_packets);
  EXPECT_EQ(link.queue_bytes(), 0);
}

// ---------------------------------------------------------------------------
// Fabric-wide conservation and TTL sanity on the leaf-spine.
// ---------------------------------------------------------------------------

TEST(FabricInvariants, DeliveredPlusDroppedEqualsInjected) {
  sim::Simulator sim(7);
  net::Topology topo(sim);
  net::LeafSpineConfig cfg;
  cfg.hosts_per_leaf = 4;
  cfg.host_queue_pkts = 16;  // tiny queues: force drops
  cfg.fabric_queue_pkts = 16;
  net::LeafSpine net = net::build_leaf_spine(
      topo, cfg, [](net::Topology& t, const std::string& n, int) -> net::Node* {
        return t.add_host<SinkNode>(n);
      });

  auto* src = static_cast<SinkNode*>(net.hosts_by_leaf[0][0]);
  const int injected = 2000;
  sim::Rng rng(3);
  for (int i = 0; i < injected; ++i) {
    const std::size_t d = rng.uniform_int(std::uint64_t{4});
    auto pkt = make_data(tuple(src->ip(), net.hosts_by_leaf[1][d]->ip(),
                               static_cast<std::uint16_t>(1000 + i % 97)),
                         0, 1000);
    sim.schedule_at(static_cast<sim::Time>(i) * 200, [&src, p = pkt.release()]() mutable {
      src->port(0)->enqueue(net::PacketPtr(p));
    });
  }
  sim.run();

  std::uint64_t delivered = 0;
  for (net::Node* h : net.hosts_by_leaf[1]) {
    delivered += static_cast<SinkNode*>(h)->received.size();
  }
  std::uint64_t dropped = 0;
  for (const auto& l : topo.links()) {
    dropped += l->stats().drops_overflow + l->stats().drops_down;
  }
  EXPECT_EQ(delivered + dropped, static_cast<std::uint64_t>(injected));

  // TTL: exactly 3 switch hops for cross-leaf traffic.
  for (net::Node* h : net.hosts_by_leaf[1]) {
    for (const auto& p : static_cast<SinkNode*>(h)->received) {
      EXPECT_EQ(p->ttl, 64 - 3);
    }
  }
}

// ---------------------------------------------------------------------------
// WRR fairness: over many flowlets the port distribution tracks the weights.
// ---------------------------------------------------------------------------

TEST(WrrFairness, UniformWeightsGiveUniformShares) {
  lb::CloveEcnConfig cfg;
  cfg.recovery_interval = sim::seconds(100.0);
  lb::CloveEcnPolicy pol(cfg);
  overlay::PathSet ps;
  for (std::uint16_t i = 0; i < 4; ++i) {
    overlay::PathInfo info;
    info.port = static_cast<std::uint16_t>(50000 + i);
    info.hops = {{10, static_cast<int>(i)}, {2, 0}};
    ps.paths.push_back(info);
  }
  pol.on_paths_updated(2, ps);
  std::map<std::uint16_t, int> counts;
  for (int i = 0; i < 4000; ++i) {
    auto pkt = make_data(
        tuple(1, 2, static_cast<std::uint16_t>(1000 + i)), 0, 100);
    ++counts[pol.pick_port(*pkt, 2, 0)];
  }
  for (const auto& [port, n] : counts) EXPECT_EQ(n, 1000);
}

// ---------------------------------------------------------------------------
// Byte-exact delivery under every scheme, with a lossy asymmetric fabric.
// ---------------------------------------------------------------------------

class ByteExact : public ::testing::TestWithParam<harness::Scheme> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, ByteExact,
    ::testing::Values(harness::Scheme::kEcmp, harness::Scheme::kCloveEcn,
                      harness::Scheme::kPresto, harness::Scheme::kConga),
    [](const ::testing::TestParamInfo<harness::Scheme>& info) {
      std::string n = harness::scheme_name(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(ByteExact, ReceiverSeesExactlyTheBytesWritten) {
  harness::ExperimentConfig cfg = harness::make_ns2_profile();
  cfg.scheme = GetParam();
  cfg.asymmetric = true;
  cfg.topo.hosts_per_leaf = 4;
  cfg.topo.fabric_queue_pkts = 32;  // lossy
  cfg.discovery.probe_timeout = 5 * sim::kMillisecond;
  cfg.traffic_start = 15 * sim::kMillisecond;
  harness::Testbed tb(cfg);
  tb.start_discovery();

  auto* c = tb.clients()[0];
  auto* s = tb.servers()[0];
  transport::TcpSender tx(
      *c, net::FiveTuple{c->ip(), s->ip(), 9000, 80, net::Proto::kTcp},
      cfg.tcp);
  c->register_endpoint(tx.tuple(), &tx);
  std::uint64_t delivered = 0;
  s->on_new_receiver = [&](transport::TcpReceiver& rx, const net::FiveTuple&) {
    rx.on_deliver = [&](std::uint64_t total) { delivered = total; };
  };
  const std::uint64_t bytes = 3'333'333;  // non-MSS-aligned on purpose
  bool done = false;
  tb.simulator().schedule_at(cfg.traffic_start, [&] {
    tx.write(bytes, [&](sim::Time) {
      done = true;
      tb.simulator().stop();
    });
  });
  tb.simulator().run(sim::seconds(120.0));
  EXPECT_TRUE(done) << harness::scheme_name(GetParam());
  EXPECT_EQ(delivered, bytes);
}

}  // namespace
}  // namespace clove
