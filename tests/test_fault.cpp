// clove::fault — plan parsing, injector semantics (blackhole window,
// degrade, deterministic silent drops, switch blackout), and end-to-end
// reproducibility of a faulted run through the harness.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "fault/fault.hpp"
#include "harness/experiment.hpp"
#include "lb/ecmp.hpp"
#include "net/topology.hpp"
#include "overlay/hypervisor.hpp"
#include "sim/simulator.hpp"

namespace clove::fault {
namespace {

TEST(FaultKind, NamesRoundTrip) {
  for (FaultKind k : {FaultKind::kLinkDown, FaultKind::kLinkUp,
                      FaultKind::kLinkDegrade, FaultKind::kLinkDrop,
                      FaultKind::kSwitchDown, FaultKind::kSwitchUp,
                      FaultKind::kFeedbackLoss, FaultKind::kFeedbackDelay}) {
    FaultKind out;
    ASSERT_TRUE(parse_fault_kind(fault_kind_name(k), &out));
    EXPECT_EQ(out, k);
  }
  EXPECT_FALSE(parse_fault_kind("meteor_strike", nullptr));
}

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan plan;
  plan.seed = 99;
  plan.route_convergence = 12 * sim::kMillisecond;
  plan.add(400 * sim::kMillisecond, FaultKind::kLinkDown, "L2->S2#0");
  plan.add(500 * sim::kMillisecond, FaultKind::kLinkDegrade, "L1->S1#1", 0.5);
  plan.add(1200 * sim::kMillisecond, FaultKind::kLinkUp, "L2->S2#0");

  std::string err;
  const FaultPlan back = FaultPlan::parse(plan.to_json(), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_EQ(back.route_convergence, plan.route_convergence);
  ASSERT_EQ(back.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(back.events[i].at, plan.events[i].at);
    EXPECT_EQ(back.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(back.events[i].target, plan.events[i].target);
    EXPECT_DOUBLE_EQ(back.events[i].value, plan.events[i].value);
  }
}

TEST(FaultPlan, BareArrayIsEventsList) {
  std::string err;
  const FaultPlan plan = FaultPlan::parse_text(
      R"([{"at_ms": 10, "kind": "drop", "target": "L1->S1#0", "value": 0.25}])",
      &err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kLinkDrop);
  EXPECT_DOUBLE_EQ(plan.events[0].value, 0.25);
  EXPECT_EQ(plan.route_convergence, 30 * sim::kMillisecond);  // default kept
}

TEST(FaultPlan, ParseRejectsBadInput) {
  std::string err;
  EXPECT_TRUE(FaultPlan::parse_text("42", &err).empty());
  EXPECT_FALSE(err.empty());

  err.clear();
  EXPECT_TRUE(FaultPlan::parse_text(
                  R"({"events":[{"at_ms":1,"kind":"nope","target":"x"}]})",
                  &err)
                  .empty());
  EXPECT_NE(err.find("nope"), std::string::npos);

  err.clear();
  EXPECT_TRUE(FaultPlan::parse_text(
                  R"({"events":[{"at_ms":1,"kind":"link_down"}]})", &err)
                  .empty());
  EXPECT_NE(err.find("target"), std::string::npos);

  err.clear();
  EXPECT_TRUE(FaultPlan::parse_text(
                  R"({"events":[{"kind":"link_down","target":"x"}]})", &err)
                  .empty());
  EXPECT_NE(err.find("at_ms"), std::string::npos);
}

TEST(FaultPlan, FromEnvInlineAndFile) {
  const char* spec =
      R"({"seed": 3, "events": [{"at_ms": 5, "kind": "link_down", "target": "L1->S1#0"}]})";
  ::setenv("CLOVE_FAULT_PLAN", spec, 1);
  std::string err;
  FaultPlan plan = FaultPlan::from_env(&err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.seed, 3u);

  // A path to a spec file works too (written into the test's cwd).
  const char* fname = "test_fault_plan_tmp.json";
  {
    std::ofstream out(fname);
    out << spec;
  }
  ::setenv("CLOVE_FAULT_PLAN", fname, 1);
  plan = FaultPlan::from_env(&err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(plan.events.size(), 1u);

  // The conventional '@file' spelling resolves to the same path.
  ::setenv("CLOVE_FAULT_PLAN", (std::string("@") + fname).c_str(), 1);
  plan = FaultPlan::from_env(&err);
  std::remove(fname);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(plan.events.size(), 1u);

  ::setenv("CLOVE_FAULT_PLAN", "no_such_file.json", 1);
  plan = FaultPlan::from_env(&err);
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(err.empty());

  ::unsetenv("CLOVE_FAULT_PLAN");
  EXPECT_TRUE(FaultPlan::from_env().empty());
}

// ---------------------------------------------------------------------------
// Injector semantics on a real fabric
// ---------------------------------------------------------------------------

class InjectorFixture : public ::testing::Test {
 protected:
  void build() {
    topo = std::make_unique<net::Topology>(sim);
    net::LeafSpineConfig cfg;
    cfg.hosts_per_leaf = 2;
    fabric = net::build_leaf_spine(
        *topo, cfg,
        [this](net::Topology& t, const std::string& name, int) -> net::Node* {
          return t.add_host<overlay::Hypervisor>(
              name, sim, overlay::HypervisorConfig{},
              std::make_unique<lb::EcmpPolicy>());
        });
  }

  sim::Simulator sim;
  std::unique_ptr<net::Topology> topo;
  net::LeafSpine fabric;
};

TEST_F(InjectorFixture, LinkDownDefersRouteConvergence) {
  build();
  const int epoch0 = topo->route_epoch();
  net::Link* l = fabric.fabric_links[1][1][0];  // L2->S2, first parallel

  FaultPlan plan;
  plan.route_convergence = 5 * sim::kMillisecond;
  plan.add(10 * sim::kMillisecond, FaultKind::kLinkDown, "L2->S2#0");
  FaultInjector inj(*topo, plan);
  inj.arm();

  sim.run(12 * sim::kMillisecond);
  // Blackhole window: the link is dead but routing still points at it.
  EXPECT_TRUE(l->is_down());
  EXPECT_TRUE(topo->reverse_of(l)->is_down());
  EXPECT_EQ(topo->route_epoch(), epoch0);

  sim.run(16 * sim::kMillisecond);
  EXPECT_EQ(topo->route_epoch(), epoch0 + 1);
  EXPECT_EQ(inj.stats().events_applied, 1);
  EXPECT_EQ(inj.stats().route_recomputes, 1);
}

TEST_F(InjectorFixture, LinkUpRestoresBothDirections) {
  build();
  net::Link* l = fabric.fabric_links[1][1][0];

  FaultPlan plan;
  plan.route_convergence = 0;  // recompute immediately
  plan.add(1 * sim::kMillisecond, FaultKind::kLinkDown, "L2->S2#0");
  plan.add(5 * sim::kMillisecond, FaultKind::kLinkUp, "L2->S2#0");
  FaultInjector inj(*topo, plan);
  inj.arm();
  sim.run(10 * sim::kMillisecond);

  EXPECT_FALSE(l->is_down());
  EXPECT_FALSE(topo->reverse_of(l)->is_down());
  EXPECT_EQ(inj.stats().events_applied, 2);
  EXPECT_EQ(inj.stats().route_recomputes, 2);
}

TEST_F(InjectorFixture, ParallelIndexSelectsDistinctLink) {
  build();
  FaultPlan plan;
  plan.add(1 * sim::kMillisecond, FaultKind::kLinkDown, "L2->S2#1");
  FaultInjector inj(*topo, plan);
  inj.arm();
  sim.run(2 * sim::kMillisecond);
  EXPECT_FALSE(fabric.fabric_links[1][1][0]->is_down());
  EXPECT_TRUE(fabric.fabric_links[1][1][1]->is_down());
}

TEST_F(InjectorFixture, DegradeScalesCapacityAndValueZeroRestores) {
  build();
  net::Link* l = fabric.fabric_links[0][0][0];  // L1->S1

  FaultPlan plan;
  plan.add(1 * sim::kMillisecond, FaultKind::kLinkDegrade, "L1->S1#0", 0.25);
  plan.add(3 * sim::kMillisecond, FaultKind::kLinkDegrade, "L1->S1#0", 0.0);
  FaultInjector inj(*topo, plan);
  inj.arm();

  sim.run(2 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(l->capacity_factor(), 0.25);
  sim.run(4 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(l->capacity_factor(), 1.0);
}

TEST_F(InjectorFixture, SwitchBlackoutTogglesEveryAdjacentConnection) {
  build();
  FaultPlan plan;
  plan.route_convergence = 0;
  plan.add(1 * sim::kMillisecond, FaultKind::kSwitchDown, "S2");
  plan.add(5 * sim::kMillisecond, FaultKind::kSwitchUp, "S2");
  FaultInjector inj(*topo, plan);
  inj.arm();

  sim.run(2 * sim::kMillisecond);
  for (std::size_t leaf = 0; leaf < fabric.fabric_links.size(); ++leaf) {
    for (net::Link* l : fabric.fabric_links[leaf][1]) {  // spine S2 = idx 1
      EXPECT_TRUE(l->is_down());
      EXPECT_TRUE(topo->reverse_of(l)->is_down());
    }
    for (net::Link* l : fabric.fabric_links[leaf][0]) {  // S1 untouched
      EXPECT_FALSE(l->is_down());
    }
  }

  sim.run(6 * sim::kMillisecond);
  for (std::size_t leaf = 0; leaf < fabric.fabric_links.size(); ++leaf) {
    for (net::Link* l : fabric.fabric_links[leaf][1]) {
      EXPECT_FALSE(l->is_down());
      EXPECT_FALSE(topo->reverse_of(l)->is_down());
    }
  }
}

TEST_F(InjectorFixture, UnresolvedTargetsCountAsFailed) {
  build();
  FaultPlan plan;
  plan.add(1 * sim::kMillisecond, FaultKind::kLinkDown, "L9->S9#0");
  plan.add(2 * sim::kMillisecond, FaultKind::kSwitchDown, "S9");
  plan.add(3 * sim::kMillisecond, FaultKind::kFeedbackLoss, "no-such-host",
           1.0);
  FaultInjector inj(*topo, plan);
  inj.arm();
  sim.run(5 * sim::kMillisecond);
  EXPECT_EQ(inj.stats().events_applied, 0);
  EXPECT_EQ(inj.stats().events_failed, 3);
}

TEST_F(InjectorFixture, FeedbackFaultMatchesWildcardAndName) {
  build();
  FaultPlan plan;
  plan.add(1 * sim::kMillisecond, FaultKind::kFeedbackLoss, "*", 1.0);
  plan.add(2 * sim::kMillisecond, FaultKind::kFeedbackDelay,
           topo->hosts()[0]->name(), 2.0);
  FaultInjector inj(*topo, plan);
  inj.arm();
  sim.run(3 * sim::kMillisecond);
  EXPECT_EQ(inj.stats().events_applied, 2);
  EXPECT_EQ(inj.stats().events_failed, 0);
}

// ---------------------------------------------------------------------------
// Determinism end to end
// ---------------------------------------------------------------------------

TEST(FaultDeterminism, SilentDropSequenceIsSeedReproducible) {
  // Two identical topologies, same plan/seed: the fault-drop pattern (and so
  // every downstream stat) must match bit for bit.
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim(1);
    net::Topology topo(sim);
    auto* a = topo.add_host<overlay::Hypervisor>(
        "a", sim, overlay::HypervisorConfig{},
        std::make_unique<lb::EcmpPolicy>());
    auto* b = topo.add_host<overlay::Hypervisor>(
        "b", sim, overlay::HypervisorConfig{},
        std::make_unique<lb::EcmpPolicy>());
    net::LinkConfig lc;
    auto [fwd, rev] = topo.connect(a, b, lc);
    (void)rev;
    fwd->set_fault_drop(0.5, seed);
    for (int i = 0; i < 200; ++i) {
      auto p = net::make_packet();
      p->inner = net::FiveTuple{a->ip(), b->ip(), 1000, 80, net::Proto::kTcp};
      p->payload = 1000;
      fwd->enqueue(std::move(p));
    }
    sim.run(1 * sim::kSecond);
    return fwd->stats().drops_fault;
  };

  const std::uint64_t d1 = run_once(7);
  const std::uint64_t d2 = run_once(7);
  EXPECT_EQ(d1, d2);
  EXPECT_GT(d1, 0u);
  EXPECT_LT(d1, 200u);
  EXPECT_NE(run_once(8), 0u);  // another seed still drops, plan stays active
}

TEST(FaultDeterminism, FaultedHarnessRunIsBitIdentical) {
  auto run_once = [] {
    harness::ExperimentConfig cfg = harness::make_testbed_profile();
    cfg.scheme = harness::Scheme::kCloveEcn;
    cfg.topo.hosts_per_leaf = 2;
    cfg.discovery.probe_interval = 50 * sim::kMillisecond;
    cfg.path_health.enabled = true;
    cfg.fault_plan.route_convergence = 20 * sim::kMillisecond;
    cfg.fault_plan.add(60 * sim::kMillisecond, FaultKind::kLinkDown,
                       "L2->S2#0");
    cfg.fault_plan.add(200 * sim::kMillisecond, FaultKind::kLinkUp,
                       "L2->S2#0");
    cfg.max_sim_time = 1 * sim::kSecond;

    workload::ClientServerConfig wl;
    wl.load = 0.4;
    wl.jobs_per_conn = 10;
    wl.conns_per_client = 1;
    return harness::run_fct_experiment(cfg, wl);
  };

  const harness::ExperimentResult r1 = run_once();
  const harness::ExperimentResult r2 = run_once();
  EXPECT_GT(r1.jobs, 0u);
  EXPECT_EQ(r1.jobs, r2.jobs);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.drops, r2.drops);
  EXPECT_EQ(r1.timeouts, r2.timeouts);
  // Exact FP equality on purpose: same seeds, same event order.
  EXPECT_EQ(r1.avg_fct_s, r2.avg_fct_s);
  EXPECT_EQ(r1.p99_fct_s, r2.p99_fct_s);
}

}  // namespace
}  // namespace clove::fault
