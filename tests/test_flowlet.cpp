// Tests for flowlet detection (hypervisor-side and in-switch tables).

#include <gtest/gtest.h>

#include "net/switch_flowlet.hpp"
#include "overlay/flowlet.hpp"
#include "test_util.hpp"

namespace clove::overlay {
namespace {

using clove::testutil::tuple;
using sim::kMicrosecond;

TEST(FlowletTracker, FirstPacketStartsFlowlet) {
  FlowletTracker t(100 * kMicrosecond);
  auto r = t.touch(tuple(1, 2), 0);
  EXPECT_TRUE(r.new_flowlet);
  EXPECT_EQ(t.flowlets_started(), 1u);
}

TEST(FlowletTracker, PacketsWithinGapShareFlowlet) {
  FlowletTracker t(100 * kMicrosecond);
  t.touch(tuple(1, 2), 0);
  t.set_port(tuple(1, 2), 5555);
  auto r = t.touch(tuple(1, 2), 50 * kMicrosecond);
  EXPECT_FALSE(r.new_flowlet);
  EXPECT_EQ(r.port, 5555);
  // Gap measured from the *previous* packet, so a long train never splits
  // as long as consecutive gaps stay small.
  for (int i = 0; i < 10; ++i) {
    r = t.touch(tuple(1, 2), (60 + i * 90) * kMicrosecond);
    EXPECT_FALSE(r.new_flowlet) << i;
  }
}

TEST(FlowletTracker, GapCreatesNewFlowlet) {
  FlowletTracker t(100 * kMicrosecond);
  auto r1 = t.touch(tuple(1, 2), 0);
  auto r2 = t.touch(tuple(1, 2), 101 * kMicrosecond);
  EXPECT_TRUE(r2.new_flowlet);
  EXPECT_NE(r1.flowlet_id, r2.flowlet_id);
  EXPECT_EQ(t.flowlets_started(), 2u);
}

TEST(FlowletTracker, ExactGapBoundaryIsSameFlowlet) {
  FlowletTracker t(100 * kMicrosecond);
  t.touch(tuple(1, 2), 0);
  EXPECT_FALSE(t.touch(tuple(1, 2), 100 * kMicrosecond).new_flowlet);
}

TEST(FlowletTracker, FlowsAreIndependent) {
  FlowletTracker t(100 * kMicrosecond);
  t.touch(tuple(1, 2), 0);
  auto r = t.touch(tuple(1, 3), 10);
  EXPECT_TRUE(r.new_flowlet);
  EXPECT_EQ(t.size(), 2u);
}

TEST(FlowletTracker, PortStoredPerFlow) {
  FlowletTracker t(100 * kMicrosecond);
  t.touch(tuple(1, 2), 0);
  t.set_port(tuple(1, 2), 111);
  t.touch(tuple(1, 3), 0);
  t.set_port(tuple(1, 3), 222);
  EXPECT_EQ(t.touch(tuple(1, 2), 1).port, 111);
  EXPECT_EQ(t.touch(tuple(1, 3), 1).port, 222);
}

TEST(FlowletTracker, ExpireDropsIdleFlows) {
  FlowletTracker t(100 * kMicrosecond);
  t.touch(tuple(1, 2), 0);
  t.touch(tuple(1, 3), 900 * kMicrosecond);
  t.expire(1000 * kMicrosecond, 500 * kMicrosecond);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowletTracker, GapConfigurable) {
  FlowletTracker t(10 * kMicrosecond);
  t.touch(tuple(1, 2), 0);
  EXPECT_TRUE(t.touch(tuple(1, 2), 50 * kMicrosecond).new_flowlet);
  t.set_gap(1000 * kMicrosecond);
  EXPECT_EQ(t.gap(), 1000 * kMicrosecond);
  EXPECT_FALSE(t.touch(tuple(1, 2), 200 * kMicrosecond).new_flowlet);
}

// ---------------------------------------------------------------------------
// In-switch variant
// ---------------------------------------------------------------------------

TEST(SwitchFlowletTable, NewAndExistingFlowlets) {
  net::SwitchFlowletTable t(100 * kMicrosecond);
  auto d1 = t.touch(42, 0);
  EXPECT_TRUE(d1.new_flowlet);
  t.set_value(42, 3);
  auto d2 = t.touch(42, 50 * kMicrosecond);
  EXPECT_FALSE(d2.new_flowlet);
  EXPECT_EQ(d2.value, 3u);
  auto d3 = t.touch(42, 500 * kMicrosecond);
  EXPECT_TRUE(d3.new_flowlet);
}

TEST(SwitchFlowletTable, KeysIndependent) {
  net::SwitchFlowletTable t(100 * kMicrosecond);
  (void)t.touch(1, 0);
  t.set_value(1, 10);
  (void)t.touch(2, 0);
  t.set_value(2, 20);
  EXPECT_EQ(t.touch(1, 1).value, 10u);
  EXPECT_EQ(t.touch(2, 1).value, 20u);
}

TEST(SwitchFlowletTable, ExpireHousekeeping) {
  net::SwitchFlowletTable t(100 * kMicrosecond);
  (void)t.touch(1, 0);
  (void)t.touch(2, 10'000 * kMicrosecond);
  t.expire(10'001 * kMicrosecond, 1000 * kMicrosecond);
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace clove::overlay
