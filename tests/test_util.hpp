#pragma once

// Shared helpers for the Clove test suite.

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace clove::testutil {

/// A terminal node that records every packet delivered to it.
class SinkNode : public net::Node {
 public:
  SinkNode(net::NodeId id, std::string name) : net::Node(id, std::move(name)) {}

  void receive(net::PacketPtr pkt, int in_port) override {
    in_ports.push_back(in_port);
    received.push_back(std::move(pkt));
  }

  std::vector<net::PacketPtr> received;
  std::vector<int> in_ports;
};

/// Build a TCP data packet with the given tuple/seq/len.
inline net::PacketPtr make_data(const net::FiveTuple& t, std::uint64_t seq,
                                std::uint32_t len) {
  auto p = net::make_packet();
  p->inner = t;
  p->tcp.seq = seq;
  p->payload = len;
  return p;
}

inline net::FiveTuple tuple(net::IpAddr src, net::IpAddr dst,
                            std::uint16_t sport = 1000,
                            std::uint16_t dport = 80) {
  return net::FiveTuple{src, dst, sport, dport, net::Proto::kTcp};
}

}  // namespace clove::testutil
