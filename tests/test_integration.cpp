// End-to-end integration tests reproducing the paper's qualitative claims at
// miniature scale: elephant-collision resolution, asymmetric adaptation,
// ECN masking in the full datapath, and failure rediscovery.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "lb/edge_flowlet.hpp"
#include "transport/tcp.hpp"
#include "workload/client_server.hpp"

namespace clove {
namespace {

using harness::ExperimentConfig;
using harness::Scheme;
using harness::Testbed;

ExperimentConfig base_cfg(Scheme s) {
  ExperimentConfig cfg = harness::make_ns2_profile();
  cfg.scheme = s;
  cfg.topo.hosts_per_leaf = 4;
  cfg.discovery.probe_timeout = 5 * sim::kMillisecond;
  cfg.traffic_start = 15 * sim::kMillisecond;
  return cfg;
}

/// Run two parallel elephants from distinct clients to distinct servers and
/// return aggregate goodput in Gb/s. With 4 clients and 40G of fabric per
/// spine pair the fabric is never the constraint unless flows collide.
double elephant_goodput(Scheme scheme, std::uint64_t seed,
                        int n_elephants = 4) {
  ExperimentConfig cfg = base_cfg(scheme);
  cfg.seed = seed;
  Testbed tb(cfg);
  tb.start_discovery();

  transport::TcpConfig tcfg = cfg.tcp;
  std::vector<std::unique_ptr<transport::TcpSender>> senders;
  int remaining = n_elephants;
  const std::uint64_t bytes = 20'000'000;
  sim::Time t_end = 0;
  for (int i = 0; i < n_elephants; ++i) {
    auto* c = tb.clients()[static_cast<std::size_t>(i) % tb.clients().size()];
    auto* s = tb.servers()[static_cast<std::size_t>(i) % tb.servers().size()];
    auto tx = std::make_unique<transport::TcpSender>(
        *c,
        net::FiveTuple{c->ip(), s->ip(),
                       static_cast<std::uint16_t>(7000 + i), 80,
                       net::Proto::kTcp},
        tcfg);
    c->register_endpoint(tx->tuple(), tx.get());
    auto* raw = tx.get();
    tb.simulator().schedule_at(cfg.traffic_start, [raw, bytes, &remaining,
                                                   &t_end, &tb] {
      raw->write(bytes, [&remaining, &t_end, &tb](sim::Time t) {
        t_end = std::max(t_end, t);
        if (--remaining == 0) tb.simulator().stop();
      });
    });
    senders.push_back(std::move(tx));
  }
  tb.simulator().run(sim::seconds(120.0));
  const double secs = sim::to_seconds(t_end - cfg.traffic_start);
  return static_cast<double>(n_elephants * bytes) * 8.0 / secs / 1e9;
}

TEST(Integration, SingleFlowReachesNearLineRate) {
  // One 20MB flow across the fabric: ~16ms at 10G. Allow generous slack for
  // slow start.
  const double gbps = elephant_goodput(Scheme::kEcmp, 3, 1);
  EXPECT_GT(gbps, 5.0);
}

TEST(Integration, CloveResolvesElephantCollisions) {
  // Under ECMP some seeds hash multiple elephants onto one 40G path pair;
  // averaged over seeds, Clove-ECN achieves at least as much goodput, and
  // strictly more in collision seeds. (4x20MB from 4 distinct hosts.)
  double ecmp = 0.0, clove = 0.0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ecmp += elephant_goodput(Scheme::kEcmp, seed);
    clove += elephant_goodput(Scheme::kCloveEcn, seed);
  }
  EXPECT_GE(clove, ecmp * 0.95);
  EXPECT_GT(clove / 3.0, 20.0);  // well beyond a single 10G access link x4?
}

TEST(Integration, CongestionSpawnsNewFlowlets) {
  // The mechanism behind Edge-Flowlet's implicit congestion awareness
  // (§3.2/§5.2): congested paths delay ACK clocking, opening inter-packet
  // gaps that split flows into multiple flowlets. Under a saturating
  // workload, the number of flowlets must exceed the number of flows.
  // (The FCT *ordering* between schemes is established by the Fig. 4/8
  // benches at realistic scale — at 4 hosts it is noise.)
  ExperimentConfig cfg = base_cfg(Scheme::kEdgeFlowlet);
  cfg.asymmetric = true;
  Testbed tb(cfg);
  tb.start_discovery();

  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 10;
  wl.conns_per_client = 2;
  wl.load = 0.9;
  wl.tcp = cfg.tcp;
  wl.start_time = cfg.traffic_start;
  wl.bisection_bytes_per_sec = sim::gbps_to_bytes_per_sec(40.0);
  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());
  ws.start([&] { tb.simulator().stop(); });
  tb.simulator().run(sim::seconds(120.0));

  std::uint64_t flowlets = 0;
  for (auto* c : tb.clients()) {
    auto* pol = dynamic_cast<lb::EdgeFlowletPolicy*>(&c->policy());
    ASSERT_NE(pol, nullptr);
    flowlets += pol->flowlets().flowlets_started();
  }
  // 8 connections carrying 80 jobs: far more flowlets than connections.
  EXPECT_GT(flowlets, 8u * 4u);
}

TEST(Integration, CloveEcnAdaptsWeightsAwayFromBottleneck) {
  // Asymmetric fabric + steady cross-traffic: the Clove-ECN weights for
  // paths through S2 (the failed side) must fall below the S1 paths'.
  // This runs at the paper's full scale (16 hosts/leaf, 40G fabric links):
  // only there is the failed S2 downlink the dominant bottleneck, with the
  // 2:1 fabric-to-access speed ratio keeping uplink marking sparse. (On a
  // uniform-speed mini fabric every queue marks and the differential signal
  // washes out — which is itself a faithful property of the algorithm.)
  ExperimentConfig cfg = base_cfg(Scheme::kCloveEcn);
  cfg.topo.hosts_per_leaf = 16;
  cfg.asymmetric = true;
  cfg.tcp.min_rto = 200 * sim::kMillisecond;  // testbed profile
  Testbed tb(cfg);
  tb.start_discovery();

  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 25;
  wl.conns_per_client = 2;
  wl.load = 0.7;
  wl.tcp = cfg.tcp;
  wl.start_time = cfg.traffic_start;
  wl.bisection_bytes_per_sec = sim::gbps_to_bytes_per_sec(160.0);
  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());
  ws.start([&] { tb.simulator().stop(); });
  tb.simulator().run(sim::seconds(120.0));

  // Inspect one client's policy weights toward some server it talked to.
  const net::IpAddr s2 = tb.fabric().spines[1]->ip();
  int checked = 0;
  double s1_weight = 0.0, s2_weight = 0.0;
  for (auto* c : tb.clients()) {
    auto* pol = dynamic_cast<lb::CloveEcnPolicy*>(&c->policy());
    ASSERT_NE(pol, nullptr);
    for (auto* s : tb.servers()) {
      const overlay::PathSet* ps = c->discovery().paths(s->ip());
      if (ps == nullptr) continue;
      const auto w = pol->weights(s->ip());
      if (w.size() != ps->paths.size() || w.empty()) continue;
      // Skip pairs that carried no traffic: their weights never adapted
      // from uniform and only dilute the measurement.
      double mn = 1.0, mx = 0.0;
      for (double x : w) {
        mn = std::min(mn, x);
        mx = std::max(mx, x);
      }
      if (mx - mn < 0.02) continue;
      for (std::size_t i = 0; i < ps->paths.size(); ++i) {
        bool via_s2 = false;
        for (const auto& hop : ps->paths[i].hops) {
          if (hop.node == s2) via_s2 = true;
        }
        (via_s2 ? s2_weight : s1_weight) += w[i];
        ++checked;
      }
    }
  }
  ASSERT_GT(checked, 0);
  // Aggregate weight mass on S1 paths exceeds S2 paths (S2 lost capacity).
  EXPECT_GT(s1_weight, s2_weight);
}

TEST(Integration, MptcpUsesMultiplePathsForOneConnection) {
  ExperimentConfig cfg = base_cfg(Scheme::kMptcp);
  Testbed tb(cfg);
  auto* c = tb.clients()[0];
  auto* s = tb.servers()[0];
  transport::MptcpConfig mcfg = cfg.mptcp;
  mcfg.tcp = cfg.tcp;
  transport::MptcpSender m(
      *c, net::FiveTuple{c->ip(), s->ip(), 9000, 80, net::Proto::kTcp}, mcfg);
  for (auto* sf : m.endpoints()) c->register_endpoint(sf->tuple(), sf);
  bool done = false;
  m.write(8'000'000, [&](sim::Time) {
    done = true;
    tb.simulator().stop();
  });
  tb.simulator().run(sim::seconds(60.0));
  EXPECT_TRUE(done);
  int active = 0;
  for (auto* sf : m.endpoints()) {
    if (sf->stats().bytes_acked > 0) ++active;
  }
  EXPECT_GE(active, 2);
}

TEST(Integration, DiscoveryConvergesBeforeTrafficInAllSchemes) {
  for (Scheme s : {Scheme::kCloveEcn, Scheme::kCloveInt, Scheme::kPresto}) {
    ExperimentConfig cfg = base_cfg(s);
    Testbed tb(cfg);
    tb.start_discovery();
    tb.simulator().run(cfg.traffic_start);
    const overlay::PathSet* ps =
        tb.clients()[0]->discovery().paths(tb.servers()[0]->ip());
    ASSERT_NE(ps, nullptr) << harness::scheme_name(s);
    EXPECT_EQ(ps->size(), 4u) << harness::scheme_name(s);
  }
}

TEST(Integration, SchemeNamesRoundTrip) {
  EXPECT_EQ(harness::scheme_name(Scheme::kCloveEcn), "Clove-ECN");
  EXPECT_TRUE(harness::scheme_is_edge_based(Scheme::kPresto));
  EXPECT_FALSE(harness::scheme_is_edge_based(Scheme::kConga));
}

TEST(Integration, CongaRunsEndToEnd) {
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 5;
  wl.conns_per_client = 1;
  wl.load = 0.5;
  wl.sizes = workload::FlowSizeDistribution::fixed(500'000);
  auto r = harness::run_fct_experiment(base_cfg(Scheme::kConga), wl);
  EXPECT_EQ(r.jobs, 4u * 5u);
}

TEST(Integration, LetFlowRunsEndToEnd) {
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 5;
  wl.conns_per_client = 1;
  wl.load = 0.5;
  wl.sizes = workload::FlowSizeDistribution::fixed(500'000);
  auto r = harness::run_fct_experiment(base_cfg(Scheme::kLetFlow), wl);
  EXPECT_EQ(r.jobs, 4u * 5u);
}

TEST(Integration, FixedSeedRunsAreBitIdentical) {
  // Repeatability contract for the forwarding fast path: the cached wire
  // hash, FlatMap flow tables with amortized expiry, and the single-wake
  // link pipeline must not introduce any run-order or value nondeterminism.
  // Two full Clove-ECN experiments at the same seed must agree exactly —
  // doubles compared bit-for-bit, not within tolerance.
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 4;
  wl.conns_per_client = 2;
  wl.load = 0.6;
  wl.sizes = workload::FlowSizeDistribution::fixed(200'000);

  auto fingerprint = [&wl] {
    ExperimentConfig cfg = base_cfg(Scheme::kCloveEcn);
    cfg.seed = 42;
    return harness::run_fct_experiment(cfg, wl);
  };
  const auto a = fingerprint();
  const auto b = fingerprint();
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.avg_fct_s, b.avg_fct_s);
  EXPECT_EQ(a.p99_fct_s, b.p99_fct_s);
  EXPECT_EQ(a.mice_avg_fct_s, b.mice_avg_fct_s);
  EXPECT_EQ(a.elephant_avg_fct_s, b.elephant_avg_fct_s);
}

}  // namespace
}  // namespace clove
