// Parameterized property tests: invariants that must hold for EVERY
// load-balancing scheme and across configuration sweeps.

#include <gtest/gtest.h>

#include <numeric>

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "workload/client_server.hpp"

namespace clove {
namespace {

using harness::ExperimentConfig;
using harness::Scheme;

ExperimentConfig tiny_cfg(Scheme s, std::uint64_t seed = 1) {
  ExperimentConfig cfg = harness::make_ns2_profile();
  cfg.scheme = s;
  cfg.seed = seed;
  cfg.topo.hosts_per_leaf = 4;
  cfg.discovery.probe_timeout = 5 * sim::kMillisecond;
  cfg.traffic_start = 15 * sim::kMillisecond;
  return cfg;
}

workload::ClientServerConfig tiny_wl() {
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 4;
  wl.conns_per_client = 1;
  wl.load = 0.5;
  wl.sizes = workload::FlowSizeDistribution::fixed(300'000);
  return wl;
}

// ---------------------------------------------------------------------------
// Per-scheme invariants
// ---------------------------------------------------------------------------

class AllSchemes : public ::testing::TestWithParam<Scheme> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemes,
    ::testing::Values(Scheme::kEcmp, Scheme::kEdgeFlowlet, Scheme::kCloveEcn,
                      Scheme::kCloveInt, Scheme::kCloveLatency, Scheme::kPresto,
                      Scheme::kMptcp, Scheme::kConga, Scheme::kLetFlow),
    [](const ::testing::TestParamInfo<Scheme>& info) {
      std::string n = harness::scheme_name(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(AllSchemes, EveryJobCompletesSymmetric) {
  auto r = harness::run_fct_experiment(tiny_cfg(GetParam()), tiny_wl());
  EXPECT_EQ(r.jobs, 16u);  // 4 clients x 1 conn x 4 jobs
  EXPECT_GT(r.avg_fct_s, 0.0);
}

TEST_P(AllSchemes, EveryJobCompletesAsymmetric) {
  auto cfg = tiny_cfg(GetParam());
  cfg.asymmetric = true;
  auto r = harness::run_fct_experiment(cfg, tiny_wl());
  EXPECT_EQ(r.jobs, 16u);
}

TEST_P(AllSchemes, DeterministicAcrossRuns) {
  auto r1 = harness::run_fct_experiment(tiny_cfg(GetParam()), tiny_wl());
  auto r2 = harness::run_fct_experiment(tiny_cfg(GetParam()), tiny_wl());
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_DOUBLE_EQ(r1.avg_fct_s, r2.avg_fct_s);
}

TEST_P(AllSchemes, FctIsAtLeastTheIdealTransferTime) {
  // 300KB at 10G is ~240us + RTT; no scheme can beat physics.
  auto r = harness::run_fct_experiment(tiny_cfg(GetParam()), tiny_wl());
  EXPECT_GT(r.avg_fct_s, 0.00024);
}

TEST_P(AllSchemes, HigherLoadNeverCheaper) {
  // Avg FCT at 1.2x bisection load must exceed avg FCT at 0.2x: a basic
  // sanity property that catches accounting bugs in the workload.
  auto wl = tiny_wl();
  wl.jobs_per_conn = 8;
  wl.load = 0.2;
  auto low = harness::run_fct_experiment(tiny_cfg(GetParam()), wl);
  wl.load = 1.2;
  auto high = harness::run_fct_experiment(tiny_cfg(GetParam()), wl);
  EXPECT_GT(high.avg_fct_s, low.avg_fct_s * 0.8);
}

// ---------------------------------------------------------------------------
// Clove-ECN weight invariants under randomized feedback storms
// ---------------------------------------------------------------------------

class WeightInvariants : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, WeightInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(WeightInvariants, WeightsStayNormalizedUnderRandomFeedback) {
  lb::CloveEcnConfig ccfg;
  ccfg.recovery_interval = 2 * sim::kMillisecond;
  lb::CloveEcnPolicy pol(ccfg, GetParam());
  overlay::PathSet ps;
  sim::Rng rng(GetParam());
  const int n_paths = 2 + static_cast<int>(rng.uniform_int(std::uint64_t{6}));
  for (int i = 0; i < n_paths; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(50000 + i);
    p.hops = {{10, i}, {2, 0}};
    ps.paths.push_back(p);
  }
  pol.on_paths_updated(2, ps);

  sim::Time t = 0;
  for (int step = 0; step < 2000; ++step) {
    t += static_cast<sim::Time>(rng.uniform_int(std::uint64_t{200})) *
         sim::kMicrosecond;
    net::CloveFeedback fb;
    fb.present = true;
    fb.ecn_set = true;
    fb.port = static_cast<std::uint16_t>(
        50000 + rng.uniform_int(static_cast<std::uint64_t>(n_paths)));
    pol.on_feedback(2, fb, t);

    auto w = pol.weights(2);
    const double sum = std::accumulate(w.begin(), w.end(), 0.0);
    ASSERT_NEAR(sum, 1.0, 1e-6) << "step " << step;
    for (double x : w) {
      ASSERT_GE(x, 0.0);
      ASSERT_LE(x, 1.0 + 1e-9);
    }
  }
}

TEST_P(WeightInvariants, PicksAlwaysReturnMappedPorts) {
  lb::CloveEcnPolicy pol(lb::CloveEcnConfig{}, GetParam());
  overlay::PathSet ps;
  for (int i = 0; i < 4; ++i) {
    overlay::PathInfo p;
    p.port = static_cast<std::uint16_t>(50000 + i);
    p.hops = {{10, i}, {2, 0}};
    ps.paths.push_back(p);
  }
  pol.on_paths_updated(2, ps);
  sim::Rng rng(GetParam() * 7);
  sim::Time t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<sim::Time>(rng.uniform_int(std::uint64_t{300})) *
         sim::kMicrosecond;
    auto pkt = net::make_packet();
    pkt->inner = net::FiveTuple{
        1, 2, static_cast<std::uint16_t>(rng.uniform_int(std::uint64_t{16})),
        80, net::Proto::kTcp};
    const auto port = pol.pick_port(*pkt, 2, t);
    ASSERT_GE(port, 50000);
    ASSERT_LE(port, 50003);
  }
}

// ---------------------------------------------------------------------------
// Flowlet-gap sweep: reordering falls as the gap grows
// ---------------------------------------------------------------------------

class FlowletGapSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(GapsUs, FlowletGapSweep,
                         ::testing::Values(20, 100, 500));

TEST_P(FlowletGapSweep, AllJobsCompleteAtEveryGap) {
  auto cfg = tiny_cfg(Scheme::kCloveEcn);
  cfg.flowlet_gap = GetParam() * sim::kMicrosecond;
  auto r = harness::run_fct_experiment(cfg, tiny_wl());
  EXPECT_EQ(r.jobs, 16u);
}

// ---------------------------------------------------------------------------
// ECN-threshold sweep
// ---------------------------------------------------------------------------

class EcnThresholdSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ThresholdPkts, EcnThresholdSweep,
                         ::testing::Values(5, 20, 80));

TEST_P(EcnThresholdSweep, JobsCompleteAtEveryThreshold) {
  auto cfg = tiny_cfg(Scheme::kCloveEcn);
  cfg.ecn_threshold_pkts = GetParam();
  auto wl = tiny_wl();
  wl.load = 0.9;
  wl.jobs_per_conn = 8;
  auto r = harness::run_fct_experiment(cfg, wl);
  EXPECT_EQ(r.jobs, 4u * 8u);  // 4 clients x 8 jobs each
  // Lower thresholds mark earlier; a 5-pkt threshold must see at least as
  // many marks as an 80-pkt one would on the same workload (checked loosely
  // via non-negativity here; the cross-threshold comparison is below).
  EXPECT_GE(r.ecn_marks, 0u);
}

TEST(EcnThreshold, LowerThresholdMarksMore) {
  auto wl = tiny_wl();
  wl.load = 0.9;
  wl.jobs_per_conn = 8;
  auto cfg_low = tiny_cfg(Scheme::kCloveEcn);
  cfg_low.ecn_threshold_pkts = 5;
  auto cfg_high = tiny_cfg(Scheme::kCloveEcn);
  cfg_high.ecn_threshold_pkts = 80;
  auto low = harness::run_fct_experiment(cfg_low, wl);
  auto high = harness::run_fct_experiment(cfg_high, wl);
  EXPECT_GE(low.ecn_marks, high.ecn_marks);
}

}  // namespace
}  // namespace clove
