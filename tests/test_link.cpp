// Tests for the link model: serialization, queuing, drops, ECN marking,
// telemetry hooks and failure semantics.

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::net {
namespace {

using clove::testutil::SinkNode;
using clove::testutil::make_data;
using clove::testutil::tuple;

class LinkTest : public ::testing::Test {
 protected:
  LinkConfig cfg() {
    LinkConfig c;
    c.rate_bytes_per_sec = 1e9;  // 1 GB/s: 1 byte == 1 ns
    c.propagation = 1000;
    c.queue_capacity_bytes = 10'000;
    c.ecn_threshold_bytes = 4'000;
    return c;
  }

  sim::Simulator sim;
  SinkNode sink{1, "sink"};
};

TEST_F(LinkTest, DeliversAfterSerializationPlusPropagation) {
  Link link(sim, 0, "l", &sink, 3, cfg());
  auto p = make_data(tuple(10, 1), 0, 1000);
  const sim::Time expect =
      link.serialization_delay(p->wire_size()) + cfg().propagation;
  link.enqueue(std::move(p));
  sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sim.now(), expect);
  EXPECT_EQ(sink.in_ports[0], 3);
}

TEST_F(LinkTest, SerializesBackToBack) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  for (int i = 0; i < 3; ++i) link.enqueue(make_data(tuple(10, 1), 0, 1000));
  sim.run();
  ASSERT_EQ(sink.received.size(), 3u);
  const sim::Time per_pkt = link.serialization_delay(1000 + Packet::kHeaderBytes);
  EXPECT_EQ(sim.now(), 3 * per_pkt + cfg().propagation);
}

TEST_F(LinkTest, DropsWhenQueueFull) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  // Capacity 10k bytes; each packet ~1078 wire bytes. One packet goes into
  // service immediately; ~9 fit in the queue; the rest drop.
  for (int i = 0; i < 20; ++i) link.enqueue(make_data(tuple(10, 1), 0, 1000));
  sim.run();
  EXPECT_GT(link.stats().drops_overflow, 0u);
  EXPECT_EQ(sink.received.size() + link.stats().drops_overflow, 20u);
}

TEST_F(LinkTest, EcnMarksOuterEctPacketsAboveThreshold) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  for (int i = 0; i < 9; ++i) {
    auto p = make_data(tuple(10, 1), 0, 1000);
    p->encap.present = true;
    p->encap.tuple = tuple(10, 1, 5000, 7471);
    p->encap.ecn.ect = true;
    link.enqueue(std::move(p));
  }
  sim.run();
  EXPECT_GT(link.stats().ecn_marks, 0u);
  // Early packets saw an empty queue: unmarked. Later ones saw > threshold.
  EXPECT_FALSE(sink.received.front()->encap.ecn.ce);
  EXPECT_TRUE(sink.received.back()->encap.ecn.ce);
}

TEST_F(LinkTest, NoEcnMarkWithoutEct) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  for (int i = 0; i < 9; ++i) {
    auto p = make_data(tuple(10, 1), 0, 1000);
    p->encap.present = true;
    p->encap.ecn.ect = false;
    link.enqueue(std::move(p));
  }
  sim.run();
  EXPECT_EQ(link.stats().ecn_marks, 0u);
}

TEST_F(LinkTest, MarksInnerHeaderWhenNotEncapped) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  for (int i = 0; i < 9; ++i) {
    auto p = make_data(tuple(10, 1), 0, 1000);
    p->tcp.ect = true;
    link.enqueue(std::move(p));
  }
  sim.run();
  EXPECT_GT(link.stats().ecn_marks, 0u);
  EXPECT_TRUE(sink.received.back()->tcp.ce);
}

TEST_F(LinkTest, EcnMarkingDisableable) {
  LinkConfig c = cfg();
  c.ecn_marking = false;
  Link link(sim, 0, "l", &sink, 0, c);
  for (int i = 0; i < 9; ++i) {
    auto p = make_data(tuple(10, 1), 0, 1000);
    p->encap.present = true;
    p->encap.ecn.ect = true;
    link.enqueue(std::move(p));
  }
  sim.run();
  EXPECT_EQ(link.stats().ecn_marks, 0u);
}

TEST_F(LinkTest, DownDropsTraffic) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  link.down();
  link.enqueue(make_data(tuple(10, 1), 0, 1000));
  sim.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_GT(link.stats().drops_down, 0u);
}

TEST_F(LinkTest, DownFlushesQueuedPackets) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  for (int i = 0; i < 5; ++i) link.enqueue(make_data(tuple(10, 1), 0, 1000));
  link.down();
  sim.run();
  EXPECT_TRUE(sink.received.empty());
}

TEST_F(LinkTest, UpRestoresService) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  link.down();
  link.up();
  link.enqueue(make_data(tuple(10, 1), 0, 1000));
  sim.run();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(LinkTest, DownUpNoEarlyDeliveryFromStaleEvents) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  link.enqueue(make_data(tuple(10, 1), 0, 1000));
  // Let serialization finish so the packet sits in the propagation pipe,
  // then fail + restore the link and send a new packet.
  sim.run(link.serialization_delay(1078) + 1);
  link.down();
  link.up();
  link.enqueue(make_data(tuple(10, 1), 0, 500));
  sim.run();
  // Only the second packet arrives, and not before its full delay.
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0]->payload, 500u);
}

TEST_F(LinkTest, IntTelemetryAppendsUtilization) {
  LinkConfig c = cfg();
  c.int_telemetry = true;
  Link link(sim, 0, "l", &sink, 0, c);
  auto p = make_data(tuple(10, 1), 0, 1000);
  p->int_stack.enabled = true;
  link.enqueue(std::move(p));
  sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0]->int_stack.count, 1);
}

TEST_F(LinkTest, IntTelemetryRequiresEnabledStack) {
  LinkConfig c = cfg();
  c.int_telemetry = true;
  Link link(sim, 0, "l", &sink, 0, c);
  link.enqueue(make_data(tuple(10, 1), 0, 1000));  // stack not enabled
  sim.run();
  EXPECT_EQ(sink.received[0]->int_stack.count, 0);
}

TEST_F(LinkTest, CongaMetricFoldsUtilization) {
  LinkConfig c = cfg();
  c.conga_metric = true;
  Link link(sim, 0, "l", &sink, 0, c);
  // Drive utilization up first.
  for (int i = 0; i < 50; ++i) link.enqueue(make_data(tuple(10, 1), 0, 100));
  sim.run();
  auto p = make_data(tuple(10, 1), 0, 100);
  p->conga.present = true;
  p->conga.ce = 0;
  link.enqueue(std::move(p));
  sim.run();
  EXPECT_GE(sink.received.back()->conga.ce, 0);  // folded (may be 0 if idle)
}

TEST_F(LinkTest, StatsCountTx) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  link.enqueue(make_data(tuple(10, 1), 0, 1000));
  link.enqueue(make_data(tuple(10, 1), 0, 1000));
  sim.run();
  EXPECT_EQ(link.stats().tx_packets, 2u);
  EXPECT_EQ(link.stats().tx_bytes, 2u * (1000 + Packet::kHeaderBytes));
  EXPECT_GT(link.stats().max_queue_bytes, 0);
}

TEST_F(LinkTest, UtilizationRisesUnderLoad) {
  Link link(sim, 0, "l", &sink, 0, cfg());
  // Feed the link at close to line rate for several DRE intervals without
  // overflowing the queue: one ~1078B packet every 1.1us on a 1GB/s link.
  for (int i = 0; i < 500; ++i) {
    sim.schedule_at(i * 1100, [&link] {
      link.enqueue(make_data(tuple(10, 1), 0, 1000));
    });
  }
  sim.run();
  EXPECT_GT(link.utilization(), 0.5);
}

}  // namespace
}  // namespace clove::net
