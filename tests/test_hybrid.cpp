// Tests for the hybrid flow/packet engine (DESIGN.md §12): promotion of
// elephant middles to the fluid flow-level model, exact packet-level
// demotion at flowlet-relevant events, fair-share rate solving, slab
// stability across promote/demote churn, determinism, and the A/B contract
// against the packet-exact simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "hybrid/hybrid.hpp"
#include "lb/ecmp.hpp"
#include "net/packet_pool.hpp"
#include "net/topology.hpp"
#include "overlay/hypervisor.hpp"
#include "overlay/paths.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"
#include "workload/client_server.hpp"

namespace clove::hybrid {
namespace {

/// Two hypervisors behind one switch: both directions share the a<->sw and
/// sw<->b links, so concurrent a->b elephants compete for one bottleneck.
/// A plain struct (not the gtest fixture) so the determinism test can build
/// two independent instances.
struct PairRig {
  static HybridConfig fast_cfg() {
    HybridConfig hc;
    hc.enabled = true;
    hc.ramp_bytes = 20'000;      // promote quickly: tests use ~MB flows
    hc.min_remaining = 30'000;
    hc.tail_bytes = 10'000;
    return hc;
  }

  void build(const HybridConfig& hc) {
    topo = std::make_unique<net::Topology>(sim);
    sw = topo->add_switch("sw");
    a = topo->add_host<overlay::Hypervisor>("a", sim,
                                            overlay::HypervisorConfig{},
                                            std::make_unique<lb::EcmpPolicy>());
    b = topo->add_host<overlay::Hypervisor>("b", sim,
                                            overlay::HypervisorConfig{},
                                            std::make_unique<lb::EcmpPolicy>());
    net::LinkConfig lc;
    lc.rate_bytes_per_sec = sim::gbps_to_bytes_per_sec(10);
    lc.propagation = 1 * sim::kMicrosecond;
    topo->connect(a, sw, lc);
    topo->connect(b, sw, lc);
    topo->compute_routes();
    engine = std::make_unique<Engine>(sim, hc);
    for (const auto& l : topo->links()) engine->add_link(l.get());
    a->set_hybrid(engine.get());
    b->set_hybrid(engine.get());
  }

  transport::TcpSender* make_sender(std::uint16_t src_port) {
    transport::TcpConfig tcfg;
    tcfg.min_rto = 10 * sim::kMillisecond;
    tcfg.ecn = true;
    auto tx = std::make_unique<transport::TcpSender>(
        *a, net::FiveTuple{a->ip(), b->ip(), src_port, 80, net::Proto::kTcp},
        tcfg);
    a->register_endpoint(tx->tuple(), tx.get());
    senders.push_back(std::move(tx));
    return senders.back().get();
  }

  sim::Simulator sim;
  std::unique_ptr<net::Topology> topo;
  net::Switch* sw{nullptr};
  overlay::Hypervisor* a{nullptr};
  overlay::Hypervisor* b{nullptr};
  std::unique_ptr<Engine> engine;
  std::vector<std::unique_ptr<transport::TcpSender>> senders;
};

/// gtest fixture over the rig; members aliased so test bodies read plainly.
class HybridPair : public ::testing::Test, protected PairRig {
 protected:
  static HybridConfig fast_cfg() { return PairRig::fast_cfg(); }
};

TEST_F(HybridPair, PromotesElephantThenDemotesAtTail) {
  build(fast_cfg());
  auto* tx = make_sender(9000);
  bool done = false;
  tx->write(2'000'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(engine->stats().promotions, 1u);
  EXPECT_GE(engine->stats().demotions_tail, 1u);
  EXPECT_GT(engine->stats().fluid_bytes, 1'000'000u);
  EXPECT_EQ(engine->promoted_count(), 0u);  // tail ran packet-exact
}

TEST_F(HybridPair, TwoElephantsGetFairShares) {
  build(fast_cfg());
  auto* tx1 = make_sender(9000);
  auto* tx2 = make_sender(9001);
  int done = 0;
  tx1->write(20'000'000, [&](sim::Time) { ++done; });
  tx2->write(20'000'000, [&](sim::Time) { ++done; });
  // Long before either 20MB stream finishes at ~5Gb/s apiece, both must be
  // riding the fluid model.
  sim.run(5 * sim::kMillisecond);
  ASSERT_EQ(engine->promoted_count(), 2u);
  engine->solve_now();
  const double r1 = engine->flow_rate(tx1);
  const double r2 = engine->flow_rate(tx2);
  ASSERT_GT(r1, 0.0);
  ASSERT_GT(r2, 0.0);
  // Max-min on one shared bottleneck: equal shares summing to at most the
  // fluid budget (max_share of 10G) and at least half the line rate.
  const double line = sim::gbps_to_bytes_per_sec(10);
  EXPECT_NEAR(r1, r2, 0.02 * std::max(r1, r2));
  EXPECT_LE(r1 + r2, fast_cfg().max_share * line * 1.01);
  EXPECT_GE(r1 + r2, 0.5 * line);
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(engine->promoted_count(), 0u);
}

TEST_F(HybridPair, LossEventDemotesAndFlowStillCompletes) {
  build(fast_cfg());
  auto* tx = make_sender(9000);
  bool done = false;
  tx->write(20'000'000, [&](sim::Time) { done = true; });
  sim.run(5 * sim::kMillisecond);
  ASSERT_EQ(engine->promoted_count(), 1u);
  engine->on_loss_event(*tx);  // what any recovery/RTO/ECN-cut site fires
  EXPECT_EQ(engine->promoted_count(), 0u);
  EXPECT_EQ(engine->stats().demotions_loss, 1u);
  sim.run();
  EXPECT_TRUE(done);
}

TEST_F(HybridPair, LinkEventDemotesRiders) {
  build(fast_cfg());
  auto* tx = make_sender(9000);
  bool done = false;
  tx->write(20'000'000, [&](sim::Time) { done = true; });
  sim.run(5 * sim::kMillisecond);
  ASSERT_EQ(engine->promoted_count(), 1u);
  // Degrade a link on the traced path; the capacity change must push the
  // flow back to packet level so the real path decision re-runs.
  net::Link* on_path = nullptr;
  for (const auto& l : topo->links()) {
    if (l->dst() == b) on_path = l.get();
  }
  ASSERT_NE(on_path, nullptr);
  on_path->set_capacity_factor(0.5);
  EXPECT_EQ(engine->promoted_count(), 0u);
  EXPECT_GE(engine->stats().demotions_link, 1u);
  sim.run();
  EXPECT_TRUE(done);
}

TEST_F(HybridPair, PortDegradeFeedbackDemotesMatchingFlowOnly) {
  build(fast_cfg());
  auto* tx = make_sender(9000);
  bool done = false;
  tx->write(20'000'000, [&](sim::Time) { done = true; });
  sim.run(5 * sim::kMillisecond);
  ASSERT_EQ(engine->promoted_count(), 1u);
  // Wrong destination: no flow matches, nothing demotes.
  for (std::uint32_t p = 0; p < overlay::kEphemeralCount; ++p) {
    engine->on_port_degraded(a->ip(), a->ip(),
                             static_cast<std::uint16_t>(overlay::kEphemeralBase + p));
  }
  EXPECT_EQ(engine->promoted_count(), 1u);
  // Right (src, dst): some ephemeral port carries the flow.
  for (std::uint32_t p = 0; p < overlay::kEphemeralCount; ++p) {
    engine->on_port_degraded(a->ip(), b->ip(),
                             static_cast<std::uint16_t>(overlay::kEphemeralBase + p));
  }
  EXPECT_EQ(engine->promoted_count(), 0u);
  EXPECT_EQ(engine->stats().demotions_degrade, 1u);
  sim.run();
  EXPECT_TRUE(done);
}

// Satellite: repeated promote/demote cycles must not grow the packet pool
// slab or the event-queue slab — the engine's suspend/resume path has to
// recycle exactly like steady packet-level operation does.
TEST_F(HybridPair, ChurnKeepsPacketPoolAndEventQueueSlabsFlat) {
  build(fast_cfg());
  auto* tx = make_sender(9000);
  constexpr int kJobs = 60;
  int done = 0;
  std::function<void()> next = [&] {
    tx->write(300'000, [&](sim::Time) {
      ++done;
      if (done < kJobs) next();
    });
  };
  next();
  // Warm half the cycles: the first ~two dozen resume bursts size the slabs
  // to their steady state (cwnd ramps until ECN pins it). After that, the
  // remaining cycles must not grow either slab — growth here would mean the
  // suspend/resume path leaks pool or queue capacity per promotion.
  while (done < kJobs / 2) sim.run(sim.now() + sim::kMillisecond);
  const std::uint64_t pool_after_warm = net::PacketPool::of(sim).allocated();
  const std::size_t queue_slab_after_warm = sim.queue_slab_capacity();
  sim.run();
  EXPECT_EQ(done, kJobs);
  EXPECT_GE(engine->stats().promotions, 20u);  // nearly every job cycled
  EXPECT_GE(engine->stats().demotions_tail, 20u);
  EXPECT_EQ(net::PacketPool::of(sim).allocated(), pool_after_warm);
  EXPECT_EQ(sim.queue_slab_capacity(), queue_slab_after_warm);
}

TEST_F(HybridPair, SameSeedRunsAreIdentical) {
  struct Outcome {
    sim::Time done_at;
    std::uint64_t events;
    std::uint64_t promotions;
    std::uint64_t fluid_bytes;
  };
  auto run_once = [] {
    PairRig h;
    h.build(PairRig::fast_cfg());
    auto* t1 = h.make_sender(9000);
    auto* t2 = h.make_sender(9001);
    Outcome o{};
    t2->write(5'000'000, [](sim::Time) {});
    t1->write(15'000'000, [&o](sim::Time t) { o.done_at = t; });
    h.sim.run();
    o.events = h.sim.events_processed();
    o.promotions = h.engine->stats().promotions;
    o.fluid_bytes = h.engine->stats().fluid_bytes;
    return o;
  };
  const Outcome x = run_once();
  const Outcome y = run_once();
  EXPECT_EQ(x.done_at, y.done_at);
  EXPECT_EQ(x.events, y.events);
  EXPECT_EQ(x.promotions, y.promotions);
  EXPECT_EQ(x.fluid_bytes, y.fluid_bytes);
}

// --- A/B contract against the packet-exact simulator --------------------

/// min(a/b, b/a); 1.0 = identical.
double match_ratio(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return a == b ? 1.0 : 0.0;
  return std::min(a / b, b / a);
}

class HybridAB : public ::testing::TestWithParam<harness::Scheme> {};

// The tentpole's fidelity bar: with the engine on, every job still
// completes, the event count drops (elephants ride the fluid model), and
// the mice FCT distribution tracks the packet-exact run within the pinned
// tolerance — mice always run packet-exact, so what this bounds is the
// fidelity of the *virtual congestion* the fluid elephants project into
// the links they share with the mice.
TEST_P(HybridAB, MiceFctTracksPacketExactAndJobsMatch) {
  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = GetParam();
  cfg.seed = 3;
  workload::ClientServerConfig wl;
  wl.conns_per_client = 1;
  wl.jobs_per_conn = 16;
  wl.load = 0.5;

  cfg.hybrid.enabled = false;
  const harness::ExperimentResult off = harness::run_fct_experiment(cfg, wl);
  cfg.hybrid = hybrid::HybridConfig{};
  cfg.hybrid.enabled = true;
  const harness::ExperimentResult on = harness::run_fct_experiment(cfg, wl);

  EXPECT_EQ(off.jobs, on.jobs);
  EXPECT_LT(on.events, off.events);
  ASSERT_GT(off.mice_avg_fct_s, 0.0);
  ASSERT_GT(on.mice_avg_fct_s, 0.0);
  EXPECT_GE(match_ratio(off.mice_avg_fct_s, on.mice_avg_fct_s), 0.65)
      << "mice avg FCT off=" << off.mice_avg_fct_s
      << " on=" << on.mice_avg_fct_s;
}

// CLOVE_HYBRID=off (the default) must leave the packet-exact simulation
// bit-identical: an engine is never constructed, and a run with the knob
// explicitly defaulted reproduces the exact event count and FCTs of the
// seed behavior the rest of the suite pins.
TEST(HybridOff, DisabledConfigMatchesDefaultRunExactly) {
  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = harness::Scheme::kCloveEcn;
  cfg.seed = 5;
  workload::ClientServerConfig wl;
  wl.conns_per_client = 1;
  wl.jobs_per_conn = 8;
  wl.load = 0.4;
  const harness::ExperimentResult base = harness::run_fct_experiment(cfg, wl);
  cfg.hybrid = hybrid::HybridConfig{};  // enabled=false, fresh knobs
  const harness::ExperimentResult off = harness::run_fct_experiment(cfg, wl);
  EXPECT_EQ(base.events, off.events);
  EXPECT_EQ(base.jobs, off.jobs);
  EXPECT_DOUBLE_EQ(base.avg_fct_s, off.avg_fct_s);
  EXPECT_DOUBLE_EQ(base.p99_fct_s, off.p99_fct_s);
}

INSTANTIATE_TEST_SUITE_P(Schemes, HybridAB,
                         ::testing::Values(harness::Scheme::kEcmp,
                                           harness::Scheme::kCloveEcn),
                         [](const auto& info) {
                           return info.param == harness::Scheme::kCloveEcn
                                      ? std::string("CloveEcn")
                                      : std::string("Ecmp");
                         });

}  // namespace
}  // namespace clove::hybrid
