// Tests for the simulator core: time helpers, RNG, event queue, simulator
// clock and timers.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clove::sim {
namespace {

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_microseconds(kMicrosecond), 1.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(2 * kMillisecond), 2.0);
}

TEST(Time, TransmissionDelay) {
  // 1500 bytes at 10 Gb/s = 1.2 us.
  const double rate = gbps_to_bytes_per_sec(10.0);
  EXPECT_EQ(transmission_delay(1500, rate), 1200);
  // 1 byte at 1 GB/s = 1 ns.
  EXPECT_EQ(transmission_delay(1, 1e9), 1);
}

TEST(Time, GbpsConversion) {
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(8.0), 1e9);
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(40.0), 5e9);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(5), "5ns");
  EXPECT_EQ(format_time(kTimeNever), "never");
  EXPECT_NE(format_time(3 * kMicrosecond).find("us"), std::string::npos);
  EXPECT_NE(format_time(3 * kMillisecond).find("ms"), std::string::npos);
  EXPECT_NE(format_time(3 * kSecond).find("s"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(std::uint64_t{10});
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(static_cast<std::int64_t>(5),
                                 static_cast<std::int64_t>(9));
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, WeightedPickProportions) {
  Rng r(23);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (r.weighted_pick(w) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, WeightedPickAllZeroFallsBackUniform) {
  Rng r(29);
  std::vector<double> w{0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[r.weighted_pick(w)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (q.run_next() != kTimeNever) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (q.run_next() != kTimeNever) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(10, [&] { fired = true; });
  q.cancel(id);
  while (q.run_next() != kTimeNever) {
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  EventId id = q.schedule(20, [&] { order.push_back(2); });
  q.schedule(30, [&] { order.push_back(3); });
  q.cancel(id);
  while (q.run_next() != kTimeNever) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId id = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, EmptyAfterDraining) {
  EventQueue q;
  q.schedule(1, [] {});
  EXPECT_FALSE(q.empty());
  q.run_next();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run_next(), kTimeNever);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] {
    order.push_back(1);
    q.schedule(15, [&] { order.push_back(2); });
  });
  while (q.run_next() != kTimeNever) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_in(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(10, [&] { ++fired; });
  sim.schedule_in(20, [&] { ++fired; });
  sim.schedule_in(30, [&] { ++fired; });
  sim.run(20);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline run
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopEndsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.clear_stop();
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_in(50, [&] {
    sim.schedule_in(-10, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 50);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_in(50, [&] {
    sim.schedule_at(10, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 50);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Timer, FiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule_in(10);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPending) {
  Simulator sim;
  std::vector<Time> fires;
  Timer t(sim, [&] { fires.push_back(sim.now()); });
  t.schedule_in(10);
  t.schedule_in(50);  // replaces the 10ns firing
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], 50);
}

TEST(Timer, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule_in(10);
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRearmFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] {
    if (++fired < 3) t.schedule_in(10);
  });
  t.schedule_in(10);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 30);
}

TEST(Timer, DeadlineReflectsPendingFiring) {
  Simulator sim;
  Timer t(sim, [] {});
  EXPECT_EQ(t.deadline(), 0);
  t.schedule_in(25);
  EXPECT_EQ(t.deadline(), 25);
}

// Pins the fix for a stale-deadline bug: cancel() (and firing) used to leave
// deadline() reporting the old absolute time.
TEST(Timer, DeadlineClearsOnCancelAndFire) {
  Simulator sim;
  Timer t(sim, [] {});
  t.schedule_in(25);
  t.cancel();
  EXPECT_FALSE(t.pending());
  EXPECT_EQ(t.deadline(), 0);

  t.schedule_in(40);
  EXPECT_EQ(t.deadline(), 40);
  sim.run();
  EXPECT_FALSE(t.pending());
  EXPECT_EQ(t.deadline(), 0);
}

// --- live-count and slab behavior of the EventQueue ------------------------

// Pins the fix for size() counting lazily-cancelled events: the heap entry
// lingers until it surfaces, but size()/empty() must reflect live events.
TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  auto a = q.schedule(10, [] {});
  auto b = q.schedule(20, [] {});
  q.schedule(30, [] {});
  EXPECT_EQ(q.size(), 3u);
  q.cancel(b);
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.run_next();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.schedule_in(10, [] {});
  auto id = sim.schedule_in(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(EventQueue, CancelledCallbackDestroyedEagerly) {
  // Cancelling must release captured resources immediately, not when the
  // heap entry eventually surfaces.
  EventQueue q;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  auto id = q.schedule(10, [token = std::move(token)] { (void)*token; });
  EXPECT_FALSE(watch.expired());
  q.cancel(id);
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, SlabSlotsAreRecycled) {
  // Draining and refilling must reuse slots, not grow the slab: the high
  // watermark tracks peak concurrency only.
  EventQueue q;
  for (int round = 0; round < 100; ++round) {
    q.schedule(round * 10 + 1, [] {});
    q.schedule(round * 10 + 2, [] {});
    q.run_next();
    q.run_next();
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_LE(q.slab_capacity(), 2u);
}

TEST(EventQueue, StaleCancelAfterSlotReuseIsNoop) {
  EventQueue q;
  int fired = 0;
  auto old_id = q.schedule(10, [] {});
  q.run_next();  // slot now free
  auto new_id = q.schedule(20, [&] { ++fired; });
  ASSERT_EQ(new_id.slot, old_id.slot);  // slot was recycled
  q.cancel(old_id);                     // stale handle: must not kill new event
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelledEntriesDoNotBlockSkim) {
  // A cancelled event in front of live ones must not affect next_time().
  EventQueue q;
  auto a = q.schedule(5, [] {});
  int fired = 0;
  q.schedule(10, [&] { ++fired; });
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 10);
  EXPECT_EQ(q.run_next(), 10);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, MaxLiveTracksHighWaterNotCurrentSize) {
  // max_live() is the engine's memory-pressure gauge (fed to clove::prof and
  // bench artifacts as queue_hwm): it must remember the peak even after the
  // queue drains.
  EventQueue q;
  for (int i = 0; i < 8; ++i) q.schedule(i + 1, [] {});
  EXPECT_EQ(q.max_live(), 8u);
  while (q.size() > 0) q.run_next();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.max_live(), 8u);
  // Refilling below the old peak doesn't move it; exceeding it does.
  for (int i = 0; i < 3; ++i) q.schedule(100 + i, [] {});
  EXPECT_EQ(q.max_live(), 8u);
  for (int i = 0; i < 6; ++i) q.schedule(200 + i, [] {});
  EXPECT_EQ(q.max_live(), 9u);
}

TEST(EventQueue, MoveOnlyCaptures) {
  // SmallFn accepts move-only captures directly (std::function required a
  // copyable shared_ptr holder).
  EventQueue q;
  auto owned = std::make_unique<int>(11);
  int seen = 0;
  q.schedule(1, [&seen, owned = std::move(owned)] { seen = *owned; });
  q.run_next();
  EXPECT_EQ(seen, 11);
}

// --- SmallFn ---------------------------------------------------------------

TEST(SmallFn, SmallCapturesStayInline) {
  int x = 0;
  SmallFn f([&x] { ++x; });
  EXPECT_TRUE(f.is_inline());
  f();
  EXPECT_EQ(x, 1);
}

TEST(SmallFn, OversizedCapturesFallBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineSize
  big[3] = 9;
  std::uint64_t seen = 0;
  SmallFn f([&seen, big] { seen = big[3]; });
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(seen, 9u);
}

TEST(SmallFn, MoveTransfersTargetAndOwnership) {
  auto token = std::make_shared<int>(3);
  std::weak_ptr<int> watch = token;
  int calls = 0;
  SmallFn a([&calls, token = std::move(token)] { ++calls; });
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
  b = SmallFn{};
  EXPECT_TRUE(watch.expired());  // destroying the fn released the capture
}

TEST(SmallFn, PacketSizedCaptureStaysInline) {
  // The datapath's common event shape — a `this` pointer plus a PacketPtr —
  // must fit the inline buffer or the zero-allocation claim breaks.
  struct Capture {
    void* self;
    std::unique_ptr<int, void (*)(int*)> ptr;
    std::uint64_t extra;
    void operator()() const {}
  };
  static_assert(sizeof(Capture) <= SmallFn::kInlineSize);
  SmallFn f(Capture{nullptr, {nullptr, [](int*) {}}, 0});
  EXPECT_TRUE(f.is_inline());
}

// --- Simulator extension slot ----------------------------------------------

TEST(Simulator, ExtensionSlotOwnsAttachedState) {
  static int deletions = 0;
  deletions = 0;
  {
    Simulator sim;
    EXPECT_EQ(sim.extension(), nullptr);
    sim.set_extension(new int(5), [](void* p) {
      ++deletions;
      delete static_cast<int*>(p);
    });
    EXPECT_EQ(*static_cast<int*>(sim.extension()), 5);
  }
  EXPECT_EQ(deletions, 1);
}

}  // namespace
}  // namespace clove::sim
