// Tests for harness::ParallelRunner and the determinism guarantees parallel
// sweeps make: results arrive in input order, every task runs under its own
// telemetry scope, and an experiment's outcome is bit-identical for any
// thread count at equal seeds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel_runner.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"
#include "workload/client_server.hpp"

namespace clove::harness {
namespace {

TEST(ParallelRunner, MapReturnsResultsInInputOrder) {
  ParallelRunner runner(4);
  std::vector<std::function<int()>> fns;
  for (int i = 0; i < 64; ++i) {
    fns.push_back([i] { return i * i; });
  }
  const std::vector<int> out = runner.map<int>(std::move(fns));
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelRunner, RunsEveryTaskExactlyOnce) {
  ParallelRunner runner(8);
  std::atomic<int> count{0};
  std::vector<ParallelRunner::Task> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  runner.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelRunner, SingleThreadRunsInline) {
  ParallelRunner runner(1);
  EXPECT_EQ(runner.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(3);
  std::vector<ParallelRunner::Task> tasks;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    tasks.push_back([&ids, i] { ids[i] = std::this_thread::get_id(); });
  }
  runner.run_all(std::move(tasks));
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelRunner, PropagatesFirstTaskException) {
  ParallelRunner runner(4);
  std::vector<ParallelRunner::Task> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("boom"); });
  tasks.push_back([] {});
  EXPECT_THROW(runner.run_all(std::move(tasks)), std::runtime_error);
}

TEST(ParallelRunner, ThreadsEnvKnobIsHonored) {
  ::setenv("CLOVE_THREADS", "3", 1);
  EXPECT_EQ(default_threads(), 3u);
  ParallelRunner r;
  EXPECT_EQ(r.threads(), 3u);
  ::setenv("CLOVE_THREADS", "1", 1);
  EXPECT_EQ(default_threads(), 1u);
  ::unsetenv("CLOVE_THREADS");
  EXPECT_GE(default_threads(), 1u);
}

TEST(ParallelRunner, TasksGetIsolatedTelemetryScopes) {
  // Each task records into a fresh scope inheriting the submitter's
  // settings; the submitter's own registry must stay untouched, and each
  // task sees only its own counts.
  telemetry::Scope outer{telemetry::ScopeSettings{true,
                                                  telemetry::TraceLog::kDefaultCapacity,
                                                  telemetry::kAllCategories}};
  telemetry::ScopeGuard guard(outer);
  ParallelRunner runner(4);
  std::vector<std::function<double()>> fns;
  for (int i = 0; i < 8; ++i) {
    fns.push_back([i]() -> double {
      EXPECT_NE(&telemetry::current_scope(), nullptr);
      EXPECT_TRUE(telemetry::enabled());  // inherited from the submitter
      auto* c = telemetry::hub().metrics().counter("test.parallel");
      c->add(static_cast<std::uint64_t>(i) + 1);
      return static_cast<double>(c->value());
    });
  }
  const auto out = runner.map<double>(std::move(fns));
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], i + 1.0)
        << "task saw counts from another task's scope";
  }
  // The submitter's registry never saw the cell at all.
  EXPECT_EQ(outer.metrics().snapshot().find("test.parallel"), nullptr);
}

// --- end-to-end determinism ------------------------------------------------

ExperimentConfig tiny_config() {
  ExperimentConfig cfg = make_testbed_profile();
  cfg.scheme = Scheme::kCloveEcn;
  cfg.asymmetric = true;
  cfg.seed = 1;
  return cfg;
}

workload::ClientServerConfig tiny_workload() {
  workload::ClientServerConfig wl;
  wl.load = 0.4;
  wl.jobs_per_conn = 4;
  wl.conns_per_client = 1;
  return wl;
}

/// Everything an experiment produces, flattened to an exact-comparable
/// string: every numeric result field bit-exact (%a) plus the full metrics
/// snapshot JSON.
std::string result_digest(const ExperimentResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%a|%a|%a|%a|%a|%llu|%llu|%llu|%llu|%llu|%llu|",
                r.avg_fct_s, r.mice_avg_fct_s, r.elephant_avg_fct_s,
                r.p99_fct_s, r.mice_p99_fct_s,
                static_cast<unsigned long long>(r.jobs),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.fast_retransmits),
                static_cast<unsigned long long>(r.ecn_marks),
                static_cast<unsigned long long>(r.drops),
                static_cast<unsigned long long>(r.events));
  return std::string(buf) + r.metrics.to_json().dump();
}

TEST(ParallelRunner, ExperimentResultsAreBitIdenticalAcrossThreadCounts) {
  // The tentpole guarantee: CLOVE_THREADS=1 and CLOVE_THREADS=8 produce
  // byte-identical per-point results (FCT stats, counters, and the telemetry
  // metrics digest) at equal seeds.
  telemetry::Scope outer{telemetry::ScopeSettings{
      true, telemetry::TraceLog::kDefaultCapacity, telemetry::kAllCategories}};
  telemetry::ScopeGuard guard(outer);

  const auto cfg = tiny_config();
  const auto wl = tiny_workload();
  auto sweep = [&](unsigned threads) {
    ParallelRunner runner(threads);
    std::vector<std::function<std::string()>> fns;
    for (int i = 0; i < 4; ++i) {
      fns.push_back(
          [&cfg, &wl] { return result_digest(run_fct_experiment(cfg, wl)); });
    }
    return runner.map<std::string>(std::move(fns));
  };

  const auto serial = sweep(1);
  const auto parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
    EXPECT_EQ(serial[i], serial[0]) << "same config+seed must repeat exactly";
  }
  EXPECT_FALSE(serial[0].empty());
}

}  // namespace
}  // namespace clove::harness
