// Tests for the in-fabric comparators: CONGA leaf switches and LetFlow.

#include <gtest/gtest.h>

#include <set>

#include "net/conga_switch.hpp"
#include "net/letflow_switch.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::net {
namespace {

using clove::testutil::SinkNode;
using clove::testutil::make_data;
using clove::testutil::tuple;

class CongaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo = std::make_unique<Topology>(sim);
    LeafSpineConfig cfg;
    cfg.hosts_per_leaf = 2;
    cfg.conga_metric = true;
    CongaConfig cc;
    cc.flowlet_gap = 100 * sim::kMicrosecond;
    fabric = build_leaf_spine(
        *topo, cfg,
        [](Topology& t, const std::string& name, int) -> Node* {
          return t.add_host<SinkNode>(name);
        },
        [this, cc](NodeId id, std::string name,
                   int leaf_idx) -> std::unique_ptr<Switch> {
          if (leaf_idx >= 0) {
            return std::make_unique<CongaLeafSwitch>(sim, id, std::move(name),
                                                     cc);
          }
          return std::make_unique<Switch>(sim, id, std::move(name));
        });

    std::unordered_map<IpAddr, int> host_leaf;
    for (std::size_t l = 0; l < fabric.hosts_by_leaf.size(); ++l) {
      for (Node* h : fabric.hosts_by_leaf[l]) {
        host_leaf[h->ip()] = static_cast<int>(l);
      }
    }
    for (std::size_t l = 0; l < fabric.leaves.size(); ++l) {
      auto* leaf = static_cast<CongaLeafSwitch*>(fabric.leaves[l]);
      std::vector<int> ups;
      for (int p = 0; p < leaf->port_count(); ++p) {
        for (Switch* spine : fabric.spines) {
          if (leaf->port(p)->dst() == spine) ups.push_back(p);
        }
      }
      leaf->configure_fabric(static_cast<int>(l), ups, host_leaf);
      leaves.push_back(leaf);
    }
    src = static_cast<SinkNode*>(fabric.hosts_by_leaf[0][0]);
    dst = static_cast<SinkNode*>(fabric.hosts_by_leaf[1][0]);
  }

  void send(std::uint16_t sport, std::uint64_t seq = 0,
            std::uint32_t len = 1000) {
    src->port(0)->enqueue(make_data(tuple(src->ip(), dst->ip(), sport), seq,
                                    len));
  }

  sim::Simulator sim;
  std::unique_ptr<Topology> topo;
  LeafSpine fabric;
  std::vector<CongaLeafSwitch*> leaves;
  SinkNode* src{nullptr};
  SinkNode* dst{nullptr};
};

TEST_F(CongaFixture, StampsCongaHeaderOnFabricEntry) {
  send(1000);
  sim.run();
  ASSERT_EQ(dst->received.size(), 1u);
  const Packet& p = *dst->received[0];
  EXPECT_TRUE(p.conga.present);
  EXPECT_EQ(p.conga.src_leaf, 0u);
  EXPECT_LT(p.conga.lb_tag, 4);
}

TEST_F(CongaFixture, LocalTrafficNotStamped) {
  auto* peer = static_cast<SinkNode*>(fabric.hosts_by_leaf[0][1]);
  src->port(0)->enqueue(make_data(tuple(src->ip(), peer->ip(), 1), 0, 100));
  sim.run();
  ASSERT_EQ(peer->received.size(), 1u);
  EXPECT_FALSE(peer->received[0]->conga.present);
}

TEST_F(CongaFixture, DestinationLeafHarvestsMetric) {
  send(1000);
  sim.run();
  const Packet& p = *dst->received[0];
  // Leaf 1 recorded congestion-from-leaf-0 for the tag that was used.
  EXPECT_EQ(leaves[1]->congestion_from(0, p.conga.lb_tag), p.conga.ce);
}

TEST_F(CongaFixture, FeedbackLoopPopulatesSourceTable) {
  // Forward traffic 0 -> 1, then reverse traffic 1 -> 0 piggybacks feedback
  // which populates leaf 1's congestion-to-leaf table... and vice versa.
  send(1000);
  sim.run();
  dst->port(0)->enqueue(make_data(tuple(dst->ip(), src->ip(), 2000), 0, 1000));
  sim.run();
  // Reverse packet carried fb for leaf-0 tags; leaf 0 stored it. Values are
  // zeros on an idle fabric; the mechanism is visible via a non-crashing
  // read and via stamping on the reverse packet.
  ASSERT_EQ(src->received.size(), 1u);
  EXPECT_TRUE(src->received[0]->conga.present);
  EXPECT_TRUE(src->received[0]->conga.fb_present);
}

TEST_F(CongaFixture, FlowletSticksToUplink) {
  // Back-to-back packets of one flow traverse the same uplink (same spine
  // ingress), packets after a long gap may move.
  for (int i = 0; i < 5; ++i) send(1000, i * 1000);
  sim.run();
  ASSERT_EQ(dst->received.size(), 5u);
  std::set<int> tags;
  for (const auto& p : dst->received) tags.insert(p->conga.lb_tag);
  EXPECT_EQ(tags.size(), 1u);
}

TEST_F(CongaFixture, NewFlowletsSpreadOverUplinks) {
  // Many flows at once: at least 3 of the 4 uplink tags get used.
  for (std::uint16_t f = 0; f < 64; ++f) send(static_cast<std::uint16_t>(1000 + f));
  sim.run();
  std::set<int> tags;
  for (const auto& p : dst->received) tags.insert(p->conga.lb_tag);
  EXPECT_GE(tags.size(), 3u);
}

TEST_F(CongaFixture, AvoidsCongestedUplink) {
  // Tell leaf 0 (via its to-leaf table) that tags 0..2 toward leaf 1 are
  // heavily congested; new flowlets must choose tag 3.
  auto* leaf0 = leaves[0];
  // Feed the table through the public path: reverse packets with fb bits.
  for (std::uint8_t tag = 0; tag < 3; ++tag) {
    auto p = make_data(tuple(dst->ip(), src->ip(), 3000), 0, 100);
    p->conga.present = true;
    p->conga.src_leaf = 1;  // irrelevant for fb
    p->conga.lb_tag = 0;
    p->conga.fb_present = true;
    p->conga.fb_tag = tag;
    p->conga.fb_ce = 7;
    // Deliver into leaf 0 from the fabric side (its first uplink port).
    leaf0->receive(std::move(p), /*in_port=*/0);
  }
  sim.run();
  for (std::uint16_t f = 0; f < 16; ++f) {
    send(static_cast<std::uint16_t>(5000 + f));
  }
  sim.run();
  std::set<int> tags;
  for (const auto& p : dst->received) {
    if (p->inner.src_port >= 5000) tags.insert(p->conga.lb_tag);
  }
  ASSERT_FALSE(tags.empty());
  EXPECT_EQ(tags.count(3), 1u);
  EXPECT_EQ(tags.size(), 1u);
}

TEST_F(CongaFixture, MetricsAgeOut) {
  auto* leaf0 = leaves[0];
  auto p = make_data(tuple(dst->ip(), src->ip(), 3000), 0, 100);
  p->conga.present = true;
  p->conga.src_leaf = 1;
  p->conga.fb_present = true;
  p->conga.fb_tag = 0;
  p->conga.fb_ce = 7;
  leaf0->receive(std::move(p), 0);
  sim.run();
  EXPECT_EQ(leaf0->congestion_to(1, 0), 7);
  // After the aging window the entry reads as 0.
  sim.schedule_in(sim::seconds(1.0), [] {});
  sim.run();
  EXPECT_EQ(leaf0->congestion_to(1, 0), 0);
}

// ---------------------------------------------------------------------------
// LetFlow
// ---------------------------------------------------------------------------

class LetFlowFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo = std::make_unique<Topology>(sim);
    LeafSpineConfig cfg;
    cfg.hosts_per_leaf = 2;
    fabric = build_leaf_spine(
        *topo, cfg,
        [](Topology& t, const std::string& name, int) -> Node* {
          return t.add_host<SinkNode>(name);
        },
        [this](NodeId id, std::string name,
               int leaf_idx) -> std::unique_ptr<Switch> {
          if (leaf_idx >= 0) {
            return std::make_unique<LetFlowSwitch>(sim, id, std::move(name),
                                                   100 * sim::kMicrosecond);
          }
          return std::make_unique<Switch>(sim, id, std::move(name));
        });
    src = static_cast<SinkNode*>(fabric.hosts_by_leaf[0][0]);
    dst = static_cast<SinkNode*>(fabric.hosts_by_leaf[1][0]);
  }

  sim::Simulator sim;
  std::unique_ptr<Topology> topo;
  LeafSpine fabric;
  SinkNode* src{nullptr};
  SinkNode* dst{nullptr};
};

TEST_F(LetFlowFixture, DeliversEndToEnd) {
  src->port(0)->enqueue(make_data(tuple(src->ip(), dst->ip()), 0, 1000));
  sim.run();
  EXPECT_EQ(dst->received.size(), 1u);
}

TEST_F(LetFlowFixture, FlowletsStickWithinGap) {
  // Within-gap packets of one flow keep one TTL pattern (same path length);
  // we detect path changes via the spine that handled them. Use many flows
  // after long gaps instead: random uplinks should cover several ports.
  for (int i = 0; i < 6; ++i) {
    src->port(0)->enqueue(make_data(tuple(src->ip(), dst->ip()), i * 1000, 500));
  }
  sim.run();
  EXPECT_EQ(dst->received.size(), 6u);
}

TEST_F(LetFlowFixture, DifferentFlowsUseDifferentPaths) {
  // With random per-flowlet uplinks, 64 flows should not all share one path.
  // Observe spread via spine switch forward counters.
  for (std::uint16_t f = 0; f < 64; ++f) {
    src->port(0)->enqueue(
        make_data(tuple(src->ip(), dst->ip(), static_cast<std::uint16_t>(
                                                  1000 + f)),
                  0, 500));
  }
  sim.run();
  EXPECT_EQ(dst->received.size(), 64u);
  EXPECT_GT(fabric.spines[0]->stats().forwarded, 10u);
  EXPECT_GT(fabric.spines[1]->stats().forwarded, 10u);
}

}  // namespace
}  // namespace clove::net
