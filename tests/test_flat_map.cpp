#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace clove::util {
namespace {

TEST(FlatMap, InsertFindAndSize) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7u), nullptr);

  auto [v, inserted] = m.try_emplace(7);
  ASSERT_TRUE(inserted);
  *v = 42;
  EXPECT_EQ(m.size(), 1u);

  auto [v2, inserted2] = m.try_emplace(7);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(v2, v);
  EXPECT_EQ(*v2, 42);

  int* f = m.find(7);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, 42);
  EXPECT_FALSE(m.contains(8));
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint64_t, std::string> m;
  EXPECT_EQ(m[3], "");
  m[3] = "three";
  EXPECT_EQ(m[3], "three");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseRemovesOnlyThatKey) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 10; ++k) m[k] = static_cast<int>(k * 10);
  EXPECT_TRUE(m.erase(4));
  EXPECT_FALSE(m.erase(4));  // already gone
  EXPECT_EQ(m.size(), 9u);
  EXPECT_EQ(m.find(4u), nullptr);
  for (std::uint64_t k = 0; k < 10; ++k) {
    if (k == 4) continue;
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), static_cast<int>(k * 10));
  }
}

/// A hash that sends every key to the same bucket, forcing one long probe
/// chain — erase/insert in a chain exercises tombstone traversal and reuse.
struct CollidingHash {
  std::uint64_t operator()(std::uint64_t) const noexcept { return 0; }
};

TEST(FlatMap, FindProbesPastTombstones) {
  FlatMap<std::uint64_t, int, CollidingHash> m;
  m[1] = 10;
  m[2] = 20;
  m[3] = 30;
  // Key 3 sits behind keys 1 and 2 in the probe chain; erasing them leaves
  // tombstones that lookups must walk through, not stop at.
  EXPECT_TRUE(m.erase(1));
  EXPECT_TRUE(m.erase(2));
  ASSERT_NE(m.find(3u), nullptr);
  EXPECT_EQ(*m.find(3u), 30);
}

TEST(FlatMap, InsertReusesFirstTombstoneOnProbePath) {
  FlatMap<std::uint64_t, int, CollidingHash> m;
  m[1] = 10;
  m[2] = 20;
  m[3] = 30;
  int* three = m.find(3);
  ASSERT_NE(three, nullptr);

  EXPECT_TRUE(m.erase(1));
  // Re-inserting lands in key 1's tombstone (first on the probe path), not in
  // a fresh empty slot — verified indirectly: no rehash occurs (capacity
  // stable) and the handle to key 3 stays valid.
  const std::size_t cap = m.capacity();
  m[4] = 40;
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(*three, 30);  // handle survived erase + tombstone reuse
  EXPECT_EQ(*m.find(4u), 40);
  EXPECT_EQ(m.size(), 3u);
}

TEST(FlatMap, HandlesSurviveErasesButNotRehash) {
  FlatMap<std::uint64_t, int> m;
  m[100] = 1;
  int* h = m.find(100);
  ASSERT_NE(h, nullptr);
  // Erasing other keys never relocates the handle's slot.
  m[200] = 2;
  m[300] = 3;
  m.erase(200);
  m.erase(300);
  EXPECT_EQ(*h, 1);
  EXPECT_EQ(m.find(100u), h);
}

TEST(FlatMap, GrowthPreservesEntries) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) m[k * 7919] = k;
  EXPECT_EQ(m.size(), kN);
  // Power-of-two capacity with load factor <= 0.75.
  EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u);
  EXPECT_LE(m.size() * 4, m.capacity() * 3);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_NE(m.find(k * 7919), nullptr) << k;
    EXPECT_EQ(*m.find(k * 7919), k);
  }
}

TEST(FlatMap, ReservePreventsRehash) {
  FlatMap<std::uint64_t, int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  EXPECT_GE(cap * 3, 1000u * 4 / 1u - cap);  // sanity: big enough
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, TombstoneRebuildKeepsCapacityBounded) {
  FlatMap<std::uint64_t, int> m;
  // Insert/erase churn with a bounded live set: capacity must not grow
  // without bound — tombstone-triggered rebuilds recycle dead slots.
  for (std::uint64_t round = 0; round < 10'000; ++round) {
    m[round] = 1;
    if (round >= 8) m.erase(round - 8);
  }
  EXPECT_EQ(m.size(), 8u);
  EXPECT_LE(m.capacity(), 64u);
}

TEST(FlatMap, IterationVisitsEveryLiveEntryOnce) {
  FlatMap<std::uint64_t, int> m;
  std::set<std::uint64_t> expect;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    m[k] = static_cast<int>(k);
    expect.insert(k);
  }
  m.erase(10);
  m.erase(20);
  expect.erase(10);
  expect.erase(20);

  std::set<std::uint64_t> seen;
  for (auto it = m.begin(); it != m.end(); ++it) {
    EXPECT_TRUE(seen.insert(it.key()).second) << "duplicate " << it.key();
    EXPECT_EQ(it.value(), static_cast<int>(it.key()));
  }
  EXPECT_EQ(seen, expect);
}

TEST(FlatMap, EraseDuringIteration) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = static_cast<int>(k % 2);
  // Erase all odd-valued entries in one pass.
  for (auto it = m.begin(); it != m.end();) {
    it = (it.value() == 1) ? m.erase(it) : ++it;
  }
  EXPECT_EQ(m.size(), 50u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(m.contains(k), k % 2 == 0) << k;
  }
}

TEST(FlatMap, SweepErasesOnlyMatchingAndIsIncremental) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 64; ++k) m[k] = (k < 32) ? 0 : 1;
  const std::size_t cap = m.capacity();

  // One full lap of the table in max_slots-sized steps erases exactly the
  // predicate matches; each call does O(max_slots) work.
  std::size_t erased = 0;
  for (std::size_t i = 0; i < cap / 8; ++i) {
    erased += m.sweep(8, [](std::uint64_t, int v) { return v == 1; });
  }
  EXPECT_EQ(erased, 32u);
  EXPECT_EQ(m.size(), 32u);
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_EQ(m.contains(k), k < 32);
}

TEST(FlatMap, SweepOnEmptyMapIsNoop) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m.sweep(8, [](std::uint64_t, int) { return true; }), 0u);
}

TEST(FlatMap, ClearResets) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 20; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(3u), nullptr);
  m[5] = 9;
  EXPECT_EQ(*m.find(5u), 9);
}

TEST(FlatMap, ProbeStatsTrackOccupancyAndDisplacement) {
  FlatMap<std::uint64_t, int> m;
  auto st = m.probe_stats();
  EXPECT_EQ(st.size, 0u);
  EXPECT_EQ(st.probe_sum, 0u);

  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  st = m.probe_stats();
  EXPECT_EQ(st.size, 100u);
  EXPECT_GE(st.capacity, 100u);
  // Displacement of every live entry from its home slot is bounded by the
  // worst probe, and the mean can't exceed the max.
  EXPECT_GE(st.max_probe * st.size, st.probe_sum);
  EXPECT_LT(st.max_probe, st.capacity);

  for (std::uint64_t k = 0; k < 50; ++k) m.erase(k);
  st = m.probe_stats();
  EXPECT_EQ(st.size, 50u);
  EXPECT_EQ(st.tombstones, 50u);
}

struct TrackedValue {
  static int live;
  std::vector<int> payload;
  TrackedValue() { ++live; }
  TrackedValue(const TrackedValue& o) : payload(o.payload) { ++live; }
  TrackedValue(TrackedValue&& o) noexcept : payload(std::move(o.payload)) {
    ++live;
  }
  TrackedValue& operator=(const TrackedValue&) = default;
  TrackedValue& operator=(TrackedValue&&) = default;
  ~TrackedValue() { --live; }
};
int TrackedValue::live = 0;

TEST(FlatMap, EraseReleasesValueResourcesEagerly) {
  FlatMap<std::uint64_t, TrackedValue> m;
  m[1].payload.assign(100, 7);
  TrackedValue* v = m.find(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->payload.size(), 100u);
  m.erase(1);
  // The slot object itself persists (tombstone), but the value was reset to
  // a default-constructed state, dropping its heap payload.
  EXPECT_TRUE(v->payload.empty());
}

}  // namespace
}  // namespace clove::util
