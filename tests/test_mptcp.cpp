// Tests for the MPTCP model: striping, completion accounting, subflow
// diversity and coupled congestion control.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "transport/mptcp.hpp"

namespace clove::transport {
namespace {

using clove::testutil::tuple;

/// Loopback harness with per-subflow receivers auto-created on demand.
class MptcpPipe : public ::testing::Test {
 protected:
  class Port : public VmPort {
   public:
    Port(MptcpPipe& owner, bool sender_side)
        : owner_(owner), sender_side_(sender_side) {}
    void vm_send(net::PacketPtr pkt) override {
      owner_.transmit(sender_side_, std::move(pkt));
    }
    sim::Simulator& simulator() override { return owner_.sim; }

   private:
    MptcpPipe& owner_;
    bool sender_side_;
  };

  void SetUp() override {
    tx_port = std::make_unique<Port>(*this, true);
    rx_port = std::make_unique<Port>(*this, false);
  }

  void transmit(bool from_sender, net::PacketPtr pkt) {
    if (from_sender) {
      ports_used.insert(pkt->inner.src_port);
      if (pkt->payload > 0) ++data_pkts;
      // Receiver side: find or create the subflow receiver.
      const net::FiveTuple key = pkt->inner.reversed();
      auto it = receivers.find(key);
      if (it == receivers.end()) {
        it = receivers
                 .emplace(key, std::make_unique<TcpReceiver>(*rx_port, key,
                                                             TcpConfig{}))
                 .first;
      }
      TcpReceiver* rx = it->second.get();
      net::Packet* raw = pkt.release();
      sim.schedule_in(delay, [rx, raw] { rx->on_packet(net::PacketPtr(raw)); });
    } else {
      // ACK back to the matching subflow sender.
      const net::FiveTuple key = pkt->inner.reversed();
      auto it = senders.find(key);
      if (it == senders.end()) return;
      TcpSender* tx = it->second;
      net::Packet* raw = pkt.release();
      sim.schedule_in(delay, [tx, raw] { tx->on_packet(net::PacketPtr(raw)); });
    }
  }

  void wire(MptcpSender& m) {
    for (TcpSender* sf : m.endpoints()) senders[sf->tuple()] = sf;
  }

  sim::Simulator sim;
  std::unique_ptr<Port> tx_port, rx_port;
  std::unordered_map<net::FiveTuple, TcpSender*, net::FiveTupleHash> senders;
  std::unordered_map<net::FiveTuple, std::unique_ptr<TcpReceiver>,
                     net::FiveTupleHash>
      receivers;
  std::set<std::uint16_t> ports_used;
  int data_pkts{0};
  sim::Time delay{50 * sim::kMicrosecond};
};

TEST_F(MptcpPipe, CreatesConfiguredSubflows) {
  MptcpConfig cfg;
  cfg.subflows = 4;
  MptcpSender m(*tx_port, tuple(1, 2, 9000), cfg);
  EXPECT_EQ(m.subflow_count(), 4);
  // Distinct source ports 9000..9003.
  std::set<std::uint16_t> ports;
  for (TcpSender* sf : m.endpoints()) ports.insert(sf->tuple().src_port);
  EXPECT_EQ(ports.size(), 4u);
}

TEST_F(MptcpPipe, DeliversJobAcrossSubflows) {
  MptcpConfig cfg;
  cfg.subflows = 4;
  MptcpSender m(*tx_port, tuple(1, 2, 9000), cfg);
  wire(m);
  bool done = false;
  m.write(2'000'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  std::uint64_t total = 0;
  for (auto& [k, rx] : receivers) total += rx->bytes_delivered();
  EXPECT_EQ(total, 2'000'000u);
  EXPECT_GE(ports_used.size(), 2u);  // actually striped
}

TEST_F(MptcpPipe, SmallJobCompletes) {
  MptcpSender m(*tx_port, tuple(1, 2, 9000), MptcpConfig{});
  wire(m);
  bool done = false;
  m.write(1'000, [&](sim::Time) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST_F(MptcpPipe, ZeroByteJobCompletesImmediately) {
  MptcpSender m(*tx_port, tuple(1, 2, 9000), MptcpConfig{});
  wire(m);
  bool done = false;
  m.write(0, [&](sim::Time) { done = true; });
  EXPECT_TRUE(done);
}

TEST_F(MptcpPipe, SequentialJobsAllComplete) {
  MptcpSender m(*tx_port, tuple(1, 2, 9000), MptcpConfig{});
  wire(m);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    m.write(100'000, [&](sim::Time) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 5);
}

TEST_F(MptcpPipe, CoupledIncreaseIsGentlerThanUncoupled) {
  // Run the same transfer with coupled vs uncoupled control; LIA's total
  // window growth must not exceed independent Reno subflows'.
  std::uint64_t coupled_cwnd = 0, uncoupled_cwnd = 0;
  for (bool coupled : {true, false}) {
    SetUp();
    senders.clear();
    receivers.clear();
    MptcpConfig cfg;
    cfg.coupled = coupled;
    // Force congestion-avoidance quickly.
    cfg.tcp.initial_cwnd_pkts = 2;
    auto m = std::make_unique<MptcpSender>(*tx_port, tuple(1, 2, 9000), cfg);
    wire(*m);
    m->write(5'000'000, nullptr);
    sim.run(sim::milliseconds(5));
    (coupled ? coupled_cwnd : uncoupled_cwnd) = m->total_cwnd();
  }
  EXPECT_LE(coupled_cwnd, uncoupled_cwnd);
}

TEST_F(MptcpPipe, SubflowPortsAreConsecutive) {
  MptcpConfig cfg;
  cfg.subflows = 3;
  MptcpSender m(*tx_port, tuple(1, 2, 9000), cfg);
  std::set<std::uint16_t> expect{9000, 9001, 9002};
  std::set<std::uint16_t> got;
  for (TcpSender* sf : m.endpoints()) got.insert(sf->tuple().src_port);
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace clove::transport
