// Tests for the Discounted Rate Estimator (DRE).

#include <gtest/gtest.h>

#include "sim/time.hpp"
#include "telemetry/dre.hpp"

namespace clove::telemetry {
namespace {

using sim::kMicrosecond;

TEST(Dre, StartsAtZero) {
  Dre dre(0.1, 50 * kMicrosecond, 1e9);
  EXPECT_DOUBLE_EQ(dre.utilization(0), 0.0);
  EXPECT_EQ(dre.quantized(0), 0);
}

TEST(Dre, ConvergesToLinkUtilization) {
  // Feed exactly half the link rate for many Tdre intervals: the estimate
  // should converge to ~0.5.
  const double capacity = 1e9;  // bytes/s
  Dre dre(0.1, 50 * kMicrosecond, capacity);
  const std::int64_t bytes_per_us = static_cast<std::int64_t>(capacity / 2 / 1e6);
  sim::Time t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += kMicrosecond;
    dre.on_transmit(t, bytes_per_us);
  }
  EXPECT_NEAR(dre.utilization(t), 0.5, 0.05);
}

TEST(Dre, FullRateReadsNearOne) {
  const double capacity = 1e9;
  Dre dre(0.1, 50 * kMicrosecond, capacity);
  const std::int64_t bytes_per_us = static_cast<std::int64_t>(capacity / 1e6);
  sim::Time t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += kMicrosecond;
    dre.on_transmit(t, bytes_per_us);
  }
  EXPECT_NEAR(dre.utilization(t), 1.0, 0.1);
  EXPECT_GE(dre.quantized(t), 6);
}

TEST(Dre, DecaysWhenIdle) {
  const double capacity = 1e9;
  Dre dre(0.1, 50 * kMicrosecond, capacity);
  sim::Time t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += kMicrosecond;
    dre.on_transmit(t, 1000);
  }
  const double busy = dre.utilization(t);
  ASSERT_GT(busy, 0.0);
  // After 20 decay intervals of idleness the register shrinks substantially.
  const double later = dre.utilization(t + 20 * 50 * kMicrosecond);
  EXPECT_LT(later, busy * 0.2);
  // And a very long idle gap flushes it entirely.
  EXPECT_NEAR(dre.utilization(t + sim::seconds(10.0)), 0.0, 1e-12);
}

TEST(Dre, QuantizationRange) {
  Dre dre(0.1, 50 * kMicrosecond, 1e9);
  sim::Time t = 0;
  // Overdrive the link 2x: quantized value saturates at the 3-bit max.
  for (int i = 0; i < 20000; ++i) {
    t += kMicrosecond;
    dre.on_transmit(t, 2000);
  }
  EXPECT_EQ(dre.quantized(t, 3), 7);
  EXPECT_EQ(dre.quantized(t, 2), 3);
}

TEST(Dre, ResetClears) {
  Dre dre(0.1, 50 * kMicrosecond, 1e9);
  dre.on_transmit(10 * kMicrosecond, 100000);
  ASSERT_GT(dre.utilization(10 * kMicrosecond), 0.0);
  dre.reset();
  EXPECT_DOUBLE_EQ(dre.utilization(0), 0.0);
}

TEST(Dre, HigherAlphaTracksFaster) {
  const double capacity = 1e9;
  Dre slow(0.05, 50 * kMicrosecond, capacity);
  Dre fast(0.5, 50 * kMicrosecond, capacity);
  sim::Time t = 0;
  // A short burst at full rate: the fast estimator reacts more strongly.
  for (int i = 0; i < 100; ++i) {
    t += kMicrosecond;
    slow.on_transmit(t, 1000);
    fast.on_transmit(t, 1000);
  }
  EXPECT_GT(fast.utilization(t), slow.utilization(t));
}

}  // namespace
}  // namespace clove::telemetry
