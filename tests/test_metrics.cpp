// Tests for the telemetry metrics registry: labeled cells, histogram
// percentile accuracy against the exact stats::Samples, snapshot export,
// and run-to-run cell stability.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "stats/stats.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/metrics.hpp"

namespace clove::telemetry {
namespace {

TEST(MetricsRegistry, SameNameSameLabelsSharesCell) {
  MetricsRegistry reg;
  Counter* a = reg.counter("pkts", {{"link", "L1"}});
  Counter* b = reg.counter("pkts", {{"link", "L1"}});
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsDistinctCells) {
  MetricsRegistry reg;
  Counter* a = reg.counter("pkts", {{"link", "L1"}});
  Counter* b = reg.counter("pkts", {{"link", "L2"}});
  Counter* c = reg.counter("pkts");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, LabelOrderIsCanonicalized) {
  MetricsRegistry reg;
  Counter* a = reg.counter("pkts", {{"b", "2"}, {"a", "1"}});
  Counter* b = reg.counter("pkts", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistry, KindsWithSameNameAreSeparate) {
  // A counter and a gauge may share a metric name without clobbering each
  // other (the registry keys on kind as well).
  MetricsRegistry reg;
  Counter* c = reg.counter("x");
  Gauge* g = reg.gauge("x");
  c->add(7);
  g->set(1.5);
  EXPECT_EQ(c->value(), 7u);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
}

TEST(MetricsRegistry, ResetValuesKeepsPointersValid) {
  MetricsRegistry reg;
  Counter* c = reg.counter("pkts", {{"link", "L1"}});
  Gauge* g = reg.gauge("depth");
  Histogram* h = reg.histogram("lat");
  c->add(10);
  g->set(4.0);
  h->observe(1.0);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 3u);  // cells survive, zeroed
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  c->add(1);  // the old pointer still points at the live cell
  EXPECT_EQ(reg.counter("pkts", {{"link", "L1"}})->value(), 1u);
}

TEST(Gauge, UpdateMaxKeepsHighWatermark) {
  Gauge g;
  g.update_max(5.0);
  g.update_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.update_max(8.0);
  EXPECT_DOUBLE_EQ(g.value(), 8.0);
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.observe(123.0);
  EXPECT_DOUBLE_EQ(h.min(), 123.0);
  EXPECT_DOUBLE_EQ(h.max(), 123.0);
  // The one observation bounds every percentile.
  EXPECT_NEAR(h.percentile(50), 123.0, 123.0 * 0.1);
}

TEST(Histogram, PercentilesTrackExactSamples) {
  // The log-bucketed estimate must stay within the bucket's relative width
  // (~9% at 8 sub-buckets/octave) of the exact order statistic, across a
  // few distributions spanning several orders of magnitude.
  std::mt19937_64 rng(7);
  std::vector<std::vector<double>> datasets;
  {
    std::uniform_real_distribution<double> u(1.0, 1000.0);
    std::vector<double> d;
    for (int i = 0; i < 20000; ++i) d.push_back(u(rng));
    datasets.push_back(std::move(d));
  }
  {
    std::lognormal_distribution<double> ln(3.0, 1.5);
    std::vector<double> d;
    for (int i = 0; i < 20000; ++i) d.push_back(ln(rng));
    datasets.push_back(std::move(d));
  }
  {
    std::exponential_distribution<double> ex(1e-3);
    std::vector<double> d;
    for (int i = 0; i < 20000; ++i) d.push_back(ex(rng) + 1e-6);
    datasets.push_back(std::move(d));
  }

  for (const auto& data : datasets) {
    Histogram h;
    stats::Samples exact;
    for (double v : data) {
      h.observe(v);
      exact.add(v);
    }
    for (double p : {10.0, 50.0, 90.0, 99.0}) {
      const double want = exact.percentile(p);
      const double got = h.percentile(p);
      EXPECT_NEAR(got, want, want * 0.10)
          << "p" << p << " over " << data.size() << " samples";
    }
  }
}

TEST(Histogram, NonpositiveValuesCountedNotBucketed) {
  Histogram h;
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  // Low percentiles resolve to the nonpositive mass (clamped by min).
  EXPECT_LE(h.percentile(10), 0.0);
}

TEST(MetricsSnapshot, FindValueAndSum) {
  MetricsRegistry reg;
  reg.counter("drops", {{"link", "a"}})->add(3);
  reg.counter("drops", {{"link", "b"}})->add(4);
  reg.gauge("depth")->set(9.5);
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);

  const MetricSample* s = snap.find("drops", {{"link", "b"}});
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 4.0);
  EXPECT_EQ(snap.find("drops"), nullptr);  // unlabeled variant not registered
  EXPECT_DOUBLE_EQ(snap.value_or("depth", -1.0), 9.5);
  EXPECT_DOUBLE_EQ(snap.value_or("nope", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(snap.sum_over("drops"), 7.0);
}

TEST(MetricsSnapshot, DeterministicOrderAndJson) {
  MetricsRegistry reg;
  reg.counter("z.last")->add(1);
  reg.counter("a.first", {{"link", "L2"}})->add(2);
  reg.counter("a.first", {{"link", "L1"}})->add(3);
  reg.histogram("h")->observe(2.0);
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.samples[0].name, "a.first");
  EXPECT_EQ(snap.samples[0].labels[0].second, "L1");
  EXPECT_EQ(snap.samples[1].labels[0].second, "L2");
  EXPECT_EQ(snap.samples[3].name, "z.last");

  Json j = snap.to_json();
  ASSERT_EQ(j.size(), 4u);
  EXPECT_EQ(j[0]["name"].as_string(), "a.first");
  EXPECT_EQ(j[0]["labels"]["link"].as_string(), "L1");
  EXPECT_EQ(j[0]["type"].as_string(), "counter");
  EXPECT_DOUBLE_EQ(j[0]["value"].as_number(), 3.0);
  EXPECT_EQ(j[2]["type"].as_string(), "histogram");
  EXPECT_DOUBLE_EQ(j[2]["count"].as_number(), 1.0);
  // The export parses back (artifact consumers round-trip it).
  std::string err;
  Json back = Json::parse(j.dump(2), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.size(), 4u);
}

TEST(Hub, BeginRunZeroesWithoutInvalidating) {
  Hub& h = hub();
  const bool was = h.is_enabled();
  h.set_enabled(true);
  Counter* c = h.metrics().counter("test.hub.counter");
  c->add(5);
  trace(Category::kQueue, 10, "n", "e");
  EXPECT_GE(h.trace().size(), 1u);
  h.begin_run();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h.trace().size(), 0u);
  if (telemetry::enabled()) c->add();  // the instrumented-site idiom
  EXPECT_EQ(c->value(), 1u);
  h.set_enabled(was);
  h.begin_run();
}

TEST(Hub, DisabledGuardSkipsRecording) {
  Hub& h = hub();
  const bool was = h.is_enabled();
  h.set_enabled(false);
  h.begin_run();
  EXPECT_FALSE(telemetry::enabled());
  trace(Category::kQueue, 10, "n", "e");  // dropped: hub disabled
  EXPECT_EQ(h.trace().size(), 0u);
  h.set_enabled(was);
}

}  // namespace
}  // namespace clove::telemetry
