// Tests for the ECMP switch: routing, hashing, TTL handling and traceroute
// replies.

#include <gtest/gtest.h>

#include <set>

#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace clove::net {
namespace {

using clove::testutil::SinkNode;
using clove::testutil::make_data;
using clove::testutil::tuple;

/// A switch wired to several sinks: sink[i] behind port i.
class SwitchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo = std::make_unique<Topology>(sim);
    sw = topo->add_switch("sw");
    for (int i = 0; i < 4; ++i) {
      auto* sink = topo->add_host<SinkNode>("sink" + std::to_string(i));
      sinks.push_back(sink);
      LinkConfig cfg;
      cfg.rate_bytes_per_sec = 1e9;
      cfg.propagation = 100;
      topo->connect(sw, sink, cfg);
    }
    topo->compute_routes();
  }

  std::size_t total_received() const {
    std::size_t n = 0;
    for (auto* s : sinks) n += s->received.size();
    return n;
  }

  sim::Simulator sim;
  std::unique_ptr<Topology> topo;
  Switch* sw{nullptr};
  std::vector<SinkNode*> sinks;
};

TEST_F(SwitchFixture, RoutesToCorrectHost) {
  auto p = make_data(tuple(99, sinks[2]->ip()), 0, 100);
  sw->receive(std::move(p), -1);
  sim.run();
  EXPECT_EQ(sinks[2]->received.size(), 1u);
  EXPECT_EQ(total_received(), 1u);
}

TEST_F(SwitchFixture, DropsWithoutRoute) {
  auto p = make_data(tuple(99, 12345), 0, 100);
  sw->receive(std::move(p), -1);
  sim.run();
  EXPECT_EQ(total_received(), 0u);
  EXPECT_EQ(sw->stats().no_route_drops, 1u);
}

TEST_F(SwitchFixture, DecrementsTtlAndDropsAtZero) {
  auto p = make_data(tuple(99, sinks[0]->ip()), 0, 100);
  p->ttl = 1;  // expires at this switch
  sw->receive(std::move(p), -1);
  sim.run();
  EXPECT_EQ(total_received(), 0u);
  EXPECT_EQ(sw->stats().ttl_drops, 1u);
}

TEST_F(SwitchFixture, TtlSurvivesWhenAboveOne) {
  auto p = make_data(tuple(99, sinks[0]->ip()), 0, 100);
  p->ttl = 2;
  sw->receive(std::move(p), -1);
  sim.run();
  ASSERT_EQ(sinks[0]->received.size(), 1u);
  EXPECT_EQ(sinks[0]->received[0]->ttl, 1);
}

TEST_F(SwitchFixture, ProbeTtlExpiryGeneratesReply) {
  auto p = make_data(tuple(sinks[3]->ip(), sinks[0]->ip()), 0, 0);
  p->ttl = 1;
  p->probe.probe_id = 77;
  p->probe.probed_port = 5555;
  p->probe.hop_index = 1;
  sw->receive(std::move(p), -1);
  sim.run();
  // The reply is routed to the probe's source (sink3).
  ASSERT_EQ(sinks[3]->received.size(), 1u);
  const Packet& reply = *sinks[3]->received[0];
  EXPECT_EQ(reply.inner.proto, Proto::kProbeReply);
  EXPECT_EQ(reply.probe.probe_id, 77u);
  EXPECT_EQ(reply.probe.probed_port, 5555);
  EXPECT_EQ(reply.probe.hop_index, 1);
  EXPECT_EQ(reply.probe.hop_ip, sw->ip());
  EXPECT_FALSE(reply.probe.from_destination);
  EXPECT_EQ(sw->stats().probe_replies, 1u);
}

TEST_F(SwitchFixture, NonProbeTtlExpiryIsSilent) {
  auto p = make_data(tuple(sinks[3]->ip(), sinks[0]->ip()), 0, 100);
  p->ttl = 1;
  sw->receive(std::move(p), -1);
  sim.run();
  EXPECT_EQ(total_received(), 0u);
  EXPECT_EQ(sw->stats().probe_replies, 0u);
}

TEST(SwitchEcmp, HashSpreadsOverEqualPaths) {
  // A switch with a 4-way ECMP route: distinct outer source ports should
  // spread across all four ports, roughly evenly.
  sim::Simulator sim;
  Topology topo(sim);
  Switch* sw = topo.add_switch("sw");
  auto* dst = topo.add_host<SinkNode>("dst");
  // Four parallel connections to the same destination.
  LinkConfig cfg;
  for (int i = 0; i < 4; ++i) topo.connect(sw, dst, cfg);
  topo.compute_routes();
  const auto* route = sw->route(dst->ip());
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->size(), 4u);

  std::vector<int> counts(4, 0);
  for (int sp = 0; sp < 4000; ++sp) {
    FiveTuple t{1, dst->ip(), static_cast<std::uint16_t>(sp), 7471,
                Proto::kStt};
    ++counts[static_cast<std::size_t>(sw->ecmp_port(t, 4))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(SwitchEcmp, SameTupleAlwaysSamePort) {
  sim::Simulator sim;
  Topology topo(sim);
  Switch* sw = topo.add_switch("sw");
  FiveTuple t{1, 2, 1000, 7471, Proto::kStt};
  const int first = sw->ecmp_port(t, 4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sw->ecmp_port(t, 4), first);
}

TEST(SwitchEcmp, NexthopCountChangeRemapsFlows) {
  // The property that forces Clove to re-probe after failures: changing the
  // modulus remaps (most) port->path assignments.
  sim::Simulator sim;
  Topology topo(sim);
  Switch* sw = topo.add_switch("sw");
  int remapped = 0;
  for (int sp = 0; sp < 1000; ++sp) {
    FiveTuple t{1, 2, static_cast<std::uint16_t>(sp), 7471, Proto::kStt};
    if (sw->ecmp_port(t, 4) != sw->ecmp_port(t, 3)) ++remapped;
  }
  EXPECT_GT(remapped, 400);
}

TEST(SwitchEcmp, DifferentSwitchesHashDifferently) {
  sim::Simulator sim;
  Topology topo(sim);
  Switch* a = topo.add_switch("a");
  Switch* b = topo.add_switch("b");
  int differ = 0;
  for (int sp = 0; sp < 1000; ++sp) {
    FiveTuple t{1, 2, static_cast<std::uint16_t>(sp), 7471, Proto::kStt};
    if (a->ecmp_port(t, 4) != b->ecmp_port(t, 4)) ++differ;
  }
  EXPECT_GT(differ, 500);
}

}  // namespace
}  // namespace clove::net
