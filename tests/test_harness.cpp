// Tests for the experiment harness: scheme wiring, testbed construction,
// profiles, env-based scaling, and end-to-end behaviour of the composed
// schemes (Presto reassembly, DCTCP option, CONGA fabric wiring).

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.hpp"
#include "lb/presto.hpp"
#include "net/conga_switch.hpp"
#include "workload/client_server.hpp"

namespace clove::harness {
namespace {

ExperimentConfig small(Scheme s) {
  ExperimentConfig cfg = make_ns2_profile();
  cfg.scheme = s;
  cfg.topo.hosts_per_leaf = 4;
  cfg.discovery.probe_timeout = 5 * sim::kMillisecond;
  cfg.traffic_start = 15 * sim::kMillisecond;
  return cfg;
}

TEST(Harness, TestbedBuildsPaperTopology) {
  Testbed tb(small(Scheme::kCloveEcn));
  EXPECT_EQ(tb.clients().size(), 4u);
  EXPECT_EQ(tb.servers().size(), 4u);
  EXPECT_EQ(tb.fabric().leaves.size(), 2u);
  EXPECT_EQ(tb.fabric().spines.size(), 2u);
}

TEST(Harness, SchemePoliciesWiredCorrectly) {
  struct Case {
    Scheme s;
    std::string policy_name;
  };
  for (const Case& c : std::initializer_list<Case>{
           {Scheme::kEcmp, "ecmp"},
           {Scheme::kEdgeFlowlet, "edge-flowlet"},
           {Scheme::kCloveEcn, "clove-ecn"},
           {Scheme::kCloveInt, "clove-int"},
           {Scheme::kCloveLatency, "clove-latency"},
           {Scheme::kPresto, "presto"},
           // MPTCP pairs with the migrate-on-evict ECMP edge so subflows
           // re-pin away from paths the health monitor declares dead.
           {Scheme::kMptcp, "ecmp-migrate"},
           {Scheme::kConga, "ecmp"},   // CONGA re-routes inside the fabric
           {Scheme::kLetFlow, "ecmp"}}) {
    Testbed tb(small(c.s));
    EXPECT_EQ(tb.clients()[0]->policy().name(), c.policy_name)
        << scheme_name(c.s);
  }
}

TEST(Harness, CongaLeavesConfigured) {
  Testbed tb(small(Scheme::kConga));
  auto* leaf = dynamic_cast<net::CongaLeafSwitch*>(tb.fabric().leaves[0]);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->leaf_index(), 0);
}

TEST(Harness, PrestoGetsReorderBufferAndIdealWeights) {
  auto cfg = small(Scheme::kPresto);
  cfg.asymmetric = true;
  Testbed tb(cfg);
  EXPECT_TRUE(tb.clients()[0]->config().reorder_buffer);
  // Ideal static weights were installed: after discovery, S1 paths carry
  // twice the flowcells of S2 paths (verified indirectly via the policy's
  // pick distribution in test_policies.cpp; here we just ensure wiring).
  auto* presto = dynamic_cast<lb::PrestoPolicy*>(&tb.clients()[0]->policy());
  ASSERT_NE(presto, nullptr);
}

TEST(Harness, AsymmetricFailsExactlyOneLink) {
  auto cfg = small(Scheme::kEcmp);
  cfg.asymmetric = true;
  Testbed tb(cfg);
  int down = 0;
  for (const auto& l : tb.topology().links()) {
    if (l->is_down()) ++down;
  }
  EXPECT_EQ(down, 2);  // both directions of the S2-L2 connection
  tb.restore_s2_l2_link();
  down = 0;
  for (const auto& l : tb.topology().links()) {
    if (l->is_down()) ++down;
  }
  EXPECT_EQ(down, 0);
}

TEST(Harness, ProfilesDiffer) {
  const auto testbed = make_testbed_profile();
  const auto ns2 = make_ns2_profile();
  EXPECT_GT(testbed.tcp.min_rto, ns2.tcp.min_rto);
  EXPECT_TRUE(testbed.tcp.ecn);
}

TEST(Harness, BenchScaleReadsEnv) {
  setenv("CLOVE_JOBS", "7", 1);
  setenv("CLOVE_SEEDS", "3", 1);
  setenv("CLOVE_CONNS", "5", 1);
  auto s = BenchScale::from_env();
  EXPECT_EQ(s.jobs_per_conn, 7);
  EXPECT_EQ(s.seeds, 3);
  EXPECT_EQ(s.conns_per_client, 5);
  unsetenv("CLOVE_JOBS");
  unsetenv("CLOVE_SEEDS");
  unsetenv("CLOVE_CONNS");
  auto d = BenchScale::from_env();
  EXPECT_EQ(d.jobs_per_conn, 40);
  EXPECT_EQ(d.seeds, 1);
  EXPECT_EQ(d.conns_per_client, 2);
}

TEST(Harness, BenchScaleRejectsGarbage) {
  setenv("CLOVE_JOBS", "-3", 1);
  EXPECT_EQ(BenchScale::from_env().jobs_per_conn, 40);
  unsetenv("CLOVE_JOBS");
}

TEST(Harness, PrestoReassemblyPreventsSpuriousRetransmits) {
  // Presto sprays 64KB flowcells round-robin over 4 paths, which reorders
  // packets heavily; the receiving vswitch's reassembly must hide that from
  // the VM so fast retransmits stay rare. Compare against the same spraying
  // without the reorder buffer.
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 3;
  wl.conns_per_client = 1;
  wl.load = 0.3;
  wl.sizes = workload::FlowSizeDistribution::fixed(2'000'000);

  auto cfg = small(Scheme::kPresto);
  auto r = run_fct_experiment(cfg, wl);
  EXPECT_EQ(r.jobs, 4u * 3u);
  // Each 2MB job is ~1370 packets sprayed across 4 paths (~85 reordered
  // flowcell boundaries). With reassembly, fast retransmits stay rare —
  // a couple per job at most, instead of one per boundary.
  EXPECT_LE(r.fast_retransmits, 2u * r.jobs);
}

TEST(Harness, DctcpGuestOptionRuns) {
  // §7 "DCTCP": with a DCTCP guest stack the same harness still completes
  // (non-overlay mode so switch marks hit the inner header directly).
  auto cfg = small(Scheme::kCloveEcn);
  cfg.non_overlay = true;
  cfg.tcp.dctcp = true;
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 4;
  wl.conns_per_client = 1;
  wl.load = 0.5;
  wl.sizes = workload::FlowSizeDistribution::fixed(400'000);
  auto r = run_fct_experiment(cfg, wl);
  EXPECT_EQ(r.jobs, 4u * 4u);
}

TEST(Harness, NonOverlayCloveEcnCompletes) {
  auto cfg = small(Scheme::kCloveEcn);
  cfg.non_overlay = true;
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 4;
  wl.conns_per_client = 1;
  wl.load = 0.5;
  wl.sizes = workload::FlowSizeDistribution::fixed(400'000);
  auto r = run_fct_experiment(cfg, wl);
  EXPECT_EQ(r.jobs, 4u * 4u);
}

TEST(Harness, ResultCountersPopulated) {
  workload::ClientServerConfig wl;
  wl.jobs_per_conn = 20;
  wl.conns_per_client = 2;
  wl.load = 1.1;  // overdriven so queues must mark
  auto cfg = small(Scheme::kCloveEcn);
  cfg.topo.fabric_gbps = 10.0;  // scale fabric to the 4-host mini-testbed
  auto r = run_fct_experiment(cfg, wl);
  EXPECT_GT(r.events, 1000u);
  EXPECT_GT(r.ecn_marks, 0u);
  ASSERT_NE(r.fct, nullptr);
  EXPECT_EQ(r.fct->all().count(), r.jobs);
}

}  // namespace
}  // namespace clove::harness
