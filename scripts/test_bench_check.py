#!/usr/bin/env python3
"""Unit tests for bench_check.py's rule dispatch (stdlib unittest only).

Run directly (``python3 scripts/test_bench_check.py``) or via ctest
(registered as bench_check_unit). These pin the family each metric name
lands in and the pass/fail arithmetic of every rule — in particular that no
name ever falls through silently (the historical bug: an unknown suffix was
skipped without a trace, so a renamed metric lost enforcement invisibly).
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_check as bc  # noqa: E402


class TestFamilyPredicates(unittest.TestCase):
    def test_alloc(self):
        self.assertTrue(bc.is_alloc("fat_tree_ecmp.allocs_per_pkt"))
        self.assertTrue(bc.is_alloc("BM_EventQueue.allocs_per_event"))
        self.assertFalse(bc.is_alloc("fat_tree_ecmp.pkts_per_sec"))

    def test_throughput(self):
        self.assertTrue(bc.is_throughput("fat_tree_ecmp.pkts_per_sec"))
        self.assertTrue(bc.is_throughput("scale_k8.events_per_sec"))
        self.assertTrue(bc.is_throughput("engine.events_per_sec"))
        self.assertFalse(bc.is_throughput("scale_k8.rss_mb"))

    def test_ratio(self):
        self.assertTrue(bc.is_ratio("prof_guard.prof_off_ratio"))
        self.assertTrue(bc.is_ratio("scale.k8_vs_k4_events_ratio"))
        self.assertFalse(bc.is_ratio("scale.k8_vs_k4_events"))

    def test_latency(self):
        self.assertTrue(bc.is_latency("fat_tree_ecmp.ns_per_hop"))
        self.assertFalse(bc.is_latency("x.recovery_ms"))

    def test_rss(self):
        self.assertTrue(bc.is_rss("scale_k4.rss_mb"))
        self.assertTrue(bc.is_rss("engine.rss_mb"))
        self.assertFalse(bc.is_rss("engine.rss"))

    def test_recovery(self):
        self.assertTrue(bc.is_recovery("CloveECN.recovery_ms"))
        self.assertFalse(bc.is_recovery("CloveECN.recovery"))


class TestCheckOne(unittest.TestCase):
    TOL = 0.25

    def status(self, name, b, c, **kw):
        return bc.check_one(name, b, c, self.TOL, **kw)[0]

    def test_alloc_limit(self):
        n = "x.allocs_per_pkt"
        self.assertEqual(self.status(n, 0.0, 0.0), "ok")
        self.assertEqual(self.status(n, 0.0, bc.ALLOC_SLACK), "ok")
        self.assertEqual(self.status(n, 0.0, bc.ALLOC_SLACK + 1e-6), "FAIL")

    def test_ratio_floor(self):
        n = "x.prof_off_ratio"
        self.assertEqual(self.status(n, 1.0, 1.0), "ok")
        self.assertEqual(self.status(n, 1.0, 1.0 - bc.RATIO_SLACK), "ok")
        self.assertEqual(self.status(n, 1.0, 0.97), "FAIL")

    def test_magnitude_ratio_uses_relative_floor(self):
        # Far from parity (baseline > 2) the absolute band is meaningless:
        # the hybrid ~50x speedup must get the relative floor instead.
        n = "hybrid.k8_speedup_ratio"
        self.assertEqual(self.status(n, 50.0, 49.0), "ok")   # -2% jitter
        self.assertEqual(self.status(n, 50.0, 40.0), "ok")   # within tol
        self.assertEqual(self.status(n, 50.0, 37.0), "FAIL")  # below floor
        # ...while near-parity ratios keep the tight absolute band.
        self.assertEqual(self.status(n, 1.0, 0.97), "FAIL")

    def test_ratio_slack_override(self):
        n = "scale.k8_vs_k4_events_ratio"
        self.assertEqual(self.status(n, 1.0, 0.9), "FAIL")
        self.assertEqual(self.status(n, 1.0, 0.9, ratio_slack=0.15), "ok")

    def test_throughput_floor(self):
        n = "x.events_per_sec"
        self.assertEqual(self.status(n, 100.0, 80.0), "ok")   # -20% < tol
        self.assertEqual(self.status(n, 100.0, 74.0), "FAIL")  # -26% > tol

    def test_latency_ceiling(self):
        n = "x.ns_per_hop"
        self.assertEqual(self.status(n, 100.0, 130.0), "ok")
        self.assertEqual(self.status(n, 100.0, 140.0), "FAIL")

    def test_rss_ceiling(self):
        n = "scale_k8.rss_mb"
        # ceiling = b * 1.25 + RSS_SLACK_MB
        self.assertEqual(self.status(n, 100.0, 125.0 + bc.RSS_SLACK_MB), "ok")
        self.assertEqual(
            self.status(n, 100.0, 125.0 + bc.RSS_SLACK_MB + 0.5), "FAIL")

    def test_recovery(self):
        n = "x.recovery_ms"
        self.assertEqual(self.status(n, -1.0, 500.0), "info")  # never-recover baseline
        self.assertEqual(self.status(n, 100.0, 150.0), "ok")   # under 125 + 50 slack
        self.assertEqual(self.status(n, 100.0, 180.0), "FAIL")
        self.assertEqual(self.status(n, 100.0, -1.0), "FAIL")  # lost recovery

    def test_unknown_name_is_info_not_silent(self):
        status, detail = bc.check_one("x.pool_allocated", 5.0, 9.0, self.TOL)
        self.assertEqual(status, "info")
        self.assertIn("no rule", detail)

    def test_every_scale_bench_value_has_a_rule(self):
        # The names BENCH_scale commits must all be enforced (not info rows).
        for name in ("scale_k4.events_per_sec", "scale_k8.events_per_sec",
                     "scale_k4.rss_mb", "scale_k8.rss_mb",
                     "scale.k8_vs_k4_events_ratio",
                     "prof_guard.prof_off_ratio",
                     "prof_guard.prof_off.allocs_per_pkt"):
            status, _ = bc.check_one(name, 1.0, 1.0, self.TOL)
            self.assertEqual(status, "ok", name)


if __name__ == "__main__":
    unittest.main(verbosity=2)
